// Deterministic chaos harness for the serving fault-tolerance layer
// (acceptance test for the fault-injection seams in serve/fault_injector.h).
//
// The load: every unique failure log submitted once across 8 workers while
// the injector fires at every seam.  The contract under chaos:
//   - zero hangs and zero lost requests (every sequence resolves once),
//   - only statuses the armed faults can produce,
//   - Metrics status counts equal both the per-result tallies and the
//     injector's trigger counts (exact accounting: with max_retries=0 each
//     trigger fails exactly one request),
//   - every kOk response is byte-identical to the serial no-injection run,
//   - a rerun with the same seeds reproduces the counts exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "diag/atpg_diagnosis.h"
#include "diag/log_io.h"
#include "serve/fault_injector.h"
#include "serve/service.h"
#include "serve/status.h"

namespace m3dfl {
namespace {

class ChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    design_ = std::shared_ptr<const Design>(
        Design::build(Profile::kAes, DesignConfig::kSyn1));
    TransferTrainOptions train;
    train.samples_syn1 = 40;
    train.samples_per_random = 20;
    const LabeledDataset data =
        build_transfer_training_set(Profile::kAes, *design_, train);
    FrameworkOptions options;
    options.training.epochs = 40;
    framework_ = new DiagnosisFramework(options);
    framework_->train(data.graphs);

    // Unique logs only: duplicate signatures would coalesce (single-flight)
    // or hit the cache, and a follower inheriting a leader's failure would
    // break the one-trigger-one-failure accounting this test pins.
    DataGenOptions gen;
    gen.num_samples = 40;
    gen.miv_fault_prob = 0.25;
    gen.seed = 0xC4A05;
    logs_ = new std::vector<FailureLog>();
    std::set<std::string> seen;
    for (const Sample& s : generate_samples(design_->context(), gen)) {
      if (seen.insert(failure_log_to_string(s.log)).second) {
        logs_->push_back(s.log);
      }
    }
    // The serial no-injection baseline every kOk chaos result must match.
    baseline_ = new std::vector<std::string>();
    serve::ServiceOptions serial;
    serial.num_threads = 1;
    serve::DiagnosisService service = make_service(serial);
    const std::int32_t design_id = service.register_design(design_);
    for (const FailureLog& log : *logs_) {
      const serve::DiagnosisResult result = service.diagnose(design_id, log);
      ASSERT_EQ(result.status, serve::StatusCode::kOk);
      baseline_->push_back(serve::result_to_string(design_->netlist(), result));
    }
    service.shutdown();
  }
  static void TearDownTestSuite() {
    delete baseline_;
    delete logs_;
    delete framework_;
    baseline_ = nullptr;
    logs_ = nullptr;
    framework_ = nullptr;
    design_.reset();
  }

  static serve::DiagnosisService make_service(
      const serve::ServiceOptions& options) {
    std::stringstream model;
    framework_->save(model);
    return serve::DiagnosisService(model, options);
  }

  // Arms every seam a request crosses; ~33% of requests see a fault.
  static void arm_all_seams(serve::FaultInjector& injector) {
    injector.arm(serve::Seam::kQueueAdmit, 0.08);
    injector.arm(serve::Seam::kCacheLookup, 0.10);
    injector.arm(serve::Seam::kCacheInsert, 0.08);
    injector.arm(serve::Seam::kModelPredict, 0.12);
  }

  struct RunOutcome {
    std::map<serve::StatusCode, std::int64_t> statuses;  // per-result tally
    std::vector<std::string> ok_texts;  // indexed by log position, "" if not ok
    std::uint64_t triggered[serve::kNumSeams] = {};
    std::int64_t metrics_status[serve::kNumStatusCodes] = {};
    std::int64_t retries = 0;
  };

  // Submits every unique log once across the pool and collects everything
  // the accounting assertions need.  Fails the test on a lost or duplicated
  // sequence.
  static RunOutcome run_chaos(const serve::ServiceOptions& options,
                              const std::shared_ptr<serve::FaultInjector>&
                                  injector) {
    RunOutcome outcome;
    serve::DiagnosisService service = make_service(options);
    const std::int32_t design_id = service.register_design(design_);
    std::vector<std::future<serve::DiagnosisResult>> futures;
    for (const FailureLog& log : *logs_) {
      futures.push_back(service.submit(design_id, log));
    }
    std::set<std::uint64_t> sequences;
    outcome.ok_texts.resize(logs_->size());
    for (std::size_t i = 0; i < futures.size(); ++i) {
      const serve::DiagnosisResult result = futures[i].get();
      EXPECT_TRUE(sequences.insert(result.sequence).second)
          << "sequence " << result.sequence << " resolved twice";
      ++outcome.statuses[result.status];
      if (result.ok()) {
        outcome.ok_texts[i] =
            serve::result_to_string(design_->netlist(), result);
      }
    }
    EXPECT_EQ(sequences.size(), logs_->size()) << "lost requests";
    service.shutdown();
    for (int s = 0; s < serve::kNumSeams; ++s) {
      outcome.triggered[s] = injector->triggered(static_cast<serve::Seam>(s));
    }
    for (int c = 0; c < serve::kNumStatusCodes; ++c) {
      outcome.metrics_status[c] =
          service.metrics().status_count(static_cast<serve::StatusCode>(c));
    }
    outcome.retries = service.metrics().retries.load();
    return outcome;
  }

  static std::shared_ptr<const Design> design_;
  static DiagnosisFramework* framework_;
  static std::vector<FailureLog>* logs_;
  static std::vector<std::string>* baseline_;
};

std::shared_ptr<const Design> ChaosTest::design_;
DiagnosisFramework* ChaosTest::framework_ = nullptr;
std::vector<FailureLog>* ChaosTest::logs_ = nullptr;
std::vector<std::string>* ChaosTest::baseline_ = nullptr;

TEST_F(ChaosTest, EightWorkerChaosRunHasExactAccounting) {
  ASSERT_GE(logs_->size(), 24u);  // enough unique signatures to mean anything
  const std::int64_t total =
      static_cast<std::int64_t>(logs_->size());

  auto injector = std::make_shared<serve::FaultInjector>(0xC4A05);
  arm_all_seams(*injector);
  serve::ServiceOptions options;
  options.num_threads = 8;
  options.max_retries = 0;  // one trigger fails exactly one request
  options.fault_injector = injector;
  const RunOutcome outcome = run_chaos(options, injector);

  // Only statuses the armed faults can produce.
  for (const auto& [status, count] : outcome.statuses) {
    EXPECT_TRUE(status == serve::StatusCode::kOk ||
                status == serve::StatusCode::kOverloaded ||
                status == serve::StatusCode::kTransient)
        << "unexpected status " << serve::status_name(status) << " x" << count;
  }

  // >= 20% of the load actually hit an injected fault.
  std::uint64_t total_triggered = 0;
  for (int s = 0; s < serve::kNumSeams; ++s) {
    total_triggered += outcome.triggered[s];
  }
  EXPECT_GE(total_triggered, (logs_->size() + 4) / 5)
      << "chaos run was not chaotic enough";
  EXPECT_LT(static_cast<std::int64_t>(total_triggered), total)
      << "some requests must survive to pin determinism";

  // Exact accounting: Metrics == per-result tallies == injector triggers.
  const auto tally = [&outcome](serve::StatusCode status) {
    const auto it = outcome.statuses.find(status);
    return it == outcome.statuses.end() ? std::int64_t{0} : it->second;
  };
  EXPECT_EQ(outcome.metrics_status[static_cast<int>(serve::StatusCode::kOk)],
            tally(serve::StatusCode::kOk));
  EXPECT_EQ(
      outcome.metrics_status[static_cast<int>(serve::StatusCode::kOverloaded)],
      tally(serve::StatusCode::kOverloaded));
  EXPECT_EQ(
      outcome.metrics_status[static_cast<int>(serve::StatusCode::kTransient)],
      tally(serve::StatusCode::kTransient));
  EXPECT_EQ(tally(serve::StatusCode::kOverloaded),
            static_cast<std::int64_t>(
                outcome.triggered[static_cast<int>(serve::Seam::kQueueAdmit)]));
  EXPECT_EQ(
      tally(serve::StatusCode::kTransient),
      static_cast<std::int64_t>(
          outcome.triggered[static_cast<int>(serve::Seam::kCacheLookup)] +
          outcome.triggered[static_cast<int>(serve::Seam::kCacheInsert)] +
          outcome.triggered[static_cast<int>(serve::Seam::kModelPredict)]));
  EXPECT_EQ(tally(serve::StatusCode::kOk) +
                tally(serve::StatusCode::kOverloaded) +
                tally(serve::StatusCode::kTransient),
            total);

  // Every kOk response is byte-identical to the serial no-injection run.
  std::int64_t num_ok = 0;
  for (std::size_t i = 0; i < outcome.ok_texts.size(); ++i) {
    if (outcome.ok_texts[i].empty()) continue;
    ++num_ok;
    EXPECT_EQ(outcome.ok_texts[i], (*baseline_)[i]) << "request " << i;
  }
  EXPECT_EQ(num_ok, tally(serve::StatusCode::kOk));

  // A rerun with the same seeds reproduces the run exactly: per-seam
  // trigger counts, per-status counts, and the surviving responses.
  auto injector2 = std::make_shared<serve::FaultInjector>(0xC4A05);
  arm_all_seams(*injector2);
  serve::ServiceOptions options2 = options;
  options2.fault_injector = injector2;
  const RunOutcome rerun = run_chaos(options2, injector2);
  for (int s = 0; s < serve::kNumSeams; ++s) {
    EXPECT_EQ(rerun.triggered[s], outcome.triggered[s])
        << serve::seam_name(static_cast<serve::Seam>(s));
  }
  EXPECT_EQ(rerun.statuses, outcome.statuses);
  // Which request absorbs which draw depends on worker interleaving, so the
  // set of survivors may differ between runs — but every survivor still
  // matches the serial bytes.
  for (std::size_t i = 0; i < rerun.ok_texts.size(); ++i) {
    if (rerun.ok_texts[i].empty()) continue;
    EXPECT_EQ(rerun.ok_texts[i], (*baseline_)[i]) << "rerun request " << i;
  }
}

TEST_F(ChaosTest, TotalModelOutageDegradesEveryRequest) {
  auto injector = std::make_shared<serve::FaultInjector>(0xC4A05);
  injector->arm(serve::Seam::kModelPredict, 1.0,
                serve::FaultKind::kModelUnavailable);
  serve::ServiceOptions options;
  options.num_threads = 8;
  options.degraded_fallback = true;
  options.fault_injector = injector;
  serve::DiagnosisService service = make_service(options);
  const std::int32_t design_id = service.register_design(design_);

  const DesignContext ctx = design_->context();
  std::vector<std::future<serve::DiagnosisResult>> futures;
  for (const FailureLog& log : *logs_) {
    futures.push_back(service.submit(design_id, log));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const serve::DiagnosisResult result = futures[i].get();
    EXPECT_EQ(result.status, serve::StatusCode::kOk) << "request " << i;
    EXPECT_TRUE(result.degraded);
    serve::DiagnosisResult expected;
    expected.design = design_->name();
    expected.degraded = true;
    expected.report = diagnose_atpg(ctx, (*logs_)[i]);
    EXPECT_EQ(serve::result_to_string(design_->netlist(), result),
              serve::result_to_string(design_->netlist(), expected))
        << "request " << i;
  }
  service.shutdown();
  EXPECT_EQ(service.metrics().degraded_results.load(),
            static_cast<std::int64_t>(logs_->size()));
  EXPECT_EQ(service.metrics().status_count(serve::StatusCode::kOk),
            static_cast<std::int64_t>(logs_->size()));
}

TEST_F(ChaosTest, RetriesRideOutChaosWithoutChangingAnswers) {
  auto injector = std::make_shared<serve::FaultInjector>(0xC4A05);
  // Transient-only chaos (admission sheds are terminal, not retryable).
  injector->arm(serve::Seam::kCacheLookup, 0.10);
  injector->arm(serve::Seam::kCacheInsert, 0.08);
  injector->arm(serve::Seam::kModelPredict, 0.12);
  serve::ServiceOptions options;
  options.num_threads = 8;
  options.max_retries = 3;
  options.backoff_base_ms = 0.01;
  options.backoff_cap_ms = 0.1;
  options.fault_injector = injector;
  const RunOutcome outcome = run_chaos(options, injector);

  // Retries absorbed faults: some fired, and at least one request needed
  // more than one attempt, yet answers are still the serial bytes.
  EXPECT_GT(injector->total_triggered(), 0u);
  EXPECT_GT(outcome.retries, 0);
  std::int64_t num_ok = 0;
  for (std::size_t i = 0; i < outcome.ok_texts.size(); ++i) {
    if (outcome.ok_texts[i].empty()) continue;
    ++num_ok;
    EXPECT_EQ(outcome.ok_texts[i], (*baseline_)[i]) << "request " << i;
  }
  // With a 3-retry budget against ~30% transient chaos, nearly everything
  // completes; assert the overwhelming majority did (a request only fails
  // after four consecutive triggers).
  EXPECT_GE(num_ok, static_cast<std::int64_t>(logs_->size()) - 1);
}

}  // namespace
}  // namespace m3dfl
