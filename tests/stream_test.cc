// diag::StreamingBacktrace and the serve::SessionManager session layer.
//
// The load-bearing contract: on any feed, a session's finalize() is
// byte-identical to the batch pipeline over the same accumulated log — the
// streaming path reuses the shared decision layer
// (select_backtrace_candidates) instead of reimplementing it, so the tests
// here pin identity, not similarity.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <future>
#include <sstream>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "diag/log_io.h"
#include "diag/stream_backtrace.h"
#include "graph/backtrace.h"
#include "graph/hetero_graph.h"
#include "serve/service.h"
#include "serve/session.h"
#include "serve/status.h"
#include "test_helpers.h"

namespace m3dfl {
namespace {

// The log as the record sequence a tester feed would carry.
std::vector<StreamRecord> to_records(const FailureLog& log) {
  std::vector<StreamRecord> recs;
  StreamRecord mode;
  mode.kind = StreamRecord::Kind::kMode;
  mode.compacted = log.compacted;
  recs.push_back(mode);
  if (log.pattern_limit > 0) {
    StreamRecord limit;
    limit.kind = StreamRecord::Kind::kLimit;
    limit.pattern_limit = log.pattern_limit;
    recs.push_back(limit);
  }
  for (const Observation& o : log.scan_fails) {
    StreamRecord r;
    r.kind = StreamRecord::Kind::kScan;
    r.observation = o;
    recs.push_back(r);
  }
  for (const ChannelFail& c : log.channel_fails) {
    StreamRecord r;
    r.kind = StreamRecord::Kind::kChan;
    r.channel = c;
    recs.push_back(r);
  }
  for (const Observation& o : log.po_fails) {
    StreamRecord r;
    r.kind = StreamRecord::Kind::kPo;
    r.observation = o;
    recs.push_back(r);
  }
  StreamRecord end;
  end.kind = StreamRecord::Kind::kEnd;
  recs.push_back(end);
  return recs;
}

void expect_same_backtrace(const BacktraceResult& got,
                           const BacktraceResult& want) {
  EXPECT_EQ(got.candidates, want.candidates);
  ASSERT_EQ(got.support.size(), want.support.size());
  for (std::size_t i = 0; i < got.support.size(); ++i) {
    EXPECT_DOUBLE_EQ(got.support[i], want.support[i]) << "support[" << i << "]";
  }
  EXPECT_EQ(got.num_responses, want.num_responses);
  EXPECT_EQ(got.relaxed, want.relaxed);
  ASSERT_EQ(got.quarantined.size(), want.quarantined.size());
  for (std::size_t i = 0; i < got.quarantined.size(); ++i) {
    EXPECT_EQ(got.quarantined[i].response_index,
              want.quarantined[i].response_index);
    EXPECT_EQ(got.quarantined[i].pattern, want.quarantined[i].pattern);
    EXPECT_DOUBLE_EQ(got.quarantined[i].overlap, want.quarantined[i].overlap);
  }
}

// ---- StreamingBacktrace unit tests -----------------------------------------

class StreamModes : public ::testing::TestWithParam<bool> {};

TEST_P(StreamModes, FinalizeMatchesBatchOnCleanFeeds) {
  testing::SmallDesign d(5);
  const HeteroGraph graph(d.netlist, d.tiers, d.mivs);
  DataGenOptions opt;
  opt.num_samples = 20;
  opt.compacted = GetParam();
  opt.miv_fault_prob = 0.2;
  opt.max_failing_patterns = 0;
  opt.seed = 41;
  for (const Sample& sample : generate_samples(d.context(), opt)) {
    StreamingBacktrace stream(graph, d.context());
    for (const StreamRecord& r : to_records(sample.log)) stream.add(r);
    // The accumulated log reproduces the input (canonical order preserved).
    EXPECT_EQ(failure_log_to_string(stream.log()),
              failure_log_to_string(sample.log));
    const BacktraceResult batch =
        backtrace_with_support(graph, d.context(), sample.log);
    expect_same_backtrace(stream.finalize(), batch);
  }
}

TEST_P(StreamModes, FinalizeMatchesBatchOnPermutedFeeds) {
  // Records arrive in a scrambled order (a multi-site tester interleaving
  // kinds and patterns arbitrarily): finalize() must still equal the batch
  // path over the log the stream accumulated.
  testing::SmallDesign d(5);
  const HeteroGraph graph(d.netlist, d.tiers, d.mivs);
  DataGenOptions opt;
  opt.num_samples = 10;
  opt.compacted = GetParam();
  opt.max_failing_patterns = 0;
  opt.seed = 43;
  std::uint64_t shuffle_state = 0x9E3779B97F4A7C15ull;
  const auto next = [&shuffle_state] {
    shuffle_state ^= shuffle_state << 13;
    shuffle_state ^= shuffle_state >> 7;
    shuffle_state ^= shuffle_state << 17;
    return shuffle_state;
  };
  for (const Sample& sample : generate_samples(d.context(), opt)) {
    std::vector<StreamRecord> recs = to_records(sample.log);
    // Keep the leading mode record and trailing 'end'; scramble the body.
    for (std::size_t i = recs.size() - 2; i > 1; --i) {
      std::swap(recs[i], recs[1 + next() % i]);
    }
    StreamingBacktrace stream(graph, d.context());
    // Replay the mode record first (a feed declares its mode up front).
    StreamRecord mode;
    mode.kind = StreamRecord::Kind::kMode;
    mode.compacted = sample.log.compacted;
    stream.add(mode);
    for (const StreamRecord& r : recs) {
      if (r.kind == StreamRecord::Kind::kMode) continue;
      stream.add(r);
    }
    const BacktraceResult batch =
        backtrace_with_support(graph, d.context(), stream.log());
    expect_same_backtrace(stream.finalize(), batch);
  }
}

TEST(StreamBacktraceTest, CleanFeedNarrowsMonotonically) {
  testing::SmallDesign d(5);
  const HeteroGraph graph(d.netlist, d.tiers, d.mivs);
  DataGenOptions opt;
  opt.num_samples = 15;
  opt.max_failing_patterns = 0;
  opt.seed = 47;
  for (const Sample& sample : generate_samples(d.context(), opt)) {
    StreamingBacktrace stream(graph, d.context());
    const std::int32_t cap = StreamingOptions{}.backtrace.max_traced_responses;
    std::size_t last = 0;
    bool first = true;
    for (const StreamRecord& r : to_records(sample.log)) {
      if (stream.add(r) != StreamAccept::kAccepted) continue;
      // Past the thinning cap the decision layer scores a thinned subset,
      // which can legitimately widen the set; monotonicity is the fast
      // path's property.
      if (stream.num_responses() > cap) break;
      const StreamSnapshot& snap = stream.snapshot();
      if (snap.backtrace.noisy()) break;  // strict fast path left
      ASSERT_FALSE(snap.backtrace.candidates.empty());
      for (double s : snap.backtrace.support) EXPECT_DOUBLE_EQ(s, 1.0);
      if (!first) EXPECT_LE(snap.backtrace.candidates.size(), last);
      last = snap.backtrace.candidates.size();
      first = false;
    }
  }
}

TEST(StreamBacktraceTest, DuplicateRecordLeavesStateUntouched) {
  testing::SmallDesign d(5);
  const HeteroGraph graph(d.netlist, d.tiers, d.mivs);
  DataGenOptions opt;
  opt.num_samples = 1;
  opt.max_failing_patterns = 0;
  opt.seed = 53;
  const auto samples = generate_samples(d.context(), opt);
  ASSERT_FALSE(samples.empty());
  StreamingBacktrace stream(graph, d.context());
  const std::vector<StreamRecord> recs = to_records(samples[0].log);
  StreamRecord repeat;
  bool have_repeat = false;
  for (const StreamRecord& r : recs) {
    if (r.kind == StreamRecord::Kind::kEnd) break;
    const StreamAccept accept = stream.add(r);
    if (accept == StreamAccept::kAccepted && !have_repeat) {
      repeat = r;
      have_repeat = true;
    }
  }
  ASSERT_TRUE(have_repeat);
  const std::int32_t before = stream.num_responses();
  const std::vector<NodeId> candidates = stream.snapshot().backtrace.candidates;
  EXPECT_EQ(stream.add(repeat), StreamAccept::kDuplicate);
  EXPECT_EQ(stream.num_responses(), before);
  EXPECT_EQ(stream.snapshot().backtrace.candidates, candidates);
}

TEST(StreamBacktraceTest, OnlineQuarantineCondemnsAndRehabilitates) {
  // Two faults with disjoint candidate sets; a short burst of fault-A
  // evidence followed by a longer fault-B stream.  When B overtakes the
  // consensus, the early B response condemned by A's majority must be
  // rehabilitated, and finalize must still equal batch over the mixed log.
  testing::SmallDesign d(5);
  const HeteroGraph graph(d.netlist, d.tiers, d.mivs);
  DataGenOptions opt;
  opt.num_samples = 25;
  opt.max_failing_patterns = 0;
  opt.seed = 59;
  const auto samples = generate_samples(d.context(), opt);

  const auto failing = [](const FailureLog& log) {
    std::vector<StreamRecord> recs;
    for (const StreamRecord& r : to_records(log)) {
      if (r.kind == StreamRecord::Kind::kScan ||
          r.kind == StreamRecord::Kind::kChan ||
          r.kind == StreamRecord::Kind::kPo) {
        recs.push_back(r);
      }
    }
    return recs;
  };

  // Find a pair with disjoint batch candidate sets and enough records.
  for (std::size_t a = 0; a < samples.size(); ++a) {
    for (std::size_t b = 0; b < samples.size(); ++b) {
      if (a == b) continue;
      const std::vector<StreamRecord> recs_a = failing(samples[a].log);
      const std::vector<StreamRecord> recs_b = failing(samples[b].log);
      if (recs_a.size() < 2 || recs_b.size() < 6) continue;
      const std::vector<NodeId> cand_a =
          backtrace_candidates(graph, d.context(), samples[a].log);
      const std::vector<NodeId> cand_b =
          backtrace_candidates(graph, d.context(), samples[b].log);
      std::vector<NodeId> common;
      std::set_intersection(cand_a.begin(), cand_a.end(), cand_b.begin(),
                            cand_b.end(), std::back_inserter(common));
      if (!common.empty()) continue;

      StreamingBacktrace stream(graph, d.context());
      StreamRecord mode;
      mode.kind = StreamRecord::Kind::kMode;
      mode.compacted = false;
      stream.add(mode);
      stream.add(recs_a[0]);
      stream.add(recs_a[1]);
      for (const StreamRecord& r : recs_b) stream.add(r);

      const StreamSnapshot& snap = stream.snapshot();
      EXPECT_GT(snap.condemnations, 0);
      EXPECT_GT(snap.rehabilitations, 0);
      const BacktraceResult batch =
          backtrace_with_support(graph, d.context(), stream.log());
      expect_same_backtrace(stream.finalize(), batch);
      return;
    }
  }
  GTEST_SKIP() << "no disjoint sample pair in this seed's draw";
}

TEST(StreamBacktraceTest, StabilityLatchesEarlyExitPoint) {
  testing::SmallDesign d(5);
  const HeteroGraph graph(d.netlist, d.tiers, d.mivs);
  DataGenOptions opt;
  opt.num_samples = 20;
  opt.max_failing_patterns = 0;
  opt.seed = 61;
  StreamingOptions stream_opt;
  stream_opt.tp_threshold = 0.7;
  stream_opt.stability_window = 3;
  bool any_stable = false;
  for (const Sample& sample : generate_samples(d.context(), opt)) {
    StreamingBacktrace stream(graph, d.context(), stream_opt);
    std::int32_t latched = -1;
    for (const StreamRecord& r : to_records(sample.log)) {
      if (stream.add(r) != StreamAccept::kAccepted) continue;
      const StreamSnapshot& snap = stream.snapshot();
      if (snap.stable && latched < 0) {
        latched = snap.early_exit_at;
        EXPECT_EQ(latched, stream.num_responses());
        any_stable = true;
      }
      if (latched >= 0) {
        // Latched: the early-exit point survives further responses.
        EXPECT_EQ(snap.early_exit_at, latched);
      } else {
        EXPECT_EQ(snap.early_exit_at, -1);
      }
    }
  }
  EXPECT_TRUE(any_stable) << "no sample stabilized at T_P = 0.7";
}

INSTANTIATE_TEST_SUITE_P(BypassAndCompacted, StreamModes,
                         ::testing::Bool());

// ---- session-layer tests ---------------------------------------------------

// One shared design + trained framework for the service-level tests
// (expensive to build, read-only afterwards) — the serve_test pattern.
class SessionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    design_ = std::shared_ptr<const Design>(
        Design::build(Profile::kAes, DesignConfig::kSyn1));
    TransferTrainOptions train;
    train.samples_syn1 = 40;
    train.samples_per_random = 20;
    const LabeledDataset data =
        build_transfer_training_set(Profile::kAes, *design_, train);
    FrameworkOptions options;
    options.training.epochs = 40;
    framework_ = new DiagnosisFramework(options);
    framework_->train(data.graphs);

    DataGenOptions gen;
    gen.num_samples = 4;
    gen.miv_fault_prob = 0.25;
    gen.seed = 0xFEED;
    logs_ = new std::vector<FailureLog>();
    for (const Sample& s : generate_samples(design_->context(), gen)) {
      logs_->push_back(s.log);
    }
  }
  static void TearDownTestSuite() {
    delete logs_;
    delete framework_;
    logs_ = nullptr;
    framework_ = nullptr;
    design_.reset();
  }

  static serve::DiagnosisService make_service(
      const serve::ServiceOptions& options) {
    std::stringstream model;
    framework_->save(model);
    return serve::DiagnosisService(model, options);
  }

  // The faillog body lines (everything after the header) of `log`.
  static std::vector<std::string> feed_lines(const FailureLog& log) {
    std::istringstream is(failure_log_to_string(log));
    std::vector<std::string> lines;
    std::string line;
    std::getline(is, line);  // drop the "m3dfl-faillog 1" header
    while (std::getline(is, line)) lines.push_back(line);
    return lines;
  }

  static std::shared_ptr<const Design> design_;
  static DiagnosisFramework* framework_;
  static std::vector<FailureLog>* logs_;
};

std::shared_ptr<const Design> SessionTest::design_;
DiagnosisFramework* SessionTest::framework_ = nullptr;
std::vector<FailureLog>* SessionTest::logs_ = nullptr;

TEST_F(SessionTest, StreamedDiagnosisMatchesBatchByteForByte) {
  // Session path on one service, direct batch path on another: the streamed
  // result (precomputed back-trace injected into the worker) must be
  // byte-identical to the batch pipeline.
  serve::ServiceOptions options;
  options.num_threads = 2;
  serve::DiagnosisService stream_service = make_service(options);
  serve::DiagnosisService batch_service = make_service(options);
  const std::int32_t stream_id = stream_service.register_design(design_);
  const std::int32_t batch_id = batch_service.register_design(design_);

  serve::SessionManager sessions(stream_service);
  for (const FailureLog& log : *logs_) {
    const serve::SessionTicket ticket = sessions.begin_diagnosis(stream_id);
    ASSERT_TRUE(ticket.admitted());
    bool saw_end = false;
    for (const std::string& line : feed_lines(log)) {
      const serve::SessionUpdate update =
          sessions.add_response(ticket.session_id, line);
      EXPECT_EQ(update.status, serve::StatusCode::kOk) << update.message;
      saw_end = saw_end || update.end_of_stream;
    }
    EXPECT_TRUE(saw_end);
    const serve::DiagnosisResult via_stream =
        sessions.finalize(ticket.session_id).get();
    ASSERT_EQ(via_stream.status, serve::StatusCode::kOk)
        << via_stream.status_message;
    const serve::DiagnosisResult via_batch =
        batch_service.diagnose(batch_id, log);
    ASSERT_EQ(via_batch.status, serve::StatusCode::kOk);
    EXPECT_EQ(serve::result_to_string(design_->netlist(), via_stream),
              serve::result_to_string(design_->netlist(), via_batch));
  }
  EXPECT_EQ(sessions.live(), 0u);
  EXPECT_EQ(stream_service.metrics().sessions_opened.load(),
            static_cast<std::int64_t>(logs_->size()));
  EXPECT_EQ(stream_service.metrics().sessions_finalized.load(),
            static_cast<std::int64_t>(logs_->size()));
  stream_service.shutdown();
  batch_service.shutdown();
}

TEST_F(SessionTest, RejectedRecordsAreLineCitedAndSessionSurvives) {
  serve::ServiceOptions options;
  options.num_threads = 1;
  serve::DiagnosisService service = make_service(options);
  const std::int32_t design_id = service.register_design(design_);
  serve::SessionManager sessions(service);
  const FailureLog& log = logs_->front();

  const serve::SessionTicket ticket = sessions.begin_diagnosis(design_id);
  ASSERT_TRUE(ticket.admitted());
  std::vector<std::string> lines = feed_lines(log);
  ASSERT_GE(lines.size(), 3u);

  // Malformed record: rejected with the faillog grammar's line citation.
  serve::SessionUpdate update =
      sessions.add_response(ticket.session_id, "scan nonsense");
  EXPECT_EQ(update.status, serve::StatusCode::kInvalidInput);
  EXPECT_NE(update.message.find("line 2"), std::string::npos)
      << update.message;
  EXPECT_TRUE(sessions.contains(ticket.session_id));

  // Clean feed (hold back the trailer so the session keeps accepting).
  std::string last_failing;
  std::int32_t last_pattern = 0;
  for (const std::string& line : lines) {
    if (line == "end") break;
    update = sessions.add_response(ticket.session_id, line);
    EXPECT_EQ(update.status, serve::StatusCode::kOk) << update.message;
    if (update.accepted) {
      last_failing = line;
      std::istringstream is(line);
      std::string word;
      is >> word >> last_pattern;
    }
  }
  ASSERT_FALSE(last_failing.empty());

  // Re-feeding the most recent record: its pattern equals the watermark, so
  // it passes the ordering check and lands on duplicate rejection.
  update = sessions.add_response(ticket.session_id, last_failing);
  EXPECT_EQ(update.status, serve::StatusCode::kInvalidInput);
  EXPECT_NE(update.message.find("duplicate"), std::string::npos)
      << update.message;

  // A record whose pattern regresses below the watermark is rejected as
  // out-of-order (only synthesizable when the watermark moved past 0).
  if (last_pattern > 0) {
    std::istringstream is(last_failing);
    std::string word;
    std::int32_t pattern = 0;
    is >> word >> pattern;
    const std::string out_of_order =
        word + " 0" +
        last_failing.substr(word.size() + 1 + std::to_string(pattern).size());
    update = sessions.add_response(ticket.session_id, out_of_order);
    EXPECT_EQ(update.status, serve::StatusCode::kInvalidInput);
    EXPECT_NE(update.message.find("out-of-order"), std::string::npos)
        << update.message;
  }

  // The rejected records never entered the log: finalize equals batch.
  const serve::DiagnosisResult via_stream =
      sessions.finalize(ticket.session_id).get();
  ASSERT_EQ(via_stream.status, serve::StatusCode::kOk);
  EXPECT_GE(service.metrics().stream_records_rejected.load(),
            last_pattern > 0 ? 3 : 2);
  service.shutdown();
}

TEST_F(SessionTest, IdleDeadlineExpiresAtNextTouch) {
  serve::ServiceOptions options;
  options.num_threads = 1;
  serve::DiagnosisService service = make_service(options);
  const std::int32_t design_id = service.register_design(design_);
  serve::SessionManagerOptions mgr;
  mgr.idle_deadline_ms = 1000.0;
  serve::SessionManager sessions(service, mgr);

  const auto t0 = serve::SessionManager::Clock::now();
  const serve::SessionTicket ticket =
      sessions.begin_diagnosis(design_id, {}, t0);
  ASSERT_TRUE(ticket.admitted());

  // Within the deadline: alive.
  serve::SessionUpdate update = sessions.add_response(
      ticket.session_id, "mode bypass", t0 + std::chrono::milliseconds(500));
  EXPECT_EQ(update.status, serve::StatusCode::kOk);

  // Idle past the deadline: the next touch expires it.
  update = sessions.add_response(ticket.session_id, "scan 0 0",
                                 t0 + std::chrono::milliseconds(2000));
  EXPECT_EQ(update.status, serve::StatusCode::kSessionExpired);
  EXPECT_FALSE(sessions.contains(ticket.session_id));
  EXPECT_EQ(service.metrics().sessions_expired.load(), 1);

  // A dead session's finalize resolves immediately, without a worker.
  const serve::DiagnosisResult result =
      sessions.finalize(ticket.session_id).get();
  EXPECT_EQ(result.status, serve::StatusCode::kSessionExpired);
  EXPECT_EQ(service.metrics().requests_submitted.load(), 0);
  service.shutdown();
}

TEST_F(SessionTest, SweepExpiresOverdueSessionsInBulk) {
  serve::ServiceOptions options;
  options.num_threads = 1;
  serve::DiagnosisService service = make_service(options);
  const std::int32_t design_id = service.register_design(design_);
  serve::SessionManagerOptions mgr;
  mgr.max_lifetime_ms = 1000.0;
  serve::SessionManager sessions(service, mgr);

  const auto t0 = serve::SessionManager::Clock::now();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(sessions.begin_diagnosis(design_id, {}, t0).admitted());
  }
  EXPECT_EQ(sessions.live(), 3u);
  EXPECT_EQ(sessions.sweep(t0 + std::chrono::milliseconds(500)), 0u);
  EXPECT_EQ(sessions.sweep(t0 + std::chrono::milliseconds(1500)), 3u);
  EXPECT_EQ(sessions.live(), 0u);
  EXPECT_EQ(service.metrics().sessions_expired.load(), 3);
  service.shutdown();
}

TEST_F(SessionTest, FullTableEvictsLeastRecentlyActive) {
  serve::ServiceOptions options;
  options.num_threads = 1;
  serve::DiagnosisService service = make_service(options);
  const std::int32_t design_id = service.register_design(design_);
  serve::SessionManagerOptions mgr;
  mgr.max_sessions = 2;
  mgr.evict_lru = true;
  serve::SessionManager sessions(service, mgr);

  const auto t0 = serve::SessionManager::Clock::now();
  const auto s1 = sessions.begin_diagnosis(design_id, {}, t0);
  const auto s2 = sessions.begin_diagnosis(
      design_id, {}, t0 + std::chrono::milliseconds(10));
  // Touch s1 so s2 becomes the least recently active.
  sessions.add_response(s1.session_id, "mode bypass",
                        t0 + std::chrono::milliseconds(20));
  const auto s3 = sessions.begin_diagnosis(
      design_id, {}, t0 + std::chrono::milliseconds(30));
  ASSERT_TRUE(s3.admitted());
  EXPECT_EQ(sessions.live(), 2u);
  EXPECT_TRUE(sessions.contains(s1.session_id));
  EXPECT_FALSE(sessions.contains(s2.session_id));
  EXPECT_TRUE(sessions.contains(s3.session_id));
  EXPECT_EQ(service.metrics().sessions_evicted.load(), 1);
  EXPECT_EQ(sessions.add_response(s2.session_id, "mode bypass").status,
            serve::StatusCode::kSessionExpired);
  service.shutdown();
}

TEST_F(SessionTest, FullTableShedsWhenEvictionDisabled) {
  serve::ServiceOptions options;
  options.num_threads = 1;
  serve::DiagnosisService service = make_service(options);
  const std::int32_t design_id = service.register_design(design_);
  serve::SessionManagerOptions mgr;
  mgr.max_sessions = 1;
  mgr.evict_lru = false;
  serve::SessionManager sessions(service, mgr);

  ASSERT_TRUE(sessions.begin_diagnosis(design_id).admitted());
  const serve::SessionTicket shed = sessions.begin_diagnosis(design_id);
  EXPECT_EQ(shed.status, serve::StatusCode::kOverloaded);
  EXPECT_EQ(service.metrics().sessions_shed.load(), 1);
  EXPECT_EQ(sessions.live(), 1u);
  service.shutdown();
}

TEST_F(SessionTest, UnknownDesignThrowsLikeSubmit) {
  serve::ServiceOptions options;
  options.num_threads = 1;
  serve::DiagnosisService service = make_service(options);
  serve::SessionManager sessions(service);
  EXPECT_THROW(sessions.begin_diagnosis(99), Error);
  service.shutdown();
}

}  // namespace
}  // namespace m3dfl
