#include <gtest/gtest.h>

#include "diag/metrics.h"
#include "diag/padre.h"
#include "test_helpers.h"

namespace m3dfl {
namespace {

Candidate make_candidate(PinId pin, std::int32_t tfsf, std::int32_t tfsp,
                         std::int32_t bit_tfsp) {
  Candidate c;
  c.fault = Fault::slow_to_rise(pin);
  c.tfsf = tfsf;
  c.tfsp = tfsp;
  c.bit_tfsp = bit_tfsp;
  c.score = tfsf - tfsp;
  return c;
}

TEST(PadreTest, EliminatesDominatedCandidates) {
  DiagnosisReport report;
  report.candidates = {
      make_candidate(0, 10, 0, 0),  // dominates everything below
      make_candidate(1, 8, 2, 3),
      make_candidate(2, 10, 0, 1),  // dominated by #0 on bit_tfsp
      make_candidate(3, 10, 0, 0),  // ties with #0 -> survives
  };
  const DiagnosisReport out = padre_first_level(report);
  ASSERT_EQ(out.resolution(), 2);
  EXPECT_EQ(out.candidates[0].fault.pin, 0);
  EXPECT_EQ(out.candidates[1].fault.pin, 3);
}

TEST(PadreTest, KeepsMutuallyNonDominated) {
  DiagnosisReport report;
  report.candidates = {
      make_candidate(0, 10, 2, 0),  // more explained, more unexplained
      make_candidate(1, 9, 1, 0),
  };
  const DiagnosisReport out = padre_first_level(report);
  EXPECT_EQ(out.resolution(), 2);
}

TEST(PadreTest, PreservesOrder) {
  DiagnosisReport report;
  report.candidates = {
      make_candidate(5, 10, 0, 0),
      make_candidate(2, 10, 0, 0),
      make_candidate(9, 10, 0, 0),
  };
  const DiagnosisReport out = padre_first_level(report);
  ASSERT_EQ(out.resolution(), 3);
  EXPECT_EQ(out.candidates[0].fault.pin, 5);
  EXPECT_EQ(out.candidates[1].fault.pin, 2);
  EXPECT_EQ(out.candidates[2].fault.pin, 9);
}

TEST(PadreTest, EmptyReportStaysEmpty) {
  EXPECT_EQ(padre_first_level(DiagnosisReport{}).resolution(), 0);
}

TEST(PadreTest, Idempotent) {
  DiagnosisReport report;
  report.candidates = {
      make_candidate(0, 10, 0, 0),
      make_candidate(1, 9, 0, 2),
      make_candidate(2, 10, 1, 0),
  };
  const DiagnosisReport once = padre_first_level(report);
  const DiagnosisReport twice = padre_first_level(once);
  EXPECT_EQ(once.resolution(), twice.resolution());
}

// The paper's contract: the first level never loses accuracy.
TEST(PadreTest, NoAccuracyLossOnRealReports) {
  testing::SmallDesign d(5);
  DataGenOptions opt;
  opt.num_samples = 25;
  opt.max_failing_patterns = 3;  // coarse logs -> fat reports
  opt.seed = 4;
  const auto samples = generate_samples(d.context(), opt);
  for (const Sample& s : samples) {
    const DiagnosisReport report = diagnose_atpg(d.context(), s.log);
    const DiagnosisReport refined = padre_first_level(report);
    const SampleEvaluation before = evaluate_report(d.context(), report, s);
    const SampleEvaluation after = evaluate_report(d.context(), refined, s);
    EXPECT_EQ(after.accurate, before.accurate);
    EXPECT_LE(after.resolution, before.resolution);
  }
}

}  // namespace
}  // namespace m3dfl
