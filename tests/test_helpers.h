// Shared fixtures and circuit builders for the m3dfl test suite.
#ifndef M3DFL_TESTS_TEST_HELPERS_H_
#define M3DFL_TESTS_TEST_HELPERS_H_

#include <cstdint>

#include "atpg/tdf_atpg.h"
#include "dft/compactor.h"
#include "dft/scan.h"
#include "diag/datagen.h"
#include "m3d/miv.h"
#include "m3d/partition.h"
#include "netlist/generator.h"
#include "netlist/netlist.h"
#include "sim/simulator.h"

namespace m3dfl::testing {

// A tiny hand-built full-scan circuit used across module tests:
//
//   pi0 ──┐
//         ├─ AND u0 ── n4 ──┬── INV u1 ── n5 ── ff0.D
//   pi1 ──┘                 └── XOR u2 ── n6 ── po0
//   ff0.Q ───────────────────────┘
//
// Gates: pi0, pi1, ff0 (scan flop), u0=AND2, u1=INV, u2=XOR2, po0.
struct TinyCircuit {
  Netlist netlist;
  GateId pi0, pi1, ff0, u0, u1, u2, po0;
  NetId n_pi0, n_pi1, n_q, n4, n5, n6;

  TinyCircuit() {
    pi0 = netlist.add_gate(GateType::kPrimaryInput, "pi0");
    pi1 = netlist.add_gate(GateType::kPrimaryInput, "pi1");
    ff0 = netlist.add_gate(GateType::kScanFlop, "ff0");
    u0 = netlist.add_gate(GateType::kAnd, "u0");
    u1 = netlist.add_gate(GateType::kInv, "u1");
    u2 = netlist.add_gate(GateType::kXor, "u2");
    po0 = netlist.add_gate(GateType::kPrimaryOutput, "po0");

    n_pi0 = netlist.add_net("n_pi0");
    n_pi1 = netlist.add_net("n_pi1");
    n_q = netlist.add_net("n_q");
    n4 = netlist.add_net("n4");
    n5 = netlist.add_net("n5");
    n6 = netlist.add_net("n6");

    netlist.set_output(pi0, n_pi0);
    netlist.set_output(pi1, n_pi1);
    netlist.set_output(ff0, n_q);
    netlist.set_output(u0, n4);
    netlist.set_output(u1, n5);
    netlist.set_output(u2, n6);

    netlist.connect_input(u0, n_pi0);
    netlist.connect_input(u0, n_pi1);
    netlist.connect_input(u1, n4);
    netlist.connect_input(u2, n4);
    netlist.connect_input(u2, n_q);
    netlist.connect_input(ff0, n5);
    netlist.connect_input(po0, n6);

    netlist.finalize();
  }
};

// A small random-but-deterministic scan design for property tests: fast to
// build and simulate, large enough to exercise reconvergence and chains.
inline GeneratorConfig small_config(std::uint64_t seed = 7) {
  GeneratorConfig config;
  config.name = "small";
  config.num_gates = 300;
  config.num_pis = 12;
  config.num_pos = 10;
  config.num_flops = 32;
  config.target_depth = 10;
  config.seed = seed;
  return config;
}

inline Netlist small_netlist(std::uint64_t seed = 7) {
  return generate_netlist(small_config(seed));
}

// A fully prepared small design (tiers, MIVs, scan, compactor, patterns,
// good-machine simulation) for diagnosis-layer tests.
struct SmallDesign {
  Netlist netlist;
  TierAssignment tiers;
  MivMap mivs;
  ScanChains scan;
  XorCompactor compactor;
  AtpgResult atpg;
  LocSimulator sim;

  explicit SmallDesign(std::uint64_t seed = 7, std::int32_t num_chains = 8,
                       std::int32_t chains_per_channel = 4)
      : netlist(small_netlist(seed)),
        tiers(partition_tiers(netlist, {})),
        mivs(netlist, tiers),
        scan(netlist, num_chains, seed ^ 0x5CA4),
        compactor(scan, chains_per_channel),
        atpg([&] {
          AtpgOptions opt;
          opt.max_patterns = 96;
          opt.seed = seed ^ 0xA7B6;
          return generate_tdf_patterns(netlist, opt);
        }()),
        sim(netlist) {
    sim.run(atpg.patterns);
  }

  DesignContext context() const {
    DesignContext ctx;
    ctx.netlist = &netlist;
    ctx.tiers = &tiers;
    ctx.mivs = &mivs;
    ctx.scan = &scan;
    ctx.compactor = &compactor;
    ctx.patterns = &atpg.patterns;
    ctx.good = &sim;
    ctx.fail_memory_patterns = 0;
    return ctx;
  }
};

}  // namespace m3dfl::testing

#endif  // M3DFL_TESTS_TEST_HELPERS_H_
