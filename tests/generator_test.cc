#include <gtest/gtest.h>

#include "netlist/generator.h"
#include "netlist/verilog_io.h"
#include "test_helpers.h"

namespace m3dfl {
namespace {

TEST(GeneratorTest, DeterministicForSameConfig) {
  const Netlist a = generate_netlist(testing::small_config(5));
  const Netlist b = generate_netlist(testing::small_config(5));
  EXPECT_EQ(to_mnl(a), to_mnl(b));
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  const Netlist a = generate_netlist(testing::small_config(5));
  const Netlist b = generate_netlist(testing::small_config(6));
  EXPECT_NE(to_mnl(a), to_mnl(b));
}

TEST(GeneratorTest, HonorsPortAndFlopCounts) {
  const GeneratorConfig config = testing::small_config(7);
  const Netlist nl = generate_netlist(config);
  EXPECT_EQ(static_cast<std::int32_t>(nl.primary_inputs().size()),
            config.num_pis);
  EXPECT_EQ(static_cast<std::int32_t>(nl.primary_outputs().size()),
            config.num_pos);
  EXPECT_EQ(static_cast<std::int32_t>(nl.flops().size()), config.num_flops);
  // Gate target plus the XOR collapse trees, within a modest overshoot.
  EXPECT_GE(nl.num_logic_gates(), config.num_gates);
  EXPECT_LE(nl.num_logic_gates(), config.num_gates + config.num_gates / 2);
}

TEST(GeneratorTest, DepthIsBounded) {
  GeneratorConfig config = testing::small_config(8);
  config.target_depth = 9;
  const Netlist nl = generate_netlist(config);
  // The elaborated logic respects the depth target exactly; only the XOR
  // collapse trees (named "xcoll*") may extend past it.
  for (GateId g : nl.topo_order()) {
    if (nl.gate(g).name.rfind("xcoll", 0) == 0) continue;
    EXPECT_LE(nl.level(g), config.target_depth) << nl.gate(g).name;
  }
}

TEST(GeneratorTest, EveryNetHasSinkOrFeedsState) {
  // The collapse step should leave (almost) no dangling logic: only flop Q
  // nets may be sink-less (observed by scan anyway).
  const Netlist nl = testing::small_netlist(11);
  std::int32_t dangling_logic = 0;
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    const Net& net = nl.net(n);
    if (net.sinks.empty() &&
        nl.gate(net.driver).type != GateType::kScanFlop) {
      ++dangling_logic;
    }
  }
  EXPECT_EQ(dangling_logic, 0);
}

TEST(GeneratorTest, ChainBiasCreatesLongerChains) {
  GeneratorConfig plain = testing::small_config(13);
  GeneratorConfig chained = plain;
  chained.chain_extend_prob = 0.8;
  chained.mix[static_cast<std::size_t>(GateType::kBuf)] = 0.15;
  chained.mix[static_cast<std::size_t>(GateType::kInv)] = 0.2;

  const auto longest_chain = [](const Netlist& nl) {
    // Longest run of single-input single-sink buffers/inverters.
    std::int32_t best = 0;
    for (GateId g = 0; g < nl.num_gates(); ++g) {
      std::int32_t len = 0;
      GateId cur = g;
      while (true) {
        const Gate& gate = nl.gate(cur);
        if (gate.type != GateType::kBuf && gate.type != GateType::kInv) break;
        ++len;
        const Net& out = nl.net(gate.fanout);
        if (out.sinks.size() != 1) break;
        cur = out.sinks[0].gate;
      }
      best = std::max(best, len);
    }
    return best;
  };
  EXPECT_GT(longest_chain(generate_netlist(chained)),
            longest_chain(generate_netlist(plain)));
}

TEST(GeneratorTest, RejectsInvalidConfigs) {
  GeneratorConfig config = testing::small_config(1);
  config.num_pis = 0;
  EXPECT_THROW(generate_netlist(config), Error);
  config = testing::small_config(1);
  config.target_depth = 1;
  EXPECT_THROW(generate_netlist(config), Error);
  config = testing::small_config(1);
  config.num_gates = 0;
  EXPECT_THROW(generate_netlist(config), Error);
}

class GeneratorSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorSweep, ProducesFinalizableScanDesign) {
  const Netlist nl = testing::small_netlist(GetParam());
  EXPECT_TRUE(nl.finalized());
  // Every flop has a D connection; every PO reads something.
  for (GateId ff : nl.flops()) {
    EXPECT_EQ(nl.gate(ff).fanin.size(), 1u);
  }
  for (GateId po : nl.primary_outputs()) {
    EXPECT_EQ(nl.gate(po).fanin.size(), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 21, 42, 1234));

}  // namespace
}  // namespace m3dfl
