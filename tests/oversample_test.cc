#include <set>

#include <gtest/gtest.h>

#include "gnn/oversample.h"

namespace m3dfl {
namespace {

Subgraph base_graph(std::int32_t n = 4) {
  Subgraph sg;
  sg.features = Matrix(n, kNumNodeFeatures);
  for (std::int32_t i = 0; i < n; ++i) {
    sg.nodes.push_back(i * 10);  // arbitrary hetero ids
    for (std::int32_t j = 0; j < kNumNodeFeatures; ++j) {
      sg.features.at(i, j) = 0.25f;
    }
    if (i > 0) {
      sg.edge_u.push_back(i - 1);
      sg.edge_v.push_back(i);
    }
  }
  sg.tier_label = 1;
  return sg;
}

TEST(OversampleTest, BufferInsertionShape) {
  const Subgraph sg = base_graph();
  const Subgraph out = insert_dummy_buffers(sg, 2, 3);
  EXPECT_EQ(out.num_nodes(), sg.num_nodes() + 3);
  EXPECT_EQ(out.features.rows(), out.num_nodes());
  EXPECT_EQ(out.edge_u.size(), sg.edge_u.size() + 3);
  EXPECT_EQ(out.tier_label, sg.tier_label);
  // Original features untouched.
  for (std::int32_t i = 0; i < sg.num_nodes(); ++i) {
    for (std::int32_t j = 0; j < kNumNodeFeatures; ++j) {
      EXPECT_FLOAT_EQ(out.features.at(i, j), sg.features.at(i, j));
    }
  }
}

TEST(OversampleTest, BufferChainTopology) {
  const Subgraph sg = base_graph();
  const Subgraph out = insert_dummy_buffers(sg, 1, 2);
  const std::int32_t base = sg.num_nodes();
  // target -> buf0 -> buf1.
  const std::size_t e = sg.edge_u.size();
  EXPECT_EQ(out.edge_u[e], 1);
  EXPECT_EQ(out.edge_v[e], base);
  EXPECT_EQ(out.edge_u[e + 1], base);
  EXPECT_EQ(out.edge_v[e + 1], base + 1);
}

TEST(OversampleTest, BufferFeaturesAreBufferLike) {
  const Subgraph sg = base_graph();
  const Subgraph out = insert_dummy_buffers(sg, 0, 1);
  const std::int32_t buf = sg.num_nodes();
  EXPECT_FLOAT_EQ(out.features.at(buf, 5), 1.0f);  // gate output
  EXPECT_FLOAT_EQ(out.features.at(buf, 0), 1.0f / 5.0f);  // fan-in 1
  // Inherits the target's observation profile (e.g. Topedge stats col 9).
  EXPECT_FLOAT_EQ(out.features.at(buf, 9), sg.features.at(0, 9));
}

TEST(OversampleTest, NodeIdsStayUnique) {
  const Subgraph sg = base_graph();
  const Subgraph out = insert_dummy_buffers(sg, 0, 4);
  std::set<NodeId> ids(out.nodes.begin(), out.nodes.end());
  EXPECT_EQ(ids.size(), out.nodes.size());
}

TEST(OversampleTest, RejectsBadArguments) {
  const Subgraph sg = base_graph();
  EXPECT_THROW(insert_dummy_buffers(sg, -1, 1), Error);
  EXPECT_THROW(insert_dummy_buffers(sg, sg.num_nodes(), 1), Error);
  EXPECT_THROW(insert_dummy_buffers(sg, 0, 0), Error);
  EXPECT_THROW(insert_dummy_buffers(Subgraph{}, 0, 1), Error);
}

TEST(OversampleTest, BalanceEqualizesClasses) {
  Rng rng(3);
  std::vector<Subgraph> graphs;
  std::vector<int> labels;
  for (int i = 0; i < 18; ++i) {
    graphs.push_back(base_graph());
    labels.push_back(1);
  }
  for (int i = 0; i < 2; ++i) {
    graphs.push_back(base_graph());
    labels.push_back(0);
  }
  balance_with_buffers(graphs, labels, rng);
  std::size_t positives = 0;
  for (int l : labels) positives += l == 1 ? 1 : 0;
  EXPECT_EQ(positives, labels.size() - positives);
  EXPECT_EQ(graphs.size(), labels.size());
  // Synthetic graphs are strictly larger than their sources.
  EXPECT_GT(graphs.back().num_nodes(), base_graph().num_nodes());
}

TEST(OversampleTest, BalancedInputUntouched) {
  Rng rng(4);
  std::vector<Subgraph> graphs = {base_graph(), base_graph()};
  std::vector<int> labels = {0, 1};
  balance_with_buffers(graphs, labels, rng);
  EXPECT_EQ(graphs.size(), 2u);
}

TEST(OversampleTest, MinorityCanBeThePositiveClass) {
  Rng rng(5);
  std::vector<Subgraph> graphs;
  std::vector<int> labels;
  for (int i = 0; i < 10; ++i) {
    graphs.push_back(base_graph());
    labels.push_back(0);
  }
  graphs.push_back(base_graph());
  labels.push_back(1);
  balance_with_buffers(graphs, labels, rng);
  std::size_t positives = 0;
  for (int l : labels) positives += l == 1 ? 1 : 0;
  EXPECT_EQ(positives, labels.size() - positives);
}

}  // namespace
}  // namespace m3dfl
