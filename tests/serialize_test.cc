#include <sstream>

#include <gtest/gtest.h>

#include "core/framework.h"
#include "gnn/serialize.h"
#include "gnn/trainer.h"

namespace m3dfl {
namespace {

Subgraph toy_graph(Rng& rng, int label) {
  Subgraph sg;
  const std::int32_t n = 5;
  sg.features = Matrix(n, kNumNodeFeatures);
  for (std::int32_t i = 0; i < n; ++i) {
    sg.nodes.push_back(i);
    for (std::int32_t j = 0; j < kNumNodeFeatures; ++j) {
      sg.features.at(i, j) = static_cast<float>(rng.next_double());
    }
    sg.features.at(i, 3) = label == 1 ? 0.9f : 0.1f;
    if (i > 0) {
      sg.edge_u.push_back(i - 1);
      sg.edge_v.push_back(i);
    }
  }
  sg.tier_label = label;
  if (n > 2) {
    sg.miv_local = {2};
    sg.miv_ids = {0};
    sg.miv_label = {static_cast<std::int8_t>(label)};
  }
  return sg;
}

GcnModelConfig small_config() {
  GcnModelConfig config;
  config.hidden = 8;
  config.num_layers = 2;
  return config;
}

TEST(SerializeTest, MatrixRoundTripIsExact) {
  Rng rng(3);
  Matrix m(4, 7);
  for (float& x : m.data()) x = static_cast<float>(rng.next_gaussian());
  std::stringstream ss;
  save_matrix(ss, m);
  const Matrix back = load_matrix(ss);
  ASSERT_EQ(back.rows(), m.rows());
  ASSERT_EQ(back.cols(), m.cols());
  for (std::int32_t i = 0; i < m.rows(); ++i) {
    for (std::int32_t j = 0; j < m.cols(); ++j) {
      EXPECT_EQ(back.at(i, j), m.at(i, j));  // bit-exact via hexfloat
    }
  }
}

TEST(SerializeTest, TierPredictorRoundTripPreservesPredictions) {
  Rng rng(5);
  std::vector<Subgraph> train;
  for (int i = 0; i < 20; ++i) train.push_back(toy_graph(rng, i % 2));
  TierPredictor model(small_config());
  TrainOptions opt;
  opt.epochs = 30;
  train_tier_predictor(model, train, opt);

  const TierPredictor restored =
      tier_predictor_from_string(tier_predictor_to_string(model));
  for (const Subgraph& g : train) {
    const auto a = model.predict(g);
    const auto b = restored.predict(g);
    EXPECT_DOUBLE_EQ(a[0], b[0]);
    EXPECT_DOUBLE_EQ(a[1], b[1]);
  }
}

TEST(SerializeTest, MivPinpointerRoundTrip) {
  Rng rng(6);
  std::vector<Subgraph> train;
  for (int i = 0; i < 20; ++i) train.push_back(toy_graph(rng, i % 2));
  MivPinpointer model(small_config());
  TrainOptions opt;
  opt.epochs = 30;
  train_miv_pinpointer(model, train, opt);

  std::stringstream ss;
  save_model(ss, model);
  const MivPinpointer restored = load_miv_pinpointer(ss);
  for (const Subgraph& g : train) {
    const auto a = model.predict(g);
    const auto b = restored.predict(g);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
  }
}

TEST(SerializeTest, PruneClassifierRoundTrip) {
  Rng rng(7);
  std::vector<Subgraph> graphs;
  std::vector<int> labels;
  for (int i = 0; i < 20; ++i) {
    graphs.push_back(toy_graph(rng, i % 2));
    labels.push_back(i % 2);
  }
  TierPredictor pretrained(small_config());
  TrainOptions opt;
  opt.epochs = 20;
  train_tier_predictor(pretrained, graphs, opt);
  PruneClassifier classifier(pretrained, small_config());
  train_prune_classifier(classifier, graphs, labels, opt);

  std::stringstream ss;
  save_model(ss, classifier);
  const PruneClassifier restored = load_prune_classifier(ss, pretrained);
  for (const Subgraph& g : graphs) {
    EXPECT_DOUBLE_EQ(classifier.predict_prune_prob(g),
                     restored.predict_prune_prob(g));
  }
}

TEST(SerializeTest, FrameworkRoundTripPreservesBehaviour) {
  Rng rng(9);
  std::vector<Subgraph> train;
  for (int i = 0; i < 30; ++i) train.push_back(toy_graph(rng, i % 2));
  FrameworkOptions options;
  options.model = small_config();
  options.training.epochs = 30;
  DiagnosisFramework framework(options);
  framework.train(train);

  std::stringstream ss;
  framework.save(ss);
  DiagnosisFramework restored(options);
  restored.load(ss);
  EXPECT_TRUE(restored.trained());
  EXPECT_DOUBLE_EQ(restored.tp_threshold(), framework.tp_threshold());
  for (const Subgraph& g : train) {
    const FrameworkPrediction a = framework.predict(g);
    const FrameworkPrediction b = restored.predict(g);
    EXPECT_EQ(a.tier, b.tier);
    EXPECT_DOUBLE_EQ(a.confidence, b.confidence);
    EXPECT_EQ(a.high_confidence, b.high_confidence);
    EXPECT_EQ(a.faulty_mivs, b.faulty_mivs);
  }
}

TEST(SerializeTest, UntrainedFrameworkRefusesToSave) {
  DiagnosisFramework framework;
  std::stringstream ss;
  EXPECT_THROW(framework.save(ss), Error);
}

TEST(SerializeTest, RejectsWrongModelType) {
  Rng rng(8);
  TierPredictor model(small_config());
  std::stringstream ss;
  save_model(ss, model);
  EXPECT_THROW(load_miv_pinpointer(ss), Error);
}

TEST(SerializeTest, RejectsTruncatedStream) {
  TierPredictor model(small_config());
  std::string text = tier_predictor_to_string(model);
  text.resize(text.size() / 2);
  EXPECT_THROW(tier_predictor_from_string(text), Error);
}

TEST(SerializeTest, RejectsGarbage) {
  EXPECT_THROW(tier_predictor_from_string("not a model"), Error);
}

}  // namespace
}  // namespace m3dfl
