#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/framework.h"
#include "gnn/serialize.h"
#include "gnn/trainer.h"
#include "util/artifact.h"

namespace m3dfl {
namespace {

Subgraph toy_graph(Rng& rng, int label) {
  Subgraph sg;
  const std::int32_t n = 5;
  sg.features = Matrix(n, kNumNodeFeatures);
  for (std::int32_t i = 0; i < n; ++i) {
    sg.nodes.push_back(i);
    for (std::int32_t j = 0; j < kNumNodeFeatures; ++j) {
      sg.features.at(i, j) = static_cast<float>(rng.next_double());
    }
    // Columns 3/5/6 are exclusive-coded (tier code, binary flags); keep
    // them on-contract so the training preflight lint accepts the set.
    sg.features.at(i, 3) = label == 1 ? 1.0f : 0.0f;
    sg.features.at(i, 5) = rng.next_double() < 0.5 ? 0.0f : 1.0f;
    sg.features.at(i, 6) = rng.next_double() < 0.5 ? 0.0f : 1.0f;
    if (i > 0) {
      sg.edge_u.push_back(i - 1);
      sg.edge_v.push_back(i);
    }
  }
  sg.tier_label = label;
  if (n > 2) {
    sg.miv_local = {2};
    sg.miv_ids = {0};
    sg.miv_label = {static_cast<std::int8_t>(label)};
  }
  return sg;
}

GcnModelConfig small_config() {
  GcnModelConfig config;
  config.hidden = 8;
  config.num_layers = 2;
  return config;
}

TEST(SerializeTest, MatrixRoundTripIsExact) {
  Rng rng(3);
  Matrix m(4, 7);
  for (float& x : m.data()) x = static_cast<float>(rng.next_gaussian());
  std::stringstream ss;
  save_matrix(ss, m);
  const Matrix back = load_matrix(ss);
  ASSERT_EQ(back.rows(), m.rows());
  ASSERT_EQ(back.cols(), m.cols());
  for (std::int32_t i = 0; i < m.rows(); ++i) {
    for (std::int32_t j = 0; j < m.cols(); ++j) {
      EXPECT_EQ(back.at(i, j), m.at(i, j));  // bit-exact via hexfloat
    }
  }
}

TEST(SerializeTest, TierPredictorRoundTripPreservesPredictions) {
  Rng rng(5);
  std::vector<Subgraph> train;
  for (int i = 0; i < 20; ++i) train.push_back(toy_graph(rng, i % 2));
  TierPredictor model(small_config());
  TrainOptions opt;
  opt.epochs = 30;
  train_tier_predictor(model, train, opt);

  const TierPredictor restored =
      tier_predictor_from_string(tier_predictor_to_string(model));
  for (const Subgraph& g : train) {
    const auto a = model.predict(g);
    const auto b = restored.predict(g);
    EXPECT_DOUBLE_EQ(a[0], b[0]);
    EXPECT_DOUBLE_EQ(a[1], b[1]);
  }
}

TEST(SerializeTest, MivPinpointerRoundTrip) {
  Rng rng(6);
  std::vector<Subgraph> train;
  for (int i = 0; i < 20; ++i) train.push_back(toy_graph(rng, i % 2));
  MivPinpointer model(small_config());
  TrainOptions opt;
  opt.epochs = 30;
  train_miv_pinpointer(model, train, opt);

  std::stringstream ss;
  save_model(ss, model);
  const MivPinpointer restored = load_miv_pinpointer(ss);
  for (const Subgraph& g : train) {
    const auto a = model.predict(g);
    const auto b = restored.predict(g);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
  }
}

TEST(SerializeTest, PruneClassifierRoundTrip) {
  Rng rng(7);
  std::vector<Subgraph> graphs;
  std::vector<int> labels;
  for (int i = 0; i < 20; ++i) {
    graphs.push_back(toy_graph(rng, i % 2));
    labels.push_back(i % 2);
  }
  TierPredictor pretrained(small_config());
  TrainOptions opt;
  opt.epochs = 20;
  train_tier_predictor(pretrained, graphs, opt);
  PruneClassifier classifier(pretrained, small_config());
  train_prune_classifier(classifier, graphs, labels, opt);

  std::stringstream ss;
  save_model(ss, classifier);
  const PruneClassifier restored = load_prune_classifier(ss, pretrained);
  for (const Subgraph& g : graphs) {
    EXPECT_DOUBLE_EQ(classifier.predict_prune_prob(g),
                     restored.predict_prune_prob(g));
  }
}

TEST(SerializeTest, FrameworkRoundTripPreservesBehaviour) {
  Rng rng(9);
  std::vector<Subgraph> train;
  for (int i = 0; i < 30; ++i) train.push_back(toy_graph(rng, i % 2));
  FrameworkOptions options;
  options.model = small_config();
  options.training.epochs = 30;
  DiagnosisFramework framework(options);
  framework.train(train);

  std::stringstream ss;
  framework.save(ss);
  DiagnosisFramework restored(options);
  restored.load(ss);
  EXPECT_TRUE(restored.trained());
  EXPECT_DOUBLE_EQ(restored.tp_threshold(), framework.tp_threshold());
  for (const Subgraph& g : train) {
    const FrameworkPrediction a = framework.predict(g);
    const FrameworkPrediction b = restored.predict(g);
    EXPECT_EQ(a.tier, b.tier);
    EXPECT_DOUBLE_EQ(a.confidence, b.confidence);
    EXPECT_EQ(a.high_confidence, b.high_confidence);
    EXPECT_EQ(a.faulty_mivs, b.faulty_mivs);
  }
}

TEST(SerializeTest, UntrainedFrameworkRefusesToSave) {
  DiagnosisFramework framework;
  std::stringstream ss;
  EXPECT_THROW(framework.save(ss), Error);
}

TEST(SerializeTest, RejectsWrongModelType) {
  Rng rng(8);
  TierPredictor model(small_config());
  std::stringstream ss;
  save_model(ss, model);
  EXPECT_THROW(load_miv_pinpointer(ss), Error);
}

TEST(SerializeTest, RejectsTruncatedStream) {
  TierPredictor model(small_config());
  std::string text = tier_predictor_to_string(model);
  text.resize(text.size() / 2);
  EXPECT_THROW(tier_predictor_from_string(text), Error);
}

TEST(SerializeTest, RejectsGarbage) {
  EXPECT_THROW(tier_predictor_from_string("not a model"), Error);
}

// ---- Container property tests -----------------------------------------------

template <typename SaveFn>
std::string saved_string(const SaveFn& save) {
  std::ostringstream os;
  save(os);
  return os.str();
}

// save -> load -> save must be byte-identical: the artifact *is* the model,
// so any drift through a round trip would silently fork the two.
TEST(SerializeTest, TierPredictorSaveLoadSaveIsByteIdentical) {
  TierPredictor model(small_config());
  const std::string first = tier_predictor_to_string(model);
  const std::string second =
      tier_predictor_to_string(tier_predictor_from_string(first));
  EXPECT_EQ(first, second);
}

TEST(SerializeTest, MivPinpointerSaveLoadSaveIsByteIdentical) {
  MivPinpointer model(small_config());
  const std::string first =
      saved_string([&](std::ostream& os) { save_model(os, model); });
  std::istringstream is(first);
  const MivPinpointer restored = load_miv_pinpointer(is);
  const std::string second =
      saved_string([&](std::ostream& os) { save_model(os, restored); });
  EXPECT_EQ(first, second);
}

TEST(SerializeTest, PruneClassifierSaveLoadSaveIsByteIdentical) {
  TierPredictor host(small_config());
  PruneClassifier model(host, small_config());
  const std::string first =
      saved_string([&](std::ostream& os) { save_model(os, model); });
  std::istringstream is(first);
  const PruneClassifier restored = load_prune_classifier(is, host);
  const std::string second =
      saved_string([&](std::ostream& os) { save_model(os, restored); });
  EXPECT_EQ(first, second);
}

// Every single-byte corruption of a saved artifact must be rejected:
// exhaustively over every byte offset (header and trailer bytes fail
// structurally, payload bytes fail the CRC), and with several corruption
// values per offset sampled deterministically.
TEST(SerializeTest, EverySingleByteCorruptionIsDetected) {
  TierPredictor model(small_config());
  const std::string good = tier_predictor_to_string(model);
  ASSERT_TRUE(is_artifact(good));
  Rng rng(0xC0DE);
  for (std::size_t i = 0; i < good.size(); ++i) {
    std::string bad = good;
    // A flip to an arbitrary different value plus the classic single-bit
    // flip at this offset.
    const char flip = static_cast<char>(
        static_cast<unsigned char>(bad[i]) ^
        static_cast<unsigned char>(1 + rng.next_below(255)));
    bad[i] = flip;
    EXPECT_THROW(tier_predictor_from_string(bad), Error)
        << "corruption at byte " << i << " was not detected";
    std::string bit = good;
    bit[i] = static_cast<char>(static_cast<unsigned char>(bit[i]) ^ 0x01);
    EXPECT_THROW(tier_predictor_from_string(bit), Error)
        << "bit flip at byte " << i << " was not detected";
  }
}

// Every proper prefix of an artifact is a truncation and must be rejected —
// including dropping only the final newline.
TEST(SerializeTest, EveryTruncationIsDetected) {
  TierPredictor model(small_config());
  const std::string good = tier_predictor_to_string(model);
  for (std::size_t len = 0; len < good.size(); ++len) {
    EXPECT_THROW(tier_predictor_from_string(good.substr(0, len)), Error)
        << "truncation to " << len << " bytes was not detected";
  }
}

TEST(SerializeTest, RejectsTrailingGarbageAfterTrailer) {
  TierPredictor model(small_config());
  const std::string good = tier_predictor_to_string(model);
  EXPECT_THROW(tier_predictor_from_string(good + "x"), Error);
  EXPECT_THROW(tier_predictor_from_string(good + "\n"), Error);
}

// The migration shim: a bare pre-container stream (exactly the payload the
// container wraps) still loads.
TEST(SerializeTest, LegacyBareStreamStillLoads) {
  TierPredictor model(small_config());
  const std::string wrapped = tier_predictor_to_string(model);
  const std::string legacy =
      read_artifact(wrapped, kTierPredictorKind, "<test>");
  ASSERT_FALSE(is_artifact(legacy));
  ASSERT_EQ(legacy.rfind("m3dfl-model 1 tier-predictor", 0), 0u);
  const TierPredictor restored = tier_predictor_from_string(legacy);
  EXPECT_EQ(tier_predictor_to_string(restored), wrapped);
}

TEST(SerializeTest, LegacyFrameworkStreamStillLoads) {
  Rng rng(11);
  std::vector<Subgraph> train;
  for (int i = 0; i < 20; ++i) train.push_back(toy_graph(rng, i % 2));
  FrameworkOptions options;
  options.model = small_config();
  options.training.epochs = 10;
  DiagnosisFramework framework(options);
  framework.train(train);

  std::ostringstream os;
  framework.save(os);
  const std::string legacy =
      read_artifact(os.str(), kFrameworkKind, "<test>");
  ASSERT_EQ(legacy.rfind("m3dfl-framework 1", 0), 0u);
  std::istringstream is(legacy);
  DiagnosisFramework restored(options);
  restored.load(is);
  EXPECT_TRUE(restored.trained());
  EXPECT_DOUBLE_EQ(restored.tp_threshold(), framework.tp_threshold());
}

TEST(SerializeTest, FrameworkSaveLoadSaveIsByteIdentical) {
  Rng rng(12);
  std::vector<Subgraph> train;
  for (int i = 0; i < 20; ++i) train.push_back(toy_graph(rng, i % 2));
  FrameworkOptions options;
  options.model = small_config();
  options.training.epochs = 10;
  DiagnosisFramework framework(options);
  framework.train(train);

  std::ostringstream first;
  framework.save(first);
  std::istringstream is(first.str());
  DiagnosisFramework restored(options);
  restored.load(is);
  std::ostringstream second;
  restored.save(second);
  EXPECT_EQ(first.str(), second.str());
}

// Error messages must identify the source and what went wrong, so a bad
// artifact in production names itself.
TEST(SerializeTest, ErrorsCiteSourceAndVersions) {
  TierPredictor model(small_config());
  std::string text = tier_predictor_to_string(model);
  const auto pos = text.find(" 2 ");
  ASSERT_NE(pos, std::string::npos);
  text[pos + 1] = '7';  // future format version
  std::istringstream is(text);
  try {
    load_tier_predictor(is, "model.m3dfl");
    FAIL() << "future version accepted";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("model.m3dfl"), std::string::npos) << what;
    EXPECT_NE(what.find("2"), std::string::npos) << what;
    EXPECT_NE(what.find("7"), std::string::npos) << what;
  }
}

// ---- ParseLimits guardrails (util/limits.h) ---------------------------------

std::string artifact_error(std::string_view text, const std::string& kind,
                           const ParseLimits& limits = {}) {
  try {
    read_artifact(text, kind, "<test>", limits);
  } catch (const Error& e) {
    return e.what();
  }
  ADD_FAILURE() << "adversarial artifact accepted";
  return {};
}

// A declared matrix shape is adversarial input: "matrix 60000 60000" is
// 14 GB of floats.  The loader must reject at the policy cap before sizing
// the Matrix — under ASan in CI an accidental revert OOMs instead of failing
// this string match.
TEST(SerializeLimitsTest, MatrixShapeBombRejectsBeforeAllocating) {
  TierPredictor model(small_config());
  std::string bare =
      read_artifact(tier_predictor_to_string(model), kTierPredictorKind,
                    "<test>");
  const auto pos = bare.find("matrix ");
  ASSERT_NE(pos, std::string::npos);
  const auto eol = bare.find('\n', pos);
  bare.replace(pos, eol - pos, "matrix 60000 60000");
  try {
    tier_predictor_from_string(bare);
    FAIL() << "matrix shape bomb accepted";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("matrix shape 60000 x 60000"), std::string::npos)
        << what;
    EXPECT_NE(what.find("limit exceeded: matrix cells"), std::string::npos)
        << what;
  }
}

// The container reader must validate the declared payload length against the
// cap and the remaining bytes *before* using it in any offset arithmetic —
// 2^64-1 would otherwise wrap `payload_size + 1` to zero and pass the
// bounds check it was supposed to fail.
TEST(SerializeLimitsTest, DeclaredPayloadBytesCapCited) {
  for (const char* declared :
       {"999999999999999999", "18446744073709551615"}) {
    std::string text = artifact_to_string("fuzz-blob", "hello");
    const auto pos = text.find("payload-bytes 5");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, std::string("payload-bytes 5").size(),
                 std::string("payload-bytes ") + declared);
    const std::string msg = artifact_error(text, "fuzz-blob");
    EXPECT_NE(msg.find("<test>: artifact byte"), std::string::npos) << msg;
    EXPECT_NE(msg.find("limit exceeded: declared payload bytes"),
              std::string::npos)
        << msg;
  }
}

TEST(SerializeLimitsTest, ContainerByteCapCited) {
  ParseLimits limits;
  limits.max_file_bytes = 16;
  const std::string text = artifact_to_string("fuzz-blob", "payload payload");
  ASSERT_GT(text.size(), limits.max_file_bytes);
  const std::string msg = artifact_error(text, "fuzz-blob", limits);
  EXPECT_NE(msg.find("<test>: artifact byte 0"), std::string::npos) << msg;
  EXPECT_NE(msg.find("limit exceeded: container bytes"), std::string::npos)
      << msg;
}

// Satellite of the fuzzing subsystem: every truncation of a well-formed
// container must reject with an offset-cited Error — never crash, read out
// of bounds, or fail through any other exception type.
TEST(SerializeLimitsTest, ArtifactTruncationAtEveryByteIsCited) {
  const std::string good = artifact_to_string("fuzz-blob", "the payload");
  for (std::size_t len = 0; len < good.size(); ++len) {
    try {
      read_artifact(good.substr(0, len), "fuzz-blob", "<test>");
      ADD_FAILURE() << "truncation to " << len << " bytes accepted";
    } catch (const Error& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("<test>: artifact byte"), std::string::npos)
          << "truncation to " << len << " bytes: " << msg;
    }
  }
}

}  // namespace
}  // namespace m3dfl
