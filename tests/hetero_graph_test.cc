#include <gtest/gtest.h>

#include "graph/hetero_graph.h"
#include "test_helpers.h"

namespace m3dfl {
namespace {

// TinyCircuit, all gates on the bottom tier: no MIV nodes.
struct TinyGraph {
  testing::TinyCircuit c;
  TierAssignment tiers;
  MivMap mivs;
  HeteroGraph graph;

  explicit TinyGraph(int u2_tier = kBottomTier)
      : tiers(std::vector<std::int8_t>(
            static_cast<std::size_t>(c.netlist.num_gates()), kBottomTier)) {
    tiers.set_tier(c.u2, u2_tier);
    mivs = MivMap(c.netlist, tiers);
    graph = HeteroGraph(c.netlist, tiers, mivs);
  }
};

TEST(HeteroGraphTest, NodeCounts) {
  TinyGraph t;
  EXPECT_EQ(t.graph.num_pins(), t.c.netlist.num_pins());
  EXPECT_EQ(t.graph.num_mivs(), 0);
  EXPECT_EQ(t.graph.num_nodes(), t.c.netlist.num_pins());
}

TEST(HeteroGraphTest, GateInternalAndNetEdges) {
  TinyGraph t;
  const Netlist& nl = t.c.netlist;
  // u0 input pins point at u0's output pin.
  const PinId u0_out = nl.output_pin(t.c.u0);
  const PinId u0_a = nl.input_pin(t.c.u0, 0);
  bool found = false;
  for (NodeId v : t.graph.successors(u0_a)) found = found || v == u0_out;
  EXPECT_TRUE(found);
  // Net n4: u0.Y -> u1.A0 and u2.A0.
  const auto succ = t.graph.successors(u0_out);
  EXPECT_EQ(succ.size(), 2u);
  // Flops do not conduct: ff0 D pin has no successors.
  EXPECT_TRUE(t.graph.successors(nl.input_pin(t.c.ff0, 0)).empty());
  // Predecessor symmetry.
  bool back = false;
  for (NodeId v : t.graph.predecessors(u0_out)) back = back || v == u0_a;
  EXPECT_TRUE(back);
}

TEST(HeteroGraphTest, MivNodeSplicedIntoCrossTierNet) {
  TinyGraph t(kTopTier);  // u2 on top: nets n4 and n_q cross
  const Netlist& nl = t.c.netlist;
  ASSERT_GE(t.graph.num_mivs(), 1);
  const MivId miv = t.mivs.miv_of_net(t.c.n4);
  ASSERT_NE(miv, kNullMiv);
  const NodeId miv_node = t.graph.miv_node(miv);
  EXPECT_TRUE(t.graph.is_miv_node(miv_node));
  EXPECT_EQ(t.graph.miv_of_node(miv_node), miv);

  // Stem -> MIV -> far sink (u2.A0); near sink (u1.A0) connects directly.
  const PinId stem = nl.output_pin(t.c.u0);
  bool stem_to_miv = false;
  bool stem_to_near = false;
  bool stem_to_far = false;
  for (NodeId v : t.graph.successors(stem)) {
    stem_to_miv = stem_to_miv || v == miv_node;
    stem_to_near = stem_to_near || v == nl.input_pin(t.c.u1, 0);
    stem_to_far = stem_to_far || v == nl.input_pin(t.c.u2, 0);
  }
  EXPECT_TRUE(stem_to_miv);
  EXPECT_TRUE(stem_to_near);
  EXPECT_FALSE(stem_to_far);
  bool miv_to_far = false;
  for (NodeId v : t.graph.successors(miv_node)) {
    miv_to_far = miv_to_far || v == nl.input_pin(t.c.u2, 0);
  }
  EXPECT_TRUE(miv_to_far);
  // MIV node attributes.
  EXPECT_FLOAT_EQ(t.graph.loc(miv_node), 0.5f);
  EXPECT_TRUE(t.graph.near_miv(miv_node));
  EXPECT_EQ(t.graph.node_net(miv_node), t.c.n4);
}

TEST(HeteroGraphTest, NodeAttributes) {
  TinyGraph t(kTopTier);
  const Netlist& nl = t.c.netlist;
  const PinId u2_out = nl.output_pin(t.c.u2);
  EXPECT_FLOAT_EQ(t.graph.loc(u2_out), 1.0f);
  EXPECT_TRUE(t.graph.is_output_pin(u2_out));
  EXPECT_FALSE(t.graph.is_output_pin(nl.input_pin(t.c.u2, 0)));
  EXPECT_EQ(t.graph.level(u2_out), nl.level(t.c.u2));
  EXPECT_EQ(t.graph.node_net(u2_out), t.c.n6);
  // u2's input from n4 shares a net with an MIV.
  EXPECT_TRUE(t.graph.near_miv(nl.input_pin(t.c.u2, 0)));
  // pi0's output pin does not (n_pi0 stays on the bottom tier).
  EXPECT_FALSE(t.graph.near_miv(nl.output_pin(t.c.pi0)));
}

TEST(HeteroGraphTest, TopnodesAreObservationPoints) {
  TinyGraph t;
  const Netlist& nl = t.c.netlist;
  // 1 flop + 1 PO.
  EXPECT_EQ(t.graph.num_topnodes(), 2);
  EXPECT_EQ(t.graph.topnode_of_flop(0), nl.input_pin(t.c.ff0, 0));
  EXPECT_EQ(t.graph.topnode_of_po(0), nl.input_pin(t.c.po0, 0));
}

TEST(HeteroGraphTest, TopedgeDistancesHandChecked) {
  TinyGraph t;
  const Netlist& nl = t.c.netlist;
  // Cone of ff0.D (Topnode): u1.Y (1), u1.A0 (2), u0.Y (3), u0 inputs (4),
  // pi pins (5).
  // Cone of po0 (Topnode): u2.Y (1), u2 inputs (2), u0.Y (3) ... and ff0.Q.
  const PinId u0_out = nl.output_pin(t.c.u0);
  // u0.Y is in both cones at distance 3 each.
  EXPECT_EQ(t.graph.n_top(u0_out), 2);
  EXPECT_FLOAT_EQ(t.graph.dist_mean(u0_out), 3.0f);
  EXPECT_FLOAT_EQ(t.graph.dist_std(u0_out), 0.0f);
  EXPECT_FLOAT_EQ(t.graph.miv_mean(u0_out), 0.0f);
  // u1.Y is only in ff0's cone.
  const PinId u1_out = nl.output_pin(t.c.u1);
  EXPECT_EQ(t.graph.n_top(u1_out), 1);
  EXPECT_FLOAT_EQ(t.graph.dist_mean(u1_out), 1.0f);
  // ff0.Q is only in po0's cone (distance: q -> u2.A1 -> u2.Y -> po pin = 3).
  const PinId q = nl.output_pin(t.c.ff0);
  EXPECT_EQ(t.graph.n_top(q), 1);
  EXPECT_FLOAT_EQ(t.graph.dist_mean(q), 3.0f);
}

TEST(HeteroGraphTest, TopedgeMivCountsThroughSplicedNodes) {
  TinyGraph t(kTopTier);
  const Netlist& nl = t.c.netlist;
  // With u2 on the top tier, three nets cross: n4, n_q, and n6 (top-tier u2
  // drives the bottom-tier PO pad).  u0.Y reaches ff0.D in 3 hops with no
  // MIV, and po0 through two spliced MIV nodes in 5 hops:
  //   u0.Y -> MIV(n4) -> u2.A0 -> u2.Y -> MIV(n6) -> po0.A0.
  ASSERT_EQ(t.graph.num_mivs(), 3);
  const PinId u0_out = nl.output_pin(t.c.u0);
  EXPECT_EQ(t.graph.n_top(u0_out), 2);
  EXPECT_FLOAT_EQ(t.graph.dist_mean(u0_out), 4.0f);   // (3 + 5) / 2
  EXPECT_FLOAT_EQ(t.graph.dist_std(u0_out), 1.0f);
  EXPECT_FLOAT_EQ(t.graph.miv_mean(u0_out), 1.0f);    // (0 + 2) / 2
}

TEST(HeteroGraphTest, DegreesMatchAdjacency) {
  testing::SmallDesign d(4);
  const HeteroGraph graph(d.netlist, d.tiers, d.mivs);
  for (NodeId n = 0; n < graph.num_nodes(); n += 31) {
    EXPECT_EQ(graph.fanout_degree(n),
              static_cast<std::int32_t>(graph.successors(n).size()));
    EXPECT_EQ(graph.fanin_degree(n),
              static_cast<std::int32_t>(graph.predecessors(n).size()));
  }
}

TEST(HeteroGraphTest, EdgeCountConsistent) {
  testing::SmallDesign d(4);
  const HeteroGraph graph(d.netlist, d.tiers, d.mivs);
  std::int64_t succ_total = 0;
  for (NodeId n = 0; n < graph.num_nodes(); ++n) {
    succ_total += graph.fanout_degree(n);
  }
  EXPECT_EQ(succ_total, graph.num_edges());
}

}  // namespace
}  // namespace m3dfl
