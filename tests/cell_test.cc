#include <vector>

#include <gtest/gtest.h>

#include "netlist/cell.h"
#include "util/error.h"

namespace m3dfl {
namespace {

TEST(CellTest, NameRoundTrip) {
  for (int t = 0; t < kNumGateTypes; ++t) {
    const auto type = static_cast<GateType>(t);
    EXPECT_EQ(parse_gate_type(gate_type_name(type)), type);
  }
}

TEST(CellTest, ParseStripsFaninSuffix) {
  EXPECT_EQ(parse_gate_type("NAND3"), GateType::kNand);
  EXPECT_EQ(parse_gate_type("AND2"), GateType::kAnd);
  EXPECT_EQ(parse_gate_type("XOR2"), GateType::kXor);
}

TEST(CellTest, ParseRejectsUnknown) {
  EXPECT_THROW(parse_gate_type("FOO"), Error);
  EXPECT_THROW(parse_gate_type(""), Error);
}

TEST(CellTest, FaninBounds) {
  EXPECT_EQ(min_fanin(GateType::kPrimaryInput), 0);
  EXPECT_EQ(max_fanin(GateType::kPrimaryInput), 0);
  EXPECT_EQ(min_fanin(GateType::kInv), 1);
  EXPECT_EQ(max_fanin(GateType::kInv), 1);
  EXPECT_EQ(min_fanin(GateType::kNand), 2);
  EXPECT_EQ(max_fanin(GateType::kNand), 4);
  EXPECT_EQ(min_fanin(GateType::kXor), 2);
  EXPECT_EQ(max_fanin(GateType::kXor), 2);
  EXPECT_EQ(min_fanin(GateType::kMux), 3);
  EXPECT_EQ(min_fanin(GateType::kScanFlop), 1);
}

TEST(CellTest, OutputAndCombinationalClassification) {
  EXPECT_TRUE(has_output(GateType::kPrimaryInput));
  EXPECT_FALSE(has_output(GateType::kPrimaryOutput));
  EXPECT_TRUE(has_output(GateType::kScanFlop));
  EXPECT_FALSE(is_combinational(GateType::kPrimaryInput));
  EXPECT_FALSE(is_combinational(GateType::kScanFlop));
  EXPECT_FALSE(is_combinational(GateType::kPrimaryOutput));
  EXPECT_TRUE(is_combinational(GateType::kNand));
  EXPECT_TRUE(is_combinational(GateType::kBuf));
}

// Exhaustive 2-input truth tables via the scalar wrapper.
struct TruthCase {
  GateType type;
  // Expected output for inputs (00, 01, 10, 11) where the first bit is
  // input[0].
  bool expect[4];
};

class TwoInputTruth : public ::testing::TestWithParam<TruthCase> {};

TEST_P(TwoInputTruth, MatchesTruthTable) {
  const TruthCase& c = GetParam();
  int idx = 0;
  for (bool a : {false, true}) {
    for (bool b : {false, true}) {
      const bool in[] = {a, b};
      EXPECT_EQ(eval_gate_scalar(c.type, in), c.expect[idx])
          << gate_type_name(c.type) << "(" << a << "," << b << ")";
      ++idx;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTwoInputGates, TwoInputTruth,
    ::testing::Values(
        TruthCase{GateType::kAnd, {false, false, false, true}},
        TruthCase{GateType::kNand, {true, true, true, false}},
        TruthCase{GateType::kOr, {false, true, true, true}},
        TruthCase{GateType::kNor, {true, false, false, false}},
        TruthCase{GateType::kXor, {false, true, true, false}},
        TruthCase{GateType::kXnor, {true, false, false, true}}));

TEST(CellTest, BufAndInv) {
  for (bool a : {false, true}) {
    const bool in[] = {a};
    EXPECT_EQ(eval_gate_scalar(GateType::kBuf, in), a);
    EXPECT_EQ(eval_gate_scalar(GateType::kInv, in), !a);
  }
}

TEST(CellTest, MuxSelectsBySel) {
  for (bool sel : {false, true}) {
    for (bool a : {false, true}) {
      for (bool b : {false, true}) {
        const bool in[] = {sel, a, b};
        EXPECT_EQ(eval_gate_scalar(GateType::kMux, in), sel ? b : a);
      }
    }
  }
}

TEST(CellTest, WideGatesFoldAllInputs) {
  const bool in3[] = {true, true, false};
  EXPECT_FALSE(eval_gate_scalar(GateType::kAnd, in3));
  EXPECT_TRUE(eval_gate_scalar(GateType::kNand, in3));
  EXPECT_TRUE(eval_gate_scalar(GateType::kOr, in3));
  const bool in4[] = {false, false, false, false};
  EXPECT_TRUE(eval_gate_scalar(GateType::kNor, in4));
}

TEST(CellTest, WordParallelMatchesScalarPerBit) {
  // Each bit position of the words is an independent evaluation.
  const std::uint64_t a = 0xF0F0F0F0F0F0F0F0ULL;
  const std::uint64_t b = 0xCCCCCCCCCCCCCCCCULL;
  const std::uint64_t in[] = {a, b};
  const std::uint64_t out =
      eval_gate(GateType::kNand, std::span<const std::uint64_t>(in, 2));
  for (int bit = 0; bit < 64; ++bit) {
    const bool ba = (a >> bit) & 1;
    const bool bb = (b >> bit) & 1;
    const bool expected = !(ba && bb);
    EXPECT_EQ(((out >> bit) & 1) != 0, expected) << "bit " << bit;
  }
}

}  // namespace
}  // namespace m3dfl
