#include <gtest/gtest.h>

#include "diag/datagen.h"
#include "test_helpers.h"

namespace m3dfl {
namespace {

using testing::SmallDesign;

TEST(DataGenTest, ProducesRequestedSampleCount) {
  SmallDesign d(3);
  DataGenOptions opt;
  opt.num_samples = 20;
  opt.max_failing_patterns = 0;
  const std::vector<Sample> samples = generate_samples(d.context(), opt);
  EXPECT_EQ(samples.size(), 20u);
  for (const Sample& s : samples) {
    EXPECT_FALSE(s.log.empty());
    EXPECT_EQ(s.faults.size(), 1u);
    EXPECT_TRUE(s.fault_tier == 0 || s.fault_tier == 1);
    EXPECT_FALSE(s.log.compacted);
  }
}

TEST(DataGenTest, Deterministic) {
  SmallDesign d(3);
  DataGenOptions opt;
  opt.num_samples = 10;
  opt.max_failing_patterns = 0;
  const auto a = generate_samples(d.context(), opt);
  const auto b = generate_samples(d.context(), opt);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].faults, b[i].faults);
    EXPECT_EQ(a[i].log.scan_fails, b[i].log.scan_fails);
  }
}

TEST(DataGenTest, FaultTierMatchesInjectedPin) {
  SmallDesign d(3);
  DataGenOptions opt;
  opt.num_samples = 25;
  opt.max_failing_patterns = 0;
  const auto samples = generate_samples(d.context(), opt);
  for (const Sample& s : samples) {
    EXPECT_EQ(pin_tier(d.context(), s.faults[0].pin), s.fault_tier);
  }
}

TEST(DataGenTest, MivSamplesWhenRequested) {
  SmallDesign d(3);
  DataGenOptions opt;
  opt.num_samples = 40;
  opt.miv_fault_prob = 0.5;
  opt.max_failing_patterns = 0;
  const auto samples = generate_samples(d.context(), opt);
  std::int32_t miv_samples = 0;
  for (const Sample& s : samples) {
    if (!s.faulty_mivs.empty()) {
      ++miv_samples;
      EXPECT_EQ(s.fault_tier, kMivTier);
      EXPECT_TRUE(s.faults[0].is_miv());
      EXPECT_EQ(s.faults[0].miv, s.faulty_mivs[0]);
    }
  }
  EXPECT_GT(miv_samples, 8);
  EXPECT_LT(miv_samples, 32);
}

TEST(DataGenTest, MultiFaultSamplesShareOneTier) {
  SmallDesign d(3);
  DataGenOptions opt;
  opt.num_samples = 12;
  opt.min_faults = 2;
  opt.max_faults = 5;
  opt.max_failing_patterns = 0;
  const auto samples = generate_samples(d.context(), opt);
  for (const Sample& s : samples) {
    EXPECT_GE(s.faults.size(), 2u);
    EXPECT_LE(s.faults.size(), 5u);
    for (const Fault& f : s.faults) {
      EXPECT_EQ(pin_tier(d.context(), f.pin), s.fault_tier);
    }
    // Pins are distinct.
    for (std::size_t i = 0; i < s.faults.size(); ++i) {
      for (std::size_t j = i + 1; j < s.faults.size(); ++j) {
        EXPECT_NE(s.faults[i].pin, s.faults[j].pin);
      }
    }
  }
}

TEST(DataGenTest, CompactedModeYieldsChannelFails) {
  SmallDesign d(3);
  DataGenOptions opt;
  opt.num_samples = 10;
  opt.compacted = true;
  opt.max_failing_patterns = 0;
  const auto samples = generate_samples(d.context(), opt);
  bool any_channel = false;
  for (const Sample& s : samples) {
    EXPECT_TRUE(s.log.compacted);
    EXPECT_TRUE(s.log.scan_fails.empty());
    any_channel = any_channel || !s.log.channel_fails.empty();
  }
  EXPECT_TRUE(any_channel);
}

TEST(DataGenTest, FailMemoryLimitsPatterns) {
  SmallDesign d(3);
  DataGenOptions opt;
  opt.num_samples = 15;
  opt.max_failing_patterns = 4;
  const auto samples = generate_samples(d.context(), opt);
  for (const Sample& s : samples) {
    EXPECT_LE(s.log.num_failing_patterns(), 4);
    EXPECT_EQ(s.log.pattern_limit, 4);
  }
}

TEST(DataGenTest, UsesContextFailMemoryWhenDelegated) {
  SmallDesign d(3);
  DesignContext ctx = d.context();
  ctx.fail_memory_patterns = 2;
  DataGenOptions opt;
  opt.num_samples = 8;
  opt.max_failing_patterns = -1;  // delegate to the context
  const auto samples = generate_samples(ctx, opt);
  for (const Sample& s : samples) {
    EXPECT_LE(s.log.num_failing_patterns(), 2);
  }
}

TEST(DataGenTest, RejectsBadFaultRange) {
  SmallDesign d(3);
  DataGenOptions opt;
  opt.min_faults = 3;
  opt.max_faults = 2;
  EXPECT_THROW(generate_samples(d.context(), opt), Error);
}

}  // namespace
}  // namespace m3dfl
