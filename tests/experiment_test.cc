// Tests for the experiment harness functions behind the bench binaries
// (multi-fault study, standalone-model ablation, transferability study),
// at reduced scale.
#include <gtest/gtest.h>

#include "core/experiment.h"

namespace m3dfl {
namespace {

ExperimentOptions tiny_options() {
  ExperimentOptions opt;
  opt.test_samples = 16;
  opt.train.samples_syn1 = 50;
  opt.train.samples_per_random = 25;
  opt.framework.training.epochs = 40;
  return opt;
}

TEST(ExperimentTest, MultiFaultStudyProducesCoherentResults) {
  const MultiFaultResult r =
      evaluate_multifault(Profile::kAes, tiny_options());
  EXPECT_EQ(r.profile, "AES");
  EXPECT_EQ(r.atpg.total, 16);
  EXPECT_EQ(r.refined.total, 16);
  // Refinement never inflates the report.
  EXPECT_LE(r.refined.resolution.mean(), r.atpg.resolution.mean() + 1e-9);
  EXPECT_LE(r.refined.fhi.mean(), r.atpg.fhi.mean() + 1e-9);
  EXPECT_GE(r.tier_localization, 0.0);
  EXPECT_LE(r.tier_localization, 1.0);
}

TEST(ExperimentTest, IndividualModelAblationOrdering) {
  const AblationResult r =
      evaluate_individual_models(Profile::kAes, tiny_options());
  EXPECT_EQ(r.atpg.total, 16);
  // MIV-only prioritization never changes resolution or accuracy.
  EXPECT_DOUBLE_EQ(r.miv_only.resolution.mean(), r.atpg.resolution.mean());
  EXPECT_DOUBLE_EQ(r.miv_only.accuracy(), r.atpg.accuracy());
  // The combined policy is at least as sharp as the raw reports.
  EXPECT_LE(r.combined.resolution.mean(), r.atpg.resolution.mean() + 1e-9);
  // Tier-only pruning may lose accuracy; the combination never does worse
  // than tier-only (MIV protection can only help).
  EXPECT_GE(r.combined.accuracy() + 1e-9, r.tier_only.accuracy());
}

TEST(ExperimentTest, TransferabilityRowsCoverAllConfigs) {
  ExperimentOptions opt = tiny_options();
  const std::vector<TransferabilityRow> rows =
      evaluate_transferability(Profile::kAes, opt);
  ASSERT_EQ(rows.size(), 4u);
  for (const TransferabilityRow& r : rows) {
    EXPECT_GE(r.dedicated_tier_acc, 0.0);
    EXPECT_LE(r.dedicated_tier_acc, 1.0);
    EXPECT_GE(r.transferred_tier_acc, 0.4);  // far above chance floor 0
    EXPECT_LE(r.transferred_tier_acc, 1.0);
  }
}

}  // namespace
}  // namespace m3dfl
