#include <array>
#include <cmath>

#include <gtest/gtest.h>

#include "gnn/pca.h"
#include "util/rng.h"

namespace m3dfl {
namespace {

TEST(JacobiTest, DiagonalMatrixIsItsOwnEigensystem) {
  std::vector<double> values;
  std::vector<std::vector<double>> vectors;
  jacobi_eigen({{3, 0}, {0, 1}}, values, vectors);
  EXPECT_NEAR(values[0], 3.0, 1e-10);
  EXPECT_NEAR(values[1], 1.0, 1e-10);
  EXPECT_NEAR(std::abs(vectors[0][0]), 1.0, 1e-10);
  EXPECT_NEAR(std::abs(vectors[1][1]), 1.0, 1e-10);
}

TEST(JacobiTest, KnownSymmetricMatrix) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1 with vectors (1,1) and (1,-1).
  std::vector<double> values;
  std::vector<std::vector<double>> vectors;
  jacobi_eigen({{2, 1}, {1, 2}}, values, vectors);
  EXPECT_NEAR(values[0], 3.0, 1e-10);
  EXPECT_NEAR(values[1], 1.0, 1e-10);
  EXPECT_NEAR(std::abs(vectors[0][0]), std::abs(vectors[0][1]), 1e-8);
}

TEST(JacobiTest, EigenvectorsSatisfyDefinition) {
  const std::vector<std::vector<double>> m = {
      {4, 1, 0.5}, {1, 3, 0.2}, {0.5, 0.2, 2}};
  std::vector<double> values;
  std::vector<std::vector<double>> vectors;
  jacobi_eigen(m, values, vectors);
  for (std::size_t k = 0; k < 3; ++k) {
    for (std::size_t i = 0; i < 3; ++i) {
      double mv = 0;
      for (std::size_t j = 0; j < 3; ++j) mv += m[i][j] * vectors[k][j];
      EXPECT_NEAR(mv, values[k] * vectors[k][i], 1e-8);
    }
  }
}

TEST(PcaTest, RecoversDominantDirection) {
  // Points spread along (1, 1)/sqrt(2) with small orthogonal noise.
  Rng rng(5);
  std::vector<std::vector<double>> samples;
  for (int i = 0; i < 400; ++i) {
    const double t = rng.next_gaussian() * 5.0;
    const double n = rng.next_gaussian() * 0.1;
    samples.push_back({t + n, t - n});
  }
  const PcaResult pca = fit_pca(samples, 2);
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(std::abs(pca.components[0][0]), inv_sqrt2, 0.02);
  EXPECT_NEAR(std::abs(pca.components[0][1]), inv_sqrt2, 0.02);
  EXPECT_GT(pca.explained_variance[0], 10 * pca.explained_variance[1]);
}

TEST(PcaTest, ProjectionCentersData) {
  const std::vector<std::vector<double>> samples = {
      {1, 2}, {3, 4}, {5, 6}};
  const PcaResult pca = fit_pca(samples, 1);
  double sum = 0;
  for (const auto& s : samples) sum += pca_project(pca, s)[0];
  EXPECT_NEAR(sum, 0.0, 1e-9);
}

TEST(PcaTest, RejectsInconsistentWidths) {
  EXPECT_THROW(fit_pca({{1, 2}, {1}}, 1), Error);
  EXPECT_THROW(fit_pca({}, 1), Error);
  EXPECT_THROW(fit_pca({{1, 2}}, 3), Error);
}

TEST(CloudOverlapTest, IdenticalCloudsOverlapFully) {
  Rng rng(6);
  std::vector<std::array<double, 2>> a;
  for (int i = 0; i < 200; ++i) {
    a.push_back({rng.next_gaussian(), rng.next_gaussian()});
  }
  EXPECT_GT(cloud_overlap(a, a), 0.999);
}

TEST(CloudOverlapTest, DistantCloudsBarelyOverlap) {
  Rng rng(7);
  std::vector<std::array<double, 2>> a;
  std::vector<std::array<double, 2>> b;
  for (int i = 0; i < 200; ++i) {
    a.push_back({rng.next_gaussian(), rng.next_gaussian()});
    b.push_back({rng.next_gaussian() + 20.0, rng.next_gaussian()});
  }
  EXPECT_LT(cloud_overlap(a, b), 0.01);
}

TEST(CloudOverlapTest, SimilarCloudsOverlapHighly) {
  Rng rng(8);
  std::vector<std::array<double, 2>> a;
  std::vector<std::array<double, 2>> b;
  for (int i = 0; i < 400; ++i) {
    a.push_back({rng.next_gaussian(), rng.next_gaussian()});
    b.push_back({rng.next_gaussian() + 0.1, rng.next_gaussian()});
  }
  EXPECT_GT(cloud_overlap(a, b), 0.9);
}

TEST(CloudOverlapTest, SymmetricInArguments) {
  Rng rng(9);
  std::vector<std::array<double, 2>> a;
  std::vector<std::array<double, 2>> b;
  for (int i = 0; i < 100; ++i) {
    a.push_back({rng.next_gaussian(), rng.next_gaussian() * 2});
    b.push_back({rng.next_gaussian() + 1, rng.next_gaussian()});
  }
  EXPECT_NEAR(cloud_overlap(a, b), cloud_overlap(b, a), 1e-9);
}

}  // namespace
}  // namespace m3dfl
