#include <gtest/gtest.h>

#include "sim/logic.h"

namespace m3dfl {
namespace {

TEST(BitMatrixTest, SetGetRoundTrip) {
  BitMatrix m(3, 130);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.num_bits(), 130);
  EXPECT_EQ(m.words_per_row(), 3);
  m.set_bit(0, 0, true);
  m.set_bit(1, 64, true);
  m.set_bit(2, 129, true);
  EXPECT_TRUE(m.bit(0, 0));
  EXPECT_FALSE(m.bit(0, 1));
  EXPECT_TRUE(m.bit(1, 64));
  EXPECT_FALSE(m.bit(1, 63));
  EXPECT_TRUE(m.bit(2, 129));
  m.set_bit(1, 64, false);
  EXPECT_FALSE(m.bit(1, 64));
}

TEST(BitMatrixTest, WordViewMatchesBits) {
  BitMatrix m(1, 64);
  m.set_bit(0, 3, true);
  m.set_bit(0, 63, true);
  EXPECT_EQ(m.word(0, 0), (1ULL << 3) | (1ULL << 63));
}

TEST(BitMatrixTest, ZeroInitialized) {
  const BitMatrix m(4, 100);
  for (std::int32_t r = 0; r < 4; ++r) {
    for (std::int32_t w = 0; w < m.words_per_row(); ++w) {
      EXPECT_EQ(m.word(r, w), 0u);
    }
  }
}

TEST(LogicTest, WordsFor) {
  EXPECT_EQ(words_for(0), 0);
  EXPECT_EQ(words_for(1), 1);
  EXPECT_EQ(words_for(64), 1);
  EXPECT_EQ(words_for(65), 2);
  EXPECT_EQ(words_for(128), 2);
}

TEST(LogicTest, ValidMask) {
  EXPECT_EQ(valid_mask(64, 0), ~0ULL);
  EXPECT_EQ(valid_mask(1, 0), 1ULL);
  EXPECT_EQ(valid_mask(65, 1), 1ULL);
  EXPECT_EQ(valid_mask(70, 1), (1ULL << 6) - 1);
}

TEST(PatternSetTest, RandomIsDeterministic) {
  Rng a(5);
  Rng b(5);
  const PatternSet p = PatternSet::random(4, 8, 100, a);
  const PatternSet q = PatternSet::random(4, 8, 100, b);
  EXPECT_EQ(p.num_patterns, 100);
  for (std::int32_t r = 0; r < 4; ++r) {
    for (std::int32_t w = 0; w < p.pi.words_per_row(); ++w) {
      EXPECT_EQ(p.pi.word(r, w), q.pi.word(r, w));
    }
  }
}

TEST(PatternSetTest, AppendConcatenates) {
  Rng rng(6);
  PatternSet a = PatternSet::random(3, 5, 70, rng);
  const PatternSet b = PatternSet::random(3, 5, 40, rng);
  const PatternSet a_copy = a;
  a.append(b);
  EXPECT_EQ(a.num_patterns, 110);
  for (std::int32_t r = 0; r < 3; ++r) {
    for (std::int32_t bit = 0; bit < 70; ++bit) {
      EXPECT_EQ(a.pi.bit(r, bit), a_copy.pi.bit(r, bit));
    }
    for (std::int32_t bit = 0; bit < 40; ++bit) {
      EXPECT_EQ(a.pi.bit(r, 70 + bit), b.pi.bit(r, bit));
    }
  }
  for (std::int32_t r = 0; r < 5; ++r) {
    for (std::int32_t bit = 0; bit < 40; ++bit) {
      EXPECT_EQ(a.scan.bit(r, 70 + bit), b.scan.bit(r, bit));
    }
  }
}

TEST(PatternSetTest, AppendRejectsMismatchedShape) {
  Rng rng(7);
  PatternSet a = PatternSet::random(3, 5, 10, rng);
  const PatternSet b = PatternSet::random(4, 5, 10, rng);
  EXPECT_THROW(a.append(b), Error);
}

}  // namespace
}  // namespace m3dfl
