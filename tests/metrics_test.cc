#include <gtest/gtest.h>

#include "diag/metrics.h"
#include "test_helpers.h"

namespace m3dfl {
namespace {

using testing::SmallDesign;

// Builds a synthetic single-TDF sample and a report over explicit pins.
Sample tdf_sample(const SmallDesign& d, PinId pin) {
  Sample s;
  s.faults = {Fault::slow_to_rise(pin)};
  s.fault_tier = pin_tier(d.context(), pin);
  return s;
}

Candidate pin_candidate(PinId pin) {
  Candidate c;
  c.fault = Fault::slow_to_rise(pin);
  return c;
}

// Finds a logic pin on the requested tier.
PinId pin_on_tier(const SmallDesign& d, int tier) {
  for (PinId p = 0; p < d.netlist.num_pins(); ++p) {
    const GateType type = d.netlist.gate(d.netlist.pin_gate(p)).type;
    if (type == GateType::kPrimaryInput || type == GateType::kPrimaryOutput) {
      continue;
    }
    if (pin_tier(d.context(), p) == tier) return p;
  }
  return kNullPin;
}

TEST(MetricsTest, HitAtRankTwo) {
  SmallDesign d(6);
  const PinId truth = pin_on_tier(d, kBottomTier);
  const PinId other = pin_on_tier(d, kTopTier);
  ASSERT_NE(truth, kNullPin);
  ASSERT_NE(other, kNullPin);

  DiagnosisReport report;
  report.candidates = {pin_candidate(other), pin_candidate(truth),
                       pin_candidate(other)};
  const Sample s = tdf_sample(d, truth);
  const SampleEvaluation eval = evaluate_report(d.context(), report, s);
  EXPECT_EQ(eval.resolution, 3);
  EXPECT_TRUE(eval.accurate);
  EXPECT_EQ(eval.fhi, 2);
  EXPECT_FALSE(eval.single_tier);
  EXPECT_FALSE(eval.tier_localized);
}

TEST(MetricsTest, MissChargesFullResolution) {
  SmallDesign d(6);
  const PinId truth = pin_on_tier(d, kBottomTier);
  const PinId other = pin_on_tier(d, kTopTier);
  DiagnosisReport report;
  report.candidates = {pin_candidate(other), pin_candidate(other)};
  const SampleEvaluation eval =
      evaluate_report(d.context(), report, tdf_sample(d, truth));
  EXPECT_FALSE(eval.accurate);
  EXPECT_EQ(eval.fhi, 2);  // full resolution
}

TEST(MetricsTest, TierLocalizedWhenSingleCorrectTier) {
  SmallDesign d(6);
  const PinId truth = pin_on_tier(d, kTopTier);
  DiagnosisReport report;
  report.candidates = {pin_candidate(truth), pin_candidate(truth)};
  const SampleEvaluation eval =
      evaluate_report(d.context(), report, tdf_sample(d, truth));
  EXPECT_TRUE(eval.single_tier);
  EXPECT_TRUE(eval.tier_localized);
}

TEST(MetricsTest, SingleWrongTierIsNotLocalized) {
  SmallDesign d(6);
  const PinId truth = pin_on_tier(d, kTopTier);
  const PinId other = pin_on_tier(d, kBottomTier);
  DiagnosisReport report;
  report.candidates = {pin_candidate(other)};
  const SampleEvaluation eval =
      evaluate_report(d.context(), report, tdf_sample(d, truth));
  EXPECT_TRUE(eval.single_tier);
  EXPECT_FALSE(eval.tier_localized);
}

TEST(MetricsTest, MivCandidatesDoNotBreakSingleTier) {
  SmallDesign d(6);
  ASSERT_GT(d.mivs.num_mivs(), 0);
  const PinId truth = pin_on_tier(d, kTopTier);
  Candidate miv;
  miv.fault = Fault::miv_delay(0);
  DiagnosisReport report;
  report.candidates = {miv, pin_candidate(truth)};
  const SampleEvaluation eval =
      evaluate_report(d.context(), report, tdf_sample(d, truth));
  EXPECT_TRUE(eval.single_tier);
  EXPECT_TRUE(eval.tier_localized);
}

TEST(MetricsTest, MultiFaultAccuracyNeedsAllFaults) {
  SmallDesign d(6);
  const PinId a = pin_on_tier(d, kBottomTier);
  PinId b = kNullPin;
  for (PinId p = a + 1; p < d.netlist.num_pins(); ++p) {
    const GateType type = d.netlist.gate(d.netlist.pin_gate(p)).type;
    if (type != GateType::kPrimaryInput && type != GateType::kPrimaryOutput &&
        pin_tier(d.context(), p) == kBottomTier) {
      b = p;
      break;
    }
  }
  ASSERT_NE(b, kNullPin);
  Sample s;
  s.faults = {Fault::slow_to_rise(a), Fault::slow_to_fall(b)};
  s.fault_tier = kBottomTier;

  DiagnosisReport only_a;
  only_a.candidates = {pin_candidate(a)};
  EXPECT_FALSE(evaluate_report(d.context(), only_a, s).accurate);

  DiagnosisReport both;
  both.candidates = {pin_candidate(a), pin_candidate(b)};
  const SampleEvaluation eval = evaluate_report(d.context(), both, s);
  EXPECT_TRUE(eval.accurate);
  EXPECT_EQ(eval.fhi, 1);  // first candidate matching any injected fault
}

TEST(MetricsTest, QualityStatsAggregates) {
  QualityStats stats;
  SampleEvaluation e1;
  e1.resolution = 4;
  e1.accurate = true;
  e1.fhi = 2;
  SampleEvaluation e2;
  e2.resolution = 8;
  e2.accurate = false;
  e2.fhi = 8;
  stats.add(e1);
  stats.add(e2);
  EXPECT_EQ(stats.total, 2);
  EXPECT_DOUBLE_EQ(stats.accuracy(), 0.5);
  EXPECT_DOUBLE_EQ(stats.resolution.mean(), 6.0);
  EXPECT_DOUBLE_EQ(stats.fhi.mean(), 5.0);
}

TEST(MetricsTest, EmptyReport) {
  SmallDesign d(6);
  const PinId truth = pin_on_tier(d, kBottomTier);
  const SampleEvaluation eval =
      evaluate_report(d.context(), DiagnosisReport{}, tdf_sample(d, truth));
  EXPECT_EQ(eval.resolution, 0);
  EXPECT_FALSE(eval.accurate);
  EXPECT_EQ(eval.fhi, 0);
}

}  // namespace
}  // namespace m3dfl
