#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "test_helpers.h"

namespace m3dfl {
namespace {

// Hand-checked LOC semantics on the tiny circuit.
//
// V1: u0 = pi0 & pi1; u1 = !u0; u2 = u0 ^ q.
// Launch: ff0 <- u1@V1; V2 re-evaluates with the new q and the held PIs.
TEST(SimulatorTest, TinyCircuitLocByHand) {
  testing::TinyCircuit c;
  PatternSet p;
  p.num_patterns = 2;
  p.pi = BitMatrix(2, 2);
  p.scan = BitMatrix(1, 2);
  // Pattern 0: pi0=1, pi1=1, q=0.    Pattern 1: pi0=1, pi1=0, q=1.
  p.pi.set_bit(0, 0, true);
  p.pi.set_bit(1, 0, true);
  p.scan.set_bit(0, 0, false);
  p.pi.set_bit(0, 1, true);
  p.pi.set_bit(1, 1, false);
  p.scan.set_bit(0, 1, true);

  LocSimulator sim(c.netlist);
  sim.run(p);

  // Pattern 0 V1: n4=1, n5=0, n6=1^0=1.
  EXPECT_EQ(sim.v1(c.n4, 0) & 1, 1u);
  EXPECT_EQ(sim.v1(c.n5, 0) & 1, 0u);
  EXPECT_EQ(sim.v1(c.n6, 0) & 1, 1u);
  // Launch: q <- n5@V1 = 0; V2: n4=1, n5=0, n6=1.
  EXPECT_EQ(sim.v2(c.n4, 0) & 1, 1u);
  EXPECT_EQ(sim.v2(c.n6, 0) & 1, 1u);
  // Captured response: ff0 captures n5@V2 = 0; po0 = n6@V2 = 1.
  EXPECT_EQ(sim.captured(0, 0) & 1, 0u);
  EXPECT_EQ(sim.po_value(0, 0) & 1, 1u);

  // Pattern 1 V1: n4 = 1&0 = 0, n5 = 1, n6 = 0^1 = 1.
  EXPECT_EQ((sim.v1(c.n4, 0) >> 1) & 1, 0u);
  EXPECT_EQ((sim.v1(c.n5, 0) >> 1) & 1, 1u);
  EXPECT_EQ((sim.v1(c.n6, 0) >> 1) & 1, 1u);
  // Launch: q <- 1; V2: n4=0, n5=1, n6 = 0^1 = 1.
  EXPECT_EQ((sim.v2(c.n6, 0) >> 1) & 1, 1u);
  // Transition check: q switches 1->1? q stays 1, n6 stays 1 => no
  // transition; n4/n5 also hold.
  EXPECT_FALSE(sim.has_transition(c.n6, 1));
  EXPECT_FALSE(sim.has_transition(c.n4, 1));
}

TEST(SimulatorTest, TransitionWordIsV1XorV2) {
  const Netlist nl = testing::small_netlist(3);
  Rng rng(4);
  const PatternSet p = PatternSet::random(
      static_cast<std::int32_t>(nl.primary_inputs().size()),
      static_cast<std::int32_t>(nl.flops().size()), 96, rng);
  LocSimulator sim(nl);
  sim.run(p);
  for (NetId n = 0; n < nl.num_nets(); n += 17) {
    for (std::int32_t w = 0; w < sim.num_words(); ++w) {
      EXPECT_EQ(sim.transition(n, w), sim.v1(n, w) ^ sim.v2(n, w));
    }
  }
}

// Cross-check the word-parallel evaluation against per-pattern scalar
// evaluation on a generated circuit.
TEST(SimulatorTest, WordParallelMatchesScalarReference) {
  const Netlist nl = testing::small_netlist(5);
  Rng rng(9);
  const auto num_pis = static_cast<std::int32_t>(nl.primary_inputs().size());
  const auto num_flops = static_cast<std::int32_t>(nl.flops().size());
  const PatternSet p = PatternSet::random(num_pis, num_flops, 70, rng);
  LocSimulator sim(nl);
  sim.run(p);

  for (std::int32_t pattern : {0, 1, 63, 64, 69}) {
    // Scalar V1 evaluation.
    std::vector<char> value(static_cast<std::size_t>(nl.num_nets()), 0);
    for (std::int32_t i = 0; i < num_pis; ++i) {
      value[static_cast<std::size_t>(
          nl.gate(nl.primary_inputs()[static_cast<std::size_t>(i)]).fanout)] =
          p.pi.bit(i, pattern) ? 1 : 0;
    }
    for (std::int32_t i = 0; i < num_flops; ++i) {
      value[static_cast<std::size_t>(
          nl.gate(nl.flops()[static_cast<std::size_t>(i)]).fanout)] =
          p.scan.bit(i, pattern) ? 1 : 0;
    }
    for (GateId g : nl.topo_order()) {
      const Gate& gate = nl.gate(g);
      bool ins[8];
      std::size_t k = 0;
      for (NetId in : gate.fanin) {
        ins[k++] = value[static_cast<std::size_t>(in)] != 0;
      }
      value[static_cast<std::size_t>(gate.fanout)] =
          eval_gate_scalar(gate.type, std::span<const bool>(ins, k)) ? 1 : 0;
    }
    for (NetId n = 0; n < nl.num_nets(); n += 13) {
      EXPECT_EQ((sim.v1(n, pattern / 64) >> (pattern % 64)) & 1,
                value[static_cast<std::size_t>(n)] != 0 ? 1u : 0u)
          << "net " << n << " pattern " << pattern;
    }
  }
}

TEST(SimulatorTest, RejectsMismatchedPatterns) {
  const Netlist nl = testing::small_netlist(5);
  Rng rng(1);
  const PatternSet p = PatternSet::random(3, 3, 10, rng);
  LocSimulator sim(nl);
  EXPECT_THROW(sim.run(p), Error);
}

}  // namespace
}  // namespace m3dfl
