#include <cmath>

#include <gtest/gtest.h>

#include "gnn/gcn.h"
#include "gnn/model.h"
#include "gnn/trainer.h"

namespace m3dfl {
namespace {

// Numerical gradient check: L(params) = sum(R .* forward(X)), with R a fixed
// random weighting so every output entry contributes a distinct gradient.
TEST(GcnLayerTest, WeightGradientMatchesNumerical) {
  Rng rng(7);
  const NormalizedAdjacency adj(4, {0, 1, 2}, {1, 2, 3});
  Matrix x(4, 3);
  for (float& v : x.data()) v = static_cast<float>(rng.next_gaussian());
  GcnLayer layer(3, 2, /*use_relu=*/true, rng);
  Matrix r(4, 2);
  for (float& v : r.data()) v = static_cast<float>(rng.next_gaussian());

  const auto loss = [&] {
    GcnCache cache;
    const Matrix y = layer.forward(adj, x, cache);
    double sum = 0;
    for (std::int32_t i = 0; i < y.rows(); ++i) {
      for (std::int32_t j = 0; j < y.cols(); ++j) {
        sum += static_cast<double>(r.at(i, j)) * y.at(i, j);
      }
    }
    return sum;
  };

  // Analytic gradients.
  layer.zero_grad();
  GcnCache cache;
  layer.forward(adj, x, cache);
  layer.backward(adj, cache, r);

  const double eps = 1e-3;
  for (std::int32_t i = 0; i < layer.weight().rows(); ++i) {
    for (std::int32_t j = 0; j < layer.weight().cols(); ++j) {
      const float saved = layer.weight().at(i, j);
      layer.weight().at(i, j) = saved + static_cast<float>(eps);
      const double up = loss();
      layer.weight().at(i, j) = saved - static_cast<float>(eps);
      const double down = loss();
      layer.weight().at(i, j) = saved;
      const double numeric = (up - down) / (2 * eps);
      EXPECT_NEAR(layer.weight_grad().at(i, j), numeric, 5e-2)
          << "dW(" << i << "," << j << ")";
    }
  }
  for (std::int32_t j = 0; j < layer.bias().cols(); ++j) {
    const float saved = layer.bias().at(0, j);
    layer.bias().at(0, j) = saved + static_cast<float>(eps);
    const double up = loss();
    layer.bias().at(0, j) = saved - static_cast<float>(eps);
    const double down = loss();
    layer.bias().at(0, j) = saved;
    EXPECT_NEAR(layer.bias_grad().at(0, j), (up - down) / (2 * eps), 5e-2);
  }
}

TEST(GcnLayerTest, InputGradientMatchesNumerical) {
  Rng rng(9);
  const NormalizedAdjacency adj(3, {0, 1}, {1, 2});
  Matrix x(3, 2);
  for (float& v : x.data()) v = static_cast<float>(rng.next_gaussian());
  GcnLayer layer(2, 2, /*use_relu=*/false, rng);
  Matrix r(3, 2);
  for (float& v : r.data()) v = static_cast<float>(rng.next_gaussian());

  const auto loss = [&] {
    GcnCache cache;
    const Matrix y = layer.forward(adj, x, cache);
    double sum = 0;
    for (std::int32_t i = 0; i < y.rows(); ++i) {
      for (std::int32_t j = 0; j < y.cols(); ++j) {
        sum += static_cast<double>(r.at(i, j)) * y.at(i, j);
      }
    }
    return sum;
  };

  layer.zero_grad();
  GcnCache cache;
  layer.forward(adj, x, cache);
  const Matrix dx = layer.backward(adj, cache, r);

  const double eps = 1e-3;
  for (std::int32_t i = 0; i < x.rows(); ++i) {
    for (std::int32_t j = 0; j < x.cols(); ++j) {
      const float saved = x.at(i, j);
      x.at(i, j) = saved + static_cast<float>(eps);
      const double up = loss();
      x.at(i, j) = saved - static_cast<float>(eps);
      const double down = loss();
      x.at(i, j) = saved;
      EXPECT_NEAR(dx.at(i, j), (up - down) / (2 * eps), 5e-2);
    }
  }
}

TEST(DenseLayerTest, GradientsMatchNumerical) {
  Rng rng(11);
  Matrix x(5, 3);
  for (float& v : x.data()) v = static_cast<float>(rng.next_gaussian());
  DenseLayer layer(3, 2, /*use_relu=*/true, rng);
  Matrix r(5, 2);
  for (float& v : r.data()) v = static_cast<float>(rng.next_gaussian());

  const auto loss = [&] {
    DenseCache cache;
    const Matrix y = layer.forward(x, cache);
    double sum = 0;
    for (std::int32_t i = 0; i < y.rows(); ++i) {
      for (std::int32_t j = 0; j < y.cols(); ++j) {
        sum += static_cast<double>(r.at(i, j)) * y.at(i, j);
      }
    }
    return sum;
  };

  layer.zero_grad();
  DenseCache cache;
  layer.forward(x, cache);
  const Matrix dx = layer.backward(cache, r);

  const double eps = 1e-3;
  for (std::int32_t i = 0; i < layer.weight().rows(); ++i) {
    for (std::int32_t j = 0; j < layer.weight().cols(); ++j) {
      const float saved = layer.weight().at(i, j);
      layer.weight().at(i, j) = saved + static_cast<float>(eps);
      const double up = loss();
      layer.weight().at(i, j) = saved - static_cast<float>(eps);
      const double down = loss();
      layer.weight().at(i, j) = saved;
      EXPECT_NEAR(layer.weight_grad().at(i, j), (up - down) / (2 * eps),
                  5e-2);
    }
  }
  for (std::int32_t i = 0; i < x.rows(); ++i) {
    for (std::int32_t j = 0; j < x.cols(); ++j) {
      const float saved = x.at(i, j);
      x.at(i, j) = saved + static_cast<float>(eps);
      const double up = loss();
      x.at(i, j) = saved - static_cast<float>(eps);
      const double down = loss();
      x.at(i, j) = saved;
      EXPECT_NEAR(dx.at(i, j), (up - down) / (2 * eps), 5e-2);
    }
  }
}

// Synthetic labeled subgraph: `n` nodes on a path, feature column 3 set to
// the label value (plus noise elsewhere).
Subgraph synthetic_graph(Rng& rng, int label, std::int32_t n = 6) {
  Subgraph sg;
  sg.features = Matrix(n, kNumNodeFeatures);
  for (std::int32_t i = 0; i < n; ++i) {
    sg.nodes.push_back(i);
    for (std::int32_t j = 0; j < kNumNodeFeatures; ++j) {
      sg.features.at(i, j) = static_cast<float>(rng.next_double());
    }
    sg.features.at(i, 3) =
        label == 1 ? static_cast<float>(rng.next_double(0.6, 1.0))
                   : static_cast<float>(rng.next_double(0.0, 0.4));
    if (i > 0) {
      sg.edge_u.push_back(i - 1);
      sg.edge_v.push_back(i);
    }
  }
  sg.tier_label = label;
  return sg;
}

TEST(TierPredictorTest, LearnsSeparableToyTask) {
  Rng rng(21);
  std::vector<Subgraph> train;
  for (int i = 0; i < 60; ++i) {
    train.push_back(synthetic_graph(rng, i % 2));
  }
  GcnModelConfig config;
  config.hidden = 12;
  config.num_layers = 2;
  TierPredictor model(config);
  TrainOptions opt;
  opt.epochs = 80;
  opt.patience = 80;
  train_tier_predictor(model, train, opt);

  std::vector<Subgraph> test;
  for (int i = 0; i < 40; ++i) {
    test.push_back(synthetic_graph(rng, i % 2));
  }
  EXPECT_GT(tier_accuracy(model, test), 0.9);
}

TEST(TierPredictorTest, EmptyGraphIsUniform) {
  TierPredictor model;
  const auto p = model.predict(Subgraph{});
  EXPECT_DOUBLE_EQ(p[0], 0.5);
  EXPECT_DOUBLE_EQ(p[1], 0.5);
}

TEST(TierPredictorTest, ConfidenceIsMaxProbability) {
  Rng rng(23);
  TierPredictor model;
  const Subgraph sg = synthetic_graph(rng, 1);
  double confidence = 0.0;
  const int tier = model.predicted_tier(sg, &confidence);
  const auto p = model.predict(sg);
  EXPECT_DOUBLE_EQ(confidence, std::max(p[0], p[1]));
  EXPECT_EQ(tier, p[1] > p[0] ? 1 : 0);
}

TEST(MivPinpointerTest, LearnsNodeLabels) {
  // MIV nodes are the even path positions; faulty iff feature 6 is high.
  Rng rng(25);
  const auto make = [&](bool faulty) {
    Subgraph sg = synthetic_graph(rng, 0, 8);
    sg.miv_local = {2, 4};
    sg.miv_ids = {0, 1};
    sg.miv_label = {static_cast<std::int8_t>(faulty ? 1 : 0), 0};
    // Plant a strong multi-feature signature on the defective via (graph
    // convolution smooths single-node single-feature signals away).
    for (std::int32_t col : {6, 11, 12}) {
      sg.features.at(2, col) = faulty ? 0.95f : 0.05f;
      sg.features.at(4, col) = 0.05f;
    }
    return sg;
  };
  std::vector<Subgraph> train;
  for (int i = 0; i < 50; ++i) train.push_back(make(i % 2 == 0));
  GcnModelConfig config;
  config.hidden = 12;
  config.num_layers = 2;
  MivPinpointer model(config);
  TrainOptions opt;
  opt.epochs = 150;
  opt.patience = 150;
  train_miv_pinpointer(model, train, opt);

  std::vector<Subgraph> test;
  for (int i = 0; i < 30; ++i) test.push_back(make(i % 2 == 0));
  EXPECT_GT(miv_accuracy(model, test), 0.85);

  // predict_faulty surfaces the planted MIV id.
  const Subgraph positive = make(true);
  const auto faulty = model.predict_faulty(positive);
  ASSERT_FALSE(faulty.empty());
  EXPECT_EQ(faulty[0], 0);
}

TEST(PruneClassifierTest, TransfersAndLearnsHead) {
  Rng rng(27);
  std::vector<Subgraph> train;
  std::vector<int> labels;
  for (int i = 0; i < 60; ++i) {
    train.push_back(synthetic_graph(rng, i % 2));
    labels.push_back(i % 2);
  }
  GcnModelConfig config;
  config.hidden = 12;
  config.num_layers = 2;
  TierPredictor pretrained(config);
  TrainOptions opt;
  opt.epochs = 60;
  opt.patience = 60;
  train_tier_predictor(pretrained, train, opt);

  PruneClassifier classifier(pretrained, config);
  train_prune_classifier(classifier, train, labels, opt);
  int correct = 0;
  for (int i = 0; i < 30; ++i) {
    const Subgraph sg = synthetic_graph(rng, i % 2);
    const double p = classifier.predict_prune_prob(sg);
    if ((p >= 0.5) == (i % 2 == 1)) ++correct;
  }
  EXPECT_GT(correct, 24);
}

TEST(PruneClassifierTest, RequiresMatchingHidden) {
  GcnModelConfig a;
  a.hidden = 12;
  GcnModelConfig b;
  b.hidden = 16;
  TierPredictor pretrained(a);
  EXPECT_THROW(PruneClassifier(pretrained, b), Error);
}

}  // namespace
}  // namespace m3dfl
