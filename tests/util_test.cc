#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "util/error.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/thinning.h"

namespace m3dfl {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(3);
  for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(RngTest, NextIntCoversInclusiveRange) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const std::int64_t v = rng.next_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, BernoulliApproximatesProbability) {
  Rng rng(7);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.next_bool(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(8);
  Accumulator acc;
  for (int i = 0; i < 20000; ++i) acc.add(rng.next_gaussian());
  EXPECT_NEAR(acc.mean(), 0.0, 0.05);
  EXPECT_NEAR(acc.stddev(), 1.0, 0.05);
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(9);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  std::vector<int> shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // 1/100! chance of flaking — effectively never
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(10);
  Rng child = a.fork();
  // The child stream differs from the parent's continued stream.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, PickReturnsElementOfVector) {
  Rng rng(11);
  const std::vector<int> v = {5, 6, 7};
  for (int i = 0; i < 50; ++i) {
    const int x = rng.pick(v);
    EXPECT_TRUE(x == 5 || x == 6 || x == 7);
  }
}

TEST(AccumulatorTest, MatchesDirectComputation) {
  const std::vector<double> xs = {1.0, 2.5, -3.0, 7.0, 0.0, 4.25};
  Accumulator acc;
  for (double x : xs) acc.add(x);
  EXPECT_EQ(acc.count(), xs.size());
  EXPECT_DOUBLE_EQ(acc.mean(), mean_of(xs));
  EXPECT_NEAR(acc.stddev(), stddev_of(xs), 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), -3.0);
  EXPECT_DOUBLE_EQ(acc.max(), 7.0);
  EXPECT_NEAR(acc.sum(), 11.75, 1e-12);
}

TEST(AccumulatorTest, EmptyIsZero) {
  Accumulator acc;
  EXPECT_TRUE(acc.empty());
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.stddev(), 0.0);
}

TEST(AccumulatorTest, MergeEqualsSequential) {
  Rng rng(12);
  Accumulator whole;
  Accumulator left;
  Accumulator right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_gaussian() * 3 + 1;
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(AccumulatorTest, MergeWithEmptySides) {
  Accumulator a;
  Accumulator b;
  b.add(2.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  Accumulator empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
}

TEST(StatsTest, CorrelationOfLinearDataIsOne) {
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 20; ++i) {
    x.push_back(i);
    y.push_back(3.0 * i - 5.0);
  }
  EXPECT_NEAR(correlation(x, y), 1.0, 1e-9);
  for (double& v : y) v = -v;
  EXPECT_NEAR(correlation(x, y), -1.0, 1e-9);
}

TEST(StatsTest, CorrelationDegenerateIsZero) {
  const std::vector<double> x = {1, 1, 1};
  const std::vector<double> y = {1, 2, 3};
  EXPECT_EQ(correlation(x, y), 0.0);
}

TEST(TableTest, RendersAlignedColumns) {
  TablePrinter t({"a", "long-header"});
  t.add_row({"1", "2"});
  t.add_separator();
  t.add_row({"333", "4"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| a   | long-header |"), std::string::npos);
  EXPECT_NE(s.find("| 333 | 4           |"), std::string::npos);
}

TEST(TableTest, RejectsWrongArity) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(TableTest, Formatting) {
  EXPECT_EQ(TablePrinter::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::pct(0.983, 1), "98.3%");
  EXPECT_EQ(TablePrinter::delta_pct(0.329, 1), "(+32.9%)");
  EXPECT_EQ(TablePrinter::delta_pct(-0.008, 1), "(-0.8%)");
}

TEST(ThinningTest, IdentityWhenUnderCap) {
  for (std::size_t size : {0u, 1u, 5u, 60u}) {
    const std::vector<std::size_t> kept = uniform_stride_indices(size, 60);
    ASSERT_EQ(kept.size(), size);
    for (std::size_t i = 0; i < size; ++i) EXPECT_EQ(kept[i], i);
  }
  // A non-positive cap means "no thinning".
  const std::vector<std::size_t> uncapped = uniform_stride_indices(100, 0);
  EXPECT_EQ(uncapped.size(), 100u);
}

TEST(ThinningTest, StrideSelectionIsAscendingUniqueAndSpansRange) {
  for (std::size_t size : {61u, 100u, 997u, 5000u}) {
    for (std::int32_t cap : {1, 2, 7, 60}) {
      const std::vector<std::size_t> kept = uniform_stride_indices(size, cap);
      ASSERT_EQ(kept.size(), static_cast<std::size_t>(cap))
          << "size=" << size << " cap=" << cap;
      EXPECT_EQ(kept.front(), 0u);
      EXPECT_LT(kept.back(), size);
      for (std::size_t i = 1; i < kept.size(); ++i) {
        EXPECT_LT(kept[i - 1], kept[i]);
      }
    }
  }
}

TEST(ThinningTest, DeterministicForSameSizeAndCap) {
  const std::vector<std::size_t> a = uniform_stride_indices(997, 60);
  const std::vector<std::size_t> b = uniform_stride_indices(997, 60);
  EXPECT_EQ(a, b);
}

TEST(ThinningTest, ThinInPlaceKeepsSelectedElementsAndReportsIndices) {
  std::vector<int> items;
  for (int i = 0; i < 100; ++i) items.push_back(i * 10);
  std::vector<int> original = items;
  const std::vector<std::size_t> kept = thin_uniform_stride(items, 7);
  ASSERT_EQ(items.size(), 7u);
  ASSERT_EQ(kept.size(), 7u);
  for (std::size_t i = 0; i < kept.size(); ++i) {
    EXPECT_EQ(items[i], original[kept[i]]);
  }
  // Under the cap: untouched, identity index map.
  std::vector<int> small = {4, 5, 6};
  const std::vector<std::size_t> ident = thin_uniform_stride(small, 60);
  EXPECT_EQ(small, (std::vector<int>{4, 5, 6}));
  EXPECT_EQ(ident, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(ErrorTest, AssertMacroThrows) {
  EXPECT_THROW(M3DFL_ASSERT(1 == 2), Error);
  EXPECT_NO_THROW(M3DFL_ASSERT(1 == 1));
  EXPECT_THROW(M3DFL_REQUIRE(false, "boom"), Error);
}

}  // namespace
}  // namespace m3dfl
