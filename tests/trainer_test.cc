#include <gtest/gtest.h>

#include "gnn/trainer.h"
#include "diag/datagen.h"  // kMivTier

namespace m3dfl {
namespace {

Subgraph labeled_graph(Rng& rng, int label, float signal = 1.0f) {
  Subgraph sg;
  const std::int32_t n = 5;
  sg.features = Matrix(n, kNumNodeFeatures);
  for (std::int32_t i = 0; i < n; ++i) {
    sg.nodes.push_back(i);
    for (std::int32_t j = 0; j < kNumNodeFeatures; ++j) {
      sg.features.at(i, j) = static_cast<float>(rng.next_double());
    }
    // Feature 3 carries the label with the given signal strength.
    sg.features.at(i, 3) =
        signal * (label == 1 ? 0.9f : 0.1f) +
        (1 - signal) * static_cast<float>(rng.next_double());
    if (i > 0) {
      sg.edge_u.push_back(i - 1);
      sg.edge_v.push_back(i);
    }
  }
  sg.tier_label = label;
  return sg;
}

TEST(TrainerTest, SkipsUnlabeledAndEmptyGraphs) {
  Rng rng(3);
  std::vector<Subgraph> graphs;
  graphs.push_back(Subgraph{});  // empty
  Subgraph miv = labeled_graph(rng, 0);
  miv.tier_label = kMivTier;  // not tier-labeled
  graphs.push_back(std::move(miv));
  for (int i = 0; i < 20; ++i) graphs.push_back(labeled_graph(rng, i % 2));

  GcnModelConfig config;
  config.hidden = 8;
  config.num_layers = 2;
  TierPredictor model(config);
  TrainOptions opt;
  opt.epochs = 40;
  EXPECT_NO_THROW(train_tier_predictor(model, graphs, opt));
  EXPECT_GT(tier_accuracy(model, graphs), 0.8);
}

TEST(TrainerTest, TierAccuracyCountsOnlyLabeled) {
  Rng rng(4);
  std::vector<Subgraph> graphs;
  graphs.push_back(Subgraph{});
  graphs.push_back(labeled_graph(rng, 0));
  // With no training the prediction is arbitrary, but accuracy must be a
  // valid fraction over exactly the one labeled sample.
  GcnModelConfig config;
  config.hidden = 8;
  config.num_layers = 2;
  const TierPredictor model(config);
  const double acc = tier_accuracy(model, graphs);
  EXPECT_TRUE(acc == 0.0 || acc == 1.0);
}

TEST(TrainerTest, EarlyStoppingTerminates) {
  Rng rng(5);
  std::vector<Subgraph> graphs;
  for (int i = 0; i < 10; ++i) graphs.push_back(labeled_graph(rng, i % 2));
  GcnModelConfig config;
  config.hidden = 8;
  config.num_layers = 2;
  TierPredictor model(config);
  TrainOptions opt;
  opt.epochs = 100000;  // must stop on plateau long before this
  opt.patience = 3;
  EXPECT_NO_THROW(train_tier_predictor(model, graphs, opt));
}

TEST(TrainerTest, FeatureSignificanceHighlightsInformativeFeature) {
  Rng rng(6);
  std::vector<Subgraph> graphs;
  for (int i = 0; i < 60; ++i) graphs.push_back(labeled_graph(rng, i % 2));
  GcnModelConfig config;
  config.hidden = 12;
  config.num_layers = 2;
  TierPredictor model(config);
  TrainOptions opt;
  opt.epochs = 60;
  opt.patience = 60;
  train_tier_predictor(model, graphs, opt);
  ASSERT_GT(tier_accuracy(model, graphs), 0.9);

  const std::vector<double> sig = feature_significance(model, graphs);
  ASSERT_EQ(sig.size(), static_cast<std::size_t>(kNumNodeFeatures));
  // Feature 3 carries all the signal: its significance must dominate.
  for (std::int32_t j = 0; j < kNumNodeFeatures; ++j) {
    EXPECT_GE(sig[static_cast<std::size_t>(j)], 0.0);
    EXPECT_LE(sig[static_cast<std::size_t>(j)], 1.0);
    if (j != 3) {
      EXPECT_LE(sig[static_cast<std::size_t>(j)],
                sig[3] + 1e-9);
    }
  }
  EXPECT_GT(sig[3], 0.6);
}

TEST(TrainerTest, TrainingLossDecreases) {
  Rng rng(7);
  std::vector<Subgraph> graphs;
  for (int i = 0; i < 30; ++i) graphs.push_back(labeled_graph(rng, i % 2));
  GcnModelConfig config;
  config.hidden = 8;
  config.num_layers = 2;
  TierPredictor model(config);
  TrainOptions one_epoch;
  one_epoch.epochs = 1;
  const double early = train_tier_predictor(model, graphs, one_epoch);
  TrainOptions more;
  more.epochs = 60;
  more.patience = 60;
  const double late = train_tier_predictor(model, graphs, more);
  EXPECT_LT(late, early);
}

}  // namespace
}  // namespace m3dfl
