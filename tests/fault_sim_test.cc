#include <algorithm>
#include <map>

#include <gtest/gtest.h>

#include "m3d/partition.h"
#include "sim/fault_sim.h"
#include "test_helpers.h"

namespace m3dfl {
namespace {

// Brute-force reference: full scalar re-simulation of the faulty machine,
// one pattern at a time, with no cone extraction or word packing.  Anything
// the event-driven simulator reports must match this.
class ReferenceSim {
 public:
  ReferenceSim(const Netlist& nl, const PatternSet& patterns,
               const MivMap* mivs)
      : nl_(nl), patterns_(patterns), mivs_(mivs) {}

  std::vector<Observation> simulate(std::span<const Fault> faults) const {
    // Branch overrides: input pin -> fault type; stem overrides: net -> type.
    std::map<PinId, FaultType> branches;
    std::map<NetId, FaultType> stems;
    for (const Fault& f : faults) {
      if (f.is_miv()) {
        const Miv& miv = mivs_->miv(f.miv);
        for (const PinRef& sink : miv.far_sinks) {
          branches[nl_.pin_id(sink)] = FaultType::kMivDelay;
        }
      } else if (nl_.pin_ref(f.pin).is_output()) {
        stems[nl_.pin_net(f.pin)] = f.type;
      } else {
        branches[f.pin] = f.type;
      }
    }

    std::vector<Observation> out;
    for (std::int32_t p = 0; p < patterns_.num_patterns; ++p) {
      const std::vector<char> v1_good = evaluate_v1(p, {}, {});
      const std::vector<char> good_v2 =
          evaluate_v2(p, v1_good, v1_good, {}, {});
      // Static faults corrupt the launch cycle too; evaluate_v1 applies only
      // the static subset of the overrides.
      const std::vector<char> v1_bad = evaluate_v1(p, branches, stems);
      const std::vector<char> bad_v2 =
          evaluate_v2(p, v1_bad, v1_bad, branches, stems);
      for (std::size_t i = 0; i < nl_.flops().size(); ++i) {
        const GateId ff = nl_.flops()[i];
        const NetId d = nl_.gate(ff).fanin[0];
        bool good = good_v2[static_cast<std::size_t>(d)] != 0;
        bool bad = bad_v2[static_cast<std::size_t>(d)] != 0;
        bad = apply_branch(branches, nl_.input_pin(ff, 0), d, v1_bad, bad);
        if (good != bad) {
          out.push_back(Observation{p, false, static_cast<std::int32_t>(i)});
        }
      }
      for (std::size_t i = 0; i < nl_.primary_outputs().size(); ++i) {
        const GateId po = nl_.primary_outputs()[i];
        const NetId n = nl_.gate(po).fanin[0];
        bool good = good_v2[static_cast<std::size_t>(n)] != 0;
        bool bad = bad_v2[static_cast<std::size_t>(n)] != 0;
        bad = apply_branch(branches, nl_.input_pin(po, 0), n, v1_bad, bad);
        if (good != bad) {
          out.push_back(Observation{p, true, static_cast<std::int32_t>(i)});
        }
      }
    }
    std::sort(out.begin(), out.end());
    return out;
  }

 private:
  static bool scalar_fault(FaultType type, bool launch, bool current) {
    return (faulty_value(type, launch ? ~0ULL : 0u,
                         current ? ~0ULL : 0u) & 1u) != 0;
  }

  bool apply_branch(const std::map<PinId, FaultType>& branches, PinId pin,
                    NetId net, const std::vector<char>& v1,
                    bool current) const {
    const auto it = branches.find(pin);
    if (it == branches.end()) return current;
    return scalar_fault(it->second, v1[static_cast<std::size_t>(net)] != 0,
                        current);
  }

  // Launch-cycle evaluation; only the *static* overrides act in this cycle.
  std::vector<char> evaluate_v1(
      std::int32_t p, const std::map<PinId, FaultType>& branches,
      const std::map<NetId, FaultType>& stems) const {
    std::map<PinId, FaultType> static_branches;
    std::map<NetId, FaultType> static_stems;
    for (const auto& [pin, type] : branches) {
      if (is_static_fault(type)) static_branches[pin] = type;
    }
    for (const auto& [net, type] : stems) {
      if (is_static_fault(type)) static_stems[net] = type;
    }
    std::vector<char> value(static_cast<std::size_t>(nl_.num_nets()), 0);
    for (std::size_t i = 0; i < nl_.primary_inputs().size(); ++i) {
      value[static_cast<std::size_t>(
          nl_.gate(nl_.primary_inputs()[i]).fanout)] =
          patterns_.pi.bit(static_cast<std::int32_t>(i), p) ? 1 : 0;
    }
    for (std::size_t i = 0; i < nl_.flops().size(); ++i) {
      value[static_cast<std::size_t>(nl_.gate(nl_.flops()[i]).fanout)] =
          patterns_.scan.bit(static_cast<std::int32_t>(i), p) ? 1 : 0;
    }
    // Static seeds on source nets (constants ignore the launch argument).
    for (const auto& [net, type] : static_stems) {
      const GateId driver = nl_.net(net).driver;
      if (!is_combinational(nl_.gate(driver).type)) {
        value[static_cast<std::size_t>(net)] =
            scalar_fault(type, false, false) ? 1 : 0;
      }
    }
    if (static_branches.empty() && static_stems.empty()) {
      evaluate_comb(value, {}, {}, {});
    } else {
      evaluate_comb(value, value, static_branches, static_stems);
    }
    return value;
  }

  std::vector<char> evaluate_v2(std::int32_t p,
                                const std::vector<char>& launch,
                                const std::vector<char>& v1,
                                const std::map<PinId, FaultType>& branches,
                                const std::map<NetId, FaultType>& stems) const {
    (void)p;
    std::vector<char> value(static_cast<std::size_t>(nl_.num_nets()), 0);
    for (std::size_t i = 0; i < nl_.primary_inputs().size(); ++i) {
      value[static_cast<std::size_t>(
          nl_.gate(nl_.primary_inputs()[i]).fanout)] =
          patterns_.pi.bit(static_cast<std::int32_t>(i), p) ? 1 : 0;
    }
    for (std::size_t i = 0; i < nl_.flops().size(); ++i) {
      const Gate& ff = nl_.gate(nl_.flops()[i]);
      // Launch state: D value at (possibly faulty) V1, with any static/delay
      // override at the D pin applied at the launch capture.
      bool d = launch[static_cast<std::size_t>(ff.fanin[0])] != 0;
      d = apply_branch(branches, nl_.input_pin(nl_.flops()[i], 0),
                       ff.fanin[0], v1, d);
      value[static_cast<std::size_t>(ff.fanout)] = d ? 1 : 0;
    }
    // Seed stem overrides on source nets.
    for (const auto& [net, type] : stems) {
      const GateId driver = nl_.net(net).driver;
      if (!is_combinational(nl_.gate(driver).type)) {
        value[static_cast<std::size_t>(net)] =
            scalar_fault(type, v1[static_cast<std::size_t>(net)] != 0,
                         value[static_cast<std::size_t>(net)] != 0)
                ? 1
                : 0;
      }
    }
    evaluate_comb(value, v1, branches, stems);
    return value;
  }

  void evaluate_comb(std::vector<char>& value, const std::vector<char>& v1,
                     const std::map<PinId, FaultType>& branches,
                     const std::map<NetId, FaultType>& stems) const {
    for (GateId g : nl_.topo_order()) {
      const Gate& gate = nl_.gate(g);
      bool ins[8];
      std::size_t k = 0;
      for (std::size_t i = 0; i < gate.fanin.size(); ++i) {
        const NetId in = gate.fanin[i];
        bool v = value[static_cast<std::size_t>(in)] != 0;
        if (!v1.empty()) {
          v = apply_branch(branches,
                           nl_.input_pin(g, static_cast<std::int32_t>(i)), in,
                           v1, v);
        }
        ins[k++] = v;
      }
      bool out = eval_gate_scalar(gate.type, std::span<const bool>(ins, k));
      if (!v1.empty()) {
        const auto it = stems.find(gate.fanout);
        if (it != stems.end()) {
          out = scalar_fault(it->second,
                             v1[static_cast<std::size_t>(gate.fanout)] != 0,
                             out);
        }
      }
      value[static_cast<std::size_t>(gate.fanout)] = out ? 1 : 0;
    }
  }

  const Netlist& nl_;
  const PatternSet& patterns_;
  const MivMap* mivs_;
};

struct SimSetup {
  Netlist nl;
  TierAssignment tiers;
  MivMap mivs;
  PatternSet patterns;
  LocSimulator sim;

  explicit SimSetup(std::uint64_t seed)
      : nl(testing::small_netlist(seed)),
        tiers(partition_tiers(nl, {})),
        mivs(nl, tiers),
        patterns([&] {
          Rng rng(seed ^ 0xF00D);
          return PatternSet::random(
              static_cast<std::int32_t>(nl.primary_inputs().size()),
              static_cast<std::int32_t>(nl.flops().size()), 80, rng);
        }()),
        sim(nl) {
    sim.run(patterns);
  }
};

class FaultSimVsReference : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FaultSimVsReference, RandomTdfFaultsMatch) {
  SimSetup s(GetParam());
  FaultSimulator fsim(s.nl, s.sim, &s.mivs);
  ReferenceSim ref(s.nl, s.patterns, &s.mivs);
  Rng rng(GetParam() ^ 0xBEEF);
  for (int trial = 0; trial < 25; ++trial) {
    const PinId pin =
        static_cast<PinId>(rng.next_below(
            static_cast<std::uint64_t>(s.nl.num_pins())));
    const Fault f = rng.next_bool() ? Fault::slow_to_rise(pin)
                                    : Fault::slow_to_fall(pin);
    EXPECT_EQ(fsim.simulate(f), ref.simulate({&f, 1}))
        << fault_to_string(s.nl, f);
  }
}

TEST_P(FaultSimVsReference, MivFaultsMatch) {
  SimSetup s(GetParam());
  ASSERT_GT(s.mivs.num_mivs(), 0);
  FaultSimulator fsim(s.nl, s.sim, &s.mivs);
  ReferenceSim ref(s.nl, s.patterns, &s.mivs);
  Rng rng(GetParam() ^ 0xCAFE);
  for (int trial = 0; trial < 10; ++trial) {
    const Fault f = Fault::miv_delay(static_cast<MivId>(
        rng.next_below(static_cast<std::uint64_t>(s.mivs.num_mivs()))));
    EXPECT_EQ(fsim.simulate(f), ref.simulate({&f, 1}))
        << fault_to_string(s.nl, f);
  }
}

TEST_P(FaultSimVsReference, MultiFaultsMatch) {
  SimSetup s(GetParam());
  FaultSimulator fsim(s.nl, s.sim, &s.mivs);
  ReferenceSim ref(s.nl, s.patterns, &s.mivs);
  Rng rng(GetParam() ^ 0xD00D);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Fault> faults;
    const int k = 2 + static_cast<int>(rng.next_below(4));
    for (int i = 0; i < k; ++i) {
      const PinId pin = static_cast<PinId>(
          rng.next_below(static_cast<std::uint64_t>(s.nl.num_pins())));
      faults.push_back(rng.next_bool() ? Fault::slow_to_rise(pin)
                                       : Fault::slow_to_fall(pin));
    }
    EXPECT_EQ(fsim.simulate(std::span<const Fault>(faults.data(),
                                                   faults.size())),
              ref.simulate(std::span<const Fault>(faults.data(),
                                                  faults.size())));
  }
}

TEST_P(FaultSimVsReference, StuckAtFaultsMatch) {
  SimSetup s(GetParam());
  FaultSimulator fsim(s.nl, s.sim, &s.mivs);
  ReferenceSim ref(s.nl, s.patterns, &s.mivs);
  Rng rng(GetParam() ^ 0x5A5A);
  for (int trial = 0; trial < 20; ++trial) {
    const PinId pin = static_cast<PinId>(
        rng.next_below(static_cast<std::uint64_t>(s.nl.num_pins())));
    const Fault f = Fault::stuck_at(pin, rng.next_bool());
    EXPECT_EQ(fsim.simulate(f), ref.simulate({&f, 1}))
        << fault_to_string(s.nl, f);
  }
}

TEST_P(FaultSimVsReference, MixedStaticAndDelayFaultsMatch) {
  SimSetup s(GetParam());
  FaultSimulator fsim(s.nl, s.sim, &s.mivs);
  ReferenceSim ref(s.nl, s.patterns, &s.mivs);
  Rng rng(GetParam() ^ 0x1234);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Fault> faults;
    for (int i = 0; i < 3; ++i) {
      const PinId pin = static_cast<PinId>(
          rng.next_below(static_cast<std::uint64_t>(s.nl.num_pins())));
      switch (rng.next_below(4)) {
        case 0: faults.push_back(Fault::slow_to_rise(pin)); break;
        case 1: faults.push_back(Fault::slow_to_fall(pin)); break;
        case 2: faults.push_back(Fault::stuck_at(pin, false)); break;
        default: faults.push_back(Fault::stuck_at(pin, true)); break;
      }
    }
    EXPECT_EQ(fsim.simulate(std::span<const Fault>(faults.data(),
                                                   faults.size())),
              ref.simulate(std::span<const Fault>(faults.data(),
                                                  faults.size())));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultSimVsReference,
                         ::testing::Values(1, 7, 23, 41, 77));

TEST(FaultSimTest, StuckAtCorruptsLaunchState) {
  // pi -> ff_a (D) ; ff_a.Q -> INV -> ff_b (D).  A SA1 on pi's net corrupts
  // ff_a's launch capture, which only becomes observable at ff_b through the
  // second cycle — the two-cycle semantics a capture-only model would miss.
  Netlist nl;
  const GateId pi = nl.add_gate(GateType::kPrimaryInput, "pi");
  const GateId ffa = nl.add_gate(GateType::kScanFlop, "ffa");
  const GateId inv = nl.add_gate(GateType::kInv, "inv");
  const GateId ffb = nl.add_gate(GateType::kScanFlop, "ffb");
  const NetId n_pi = nl.add_net();
  const NetId n_qa = nl.add_net();
  const NetId n_i = nl.add_net();
  const NetId n_qb = nl.add_net();  // scan-observed only
  nl.set_output(pi, n_pi);
  nl.set_output(ffa, n_qa);
  nl.set_output(inv, n_i);
  nl.set_output(ffb, n_qb);
  nl.connect_input(ffa, n_pi);
  nl.connect_input(inv, n_qa);
  nl.connect_input(ffb, n_i);
  nl.finalize();

  // One pattern: pi = 0, both flops load 0.
  PatternSet p;
  p.num_patterns = 1;
  p.pi = BitMatrix(1, 1);
  p.scan = BitMatrix(2, 1);
  LocSimulator sim(nl);
  sim.run(p);
  FaultSimulator fsim(nl, sim);

  // Good: launch captures ffa <- 0, V2: inv(0) = 1, ffb captures 1 and
  // ffa re-captures 0.  SA1 on the PI net: launch ffa <- 1, V2 inv(1) = 0 at
  // ffb, and ffa re-captures 1.
  const auto obs =
      fsim.simulate(Fault::stuck_at(nl.output_pin(pi), true));
  ASSERT_EQ(obs.size(), 2u);
  EXPECT_EQ(obs[0], (Observation{0, false, 0}));  // ffa: 0 -> 1
  EXPECT_EQ(obs[1], (Observation{0, false, 1}));  // ffb: 1 -> 0
}

TEST(FaultSimTest, DetectsAgreesWithSimulate) {
  SimSetup s(11);
  FaultSimulator fsim(s.nl, s.sim, &s.mivs);
  Rng rng(99);
  for (int trial = 0; trial < 40; ++trial) {
    const PinId pin = static_cast<PinId>(
        rng.next_below(static_cast<std::uint64_t>(s.nl.num_pins())));
    const Fault f = rng.next_bool() ? Fault::slow_to_rise(pin)
                                    : Fault::slow_to_fall(pin);
    EXPECT_EQ(fsim.detects(f), !fsim.simulate(f).empty());
  }
}

TEST(FaultSimTest, OppositeDirectionsDisjointActivation) {
  // A pattern that activates STR at a site cannot simultaneously activate
  // STF there: per pattern, the failing sets of the two directions at one
  // pin are disjoint.
  SimSetup s(13);
  FaultSimulator fsim(s.nl, s.sim, &s.mivs);
  const PinId pin = s.nl.output_pin(s.nl.topo_order()[5]);
  const auto rises = fsim.simulate(Fault::slow_to_rise(pin));
  const auto falls = fsim.simulate(Fault::slow_to_fall(pin));
  for (const Observation& r : rises) {
    for (const Observation& f : falls) {
      EXPECT_FALSE(r == f);
    }
  }
}

TEST(FaultSimTest, MivFaultSparesNearTierSinks) {
  // Build a dedicated circuit: one net with a near-tier and a far-tier sink.
  Netlist nl;
  const GateId pi = nl.add_gate(GateType::kPrimaryInput, "pi");
  const GateId ff_src = nl.add_gate(GateType::kScanFlop, "ffs");
  const GateId buf = nl.add_gate(GateType::kBuf, "buf");
  const GateId ff_near = nl.add_gate(GateType::kScanFlop, "ffn");
  const GateId ff_far = nl.add_gate(GateType::kScanFlop, "fff");
  const GateId po = nl.add_gate(GateType::kPrimaryOutput, "po");
  const NetId n_pi = nl.add_net();
  const NetId n_q = nl.add_net();
  const NetId n_b = nl.add_net();
  const NetId n_n = nl.add_net();
  const NetId n_f = nl.add_net();
  nl.set_output(pi, n_pi);
  nl.set_output(ff_src, n_q);
  nl.set_output(buf, n_b);
  nl.set_output(ff_near, n_n);
  nl.set_output(ff_far, n_f);
  nl.connect_input(buf, n_q);
  nl.connect_input(ff_near, n_b);  // near-tier sink of n_b
  nl.connect_input(ff_far, n_b);   // far-tier sink of n_b
  nl.connect_input(ff_src, n_pi);
  nl.connect_input(po, n_n);
  (void)n_f;
  nl.finalize();

  std::vector<std::int8_t> tiers(static_cast<std::size_t>(nl.num_gates()),
                                 static_cast<std::int8_t>(kBottomTier));
  TierAssignment ta(std::move(tiers));
  ta.set_tier(ff_far, kTopTier);
  const MivMap mivs(nl, ta);
  const MivId miv = mivs.miv_of_net(n_b);
  ASSERT_NE(miv, kNullMiv);

  // Patterns: load ffs with 0 then launch 1 (transition on n_b).
  PatternSet p;
  p.num_patterns = 1;
  p.pi = BitMatrix(1, 1);
  p.scan = BitMatrix(3, 1);
  p.pi.set_bit(0, 0, true);   // D of ff_src = 1
  // scan order = flop order: ffs, ffn, fff all load 0.
  LocSimulator sim(nl);
  sim.run(p);

  FaultSimulator fsim(nl, sim, &mivs);
  const auto obs = fsim.simulate(Fault::miv_delay(miv));
  // Launch: ffs goes 0 -> 1, so n_b rises in the at-speed cycle; the MIV
  // delays it only toward the far-tier flop fff (flop index 2).
  ASSERT_EQ(obs.size(), 1u);
  EXPECT_EQ(obs[0].pattern, 0);
  EXPECT_FALSE(obs[0].at_po);
  EXPECT_EQ(obs[0].index, 2);
}

TEST(FaultSimTest, UnactivatedFaultYieldsNoObservations) {
  // A slow-to-rise fault at a pin whose net never rises between launch and
  // capture is never activated, hence never observed.
  SimSetup s(17);
  FaultSimulator fsim(s.nl, s.sim, &s.mivs);
  std::int32_t checked = 0;
  for (PinId pin = 0; pin < s.nl.num_pins() && checked < 20; ++pin) {
    const NetId net = s.nl.pin_net(pin);
    if (net == kNullNet) continue;
    std::uint64_t rising = 0;
    for (std::int32_t w = 0; w < s.sim.num_words(); ++w) {
      rising |= s.sim.transition(net, w) & ~s.sim.v1(net, w) &
                valid_mask(s.sim.num_patterns(), w);
    }
    if (rising != 0) continue;
    ++checked;
    EXPECT_TRUE(fsim.simulate(Fault::slow_to_rise(pin)).empty())
        << s.nl.pin_name(pin);
  }
  EXPECT_GT(checked, 0);
}

}  // namespace
}  // namespace m3dfl
