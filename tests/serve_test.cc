#include <gtest/gtest.h>

#include <future>
#include <sstream>
#include <vector>

#include "core/pipeline.h"
#include "diag/atpg_diagnosis.h"
#include "serve/cache.h"
#include "serve/report_sink.h"
#include "serve/request_queue.h"
#include "serve/service.h"

namespace m3dfl {
namespace {

// One shared design + trained framework + request set for the whole file
// (expensive to build, read-only afterwards).
class ServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    design_ = std::shared_ptr<const Design>(
        Design::build(Profile::kAes, DesignConfig::kSyn1));
    TransferTrainOptions train;
    train.samples_syn1 = 40;
    train.samples_per_random = 20;
    const LabeledDataset data =
        build_transfer_training_set(Profile::kAes, *design_, train);
    FrameworkOptions options;
    options.training.epochs = 40;
    framework_ = new DiagnosisFramework(options);
    framework_->train(data.graphs);

    DataGenOptions gen;
    gen.num_samples = 8;
    gen.miv_fault_prob = 0.25;
    gen.seed = 0xFEED;
    logs_ = new std::vector<FailureLog>();
    for (const Sample& s : generate_samples(design_->context(), gen)) {
      logs_->push_back(s.log);
    }
  }
  static void TearDownTestSuite() {
    delete logs_;
    delete framework_;
    logs_ = nullptr;
    framework_ = nullptr;
    design_.reset();
  }

  // A fresh service around a serialization round-tripped framework copy.
  static serve::DiagnosisService make_service(
      const serve::ServiceOptions& options) {
    std::stringstream model;
    framework_->save(model);
    return serve::DiagnosisService(model, options);
  }

  // The request stream used by the determinism/cache tests: every log
  // twice, interleaved.
  static std::vector<FailureLog> request_stream() {
    std::vector<FailureLog> requests;
    for (int rep = 0; rep < 2; ++rep) {
      for (const FailureLog& log : *logs_) requests.push_back(log);
    }
    return requests;
  }

  static std::shared_ptr<const Design> design_;
  static DiagnosisFramework* framework_;
  static std::vector<FailureLog>* logs_;
};

std::shared_ptr<const Design> ServeTest::design_;
DiagnosisFramework* ServeTest::framework_ = nullptr;
std::vector<FailureLog>* ServeTest::logs_ = nullptr;

// ---- component tests --------------------------------------------------------

TEST(RequestQueueTest, BatchesGroupByKeyAndPreserveFifoPerKey) {
  struct Item {
    int key;
    int seq;
  };
  serve::RequestQueue<Item> queue(16);
  queue.push({1, 0});
  queue.push({2, 1});
  queue.push({1, 2});
  queue.push({1, 3});
  const auto batch =
      queue.pop_batch(8, [](const Item& item) { return item.key; });
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].seq, 0);
  EXPECT_EQ(batch[1].seq, 2);
  EXPECT_EQ(batch[2].seq, 3);
  EXPECT_EQ(queue.size(), 1u);  // key 2 still queued

  queue.close();
  const auto rest =
      queue.pop_batch(8, [](const Item& item) { return item.key; });
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0].seq, 1);
  EXPECT_TRUE(
      queue.pop_batch(8, [](const Item& item) { return item.key; }).empty());
  EXPECT_FALSE(queue.push({3, 4}));  // closed
}

TEST(RequestQueueTest, BatchBoundIsRespected) {
  serve::RequestQueue<int> queue(16);
  for (int i = 0; i < 6; ++i) queue.push(i);
  const auto batch = queue.pop_batch(4, [](int) { return 0; });
  EXPECT_EQ(batch.size(), 4u);
  EXPECT_EQ(queue.size(), 2u);
}

TEST(OrderedReportSinkTest, ReleasesContiguousPrefixInOrder) {
  std::ostringstream os;
  serve::OrderedReportSink sink(&os);
  sink.deliver(2, "c");
  sink.deliver(0, "a");
  EXPECT_EQ(os.str(), "a");  // 1 missing: 2 held back
  EXPECT_EQ(sink.flushed(), 1u);
  sink.deliver(1, "b");
  EXPECT_EQ(os.str(), "abc");
  EXPECT_EQ(sink.delivered(), 3u);
  const auto ordered = sink.take_ordered();
  ASSERT_EQ(ordered.size(), 3u);
  EXPECT_EQ(ordered[1], "b");
}

TEST(DiagnosisCacheTest, LruEvictionAndCounters) {
  serve::DiagnosisCache cache(2);
  const auto entry = std::make_shared<serve::CachedDiagnosis>();
  EXPECT_EQ(cache.lookup("a"), nullptr);
  cache.insert("a", entry);
  cache.insert("b", entry);
  EXPECT_NE(cache.lookup("a"), nullptr);  // refreshes a
  cache.insert("c", entry);               // evicts b (LRU)
  EXPECT_EQ(cache.lookup("b"), nullptr);
  EXPECT_NE(cache.lookup("a"), nullptr);
  EXPECT_NE(cache.lookup("c"), nullptr);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.hits(), 3);
  EXPECT_EQ(cache.misses(), 2);
  EXPECT_EQ(cache.evictions(), 1);
}

TEST(DiagnosisCacheTest, KeyIsExactOverDesignAndLog) {
  FailureLog log;
  log.po_fails.push_back(Observation{});
  FailureLog other = log;
  other.po_fails[0].pattern = 7;
  EXPECT_NE(serve::DiagnosisCache::make_key(0, log),
            serve::DiagnosisCache::make_key(1, log));
  EXPECT_NE(serve::DiagnosisCache::make_key(0, log),
            serve::DiagnosisCache::make_key(0, other));
}

// ---- service tests ----------------------------------------------------------

TEST_F(ServeTest, SmokeEndToEnd) {
  serve::ServiceOptions options;
  options.num_threads = 2;
  serve::DiagnosisService service = make_service(options);
  const std::int32_t design_id = service.register_design(design_);
  EXPECT_EQ(service.num_designs(), 1);

  const serve::DiagnosisResult result =
      service.diagnose(design_id, logs_->front());
  EXPECT_EQ(result.design, design_->name());
  EXPECT_TRUE(result.prediction.tier == 0 || result.prediction.tier == 1);
  EXPECT_GE(result.prediction.confidence, 0.5);
  EXPECT_GT(result.report.resolution(), 0);
  EXPECT_FALSE(result.cache_hit);
  EXPECT_GE(result.total_seconds, 0.0);

  service.shutdown();
  EXPECT_EQ(service.metrics().requests_completed.load(), 1);
  EXPECT_EQ(service.metrics().requests_failed.load(), 0);
  EXPECT_EQ(service.metrics().end_to_end.count(), 1);
  EXPECT_THROW(service.submit(design_id, logs_->front()), Error);
  const std::string report = service.metrics().report();
  EXPECT_NE(report.find("cache hit rate"), std::string::npos);
  EXPECT_NE(report.find("end to end"), std::string::npos);
}

TEST_F(ServeTest, RejectsUnknownDesignAndNullDesign) {
  serve::ServiceOptions options;
  options.num_threads = 1;
  serve::DiagnosisService service = make_service(options);
  EXPECT_THROW(service.submit(0, logs_->front()), Error);
  EXPECT_THROW(service.register_design(nullptr), Error);
}

TEST_F(ServeTest, RequiresTrainedFramework) {
  EXPECT_THROW(serve::DiagnosisService{DiagnosisFramework()}, Error);
}

// The tentpole guarantee: 8-thread concurrent diagnosis produces
// byte-identical reports to the single-threaded path, which in turn matches
// the raw serial (pre-service) path.
TEST_F(ServeTest, ConcurrentMatchesSerialByteForByte) {
  const std::vector<FailureLog> requests = request_stream();

  // Raw serial path, no service, no cache.
  const DesignContext ctx = design_->context();
  std::vector<std::string> serial_texts;
  for (const FailureLog& log : requests) {
    serve::DiagnosisResult r;
    r.design = design_->name();
    r.report = diagnose_atpg(ctx, log);
    const Subgraph sg = subgraph_for_log(*design_, log);
    r.pruned = framework_->diagnose(ctx, sg, r.report, &r.prediction);
    serial_texts.push_back(
        serve::result_to_string(design_->netlist(), r));
  }

  const auto run = [&](std::int32_t threads) {
    serve::ServiceOptions options;
    options.num_threads = threads;
    serve::DiagnosisService service = make_service(options);
    const std::int32_t design_id = service.register_design(design_);
    std::vector<std::future<serve::DiagnosisResult>> futures;
    for (const FailureLog& log : requests) {
      futures.push_back(service.submit(design_id, log));
    }
    serve::OrderedReportSink sink;
    for (auto& f : futures) {
      const serve::DiagnosisResult r = f.get();
      sink.deliver(r.sequence,
                   serve::result_to_string(design_->netlist(), r));
    }
    service.shutdown();
    return sink.take_ordered();
  };

  const std::vector<std::string> one_thread = run(1);
  const std::vector<std::string> eight_threads = run(8);
  ASSERT_EQ(one_thread.size(), requests.size());
  ASSERT_EQ(eight_threads.size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(one_thread[i], serial_texts[i]) << "request " << i;
    EXPECT_EQ(eight_threads[i], serial_texts[i]) << "request " << i;
  }
}

TEST_F(ServeTest, CacheCountersMatchRepeatedTraffic) {
  serve::ServiceOptions options;
  options.num_threads = 1;  // single worker: deterministic hit/miss split
  serve::DiagnosisService service = make_service(options);
  const std::int32_t design_id = service.register_design(design_);

  const std::vector<FailureLog> requests = request_stream();
  std::vector<std::future<serve::DiagnosisResult>> futures;
  for (const FailureLog& log : requests) {
    futures.push_back(service.submit(design_id, log));
  }
  std::int32_t hits = 0;
  for (auto& f : futures) hits += f.get().cache_hit ? 1 : 0;
  service.drain();

  // Every unique log misses once and hits on its repeat.
  const auto unique = static_cast<std::int64_t>(logs_->size());
  EXPECT_EQ(service.cache().misses(), unique);
  EXPECT_EQ(service.cache().hits(), unique);
  EXPECT_EQ(hits, static_cast<std::int32_t>(unique));
  EXPECT_EQ(service.metrics().cache_hits.load(), unique);
  EXPECT_EQ(service.metrics().cache_misses.load(), unique);
  EXPECT_DOUBLE_EQ(service.metrics().cache_hit_rate(), 0.5);
  EXPECT_EQ(service.cache().size(), static_cast<std::size_t>(unique));
  service.shutdown();
}

TEST_F(ServeTest, CacheCapacityZeroDisablesCaching) {
  serve::ServiceOptions options;
  options.num_threads = 1;
  options.cache_capacity = 0;
  serve::DiagnosisService service = make_service(options);
  const std::int32_t design_id = service.register_design(design_);
  const serve::DiagnosisResult first =
      service.diagnose(design_id, logs_->front());
  const serve::DiagnosisResult second =
      service.diagnose(design_id, logs_->front());
  EXPECT_FALSE(first.cache_hit);
  EXPECT_FALSE(second.cache_hit);
  EXPECT_EQ(service.cache().hits(), 0);
  service.shutdown();
}

// ---- serialize robustness through the service load path --------------------

TEST_F(ServeTest, FrameworkRoundTripsThroughServiceLoadPath) {
  std::stringstream model;
  framework_->save(model);
  serve::ServiceOptions options;
  options.num_threads = 1;
  serve::DiagnosisService service(model, options);
  EXPECT_EQ(service.framework().tp_threshold(), framework_->tp_threshold());
  const std::int32_t design_id = service.register_design(design_);

  // Loaded framework behaves identically to the in-memory original.
  const DesignContext ctx = design_->context();
  for (const FailureLog& log : *logs_) {
    serve::DiagnosisResult expected;
    expected.design = design_->name();
    expected.report = diagnose_atpg(ctx, log);
    const Subgraph sg = subgraph_for_log(*design_, log);
    expected.pruned =
        framework_->diagnose(ctx, sg, expected.report, &expected.prediction);
    const serve::DiagnosisResult got = service.diagnose(design_id, log);
    EXPECT_EQ(serve::result_to_string(design_->netlist(), got),
              serve::result_to_string(design_->netlist(), expected));
  }
  service.shutdown();
}

TEST_F(ServeTest, TruncatedModelStreamThrowsError) {
  std::stringstream model;
  framework_->save(model);
  const std::string full = model.str();
  // Truncation at several depths: inside the header, inside a model tag,
  // inside a parameter payload.
  for (const std::size_t keep :
       {std::size_t{5}, full.size() / 4, full.size() / 2, full.size() - 9}) {
    std::stringstream truncated(full.substr(0, keep));
    EXPECT_THROW(serve::DiagnosisService service(truncated), Error)
        << "kept " << keep << " of " << full.size() << " bytes";
  }
}

TEST_F(ServeTest, CorruptedModelTagThrowsError) {
  std::stringstream model;
  framework_->save(model);
  std::string text = model.str();

  // Corrupt the framework magic.
  std::string bad_magic = text;
  bad_magic.replace(0, 5, "bogus");
  std::stringstream bad_magic_is(bad_magic);
  EXPECT_THROW(serve::DiagnosisService service(bad_magic_is), Error);

  // Corrupt an inner model tag.
  const std::size_t tag = text.find("tier-predictor");
  ASSERT_NE(tag, std::string::npos);
  text.replace(tag, 4, "XXXX");
  std::stringstream bad_tag_is(text);
  EXPECT_THROW(serve::DiagnosisService service(bad_tag_is), Error);
}

}  // namespace
}  // namespace m3dfl
