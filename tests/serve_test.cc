#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <sstream>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "diag/atpg_diagnosis.h"
#include "graph/backtrace.h"
#include "graph/subgraph.h"
#include "serve/breaker.h"
#include "serve/cache.h"
#include "serve/fault_injector.h"
#include "serve/report_sink.h"
#include "serve/request_queue.h"
#include "serve/service.h"
#include "serve/status.h"

namespace m3dfl {
namespace {

// One shared design + trained framework + request set for the whole file
// (expensive to build, read-only afterwards).
class ServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    design_ = std::shared_ptr<const Design>(
        Design::build(Profile::kAes, DesignConfig::kSyn1));
    TransferTrainOptions train;
    train.samples_syn1 = 40;
    train.samples_per_random = 20;
    const LabeledDataset data =
        build_transfer_training_set(Profile::kAes, *design_, train);
    FrameworkOptions options;
    options.training.epochs = 40;
    framework_ = new DiagnosisFramework(options);
    framework_->train(data.graphs);

    DataGenOptions gen;
    gen.num_samples = 8;
    gen.miv_fault_prob = 0.25;
    gen.seed = 0xFEED;
    logs_ = new std::vector<FailureLog>();
    for (const Sample& s : generate_samples(design_->context(), gen)) {
      logs_->push_back(s.log);
    }
  }
  static void TearDownTestSuite() {
    delete logs_;
    delete framework_;
    logs_ = nullptr;
    framework_ = nullptr;
    design_.reset();
  }

  // A fresh service around a serialization round-tripped framework copy.
  static serve::DiagnosisService make_service(
      const serve::ServiceOptions& options) {
    std::stringstream model;
    framework_->save(model);
    return serve::DiagnosisService(model, options);
  }

  // The request stream used by the determinism/cache tests: every log
  // twice, interleaved.
  static std::vector<FailureLog> request_stream() {
    std::vector<FailureLog> requests;
    for (int rep = 0; rep < 2; ++rep) {
      for (const FailureLog& log : *logs_) requests.push_back(log);
    }
    return requests;
  }

  static std::shared_ptr<const Design> design_;
  static DiagnosisFramework* framework_;
  static std::vector<FailureLog>* logs_;
};

std::shared_ptr<const Design> ServeTest::design_;
DiagnosisFramework* ServeTest::framework_ = nullptr;
std::vector<FailureLog>* ServeTest::logs_ = nullptr;

// The raw serial reference path: replicates the service pipeline (ATPG
// report, support-weighted back-trace, subgraph extraction, GNN diagnosis,
// calibrated confidence) with no queue, cache, or worker threads.
serve::DiagnosisResult serial_reference(const Design& design,
                                        const DesignContext& ctx,
                                        const DiagnosisFramework& framework,
                                        const FailureLog& log) {
  serve::DiagnosisResult r;
  r.design = design.name();
  r.report = diagnose_atpg(ctx, log);
  const BacktraceResult backtrace =
      backtrace_with_support(design.graph(), ctx, log);
  const Subgraph sg = extract_subgraph(design.graph(), backtrace.candidates);
  r.pruned = framework.diagnose(ctx, sg, r.report, &r.prediction);
  r.confidence = framework.diagnosis_confidence(backtrace, &r.prediction);
  return r;
}

// ---- component tests --------------------------------------------------------

TEST(RequestQueueTest, BatchesGroupByKeyAndPreserveFifoPerKey) {
  struct Item {
    int key;
    int seq;
  };
  serve::RequestQueue<Item> queue(16);
  queue.push({1, 0});
  queue.push({2, 1});
  queue.push({1, 2});
  queue.push({1, 3});
  const auto batch =
      queue.pop_batch(8, [](const Item& item) { return item.key; });
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].seq, 0);
  EXPECT_EQ(batch[1].seq, 2);
  EXPECT_EQ(batch[2].seq, 3);
  EXPECT_EQ(queue.size(), 1u);  // key 2 still queued

  queue.close();
  const auto rest =
      queue.pop_batch(8, [](const Item& item) { return item.key; });
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0].seq, 1);
  EXPECT_TRUE(
      queue.pop_batch(8, [](const Item& item) { return item.key; }).empty());
  EXPECT_FALSE(queue.push({3, 4}));  // closed
}

TEST(RequestQueueTest, BatchBoundIsRespected) {
  serve::RequestQueue<int> queue(16);
  for (int i = 0; i < 6; ++i) queue.push(i);
  const auto batch = queue.pop_batch(4, [](int) { return 0; });
  EXPECT_EQ(batch.size(), 4u);
  EXPECT_EQ(queue.size(), 2u);
}

TEST(OrderedReportSinkTest, ReleasesContiguousPrefixInOrder) {
  std::ostringstream os;
  serve::OrderedReportSink sink(&os);
  sink.deliver(2, "c");
  sink.deliver(0, "a");
  EXPECT_EQ(os.str(), "a");  // 1 missing: 2 held back
  EXPECT_EQ(sink.flushed(), 1u);
  sink.deliver(1, "b");
  EXPECT_EQ(os.str(), "abc");
  EXPECT_EQ(sink.delivered(), 3u);
  const auto ordered = sink.take_ordered();
  ASSERT_EQ(ordered.size(), 3u);
  EXPECT_EQ(ordered[1], "b");
}

TEST(DiagnosisCacheTest, LruEvictionAndCounters) {
  serve::DiagnosisCache cache(2);
  const auto entry = std::make_shared<serve::CachedDiagnosis>();
  EXPECT_EQ(cache.lookup("a"), nullptr);
  cache.insert("a", entry);
  cache.insert("b", entry);
  EXPECT_NE(cache.lookup("a"), nullptr);  // refreshes a
  cache.insert("c", entry);               // evicts b (LRU)
  EXPECT_EQ(cache.lookup("b"), nullptr);
  EXPECT_NE(cache.lookup("a"), nullptr);
  EXPECT_NE(cache.lookup("c"), nullptr);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.hits(), 3);
  EXPECT_EQ(cache.misses(), 2);
  EXPECT_EQ(cache.evictions(), 1);
}

TEST(DiagnosisCacheTest, KeyIsExactOverDesignAndLog) {
  FailureLog log;
  log.po_fails.push_back(Observation{});
  FailureLog other = log;
  other.po_fails[0].pattern = 7;
  EXPECT_NE(serve::DiagnosisCache::make_key(0, log),
            serve::DiagnosisCache::make_key(1, log));
  EXPECT_NE(serve::DiagnosisCache::make_key(0, log),
            serve::DiagnosisCache::make_key(0, other));
}

// Epoch-style ownership under fire: writers churn a tiny cache far past its
// capacity while every thread holds shared_ptrs from earlier lookups — an
// eviction must never invalidate an entry an in-flight reader still holds,
// and a hit must never surface another key's entry.  (Run under TSan by the
// CI serve job; this is the cache half of the fleet reload-under-fire
// harness in fleet_chaos_test.cc.)
TEST(DiagnosisCacheTest, EvictionNeverInvalidatesInFlightReaders) {
  serve::DiagnosisCache cache(4);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 250;
  std::atomic<int> mismatches{0};
  // Entries each thread still holds after eviction: (expected id, entry).
  std::vector<std::vector<
      std::pair<int, std::shared_ptr<const serve::CachedDiagnosis>>>>
      held(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const int id = t * kPerThread + i;
        auto entry = std::make_shared<serve::CachedDiagnosis>();
        entry->backtrace.num_responses = id;  // identity tag
        const std::string key = "log-" + std::to_string(id);
        cache.insert(key, std::move(entry));
        if (const auto hit = cache.lookup(key)) {
          if (hit->backtrace.num_responses != id) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
          if (i % 16 == 0) held[t].push_back({id, hit});
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_LE(cache.size(), 4u);
  // 1000 inserts through 4 slots: nearly everything held was evicted...
  EXPECT_GE(cache.evictions(), static_cast<std::int64_t>(
                                   kThreads * kPerThread - 8));
  // ...yet every held entry is still alive and byte-for-byte intact.
  for (int t = 0; t < kThreads; ++t) {
    for (const auto& [id, entry] : held[t]) {
      ASSERT_NE(entry, nullptr);
      EXPECT_EQ(entry->backtrace.num_responses, id);
    }
  }
}

// ---- service tests ----------------------------------------------------------

TEST_F(ServeTest, SmokeEndToEnd) {
  serve::ServiceOptions options;
  options.num_threads = 2;
  serve::DiagnosisService service = make_service(options);
  const std::int32_t design_id = service.register_design(design_);
  EXPECT_EQ(service.num_designs(), 1);

  const serve::DiagnosisResult result =
      service.diagnose(design_id, logs_->front());
  EXPECT_EQ(result.design, design_->name());
  EXPECT_TRUE(result.prediction.tier == 0 || result.prediction.tier == 1);
  EXPECT_GE(result.prediction.confidence, 0.5);
  EXPECT_GT(result.report.resolution(), 0);
  EXPECT_FALSE(result.cache_hit);
  EXPECT_GE(result.total_seconds, 0.0);

  service.shutdown();
  EXPECT_EQ(service.metrics().requests_completed.load(), 1);
  EXPECT_EQ(service.metrics().requests_failed.load(), 0);
  EXPECT_EQ(service.metrics().end_to_end.count(), 1);
  EXPECT_THROW(service.submit(design_id, logs_->front()), Error);
  const std::string report = service.metrics().report();
  EXPECT_NE(report.find("cache hit rate"), std::string::npos);
  EXPECT_NE(report.find("end to end"), std::string::npos);
}

TEST_F(ServeTest, RejectsUnknownDesignAndNullDesign) {
  serve::ServiceOptions options;
  options.num_threads = 1;
  serve::DiagnosisService service = make_service(options);
  EXPECT_THROW(service.submit(0, logs_->front()), Error);
  EXPECT_THROW(service.register_design(nullptr), Error);
}

TEST_F(ServeTest, RequiresTrainedFramework) {
  EXPECT_THROW(serve::DiagnosisService{DiagnosisFramework()}, Error);
}

// The tentpole guarantee: 8-thread concurrent diagnosis produces
// byte-identical reports to the single-threaded path, which in turn matches
// the raw serial (pre-service) path.
TEST_F(ServeTest, ConcurrentMatchesSerialByteForByte) {
  const std::vector<FailureLog> requests = request_stream();

  // Raw serial path, no service, no cache.
  const DesignContext ctx = design_->context();
  std::vector<std::string> serial_texts;
  for (const FailureLog& log : requests) {
    serial_texts.push_back(serve::result_to_string(
        design_->netlist(), serial_reference(*design_, ctx, *framework_, log)));
  }

  const auto run = [&](std::int32_t threads) {
    serve::ServiceOptions options;
    options.num_threads = threads;
    serve::DiagnosisService service = make_service(options);
    const std::int32_t design_id = service.register_design(design_);
    std::vector<std::future<serve::DiagnosisResult>> futures;
    for (const FailureLog& log : requests) {
      futures.push_back(service.submit(design_id, log));
    }
    serve::OrderedReportSink sink;
    for (auto& f : futures) {
      const serve::DiagnosisResult r = f.get();
      sink.deliver(r.sequence,
                   serve::result_to_string(design_->netlist(), r));
    }
    service.shutdown();
    return sink.take_ordered();
  };

  const std::vector<std::string> one_thread = run(1);
  const std::vector<std::string> eight_threads = run(8);
  ASSERT_EQ(one_thread.size(), requests.size());
  ASSERT_EQ(eight_threads.size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(one_thread[i], serial_texts[i]) << "request " << i;
    EXPECT_EQ(eight_threads[i], serial_texts[i]) << "request " << i;
  }
}

TEST_F(ServeTest, CacheCountersMatchRepeatedTraffic) {
  serve::ServiceOptions options;
  options.num_threads = 1;  // single worker: deterministic hit/miss split
  serve::DiagnosisService service = make_service(options);
  const std::int32_t design_id = service.register_design(design_);

  const std::vector<FailureLog> requests = request_stream();
  std::vector<std::future<serve::DiagnosisResult>> futures;
  for (const FailureLog& log : requests) {
    futures.push_back(service.submit(design_id, log));
  }
  std::int32_t hits = 0;
  for (auto& f : futures) hits += f.get().cache_hit ? 1 : 0;
  service.drain();

  // Every unique log misses once and hits on its repeat.
  const auto unique = static_cast<std::int64_t>(logs_->size());
  EXPECT_EQ(service.cache().misses(), unique);
  EXPECT_EQ(service.cache().hits(), unique);
  EXPECT_EQ(hits, static_cast<std::int32_t>(unique));
  EXPECT_EQ(service.metrics().cache_hits.load(), unique);
  EXPECT_EQ(service.metrics().cache_misses.load(), unique);
  EXPECT_DOUBLE_EQ(service.metrics().cache_hit_rate(), 0.5);
  EXPECT_EQ(service.cache().size(), static_cast<std::size_t>(unique));
  service.shutdown();
}

TEST_F(ServeTest, CacheCapacityZeroDisablesCaching) {
  serve::ServiceOptions options;
  options.num_threads = 1;
  options.cache_capacity = 0;
  serve::DiagnosisService service = make_service(options);
  const std::int32_t design_id = service.register_design(design_);
  const serve::DiagnosisResult first =
      service.diagnose(design_id, logs_->front());
  const serve::DiagnosisResult second =
      service.diagnose(design_id, logs_->front());
  EXPECT_FALSE(first.cache_hit);
  EXPECT_FALSE(second.cache_hit);
  EXPECT_EQ(service.cache().hits(), 0);
  service.shutdown();
}

// ---- serialize robustness through the service load path --------------------

TEST_F(ServeTest, FrameworkRoundTripsThroughServiceLoadPath) {
  std::stringstream model;
  framework_->save(model);
  serve::ServiceOptions options;
  options.num_threads = 1;
  serve::DiagnosisService service(model, options);
  EXPECT_EQ(service.framework().tp_threshold(), framework_->tp_threshold());
  const std::int32_t design_id = service.register_design(design_);

  // Loaded framework behaves identically to the in-memory original.
  const DesignContext ctx = design_->context();
  for (const FailureLog& log : *logs_) {
    const serve::DiagnosisResult expected =
        serial_reference(*design_, ctx, *framework_, log);
    const serve::DiagnosisResult got = service.diagnose(design_id, log);
    EXPECT_EQ(serve::result_to_string(design_->netlist(), got),
              serve::result_to_string(design_->netlist(), expected));
  }
  service.shutdown();
}

TEST_F(ServeTest, TruncatedModelStreamThrowsError) {
  std::stringstream model;
  framework_->save(model);
  const std::string full = model.str();
  // Truncation at several depths: inside the header, inside a model tag,
  // inside a parameter payload.
  for (const std::size_t keep :
       {std::size_t{5}, full.size() / 4, full.size() / 2, full.size() - 9}) {
    std::stringstream truncated(full.substr(0, keep));
    EXPECT_THROW(serve::DiagnosisService service(truncated), Error)
        << "kept " << keep << " of " << full.size() << " bytes";
  }
}

TEST_F(ServeTest, CorruptedModelTagThrowsError) {
  std::stringstream model;
  framework_->save(model);
  std::string text = model.str();

  // Corrupt the framework magic.
  std::string bad_magic = text;
  bad_magic.replace(0, 5, "bogus");
  std::stringstream bad_magic_is(bad_magic);
  EXPECT_THROW(serve::DiagnosisService service(bad_magic_is), Error);

  // Corrupt an inner model tag.
  const std::size_t tag = text.find("tier-predictor");
  ASSERT_NE(tag, std::string::npos);
  text.replace(tag, 4, "XXXX");
  std::stringstream bad_tag_is(text);
  EXPECT_THROW(serve::DiagnosisService service(bad_tag_is), Error);
}

// ---- fault-tolerance component tests ---------------------------------------

TEST(StatusTest, NamesCoverEveryCode) {
  for (int code = 0; code < serve::kNumStatusCodes; ++code) {
    EXPECT_STRNE(serve::status_name(static_cast<serve::StatusCode>(code)),
                 "UNKNOWN");
  }
}

TEST(MetricsTest, StatusCountersTally) {
  serve::Metrics metrics;
  metrics.record_status(serve::StatusCode::kOk);
  metrics.record_status(serve::StatusCode::kOk);
  metrics.record_status(serve::StatusCode::kTransient);
  metrics.record_status(serve::StatusCode::kOverloaded);
  metrics.record_status(serve::StatusCode::kDeadlineExceeded);
  EXPECT_EQ(metrics.status_count(serve::StatusCode::kOk), 2);
  EXPECT_EQ(metrics.status_count(serve::StatusCode::kTransient), 1);
  EXPECT_EQ(metrics.status_count(serve::StatusCode::kOverloaded), 1);
  EXPECT_EQ(metrics.status_count(serve::StatusCode::kDeadlineExceeded), 1);
  EXPECT_EQ(metrics.status_count(serve::StatusCode::kInternal), 0);
  EXPECT_EQ(metrics.requests_completed.load(), 2);
  EXPECT_EQ(metrics.requests_failed.load(), 3);
  EXPECT_EQ(metrics.deadline_expirations.load(), 1);
  const std::string report = metrics.report();
  EXPECT_NE(report.find("DEADLINE_EXCEEDED"), std::string::npos);
  EXPECT_NE(report.find("TRANSIENT"), std::string::npos);
  EXPECT_NE(report.find("load shed"), std::string::npos);
}

TEST(BackoffTest, DecorrelatedJitterIsDeterministicAndBounded) {
  Rng a(42), b(42);
  double prev_a = 1.0, prev_b = 1.0;
  for (int i = 0; i < 50; ++i) {
    const double next_a = serve::next_backoff_ms(a, 1.0, 64.0, prev_a);
    const double next_b = serve::next_backoff_ms(b, 1.0, 64.0, prev_b);
    EXPECT_DOUBLE_EQ(next_a, next_b);  // same stream, same schedule
    EXPECT_GE(next_a, 1.0);
    EXPECT_LE(next_a, 64.0);
    EXPECT_LE(next_a, std::max(3.0 * prev_a, 1.0));
    prev_a = next_a;
    prev_b = next_b;
  }
}

TEST(FaultInjectorTest, ScriptedAndProbabilisticTriggersAreDeterministic) {
  serve::FaultInjector injector(7);
  injector.arm_nth(serve::Seam::kModelPredict, {2, 4});
  EXPECT_FALSE(injector.should_fail(serve::Seam::kModelPredict));
  EXPECT_TRUE(injector.should_fail(serve::Seam::kModelPredict));
  EXPECT_FALSE(injector.should_fail(serve::Seam::kModelPredict));
  EXPECT_TRUE(injector.should_fail(serve::Seam::kModelPredict));
  EXPECT_EQ(injector.calls(serve::Seam::kModelPredict), 4);
  EXPECT_EQ(injector.triggered(serve::Seam::kModelPredict), 2);

  // Two injectors with the same seed trigger identically.
  serve::FaultInjector x(99), y(99);
  x.arm(serve::Seam::kCacheLookup, 0.3);
  y.arm(serve::Seam::kCacheLookup, 0.3);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(x.should_fail(serve::Seam::kCacheLookup),
              y.should_fail(serve::Seam::kCacheLookup));
  }
  EXPECT_GT(x.triggered(serve::Seam::kCacheLookup), 0);
  EXPECT_LT(x.triggered(serve::Seam::kCacheLookup), 200);
  EXPECT_EQ(x.total_triggered(), x.triggered(serve::Seam::kCacheLookup));

  // At p=0.3 a trigger arrives within a handful of calls and surfaces as
  // the armed exception type.
  EXPECT_THROW(
      {
        for (int i = 0; i < 100; ++i) {
          x.maybe_throw(serve::Seam::kCacheLookup, "boom");
        }
      },
      serve::TransientError);
}

TEST(BreakerTest, TripsAfterConsecutiveFailuresAndHalfOpensOnProbe) {
  using Clock = serve::CircuitBreaker::Clock;
  serve::BreakerOptions options;
  options.failure_threshold = 2;
  options.cooldown_ms = 50.0;
  serve::CircuitBreaker breaker(options);
  const Clock::time_point t0 = Clock::now();

  EXPECT_EQ(breaker.admit(t0), serve::CircuitBreaker::Decision::kAllow);
  breaker.on_failure(t0);
  EXPECT_EQ(breaker.state(), serve::CircuitBreaker::State::kClosed);
  breaker.on_failure(t0);  // second consecutive failure: trip
  EXPECT_EQ(breaker.state(), serve::CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 1);
  EXPECT_EQ(breaker.admit(t0), serve::CircuitBreaker::Decision::kReject);

  // After the cooldown, exactly one probe goes through.
  const Clock::time_point later = t0 + std::chrono::milliseconds(60);
  EXPECT_EQ(breaker.admit(later), serve::CircuitBreaker::Decision::kProbe);
  EXPECT_EQ(breaker.admit(later), serve::CircuitBreaker::Decision::kReject);
  // Failed probe re-opens; successful probe closes.
  breaker.on_failure(later);
  EXPECT_EQ(breaker.state(), serve::CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 2);
  const Clock::time_point after = later + std::chrono::milliseconds(60);
  EXPECT_EQ(breaker.admit(after), serve::CircuitBreaker::Decision::kProbe);
  breaker.on_success();
  EXPECT_EQ(breaker.state(), serve::CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.admit(after), serve::CircuitBreaker::Decision::kAllow);
}

TEST(BreakerTest, AbandonedOrExpiredProbeNeverWedgesHalfOpen) {
  using Clock = serve::CircuitBreaker::Clock;
  serve::BreakerOptions options;
  options.failure_threshold = 1;
  options.cooldown_ms = 50.0;
  serve::CircuitBreaker breaker(options);
  const Clock::time_point t0 = Clock::now();
  breaker.on_failure(t0);
  EXPECT_EQ(breaker.state(), serve::CircuitBreaker::State::kOpen);

  // A probe whose outcome is never a health verdict (shed at admission,
  // deadline, shutdown) is abandoned: back to open — no trip counted — and
  // a fresh probe goes out after another cooldown.
  const Clock::time_point t1 = t0 + std::chrono::milliseconds(60);
  EXPECT_EQ(breaker.admit(t1), serve::CircuitBreaker::Decision::kProbe);
  breaker.abandon_probe(t1);
  EXPECT_EQ(breaker.state(), serve::CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 1);
  EXPECT_EQ(breaker.admit(t1), serve::CircuitBreaker::Decision::kReject);

  // A probe that is simply lost (no verdict ever reported) expires after
  // the cooldown and admit() re-issues one instead of rejecting forever.
  const Clock::time_point t2 = t1 + std::chrono::milliseconds(60);
  EXPECT_EQ(breaker.admit(t2), serve::CircuitBreaker::Decision::kProbe);
  EXPECT_EQ(breaker.admit(t2), serve::CircuitBreaker::Decision::kReject);
  const Clock::time_point t3 = t2 + std::chrono::milliseconds(60);
  EXPECT_EQ(breaker.admit(t3), serve::CircuitBreaker::Decision::kProbe);
  breaker.on_success();
  EXPECT_EQ(breaker.state(), serve::CircuitBreaker::State::kClosed);
}

TEST(BreakerTest, ThresholdZeroDisables) {
  serve::CircuitBreaker breaker(serve::BreakerOptions{});
  const auto now = serve::CircuitBreaker::Clock::now();
  for (int i = 0; i < 10; ++i) breaker.on_failure(now);
  EXPECT_EQ(breaker.admit(now), serve::CircuitBreaker::Decision::kAllow);
}

TEST(RequestQueueTest, TryPushShedsInsteadOfBlocking) {
  serve::RequestQueue<int> queue(2);
  int a = 1, b = 2, c = 3;
  EXPECT_EQ(queue.try_push(a), serve::RequestQueue<int>::TryPush::kAccepted);
  EXPECT_EQ(queue.try_push(b), serve::RequestQueue<int>::TryPush::kAccepted);
  EXPECT_EQ(queue.try_push(c), serve::RequestQueue<int>::TryPush::kFull);
  EXPECT_EQ(c, 3);  // left intact for the caller to fail with a status
  queue.close();
  EXPECT_EQ(queue.try_push(c), serve::RequestQueue<int>::TryPush::kClosed);
}

// Failed requests must not stall the ordered flush of later successes: the
// sink only needs *a* delivery per sequence, and failures render a status
// line just like successes render a report.
TEST(OrderedReportSinkTest, FailureDeliveriesDoNotStallTheFlush) {
  std::ostringstream os;
  serve::OrderedReportSink sink(&os);
  sink.deliver(1, "ok-1\n");
  sink.deliver(2, "ok-2\n");
  EXPECT_EQ(sink.flushed(), 0u);  // sequence 0 still outstanding
  sink.deliver(0, "status: TRANSIENT (injected cache lookup fault)\n");
  EXPECT_EQ(sink.flushed(), 3u);
  EXPECT_EQ(os.str(),
            "status: TRANSIENT (injected cache lookup fault)\nok-1\nok-2\n");
}

// ---- fault-tolerance service tests ------------------------------------------

TEST_F(ServeTest, InvalidLogRejectedAtTheServiceBoundary) {
  serve::ServiceOptions options;
  options.num_threads = 1;
  serve::DiagnosisService service = make_service(options);
  const std::int32_t design_id = service.register_design(design_);

  FailureLog out_of_range = logs_->front();
  out_of_range.scan_fails.push_back(
      Observation{/*pattern=*/1 << 20, /*at_po=*/false, /*index=*/0});
  const serve::DiagnosisResult bad =
      service.diagnose(design_id, out_of_range);
  EXPECT_EQ(bad.status, serve::StatusCode::kInvalidInput);
  EXPECT_NE(bad.status_message.find("out of range"), std::string::npos);

  const serve::DiagnosisResult empty =
      service.diagnose(design_id, FailureLog{});
  EXPECT_EQ(empty.status, serve::StatusCode::kInvalidInput);

  // Rejected requests never reach a worker, and good traffic still flows.
  const serve::DiagnosisResult good =
      service.diagnose(design_id, logs_->front());
  EXPECT_EQ(good.status, serve::StatusCode::kOk);
  service.shutdown();
  EXPECT_EQ(service.metrics().status_count(serve::StatusCode::kInvalidInput),
            2);
  EXPECT_EQ(service.metrics().requests_failed.load(), 2);
  EXPECT_EQ(service.metrics().requests_completed.load(), 1);
}

TEST_F(ServeTest, LintAdmissionGateRejectsBeforeTheQueue) {
  serve::ServiceOptions options;
  options.num_threads = 1;
  auto injector = std::make_shared<serve::FaultInjector>();
  injector->arm(serve::Seam::kAdmissionLint, 1.0);
  options.fault_injector = injector;
  serve::DiagnosisService service = make_service(options);
  const std::int32_t design_id = service.register_design(design_);

  // The generator-produced design itself lints clean at registration; only
  // the injected seam simulates a broken one.
  EXPECT_TRUE(service.design_lint_error(design_id).empty());

  const serve::DiagnosisResult result =
      service.diagnose(design_id, logs_->front());
  EXPECT_EQ(result.status, serve::StatusCode::kLintRejected);
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.status_message.find("lint"), std::string::npos)
      << result.status_message;

  service.shutdown();
  EXPECT_EQ(service.metrics().lint_rejections.load(), 1);
  EXPECT_EQ(service.metrics().status_count(serve::StatusCode::kLintRejected),
            1);
  EXPECT_EQ(service.metrics().requests_failed.load(), 1);
  EXPECT_NE(service.metrics().report().find("LINT_REJECTED"),
            std::string::npos);
}

TEST_F(ServeTest, DeadlineExceededSurfacesAsStatus) {
  serve::ServiceOptions options;
  options.num_threads = 1;
  serve::DiagnosisService service = make_service(options);
  const std::int32_t design_id = service.register_design(design_);

  serve::SubmitOptions expired;
  expired.deadline_ms = 1e-6;  // already passed by worker pickup
  const serve::DiagnosisResult result =
      service.diagnose(design_id, logs_->front(), expired);
  EXPECT_EQ(result.status, serve::StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(service.metrics().deadline_expirations.load(), 1);

  // No deadline (the default) still completes.
  EXPECT_TRUE(service.diagnose(design_id, logs_->front()).ok());
  service.shutdown();
}

TEST_F(ServeTest, WatermarkShedsLoadWithOverloaded) {
  serve::ServiceOptions options;
  options.num_threads = 1;
  options.queue_capacity = 8;
  options.shed_watermark = 2;
  options.start_paused = true;  // stage the queue deterministically
  serve::DiagnosisService service = make_service(options);
  const std::int32_t design_id = service.register_design(design_);

  std::vector<std::future<serve::DiagnosisResult>> futures;
  for (int i = 0; i < 5; ++i) {
    futures.push_back(service.submit(design_id, logs_->front()));
  }
  // The first two filled the queue to the watermark; the rest shed
  // immediately (their futures are already resolved while workers sleep).
  for (int i = 2; i < 5; ++i) {
    const serve::DiagnosisResult shed = futures[static_cast<std::size_t>(i)].get();
    EXPECT_EQ(shed.status, serve::StatusCode::kOverloaded) << "request " << i;
    EXPECT_NE(shed.status_message.find("watermark"), std::string::npos);
  }
  service.resume();
  EXPECT_TRUE(futures[0].get().ok());
  EXPECT_TRUE(futures[1].get().ok());
  service.shutdown();
  EXPECT_EQ(service.metrics().load_shed.load(), 3);
  EXPECT_EQ(service.metrics().status_count(serve::StatusCode::kOverloaded), 3);
}

TEST_F(ServeTest, AbortShutdownFailsQueuedRequestsDeterministically) {
  serve::ServiceOptions options;
  options.num_threads = 2;
  options.start_paused = true;
  serve::DiagnosisService service = make_service(options);
  const std::int32_t design_id = service.register_design(design_);

  std::vector<std::future<serve::DiagnosisResult>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(service.submit(design_id, logs_->front()));
  }
  service.shutdown(serve::ShutdownMode::kAbort);
  for (auto& f : futures) {
    const serve::DiagnosisResult result = f.get();
    EXPECT_EQ(result.status, serve::StatusCode::kShuttingDown);
  }
  EXPECT_EQ(service.metrics().aborted_requests.load(), 4);
  EXPECT_EQ(service.metrics().status_count(serve::StatusCode::kShuttingDown),
            4);
  EXPECT_THROW(service.submit(design_id, logs_->front()), Error);
}

TEST_F(ServeTest, TransientFaultRetriesWithBackoffAndSucceeds) {
  auto injector = std::make_shared<serve::FaultInjector>(3);
  injector->arm_nth(serve::Seam::kModelPredict, {1});  // first attempt only
  serve::ServiceOptions options;
  options.num_threads = 1;
  options.max_retries = 2;
  options.backoff_base_ms = 0.01;  // keep the test fast
  options.backoff_cap_ms = 0.1;
  options.fault_injector = injector;
  serve::DiagnosisService service = make_service(options);
  const std::int32_t design_id = service.register_design(design_);

  const serve::DiagnosisResult result =
      service.diagnose(design_id, logs_->front());
  EXPECT_EQ(result.status, serve::StatusCode::kOk);
  EXPECT_EQ(result.attempts, 2);  // one failure, one successful retry
  EXPECT_EQ(service.metrics().retries.load(), 1);
  EXPECT_EQ(injector->triggered(serve::Seam::kModelPredict), 1);

  // The retried result is byte-identical to an undisturbed run.
  serve::ServiceOptions clean;
  clean.num_threads = 1;
  serve::DiagnosisService reference = make_service(clean);
  const std::int32_t ref_id = reference.register_design(design_);
  EXPECT_EQ(serve::result_to_string(design_->netlist(), result),
            serve::result_to_string(
                design_->netlist(), reference.diagnose(ref_id, logs_->front())));
  service.shutdown();
  reference.shutdown();
}

TEST_F(ServeTest, ExhaustedRetriesSurfaceTransientStatus) {
  auto injector = std::make_shared<serve::FaultInjector>(3);
  injector->arm(serve::Seam::kModelPredict, 1.0);
  serve::ServiceOptions options;
  options.num_threads = 1;
  options.max_retries = 1;
  options.backoff_base_ms = 0.01;
  options.backoff_cap_ms = 0.1;
  options.fault_injector = injector;
  serve::DiagnosisService service = make_service(options);
  const std::int32_t design_id = service.register_design(design_);

  const serve::DiagnosisResult result =
      service.diagnose(design_id, logs_->front());
  EXPECT_EQ(result.status, serve::StatusCode::kTransient);
  EXPECT_EQ(result.attempts, 2);
  EXPECT_EQ(service.metrics().retries.load(), 1);
  EXPECT_EQ(injector->triggered(serve::Seam::kModelPredict), 2);
  service.shutdown();
}

TEST_F(ServeTest, BreakerTripsFailsFastAndRecoversViaProbe) {
  auto injector = std::make_shared<serve::FaultInjector>(11);
  injector->arm(serve::Seam::kModelPredict, 1.0);
  serve::ServiceOptions options;
  options.num_threads = 1;
  options.max_retries = 0;
  options.breaker.failure_threshold = 2;
  options.breaker.cooldown_ms = 20.0;
  options.fault_injector = injector;
  serve::DiagnosisService service = make_service(options);
  const std::int32_t design_id = service.register_design(design_);

  // Two consecutive failures trip the breaker...
  EXPECT_EQ(service.diagnose(design_id, logs_->front()).status,
            serve::StatusCode::kTransient);
  EXPECT_EQ(service.diagnose(design_id, logs_->front()).status,
            serve::StatusCode::kTransient);
  EXPECT_EQ(service.breaker_state(design_id),
            serve::CircuitBreaker::State::kOpen);
  // ...after which submissions fail fast without touching a worker.
  const serve::DiagnosisResult rejected =
      service.diagnose(design_id, logs_->front());
  EXPECT_EQ(rejected.status, serve::StatusCode::kOverloaded);
  EXPECT_NE(rejected.status_message.find("circuit breaker"),
            std::string::npos);
  EXPECT_EQ(service.metrics().breaker_rejections.load(), 1);

  // Once the fault clears and the cooldown elapses, the half-open probe
  // succeeds and closes the breaker.
  injector->arm(serve::Seam::kModelPredict, 0.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  EXPECT_TRUE(service.diagnose(design_id, logs_->front()).ok());
  EXPECT_EQ(service.breaker_state(design_id),
            serve::CircuitBreaker::State::kClosed);
  EXPECT_TRUE(service.diagnose(design_id, logs_->front()).ok());
  service.shutdown();
}

TEST_F(ServeTest, ProbeWithoutHealthVerdictDoesNotWedgeBreaker) {
  auto injector = std::make_shared<serve::FaultInjector>(13);
  injector->arm(serve::Seam::kModelPredict, 1.0);
  serve::ServiceOptions options;
  options.num_threads = 1;
  options.max_retries = 0;
  options.breaker.failure_threshold = 2;
  options.breaker.cooldown_ms = 20.0;
  options.fault_injector = injector;
  serve::DiagnosisService service = make_service(options);
  const std::int32_t design_id = service.register_design(design_);

  // Trip the breaker, then clear the fault.
  EXPECT_EQ(service.diagnose(design_id, logs_->front()).status,
            serve::StatusCode::kTransient);
  EXPECT_EQ(service.diagnose(design_id, logs_->front()).status,
            serve::StatusCode::kTransient);
  EXPECT_EQ(service.breaker_state(design_id),
            serve::CircuitBreaker::State::kOpen);
  injector->arm(serve::Seam::kModelPredict, 0.0);

  // After the cooldown the next submission is admitted as the half-open
  // probe, but its deadline has already passed, so it resolves with
  // kDeadlineExceeded — a status that says nothing about the design.  The
  // probe must be returned (breaker back to open), not leaked: a leaked
  // probe would reject this design's submissions forever.
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  serve::SubmitOptions expired;
  expired.deadline_ms = 1e-6;
  const serve::DiagnosisResult probe =
      service.diagnose(design_id, logs_->front(), expired);
  EXPECT_EQ(probe.status, serve::StatusCode::kDeadlineExceeded);
  EXPECT_EQ(service.breaker_state(design_id),
            serve::CircuitBreaker::State::kOpen);

  // The design recovers: another cooldown, a healthy probe, breaker closed.
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  EXPECT_TRUE(service.diagnose(design_id, logs_->front()).ok());
  EXPECT_EQ(service.breaker_state(design_id),
            serve::CircuitBreaker::State::kClosed);
  service.shutdown();
}

// ---- degraded-mode tests ----------------------------------------------------

TEST_F(ServeTest, CorruptModelStreamDegradesToAtpgOnlyWhenAllowed) {
  std::stringstream model;
  framework_->save(model);
  std::stringstream corrupt(model.str().substr(0, model.str().size() / 2));

  serve::ServiceOptions options;
  options.num_threads = 2;
  options.degraded_fallback = true;
  serve::DiagnosisService service(corrupt, options);
  EXPECT_TRUE(service.degraded());
  const std::int32_t design_id = service.register_design(design_);

  const DesignContext ctx = design_->context();
  for (const FailureLog& log : *logs_) {
    const serve::DiagnosisResult result = service.diagnose(design_id, log);
    EXPECT_EQ(result.status, serve::StatusCode::kOk);
    EXPECT_TRUE(result.degraded);
    // The degraded answer is exactly the unpruned ATPG base report.
    serve::DiagnosisResult expected;
    expected.design = design_->name();
    expected.degraded = true;
    expected.report = diagnose_atpg(ctx, log);
    EXPECT_EQ(serve::result_to_string(design_->netlist(), result),
              serve::result_to_string(design_->netlist(), expected));
  }
  service.shutdown();
  EXPECT_EQ(service.metrics().degraded_results.load(),
            static_cast<std::int64_t>(logs_->size()));
}

TEST_F(ServeTest, InjectedFrameworkLoadFaultDegradesService) {
  auto injector = std::make_shared<serve::FaultInjector>(5);
  injector->arm(serve::Seam::kFrameworkLoad, 1.0);
  std::stringstream model;
  framework_->save(model);
  serve::ServiceOptions options;
  options.num_threads = 1;
  options.degraded_fallback = true;
  options.fault_injector = injector;
  serve::DiagnosisService service(model, options);
  EXPECT_TRUE(service.degraded());
  EXPECT_EQ(injector->triggered(serve::Seam::kFrameworkLoad), 1);
  const std::int32_t design_id = service.register_design(design_);
  const serve::DiagnosisResult result =
      service.diagnose(design_id, logs_->front());
  EXPECT_TRUE(result.ok());
  EXPECT_TRUE(result.degraded);
  service.shutdown();
}

TEST_F(ServeTest, ModelFaultAtPredictTimeDegradesThatRequestOnly) {
  auto injector = std::make_shared<serve::FaultInjector>(5);
  injector->arm_nth(serve::Seam::kModelPredict, {1},
                    serve::FaultKind::kModelUnavailable);
  serve::ServiceOptions options;
  options.num_threads = 1;
  options.degraded_fallback = true;
  options.fault_injector = injector;
  serve::DiagnosisService service = make_service(options);
  EXPECT_FALSE(service.degraded());  // the model loaded fine
  const std::int32_t design_id = service.register_design(design_);

  const serve::DiagnosisResult degraded =
      service.diagnose(design_id, logs_->front());
  EXPECT_EQ(degraded.status, serve::StatusCode::kOk);
  EXPECT_TRUE(degraded.degraded);
  EXPECT_EQ(degraded.report.resolution(),
            diagnose_atpg(design_->context(), logs_->front()).resolution());

  // The next request gets the full GNN verdict again.
  const serve::DiagnosisResult full =
      service.diagnose(design_id, logs_->back());
  EXPECT_TRUE(full.ok());
  EXPECT_FALSE(full.degraded);
  service.shutdown();
  EXPECT_EQ(service.metrics().degraded_results.load(), 1);
}

TEST_F(ServeTest, ModelFaultWithoutFallbackFailsTheRequest) {
  auto injector = std::make_shared<serve::FaultInjector>(5);
  injector->arm(serve::Seam::kModelPredict, 1.0,
                serve::FaultKind::kModelUnavailable);
  serve::ServiceOptions options;
  options.num_threads = 1;
  options.fault_injector = injector;  // degraded_fallback stays false
  serve::DiagnosisService service = make_service(options);
  const std::int32_t design_id = service.register_design(design_);
  const serve::DiagnosisResult result =
      service.diagnose(design_id, logs_->front());
  EXPECT_EQ(result.status, serve::StatusCode::kModelUnavailable);
  EXPECT_FALSE(result.degraded);
  service.shutdown();
}

// Failed requests flow through the ordered sink without stalling later
// successes (service-level companion to the sink unit test above).
TEST_F(ServeTest, FailedRequestsDoNotStallOrderedReporting) {
  auto injector = std::make_shared<serve::FaultInjector>(13);
  injector->arm_nth(serve::Seam::kCacheLookup, {1});  // request 0 fails
  serve::ServiceOptions options;
  options.num_threads = 1;
  options.max_retries = 0;
  options.fault_injector = injector;
  serve::DiagnosisService service = make_service(options);
  const std::int32_t design_id = service.register_design(design_);

  std::vector<std::future<serve::DiagnosisResult>> futures;
  for (std::size_t i = 0; i < 3; ++i) {
    futures.push_back(service.submit(design_id, (*logs_)[i]));
  }
  serve::OrderedReportSink sink;
  for (auto& f : futures) {
    const serve::DiagnosisResult r = f.get();
    sink.deliver(r.sequence, serve::result_to_string(design_->netlist(), r));
  }
  service.shutdown();
  const auto ordered = sink.take_ordered();
  ASSERT_EQ(ordered.size(), 3u);  // the failure did not hold back the flush
  EXPECT_NE(ordered[0].find("status: TRANSIENT"), std::string::npos);
  EXPECT_NE(ordered[1].find("GNN verdict"), std::string::npos);
  EXPECT_NE(ordered[2].find("GNN verdict"), std::string::npos);
}

}  // namespace
}  // namespace m3dfl
