// End-to-end tests for the static (stuck-at) diagnosis extension: the same
// pattern set, simulator, back-trace, and diagnosis engine serve
// static-defect dies when stuck-at candidates are enabled.
#include <gtest/gtest.h>

#include "diag/atpg_diagnosis.h"
#include "diag/metrics.h"
#include "test_helpers.h"

namespace m3dfl {
namespace {

using testing::SmallDesign;

std::vector<Sample> stuck_at_samples(const SmallDesign& d, std::int32_t n) {
  DataGenOptions opt;
  opt.num_samples = n;
  opt.stuck_at_prob = 1.0;
  opt.max_failing_patterns = 0;
  opt.seed = 71;
  return generate_samples(d.context(), opt);
}

TEST(StaticDiagnosisTest, DataGenInjectsStuckAtFaults) {
  SmallDesign d(8);
  const auto samples = stuck_at_samples(d, 15);
  for (const Sample& s : samples) {
    ASSERT_EQ(s.faults.size(), 1u);
    EXPECT_TRUE(s.faults[0].is_static());
    EXPECT_FALSE(s.log.empty());
  }
}

TEST(StaticDiagnosisTest, StuckAtDiesDiagnosedWithStuckAtCandidates) {
  SmallDesign d(8);
  const auto samples = stuck_at_samples(d, 15);
  DiagnosisOptions opt;
  opt.include_stuck_at_candidates = true;
  std::int32_t hits = 0;
  std::int32_t nonempty = 0;
  for (const Sample& s : samples) {
    const DiagnosisReport report = diagnose_atpg(d.context(), s.log, opt);
    const SampleEvaluation eval = evaluate_report(d.context(), report, s);
    hits += eval.accurate ? 1 : 0;
    nonempty += report.resolution() > 0 ? 1 : 0;
  }
  // Static defects corrupt the *launch* state of LOC tests, so part of each
  // failure log arises outside the capture-cycle back-cones that effect-
  // cause tracing (ours and the paper's) assumes — which is why production
  // flows diagnose static defects from dedicated single-cycle stuck-at
  // patterns instead.  From LOC logs alone, the iterative cover still
  // resolves a substantial fraction of static dies and always produces a
  // non-empty report.
  EXPECT_GE(hits, 5);
  EXPECT_EQ(nonempty, 15);
}

TEST(StaticDiagnosisTest, StuckAtCandidateIsPerfect) {
  SmallDesign d(8);
  const auto samples = stuck_at_samples(d, 8);
  DiagnosisOptions opt;
  opt.include_stuck_at_candidates = true;
  for (const Sample& s : samples) {
    const DiagnosisReport report = diagnose_atpg(d.context(), s.log, opt);
    for (const Candidate& c : report.candidates) {
      if (c.fault == s.faults[0]) {
        EXPECT_TRUE(c.perfect());
      }
    }
  }
}

TEST(StaticDiagnosisTest, TdfOnlyFlowIsUnchangedByTheExtension) {
  // With stuck_at options off, reports contain no static candidates.
  SmallDesign d(8);
  DataGenOptions gen;
  gen.num_samples = 8;
  gen.max_failing_patterns = 0;
  gen.seed = 72;
  const auto samples = generate_samples(d.context(), gen);
  for (const Sample& s : samples) {
    EXPECT_FALSE(s.faults[0].is_static());
    const DiagnosisReport report = diagnose_atpg(d.context(), s.log);
    for (const Candidate& c : report.candidates) {
      EXPECT_FALSE(c.fault.is_static());
    }
  }
}

TEST(StaticDiagnosisTest, MixedPopulationResolvesByFaultClass) {
  SmallDesign d(8);
  DataGenOptions gen;
  gen.num_samples = 20;
  gen.stuck_at_prob = 0.5;
  gen.max_failing_patterns = 0;
  gen.seed = 73;
  const auto samples = generate_samples(d.context(), gen);
  std::int32_t static_dies = 0;
  DiagnosisOptions opt;
  opt.include_stuck_at_candidates = true;
  for (const Sample& s : samples) {
    static_dies += s.faults[0].is_static() ? 1 : 0;
    const DiagnosisReport report = diagnose_atpg(d.context(), s.log, opt);
    const SampleEvaluation eval = evaluate_report(d.context(), report, s);
    EXPECT_GT(eval.resolution, 0);
  }
  EXPECT_GT(static_dies, 4);
  EXPECT_LT(static_dies, 16);
}

}  // namespace
}  // namespace m3dfl
