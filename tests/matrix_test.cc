#include <cmath>

#include <gtest/gtest.h>

#include "gnn/matrix.h"

namespace m3dfl {
namespace {

Matrix from_values(std::int32_t r, std::int32_t c,
                   std::initializer_list<float> values) {
  Matrix m(r, c);
  auto it = values.begin();
  for (std::int32_t i = 0; i < r; ++i) {
    for (std::int32_t j = 0; j < c; ++j) m.at(i, j) = *it++;
  }
  return m;
}

TEST(MatrixTest, MatmulHandChecked) {
  const Matrix a = from_values(2, 3, {1, 2, 3, 4, 5, 6});
  const Matrix b = from_values(3, 2, {7, 8, 9, 10, 11, 12});
  const Matrix c = matmul(a, b);
  ASSERT_EQ(c.rows(), 2);
  ASSERT_EQ(c.cols(), 2);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154);
}

TEST(MatrixTest, TransposedVariantsAgreeWithExplicitTranspose) {
  Rng rng(3);
  Matrix a(4, 3);
  Matrix b(4, 5);
  for (float& x : a.data()) x = static_cast<float>(rng.next_gaussian());
  for (float& x : b.data()) x = static_cast<float>(rng.next_gaussian());

  Matrix at(3, 4);
  for (std::int32_t i = 0; i < 4; ++i) {
    for (std::int32_t j = 0; j < 3; ++j) at.at(j, i) = a.at(i, j);
  }
  const Matrix expect = matmul(at, b);
  const Matrix got = matmul_tn(a, b);
  ASSERT_EQ(got.rows(), 3);
  ASSERT_EQ(got.cols(), 5);
  for (std::int32_t i = 0; i < 3; ++i) {
    for (std::int32_t j = 0; j < 5; ++j) {
      EXPECT_NEAR(got.at(i, j), expect.at(i, j), 1e-5);
    }
  }

  // A (4x3) * B'(3x?)  via matmul_nt: use c (5x3).
  Matrix c(5, 3);
  for (float& x : c.data()) x = static_cast<float>(rng.next_gaussian());
  Matrix ct(3, 5);
  for (std::int32_t i = 0; i < 5; ++i) {
    for (std::int32_t j = 0; j < 3; ++j) ct.at(j, i) = c.at(i, j);
  }
  const Matrix expect2 = matmul(a, ct);
  const Matrix got2 = matmul_nt(a, c);
  for (std::int32_t i = 0; i < 4; ++i) {
    for (std::int32_t j = 0; j < 5; ++j) {
      EXPECT_NEAR(got2.at(i, j), expect2.at(i, j), 1e-5);
    }
  }
}

TEST(MatrixTest, InplaceOps) {
  Matrix a = from_values(1, 3, {1, 2, 3});
  const Matrix b = from_values(1, 3, {10, 20, 30});
  add_inplace(a, b);
  EXPECT_FLOAT_EQ(a.at(0, 2), 33);
  axpy_inplace(a, -0.5f, b);
  EXPECT_FLOAT_EQ(a.at(0, 0), 6);
  scale_inplace(a, 2.0f);
  EXPECT_FLOAT_EQ(a.at(0, 1), 24);
}

TEST(MatrixTest, ReluAndBackward) {
  const Matrix x = from_values(1, 4, {-1, 0, 2, -3});
  const Matrix y = relu(x);
  EXPECT_FLOAT_EQ(y.at(0, 0), 0);
  EXPECT_FLOAT_EQ(y.at(0, 2), 2);
  const Matrix grad = from_values(1, 4, {5, 5, 5, 5});
  const Matrix dx = relu_backward(grad, y);
  EXPECT_FLOAT_EQ(dx.at(0, 0), 0);  // blocked where activation <= 0
  EXPECT_FLOAT_EQ(dx.at(0, 2), 5);
}

TEST(MatrixTest, SoftmaxRowsSumToOne) {
  const Matrix x = from_values(2, 3, {1, 2, 3, -10, 0, 10});
  const Matrix p = softmax_rows(x);
  for (std::int32_t i = 0; i < 2; ++i) {
    float sum = 0;
    for (std::int32_t j = 0; j < 3; ++j) {
      EXPECT_GT(p.at(i, j), 0.0f);
      sum += p.at(i, j);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5);
  }
  // Monotone in the logits.
  EXPECT_LT(p.at(0, 0), p.at(0, 2));
}

TEST(MatrixTest, SoftmaxStableForLargeLogits) {
  const Matrix x = from_values(1, 2, {1000.0f, 999.0f});
  const Matrix p = softmax_rows(x);
  EXPECT_FALSE(std::isnan(p.at(0, 0)));
  EXPECT_GT(p.at(0, 0), p.at(0, 1));
}

TEST(MatrixTest, ColumnMean) {
  const Matrix x = from_values(2, 2, {1, 10, 3, 30});
  const Matrix m = column_mean(x);
  EXPECT_FLOAT_EQ(m.at(0, 0), 2);
  EXPECT_FLOAT_EQ(m.at(0, 1), 20);
}

TEST(MatrixTest, GlorotInitBounded) {
  Rng rng(4);
  Matrix w(20, 30);
  w.init_glorot(rng);
  const double bound = std::sqrt(6.0 / 50.0);
  bool any_nonzero = false;
  for (float x : w.data()) {
    EXPECT_LE(std::abs(x), bound + 1e-6);
    any_nonzero = any_nonzero || x != 0.0f;
  }
  EXPECT_TRUE(any_nonzero);
}

TEST(MatrixTest, ShapeMismatchCaught) {
  const Matrix a(2, 3);
  const Matrix b(2, 3);
  EXPECT_THROW(matmul(a, b), Error);
}

}  // namespace
}  // namespace m3dfl
