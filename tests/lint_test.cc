// m3dfl::lint engine tests.
//
// Three layers of coverage:
//  * the seeded-defect corpus (tests/lint_corpus/*.mnl): every netlist-pass
//    check id fires on its fixture with the right location, and the clean
//    fixture produces zero diagnostics;
//  * in-code fixtures for the deeper passes (M3D, scan/DfT, graph
//    cross-check, features, failure logs, models), built by pairing
//    artifacts from *different* netlists or hand-poisoning data — the
//    defect classes the strict constructors cannot represent;
//  * generator-produced designs lint clean end to end (the property the
//    serve admission gate and train preflight rely on).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "core/framework.h"
#include "lint/checks.h"
#include "lint/lint.h"
#include "lint/netlist_facts.h"

#ifndef M3DFL_LINT_CORPUS_DIR
#error "build must define M3DFL_LINT_CORPUS_DIR"
#endif

namespace m3dfl {
namespace {

using lint::Report;
using lint::Severity;

std::string read_corpus(const std::string& name) {
  const std::string path = std::string(M3DFL_LINT_CORPUS_DIR) + "/" + name;
  std::ifstream is(path);
  EXPECT_TRUE(is.good()) << "missing corpus fixture " << path;
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

Report lint_corpus_file(const std::string& name) {
  return lint::lint_mnl(read_corpus(name), name);
}

// pi0, pi1 -> AND -> SDFF -> INV -> PO; finalized and defect-free.
// Gate ids 0..5, nets 0..4.
Netlist make_clean_netlist() {
  Netlist nl("unit");
  const GateId pi0 = nl.add_gate(GateType::kPrimaryInput, "pi0");
  const GateId pi1 = nl.add_gate(GateType::kPrimaryInput, "pi1");
  const GateId u1 = nl.add_gate(GateType::kAnd, "u1");
  const GateId ff = nl.add_gate(GateType::kScanFlop, "ff0");
  const GateId u2 = nl.add_gate(GateType::kInv, "u2");
  const GateId po = nl.add_gate(GateType::kPrimaryOutput, "po0");
  const NetId n0 = nl.add_net();
  const NetId n1 = nl.add_net();
  const NetId n2 = nl.add_net();
  const NetId n3 = nl.add_net();
  const NetId n4 = nl.add_net();
  nl.set_output(pi0, n0);
  nl.set_output(pi1, n1);
  nl.set_output(u1, n2);
  nl.connect_input(u1, n0);
  nl.connect_input(u1, n1);
  nl.set_output(ff, n3);
  nl.connect_input(ff, n2);
  nl.set_output(u2, n4);
  nl.connect_input(u2, n3);
  nl.connect_input(po, n4);
  nl.finalize();
  return nl;
}

// pi -> {ff0, ff1, ff2}; AND(ff0.Q, ff1.Q) -> PO.  Three flops for the
// scan-architecture fixtures.
Netlist make_three_flop_netlist() {
  Netlist nl("flops");
  const GateId pi = nl.add_gate(GateType::kPrimaryInput, "pi0");
  const NetId n0 = nl.add_net();
  nl.set_output(pi, n0);
  std::vector<NetId> q;
  for (int i = 0; i < 3; ++i) {
    const GateId ff = nl.add_gate(GateType::kScanFlop, "ff" + std::to_string(i));
    const NetId nq = nl.add_net();
    nl.set_output(ff, nq);
    nl.connect_input(ff, n0);
    q.push_back(nq);
  }
  const GateId u = nl.add_gate(GateType::kAnd, "u0");
  const NetId nu = nl.add_net();
  nl.set_output(u, nu);
  nl.connect_input(u, q[0]);
  nl.connect_input(u, q[1]);
  const GateId po = nl.add_gate(GateType::kPrimaryOutput, "po0");
  nl.connect_input(po, nu);
  // q[2] is driven but unread, which is legal (an unobserved flop output).
  nl.finalize();
  return nl;
}

TierAssignment all_bottom(const Netlist& nl) {
  return TierAssignment(
      std::vector<std::int8_t>(static_cast<std::size_t>(nl.num_gates()), 0));
}

// A minimal valid 13-wide subgraph (two nodes, one edge, all-zero features).
Subgraph make_clean_subgraph() {
  Subgraph sg;
  sg.nodes = {0, 1};
  sg.edge_u = {0};
  sg.edge_v = {1};
  sg.features = Matrix(2, kNumNodeFeatures);
  return sg;
}

// ---- catalog ----------------------------------------------------------------

TEST(LintCatalogTest, IdsAreUniqueAndRoundTrip) {
  const auto catalog = lint::check_catalog();
  EXPECT_GE(catalog.size(), 30u);
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    const lint::CheckInfo& info = catalog[i];
    EXPECT_STRNE(info.id, "");
    EXPECT_STRNE(info.summary, "");
    EXPECT_STRNE(info.hint, "");
    for (std::size_t j = i + 1; j < catalog.size(); ++j) {
      EXPECT_STRNE(info.id, catalog[j].id);
    }
    EXPECT_EQ(&lint::check_info(info.id), &info);
  }
  EXPECT_THROW(lint::check_info("no-such-check"), Error);
}

TEST(LintCatalogTest, DiagnosticFormattingCarriesCatalogMetadata) {
  Report report;
  {
    lint::Emitter emit(report);
    EXPECT_TRUE(emit.emit("net-undriven", "net 7", "nobody drives this"));
  }
  ASSERT_EQ(report.size(), 1u);
  const lint::Diagnostic& d = report.diagnostics().front();
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_EQ(d.artifact, lint::ArtifactKind::kNetlist);
  EXPECT_FALSE(d.hint.empty());
  const std::string line = d.to_string();
  EXPECT_NE(line.find("error[net-undriven]"), std::string::npos);
  EXPECT_NE(line.find("net 7"), std::string::npos);
  EXPECT_EQ(report.summary(), "1 error");
}

TEST(LintCatalogTest, EmitterCapsPerCheckFlood) {
  Report report;
  {
    lint::Emitter emit(report, 3);
    int accepted = 0;
    for (int i = 0; i < 10; ++i) {
      if (emit.emit("net-undriven", "net " + std::to_string(i), "x")) {
        ++accepted;
      }
    }
    EXPECT_EQ(accepted, 3);
  }
  // 3 diagnostics plus the suppression note appended at Emitter destruction.
  EXPECT_EQ(report.size(), 4u);
  EXPECT_EQ(report.count(Severity::kNote), 1);
}

// ---- corpus (netlist pass) --------------------------------------------------

TEST(LintCorpusTest, CleanFixtureHasZeroDiagnostics) {
  const Report report = lint_corpus_file("clean.mnl");
  EXPECT_TRUE(report.empty()) << report.to_string();
}

struct CorpusCase {
  const char* file;
  const char* check_id;
  const char* location_substr;  // must appear in the cited location
};

class LintCorpusDefects : public ::testing::TestWithParam<CorpusCase> {};

TEST_P(LintCorpusDefects, FlagsSeededDefectWithIdAndLocation) {
  const CorpusCase& c = GetParam();
  const Report report = lint_corpus_file(c.file);
  const lint::Diagnostic* d = report.find(c.check_id);
  ASSERT_NE(d, nullptr) << c.file << " did not trigger " << c.check_id
                        << "\n" << report.to_string();
  EXPECT_NE(d->location.find(c.location_substr), std::string::npos)
      << "location was '" << d->location << "'";
  EXPECT_EQ(d->severity, lint::check_info(c.check_id).severity);
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, LintCorpusDefects,
    ::testing::Values(
        CorpusCase{"multi_driver.mnl", "net-multi-driver", "net 3"},
        CorpusCase{"undriven.mnl", "net-undriven", "net 2"},
        CorpusCase{"arity.mnl", "net-arity", "arity.mnl:6"},
        CorpusCase{"comb_loop.mnl", "net-comb-loop", "comb_loop.mnl"},
        CorpusCase{"floating_pin.mnl", "net-floating-pin",
                   "floating_pin.mnl:6"},
        CorpusCase{"unreachable.mnl", "net-unreachable", "unreachable.mnl"},
        CorpusCase{"syntax.mnl", "mnl-syntax", "syntax.mnl:9"}));

TEST(LintCorpusTest, MultiDriverCitesEveryDriverLine) {
  const Report report = lint_corpus_file("multi_driver.mnl");
  const lint::Diagnostic* d = report.find("net-multi-driver");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("multi_driver.mnl:8"), std::string::npos)
      << d->message;
  EXPECT_NE(d->message.find("multi_driver.mnl:9"), std::string::npos)
      << d->message;
}

TEST(LintCorpusTest, SyntaxFixtureFlagsBothBadRecords) {
  const Report report = lint_corpus_file("syntax.mnl");
  int syntax = 0;
  for (const lint::Diagnostic& d : report.diagnostics()) {
    if (d.check_id == "mnl-syntax") ++syntax;
  }
  EXPECT_EQ(syntax, 2) << report.to_string();  // "wire" record + FROB gate
  // The skipped FROB gate leaves net 1 undriven.
  EXPECT_TRUE(report.contains("net-undriven"));
}

TEST(LintCorpusTest, UnreachableIslandIsWarnedAndItsLoopIsAnError) {
  const Report report = lint_corpus_file("unreachable.mnl");
  const lint::Diagnostic* warn = report.find("net-unreachable");
  ASSERT_NE(warn, nullptr);
  EXPECT_EQ(warn->severity, Severity::kWarn);
  EXPECT_TRUE(report.contains("net-comb-loop"));
  EXPECT_EQ(report.worst(), Severity::kError);
}

// ---- M3D pass ---------------------------------------------------------------

TEST(LintM3dTest, WrongSizeTierAssignmentIsUnassigned) {
  const Netlist nl = make_clean_netlist();
  const TierAssignment tiers(std::vector<std::int8_t>(3, 0));  // 6 gates
  lint::Subject subject;
  subject.netlist = &nl;
  subject.tiers = &tiers;
  Report report;
  lint::run_m3d_checks(subject, report);
  ASSERT_TRUE(report.contains("tier-unassigned")) << report.to_string();
  EXPECT_EQ(report.size(), 1u);  // pass stops: tier_of would assert
}

TEST(LintM3dTest, IllegalTierValueIsInvalid) {
  const Netlist nl = make_clean_netlist();
  std::vector<std::int8_t> values(static_cast<std::size_t>(nl.num_gates()), 0);
  values[2] = 3;
  const TierAssignment tiers(std::move(values));
  lint::Subject subject;
  subject.netlist = &nl;
  subject.tiers = &tiers;
  Report report;
  lint::run_m3d_checks(subject, report);
  const lint::Diagnostic* d = report.find("tier-invalid");
  ASSERT_NE(d, nullptr) << report.to_string();
  EXPECT_NE(d->location.find("gate 2"), std::string::npos) << d->location;
  EXPECT_NE(d->message.find("3"), std::string::npos);
}

// MIV map built against one partition, linted against another: the count no
// longer matches the cut, one MIV's recorded driver tier is stale
// (miv-orphan), and another MIV's far sink now sits on the driver's own
// tier (miv-same-tier).
TEST(LintM3dTest, StaleMivMapTriggersCountOrphanAndSameTier) {
  const Netlist nl = make_clean_netlist();
  TierAssignment built = all_bottom(nl);
  built.set_tier(4, kTopTier);  // u2 on top: nets 3 and 4 cross tiers
  const MivMap mivs(nl, built);
  ASSERT_EQ(mivs.num_mivs(), 2);

  const TierAssignment linted = all_bottom(nl);
  lint::Subject subject;
  subject.netlist = &nl;
  subject.tiers = &linted;
  subject.mivs = &mivs;
  Report report;
  lint::run_m3d_checks(subject, report);
  EXPECT_TRUE(report.contains("miv-count-mismatch")) << report.to_string();
  EXPECT_TRUE(report.contains("miv-same-tier")) << report.to_string();
  EXPECT_TRUE(report.contains("miv-orphan")) << report.to_string();
}

TEST(LintM3dTest, MivCitingMissingNetIsOrphan) {
  const Netlist big = make_three_flop_netlist();
  TierAssignment big_tiers = all_bottom(big);
  big_tiers.set_tier(4, kTopTier);  // u0 (AND) on top
  const MivMap mivs(big, big_tiers);
  ASSERT_GT(mivs.num_mivs(), 0);

  // Lint the same MIV map against a smaller netlist: the cited nets and
  // gates do not exist there.
  const Netlist small = make_clean_netlist();
  const TierAssignment small_tiers = all_bottom(small);
  lint::Subject subject;
  subject.netlist = &small;
  subject.tiers = &small_tiers;
  subject.mivs = &mivs;
  Report report;
  lint::run_m3d_checks(subject, report);
  EXPECT_TRUE(report.contains("miv-orphan")) << report.to_string();
}

// ---- scan/DfT pass ----------------------------------------------------------

TEST(LintScanTest, GeneratedStitchingIsClean) {
  const Netlist nl = make_three_flop_netlist();
  const ScanChains scan(nl, 2, 7);
  const XorCompactor compactor(scan, 1);
  lint::Subject subject;
  subject.netlist = &nl;
  subject.scan = &scan;
  subject.compactor = &compactor;
  Report report;
  lint::run_scan_checks(subject, report);
  EXPECT_TRUE(report.empty()) << report.to_string();
}

TEST(LintScanTest, ImportedOrderWithUnknownAndMissingFlops) {
  const Netlist nl = make_three_flop_netlist();
  // Flop 5 does not exist; flop 2 is never stitched.
  const ScanChains scan({{0, 1}, {5}}, 3);
  lint::Subject subject;
  subject.netlist = &nl;
  subject.scan = &scan;
  Report report;
  lint::run_scan_checks(subject, report);
  bool cites_unknown = false, cites_missing = false;
  for (const lint::Diagnostic& d : report.diagnostics()) {
    if (d.check_id != "scan-off-chain") continue;
    if (d.location == "chain 1[0]") cites_unknown = true;
    if (d.location == "flop 2") cites_missing = true;
  }
  EXPECT_TRUE(cites_unknown) << report.to_string();
  EXPECT_TRUE(cites_missing) << report.to_string();
}

TEST(LintScanTest, RepeatedFlopIsDuplicateCell) {
  const Netlist nl = make_three_flop_netlist();
  const ScanChains scan({{0, 1}, {1, 2}}, 3);
  lint::Subject subject;
  subject.netlist = &nl;
  subject.scan = &scan;
  Report report;
  lint::run_scan_checks(subject, report);
  const lint::Diagnostic* d = report.find("scan-duplicate-cell");
  ASSERT_NE(d, nullptr) << report.to_string();
  EXPECT_EQ(d->location, "chain 1[0]");
}

TEST(LintScanTest, CompactorFromDifferentStitchingBreaksFanin) {
  const Netlist nl = make_three_flop_netlist();
  const ScanChains scan(nl, 3, 7);       // 3 chains
  const ScanChains narrow(nl, 2, 7);     // 2 chains
  const XorCompactor compactor(narrow, 1);  // covers chains 0..1 only
  lint::Subject subject;
  subject.netlist = &nl;
  subject.scan = &scan;
  subject.compactor = &compactor;
  Report report;
  lint::run_scan_checks(subject, report);
  const lint::Diagnostic* d = report.find("dft-compactor-fanin");
  ASSERT_NE(d, nullptr) << report.to_string();
  EXPECT_EQ(d->location, "chain 2");
  EXPECT_NE(d->message.find("no output channel"), std::string::npos);
}

TEST(LintScanTest, GraphFromOtherDesignHasUnmappedObservationPoints) {
  const Netlist nl = make_three_flop_netlist();  // 3 flops + 1 PO
  const Netlist other = make_clean_netlist();    // 1 flop + 1 PO
  const TierAssignment tiers = all_bottom(other);
  const MivMap mivs(other, tiers);
  const HeteroGraph graph(other, tiers, mivs);
  lint::Subject subject;
  subject.netlist = &nl;
  subject.graph = &graph;
  Report report;
  lint::run_scan_checks(subject, report);
  const lint::Diagnostic* d = report.find("dft-obs-unmapped");
  ASSERT_NE(d, nullptr) << report.to_string();
  EXPECT_NE(d->message.find("design has 4"), std::string::npos) << d->message;
}

// ---- graph pass -------------------------------------------------------------

TEST(LintGraphTest, FreshGraphIsClean) {
  const Netlist nl = make_clean_netlist();
  const TierAssignment tiers = all_bottom(nl);
  const MivMap mivs(nl, tiers);
  const HeteroGraph graph(nl, tiers, mivs);
  lint::Subject subject;
  subject.netlist = &nl;
  subject.tiers = &tiers;
  subject.mivs = &mivs;
  subject.graph = &graph;
  Report report;
  lint::run_graph_checks(subject, report);
  EXPECT_TRUE(report.empty()) << report.to_string();
}

TEST(LintGraphTest, GraphOfOtherNetlistFailsNodeCount) {
  const Netlist nl = make_three_flop_netlist();
  const TierAssignment tiers = all_bottom(nl);
  const MivMap mivs(nl, tiers);
  const Netlist other = make_clean_netlist();
  const TierAssignment other_tiers = all_bottom(other);
  const MivMap other_mivs(other, other_tiers);
  const HeteroGraph graph(other, other_tiers, other_mivs);
  lint::Subject subject;
  subject.netlist = &nl;
  subject.tiers = &tiers;
  subject.mivs = &mivs;
  subject.graph = &graph;
  Report report;
  lint::run_graph_checks(subject, report);
  EXPECT_TRUE(report.contains("graph-node-count")) << report.to_string();
}

// Rewire the netlist after building the graph: same pin count, different
// adjacency and different Topedge BFS distances.  The stale graph must fail
// both the edge diff and the aggregate recomputation.
TEST(LintGraphTest, RewiredNetlistMakesGraphStale) {
  Netlist nl("rewire");
  const GateId pi0 = nl.add_gate(GateType::kPrimaryInput, "pi0");
  const GateId pi1 = nl.add_gate(GateType::kPrimaryInput, "pi1");
  const GateId b0 = nl.add_gate(GateType::kBuf, "b0");
  const GateId b1 = nl.add_gate(GateType::kBuf, "b1");
  const GateId a = nl.add_gate(GateType::kAnd, "a0");
  const GateId po = nl.add_gate(GateType::kPrimaryOutput, "po0");
  const NetId n0 = nl.add_net();
  const NetId n1 = nl.add_net();
  const NetId n2 = nl.add_net();
  const NetId n3 = nl.add_net();
  const NetId n4 = nl.add_net();
  nl.set_output(pi0, n0);
  nl.set_output(pi1, n1);
  nl.set_output(b0, n2);
  nl.connect_input(b0, n0);
  nl.set_output(b1, n3);
  nl.connect_input(b1, n2);
  nl.set_output(a, n4);
  nl.connect_input(a, n3);
  nl.connect_input(a, n1);
  nl.connect_input(po, n4);
  nl.finalize();

  const TierAssignment tiers = all_bottom(nl);
  const MivMap mivs(nl, tiers);
  const HeteroGraph stale(nl, tiers, mivs);

  // Shorten the path: the AND now reads b0's output, b1 drops out of the
  // observation cone.  Pin counts are unchanged, so only the deep diffs see
  // the difference.
  nl.definalize();
  nl.reconnect_input(a, 0, n2);
  nl.finalize();
  const MivMap fresh_mivs(nl, tiers);

  lint::Subject subject;
  subject.netlist = &nl;
  subject.tiers = &tiers;
  subject.mivs = &fresh_mivs;
  subject.graph = &stale;
  Report report;
  lint::run_graph_checks(subject, report);
  EXPECT_TRUE(report.contains("graph-edge-mismatch")) << report.to_string();
  EXPECT_TRUE(report.contains("graph-top-stale")) << report.to_string();
}

// ---- feature pass -----------------------------------------------------------

TEST(LintFeatureTest, CleanSubgraphPasses) {
  const Subgraph sg = make_clean_subgraph();
  EXPECT_TRUE(lint::lint_subgraph(sg).empty());
}

TEST(LintFeatureTest, WrongWidthShortCircuits) {
  Subgraph sg = make_clean_subgraph();
  sg.features = Matrix(2, 7);
  const Report report = lint::lint_subgraph(sg);
  ASSERT_EQ(report.size(), 1u) << report.to_string();
  EXPECT_EQ(report.diagnostics().front().check_id, "feat-width");
}

TEST(LintFeatureTest, PoisonedCellsAreCitedByNodeAndFeature) {
  Subgraph sg = make_clean_subgraph();
  sg.features.at(0, 0) = std::numeric_limits<float>::quiet_NaN();
  sg.features.at(0, 2) = 1.5f;    // out of [0, 1]
  sg.features.at(1, 3) = 0.3f;    // not a tier code
  sg.features.at(1, 5) = 0.4f;    // not a 0/1 flag
  const Report report = lint::lint_subgraph(sg, "sample 7, ");
  const lint::Diagnostic* nonfinite = report.find("feat-nonfinite");
  ASSERT_NE(nonfinite, nullptr) << report.to_string();
  EXPECT_NE(nonfinite->location.find("sample 7, node 0, feature 0"),
            std::string::npos)
      << nonfinite->location;
  EXPECT_TRUE(report.contains("feat-range"));
  const lint::Diagnostic* onehot = report.find("feat-onehot");
  ASSERT_NE(onehot, nullptr);
  EXPECT_NE(onehot->location.find("node 1, feature 3"), std::string::npos);
  EXPECT_EQ(report.count(Severity::kError), 4);
}

TEST(LintFeatureTest, TrainingSetCitesThePoisonedSample) {
  std::vector<Subgraph> graphs(3, make_clean_subgraph());
  graphs[1].features.at(1, 1) = std::numeric_limits<float>::infinity();
  const Report report = lint::lint_training_set(graphs);
  const lint::Diagnostic* d = report.find("feat-nonfinite");
  ASSERT_NE(d, nullptr) << report.to_string();
  EXPECT_NE(d->location.find("sample 1, "), std::string::npos) << d->location;
}

// ---- failure-log pass -------------------------------------------------------

class LintLogTest : public ::testing::Test {
 protected:
  LintLogTest()
      : nl_(make_three_flop_netlist()),
        scan_(nl_, 2, 7),
        compactor_(scan_, 1) {}

  Report run(const FailureLog& log, std::int32_t num_patterns = 4) const {
    lint::Subject subject;
    subject.netlist = &nl_;
    subject.scan = &scan_;
    subject.compactor = &compactor_;
    subject.log = &log;
    subject.num_patterns = num_patterns;
    Report report;
    lint::run_failure_log_checks(subject, report);
    return report;
  }

  Netlist nl_;
  ScanChains scan_;
  XorCompactor compactor_;
};

TEST_F(LintLogTest, ValidBypassLogIsClean) {
  FailureLog log;
  log.scan_fails = {{0, false, 0}, {1, false, 2}};
  log.po_fails = {{0, true, 0}};
  EXPECT_TRUE(run(log).empty()) << run(log).to_string();
}

TEST_F(LintLogTest, EmptyLogIsFlaggedAndNothingElse) {
  const Report report = run(FailureLog{});
  ASSERT_EQ(report.size(), 1u);
  EXPECT_EQ(report.diagnostics().front().check_id, "log-empty");
}

TEST_F(LintLogTest, NegativePatternLimit) {
  FailureLog log;
  log.scan_fails = {{0, false, 0}};
  log.pattern_limit = -2;
  EXPECT_TRUE(run(log).contains("log-limit"));
}

TEST_F(LintLogTest, ModeMismatchBothDirections) {
  FailureLog compacted;
  compacted.compacted = true;
  compacted.scan_fails = {{0, false, 0}};
  EXPECT_TRUE(run(compacted).contains("log-mode-mismatch"));

  FailureLog bypass;
  bypass.compacted = false;
  bypass.channel_fails = {{0, 0, 0}};
  EXPECT_TRUE(run(bypass).contains("log-mode-mismatch"));
}

TEST_F(LintLogTest, RangeViolationsKeepHistoricalPhrasing) {
  FailureLog log;
  log.scan_fails = {{7, false, 0}, {0, false, 99}};
  log.po_fails = {{0, true, 5}};
  const Report report = run(log);
  int ranges = 0;
  for (const lint::Diagnostic& d : report.diagnostics()) {
    if (d.check_id != "log-range") continue;
    ++ranges;
    EXPECT_NE(d.message.find("out of range"), std::string::npos) << d.message;
  }
  EXPECT_EQ(ranges, 3) << report.to_string();
}

// The gap the issue names: a compacted (channel, position) bit inside the
// global position range but beyond the end of every chain in its channel.
TEST_F(LintLogTest, InRangePositionAliasingNoCellIsObsMissing) {
  // 3 flops in 2 chains -> lengths 2 and 1; ratio 1 -> channel == chain.
  std::int32_t channel = -1, position = -1;
  for (std::int32_t ch = 0; ch < compactor_.num_channels() && channel < 0;
       ++ch) {
    for (std::int32_t pos = 0; pos < scan_.max_chain_length(); ++pos) {
      if (compactor_.cells_at(scan_, ch, pos).empty()) {
        channel = ch;
        position = pos;
        break;
      }
    }
  }
  ASSERT_GE(channel, 0) << "stitching produced equal-length chains";

  FailureLog log;
  log.compacted = true;
  log.channel_fails = {{0, channel, position}};
  const Report report = run(log);
  const lint::Diagnostic* d = report.find("log-obs-missing");
  ASSERT_NE(d, nullptr) << report.to_string();
  EXPECT_NE(d->message.find("aliases no scan cell"), std::string::npos);
  EXPECT_FALSE(report.contains("log-range"));  // it *is* in range
}

TEST_F(LintLogTest, DuplicateBitsAreWarned) {
  FailureLog log;
  log.scan_fails = {{0, false, 1}, {0, false, 1}};
  const Report report = run(log);
  const lint::Diagnostic* d = report.find("log-duplicate");
  ASSERT_NE(d, nullptr) << report.to_string();
  EXPECT_EQ(d->severity, Severity::kWarn);
  EXPECT_FALSE(report.has_errors());
}

TEST_F(LintLogTest, StoreTruncationSignatureIsWarned) {
  // Every failing pattern clipped at exactly 4 bits (3 flops + 1 PO): the
  // tester fail-store signature diag/noise.h's kTruncateStore produces.
  FailureLog log;
  for (std::int32_t p = 0; p < 4; ++p) {
    for (std::int32_t f = 0; f < 3; ++f) log.scan_fails.push_back({p, false, f});
    log.po_fails.push_back({p, true, 0});
  }
  const Report report = run(log);
  const lint::Diagnostic* d = report.find("log-store-truncated");
  ASSERT_NE(d, nullptr) << report.to_string();
  EXPECT_EQ(d->severity, Severity::kWarn);
  EXPECT_NE(d->message.find("fail-store depth of 4"), std::string::npos)
      << d->message;
  EXPECT_FALSE(report.has_errors());
}

TEST_F(LintLogTest, OrganicBitCountsDoNotTripStoreTruncation) {
  // The cap of 4 is reached by a single pattern: ordinary fan-out variance,
  // not a store limit.
  FailureLog log;
  for (std::int32_t f = 0; f < 3; ++f) log.scan_fails.push_back({0, false, f});
  log.po_fails.push_back({0, true, 0});
  log.scan_fails.push_back({1, false, 0});
  log.scan_fails.push_back({1, false, 1});
  log.scan_fails.push_back({2, false, 2});
  EXPECT_TRUE(run(log).empty()) << run(log).to_string();

  // A uniform bit count below the minimum store depth never fires either:
  // small designs legitimately fail every observable bit.
  FailureLog small;
  for (std::int32_t p = 0; p < 4; ++p) {
    for (std::int32_t f = 0; f < 3; ++f) {
      small.scan_fails.push_back({p, false, f});
    }
  }
  EXPECT_TRUE(run(small).empty()) << run(small).to_string();
}

TEST_F(LintLogTest, PatternRegressionIsWarnedPerKind) {
  // Testers emit failing patterns monotonically; a regression within a
  // record kind means the log was reordered or stitched.
  FailureLog log;
  log.scan_fails = {{2, false, 0}, {0, false, 1}, {3, false, 2}};
  log.po_fails = {{1, true, 0}};
  const Report report = run(log);
  const lint::Diagnostic* d = report.find("log-out-of-order");
  ASSERT_NE(d, nullptr) << report.to_string();
  EXPECT_EQ(d->severity, Severity::kWarn);
  EXPECT_NE(d->message.find("pattern 0 after pattern 2"), std::string::npos)
      << d->message;
  EXPECT_NE(d->location.find("scan record 1"), std::string::npos)
      << d->location;
  EXPECT_FALSE(report.has_errors());
}

TEST_F(LintLogTest, RegressionsAreJudgedAgainstTheWatermark) {
  // The watermark holds at the max pattern seen, so every record sitting
  // below the peak is cited (each is one a live session would have
  // rejected), while a fresh max is never a finding.
  FailureLog log;
  log.scan_fails = {{3, false, 0}, {0, false, 1}, {1, false, 2}, {2, false, 0}};
  const Report report = run(log);
  std::int32_t out_of_order = 0;
  for (const lint::Diagnostic& d : report.diagnostics()) {
    if (d.check_id == "log-out-of-order") ++out_of_order;
  }
  EXPECT_EQ(out_of_order, 3) << report.to_string();
  // A fresh max after the dip is fine: monotone logs stay clean.
  FailureLog clean;
  clean.scan_fails = {{0, false, 0}, {0, false, 1}, {2, false, 2}};
  clean.po_fails = {{1, true, 0}};  // kinds are checked independently
  EXPECT_FALSE(run(clean).contains("log-out-of-order"))
      << run(clean).to_string();
}

// ---- model pass -------------------------------------------------------------

// Tiny synthetic training set: enough labeled samples for all three phases
// to run a couple of epochs.  `width` poisons the feature dimension on
// purpose (the preflight is disabled for those runs).
std::vector<Subgraph> make_training_graphs(std::int32_t width) {
  std::vector<Subgraph> graphs;
  for (int i = 0; i < 6; ++i) {
    Subgraph sg;
    sg.nodes = {0, 1, 2};
    sg.edge_u = {0, 1};
    sg.edge_v = {1, 2};
    sg.features = Matrix(3, width);
    for (std::int32_t r = 0; r < 3; ++r) {
      for (std::int32_t c = 0; c < width; ++c) {
        sg.features.at(r, c) = ((i + r + c) % 2) ? 1.0f : 0.0f;
      }
    }
    sg.tier_label = i % 2;
    sg.miv_local = {1};
    sg.miv_ids = {0};
    sg.miv_label = {static_cast<std::int8_t>(i % 2)};
    graphs.push_back(std::move(sg));
  }
  return graphs;
}

DiagnosisFramework train_tiny(const FrameworkOptions& options,
                              std::int32_t width) {
  DiagnosisFramework fw(options);
  TrainerOptions topt;
  topt.preflight = (width == kNumNodeFeatures);
  Trainer trainer(fw, topt);
  const std::vector<Subgraph> graphs = make_training_graphs(width);
  trainer.train(graphs);
  return fw;
}

FrameworkOptions tiny_options() {
  FrameworkOptions options;
  options.model.hidden = 4;
  options.model.num_layers = 2;
  options.training.epochs = 2;
  return options;
}

TEST(LintModelTest, UntrainedFrameworkShortCircuits) {
  const DiagnosisFramework fw;
  const Report report = lint::lint_model(fw);
  ASSERT_EQ(report.size(), 1u) << report.to_string();
  EXPECT_EQ(report.diagnostics().front().check_id, "model-untrained");
}

TEST(LintModelTest, HealthyTinyModelPasses) {
  const DiagnosisFramework fw = train_tiny(tiny_options(), kNumNodeFeatures);
  EXPECT_TRUE(lint::lint_model(fw).empty())
      << lint::lint_model(fw).to_string();
}

TEST(LintModelTest, WrongInputWidthFailsFeatureContract) {
  FrameworkOptions options = tiny_options();
  options.model.in_dim = 7;
  const DiagnosisFramework fw = train_tiny(options, 7);
  const Report report = lint::lint_model(fw);
  const lint::Diagnostic* d = report.find("model-feat-width");
  ASSERT_NE(d, nullptr) << report.to_string();
  EXPECT_NE(d->message.find("7"), std::string::npos);
}

TEST(LintModelTest, ThreeClassHeadFailsLayerDims) {
  FrameworkOptions options = tiny_options();
  options.model.classes = 3;
  const DiagnosisFramework fw = train_tiny(options, kNumNodeFeatures);
  const Report report = lint::lint_model(fw);
  EXPECT_TRUE(report.contains("model-layer-dims")) << report.to_string();
}

TEST(LintModelTest, DesignWithoutMivsWarnsAboutIdleHead) {
  const DiagnosisFramework fw = train_tiny(tiny_options(), kNumNodeFeatures);
  const MivMap no_mivs;
  lint::Subject subject;
  subject.model = &fw;
  subject.mivs = &no_mivs;
  Report report;
  lint::run_model_checks(subject, report);
  const lint::Diagnostic* d = report.find("model-miv-head");
  ASSERT_NE(d, nullptr) << report.to_string();
  EXPECT_EQ(d->severity, Severity::kWarn);
}

// ---- preflight + end-to-end -------------------------------------------------

TEST(LintPreflightTest, TrainerRejectsPoisonedDatasetBeforeEpochs) {
  DiagnosisFramework fw(tiny_options());
  std::vector<Subgraph> graphs = make_training_graphs(kNumNodeFeatures);
  graphs[2].features.at(0, 4) = std::numeric_limits<float>::quiet_NaN();
  Trainer trainer(fw);
  try {
    trainer.train(graphs);
    FAIL() << "preflight did not reject the poisoned dataset";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("preflight"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("sample 2"), std::string::npos)
        << e.what();
  }
  EXPECT_FALSE(fw.trained());
}

TEST(LintPreflightTest, PreflightCanBeDisabled) {
  // Same trainer path with preflight off: no lint pass runs and training
  // completes normally on a clean dataset.
  DiagnosisFramework fw(tiny_options());
  std::vector<Subgraph> graphs = make_training_graphs(kNumNodeFeatures);
  TrainerOptions topt;
  topt.preflight = false;
  Trainer trainer(fw, topt);
  trainer.train(graphs);
  EXPECT_TRUE(fw.trained());
}

// The property the serve admission gate and train preflight rely on: every
// artifact of a generator-produced design lints clean, across configs.
TEST(LintEndToEndTest, GeneratedDesignsLintClean) {
  for (const DesignConfig config : {DesignConfig::kSyn1, DesignConfig::kTpi}) {
    const std::unique_ptr<Design> design =
        Design::build(Profile::kAes, config);
    const Report report = lint::lint_design(*design);
    EXPECT_TRUE(report.empty())
        << config_name(config) << ":\n" << report.to_string();
  }
}

TEST(LintEndToEndTest, DesignPlusGeneratedLogLintsClean) {
  const std::unique_ptr<Design> design =
      Design::build(Profile::kAes, DesignConfig::kSyn1);
  DataGenOptions gen;
  gen.num_samples = 2;
  gen.seed = 0xBEEF;
  const std::vector<Sample> samples =
      generate_samples(design->context(), gen);
  ASSERT_FALSE(samples.empty());
  const Report report = lint::lint_failure_log(*design, samples.front().log);
  EXPECT_TRUE(report.empty()) << report.to_string();
}

TEST(LintEndToEndTest, LintMnlRoundTripOfCleanCorpus) {
  // clean.mnl through the full design-free entry point, JSON included.
  const Report report = lint_corpus_file("clean.mnl");
  EXPECT_TRUE(report.empty());
  EXPECT_EQ(report.to_json(), "[\n]\n");
  EXPECT_EQ(report.summary(), "clean");
}

// ---- session-journal checks -------------------------------------------------

TEST(LintJournalTest, SessionJournalStaleIsInTheCatalog) {
  const lint::CheckInfo& info = lint::check_info("session-journal-stale");
  EXPECT_EQ(info.severity, Severity::kWarn);
  EXPECT_EQ(info.artifact, lint::ArtifactKind::kJournal);
  EXPECT_STRNE(info.summary, "");
  EXPECT_STRNE(info.hint, "");
}

TEST(LintJournalTest, StaleSegmentWarnsWithSegmentPathAndOffset) {
  lint::JournalFacts facts;
  facts.session_lifetime_ms = 500.0;
  facts.now_wall_ms = 10000;
  lint::JournalSegmentFacts seg;
  seg.path = "/journal/seg-000001.m3dflj";
  seg.records = 3;
  seg.newest_wall_ms = 1500;  // 8500 ms old against a 500 ms lifetime
  seg.newest_offset = 57;
  facts.segments.push_back(seg);
  lint::Subject subject;
  subject.journal = &facts;
  const Report report = lint::run_checks(subject);
  ASSERT_EQ(report.size(), 1u);
  const lint::Diagnostic& d = report.diagnostics().front();
  EXPECT_EQ(d.check_id, "session-journal-stale");
  EXPECT_EQ(d.severity, Severity::kWarn);
  EXPECT_NE(d.location.find("seg-000001.m3dflj"), std::string::npos);
  EXPECT_NE(d.location.find("offset 57"), std::string::npos) << d.location;
  EXPECT_NE(d.message.find("8500 ms old"), std::string::npos) << d.message;

  // Within the lifetime, or with no lifetime deadline: quiet.  Empty
  // segments never fire (no newest record to age).
  facts.now_wall_ms = 1600;
  EXPECT_TRUE(lint::run_checks(subject).empty());
  facts.now_wall_ms = 10000;
  facts.session_lifetime_ms = 0.0;
  EXPECT_TRUE(lint::run_checks(subject).empty());
  facts.session_lifetime_ms = 500.0;
  facts.segments[0].records = 0;
  facts.segments[0].newest_wall_ms = -1;
  EXPECT_TRUE(lint::run_checks(subject).empty());
}

// ---- Severity parsing -------------------------------------------------------

TEST(SeverityTest, ParseIsCaseInsensitive) {
  EXPECT_EQ(lint::parse_severity("note"), Severity::kNote);
  EXPECT_EQ(lint::parse_severity("WARN"), Severity::kWarn);
  EXPECT_EQ(lint::parse_severity("Warning"), Severity::kWarn);
  EXPECT_EQ(lint::parse_severity("Error"), Severity::kError);
  EXPECT_EQ(lint::parse_severity("eRrOr"), Severity::kError);
}

TEST(SeverityTest, ParseRejectsUnknownNameCitingIt) {
  try {
    lint::parse_severity("fatal");
    FAIL() << "expected parse_severity to throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("'fatal'"), std::string::npos) << what;
  }
}

// ---- Catalog <-> docs/LINT.md drift -----------------------------------------

#ifndef M3DFL_LINT_DOC_PATH
#error "build must define M3DFL_LINT_DOC_PATH"
#endif

// Ids documented in the LINT.md catalog table (rows of the form
// "| `check-id` | ...").
std::vector<std::string> documented_check_ids() {
  std::ifstream is(M3DFL_LINT_DOC_PATH);
  EXPECT_TRUE(is.good()) << "missing " << M3DFL_LINT_DOC_PATH;
  std::vector<std::string> ids;
  std::string line;
  while (std::getline(is, line)) {
    if (line.rfind("| `", 0) != 0) continue;
    const std::size_t end = line.find('`', 3);
    if (end == std::string::npos) continue;
    ids.push_back(line.substr(3, end - 3));
  }
  return ids;
}

// The check catalog is the single source of truth rendered into docs/LINT.md;
// this test fails when either side drifts (a check added without a doc row,
// or a doc row whose check no longer exists).
TEST(CatalogDocTest, EveryCatalogCheckIsDocumentedAndViceVersa) {
  const std::vector<std::string> documented = documented_check_ids();
  ASSERT_FALSE(documented.empty());

  std::vector<std::string> registered;
  for (const lint::CheckInfo& info : lint::check_catalog()) {
    registered.push_back(info.id);
  }
  for (const std::string& id : registered) {
    EXPECT_NE(std::find(documented.begin(), documented.end(), id),
              documented.end())
        << "check '" << id << "' is registered but has no docs/LINT.md row";
  }
  for (const std::string& id : documented) {
    EXPECT_NE(std::find(registered.begin(), registered.end(), id),
              registered.end())
        << "docs/LINT.md documents '" << id
        << "' but no such check is registered";
  }
  EXPECT_EQ(documented.size(), registered.size());
}

}  // namespace
}  // namespace m3dfl
