#include <set>

#include <gtest/gtest.h>

#include "dft/compactor.h"
#include "test_helpers.h"

namespace m3dfl {
namespace {

TEST(CompactorTest, ChannelsCoverAllChains) {
  const Netlist nl = testing::small_netlist(2);
  const ScanChains chains(nl, 7, 1);
  const XorCompactor compactor(chains, 3);
  EXPECT_EQ(compactor.num_channels(), 3);  // ceil(7 / 3)
  std::set<std::int32_t> covered;
  for (std::int32_t ch = 0; ch < compactor.num_channels(); ++ch) {
    for (std::int32_t c : compactor.channel_chains(ch)) {
      EXPECT_EQ(compactor.channel_of_chain(c), ch);
      covered.insert(c);
    }
  }
  EXPECT_EQ(covered.size(), 7u);
}

TEST(CompactorTest, RatioRespected) {
  const Netlist nl = testing::small_netlist(2);
  const ScanChains chains(nl, 8, 1);
  const XorCompactor compactor(chains, 4);
  EXPECT_EQ(compactor.num_channels(), 2);
  EXPECT_EQ(compactor.channel_chains(0).size(), 4u);
  EXPECT_EQ(compactor.chains_per_channel(), 4);
}

TEST(CompactorTest, CellsAtGathersAliasedFlops) {
  const Netlist nl = testing::small_netlist(2);
  const ScanChains chains(nl, 4, 1);
  const XorCompactor compactor(chains, 2);
  const auto cells = compactor.cells_at(chains, 0, 0);
  // Position 0 exists in both chains of channel 0.
  EXPECT_EQ(cells.size(), 2u);
  for (std::int32_t f : cells) {
    EXPECT_EQ(compactor.channel_of_chain(chains.chain_of_flop(f)), 0);
    EXPECT_EQ(chains.position_of_flop(f), 0);
  }
}

TEST(CompactorTest, CellsAtPastChainEndShrinks) {
  testing::TinyCircuit c;
  const ScanChains chains(c.netlist, 1, 1);
  const XorCompactor compactor(chains, 4);
  EXPECT_EQ(compactor.cells_at(chains, 0, 0).size(), 1u);
  EXPECT_TRUE(compactor.cells_at(chains, 0, 5).empty());
}

TEST(CompactorTest, RejectsNonPositiveRatio) {
  const Netlist nl = testing::small_netlist(2);
  const ScanChains chains(nl, 4, 1);
  EXPECT_THROW(XorCompactor(chains, 0), Error);
}

}  // namespace
}  // namespace m3dfl
