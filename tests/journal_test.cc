// Unit tests for the write-ahead session journal (serve/journal.h): frame
// round-trips, segment rotation, torn/corrupt-tail recovery with
// offset-cited diagnostics (seeded corpus under tests/journal_corpus/),
// tombstone-driven compaction with the resurrection guard, the kJournal*
// fault seams, and the session-journal-stale lint bridge.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/checks.h"
#include "serve/fault_injector.h"
#include "serve/journal.h"
#include "serve/metrics.h"
#include "util/checksum.h"

namespace m3dfl::serve {
namespace {

namespace fs = std::filesystem;

std::string corpus_path(const std::string& name) {
  return std::string(M3DFL_JOURNAL_CORPUS_DIR) + "/" + name;
}

// Fresh scratch directory per test.
std::string scratch_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("journal_" + name);
  fs::remove_all(dir);
  return dir.string();
}

// Builds one frame exactly as the writer does, so tests can compose
// arbitrary segment files for the scan/compaction cases.
std::string frame(const std::string& payload) {
  char hex[9];
  std::snprintf(hex, sizeof hex, "%08x", crc32(payload));
  return "r " + std::string(hex) + " " + std::to_string(payload.size()) +
         " " + payload + "\n";
}

void write_segment(const std::string& dir, const std::string& name,
                   const std::vector<std::string>& payloads) {
  fs::create_directories(dir);
  std::ofstream os(fs::path(dir) / name, std::ios::binary);
  os << "m3dfl-journal 1\n";
  for (const std::string& payload : payloads) os << frame(payload);
}

// A wall clock the test can move by hand.
struct FakeClock {
  std::int64_t now_ms = 1000;
  WallClock fn() {
    return [this] { return now_ms; };
  }
};

TEST(JournalTest, WriterRoundTripsThroughReplay) {
  const std::string dir = scratch_dir("roundtrip");
  FakeClock clock;
  Metrics metrics;
  JournalOptions options;
  options.wall_ms = clock.fn();
  options.metrics = &metrics;
  SessionJournal journal(dir, options);
  EXPECT_TRUE(journal.durable());

  journal.append_open(7, "DemoDesign", 1000.0, 5000.0);
  clock.now_ms = 1500;
  journal.append_record(7, "scan 1 2");
  journal.append_record(7, "po 1 0");
  clock.now_ms = 2000;
  journal.append_close(7, "finalized");

  EXPECT_EQ(metrics.journal_appends.load(), 4);
  EXPECT_EQ(metrics.journal_append_failures.load(), 0);

  const JournalReplay replay = SessionJournal::replay(dir);
  ASSERT_EQ(replay.segments.size(), 1u);
  EXPECT_TRUE(replay.segments[0].diagnostic.empty());
  EXPECT_EQ(replay.records, 4u);
  EXPECT_EQ(replay.closed_sessions, 1u);
  EXPECT_TRUE(replay.live.empty());
  EXPECT_TRUE(replay.diagnostics.empty());
  // Closed sessions count toward the id high-water mark: recover() must
  // seed the manager's counter past ids that only tombstones mention.
  EXPECT_EQ(replay.max_session_id, 7u);

  const SegmentScan scan = SessionJournal::scan_segment(journal.active_segment());
  ASSERT_EQ(scan.records.size(), 4u);
  EXPECT_EQ(scan.records[0].type, JournalRecord::Type::kOpen);
  EXPECT_EQ(scan.records[0].session_id, 7u);
  EXPECT_EQ(scan.records[0].wall_ms, 1000);
  EXPECT_EQ(scan.records[0].design_name, "DemoDesign");
  EXPECT_EQ(scan.records[0].idle_deadline_ms, 1000.0);
  EXPECT_EQ(scan.records[0].max_lifetime_ms, 5000.0);
  EXPECT_EQ(scan.records[1].type, JournalRecord::Type::kRecord);
  EXPECT_EQ(scan.records[1].wall_ms, 1500);
  EXPECT_EQ(scan.records[1].text, "scan 1 2");
  EXPECT_EQ(scan.records[3].type, JournalRecord::Type::kClose);
  EXPECT_EQ(scan.records[3].text, "finalized");
  EXPECT_EQ(scan.valid_bytes, scan.total_bytes);
}

TEST(JournalTest, ReopenContinuesTheHighestSegment) {
  const std::string dir = scratch_dir("reopen");
  {
    SessionJournal journal(dir);
    journal.append_open(1, "D", 0.0, 0.0);
  }
  {
    SessionJournal journal(dir);
    journal.append_record(1, "scan 0 1");
    journal.append_close(1, "finalized");
  }
  EXPECT_EQ(SessionJournal::list_segments(dir).size(), 1u);
  const JournalReplay replay = SessionJournal::replay(dir);
  EXPECT_EQ(replay.records, 3u);
  EXPECT_EQ(replay.closed_sessions, 1u);
  EXPECT_TRUE(replay.diagnostics.empty());
}

TEST(JournalTest, RotatesSegmentsBySize) {
  const std::string dir = scratch_dir("rotate");
  Metrics metrics;
  JournalOptions options;
  options.max_segment_bytes = 1;  // every append lands past the cap
  options.metrics = &metrics;
  SessionJournal journal(dir, options);
  journal.append_open(1, "D", 0.0, 0.0);
  journal.append_record(1, "scan 0 1");
  journal.append_record(1, "scan 0 2");

  EXPECT_GE(SessionJournal::list_segments(dir).size(), 2u);
  EXPECT_GE(metrics.journal_rotations.load(), 1);
  // Rotation must not cost records: the replay spans all segments in order.
  const JournalReplay replay = SessionJournal::replay(dir);
  EXPECT_EQ(replay.records, 3u);
  ASSERT_EQ(replay.live.size(), 1u);
  EXPECT_EQ(replay.live[0].lines.size(), 2u);
  EXPECT_EQ(replay.live[0].lines[0], "scan 0 1");
  EXPECT_TRUE(replay.diagnostics.empty());
}

// ---- fault seams -----------------------------------------------------------

TEST(JournalTest, TornWriteCountsTheLossAndSealsTheSegment) {
  const std::string dir = scratch_dir("torn");
  FaultInjector injector;
  injector.arm_nth(Seam::kJournalTornWrite, {2});  // tear the 2nd append
  Metrics metrics;
  JournalOptions options;
  options.injector = &injector;
  options.metrics = &metrics;
  SessionJournal journal(dir, options);

  journal.append_open(1, "D", 0.0, 0.0);
  journal.append_record(1, "scan 0 1");  // torn: prefix reaches disk
  EXPECT_FALSE(journal.durable());
  journal.append_record(1, "scan 0 2");  // must land in a fresh segment

  EXPECT_EQ(metrics.journal_appends.load(), 2);
  EXPECT_EQ(metrics.journal_append_failures.load(), 1);
  EXPECT_EQ(SessionJournal::list_segments(dir).size(), 2u);

  const JournalReplay replay = SessionJournal::replay(dir);
  // The torn frame is reported with its offset and dropped; the open and
  // the post-rotation record survive.
  ASSERT_EQ(replay.diagnostics.size(), 1u);
  EXPECT_NE(replay.diagnostics[0].find("journal byte "), std::string::npos);
  EXPECT_NE(replay.diagnostics[0].find("accepting the valid prefix"),
            std::string::npos);
  ASSERT_EQ(replay.live.size(), 1u);
  ASSERT_EQ(replay.live[0].lines.size(), 1u);
  EXPECT_EQ(replay.live[0].lines[0], "scan 0 2");
}

TEST(JournalTest, FsyncFailureDegradesToNonDurable) {
  const std::string dir = scratch_dir("fsync");
  FaultInjector injector;
  injector.arm_nth(Seam::kJournalFsync, {1});
  Metrics metrics;
  JournalOptions options;
  options.injector = &injector;
  options.metrics = &metrics;
  SessionJournal journal(dir, options);

  journal.append_open(1, "D", 0.0, 0.0);  // fsync "fails"
  EXPECT_FALSE(journal.durable());
  EXPECT_EQ(metrics.journal_append_failures.load(), 1);
  journal.append_record(1, "scan 0 1");  // keeps serving in a fresh segment
  EXPECT_EQ(metrics.journal_appends.load(), 1);
}

TEST(JournalTest, CorruptWriteIsCaughtByTheScanChecksum) {
  const std::string dir = scratch_dir("corrupt");
  FaultInjector injector;
  injector.arm_nth(Seam::kJournalCorrupt, {2});
  JournalOptions options;
  options.injector = &injector;
  SessionJournal journal(dir, options);

  journal.append_open(1, "D", 0.0, 0.0);
  journal.append_record(1, "scan 0 1");  // silently bit-flipped on "disk"
  EXPECT_TRUE(journal.durable());        // the writer cannot see media rot

  const SegmentScan scan =
      SessionJournal::scan_segment(journal.active_segment());
  ASSERT_EQ(scan.records.size(), 1u);  // valid prefix: the open only
  EXPECT_NE(scan.diagnostic.find("checksum mismatch"), std::string::npos);
  EXPECT_NE(scan.diagnostic.find("journal byte "), std::string::npos);
}

// ---- seeded corrupt/torn corpus -------------------------------------------
// Layout pinned by the generator: 16-byte header, `open` frame at byte 16
// (41 bytes), `rec` frame at byte 57 (34 bytes), `close` frame at byte 91
// (37 bytes; duplicate at 128).

TEST(JournalCorpusTest, TruncatedFrameKeepsTheValidPrefix) {
  const SegmentScan scan = SessionJournal::scan_segment(
      corpus_path("truncated_frame/seg-000001.m3dflj"));
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.records[0].type, JournalRecord::Type::kOpen);
  EXPECT_EQ(scan.valid_bytes, 57u);
  EXPECT_NE(scan.diagnostic.find(": journal byte 57: truncated frame payload"),
            std::string::npos)
      << scan.diagnostic;
  EXPECT_NE(scan.diagnostic.find("accepting the valid prefix (1 record(s), "
                                 "57 bytes)"),
            std::string::npos)
      << scan.diagnostic;
}

TEST(JournalCorpusTest, BadCrcIsRejectedWithBothChecksums) {
  const SegmentScan scan =
      SessionJournal::scan_segment(corpus_path("bad_crc/seg-000001.m3dflj"));
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_NE(scan.diagnostic.find(": journal byte 57: frame checksum mismatch "
                                 "(expected deadbeef, computed 492fd8a1)"),
            std::string::npos)
      << scan.diagnostic;
}

TEST(JournalCorpusTest, ValidPrefixThenGarbageStopsAtTheGarbage) {
  const SegmentScan scan = SessionJournal::scan_segment(
      corpus_path("valid_prefix_then_garbage/seg-000001.m3dflj"));
  ASSERT_EQ(scan.records.size(), 2u);
  EXPECT_EQ(scan.valid_bytes, 91u);
  EXPECT_NE(scan.diagnostic.find(": journal byte 91: bad frame marker "
                                 "(expected 'r ', found 'GA')"),
            std::string::npos)
      << scan.diagnostic;
}

TEST(JournalCorpusTest, EmptySegmentIsMissingItsHeader) {
  const SegmentScan scan = SessionJournal::scan_segment(
      corpus_path("empty_segment/seg-000001.m3dflj"));
  EXPECT_TRUE(scan.records.empty());
  EXPECT_NE(scan.diagnostic.find(": journal byte 0: missing "
                                 "'m3dfl-journal 1' header"),
            std::string::npos)
      << scan.diagnostic;
}

TEST(JournalCorpusTest, DuplicateTombstoneIsIgnoredWithItsOffset) {
  const JournalReplay replay =
      SessionJournal::replay(corpus_path("duplicate_tombstone"));
  EXPECT_EQ(replay.records, 4u);
  EXPECT_EQ(replay.closed_sessions, 1u);
  EXPECT_TRUE(replay.live.empty());
  ASSERT_EQ(replay.diagnostics.size(), 1u);
  EXPECT_NE(replay.diagnostics[0].find(
                ": journal byte 128: duplicate tombstone for session 7; "
                "ignored"),
            std::string::npos)
      << replay.diagnostics[0];
}

// An `open` that reuses a tombstoned id is dropped outright — the
// diagnostic must say so rather than claim any prior open was "kept", and
// the session's records go with it.  (The writer-side guard is
// SessionManager::recover() seeding next_id_ past replay.max_session_id;
// this pins what a journal looks like when that guard is missing.)
TEST(JournalTest, OpenForAlreadyClosedSessionIsDropped) {
  const std::string dir = scratch_dir("reused_id");
  write_segment(dir, "seg-000001.m3dflj",
                {"open 7 100 0 0 D", "close 7 200 finalized",
                 "open 7 300 0 0 D", "rec 7 350 scan 0 1"});
  const JournalReplay replay = SessionJournal::replay(dir);
  EXPECT_TRUE(replay.live.empty());
  EXPECT_EQ(replay.closed_sessions, 1u);
  EXPECT_EQ(replay.max_session_id, 7u);
  ASSERT_EQ(replay.diagnostics.size(), 2u);
  EXPECT_NE(replay.diagnostics[0].find(
                "open for already-closed session 7; dropped"),
            std::string::npos)
      << replay.diagnostics[0];
  EXPECT_NE(replay.diagnostics[1].find("record for closed session 7"),
            std::string::npos)
      << replay.diagnostics[1];
}

// A duplicate open for a session that is still live keeps the first open
// (the second is presumed a replayed/garbled frame, not a fresh session).
TEST(JournalTest, DuplicateOpenForLiveSessionKeepsTheFirst) {
  const std::string dir = scratch_dir("dup_open");
  write_segment(dir, "seg-000001.m3dflj",
                {"open 7 100 0 0 First", "open 7 200 0 0 Second"});
  const JournalReplay replay = SessionJournal::replay(dir);
  ASSERT_EQ(replay.live.size(), 1u);
  EXPECT_EQ(replay.live[0].design_name, "First");
  ASSERT_EQ(replay.diagnostics.size(), 1u);
  EXPECT_NE(replay.diagnostics[0].find(
                "duplicate open for session 7; keeping the first"),
            std::string::npos)
      << replay.diagnostics[0];
}

// A failed rotation loses exactly one event and must count exactly one
// append failure (not one for the failed ::open plus one for the dead fd).
TEST(JournalTest, FailedRotationCountsEachLostEventOnce) {
  const std::string dir = scratch_dir("rotate_fail");
  Metrics metrics;
  JournalOptions options;
  options.max_segment_bytes = 1;  // every append wants a fresh segment
  options.metrics = &metrics;
  SessionJournal journal(dir, options);
  journal.append_open(1, "D", 0.0, 0.0);
  EXPECT_EQ(metrics.journal_appends.load(), 1);
  // Yank the directory out from under the writer: the next rotation's
  // ::open fails with ENOENT and that event is lost.
  fs::remove_all(dir);
  journal.append_record(1, "scan 0 1");
  EXPECT_FALSE(journal.durable());
  EXPECT_EQ(metrics.journal_append_failures.load(), 1);
  journal.append_record(1, "scan 0 2");
  EXPECT_EQ(metrics.journal_append_failures.load(), 2);
  EXPECT_EQ(metrics.journal_appends.load(), 1);
}

// ---- compaction ------------------------------------------------------------

TEST(JournalTest, CompactRemovesSealedFullyTombstonedSegments) {
  const std::string dir = scratch_dir("compact");
  write_segment(dir, "seg-000001.m3dflj",
                {"open 1 100 0 0 D", "rec 1 150 scan 0 1",
                 "close 1 200 finalized"});
  write_segment(dir, "seg-000002.m3dflj",
                {"open 2 300 0 0 D", "close 2 400 expired"});
  write_segment(dir, "seg-000003.m3dflj", {"open 3 500 0 0 D"});

  EXPECT_EQ(SessionJournal::compact(dir), 2u);
  ASSERT_EQ(SessionJournal::list_segments(dir).size(), 1u);
  const JournalReplay replay = SessionJournal::replay(dir);
  ASSERT_EQ(replay.live.size(), 1u);
  EXPECT_EQ(replay.live[0].id, 3u);
}

TEST(JournalTest, CompactNeverTouchesTheNewestSegment) {
  const std::string dir = scratch_dir("compact_newest");
  // Everything is tombstoned, but the newest segment may have a live
  // writer appending to it — it must survive.
  write_segment(dir, "seg-000001.m3dflj",
                {"open 1 100 0 0 D", "close 1 200 finalized"});
  EXPECT_EQ(SessionJournal::compact(dir), 0u);
  write_segment(dir, "seg-000002.m3dflj",
                {"open 2 300 0 0 D", "close 2 400 finalized"});
  EXPECT_EQ(SessionJournal::compact(dir), 1u);
  const std::vector<std::string> left = SessionJournal::list_segments(dir);
  ASSERT_EQ(left.size(), 1u);
  EXPECT_NE(left[0].find("seg-000002"), std::string::npos);
}

TEST(JournalTest, CompactKeepsTombstonesWhoseOpenSurvivesElsewhere) {
  const std::string dir = scratch_dir("compact_guard");
  // seg1 must stay (session 9 is still open there); seg2 holds only the
  // tombstone for session 1 whose open survives in seg1 — removing seg2
  // would resurrect session 1 at the next replay.
  write_segment(dir, "seg-000001.m3dflj",
                {"open 1 100 0 0 D", "rec 1 150 scan 0 1",
                 "open 9 160 0 0 D"});
  write_segment(dir, "seg-000002.m3dflj", {"close 1 200 finalized"});
  write_segment(dir, "seg-000003.m3dflj", {"open 2 300 0 0 D"});

  EXPECT_EQ(SessionJournal::compact(dir), 0u);
  const JournalReplay replay = SessionJournal::replay(dir);
  // Sessions 9 and 2 live; session 1 stays closed because its tombstone
  // survived.
  EXPECT_EQ(replay.live.size(), 2u);
  EXPECT_EQ(replay.closed_sessions, 1u);
}

// ---- lint bridge -----------------------------------------------------------

TEST(JournalTest, StaleSegmentLintCiteSegmentAndOffset) {
  const std::string dir = scratch_dir("lint_stale");
  FakeClock clock;
  JournalOptions options;
  options.wall_ms = clock.fn();
  SessionJournal journal(dir, options);
  journal.append_open(1, "D", 0.0, 0.0);
  clock.now_ms = 1500;
  journal.append_record(1, "scan 0 1");

  // Newest record is 8500 ms old against a 500 ms lifetime: stale.
  const lint::JournalFacts stale = journal_lint_facts(dir, 500.0, 10000);
  lint::Subject subject;
  subject.journal = &stale;
  lint::Report report;
  lint::run_journal_checks(subject, report);
  ASSERT_EQ(report.size(), 1u);
  const lint::Diagnostic& d = report.diagnostics()[0];
  EXPECT_EQ(d.check_id, "session-journal-stale");
  EXPECT_EQ(d.severity, lint::Severity::kWarn);
  EXPECT_NE(d.location.find("seg-000001.m3dflj"), std::string::npos);
  // The newest record is the `rec` frame, not the `open` before it.
  const SegmentScan scan =
      SessionJournal::scan_segment(journal.active_segment());
  ASSERT_EQ(scan.records.size(), 2u);
  EXPECT_NE(d.location.find("offset " +
                            std::to_string(scan.records[1].offset)),
            std::string::npos)
      << d.location;
  EXPECT_NE(d.message.find("8500 ms old"), std::string::npos) << d.message;

  // Fresh journal or no lifetime deadline: quiet.
  const lint::JournalFacts fresh = journal_lint_facts(dir, 500.0, 1600);
  subject.journal = &fresh;
  lint::Report clean;
  lint::run_journal_checks(subject, clean);
  EXPECT_EQ(clean.size(), 0u);
  const lint::JournalFacts no_deadline = journal_lint_facts(dir, 0.0, 10000);
  subject.journal = &no_deadline;
  lint::Report quiet;
  lint::run_journal_checks(subject, quiet);
  EXPECT_EQ(quiet.size(), 0u);
}

// ---- ParseLimits guardrails (util/limits.h) ---------------------------------

// A declared frame length is adversarial input: strtoull saturates any
// over-long digit string at ULLONG_MAX, and ULLONG_MAX would wrap
// `offset + payload_size + 1` into passing the truncation check.  The cap
// must fire before that arithmetic, keeping the valid prefix.
TEST(JournalLimitsTest, HugeDeclaredFrameLengthIsTornAtTheCap) {
  for (const char* declared :
       {"4294967296", "99999999999999999999", "18446744073709551615"}) {
    const std::string text = "m3dfl-journal 1\n" +
                             frame("open 1 1000 0 0 D") + "r deadbeef " +
                             declared + " x\n";
    const SegmentScan scan =
        SessionJournal::scan_segment_text("<mem>", text);
    ASSERT_EQ(scan.records.size(), 1u) << declared;
    EXPECT_EQ(scan.records[0].type, JournalRecord::Type::kOpen);
    EXPECT_NE(scan.diagnostic.find("journal byte "), std::string::npos)
        << scan.diagnostic;
    EXPECT_NE(
        scan.diagnostic.find("limit exceeded: declared frame payload bytes"),
        std::string::npos)
        << scan.diagnostic;
    EXPECT_NE(scan.diagnostic.find("accepting the valid prefix (1 record(s)"),
              std::string::npos)
        << scan.diagnostic;
  }
}

TEST(JournalLimitsTest, SegmentByteCapCited) {
  ParseLimits limits;
  limits.max_file_bytes = 8;
  const SegmentScan scan = SessionJournal::scan_segment_text(
      "<mem>", "m3dfl-journal 1\n" + frame("open 1 1000 0 0 D"), limits);
  EXPECT_TRUE(scan.records.empty());
  EXPECT_NE(scan.diagnostic.find("journal byte 0"), std::string::npos)
      << scan.diagnostic;
  EXPECT_NE(scan.diagnostic.find("limit exceeded: segment bytes"),
            std::string::npos)
      << scan.diagnostic;
}

// The in-memory seam fuzz/ drives must agree with the on-disk scan.
TEST(JournalLimitsTest, ScanSegmentTextMatchesOnDiskScan) {
  const std::string dir = scratch_dir("text_vs_disk");
  write_segment(dir, "seg-000001.m3dflj",
                {"open 1 1000 0 0 D", "rec 1 1001 scan 0 1", "GARBAGE"});
  const std::string path = (fs::path(dir) / "seg-000001.m3dflj").string();
  std::ifstream is(path, std::ios::binary);
  std::stringstream buf;
  buf << is.rdbuf();
  const SegmentScan disk = SessionJournal::scan_segment(path);
  const SegmentScan mem =
      SessionJournal::scan_segment_text(path, buf.str());
  EXPECT_EQ(disk.records.size(), mem.records.size());
  EXPECT_EQ(disk.valid_bytes, mem.valid_bytes);
  EXPECT_EQ(disk.diagnostic, mem.diagnostic);
}

}  // namespace
}  // namespace m3dfl::serve
