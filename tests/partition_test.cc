#include <cmath>

#include <gtest/gtest.h>

#include "m3d/partition.h"
#include "test_helpers.h"

namespace m3dfl {
namespace {

struct MethodCase {
  PartitionMethod method;
  const char* name;
};

class PartitionMethods : public ::testing::TestWithParam<MethodCase> {};

TEST_P(PartitionMethods, BalancedWithinTolerance) {
  const Netlist nl = testing::small_netlist(4);
  PartitionOptions opt;
  opt.method = GetParam().method;
  opt.balance_tolerance = 0.10;
  const TierAssignment ta = partition_tiers(nl, opt);
  const auto counts = ta.tier_gate_counts(nl);
  const std::int32_t total = counts[0] + counts[1];
  EXPECT_EQ(total, nl.num_logic_gates());
  // Both tiers populated and within a generous balance envelope.
  EXPECT_GT(counts[0], total / 4);
  EXPECT_GT(counts[1], total / 4);
}

TEST_P(PartitionMethods, PortsStayOnBottomTier) {
  const Netlist nl = testing::small_netlist(4);
  PartitionOptions opt;
  opt.method = GetParam().method;
  const TierAssignment ta = partition_tiers(nl, opt);
  for (GateId g : nl.primary_inputs()) {
    EXPECT_EQ(ta.tier_of(g), kBottomTier);
  }
  for (GateId g : nl.primary_outputs()) {
    EXPECT_EQ(ta.tier_of(g), kBottomTier);
  }
}

TEST_P(PartitionMethods, Deterministic) {
  const Netlist nl = testing::small_netlist(4);
  PartitionOptions opt;
  opt.method = GetParam().method;
  opt.seed = 77;
  const TierAssignment a = partition_tiers(nl, opt);
  const TierAssignment b = partition_tiers(nl, opt);
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    EXPECT_EQ(a.tier_of(g), b.tier_of(g));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, PartitionMethods,
    ::testing::Values(MethodCase{PartitionMethod::kMinCut, "mincut"},
                      MethodCase{PartitionMethod::kLevelDriven, "level"},
                      MethodCase{PartitionMethod::kRandom, "random"}),
    [](const auto& info) { return info.param.name; });

TEST(PartitionTest, MinCutBeatsRandomCut) {
  const Netlist nl = testing::small_netlist(9);
  PartitionOptions rnd;
  rnd.method = PartitionMethod::kRandom;
  PartitionOptions mc;
  mc.method = PartitionMethod::kMinCut;
  const std::int32_t random_cut = partition_tiers(nl, rnd).cut_size(nl);
  const std::int32_t mincut_cut = partition_tiers(nl, mc).cut_size(nl);
  EXPECT_LT(mincut_cut, random_cut);
}

TEST(PartitionTest, LevelDrivenSeparatesByDepth) {
  const Netlist nl = testing::small_netlist(9);
  PartitionOptions opt;
  opt.method = PartitionMethod::kLevelDriven;
  const TierAssignment ta = partition_tiers(nl, opt);
  // Within the combinational gates, the bottom tier's mean level must be
  // below the top tier's.
  double sum[2] = {0, 0};
  int n[2] = {0, 0};
  for (GateId g : nl.topo_order()) {
    sum[ta.tier_of(g)] += nl.level(g);
    ++n[ta.tier_of(g)];
  }
  ASSERT_GT(n[0], 0);
  ASSERT_GT(n[1], 0);
  EXPECT_LT(sum[0] / n[0], sum[1] / n[1]);
}

TEST(PartitionTest, CutSizeCountsSpanningNets) {
  testing::TinyCircuit c;
  TierAssignment ta(std::vector<std::int8_t>(
      static_cast<std::size_t>(c.netlist.num_gates()), kBottomTier));
  EXPECT_EQ(ta.cut_size(c.netlist), 0);
  // Move u1 to the top tier: nets n4 (u0->u1) and n5 (u1->ff0) become cut.
  ta.set_tier(c.u1, kTopTier);
  EXPECT_EQ(ta.cut_size(c.netlist), 2);
}

TEST(PartitionTest, DifferentMethodsProduceDifferentAssignments) {
  const Netlist nl = testing::small_netlist(10);
  PartitionOptions a;
  a.method = PartitionMethod::kMinCut;
  PartitionOptions b;
  b.method = PartitionMethod::kLevelDriven;
  const TierAssignment ta = partition_tiers(nl, a);
  const TierAssignment tb = partition_tiers(nl, b);
  int differing = 0;
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    if (ta.tier_of(g) != tb.tier_of(g)) ++differing;
  }
  EXPECT_GT(differing, nl.num_gates() / 10);
}

}  // namespace
}  // namespace m3dfl
