// Deterministic chaos harness for the streaming-session layer
// (acceptance test for the kStream* seams in serve/fault_injector.h).
//
// The load: every unique failure log replayed as a live feed through
// serve::SessionManager while the injector fires at the four stream seams.
// The contract under chaos:
//   - zero hangs: every session resolves exactly once, and the accounting
//     partition holds exactly —
//       sessions_opened == sessions_finalized + sessions_expired +
//                          sessions_evicted + live(),
//   - stream_records_rejected equals the garble + reorder trigger counts
//     (clean canonical feeds produce no organic rejections),
//   - sessions_expired equals the stall + disconnect trigger counts
//     (deadlines are disabled, so injection is the only expiry source),
//   - every kOk finalize is byte-identical to a clean service's batch
//     diagnosis of exactly the records the session accepted,
//   - a single-threaded rerun with the same seed reproduces the trigger
//     counts and statuses exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "diag/log_io.h"
#include "serve/fault_injector.h"
#include "serve/service.h"
#include "serve/session.h"
#include "serve/status.h"

namespace m3dfl {
namespace {

class StreamChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    design_ = std::shared_ptr<const Design>(
        Design::build(Profile::kAes, DesignConfig::kSyn1));
    TransferTrainOptions train;
    train.samples_syn1 = 40;
    train.samples_per_random = 20;
    const LabeledDataset data =
        build_transfer_training_set(Profile::kAes, *design_, train);
    FrameworkOptions options;
    options.training.epochs = 40;
    framework_ = new DiagnosisFramework(options);
    framework_->train(data.graphs);

    DataGenOptions gen;
    gen.num_samples = 16;
    gen.miv_fault_prob = 0.25;
    gen.seed = 0x57C4A05;
    logs_ = new std::vector<FailureLog>();
    std::set<std::string> seen;
    for (const Sample& s : generate_samples(design_->context(), gen)) {
      if (seen.insert(failure_log_to_string(s.log)).second) {
        logs_->push_back(s.log);
      }
    }
  }
  static void TearDownTestSuite() {
    delete logs_;
    delete framework_;
    logs_ = nullptr;
    framework_ = nullptr;
    design_.reset();
  }

  static serve::DiagnosisService make_service(
      const serve::ServiceOptions& options) {
    std::stringstream model;
    framework_->save(model);
    return serve::DiagnosisService(model, options);
  }

  static void arm_stream_seams(serve::FaultInjector& injector) {
    injector.arm(serve::Seam::kStreamStall, 0.01);
    injector.arm(serve::Seam::kStreamGarble, 0.05);
    injector.arm(serve::Seam::kStreamReorder, 0.05);
    injector.arm(serve::Seam::kStreamDisconnect, 0.01);
    injector.arm(serve::Seam::kStreamMalformedBytes, 0.05);
  }

  static std::vector<std::string> feed_lines(const FailureLog& log) {
    std::istringstream is(failure_log_to_string(log));
    std::vector<std::string> lines;
    std::string line;
    std::getline(is, line);  // header
    while (std::getline(is, line)) lines.push_back(line);
    return lines;
  }

  // One session's ride through the chaos: what it accepted and how it ended.
  struct SessionOutcome {
    serve::StatusCode status = serve::StatusCode::kOk;
    std::string result_text;  // result_to_string for kOk results
    std::string accepted_log;  // faillog text of the records that got in
    bool died_mid_feed = false;
  };

  // Feeds one log through one session and finalizes it.
  static SessionOutcome drive_session(serve::SessionManager& sessions,
                                      std::int32_t design_id,
                                      const FailureLog& log) {
    SessionOutcome outcome;
    const serve::SessionTicket ticket = sessions.begin_diagnosis(design_id);
    EXPECT_TRUE(ticket.admitted());
    std::string body;
    for (const std::string& line : feed_lines(log)) {
      const serve::SessionUpdate update =
          sessions.add_response(ticket.session_id, line);
      if (update.status == serve::StatusCode::kSessionExpired) {
        outcome.died_mid_feed = true;
        break;
      }
      // Rejected records (injected garble/reorder) never enter the log.
      if (update.status != serve::StatusCode::kOk) continue;
      if (!update.end_of_stream) body += line + "\n";
    }
    outcome.accepted_log = "m3dfl-faillog 1\n" + body + "end\n";
    const serve::DiagnosisResult result =
        sessions.finalize(ticket.session_id).get();
    outcome.status = result.status;
    if (result.status == serve::StatusCode::kOk) {
      outcome.result_text = serve::result_to_string(design_->netlist(), result);
    }
    return outcome;
  }

  static std::shared_ptr<const Design> design_;
  static DiagnosisFramework* framework_;
  static std::vector<FailureLog>* logs_;
};

std::shared_ptr<const Design> StreamChaosTest::design_;
DiagnosisFramework* StreamChaosTest::framework_ = nullptr;
std::vector<FailureLog>* StreamChaosTest::logs_ = nullptr;

TEST_F(StreamChaosTest, ConcurrentSessionsResolveExactlyOnceWithExactCounts) {
  auto injector = std::make_shared<serve::FaultInjector>(0xD15EA5E);
  arm_stream_seams(*injector);
  serve::ServiceOptions options;
  options.num_threads = 4;
  options.fault_injector = injector;
  serve::DiagnosisService service = make_service(options);
  const std::int32_t design_id = service.register_design(design_);
  serve::SessionManagerOptions mgr;
  mgr.max_sessions = 32;  // never under table pressure here
  serve::SessionManager sessions(service, mgr);

  // A clean twin (no injector) provides the batch reference for whatever
  // subset of records each chaotic session ended up accepting.
  serve::ServiceOptions clean_options;
  clean_options.num_threads = 1;
  serve::DiagnosisService clean = make_service(clean_options);
  const std::int32_t clean_id = clean.register_design(design_);

  constexpr int kFeeders = 4;
  std::vector<SessionOutcome> outcomes(logs_->size());
  std::vector<std::thread> feeders;
  std::mutex expect_mu;  // gtest EXPECTs inside drive_session
  for (int f = 0; f < kFeeders; ++f) {
    feeders.emplace_back([&, f] {
      for (std::size_t i = f; i < logs_->size(); i += kFeeders) {
        SessionOutcome outcome =
            drive_session(sessions, design_id, (*logs_)[i]);
        std::lock_guard<std::mutex> lock(expect_mu);
        outcomes[i] = std::move(outcome);
      }
    });
  }
  for (std::thread& t : feeders) t.join();

  // Every session resolved; none live, none wedged.
  EXPECT_EQ(sessions.live(), 0u);
  const serve::Metrics& m = service.metrics();
  const std::int64_t opened = m.sessions_opened.load();
  EXPECT_EQ(opened, static_cast<std::int64_t>(logs_->size()));
  EXPECT_EQ(m.sessions_evicted.load(), 0);
  EXPECT_EQ(m.sessions_shed.load(), 0);
  // The accounting partition, exactly.
  EXPECT_EQ(opened, m.sessions_finalized.load() + m.sessions_expired.load());
  // Expiry only comes from injected stalls/disconnects (deadlines off).
  EXPECT_EQ(m.sessions_expired.load(),
            injector->triggered(serve::Seam::kStreamStall) +
                injector->triggered(serve::Seam::kStreamDisconnect));
  // Rejections only come from injected garbles/reorders/malformed bytes
  // (feeds are clean, and every malformed-bytes shape is invalid by
  // construction, so its trigger count contributes exactly).
  EXPECT_EQ(m.stream_records_rejected.load(),
            injector->triggered(serve::Seam::kStreamGarble) +
                injector->triggered(serve::Seam::kStreamReorder) +
                injector->triggered(serve::Seam::kStreamMalformedBytes));

  // Status partition + byte-identity of every kOk result against the clean
  // batch reference over exactly the accepted records.
  std::int64_t finalized_ok = 0;
  std::int64_t died = 0;
  for (const SessionOutcome& outcome : outcomes) {
    if (outcome.died_mid_feed) {
      ++died;
      EXPECT_EQ(outcome.status, serve::StatusCode::kSessionExpired);
      continue;
    }
    const FailureLog accepted =
        failure_log_from_string(outcome.accepted_log);
    const serve::DiagnosisResult reference =
        clean.diagnose(clean_id, accepted);
    EXPECT_EQ(outcome.status, reference.status);
    if (outcome.status == serve::StatusCode::kOk) {
      ++finalized_ok;
      EXPECT_EQ(outcome.result_text,
                serve::result_to_string(design_->netlist(), reference));
    }
  }
  EXPECT_EQ(died, m.sessions_expired.load());
  EXPECT_EQ(m.sessions_finalized.load(),
            static_cast<std::int64_t>(logs_->size()) - died);
  // Chaos at these rates must leave most sessions completing normally.
  EXPECT_GT(finalized_ok, 0);
  service.shutdown();
  clean.shutdown();
}

TEST_F(StreamChaosTest, SingleThreadedRerunReproducesCountsExactly) {
  const auto run = [&] {
    auto injector = std::make_shared<serve::FaultInjector>(0xBEEFCAFE);
    arm_stream_seams(*injector);
    serve::ServiceOptions options;
    options.num_threads = 1;
    options.fault_injector = injector;
    serve::DiagnosisService service = make_service(options);
    const std::int32_t design_id = service.register_design(design_);
    serve::SessionManager sessions(service);

    std::string transcript;
    for (const FailureLog& log : *logs_) {
      const SessionOutcome outcome = drive_session(sessions, design_id, log);
      transcript += status_name(outcome.status);
      transcript += "|";
      transcript += outcome.result_text;
      transcript += "\n";
    }
    transcript += "rejected=" +
                  std::to_string(service.metrics()
                                     .stream_records_rejected.load());
    transcript += " expired=" +
                  std::to_string(service.metrics().sessions_expired.load());
    for (const serve::Seam seam :
         {serve::Seam::kStreamStall, serve::Seam::kStreamGarble,
          serve::Seam::kStreamReorder, serve::Seam::kStreamDisconnect,
          serve::Seam::kStreamMalformedBytes}) {
      transcript += " t" + std::to_string(static_cast<int>(seam)) + "=" +
                    std::to_string(injector->triggered(seam));
    }
    service.shutdown();
    return transcript;
  };
  const std::string first = run();
  const std::string second = run();
  EXPECT_EQ(first, second);
}

// The adversarial-input seam: each trigger swaps the tester's line for
// deterministic malformed bytes (NUL-injected kind, trailing garbage after
// 'end', a line past the byte cap, a pattern past the numeric cap — the
// shape cycles with the call count, so four triggers cross all four).  The
// contract: every trigger resolves as a line-cited kInvalidInput rejection
// through the REAL parser and limit guardrails, accounting is exact, and
// the session survives to finalize.
TEST_F(StreamChaosTest, MalformedBytesSeamRejectsAllShapesThroughRealParsers) {
  auto injector = std::make_shared<serve::FaultInjector>(0xFEEDB17E);
  injector->arm_nth(serve::Seam::kStreamMalformedBytes, {1, 2, 3, 4});
  serve::ServiceOptions options;
  options.num_threads = 1;
  options.fault_injector = injector;
  serve::DiagnosisService service = make_service(options);
  const std::int32_t design_id = service.register_design(design_);
  serve::SessionManager sessions(service);

  // A feed with at least five lines: the first four are replaced (one per
  // shape) and the tail — including the real 'end' — arrives clean.
  const FailureLog* log = nullptr;
  for (const FailureLog& candidate : *logs_) {
    if (feed_lines(candidate).size() >= 5) {
      log = &candidate;
      break;
    }
  }
  ASSERT_NE(log, nullptr);

  const serve::SessionTicket ticket = sessions.begin_diagnosis(design_id);
  ASSERT_TRUE(ticket.admitted());
  std::int64_t rejected = 0;
  for (const std::string& line : feed_lines(*log)) {
    const serve::SessionUpdate update =
        sessions.add_response(ticket.session_id, line);
    ASSERT_NE(update.status, serve::StatusCode::kSessionExpired);
    if (update.status == serve::StatusCode::kInvalidInput) {
      ++rejected;
      // The rejection came from the real record parser, line-cited.
      EXPECT_NE(update.message.find("failure log line"), std::string::npos)
          << update.message;
    } else {
      EXPECT_EQ(update.status, serve::StatusCode::kOk) << update.message;
    }
  }
  // Exact accounting: triggers == kInvalidInput rejections == the metric.
  EXPECT_EQ(injector->triggered(serve::Seam::kStreamMalformedBytes), 4);
  EXPECT_EQ(rejected, 4);
  EXPECT_EQ(service.metrics().stream_records_rejected.load(), 4);
  // The session survives the garbage and resolves exactly once.
  const serve::DiagnosisResult result =
      sessions.finalize(ticket.session_id).get();
  EXPECT_NE(result.status, serve::StatusCode::kSessionExpired);
  EXPECT_EQ(sessions.live(), 0u);
  EXPECT_EQ(service.metrics().sessions_finalized.load(), 1);
  service.shutdown();
}

}  // namespace
}  // namespace m3dfl
