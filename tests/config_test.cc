#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/config.h"
#include "util/error.h"

namespace m3dfl {
namespace {

TEST(ConfigTest, FourProfilesFourConfigs) {
  EXPECT_EQ(all_profiles().size(), 4u);
  EXPECT_EQ(all_configs().size(), 4u);
  std::set<std::string> names;
  for (Profile p : all_profiles()) names.insert(profile_name(p));
  EXPECT_EQ(names.size(), 4u);
  std::set<std::string> configs;
  for (DesignConfig c : all_configs()) configs.insert(config_name(c));
  EXPECT_EQ(configs.size(), 4u);
}

TEST(ConfigTest, ProfileSizesOrderedLikeThePaper) {
  // Table III ordering: AES < Tate < netcard < leon3mp by gate count;
  // netcard has the largest pattern budget.
  const ProfileSpec aes = profile_spec(Profile::kAes);
  const ProfileSpec tate = profile_spec(Profile::kTate);
  const ProfileSpec netcard = profile_spec(Profile::kNetcard);
  const ProfileSpec leon = profile_spec(Profile::kLeon3mp);
  EXPECT_LT(aes.gen.num_gates, tate.gen.num_gates);
  EXPECT_LT(tate.gen.num_gates, netcard.gen.num_gates);
  EXPECT_LT(netcard.gen.num_gates, leon.gen.num_gates);
  EXPECT_GT(netcard.atpg.max_patterns, aes.atpg.max_patterns);
  EXPECT_GT(netcard.atpg.max_patterns, leon.atpg.max_patterns);
}

TEST(ConfigTest, Syn2ReelaboratesDifferently) {
  const ProfileSpec spec = profile_spec(Profile::kAes);
  const GeneratorConfig syn1 = generator_for(spec, DesignConfig::kSyn1);
  const GeneratorConfig syn2 = generator_for(spec, DesignConfig::kSyn2);
  EXPECT_NE(syn1.seed, syn2.seed);
  EXPECT_GT(syn2.target_depth, syn1.target_depth);
  // TPI and Par reuse the Syn-1 elaboration.
  EXPECT_EQ(generator_for(spec, DesignConfig::kTpi).seed, syn1.seed);
  EXPECT_EQ(generator_for(spec, DesignConfig::kPar).seed, syn1.seed);
}

TEST(ConfigTest, ParUsesDifferentPartitioner) {
  const ProfileSpec spec = profile_spec(Profile::kTate);
  EXPECT_EQ(partition_for(spec, DesignConfig::kSyn1).method,
            PartitionMethod::kMinCut);
  EXPECT_EQ(partition_for(spec, DesignConfig::kPar).method,
            PartitionMethod::kLevelDriven);
}

TEST(ConfigTest, TpiBudgetIsOnePercent) {
  for (Profile p : all_profiles()) {
    EXPECT_DOUBLE_EQ(profile_spec(p).tpi.fraction, 0.01);
  }
}

TEST(ConfigTest, LargeProgramsHaveShallowFailMemory) {
  // The netcard/leon3mp production programs bound fail logging (DESIGN.md);
  // the small programs log everything.
  EXPECT_EQ(profile_spec(Profile::kAes).fail_memory_patterns, 0);
  EXPECT_EQ(profile_spec(Profile::kTate).fail_memory_patterns, 0);
  EXPECT_GT(profile_spec(Profile::kNetcard).fail_memory_patterns, 0);
  EXPECT_GT(profile_spec(Profile::kLeon3mp).fail_memory_patterns, 0);
  EXPECT_LE(profile_spec(Profile::kNetcard).fail_memory_patterns,
            profile_spec(Profile::kLeon3mp).fail_memory_patterns);
}

TEST(ConfigTest, ParseProfileAcceptsLowercaseNames) {
  EXPECT_EQ(parse_profile("aes"), Profile::kAes);
  EXPECT_EQ(parse_profile("tate"), Profile::kTate);
  EXPECT_EQ(parse_profile("netcard"), Profile::kNetcard);
  EXPECT_EQ(parse_profile("leon3mp"), Profile::kLeon3mp);
  try {
    parse_profile("aes2");
    FAIL() << "unknown profile accepted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("aes2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("leon3mp"), std::string::npos);
  }
}

TEST(ConfigTest, ParseConfigNamesAllFour) {
  EXPECT_EQ(parse_config("syn1"), DesignConfig::kSyn1);
  EXPECT_EQ(parse_config("tpi"), DesignConfig::kTpi);
  EXPECT_EQ(parse_config("syn2"), DesignConfig::kSyn2);
  EXPECT_EQ(parse_config("par"), DesignConfig::kPar);
  EXPECT_THROW(parse_config("Syn-1"), Error);
}

// ---- read_train_options: happy path ----------------------------------------

TrainOptions read_opts(const std::string& text) {
  std::istringstream is(text);
  return read_train_options(is, {}, "train.cfg");
}

TEST(ConfigTest, TrainOptionsReadsAllKeys) {
  const TrainOptions out = read_opts(
      "# training config\n"
      "epochs 42\n"
      "batch_size 4\n"
      "lr 0.25\n"
      "seed 99\n"
      "min_improvement 0.001\n"
      "patience 7\n");
  EXPECT_EQ(out.epochs, 42);
  EXPECT_EQ(out.batch_size, 4);
  EXPECT_DOUBLE_EQ(out.lr, 0.25);
  EXPECT_EQ(out.seed, 99u);
  EXPECT_DOUBLE_EQ(out.min_improvement, 0.001);
  EXPECT_EQ(out.patience, 7);
}

TEST(ConfigTest, TrainOptionsUnlistedKeysKeepDefaults) {
  TrainOptions defaults;
  defaults.epochs = 123;
  std::istringstream is("lr 0.5\n");
  const TrainOptions out = read_train_options(is, defaults, "train.cfg");
  EXPECT_EQ(out.epochs, 123);
  EXPECT_DOUBLE_EQ(out.lr, 0.5);
}

TEST(ConfigTest, TrainOptionsEmptyAndCommentOnlyStreamsAreFine) {
  EXPECT_EQ(read_opts("").epochs, TrainOptions{}.epochs);
  EXPECT_EQ(read_opts("# just a comment\n\n   \n").epochs,
            TrainOptions{}.epochs);
}

// ---- read_train_options: malformed-input corpus -----------------------------

std::string opts_error(const std::string& text) {
  try {
    read_opts(text);
  } catch (const Error& e) {
    return e.what();
  }
  ADD_FAILURE() << "malformed train config accepted:\n" << text;
  return {};
}

TEST(ConfigTest, TrainOptionsRejectsUnknownKey) {
  const std::string msg = opts_error("learning_rate 0.1\n");
  EXPECT_NE(msg.find("train.cfg line 1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("unknown key 'learning_rate'"), std::string::npos)
      << msg;
  EXPECT_NE(msg.find("epochs"), std::string::npos) << msg;  // lists options
}

TEST(ConfigTest, TrainOptionsRejectsDuplicateKey) {
  const std::string msg = opts_error("epochs 5\nepochs 6\n");
  EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
  EXPECT_NE(msg.find("duplicate key 'epochs'"), std::string::npos) << msg;
}

TEST(ConfigTest, TrainOptionsRejectsMissingValue) {
  const std::string msg = opts_error("epochs\n");
  EXPECT_NE(msg.find("missing value"), std::string::npos) << msg;
}

TEST(ConfigTest, TrainOptionsRejectsTrailingGarbage) {
  const std::string msg = opts_error("epochs 5 6\n");
  EXPECT_NE(msg.find("trailing garbage '6'"), std::string::npos) << msg;
}

TEST(ConfigTest, TrainOptionsRejectsNonNumericValues) {
  EXPECT_NE(opts_error("epochs ten\n").find("non-numeric"),
            std::string::npos);
  EXPECT_NE(opts_error("lr fast\n").find("non-numeric"), std::string::npos);
  EXPECT_NE(opts_error("epochs 5x\n").find("non-numeric"),
            std::string::npos);
  EXPECT_NE(opts_error("seed 0x10\n").find("non-numeric"),
            std::string::npos);
}

TEST(ConfigTest, TrainOptionsRejectsOutOfRangeValues) {
  EXPECT_NE(opts_error("epochs 0\n").find("epochs must be >= 1"),
            std::string::npos);
  EXPECT_NE(opts_error("batch_size 0\n").find("batch_size must be >= 1"),
            std::string::npos);
  EXPECT_NE(opts_error("lr 0\n").find("lr must be > 0"), std::string::npos);
  EXPECT_NE(opts_error("lr -1\n").find("lr must be > 0"), std::string::npos);
  EXPECT_NE(
      opts_error("min_improvement -0.5\n").find("min_improvement must be"),
      std::string::npos);
  EXPECT_NE(opts_error("patience 0\n").find("patience must be >= 1"),
            std::string::npos);
}

// ---- read_train_options: ParseLimits guardrails -----------------------------

std::string opts_error_with(const std::string& text,
                            const ParseLimits& limits) {
  std::istringstream is(text);
  try {
    read_train_options(is, {}, "train.cfg", limits);
  } catch (const Error& e) {
    return e.what();
  }
  ADD_FAILURE() << "adversarial train config accepted:\n" << text;
  return {};
}

TEST(ConfigLimitsTest, OverlongLineCited) {
  ParseLimits limits;
  limits.max_line_bytes = 32;
  const std::string msg = opts_error_with(
      "epochs 5\n# " + std::string(200, 'x') + "\n", limits);
  EXPECT_NE(msg.find("train.cfg line 2"), std::string::npos) << msg;
  EXPECT_NE(msg.find("limit exceeded: line bytes"), std::string::npos) << msg;
}

TEST(ConfigLimitsTest, LineCountCapCited) {
  ParseLimits limits;
  limits.max_config_lines = 3;
  const std::string msg =
      opts_error_with("# a\n# b\n# c\n# d\n", limits);
  EXPECT_NE(msg.find("train.cfg line 4"), std::string::npos) << msg;
  EXPECT_NE(msg.find("limit exceeded: config lines"), std::string::npos)
      << msg;
}

TEST(ConfigLimitsTest, DefaultsClearRealConfigs) {
  // The defaults are a DoS guardrail, not a policy on legitimate files: a
  // full config with comments must pass untouched.
  EXPECT_EQ(read_opts("# comment\nepochs 9\nlr 0.5\n").epochs, 9);
}

}  // namespace
}  // namespace m3dfl
