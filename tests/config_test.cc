#include <set>

#include <gtest/gtest.h>

#include "core/config.h"

namespace m3dfl {
namespace {

TEST(ConfigTest, FourProfilesFourConfigs) {
  EXPECT_EQ(all_profiles().size(), 4u);
  EXPECT_EQ(all_configs().size(), 4u);
  std::set<std::string> names;
  for (Profile p : all_profiles()) names.insert(profile_name(p));
  EXPECT_EQ(names.size(), 4u);
  std::set<std::string> configs;
  for (DesignConfig c : all_configs()) configs.insert(config_name(c));
  EXPECT_EQ(configs.size(), 4u);
}

TEST(ConfigTest, ProfileSizesOrderedLikeThePaper) {
  // Table III ordering: AES < Tate < netcard < leon3mp by gate count;
  // netcard has the largest pattern budget.
  const ProfileSpec aes = profile_spec(Profile::kAes);
  const ProfileSpec tate = profile_spec(Profile::kTate);
  const ProfileSpec netcard = profile_spec(Profile::kNetcard);
  const ProfileSpec leon = profile_spec(Profile::kLeon3mp);
  EXPECT_LT(aes.gen.num_gates, tate.gen.num_gates);
  EXPECT_LT(tate.gen.num_gates, netcard.gen.num_gates);
  EXPECT_LT(netcard.gen.num_gates, leon.gen.num_gates);
  EXPECT_GT(netcard.atpg.max_patterns, aes.atpg.max_patterns);
  EXPECT_GT(netcard.atpg.max_patterns, leon.atpg.max_patterns);
}

TEST(ConfigTest, Syn2ReelaboratesDifferently) {
  const ProfileSpec spec = profile_spec(Profile::kAes);
  const GeneratorConfig syn1 = generator_for(spec, DesignConfig::kSyn1);
  const GeneratorConfig syn2 = generator_for(spec, DesignConfig::kSyn2);
  EXPECT_NE(syn1.seed, syn2.seed);
  EXPECT_GT(syn2.target_depth, syn1.target_depth);
  // TPI and Par reuse the Syn-1 elaboration.
  EXPECT_EQ(generator_for(spec, DesignConfig::kTpi).seed, syn1.seed);
  EXPECT_EQ(generator_for(spec, DesignConfig::kPar).seed, syn1.seed);
}

TEST(ConfigTest, ParUsesDifferentPartitioner) {
  const ProfileSpec spec = profile_spec(Profile::kTate);
  EXPECT_EQ(partition_for(spec, DesignConfig::kSyn1).method,
            PartitionMethod::kMinCut);
  EXPECT_EQ(partition_for(spec, DesignConfig::kPar).method,
            PartitionMethod::kLevelDriven);
}

TEST(ConfigTest, TpiBudgetIsOnePercent) {
  for (Profile p : all_profiles()) {
    EXPECT_DOUBLE_EQ(profile_spec(p).tpi.fraction, 0.01);
  }
}

TEST(ConfigTest, LargeProgramsHaveShallowFailMemory) {
  // The netcard/leon3mp production programs bound fail logging (DESIGN.md);
  // the small programs log everything.
  EXPECT_EQ(profile_spec(Profile::kAes).fail_memory_patterns, 0);
  EXPECT_EQ(profile_spec(Profile::kTate).fail_memory_patterns, 0);
  EXPECT_GT(profile_spec(Profile::kNetcard).fail_memory_patterns, 0);
  EXPECT_GT(profile_spec(Profile::kLeon3mp).fail_memory_patterns, 0);
  EXPECT_LE(profile_spec(Profile::kNetcard).fail_memory_patterns,
            profile_spec(Profile::kLeon3mp).fail_memory_patterns);
}

}  // namespace
}  // namespace m3dfl
