#include <set>

#include <gtest/gtest.h>

#include "test_helpers.h"
#include "util/error.h"

namespace m3dfl {
namespace {

using testing::TinyCircuit;
using testing::small_netlist;

TEST(NetlistTest, TinyCircuitClassification) {
  TinyCircuit c;
  const Netlist& nl = c.netlist;
  EXPECT_EQ(nl.num_gates(), 7);
  EXPECT_EQ(nl.num_nets(), 6);
  EXPECT_EQ(nl.primary_inputs().size(), 2u);
  EXPECT_EQ(nl.primary_outputs().size(), 1u);
  EXPECT_EQ(nl.flops().size(), 1u);
  EXPECT_EQ(nl.num_logic_gates(), 4);  // ff0, u0, u1, u2
}

TEST(NetlistTest, SinksDerivedFromFanins) {
  TinyCircuit c;
  const Net& n4 = c.netlist.net(c.n4);
  EXPECT_EQ(n4.driver, c.u0);
  ASSERT_EQ(n4.sinks.size(), 2u);
  // u1 input 0 and u2 input 0 read n4.
  std::set<GateId> sinks;
  for (const PinRef& s : n4.sinks) sinks.insert(s.gate);
  EXPECT_TRUE(sinks.count(c.u1));
  EXPECT_TRUE(sinks.count(c.u2));
}

TEST(NetlistTest, TopoOrderRespectsDependencies) {
  TinyCircuit c;
  const auto& topo = c.netlist.topo_order();
  EXPECT_EQ(topo.size(), 3u);  // u0, u1, u2
  // u0 must precede u1 and u2.
  auto pos = [&](GateId g) {
    for (std::size_t i = 0; i < topo.size(); ++i) {
      if (topo[i] == g) return static_cast<int>(i);
    }
    return -1;
  };
  EXPECT_LT(pos(c.u0), pos(c.u1));
  EXPECT_LT(pos(c.u0), pos(c.u2));
}

TEST(NetlistTest, Levels) {
  TinyCircuit c;
  EXPECT_EQ(c.netlist.level(c.pi0), 0);
  EXPECT_EQ(c.netlist.level(c.ff0), 3);  // D-cone depth: u0(1) -> u1(2) -> D(3)
  EXPECT_EQ(c.netlist.level(c.u0), 1);
  EXPECT_EQ(c.netlist.level(c.u1), 2);
  EXPECT_EQ(c.netlist.level(c.u2), 2);
  EXPECT_EQ(c.netlist.level(c.po0), 3);
  EXPECT_EQ(c.netlist.max_level(), 3);
}

TEST(NetlistTest, PinEnumerationRoundTrip) {
  TinyCircuit c;
  const Netlist& nl = c.netlist;
  // 7 gates: pi (1 pin each x2), ff (2), u0 (3), u1 (2), u2 (3), po (1).
  EXPECT_EQ(nl.num_pins(), 2 + 2 + 3 + 2 + 3 + 1);
  std::set<PinId> seen;
  for (PinId p = 0; p < nl.num_pins(); ++p) {
    const PinRef ref = nl.pin_ref(p);
    EXPECT_EQ(nl.pin_id(ref), p);
    seen.insert(p);
  }
  EXPECT_EQ(static_cast<PinId>(seen.size()), nl.num_pins());
}

TEST(NetlistTest, PinNets) {
  TinyCircuit c;
  const Netlist& nl = c.netlist;
  EXPECT_EQ(nl.pin_net(nl.output_pin(c.u0)), c.n4);
  EXPECT_EQ(nl.pin_net(nl.input_pin(c.u0, 0)), c.n_pi0);
  EXPECT_EQ(nl.pin_net(nl.input_pin(c.u0, 1)), c.n_pi1);
  EXPECT_EQ(nl.pin_net(nl.input_pin(c.ff0, 0)), c.n5);
  EXPECT_EQ(nl.pin_net(nl.input_pin(c.po0, 0)), c.n6);
}

TEST(NetlistTest, PinNames) {
  TinyCircuit c;
  EXPECT_EQ(c.netlist.pin_name(c.netlist.output_pin(c.u0)), "u0.Y");
  EXPECT_EQ(c.netlist.pin_name(c.netlist.input_pin(c.u2, 1)), "u2.A1");
}

TEST(NetlistTest, FinalizeRejectsUndrivenNet) {
  Netlist nl;
  const GateId g = nl.add_gate(GateType::kBuf);
  const NetId floating = nl.add_net();
  const NetId out = nl.add_net();
  nl.connect_input(g, floating);
  nl.set_output(g, out);
  EXPECT_THROW(nl.finalize(), Error);
}

TEST(NetlistTest, FinalizeRejectsBadArity) {
  Netlist nl;
  const GateId pi = nl.add_gate(GateType::kPrimaryInput);
  const NetId n = nl.add_net();
  nl.set_output(pi, n);
  const GateId g = nl.add_gate(GateType::kAnd);  // needs >= 2 inputs
  const NetId out = nl.add_net();
  nl.set_output(g, out);
  nl.connect_input(g, n);
  EXPECT_THROW(nl.finalize(), Error);
}

TEST(NetlistTest, FinalizeRejectsCombinationalLoop) {
  Netlist nl;
  const GateId a = nl.add_gate(GateType::kInv);
  const GateId b = nl.add_gate(GateType::kInv);
  const NetId na = nl.add_net();
  const NetId nb = nl.add_net();
  nl.set_output(a, na);
  nl.set_output(b, nb);
  nl.connect_input(a, nb);
  nl.connect_input(b, na);
  EXPECT_THROW(nl.finalize(), Error);
}

TEST(NetlistTest, FlopBreaksCycle) {
  // Flop Q feeding logic that feeds the flop D is sequential, not a loop.
  Netlist nl;
  const GateId ff = nl.add_gate(GateType::kScanFlop);
  const GateId inv = nl.add_gate(GateType::kInv);
  const NetId q = nl.add_net();
  const NetId d = nl.add_net();
  nl.set_output(ff, q);
  nl.set_output(inv, d);
  nl.connect_input(inv, q);
  nl.connect_input(ff, d);
  EXPECT_NO_THROW(nl.finalize());
}

TEST(NetlistTest, RejectsDoubleDriver) {
  Netlist nl;
  const GateId a = nl.add_gate(GateType::kPrimaryInput);
  const GateId b = nl.add_gate(GateType::kPrimaryInput);
  const NetId n = nl.add_net();
  nl.set_output(a, n);
  EXPECT_THROW(nl.set_output(b, n), Error);
}

TEST(NetlistTest, RejectsTooManyInputs) {
  Netlist nl;
  const GateId pi = nl.add_gate(GateType::kPrimaryInput);
  const NetId n = nl.add_net();
  nl.set_output(pi, n);
  const GateId inv = nl.add_gate(GateType::kInv);
  nl.connect_input(inv, n);
  EXPECT_THROW(nl.connect_input(inv, n), Error);
}

TEST(NetlistTest, DefinalizeAllowsRewiring) {
  TinyCircuit c;
  Netlist& nl = c.netlist;
  EXPECT_TRUE(nl.finalized());
  nl.definalize();
  EXPECT_FALSE(nl.finalized());
  // Splice a buffer into n4 -> u1.
  const GateId buf = nl.add_gate(GateType::kBuf);
  const NetId nb = nl.add_net();
  nl.set_output(buf, nb);
  nl.connect_input(buf, c.n4);
  nl.reconnect_input(c.u1, 0, nb);
  nl.finalize();
  EXPECT_EQ(nl.gate(c.u1).fanin[0], nb);
  EXPECT_EQ(nl.level(c.u1), 3);  // one level deeper through the buffer
}

TEST(NetlistTest, QueriesRequireFinalized) {
  Netlist nl;
  nl.add_gate(GateType::kPrimaryInput);
  EXPECT_THROW(nl.output_pin(0), Error);
}

// Property sweep over generated netlists.
class NetlistProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NetlistProperty, TopoOrderIsValidSchedule) {
  const Netlist nl = small_netlist(GetParam());
  std::vector<char> ready(static_cast<std::size_t>(nl.num_nets()), 0);
  for (GateId g : nl.primary_inputs()) {
    ready[static_cast<std::size_t>(nl.gate(g).fanout)] = 1;
  }
  for (GateId g : nl.flops()) {
    ready[static_cast<std::size_t>(nl.gate(g).fanout)] = 1;
  }
  for (GateId g : nl.topo_order()) {
    for (NetId in : nl.gate(g).fanin) {
      EXPECT_TRUE(ready[static_cast<std::size_t>(in)])
          << "gate scheduled before its input";
    }
    ready[static_cast<std::size_t>(nl.gate(g).fanout)] = 1;
  }
}

TEST_P(NetlistProperty, LevelsMonotoneAlongEdges) {
  const Netlist nl = small_netlist(GetParam());
  for (GateId g : nl.topo_order()) {
    for (NetId in : nl.gate(g).fanin) {
      const GateId driver = nl.net(in).driver;
      // Flop levels describe their D-cone depth, not their (source) Q pin,
      // so monotonicity only holds along combinational drivers and PIs.
      if (nl.gate(driver).type == GateType::kScanFlop) continue;
      EXPECT_GT(nl.level(g), nl.level(driver));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetlistProperty,
                         ::testing::Values(1, 2, 3, 17, 99));

}  // namespace
}  // namespace m3dfl
