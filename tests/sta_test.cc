// m3dfl::sta engine tests.
//
// Four layers of coverage:
//  * hand-computed timing on TinyCircuit: arrival/required/slack, WNS/TNS,
//    auto vs explicit clocks, and the exact K-longest-path enumeration
//    (complete universe of five paths, so the ranking is fully checkable);
//  * structural collapsing on a fanout-free chain (16 faults -> 2 classes,
//    inverter direction flip) and dominance on AND inputs;
//  * untestability: scan-blocked cones and the slack-margin criterion;
//  * differential proofs that the opt-in collapsed paths in atpg/coverage
//    and diag/atpg_diagnosis are byte-identical to the full runs, plus the
//    trainer's sta preflight and the timing lint pass with exact locations.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "atpg/coverage.h"
#include "core/checkpoint.h"
#include "core/framework.h"
#include "diag/atpg_diagnosis.h"
#include "diag/datagen.h"
#include "lint/checks.h"
#include "sta/collapse.h"
#include "sta/lint_bridge.h"
#include "sta/sta.h"
#include "test_helpers.h"

namespace m3dfl {
namespace {

using sta::CollapsedFaults;
using sta::StaOptions;
using sta::TimingAnalysis;
using sta::TimingPath;
using sta::UntestableFault;
using sta::UntestableReason;

// Round-number delay model used for every hand-computed expectation below:
// AND 40, INV 20, XOR 60, flop clock-to-Q 50, net hop 5, no tier derating.
sta::DelayModel test_model() {
  sta::DelayModel m;
  m.gate_delay_ps.fill(0.0);
  m.gate_delay_ps[static_cast<std::size_t>(GateType::kBuf)] = 30.0;
  m.gate_delay_ps[static_cast<std::size_t>(GateType::kInv)] = 20.0;
  m.gate_delay_ps[static_cast<std::size_t>(GateType::kAnd)] = 40.0;
  m.gate_delay_ps[static_cast<std::size_t>(GateType::kXor)] = 60.0;
  m.gate_delay_ps[static_cast<std::size_t>(GateType::kScanFlop)] = 50.0;
  m.tier_factor = {1.0, 1.0};
  m.net_delay_ps = 5.0;
  m.miv_penalty_ps = 10.0;
  return m;
}

StaOptions tiny_options(double clock_ps = 0.0) {
  StaOptions options;
  options.model = test_model();
  options.clock_ps = clock_ps;
  return options;
}

std::vector<double> delays_of(const std::vector<TimingPath>& paths) {
  std::vector<double> d;
  for (const TimingPath& p : paths) d.push_back(p.delay_ps);
  return d;
}

// TinyCircuit arrivals under test_model(): u0.Y = 45, ff0.D = 75,
// u2.Y = 115, po0.A0 = 120 (critical, through ff0.Q at clock-to-Q 50).

TEST(StaTest, ArrivalSlackAndAutoClock) {
  const testing::TinyCircuit c;
  const TimingAnalysis sta(c.netlist, nullptr, nullptr, tiny_options());

  EXPECT_DOUBLE_EQ(sta.arrival_ps(c.netlist.output_pin(c.u0)), 45.0);
  EXPECT_DOUBLE_EQ(sta.arrival_ps(c.netlist.input_pin(c.ff0, 0)), 75.0);
  EXPECT_DOUBLE_EQ(sta.arrival_ps(c.netlist.output_pin(c.u2)), 115.0);
  EXPECT_DOUBLE_EQ(sta.arrival_ps(c.netlist.input_pin(c.po0, 0)), 120.0);
  EXPECT_DOUBLE_EQ(sta.critical_delay_ps(), 120.0);

  // Auto clock: 1.10 guard band over the critical path.
  EXPECT_DOUBLE_EQ(sta.clock_ps(), 132.0);
  EXPECT_DOUBLE_EQ(sta.slack_ps(c.netlist.input_pin(c.ff0, 0)), 57.0);
  EXPECT_DOUBLE_EQ(sta.slack_ps(c.netlist.input_pin(c.po0, 0)), 12.0);
  EXPECT_DOUBLE_EQ(sta.wns_ps(), 12.0);
  EXPECT_DOUBLE_EQ(sta.tns_ps(), 0.0);

  ASSERT_EQ(sta.endpoints().size(), 2u);  // ff0.D and po0.A0
  EXPECT_DOUBLE_EQ(sta.net_slack_ps(c.n6), 12.0);
}

TEST(StaTest, ExplicitClockNegativeSlack) {
  const testing::TinyCircuit c;
  const TimingAnalysis sta(c.netlist, nullptr, nullptr, tiny_options(100.0));

  EXPECT_DOUBLE_EQ(sta.clock_ps(), 100.0);
  EXPECT_DOUBLE_EQ(sta.slack_ps(c.netlist.input_pin(c.po0, 0)), -20.0);
  EXPECT_DOUBLE_EQ(sta.wns_ps(), -20.0);
  EXPECT_DOUBLE_EQ(sta.tns_ps(), -20.0);
}

TEST(StaTest, KLongestPathsEnumeratesExactly) {
  const testing::TinyCircuit c;
  const TimingAnalysis sta(c.netlist, nullptr, nullptr, tiny_options());

  // The complete path universe: ff0.Q->u2->po0 (120), pi{0,1}->u0->u2->po0
  // (115 each), pi{0,1}->u0->u1->ff0.D (75 each).
  const std::vector<TimingPath> all = sta.k_longest_paths(10);
  EXPECT_EQ(delays_of(all),
            (std::vector<double>{120.0, 115.0, 115.0, 75.0, 75.0}));
  for (const TimingPath& p : all) {
    EXPECT_DOUBLE_EQ(p.slack_ps, sta.clock_ps() - p.delay_ps);
  }

  // Truncation keeps the top k.
  EXPECT_EQ(delays_of(sta.k_longest_paths(3)),
            (std::vector<double>{120.0, 115.0, 115.0}));

  const TimingPath critical = sta.critical_path();
  EXPECT_DOUBLE_EQ(critical.delay_ps, 120.0);
  EXPECT_EQ(critical.pins,
            (std::vector<PinId>{c.netlist.output_pin(c.ff0),
                                c.netlist.input_pin(c.u2, 1),
                                c.netlist.output_pin(c.u2),
                                c.netlist.input_pin(c.po0, 0)}));
}

TEST(StaTest, KLongestPathsThroughPin) {
  const testing::TinyCircuit c;
  const TimingAnalysis sta(c.netlist, nullptr, nullptr, tiny_options());

  // Through u0.Y: two prefixes (pi0, pi1) x two suffixes (po0 via u2 at
  // 45+70, ff0.D via u1 at 45+30).
  const PinId through = c.netlist.output_pin(c.u0);
  const std::vector<TimingPath> paths =
      sta.k_longest_paths_through_pin(through, 10);
  EXPECT_EQ(delays_of(paths),
            (std::vector<double>{115.0, 115.0, 75.0, 75.0}));
  for (const TimingPath& p : paths) {
    EXPECT_EQ(std::count(p.pins.begin(), p.pins.end(), through), 1);
    // Complete paths: source output pin to capture endpoint.
    EXPECT_TRUE(p.pins.front() == c.netlist.output_pin(c.pi0) ||
                p.pins.front() == c.netlist.output_pin(c.pi1));
    EXPECT_TRUE(p.pins.back() == c.netlist.input_pin(c.po0, 0) ||
                p.pins.back() == c.netlist.input_pin(c.ff0, 0));
    EXPECT_DOUBLE_EQ(p.slack_ps, sta.clock_ps() - p.delay_ps);
  }

  EXPECT_EQ(delays_of(sta.k_longest_paths_through_pin(through, 2)),
            (std::vector<double>{115.0, 115.0}));
}

TEST(StaTest, MivPenaltyAndThroughMiv) {
  const testing::TinyCircuit c;
  // u1 alone on the top tier: n4 (u0->u1 branch) and n5 (u1->ff0) cross.
  TierAssignment tiers(std::vector<std::int8_t>(7, 0));
  tiers.set_tier(c.u1, kTopTier);
  const MivMap mivs(c.netlist, tiers);
  ASSERT_EQ(mivs.num_mivs(), 2);

  const TimingAnalysis sta(c.netlist, &tiers, &mivs, tiny_options());
  // Far branches pay the 10 ps MIV penalty: u1.A0 = 45+5+10, ff0.D =
  // 80+5+10; the same-tier u2 branch of n4 is unchanged.
  EXPECT_DOUBLE_EQ(sta.arrival_ps(c.netlist.input_pin(c.u1, 0)), 60.0);
  EXPECT_DOUBLE_EQ(sta.arrival_ps(c.netlist.input_pin(c.ff0, 0)), 95.0);
  EXPECT_DOUBLE_EQ(sta.arrival_ps(c.netlist.input_pin(c.u2, 0)), 50.0);
  EXPECT_DOUBLE_EQ(sta.critical_delay_ps(), 120.0);

  const MivId miv_n4 = mivs.miv_of_net(c.n4);
  ASSERT_NE(miv_n4, kNullMiv);
  const std::vector<TimingPath> through =
      sta.k_longest_paths_through_miv(miv_n4, 10);
  // Both sources reach ff0.D through the n4 far branch at 45+15+20+15 = 95.
  EXPECT_EQ(delays_of(through), (std::vector<double>{95.0, 95.0}));
  for (const TimingPath& p : through) {
    EXPECT_EQ(p.pins.back(), c.netlist.input_pin(c.ff0, 0));
  }
}

// pi0 -> BUF u0 -> dangling net; pi1 -> po0.  The u0 cone reaches no
// observation point, so its three pins are unobservable in both directions.
struct DeadCone {
  Netlist nl{"deadcone"};
  GateId pi0, pi1, u0, po0;

  DeadCone() {
    pi0 = nl.add_gate(GateType::kPrimaryInput, "pi0");
    pi1 = nl.add_gate(GateType::kPrimaryInput, "pi1");
    u0 = nl.add_gate(GateType::kBuf, "u0");
    po0 = nl.add_gate(GateType::kPrimaryOutput, "po0");
    const NetId n0 = nl.add_net("n0");
    const NetId n1 = nl.add_net("n1");
    const NetId n2 = nl.add_net("n2");
    nl.set_output(pi0, n0);
    nl.set_output(u0, n1);
    nl.set_output(pi1, n2);
    nl.connect_input(u0, n0);
    nl.connect_input(po0, n2);
    nl.finalize();
  }
};

TEST(StaTest, UnobservableConeIsUntestable) {
  const DeadCone c;
  const TimingAnalysis sta(c.nl, nullptr, nullptr, tiny_options());
  const std::vector<UntestableFault> untestable = sta.untestable_faults();

  // pi0.Y, u0.Y, u0.A0 x {STR, STF}.
  ASSERT_EQ(untestable.size(), 6u);
  for (const UntestableFault& u : untestable) {
    EXPECT_EQ(u.reason, UntestableReason::kUnobservable);
    EXPECT_GE(u.slack_ps, sta::kUnconstrainedPs / 2);
    const GateId g = c.nl.pin_gate(u.fault.pin);
    EXPECT_TRUE(g == c.pi0 || g == c.u0);
  }
}

TEST(StaTest, SlackMarginUntestability) {
  const testing::TinyCircuit c;
  StaOptions options = tiny_options(200.0);
  options.max_defect_ps = 100.0;
  const TimingAnalysis sta(c.netlist, nullptr, nullptr, options);
  const std::vector<UntestableFault> untestable = sta.untestable_faults();

  // Only the pins exclusive to the short ff0.D path have slack 125 > 100:
  // u1.A0, u1.Y, ff0.A0 (every pin shared with the po0 path caps at 85).
  ASSERT_EQ(untestable.size(), 6u);
  for (const UntestableFault& u : untestable) {
    EXPECT_EQ(u.reason, UntestableReason::kSlackMargin);
    EXPECT_DOUBLE_EQ(u.slack_ps, 125.0);
    const GateId g = c.netlist.pin_gate(u.fault.pin);
    EXPECT_TRUE(g == c.u1 || g == c.ff0) << fault_to_string(c.netlist,
                                                            u.fault);
  }
}

TEST(StaTest, MaxDefectZeroDisablesMargin) {
  const testing::TinyCircuit c;
  const TimingAnalysis sta(c.netlist, nullptr, nullptr, tiny_options(200.0));
  EXPECT_TRUE(sta.untestable_faults().empty());
}

// ---- Collapsing -------------------------------------------------------------

// pi -> BUF -> INV -> BUF -> po: one fanout-free chain, 8 pins, 16 faults.
struct Chain {
  Netlist nl{"chain"};
  GateId pi, b0, inv, b1, po;

  Chain() {
    pi = nl.add_gate(GateType::kPrimaryInput, "pi");
    b0 = nl.add_gate(GateType::kBuf, "b0");
    inv = nl.add_gate(GateType::kInv, "inv");
    b1 = nl.add_gate(GateType::kBuf, "b1");
    po = nl.add_gate(GateType::kPrimaryOutput, "po");
    const NetId n0 = nl.add_net();
    const NetId n1 = nl.add_net();
    const NetId n2 = nl.add_net();
    const NetId n3 = nl.add_net();
    nl.set_output(pi, n0);
    nl.set_output(b0, n1);
    nl.set_output(inv, n2);
    nl.set_output(b1, n3);
    nl.connect_input(b0, n0);
    nl.connect_input(inv, n1);
    nl.connect_input(b1, n2);
    nl.connect_input(po, n3);
    nl.finalize();
  }
};

TEST(CollapseTest, FanoutFreeChainCollapsesToTwoClasses) {
  const Chain c;
  const CollapsedFaults collapsed = sta::collapse_tdf_faults(c.nl);

  ASSERT_EQ(collapsed.full.size(), 16u);
  ASSERT_EQ(collapsed.class_of.size(), 16u);
  EXPECT_EQ(collapsed.num_classes(), 2);
  EXPECT_DOUBLE_EQ(collapsed.collapse_ratio(), 8.0);
  // Representatives are the lowest member indices: pi.Y STR and pi.Y STF.
  EXPECT_EQ(collapsed.class_representative,
            (std::vector<std::int32_t>{0, 1}));

  // The inverter flips the direction mid-chain: a slow rise at the chain
  // head is the same defect as a slow *fall* at the tail.
  const std::int32_t tail_stf =
      sta::tdf_fault_index(Fault::slow_to_fall(c.nl.input_pin(c.po, 0)));
  const std::int32_t tail_str =
      sta::tdf_fault_index(Fault::slow_to_rise(c.nl.input_pin(c.po, 0)));
  EXPECT_EQ(collapsed.class_of[static_cast<std::size_t>(tail_stf)],
            collapsed.class_of[0]);
  EXPECT_EQ(collapsed.class_of[static_cast<std::size_t>(tail_str)],
            collapsed.class_of[1]);
  // Every fault is in one of the two classes and each class holds 8.
  const auto in_class0 =
      std::count(collapsed.class_of.begin(), collapsed.class_of.end(), 0);
  EXPECT_EQ(in_class0, 8);
  EXPECT_EQ(collapsed.num_dominated(), 0);
}

TEST(CollapseTest, DominanceReportedOnAndInputs) {
  const testing::TinyCircuit c;
  const CollapsedFaults collapsed = sta::collapse_tdf_faults(c.netlist);

  // AND u0: the output fault dominates each input fault, same direction.
  const PinId out = c.netlist.output_pin(c.u0);
  for (int input = 0; input < 2; ++input) {
    const PinId in = c.netlist.input_pin(c.u0, input);
    EXPECT_EQ(collapsed.dominated_by[static_cast<std::size_t>(
                  sta::tdf_fault_index(Fault::slow_to_rise(in)))],
              sta::tdf_fault_index(Fault::slow_to_rise(out)));
    EXPECT_EQ(collapsed.dominated_by[static_cast<std::size_t>(
                  sta::tdf_fault_index(Fault::slow_to_fall(in)))],
              sta::tdf_fault_index(Fault::slow_to_fall(out)));
  }
  EXPECT_EQ(collapsed.num_dominated(), 4);
  // XOR inputs are never dominated (no controlling value).
  EXPECT_EQ(collapsed.dominated_by[static_cast<std::size_t>(
                sta::tdf_fault_index(
                    Fault::slow_to_rise(c.netlist.input_pin(c.u2, 0))))],
            -1);
}

TEST(CollapseTest, RepresentativesCoverEveryClassOnGeneratedDesign) {
  const Netlist nl = testing::small_netlist(11);
  const CollapsedFaults collapsed = sta::collapse_tdf_faults(nl);
  ASSERT_EQ(collapsed.full.size(),
            2 * static_cast<std::size_t>(nl.num_pins()));
  EXPECT_GT(collapsed.collapse_ratio(), 1.0);
  for (std::int32_t cls = 0; cls < collapsed.num_classes(); ++cls) {
    const std::int32_t rep =
        collapsed.class_representative[static_cast<std::size_t>(cls)];
    ASSERT_GE(rep, 0);
    ASSERT_LT(rep, static_cast<std::int32_t>(collapsed.full.size()));
    EXPECT_EQ(collapsed.class_of[static_cast<std::size_t>(rep)], cls);
    // Representative is the lowest member index.
    for (std::size_t i = 0; i < static_cast<std::size_t>(rep); ++i) {
      EXPECT_NE(collapsed.class_of[i], cls);
    }
  }
}

// ---- Differential proofs ----------------------------------------------------

TEST(CollapseDifferentialTest, CoverageIsByteIdentical) {
  const testing::SmallDesign d(7);

  CoverageOptions full;
  CoverageOptions collapsed;
  collapsed.collapse_faults = true;
  const CoverageResult a = measure_coverage(d.netlist, d.sim, full);
  const CoverageResult b = measure_coverage(d.netlist, d.sim, collapsed);
  EXPECT_EQ(a.num_faults, b.num_faults);
  EXPECT_EQ(a.num_detected, b.num_detected);

  // Sampling composes with collapsing: the sampled universe is drawn first,
  // so both runs grade the same fault subset.
  full.sample_faults = collapsed.sample_faults = 400;
  const CoverageResult sa = measure_coverage(d.netlist, d.sim, full);
  const CoverageResult sb = measure_coverage(d.netlist, d.sim, collapsed);
  EXPECT_EQ(sa.num_faults, sb.num_faults);
  EXPECT_EQ(sa.num_detected, sb.num_detected);
}

TEST(CollapseDifferentialTest, DiagnosisIsByteIdentical) {
  const testing::SmallDesign d(7);
  const DesignContext ctx = d.context();

  DataGenOptions gen;
  gen.num_samples = 6;
  gen.seed = 23;
  gen.miv_fault_prob = 0.3;
  const std::vector<Sample> samples = generate_samples(ctx, gen);
  ASSERT_FALSE(samples.empty());

  DiagnosisOptions full;
  DiagnosisOptions collapsed;
  collapsed.collapse_equivalent_candidates = true;
  for (const Sample& s : samples) {
    const DiagnosisReport a = diagnose_atpg(ctx, s.log, full);
    const DiagnosisReport b = diagnose_atpg(ctx, s.log, collapsed);
    ASSERT_EQ(a.candidates.size(), b.candidates.size());
    for (std::size_t i = 0; i < a.candidates.size(); ++i) {
      EXPECT_EQ(a.candidates[i].fault, b.candidates[i].fault);
      EXPECT_EQ(a.candidates[i].score, b.candidates[i].score);
      EXPECT_EQ(a.candidates[i].tfsf, b.candidates[i].tfsf);
      EXPECT_EQ(a.candidates[i].tfsp, b.candidates[i].tfsp);
      EXPECT_EQ(a.candidates[i].tpsf, b.candidates[i].tpsf);
      EXPECT_EQ(a.candidates[i].bit_tfsp, b.candidates[i].bit_tfsp);
    }
  }
}

// ---- Trainer preflight ------------------------------------------------------

TEST(StaPreflightTest, RejectsUntestableLabels) {
  const DeadCone c;
  DesignContext ctx;
  ctx.netlist = &c.nl;

  Sample poisoned;
  poisoned.faults.push_back(
      Fault::slow_to_rise(c.nl.output_pin(c.u0)));
  const std::vector<Sample> samples{poisoned};

  FrameworkOptions fw_options;
  fw_options.model.hidden = 8;
  fw_options.model.num_layers = 2;
  fw_options.training.epochs = 1;
  DiagnosisFramework framework(fw_options);

  TrainerOptions options;
  options.sta_design = &ctx;
  options.sta_samples = samples;
  options.sta_options = tiny_options();
  Trainer trainer(framework, options);

  const std::vector<Subgraph> graphs(1);
  try {
    trainer.train(graphs);
    FAIL() << "expected the sta preflight to throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("untestable"), std::string::npos) << what;
    EXPECT_NE(what.find("sample 0"), std::string::npos) << what;
    EXPECT_NE(what.find("STR@u0.Y"), std::string::npos) << what;
    EXPECT_NE(what.find("unobservable"), std::string::npos) << what;
  }
}

// ---- Timing lint pass -------------------------------------------------------

TEST(TimingLintTest, NegativeSlackAndMivMarginCiteExactLocations) {
  const testing::TinyCircuit c;
  TierAssignment tiers(std::vector<std::int8_t>(7, 0));
  tiers.set_tier(c.u1, kTopTier);
  const MivMap mivs(c.netlist, tiers);

  // 100 ps clock: po0 misses by 20; both MIV far branches (u1.A0, ff0.A0)
  // end with slack 5 < the 10 ps via penalty threshold.
  const TimingAnalysis sta(c.netlist, &tiers, &mivs, tiny_options(100.0));
  const lint::TimingFacts facts =
      sta::timing_lint_facts(c.netlist, sta, &mivs, nullptr);

  ASSERT_EQ(facts.negative_slack.size(), 1u);
  EXPECT_EQ(facts.negative_slack[0].location, "po0.A0");
  EXPECT_DOUBLE_EQ(facts.negative_slack[0].slack_ps, -20.0);
  EXPECT_DOUBLE_EQ(facts.miv_margin_threshold_ps, 10.0);
  ASSERT_EQ(facts.tight_mivs.size(), 2u);
  EXPECT_EQ(facts.tight_mivs[0].location, "miv 0 (n4) -> u1.A0");
  EXPECT_EQ(facts.tight_mivs[1].location, "miv 1 (n5) -> ff0.A0");

  lint::Subject subject;
  subject.timing = &facts;
  lint::Report report;
  lint::run_timing_checks(subject, report);

  const lint::Diagnostic* neg = report.find("negative-slack-path");
  ASSERT_NE(neg, nullptr);
  EXPECT_EQ(neg->location, "po0.A0");
  EXPECT_EQ(neg->severity, lint::Severity::kError);
  const lint::Diagnostic* miv = report.find("miv-zero-slack-margin");
  ASSERT_NE(miv, nullptr);
  EXPECT_EQ(miv->location, "miv 0 (n4) -> u1.A0");
  EXPECT_TRUE(report.has_errors());
}

TEST(TimingLintTest, UntestableFaultCitesSite) {
  const DeadCone c;
  const TimingAnalysis sta(c.nl, nullptr, nullptr, tiny_options());
  const lint::TimingFacts facts =
      sta::timing_lint_facts(c.nl, sta, nullptr, nullptr);

  lint::Subject subject;
  subject.timing = &facts;
  lint::Report report;
  lint::run_timing_checks(subject, report);

  const lint::Diagnostic* diag = report.find("untestable-delay-fault");
  ASSERT_NE(diag, nullptr);
  EXPECT_EQ(diag->location, "STR@pi0.Y");
  EXPECT_NE(diag->message.find("unobservable"), std::string::npos);
  EXPECT_EQ(report.count(lint::Severity::kWarn), 6);
  EXPECT_FALSE(report.has_errors());
}

TEST(TimingLintTest, CorruptedCollapseMappingIsOrphaned) {
  const testing::TinyCircuit c;
  const TimingAnalysis sta(c.netlist, nullptr, nullptr, tiny_options());
  CollapsedFaults collapsed = sta::collapse_tdf_faults(c.netlist);
  collapsed.class_of[0] = 999;  // fault 0 now points outside every class

  const lint::TimingFacts facts =
      sta::timing_lint_facts(c.netlist, sta, nullptr, &collapsed);
  ASSERT_FALSE(facts.collapse_orphans.empty());

  lint::Subject subject;
  subject.timing = &facts;
  lint::Report report;
  lint::run_timing_checks(subject, report);

  const lint::Diagnostic* diag = report.find("collapsed-class-orphan");
  ASSERT_NE(diag, nullptr);
  EXPECT_EQ(diag->location, "fault 0 (STR@pi0.Y)");
  EXPECT_EQ(diag->severity, lint::Severity::kError);
}

TEST(TimingLintTest, CleanDesignProducesNoTimingDiagnostics) {
  const testing::TinyCircuit c;
  const TimingAnalysis sta(c.netlist, nullptr, nullptr, tiny_options());
  const CollapsedFaults collapsed = sta::collapse_tdf_faults(c.netlist);
  const lint::TimingFacts facts =
      sta::timing_lint_facts(c.netlist, sta, nullptr, &collapsed);

  lint::Subject subject;
  subject.timing = &facts;
  lint::Report report;
  lint::run_timing_checks(subject, report);
  EXPECT_TRUE(report.empty()) << report.to_string();
}

TEST(StaTest, UntestableFaultsOnGeneratedTieredDesign) {
  const testing::SmallDesign d(7);
  StaOptions options;
  options.model = test_model();
  const TimingAnalysis sta(d.netlist, &d.tiers, &d.mivs, options);

  EXPECT_GT(sta.critical_delay_ps(), 0.0);
  EXPECT_GE(sta.wns_ps(), 0.0);  // auto clock always meets timing
  const std::vector<TimingPath> paths = sta.k_longest_paths(8);
  ASSERT_FALSE(paths.empty());
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_LE(paths[i].delay_ps, paths[i - 1].delay_ps);
  }
  // Untestable list is ordered by fault site and never cites a testable pin
  // twice.
  const std::vector<UntestableFault> untestable = sta.untestable_faults();
  for (std::size_t i = 1; i < untestable.size(); ++i) {
    EXPECT_LE(untestable[i - 1].fault.pin, untestable[i].fault.pin);
  }
  for (MivId m = 0; m < d.mivs.num_mivs(); ++m) {
    const std::vector<TimingPath> through =
        sta.k_longest_paths_through_miv(m, 2);
    for (const TimingPath& p : through) {
      EXPECT_GT(p.delay_ps, 0.0);
    }
  }
}

}  // namespace
}  // namespace m3dfl
