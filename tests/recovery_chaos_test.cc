// Kill-and-recover chaos harness for crash-safe serving (acceptance test
// for serve/journal.h + SessionManager::recover()).
//
// The load: live tester feeds through a journaled serve::SessionManager,
// killed (manager + service destroyed with no tombstone, exactly what a
// crash leaves behind) at every journal-record boundary.  The contract:
//   - a recovered session finalizes byte-identical to the uninterrupted
//     run, at every kill point,
//   - a torn tail (kJournalTornWrite) loses exactly the torn frame: the
//     recovered session equals a clean run over the surviving prefix, and
//     the recovery cites the torn offset,
//   - recovered-vs-expired-vs-discarded accounting is exact against the
//     injected wall clock and the registered design set,
//   - concurrent journaled sessions keep the accounting partition and
//     leave a journal whose replay shows every session closed.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "diag/log_io.h"
#include "serve/fault_injector.h"
#include "serve/journal.h"
#include "serve/service.h"
#include "serve/session.h"
#include "serve/status.h"

namespace m3dfl {
namespace {

namespace fs = std::filesystem;

class RecoveryChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    design_ = std::shared_ptr<const Design>(
        Design::build(Profile::kAes, DesignConfig::kSyn1));
    TransferTrainOptions train;
    train.samples_syn1 = 40;
    train.samples_per_random = 20;
    const LabeledDataset data =
        build_transfer_training_set(Profile::kAes, *design_, train);
    FrameworkOptions options;
    options.training.epochs = 40;
    framework_ = new DiagnosisFramework(options);
    framework_->train(data.graphs);

    DataGenOptions gen;
    gen.num_samples = 12;
    gen.miv_fault_prob = 0.25;
    gen.seed = 0xC4A5;
    logs_ = new std::vector<FailureLog>();
    std::set<std::string> seen;
    for (const Sample& s : generate_samples(design_->context(), gen)) {
      if (seen.insert(failure_log_to_string(s.log)).second) {
        logs_->push_back(s.log);
      }
    }
  }
  static void TearDownTestSuite() {
    delete logs_;
    delete framework_;
    logs_ = nullptr;
    framework_ = nullptr;
    design_.reset();
  }

  static serve::DiagnosisService make_service(
      const serve::ServiceOptions& options) {
    std::stringstream model;
    framework_->save(model);
    return serve::DiagnosisService(model, options);
  }

  static std::string scratch_dir(const std::string& name) {
    const fs::path dir = fs::path(::testing::TempDir()) / ("recovery_" + name);
    fs::remove_all(dir);
    return dir.string();
  }

  // Body lines of the faillog text feed (header handled by the session).
  static std::vector<std::string> feed_lines(const FailureLog& log) {
    std::istringstream is(failure_log_to_string(log));
    std::vector<std::string> lines;
    std::string line;
    std::getline(is, line);  // header
    while (std::getline(is, line)) lines.push_back(line);
    return lines;
  }

  struct Outcome {
    serve::StatusCode status = serve::StatusCode::kOk;
    std::string text;  // result_to_string for kOk
  };

  // Feeds lines[from..) into an already-open session and finalizes it.
  static Outcome finish(serve::SessionManager& manager,
                        std::uint64_t session_id,
                        const std::vector<std::string>& lines,
                        std::size_t from) {
    for (std::size_t i = from; i < lines.size(); ++i) {
      const serve::SessionUpdate update =
          manager.add_response(session_id, lines[i]);
      EXPECT_NE(update.status, serve::StatusCode::kSessionExpired)
          << "line " << i << ": " << update.message;
    }
    Outcome outcome;
    const serve::DiagnosisResult result = manager.finalize(session_id).get();
    outcome.status = result.status;
    if (result.status == serve::StatusCode::kOk) {
      outcome.text = serve::result_to_string(design_->netlist(), result);
    }
    return outcome;
  }

  // The uninterrupted reference: one clean, journal-less session over the
  // first `count` lines.
  static Outcome clean_reference(const std::vector<std::string>& lines,
                                 std::size_t count) {
    serve::ServiceOptions options;
    options.num_threads = 1;
    serve::DiagnosisService service = make_service(options);
    const std::int32_t design_id = service.register_design(design_);
    serve::SessionManager manager(service);
    const serve::SessionTicket ticket = manager.begin_diagnosis(design_id);
    EXPECT_TRUE(ticket.admitted());
    std::vector<std::string> prefix(lines.begin(), lines.begin() + count);
    return finish(manager, ticket.session_id, prefix, 0);
  }

  static std::shared_ptr<const Design> design_;
  static DiagnosisFramework* framework_;
  static std::vector<FailureLog>* logs_;
};

std::shared_ptr<const Design> RecoveryChaosTest::design_;
DiagnosisFramework* RecoveryChaosTest::framework_ = nullptr;
std::vector<FailureLog>* RecoveryChaosTest::logs_ = nullptr;

// The tentpole contract: kill after every journal-record boundary (k fed
// lines, k = 0..N, N including the 'end' trailer), recover into a fresh
// service, finish the feed, and demand the byte-identical result.
TEST_F(RecoveryChaosTest, KillAtEveryRecordBoundaryFinalizesByteIdentical) {
  // The longest feed gives the most boundaries.
  std::size_t pick = 0;
  for (std::size_t i = 1; i < logs_->size(); ++i) {
    if (feed_lines((*logs_)[i]).size() > feed_lines((*logs_)[pick]).size()) {
      pick = i;
    }
  }
  const std::vector<std::string> lines = feed_lines((*logs_)[pick]);
  ASSERT_GE(lines.size(), 3u);
  const Outcome expected = clean_reference(lines, lines.size());
  ASSERT_EQ(expected.status, serve::StatusCode::kOk);

  for (std::size_t k = 0; k <= lines.size(); ++k) {
    const std::string dir = scratch_dir("boundary_" + std::to_string(k));
    serve::SessionManagerOptions mgr;
    mgr.journal_dir = dir;
    {
      // Feed k lines, then crash: destroyed with no finalize, no tombstone.
      serve::ServiceOptions options;
      options.num_threads = 1;
      serve::DiagnosisService service = make_service(options);
      const std::int32_t design_id = service.register_design(design_);
      serve::SessionManager manager(service, mgr);
      const serve::SessionTicket ticket = manager.begin_diagnosis(design_id);
      ASSERT_TRUE(ticket.admitted());
      for (std::size_t i = 0; i < k; ++i) {
        manager.add_response(ticket.session_id, lines[i]);
      }
      ASSERT_TRUE(manager.journal() != nullptr &&
                  manager.journal()->durable());
    }

    // Restart: a fresh service and manager over the same journal.
    serve::ServiceOptions options;
    options.num_threads = 1;
    serve::DiagnosisService service = make_service(options);
    service.register_design(design_);
    serve::SessionManager manager(service, mgr);
    const serve::RecoveryStats stats = manager.recover();
    ASSERT_EQ(stats.recovered, 1u) << "kill point " << k;
    EXPECT_EQ(stats.expired, 0u);
    EXPECT_EQ(stats.discarded, 0u);
    EXPECT_EQ(stats.lines_replayed, k);
    EXPECT_TRUE(stats.diagnostics.empty());
    EXPECT_EQ(service.metrics().sessions_recovered.load(), 1);

    const Outcome outcome =
        finish(manager, stats.recovered_ids.at(0), lines, k);
    EXPECT_EQ(outcome.status, serve::StatusCode::kOk) << "kill point " << k;
    EXPECT_EQ(outcome.text, expected.text) << "kill point " << k;

    // The finalize tombstone landed: a second recovery finds nothing.
    serve::DiagnosisService after = make_service(options);
    after.register_design(design_);
    serve::SessionManager checker(after, mgr);
    const serve::RecoveryStats none = checker.recover();
    EXPECT_EQ(none.recovered + none.expired + none.discarded, 0u)
        << "kill point " << k;
  }
}

// Breadth: every log in the corpus killed mid-feed once.
TEST_F(RecoveryChaosTest, MidFeedKillRecoversByteIdenticalForEveryLog) {
  for (std::size_t i = 0; i < logs_->size(); ++i) {
    const std::vector<std::string> lines = feed_lines((*logs_)[i]);
    const std::size_t k = lines.size() / 2;
    const std::string dir = scratch_dir("log_" + std::to_string(i));
    serve::SessionManagerOptions mgr;
    mgr.journal_dir = dir;
    {
      serve::ServiceOptions options;
      options.num_threads = 1;
      serve::DiagnosisService service = make_service(options);
      const std::int32_t design_id = service.register_design(design_);
      serve::SessionManager manager(service, mgr);
      const serve::SessionTicket ticket = manager.begin_diagnosis(design_id);
      ASSERT_TRUE(ticket.admitted());
      for (std::size_t j = 0; j < k; ++j) {
        manager.add_response(ticket.session_id, lines[j]);
      }
    }
    serve::ServiceOptions options;
    options.num_threads = 1;
    serve::DiagnosisService service = make_service(options);
    service.register_design(design_);
    serve::SessionManager manager(service, mgr);
    const serve::RecoveryStats stats = manager.recover();
    ASSERT_EQ(stats.recovered, 1u) << "log " << i;
    const Outcome outcome =
        finish(manager, stats.recovered_ids.at(0), lines, k);
    const Outcome expected = clean_reference(lines, lines.size());
    EXPECT_EQ(outcome.status, expected.status) << "log " << i;
    EXPECT_EQ(outcome.text, expected.text) << "log " << i;
  }
}

// A torn tail loses exactly the torn frame: recovery accepts the valid
// prefix, cites the offset, and the session finalizes like a clean run
// over the surviving lines.
TEST_F(RecoveryChaosTest, TornTailRecoversTheValidPrefix) {
  const std::vector<std::string> lines = feed_lines((*logs_)[0]);
  const std::size_t k = lines.size() - 1;  // stop short of 'end'
  ASSERT_GE(k, 2u);
  const std::string dir = scratch_dir("torn");
  serve::SessionManagerOptions mgr;
  mgr.journal_dir = dir;
  {
    auto injector = std::make_shared<serve::FaultInjector>();
    // Appends run open, line 1, line 2, ...; tear the last one so the
    // journal ends mid-frame exactly as a crash mid-write would leave it.
    injector->arm_nth(serve::Seam::kJournalTornWrite, {k + 1});
    serve::ServiceOptions options;
    options.num_threads = 1;
    options.fault_injector = injector;
    serve::DiagnosisService service = make_service(options);
    const std::int32_t design_id = service.register_design(design_);
    serve::SessionManager manager(service, mgr);
    const serve::SessionTicket ticket = manager.begin_diagnosis(design_id);
    ASSERT_TRUE(ticket.admitted());
    for (std::size_t i = 0; i < k; ++i) {
      manager.add_response(ticket.session_id, lines[i]);
    }
    ASSERT_FALSE(manager.journal()->durable());
    EXPECT_EQ(service.metrics().journal_append_failures.load(), 1);
  }

  serve::ServiceOptions options;
  options.num_threads = 1;
  serve::DiagnosisService service = make_service(options);
  service.register_design(design_);
  serve::SessionManager manager(service, mgr);
  const serve::RecoveryStats stats = manager.recover();
  ASSERT_EQ(stats.recovered, 1u);
  EXPECT_EQ(stats.lines_replayed, k - 1);  // the torn line is gone
  ASSERT_FALSE(stats.diagnostics.empty());
  EXPECT_NE(stats.diagnostics[0].find("journal byte "), std::string::npos)
      << stats.diagnostics[0];
  EXPECT_NE(stats.diagnostics[0].find("accepting the valid prefix"),
            std::string::npos);

  // Finalize with no further feed: equals a clean run over the survivors.
  std::vector<std::string> none;
  const Outcome outcome =
      finish(manager, stats.recovered_ids.at(0), none, 0);
  const Outcome expected = clean_reference(lines, k - 1);
  EXPECT_EQ(outcome.status, expected.status);
  EXPECT_EQ(outcome.text, expected.text);
}

// Recovered-vs-expired accounting against the injected wall clock: a
// session past its lifetime at restart is tombstoned as expired, a fresh
// one is rebuilt, and the counters partition exactly.
TEST_F(RecoveryChaosTest, ExpiryOnRecoveryAccountingIsExact) {
  const std::string dir = scratch_dir("expiry");
  std::int64_t wall_ms = 1000;
  serve::SessionManagerOptions mgr;
  mgr.journal_dir = dir;
  mgr.max_lifetime_ms = 1000.0;
  mgr.journal_wall_ms = [&wall_ms] { return wall_ms; };

  const std::vector<std::string> lines = feed_lines((*logs_)[0]);
  std::uint64_t old_id = 0;
  std::uint64_t fresh_id = 0;
  {
    serve::ServiceOptions options;
    options.num_threads = 1;
    serve::DiagnosisService service = make_service(options);
    const std::int32_t design_id = service.register_design(design_);
    serve::SessionManager manager(service, mgr);
    const serve::SessionTicket old_ticket = manager.begin_diagnosis(design_id);
    ASSERT_TRUE(old_ticket.admitted());
    manager.add_response(old_ticket.session_id, lines[0]);
    old_id = old_ticket.session_id;
    wall_ms = 9000;  // the second session opens much later
    const serve::SessionTicket fresh_ticket =
        manager.begin_diagnosis(design_id);
    ASSERT_TRUE(fresh_ticket.admitted());
    fresh_id = fresh_ticket.session_id;
  }

  wall_ms = 9500;  // restart: old is 8500 ms past open, fresh only 500
  serve::ServiceOptions options;
  options.num_threads = 1;
  serve::DiagnosisService service = make_service(options);
  service.register_design(design_);
  serve::SessionManager manager(service, mgr);
  const serve::RecoveryStats stats = manager.recover();
  EXPECT_EQ(stats.recovered, 1u);
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_EQ(stats.discarded, 0u);
  ASSERT_EQ(stats.recovered_ids.size(), 1u);
  EXPECT_EQ(stats.recovered_ids[0], fresh_id);
  EXPECT_FALSE(manager.contains(old_id));
  EXPECT_TRUE(manager.contains(fresh_id));
  const serve::Metrics& m = service.metrics();
  EXPECT_EQ(m.sessions_recovered.load(), 1);
  EXPECT_EQ(m.sessions_expired_on_recovery.load(), 1);
  EXPECT_EQ(m.sessions_discarded_on_recovery.load(), 0);

  // The expiry tombstone is durable: replay shows only the fresh session
  // live, and a second recovery sees one survivor, zero expired.
  const serve::JournalReplay replay = serve::SessionJournal::replay(dir);
  ASSERT_EQ(replay.live.size(), 1u);
  EXPECT_EQ(replay.live[0].id, fresh_id);
}

// A journaled session whose design is not registered after restart cannot
// be rebuilt: it is tombstoned as discarded, not resurrected, not counted
// as expired.
TEST_F(RecoveryChaosTest, UnknownDesignIsDiscardedOnRecovery) {
  const std::string dir = scratch_dir("discard");
  serve::SessionManagerOptions mgr;
  mgr.journal_dir = dir;
  {
    serve::ServiceOptions options;
    options.num_threads = 1;
    serve::DiagnosisService service = make_service(options);
    const std::int32_t design_id = service.register_design(design_);
    serve::SessionManager manager(service, mgr);
    ASSERT_TRUE(manager.begin_diagnosis(design_id).admitted());
  }
  serve::ServiceOptions options;
  options.num_threads = 1;
  serve::DiagnosisService service = make_service(options);  // no designs
  serve::SessionManager manager(service, mgr);
  const serve::RecoveryStats stats = manager.recover();
  EXPECT_EQ(stats.recovered, 0u);
  EXPECT_EQ(stats.expired, 0u);
  EXPECT_EQ(stats.discarded, 1u);
  EXPECT_EQ(service.metrics().sessions_discarded_on_recovery.load(), 1);
  EXPECT_TRUE(serve::SessionJournal::replay(dir).live.empty());
}

// Regression: a restarted manager must never reissue a journaled session
// id.  next_id_ restarts at 1, so without seeding it past the journal's id
// high-water mark the first post-restart session reuses a tombstoned id;
// its `open` is then dropped at the *next* recovery as a duplicate of the
// surviving tombstone and its records are dropped as belonging to a closed
// session — every session opened after a restart silently unrecoverable
// after a second crash.
TEST_F(RecoveryChaosTest, RestartNeverReusesJournaledSessionIds) {
  const std::string dir = scratch_dir("id_reuse");
  serve::SessionManagerOptions mgr;
  mgr.journal_dir = dir;
  const std::vector<std::string> lines = feed_lines((*logs_)[0]);
  const std::size_t k = lines.size() / 2;
  const Outcome expected = clean_reference(lines, lines.size());

  std::uint64_t first_id = 0;
  {
    // Run one session to completion: its tombstone stays in the journal
    // (compaction is manual-only in the default serve flow).
    serve::ServiceOptions options;
    options.num_threads = 1;
    serve::DiagnosisService service = make_service(options);
    const std::int32_t design_id = service.register_design(design_);
    serve::SessionManager manager(service, mgr);
    EXPECT_EQ(manager.recover().recovered, 0u);
    const serve::SessionTicket ticket = manager.begin_diagnosis(design_id);
    ASSERT_TRUE(ticket.admitted());
    first_id = ticket.session_id;
    const Outcome outcome = finish(manager, first_id, lines, 0);
    ASSERT_EQ(outcome.status, serve::StatusCode::kOk);
  }

  std::uint64_t second_id = 0;
  {
    // Restart, open a fresh session over the same journal, feed half, crash.
    serve::ServiceOptions options;
    options.num_threads = 1;
    serve::DiagnosisService service = make_service(options);
    const std::int32_t design_id = service.register_design(design_);
    serve::SessionManager manager(service, mgr);
    EXPECT_EQ(manager.recover().recovered, 0u);
    const serve::SessionTicket ticket = manager.begin_diagnosis(design_id);
    ASSERT_TRUE(ticket.admitted());
    second_id = ticket.session_id;
    EXPECT_NE(second_id, first_id);
    for (std::size_t i = 0; i < k; ++i) {
      manager.add_response(second_id, lines[i]);
    }
  }

  // Second crash: the post-restart session must recover cleanly, not vanish
  // as a duplicate of the first session's tombstone.
  serve::ServiceOptions options;
  options.num_threads = 1;
  serve::DiagnosisService service = make_service(options);
  service.register_design(design_);
  serve::SessionManager manager(service, mgr);
  const serve::RecoveryStats stats = manager.recover();
  ASSERT_EQ(stats.recovered, 1u);
  EXPECT_EQ(stats.lines_replayed, k);
  EXPECT_TRUE(stats.diagnostics.empty())
      << (stats.diagnostics.empty() ? "" : stats.diagnostics[0]);
  ASSERT_EQ(stats.recovered_ids.at(0), second_id);
  const Outcome outcome = finish(manager, second_id, lines, k);
  EXPECT_EQ(outcome.status, serve::StatusCode::kOk);
  EXPECT_EQ(outcome.text, expected.text);
}

// Concurrency (the TSan job runs this): parallel feeds through one
// journaled manager keep the accounting partition, and the journal they
// leave behind replays with every session closed and no diagnostics.
TEST_F(RecoveryChaosTest, ConcurrentJournaledSessionsLeaveACleanJournal) {
  const std::string dir = scratch_dir("concurrent");
  serve::ServiceOptions options;
  options.num_threads = 4;
  serve::DiagnosisService service = make_service(options);
  const std::int32_t design_id = service.register_design(design_);
  serve::SessionManagerOptions mgr;
  mgr.journal_dir = dir;
  mgr.journal_max_segment_bytes = 2048;  // force rotation under load
  serve::SessionManager manager(service, mgr);

  constexpr int kFeeders = 4;
  std::vector<std::thread> feeders;
  std::mutex expect_mu;
  for (int f = 0; f < kFeeders; ++f) {
    feeders.emplace_back([&, f] {
      for (std::size_t i = f; i < logs_->size(); i += kFeeders) {
        const std::vector<std::string> lines = feed_lines((*logs_)[i]);
        const serve::SessionTicket ticket = manager.begin_diagnosis(design_id);
        Outcome outcome;
        if (ticket.admitted()) {
          outcome = finish(manager, ticket.session_id, lines, 0);
        }
        std::lock_guard<std::mutex> lock(expect_mu);
        ASSERT_TRUE(ticket.admitted());
        EXPECT_EQ(outcome.status, serve::StatusCode::kOk);
      }
    });
  }
  for (std::thread& t : feeders) t.join();

  EXPECT_EQ(manager.live(), 0u);
  EXPECT_TRUE(manager.journal()->durable());
  const serve::Metrics& m = service.metrics();
  EXPECT_EQ(m.sessions_opened.load(),
            static_cast<std::int64_t>(logs_->size()));
  EXPECT_EQ(m.sessions_opened.load(), m.sessions_finalized.load());
  EXPECT_EQ(m.journal_append_failures.load(), 0);
  service.shutdown();

  const serve::JournalReplay replay = serve::SessionJournal::replay(dir);
  EXPECT_TRUE(replay.live.empty());
  EXPECT_EQ(replay.closed_sessions, logs_->size());
  EXPECT_TRUE(replay.diagnostics.empty());
  // Rotation under load really happened, and compaction then reclaims the
  // fully-tombstoned tail.
  EXPECT_GE(replay.segments.size(), 2u);
  EXPECT_GE(serve::SessionJournal::compact(dir), 1u);
  EXPECT_TRUE(serve::SessionJournal::replay(dir).live.empty());
}

}  // namespace
}  // namespace m3dfl
