#include <algorithm>

#include <gtest/gtest.h>

#include "graph/backtrace.h"
#include "test_helpers.h"

namespace m3dfl {
namespace {

struct BacktraceSetup {
  testing::SmallDesign d;
  HeteroGraph graph;

  explicit BacktraceSetup(std::uint64_t seed = 5)
      : d(seed), graph(d.netlist, d.tiers, d.mivs) {}
};

class BacktraceModes : public ::testing::TestWithParam<bool> {};

TEST_P(BacktraceModes, FaultSiteAlwaysAmongCandidates) {
  BacktraceSetup s;
  DataGenOptions opt;
  opt.num_samples = 25;
  opt.compacted = GetParam();
  opt.max_failing_patterns = 0;
  opt.seed = 31;
  const auto samples = generate_samples(s.d.context(), opt);
  for (const Sample& sample : samples) {
    const std::vector<NodeId> nodes =
        backtrace_candidates(s.graph, s.d.context(), sample.log);
    ASSERT_FALSE(nodes.empty());
    // The injected pin is a node id itself (pin nodes == pin ids).
    const NodeId site = sample.faults[0].pin;
    EXPECT_TRUE(std::binary_search(nodes.begin(), nodes.end(), site))
        << fault_to_string(s.d.netlist, sample.faults[0]);
  }
}

TEST_P(BacktraceModes, MivFaultYieldsMivNodeCandidate) {
  BacktraceSetup s;
  DataGenOptions opt;
  opt.num_samples = 10;
  opt.compacted = GetParam();
  opt.miv_fault_prob = 1.0;
  opt.max_failing_patterns = 0;
  opt.seed = 33;
  const auto samples = generate_samples(s.d.context(), opt);
  for (const Sample& sample : samples) {
    const std::vector<NodeId> nodes =
        backtrace_candidates(s.graph, s.d.context(), sample.log);
    const NodeId miv_node = s.graph.miv_node(sample.faulty_mivs[0]);
    EXPECT_TRUE(std::binary_search(nodes.begin(), nodes.end(), miv_node));
  }
}

INSTANTIATE_TEST_SUITE_P(BypassAndCompacted, BacktraceModes,
                         ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "compacted" : "bypass";
                         });

TEST(BacktraceTest, CandidatesTransitionInEveryFailingPattern) {
  BacktraceSetup s;
  DataGenOptions opt;
  opt.num_samples = 10;
  opt.max_failing_patterns = 0;
  opt.seed = 35;
  const auto samples = generate_samples(s.d.context(), opt);
  for (const Sample& sample : samples) {
    const std::vector<NodeId> nodes =
        backtrace_candidates(s.graph, s.d.context(), sample.log);
    for (const Observation& o : sample.log.scan_fails) {
      for (NodeId n : nodes) {
        EXPECT_TRUE(
            s.d.sim.has_transition(s.graph.node_net(n), o.pattern));
      }
    }
  }
}

TEST(BacktraceTest, CompactionCoarsensCandidates) {
  BacktraceSetup s;
  DataGenOptions opt;
  opt.num_samples = 20;
  opt.max_failing_patterns = 3;  // low-evidence regime
  opt.seed = 37;
  const auto bypass = generate_samples(s.d.context(), opt);
  opt.compacted = true;
  const auto compacted = generate_samples(s.d.context(), opt);
  // Same injected faults (same seed), different acquisition.
  std::size_t bypass_total = 0;
  std::size_t compact_total = 0;
  for (std::size_t i = 0; i < bypass.size(); ++i) {
    bypass_total +=
        backtrace_candidates(s.graph, s.d.context(), bypass[i].log).size();
    compact_total +=
        backtrace_candidates(s.graph, s.d.context(), compacted[i].log).size();
  }
  EXPECT_GE(compact_total, bypass_total);
}

TEST(BacktraceTest, EmptyLogYieldsNoCandidates) {
  BacktraceSetup s;
  EXPECT_TRUE(
      backtrace_candidates(s.graph, s.d.context(), FailureLog{}).empty());
}

TEST(BacktraceTest, OutputSortedAndUnique) {
  BacktraceSetup s;
  DataGenOptions opt;
  opt.num_samples = 5;
  opt.max_failing_patterns = 0;
  opt.seed = 39;
  const auto samples = generate_samples(s.d.context(), opt);
  for (const Sample& sample : samples) {
    const std::vector<NodeId> nodes =
        backtrace_candidates(s.graph, s.d.context(), sample.log);
    EXPECT_TRUE(std::is_sorted(nodes.begin(), nodes.end()));
    EXPECT_TRUE(std::adjacent_find(nodes.begin(), nodes.end()) ==
                nodes.end());
  }
}

}  // namespace
}  // namespace m3dfl
