#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "diag/log_io.h"
#include "graph/backtrace.h"
#include "test_helpers.h"
#include "util/thinning.h"

namespace m3dfl {
namespace {

struct BacktraceSetup {
  testing::SmallDesign d;
  HeteroGraph graph;

  explicit BacktraceSetup(std::uint64_t seed = 5)
      : d(seed), graph(d.netlist, d.tiers, d.mivs) {}
};

class BacktraceModes : public ::testing::TestWithParam<bool> {};

TEST_P(BacktraceModes, FaultSiteAlwaysAmongCandidates) {
  BacktraceSetup s;
  DataGenOptions opt;
  opt.num_samples = 25;
  opt.compacted = GetParam();
  opt.max_failing_patterns = 0;
  opt.seed = 31;
  const auto samples = generate_samples(s.d.context(), opt);
  for (const Sample& sample : samples) {
    const std::vector<NodeId> nodes =
        backtrace_candidates(s.graph, s.d.context(), sample.log);
    ASSERT_FALSE(nodes.empty());
    // The injected pin is a node id itself (pin nodes == pin ids).
    const NodeId site = sample.faults[0].pin;
    EXPECT_TRUE(std::binary_search(nodes.begin(), nodes.end(), site))
        << fault_to_string(s.d.netlist, sample.faults[0]);
  }
}

TEST_P(BacktraceModes, MivFaultYieldsMivNodeCandidate) {
  BacktraceSetup s;
  DataGenOptions opt;
  opt.num_samples = 10;
  opt.compacted = GetParam();
  opt.miv_fault_prob = 1.0;
  opt.max_failing_patterns = 0;
  opt.seed = 33;
  const auto samples = generate_samples(s.d.context(), opt);
  for (const Sample& sample : samples) {
    const std::vector<NodeId> nodes =
        backtrace_candidates(s.graph, s.d.context(), sample.log);
    const NodeId miv_node = s.graph.miv_node(sample.faulty_mivs[0]);
    EXPECT_TRUE(std::binary_search(nodes.begin(), nodes.end(), miv_node));
  }
}

INSTANTIATE_TEST_SUITE_P(BypassAndCompacted, BacktraceModes,
                         ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "compacted" : "bypass";
                         });

TEST(BacktraceTest, CandidatesTransitionInEveryFailingPattern) {
  BacktraceSetup s;
  DataGenOptions opt;
  opt.num_samples = 10;
  opt.max_failing_patterns = 0;
  opt.seed = 35;
  const auto samples = generate_samples(s.d.context(), opt);
  for (const Sample& sample : samples) {
    const std::vector<NodeId> nodes =
        backtrace_candidates(s.graph, s.d.context(), sample.log);
    for (const Observation& o : sample.log.scan_fails) {
      for (NodeId n : nodes) {
        EXPECT_TRUE(
            s.d.sim.has_transition(s.graph.node_net(n), o.pattern));
      }
    }
  }
}

TEST(BacktraceTest, CompactionCoarsensCandidates) {
  BacktraceSetup s;
  DataGenOptions opt;
  opt.num_samples = 20;
  opt.max_failing_patterns = 3;  // low-evidence regime
  opt.seed = 37;
  const auto bypass = generate_samples(s.d.context(), opt);
  opt.compacted = true;
  const auto compacted = generate_samples(s.d.context(), opt);
  // Same injected faults (same seed), different acquisition.
  std::size_t bypass_total = 0;
  std::size_t compact_total = 0;
  for (std::size_t i = 0; i < bypass.size(); ++i) {
    bypass_total +=
        backtrace_candidates(s.graph, s.d.context(), bypass[i].log).size();
    compact_total +=
        backtrace_candidates(s.graph, s.d.context(), compacted[i].log).size();
  }
  EXPECT_GE(compact_total, bypass_total);
}

TEST(BacktraceTest, EmptyLogYieldsNoCandidates) {
  BacktraceSetup s;
  EXPECT_TRUE(
      backtrace_candidates(s.graph, s.d.context(), FailureLog{}).empty());
}

TEST(BacktraceTest, OutputSortedAndUnique) {
  BacktraceSetup s;
  DataGenOptions opt;
  opt.num_samples = 5;
  opt.max_failing_patterns = 0;
  opt.seed = 39;
  const auto samples = generate_samples(s.d.context(), opt);
  for (const Sample& sample : samples) {
    const std::vector<NodeId> nodes =
        backtrace_candidates(s.graph, s.d.context(), sample.log);
    EXPECT_TRUE(std::is_sorted(nodes.begin(), nodes.end()));
    EXPECT_TRUE(std::adjacent_find(nodes.begin(), nodes.end()) ==
                nodes.end());
  }
}

// ---- support / quarantine (backtrace_with_support) --------------------------

// Suspect set of a single scan observation: the strict intersection over one
// response is exactly its suspect set.
std::vector<NodeId> one_response_suspects(const BacktraceSetup& s,
                                          const Observation& o) {
  FailureLog log;
  log.scan_fails = {o};
  return backtrace_candidates(s.graph, s.d.context(), log);
}

bool disjoint_sorted(const std::vector<NodeId>& a,
                     const std::vector<NodeId>& b) {
  std::vector<NodeId> both;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(both));
  return both.empty();
}

// A scan observation absent from `log` whose non-empty suspect set is
// disjoint from the clean candidates — appending it kills the strict
// intersection (no node can appear in every response once one response
// shares nothing with the clean core).
Observation find_disjoint_observation(const BacktraceSetup& s,
                                      const FailureLog& log,
                                      const std::vector<NodeId>& clean) {
  const std::set<Observation> used(log.scan_fails.begin(),
                                   log.scan_fails.end());
  const std::int32_t num_patterns = s.d.sim.num_patterns();
  for (std::int32_t flop = 0; flop < s.d.scan.num_flops(); ++flop) {
    for (std::int32_t pattern = 0; pattern < num_patterns; ++pattern) {
      const Observation o{pattern, false, flop};
      if (used.count(o) != 0) continue;
      const std::vector<NodeId> suspects = one_response_suspects(s, o);
      if (!suspects.empty() && disjoint_sorted(suspects, clean)) return o;
    }
  }
  ADD_FAILURE() << "no disjoint spurious observation exists in this design";
  return Observation{};
}

TEST(BacktraceSupportTest, StrictIntersectionHasUnitSupportAndNoQuarantine) {
  BacktraceSetup s;
  DataGenOptions opt;
  opt.num_samples = 10;
  opt.max_failing_patterns = 0;
  opt.seed = 41;
  const auto samples = generate_samples(s.d.context(), opt);
  for (const Sample& sample : samples) {
    const BacktraceResult result =
        backtrace_with_support(s.graph, s.d.context(), sample.log);
    const std::vector<NodeId> legacy =
        backtrace_candidates(s.graph, s.d.context(), sample.log);
    EXPECT_EQ(result.candidates, legacy);
    ASSERT_EQ(result.support.size(), result.candidates.size());
    ASSERT_FALSE(result.relaxed);  // clean single-fault logs stay strict
    EXPECT_TRUE(result.quarantined.empty());
    EXPECT_FALSE(result.noisy());
    EXPECT_DOUBLE_EQ(result.min_support(), 1.0);
    for (double sup : result.support) EXPECT_DOUBLE_EQ(sup, 1.0);
  }
}

TEST(BacktraceSupportTest, EmptyLogYieldsEmptyResult) {
  BacktraceSetup s;
  const BacktraceResult result =
      backtrace_with_support(s.graph, s.d.context(), FailureLog{});
  EXPECT_TRUE(result.candidates.empty());
  EXPECT_TRUE(result.support.empty());
  EXPECT_EQ(result.num_responses, 0);
  EXPECT_FALSE(result.noisy());
  EXPECT_DOUBLE_EQ(result.min_support(), 0.0);
}

// A log whose strict intersection is provably empty: one clean sample plus
// one spurious observation with a disjoint suspect cone.
struct PoisonedLog {
  FailureLog log;
  std::vector<NodeId> clean_candidates;
  Observation spurious;

  explicit PoisonedLog(const BacktraceSetup& s, std::uint64_t sample_seed) {
    DataGenOptions opt;
    opt.num_samples = 1;
    opt.max_failing_patterns = 0;
    opt.seed = sample_seed;
    const auto samples = generate_samples(s.d.context(), opt);
    log = samples.at(0).log;
    BacktraceOptions all;
    all.max_traced_responses = 1 << 20;  // no thinning in these tests
    clean_candidates =
        backtrace_candidates(s.graph, s.d.context(), log, all);
    spurious = find_disjoint_observation(s, log, clean_candidates);
    log.scan_fails.push_back(spurious);
  }
};

TEST(BacktraceSupportTest, RelaxedFractionZeroEmitsEveryNode) {
  BacktraceSetup s;
  const PoisonedLog p(s, 43);
  BacktraceOptions options;
  options.max_traced_responses = 1 << 20;
  options.quarantine_overlap = 0.0;  // isolate the relaxation path
  options.relaxed_fraction = 0.0;    // ceil(0 * n) = 0: everything passes
  const BacktraceResult result =
      backtrace_with_support(s.graph, s.d.context(), p.log, options);
  EXPECT_TRUE(result.relaxed);
  EXPECT_EQ(static_cast<std::int32_t>(result.candidates.size()),
            s.graph.num_nodes());
}

TEST(BacktraceSupportTest, RelaxedFractionOneFallsBackToBestCount) {
  BacktraceSetup s;
  const PoisonedLog p(s, 43);
  BacktraceOptions options;
  options.max_traced_responses = 1 << 20;
  options.quarantine_overlap = 0.0;
  options.relaxed_fraction = 1.0;  // same threshold as strict: must fall
                                   // back to the best-supported nodes
  const BacktraceResult result =
      backtrace_with_support(s.graph, s.d.context(), p.log, options);
  EXPECT_TRUE(result.relaxed);
  ASSERT_FALSE(result.candidates.empty());
  const double best = *std::max_element(result.support.begin(),
                                        result.support.end());
  EXPECT_LT(best, 1.0);  // the strict intersection really was empty
  for (double sup : result.support) EXPECT_DOUBLE_EQ(sup, best);
}

TEST(BacktraceSupportTest, SingleSpuriousResponseIsQuarantinedNotAbsorbed) {
  BacktraceSetup s;
  DataGenOptions opt;
  opt.num_samples = 6;
  opt.max_failing_patterns = 0;
  opt.seed = 45;
  const auto samples = generate_samples(s.d.context(), opt);
  BacktraceOptions options;
  options.max_traced_responses = 1 << 20;
  const std::int32_t num_patterns = s.d.sim.num_patterns();
  bool found = false;
  for (const Sample& sample : samples) {
    const FailureLog& clean_log = sample.log;
    const std::vector<NodeId> clean =
        backtrace_candidates(s.graph, s.d.context(), clean_log, options);
    const std::set<Observation> used(clean_log.scan_fails.begin(),
                                     clean_log.scan_fails.end());
    for (std::int32_t flop = 0; flop < s.d.scan.num_flops() && !found;
         ++flop) {
      for (std::int32_t pattern = 0; pattern < num_patterns && !found;
           ++pattern) {
        const Observation o{pattern, false, flop};
        if (used.count(o) != 0) continue;
        const std::vector<NodeId> suspects = one_response_suspects(s, o);
        // A disjoint cone kills the strict intersection; whether the
        // response is also condemned by the overlap test depends on how
        // many "popular" nodes its cone shares with the consensus core,
        // so keep searching until one actually quarantines.
        if (suspects.empty() || !disjoint_sorted(suspects, clean)) continue;
        FailureLog noisy = clean_log;
        noisy.scan_fails.push_back(o);
        const BacktraceResult result =
            backtrace_with_support(s.graph, s.d.context(), noisy, options);
        if (result.quarantined.size() != 1u) continue;
        found = true;
        // The outlier is excluded and cited; the surviving intersection is
        // the clean one, with full support and no relaxation.
        EXPECT_EQ(result.quarantined[0].response_index,
                  static_cast<std::int32_t>(noisy.scan_fails.size()) - 1);
        EXPECT_EQ(result.quarantined[0].pattern, o.pattern);
        EXPECT_LT(result.quarantined[0].overlap,
                  options.quarantine_overlap);
        EXPECT_EQ(result.candidates, clean);
        EXPECT_FALSE(result.relaxed);
        EXPECT_TRUE(result.noisy());
        EXPECT_DOUBLE_EQ(result.min_support(), 1.0);  // over kept responses
      }
    }
    if (found) break;
  }
  EXPECT_TRUE(found)
      << "no spurious observation quarantined on any of the sample logs";
}

TEST(BacktraceSupportTest, QuarantineDisabledFallsBackToRelaxation) {
  BacktraceSetup s;
  const PoisonedLog p(s, 45);
  BacktraceOptions options;
  options.max_traced_responses = 1 << 20;
  options.quarantine_overlap = 0.0;
  const BacktraceResult result =
      backtrace_with_support(s.graph, s.d.context(), p.log, options);
  EXPECT_TRUE(result.quarantined.empty());
  EXPECT_TRUE(result.relaxed);
  EXPECT_TRUE(result.noisy());
  EXPECT_LT(result.min_support(), 1.0);
}

TEST(BacktraceSupportTest, ThinningStrideIsDeterministicAndMatchesManual) {
  BacktraceSetup s;
  DataGenOptions opt;
  opt.num_samples = 8;
  opt.max_failing_patterns = 0;
  opt.seed = 47;
  const auto samples = generate_samples(s.d.context(), opt);
  BacktraceOptions thin;
  thin.max_traced_responses = 5;
  for (const Sample& sample : samples) {
    const FailureLog& log = sample.log;
    const std::size_t total = log.scan_fails.size() + log.po_fails.size();
    if (total <= 5) continue;
    const BacktraceResult a =
        backtrace_with_support(s.graph, s.d.context(), log, thin);
    const BacktraceResult b =
        backtrace_with_support(s.graph, s.d.context(), log, thin);
    EXPECT_EQ(a.candidates, b.candidates);
    EXPECT_EQ(a.support, b.support);
    EXPECT_EQ(a.num_responses, 5);
    // The stride-selected responses, traced without a cap, give the same
    // answer: thinning is a pure function of (size, cap).
    const std::vector<std::size_t> kept = uniform_stride_indices(total, 5);
    FailureLog manual;
    manual.compacted = log.compacted;
    manual.pattern_limit = log.pattern_limit;
    for (std::size_t i : kept) {
      if (i < log.scan_fails.size()) {
        manual.scan_fails.push_back(log.scan_fails[i]);
      } else {
        manual.po_fails.push_back(log.po_fails[i - log.scan_fails.size()]);
      }
    }
    BacktraceOptions full;
    full.max_traced_responses = 1 << 20;
    const BacktraceResult c =
        backtrace_with_support(s.graph, s.d.context(), manual, full);
    EXPECT_EQ(a.candidates, c.candidates);
    EXPECT_EQ(a.support, c.support);
  }
}

// Below the thinning cap, the decision layer scores a *set* of responses:
// permuting the record order within each kind must not change the verdict
// (a streaming session can replay an archived log in any arrival order and
// land on the batch answer).
TEST(BacktraceSupportTest, ResponseOrderDoesNotChangeTheVerdict) {
  BacktraceSetup s;
  DataGenOptions opt;
  opt.num_samples = 12;
  opt.max_failing_patterns = 0;
  opt.seed = 67;
  const auto samples = generate_samples(s.d.context(), opt);
  std::uint64_t state = 0x2545F4914F6CDD1Dull;
  const auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  BacktraceOptions uncapped;
  uncapped.max_traced_responses = 1 << 20;  // keep thinning out of the way
  int permuted_logs = 0;
  for (const Sample& sample : samples) {
    const BacktraceResult want =
        backtrace_with_support(s.graph, s.d.context(), sample.log, uncapped);
    for (int round = 0; round < 3; ++round) {
      FailureLog shuffled = sample.log;
      const auto permute = [&](auto& records) {
        for (std::size_t i = records.size(); i > 1; --i) {
          std::swap(records[i - 1], records[next() % i]);
        }
      };
      permute(shuffled.scan_fails);
      permute(shuffled.channel_fails);
      permute(shuffled.po_fails);
      if (failure_log_to_string(shuffled) == failure_log_to_string(sample.log))
        continue;
      ++permuted_logs;
      const BacktraceResult got =
          backtrace_with_support(s.graph, s.d.context(), shuffled, uncapped);
      EXPECT_EQ(got.candidates, want.candidates);
      EXPECT_EQ(got.support, want.support);
      EXPECT_EQ(got.relaxed, want.relaxed);
      EXPECT_EQ(got.num_responses, want.num_responses);
      // Quarantine verdicts follow the responses, not their positions:
      // compare the (pattern, overlap) multiset.
      std::multiset<std::pair<std::int32_t, double>> q_want, q_got;
      for (const QuarantinedResponse& q : want.quarantined) {
        q_want.insert({q.pattern, q.overlap});
      }
      for (const QuarantinedResponse& q : got.quarantined) {
        q_got.insert({q.pattern, q.overlap});
      }
      EXPECT_EQ(q_got, q_want);
    }
  }
  EXPECT_GT(permuted_logs, 0);
}

// The same property on a noisy log where quarantine actually engages.
TEST(BacktraceSupportTest, QuarantineVerdictIsOrderIndependent) {
  BacktraceSetup s;
  const PoisonedLog p(s, 71);
  BacktraceOptions options;
  options.max_traced_responses = 1 << 20;
  const BacktraceResult want =
      backtrace_with_support(s.graph, s.d.context(), p.log, options);
  if (want.quarantined.empty()) {
    GTEST_SKIP() << "seed produced no quarantine; property vacuous";
  }
  FailureLog reversed = p.log;
  std::reverse(reversed.scan_fails.begin(), reversed.scan_fails.end());
  std::reverse(reversed.po_fails.begin(), reversed.po_fails.end());
  const BacktraceResult got =
      backtrace_with_support(s.graph, s.d.context(), reversed, options);
  EXPECT_EQ(got.candidates, want.candidates);
  EXPECT_EQ(got.support, want.support);
  EXPECT_EQ(got.quarantined.size(), want.quarantined.size());
}

}  // namespace
}  // namespace m3dfl
