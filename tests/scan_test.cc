#include <set>

#include <gtest/gtest.h>

#include "dft/scan.h"
#include "test_helpers.h"

namespace m3dfl {
namespace {

TEST(ScanTest, EveryFlopStitchedExactlyOnce) {
  const Netlist nl = testing::small_netlist(2);
  const ScanChains chains(nl, 4, 1);
  std::set<std::int32_t> seen;
  std::int32_t total = 0;
  for (std::int32_t c = 0; c < chains.num_chains(); ++c) {
    for (std::int32_t f : chains.chain(c)) {
      seen.insert(f);
      ++total;
    }
  }
  EXPECT_EQ(total, chains.num_flops());
  EXPECT_EQ(static_cast<std::int32_t>(seen.size()), chains.num_flops());
  EXPECT_EQ(chains.num_flops(),
            static_cast<std::int32_t>(nl.flops().size()));
}

TEST(ScanTest, ChainPositionInverse) {
  const Netlist nl = testing::small_netlist(2);
  const ScanChains chains(nl, 5, 9);
  for (std::int32_t f = 0; f < chains.num_flops(); ++f) {
    EXPECT_EQ(chains.flop_at(chains.chain_of_flop(f),
                             chains.position_of_flop(f)),
              f);
  }
}

TEST(ScanTest, BalancedLengths) {
  const Netlist nl = testing::small_netlist(2);  // 32 flops
  const ScanChains chains(nl, 5, 3);
  for (std::int32_t c = 0; c < chains.num_chains(); ++c) {
    const auto len = static_cast<std::int32_t>(chains.chain(c).size());
    EXPECT_GE(len, chains.max_chain_length() - 1);
    EXPECT_LE(len, chains.max_chain_length());
  }
}

TEST(ScanTest, FlopAtPastEndIsNull) {
  const Netlist nl = testing::small_netlist(2);
  const ScanChains chains(nl, 4, 1);
  EXPECT_EQ(chains.flop_at(0, chains.max_chain_length()), -1);
}

TEST(ScanTest, MoreChainsThanFlopsClamps) {
  testing::TinyCircuit c;  // one flop
  const ScanChains chains(c.netlist, 8, 1);
  EXPECT_EQ(chains.num_chains(), 1);
  EXPECT_EQ(chains.chain(0).size(), 1u);
}

TEST(ScanTest, StitchingIsSeedDependentButDeterministic) {
  const Netlist nl = testing::small_netlist(2);
  const ScanChains a(nl, 4, 1);
  const ScanChains b(nl, 4, 1);
  const ScanChains c(nl, 4, 2);
  EXPECT_EQ(a.chain(0), b.chain(0));
  bool any_diff = false;
  for (std::int32_t ch = 0; ch < 4 && !any_diff; ++ch) {
    any_diff = a.chain(ch) != c.chain(ch);
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace m3dfl
