#include <gtest/gtest.h>

#include "diag/log_io.h"
#include "test_helpers.h"

namespace m3dfl {
namespace {

TEST(LogIoTest, BypassRoundTrip) {
  FailureLog log;
  log.scan_fails = {{0, false, 3}, {7, false, 12}};
  log.po_fails = {{7, true, 1}};
  log.pattern_limit = 5;
  const FailureLog back = failure_log_from_string(failure_log_to_string(log));
  EXPECT_FALSE(back.compacted);
  EXPECT_EQ(back.scan_fails, log.scan_fails);
  EXPECT_EQ(back.po_fails, log.po_fails);
  EXPECT_EQ(back.pattern_limit, 5);
}

TEST(LogIoTest, CompactedRoundTrip) {
  FailureLog log;
  log.compacted = true;
  log.channel_fails = {{1, 0, 4}, {9, 2, 0}};
  log.po_fails = {{1, true, 0}};
  const FailureLog back = failure_log_from_string(failure_log_to_string(log));
  EXPECT_TRUE(back.compacted);
  EXPECT_EQ(back.channel_fails, log.channel_fails);
  EXPECT_EQ(back.po_fails, log.po_fails);
}

TEST(LogIoTest, RealLogsRoundTripThroughText) {
  testing::SmallDesign d(9);
  DataGenOptions opt;
  opt.num_samples = 8;
  opt.compacted = true;
  opt.max_failing_patterns = 0;
  const auto samples = generate_samples(d.context(), opt);
  for (const Sample& s : samples) {
    const FailureLog back =
        failure_log_from_string(failure_log_to_string(s.log));
    EXPECT_EQ(back.channel_fails, s.log.channel_fails);
    EXPECT_EQ(back.po_fails, s.log.po_fails);
    EXPECT_EQ(back.compacted, s.log.compacted);
  }
}

TEST(LogIoTest, CommentsAndBlankLinesIgnored) {
  const FailureLog log = failure_log_from_string(
      "m3dfl-faillog 1\n"
      "# a tester annotation\n"
      "mode bypass\n"
      "\n"
      "scan 3 1  # trailing comment\n"
      "end\n");
  ASSERT_EQ(log.scan_fails.size(), 1u);
  EXPECT_EQ(log.scan_fails[0].pattern, 3);
}

// CRLF acceptance: a log whose lines end "\r\n" (Windows tester, text-mode
// transfer hop) must parse byte-identical to its LF twin — pinned by
// re-serializing both and comparing the bytes.
TEST(LogIoTest, CrlfLogParsesByteIdenticalToLfTwin) {
  const std::string lf =
      "m3dfl-faillog 1\n"
      "mode bypass\n"
      "limit 4\n"
      "scan 3 1\n"
      "po 3 0  # trailing comment\n"
      "end\n";
  std::string crlf;
  for (const char c : lf) {
    if (c == '\n') crlf += '\r';
    crlf += c;
  }
  const FailureLog from_lf = failure_log_from_string(lf);
  const FailureLog from_crlf = failure_log_from_string(crlf);
  EXPECT_EQ(failure_log_to_string(from_crlf), failure_log_to_string(from_lf));
  ASSERT_EQ(from_crlf.scan_fails.size(), 1u);
  EXPECT_EQ(from_crlf.pattern_limit, 4);
}

TEST(LogIoTest, CrlfStreamRecordsParseIdenticalToLf) {
  // The streaming parser (session feeds) must treat "scan 3 1\r" exactly
  // like "scan 3 1": same kind, same fields.
  const StreamRecord lf = parse_stream_record("scan 3 1", 2);
  const StreamRecord crlf = parse_stream_record("scan 3 1\r", 2);
  EXPECT_EQ(crlf.kind, StreamRecord::Kind::kScan);
  EXPECT_EQ(crlf.observation.pattern, lf.observation.pattern);
  EXPECT_EQ(crlf.observation.index, lf.observation.index);
  EXPECT_EQ(parse_stream_record("end\r", 3).kind, StreamRecord::Kind::kEnd);
  EXPECT_EQ(parse_stream_record("mode compacted\r", 2).compacted, true);
  // Only the terminator is normalized: a '\r' splitting a keyword leaves an
  // unknown record behind.
  EXPECT_THROW(parse_stream_record("sc\ran 3 1", 2), Error);
}

TEST(LogIoTest, RejectsMalformedInput) {
  EXPECT_THROW(failure_log_from_string("nope"), Error);
  EXPECT_THROW(failure_log_from_string("m3dfl-faillog 1\nscan 1 2\n"), Error);
  EXPECT_THROW(
      failure_log_from_string("m3dfl-faillog 1\nmode sideways\nend\n"),
      Error);
  EXPECT_THROW(
      failure_log_from_string("m3dfl-faillog 1\nwidget 1 2\nend\n"), Error);
  EXPECT_THROW(failure_log_from_string("m3dfl-faillog 1\nscan 1\nend\n"),
               Error);
  // Scan records are illegal in compacted mode.
  EXPECT_THROW(failure_log_from_string(
                   "m3dfl-faillog 1\nmode compacted\nscan 1 2\nend\n"),
               Error);
}

// Hardened-parser regression corpus: every malformed shape a tester datalog
// pipeline has produced in anger, with the expected diagnostic fragment.
TEST(LogIoTest, MalformedCorpusRejectedWithLineNumbers) {
  const struct {
    const char* name;
    const char* text;
    const char* expect;  // substring of the diagnostic
  } corpus[] = {
      {"truncated scan record",
       "m3dfl-faillog 1\nscan 1\nend\n", "line 2: truncated"},
      {"truncated chan record",
       "m3dfl-faillog 1\nmode compacted\nchan 1 2\nend\n",
       "line 3: truncated"},
      {"truncated po record",
       "m3dfl-faillog 1\npo 4\nend\n", "line 2: truncated"},
      {"non-numeric field",
       "m3dfl-faillog 1\nscan one 2\nend\n", "line 2: truncated or non-numeric"},
      {"partially numeric field",
       "m3dfl-faillog 1\nscan 1 2x\nend\n", "line 2:"},
      {"trailing garbage",
       "m3dfl-faillog 1\nscan 1 2 3\nend\n", "line 2: trailing garbage '3'"},
      {"negative pattern",
       "m3dfl-faillog 1\nscan -1 2\nend\n", "line 2: out-of-range"},
      {"negative flop index",
       "m3dfl-faillog 1\nscan 1 -2\nend\n", "line 2: out-of-range"},
      {"negative channel",
       "m3dfl-faillog 1\nmode compacted\nchan 1 -1 0\nend\n",
       "line 3: out-of-range"},
      {"negative limit",
       "m3dfl-faillog 1\nlimit -5\nend\n", "line 2: out-of-range"},
      {"duplicate scan observation",
       "m3dfl-faillog 1\nscan 1 2\nscan 1 2\nend\n",
       "line 3: duplicate scan"},
      {"duplicate chan observation",
       "m3dfl-faillog 1\nmode compacted\nchan 1 0 4\nchan 1 0 4\nend\n",
       "line 4: duplicate chan"},
      {"duplicate po observation",
       "m3dfl-faillog 1\npo 3 0\npo 3 0\nend\n", "line 3: duplicate po"},
      {"missing end trailer",
       "m3dfl-faillog 1\nscan 1 2\n", "truncated (missing 'end'"},
      {"unknown record",
       "m3dfl-faillog 1\nwidget 1 2\nend\n", "line 2: unknown record"},
      {"bad mode",
       "m3dfl-faillog 1\nmode sideways\nend\n", "line 2: bad mode"},
  };
  for (const auto& bad : corpus) {
    try {
      failure_log_from_string(bad.text);
      FAIL() << bad.name << ": expected m3dfl::Error";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find(bad.expect), std::string::npos)
          << bad.name << ": diagnostic was '" << e.what() << "'";
    }
  }
}

// Tail-following concession: a live feed snapshotted mid-append ends with a
// well-formed final record and no trailing newline — that (and only that)
// shape is accepted without the 'end' trailer.
TEST(LogIoTest, UnterminatedWellFormedTailAcceptedWithoutEnd) {
  const FailureLog log = failure_log_from_string(
      "m3dfl-faillog 1\nscan 1 2\nscan 3 4");
  EXPECT_EQ(log.scan_fails.size(), 2u);
  EXPECT_EQ(log.scan_fails[1].pattern, 3);
  EXPECT_EQ(log.scan_fails[1].index, 4);

  // Meta records get the same treatment: "mode bypass" with no newline is a
  // snapshot taken right after the header was appended.
  EXPECT_TRUE(failure_log_from_string("m3dfl-faillog 1\nmode bypass").empty());
}

TEST(LogIoTest, UnterminatedTailStillRejectsItsOwnDefects) {
  // A *malformed* unterminated tail is a partial write, not a snapshot —
  // its own parse failure stands.
  EXPECT_THROW(failure_log_from_string("m3dfl-faillog 1\nscan 1"), Error);
  // And a newline-terminated log without 'end' remains a truncation (the
  // writer finished its last line and then died): the corpus case above
  // ("m3dfl-faillog 1\nscan 1 2\n") must stay rejected.
  EXPECT_THROW(failure_log_from_string("m3dfl-faillog 1\nscan 1 2\n"), Error);
  // A duplicate in the unterminated tail is still a duplicate.
  EXPECT_THROW(
      failure_log_from_string("m3dfl-faillog 1\nscan 1 2\nscan 1 2"), Error);
}

TEST(LogIoTest, ParseStreamRecordMatchesReaderGrammar) {
  const StreamRecord scan = parse_stream_record("scan 5 7", 2);
  EXPECT_EQ(scan.kind, StreamRecord::Kind::kScan);
  EXPECT_EQ(scan.observation.pattern, 5);
  EXPECT_EQ(scan.observation.index, 7);
  EXPECT_FALSE(scan.observation.at_po);

  const StreamRecord chan = parse_stream_record("chan 1 2 3", 3);
  EXPECT_EQ(chan.kind, StreamRecord::Kind::kChan);
  EXPECT_EQ(chan.channel.pattern, 1);
  EXPECT_EQ(chan.channel.channel, 2);
  EXPECT_EQ(chan.channel.position, 3);

  EXPECT_EQ(parse_stream_record("# comment", 4).kind,
            StreamRecord::Kind::kNone);
  EXPECT_EQ(parse_stream_record("", 5).kind, StreamRecord::Kind::kNone);
  EXPECT_EQ(parse_stream_record("end", 6).kind, StreamRecord::Kind::kEnd);

  try {
    parse_stream_record("scan 1", 42);
    FAIL() << "expected m3dfl::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 42"), std::string::npos)
        << e.what();
  }
}

TEST(LogIoTest, DuplicatesAcrossKindsAreAllowed) {
  // A po and a scan fail may legitimately share (pattern, index) — they are
  // different observation points.
  const FailureLog log = failure_log_from_string(
      "m3dfl-faillog 1\nscan 3 1\npo 3 1\nend\n");
  EXPECT_EQ(log.scan_fails.size(), 1u);
  EXPECT_EQ(log.po_fails.size(), 1u);
}

TEST(LogIoTest, EmptyLogRoundTrip) {
  const FailureLog back =
      failure_log_from_string(failure_log_to_string(FailureLog{}));
  EXPECT_TRUE(back.empty());
}

// ---- ParseLimits guardrails (util/limits.h) ---------------------------------

std::string faillog_error(const std::string& text,
                          const ParseLimits& limits = {}) {
  try {
    failure_log_from_string(text, limits);
  } catch (const Error& e) {
    return e.what();
  }
  ADD_FAILURE() << "adversarial failure log accepted:\n" << text;
  return {};
}

TEST(LogIoLimitsTest, OversizedUnterminatedLineRejectsAtTheCap) {
  // The tail-follow hardening: a live feed's unterminated final "line" that
  // keeps growing must reject once it passes the byte cap — the reader
  // stops *at* the cap, it does not slurp first and measure later.
  ParseLimits limits;
  limits.max_line_bytes = 32;
  const std::string msg = faillog_error(
      "m3dfl-faillog 1\nscan 0 1\nscan " + std::string(100, '1'), limits);
  EXPECT_NE(msg.find("failure log line 3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("limit exceeded: line bytes"), std::string::npos) << msg;
}

TEST(LogIoLimitsTest, OversizedHeaderLineRejects) {
  ParseLimits limits;
  limits.max_line_bytes = 16;
  const std::string msg =
      faillog_error(std::string(100, 'x') + "\nend\n", limits);
  EXPECT_NE(msg.find("failure log line 1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("limit exceeded"), std::string::npos) << msg;
}

TEST(LogIoLimitsTest, ObservationCountCapCited) {
  ParseLimits limits;
  limits.max_observations = 3;
  // Cap counts scan + chan + po together.
  const std::string msg = faillog_error(
      "m3dfl-faillog 1\nscan 0 1\nscan 0 2\nchan 1 0 1\npo 2 3\nend\n",
      limits);
  EXPECT_NE(msg.find("failure log line 5"), std::string::npos) << msg;
  EXPECT_NE(msg.find("limit exceeded: observations"), std::string::npos)
      << msg;
}

TEST(LogIoLimitsTest, PatternAndIndexCapsCited) {
  const std::string over_pattern =
      "m3dfl-faillog 1\nscan 16777216 0\nend\n";  // max_patterns + 1
  std::string msg = faillog_error(over_pattern);
  EXPECT_NE(msg.find("limit exceeded: scan pattern"), std::string::npos)
      << msg;

  const std::string over_index = "m3dfl-faillog 1\npo 0 16777216\nend\n";
  msg = faillog_error(over_index);
  EXPECT_NE(msg.find("limit exceeded: po output index"), std::string::npos)
      << msg;

  const std::string over_limit_field =
      "m3dfl-faillog 1\nlimit 16777216\nend\n";
  msg = faillog_error(over_limit_field);
  EXPECT_NE(msg.find("limit exceeded: pattern limit"), std::string::npos)
      << msg;
}

TEST(LogIoLimitsTest, StreamRecordEnforcesLineCap) {
  ParseLimits limits;
  limits.max_line_bytes = 8;
  try {
    parse_stream_record(std::string(100, 'x'), 7, limits);
    ADD_FAILURE() << "over-limit stream line accepted";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("failure log line 7"), std::string::npos) << msg;
    EXPECT_NE(msg.find("limit exceeded: line bytes"), std::string::npos)
        << msg;
  }
}

TEST(LogIoLimitsTest, EndAndModeRejectTrailingGarbage) {
  // "end garbage" / "mode bypass x" would silently drop smuggled bytes on
  // an otherwise-valid line.
  std::string msg = faillog_error("m3dfl-faillog 1\nend smuggled\n");
  EXPECT_NE(msg.find("trailing garbage 'smuggled'"), std::string::npos)
      << msg;
  msg = faillog_error("m3dfl-faillog 1\nmode bypass x\nend\n");
  EXPECT_NE(msg.find("trailing garbage 'x'"), std::string::npos) << msg;
}

TEST(LogIoLimitsTest, TruncationAtEveryByteNeverCrashes) {
  const std::string text =
      "m3dfl-faillog 1\nmode bypass\nlimit 64\nscan 0 1\nscan 1 2\n"
      "chan 2 0 3\npo 3 4\nend\n";
  for (std::size_t i = 0; i < text.size(); ++i) {
    try {
      (void)failure_log_from_string(text.substr(0, i));
      // Tail-follow contract: a prefix whose final (unterminated) line is a
      // well-formed record parses; anything else must have thrown.
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("failure log"), std::string::npos)
          << "byte " << i << ": " << e.what();
    }
  }
}

}  // namespace
}  // namespace m3dfl
