#include <algorithm>

#include <gtest/gtest.h>

#include "core/pipeline.h"

namespace m3dfl {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    design_ = Design::build(Profile::kAes, DesignConfig::kSyn1).release();
  }
  static void TearDownTestSuite() {
    delete design_;
    design_ = nullptr;
  }
  static Design* design_;
};

Design* PipelineTest::design_ = nullptr;

TEST_F(PipelineTest, DatasetSizesAndLabels) {
  DataGenOptions opt;
  opt.num_samples = 12;
  opt.seed = 5;
  const LabeledDataset data = build_dataset(*design_, opt);
  EXPECT_EQ(data.size(), 12u);
  EXPECT_EQ(data.samples.size(), data.graphs.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_FALSE(data.graphs[i].empty());
    EXPECT_EQ(data.graphs[i].tier_label, data.samples[i].fault_tier);
  }
}

TEST_F(PipelineTest, SubgraphContainsFaultSite) {
  DataGenOptions opt;
  opt.num_samples = 12;
  opt.seed = 6;
  const LabeledDataset data = build_dataset(*design_, opt);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const NodeId site = data.samples[i].faults[0].pin;
    EXPECT_TRUE(std::binary_search(data.graphs[i].nodes.begin(),
                                   data.graphs[i].nodes.end(), site));
  }
}

TEST_F(PipelineTest, SubgraphForLogMatchesDatasetPath) {
  DataGenOptions opt;
  opt.num_samples = 3;
  opt.seed = 7;
  const LabeledDataset data = build_dataset(*design_, opt);
  const Subgraph sg = subgraph_for_log(*design_, data.samples[0].log);
  EXPECT_EQ(sg.nodes, data.graphs[0].nodes);
}

TEST_F(PipelineTest, AppendConcatenatesDatasets) {
  DataGenOptions opt;
  opt.num_samples = 4;
  opt.seed = 8;
  LabeledDataset a = build_dataset(*design_, opt);
  opt.seed = 9;
  LabeledDataset b = build_dataset(*design_, opt);
  const std::size_t na = a.size();
  a.append(std::move(b));
  EXPECT_EQ(a.size(), na + 4);
}

TEST_F(PipelineTest, TransferTrainingSetMixesPartitions) {
  TransferTrainOptions opt;
  opt.samples_syn1 = 10;
  opt.samples_per_random = 5;
  const LabeledDataset data =
      build_transfer_training_set(Profile::kAes, *design_, opt);
  EXPECT_EQ(data.size(), 20u);
  // Samples from randomly partitioned designs follow the Syn-1 block.
  bool any_miv_labelled = false;
  for (const Subgraph& g : data.graphs) {
    any_miv_labelled = any_miv_labelled || !g.miv_ids.empty();
  }
  EXPECT_TRUE(any_miv_labelled);
}

TEST_F(PipelineTest, FailMemoryDefaultsFromDesign) {
  // AES logs everything (fail_memory_patterns == 0); explicitly request a
  // shallow memory and verify the delegation plumbing end to end.
  DataGenOptions opt;
  opt.num_samples = 5;
  opt.seed = 10;
  opt.max_failing_patterns = 2;
  const LabeledDataset data = build_dataset(*design_, opt);
  for (const Sample& s : data.samples) {
    EXPECT_LE(s.log.num_failing_patterns(), 2);
  }
}

}  // namespace
}  // namespace m3dfl
