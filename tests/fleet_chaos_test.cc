// Reload-under-fire: hot reloads, corrupt replacements, and registry
// eviction while 8 shard workers serve mixed-tenant traffic.
//
// The accounting is exact, in the spirit of tests/chaos_test.cc: every
// submitted future resolves exactly once, the per-tenant status counts
// partition the submissions, and every successful result carries the
// generation of a *successfully loaded* artifact — corrupt replacements
// never allocate a generation, so a result stamped with a registry
// generation can only have come from a model that passed the container
// CRC (and a post-quiesce probe proves no request is served by a retired
// epoch once a newer generation is visible).  Run under TSan by the CI
// serve job.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/pipeline.h"
#include "registry/registry.h"
#include "serve/fleet.h"
#include "util/artifact.h"
#include "util/atomic_file.h"
#include "util/rng.h"

namespace m3dfl {
namespace {

namespace fs = std::filesystem;
using registry::ModelRegistry;
using serve::FleetService;
using serve::StatusCode;
using serve::TenantOptions;

constexpr std::int32_t kNumTenants = 4;   // x 2 shard threads = 8 workers
constexpr std::int32_t kNumSubmitters = 4;
constexpr std::int32_t kRequestsPerSubmitter = 24;
constexpr std::int32_t kChaosRounds = 12;

class FleetChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    design_ = new std::shared_ptr<const Design>(
        Design::build(Profile::kAes, DesignConfig::kSyn1));
    TransferTrainOptions train;
    train.samples_syn1 = 12;
    train.samples_per_random = 6;
    const LabeledDataset data =
        build_transfer_training_set(Profile::kAes, **design_, train);
    FrameworkOptions options;
    options.training.epochs = 5;
    DiagnosisFramework framework(options);
    framework.train(data.graphs);
    std::ostringstream os;
    framework.save(os);

    // Three valid artifact variants with pairwise-distinct byte sizes
    // (hexfloats of different text length), so every replacement below is
    // guaranteed to change the registry's (size, mtime) freshness stamp
    // even on filesystems with coarse mtime granularity.
    variants_ = new std::vector<std::string>();
    for (const double threshold : {0.5, 0.75, 0.765625}) {
      std::string payload =
          read_artifact(os.str(), kFrameworkKind, "<test>");
      const std::size_t at = payload.find("tp_threshold ");
      const std::size_t eol = payload.find('\n', at);
      std::ostringstream value;
      value << std::hexfloat << threshold;
      payload =
          payload.substr(0, at + 13) + value.str() + payload.substr(eol);
      variants_->push_back(artifact_to_string(kFrameworkKind, payload));
    }
    ASSERT_NE((*variants_)[0].size(), (*variants_)[1].size());
    ASSERT_NE((*variants_)[1].size(), (*variants_)[2].size());
    ASSERT_NE((*variants_)[0].size(), (*variants_)[2].size());

    DataGenOptions gen;
    gen.num_samples = 8;
    gen.miv_fault_prob = 0.3;
    gen.seed = 0xC4A05;
    logs_ = new std::vector<FailureLog>();
    for (const Sample& s : generate_samples((*design_)->context(), gen)) {
      logs_->push_back(s.log);
    }
  }
  static void TearDownTestSuite() {
    delete logs_;
    delete variants_;
    delete design_;
    logs_ = nullptr;
    variants_ = nullptr;
    design_ = nullptr;
  }

  static std::string model_name(std::int32_t tenant) {
    return "chaos-" + std::to_string(tenant);
  }

  // Valid variant `which`, or it with one payload byte flipped (the CRC
  // recorded in the container then mismatches, so the registry must reject
  // the replacement without allocating a generation).
  static std::string artifact(std::int32_t which, bool corrupt) {
    std::string bytes = (*variants_)[static_cast<std::size_t>(which) %
                                     variants_->size()];
    if (corrupt) bytes[bytes.find("tp_threshold")] = 'T';
    return bytes;
  }

  static std::shared_ptr<const Design>* design_;
  static std::vector<std::string>* variants_;
  static std::vector<FailureLog>* logs_;
};

std::shared_ptr<const Design>* FleetChaosTest::design_ = nullptr;
std::vector<std::string>* FleetChaosTest::variants_ = nullptr;
std::vector<FailureLog>* FleetChaosTest::logs_ = nullptr;

TEST_F(FleetChaosTest, ReloadUnderFireWithExactAccounting) {
  const fs::path dir =
      fs::temp_directory_path() / "m3dfl_fleet_chaos_registry";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const auto publish = [&](std::int32_t tenant, const std::string& bytes) {
    write_file_atomic(
        (dir / ModelRegistry::artifact_filename(model_name(tenant), 1))
            .string(),
        bytes);
  };
  for (std::int32_t t = 0; t < kNumTenants; ++t) {
    publish(t, artifact(0, /*corrupt=*/false));
  }

  // Room for between two and three of the four tenant models: acquiring
  // all four must evict, and evicted-but-in-epoch models must keep serving
  // through their shared_ptr.
  registry::RegistryOptions reg_options;
  reg_options.max_resident_bytes = (*variants_)[2].size() * 5 / 2;
  ModelRegistry registry(dir.string(), reg_options);

  FleetService fleet(registry);
  std::vector<std::int32_t> tenants;
  for (std::int32_t t = 0; t < kNumTenants; ++t) {
    TenantOptions options = fleet.tenant_defaults();
    options.model = model_name(t);
    options.service.num_threads = 2;
    // Two tenants run with a tight admission quota so shedding interleaves
    // with reloads (the shed count lands in the status partition below).
    if (t >= 2) options.max_inflight = 4;
    tenants.push_back(fleet.add_tenant(*design_, options));
  }

  // The storm: submitters drive mixed-tenant traffic while the chaos
  // thread keeps replacing every tenant's artifact — alternating valid
  // variants (hot reload) and corrupt bytes (rejected reload).
  std::vector<std::pair<std::int32_t, std::future<serve::DiagnosisResult>>>
      futures(static_cast<std::size_t>(kNumSubmitters) *
              kRequestsPerSubmitter);
  std::vector<std::thread> submitters;
  for (std::int32_t s = 0; s < kNumSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      Rng rng(0x9A1B + static_cast<std::uint64_t>(s));
      for (std::int32_t i = 0; i < kRequestsPerSubmitter; ++i) {
        const std::int32_t tenant =
            tenants[rng.next_below(static_cast<std::uint64_t>(kNumTenants))];
        const FailureLog& log =
            (*logs_)[rng.next_below(logs_->size())];
        futures[static_cast<std::size_t>(s) * kRequestsPerSubmitter +
                static_cast<std::size_t>(i)] = {tenant,
                                                fleet.submit(tenant, log)};
      }
    });
  }
  std::thread chaos([&] {
    Rng rng(0xD1CE);
    for (std::int32_t round = 0; round < kChaosRounds; ++round) {
      for (std::int32_t t = 0; t < kNumTenants; ++t) {
        // A corrupt write always uses a different variant than the next
        // valid write, so consecutive publishes always change the size.
        const bool corrupt = (round + t) % 3 == 2;
        publish(t, artifact(corrupt ? round + 1 : round, corrupt));
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(
          1 + static_cast<std::int64_t>(rng.next_below(5))));
    }
  });
  for (auto& s : submitters) s.join();
  chaos.join();

  // Deterministic tail: whatever the storm's interleaving hit, walking all
  // three size-distinct valid variants forces at least two hot reloads per
  // tenant (at most one variant can match the current freshness stamp),
  // and a corrupt write of a differently-sized variant forces at least one
  // rejected reload per tenant.  A submit alone triggers the refresh — the
  // epoch swap happens on the submission path, before queueing.
  for (std::int32_t t = 0; t < kNumTenants; ++t) {
    const std::size_t tenant = static_cast<std::size_t>(t);
    for (std::int32_t which = 0; which < 3; ++which) {
      publish(t, artifact(which, /*corrupt=*/false));
      futures.push_back({tenants[tenant],
                         fleet.submit(tenants[tenant], (*logs_)[which])});
    }
    // Stamp is now variant 2's size; corrupt variant 0 differs for sure.
    publish(t, artifact(0, /*corrupt=*/true));
    futures.push_back(
        {tenants[tenant], fleet.submit(tenants[tenant], (*logs_)[3])});
  }
  fleet.drain();

  // Exact accounting: every future resolves exactly once, nothing lost.
  std::vector<std::int64_t> ok_per_tenant(kNumTenants, 0);
  std::int64_t total_ok = 0;
  std::int64_t total_other = 0;
  const std::uint64_t max_generation = registry.generation();
  for (auto& [tenant, future] : futures) {
    ASSERT_TRUE(future.valid());
    const serve::DiagnosisResult result = future.get();
    if (result.ok()) {
      ++ok_per_tenant[static_cast<std::size_t>(tenant)];
      ++total_ok;
      // Zero served from a corrupt or unseen artifact: a corrupt
      // replacement never allocates a generation, so every ok result's
      // stamp must be a generation the registry actually handed out.
      EXPECT_GE(result.model_generation, 1u);
      EXPECT_LE(result.model_generation, max_generation);
      EXPECT_EQ(result.design, (*design_)->name());
    } else {
      EXPECT_TRUE(result.status == StatusCode::kQuotaExceeded ||
                  result.status == StatusCode::kModelUnavailable)
          << static_cast<int>(result.status) << ": "
          << result.status_message;
      ++total_other;
    }
  }
  const std::int64_t total =
      static_cast<std::int64_t>(futures.size());
  EXPECT_EQ(total_ok + total_other, total);  // statuses partition the total

  // Zero duplicated / zero dropped, per tenant: submitted == resolved.
  std::int64_t submitted = 0;
  for (std::int32_t t = 0; t < kNumTenants; ++t) {
    const serve::Metrics& m = fleet.tenant_metrics(tenants[
        static_cast<std::size_t>(t)]);
    std::int64_t statuses = 0;
    for (std::int32_t code = 0; code < serve::kNumStatusCodes; ++code) {
      statuses += m.status_count(static_cast<StatusCode>(code));
    }
    EXPECT_EQ(statuses, m.requests_submitted.load());
    EXPECT_EQ(m.status_count(StatusCode::kOk),
              ok_per_tenant[static_cast<std::size_t>(t)]);
    submitted += m.requests_submitted.load();
  }
  EXPECT_EQ(submitted, total);

  // The chaos actually happened: hot reloads, rejected corrupt reloads,
  // and byte-watermark evictions all fired while traffic was in flight.
  EXPECT_GE(registry.reloads(), 2 * kNumTenants);
  EXPECT_GE(registry.reload_failures(), kNumTenants);
  EXPECT_GE(registry.evictions(), 1);
  EXPECT_EQ(registry.generation(),
            static_cast<std::uint64_t>(registry.loads() + registry.reloads()));

  // Post-quiesce probe: publish a final valid artifact, and the next
  // result must carry the *current* generation — no request is served by
  // a retired epoch once a newer generation is visible.
  for (std::int32_t t = 0; t < kNumTenants; ++t) {
    // The stamp after the tail is variant 2 for every tenant; variants 0
    // and 1 are size-different for sure, so this always hot-reloads.
    publish(t, artifact(t % 2, /*corrupt=*/false));
    const serve::DiagnosisResult result =
        fleet.diagnose(tenants[static_cast<std::size_t>(t)], (*logs_)[2]);
    ASSERT_TRUE(result.ok()) << result.status_message;
    EXPECT_EQ(result.model_generation,
              fleet.tenant_generation(tenants[static_cast<std::size_t>(t)]));
    EXPECT_GT(result.model_generation, max_generation);
    EXPECT_EQ(fleet.tenant_retired_epochs(tenants[
                  static_cast<std::size_t>(t)]),
              0u);
  }

  fleet.shutdown();
  EXPECT_THROW(fleet.submit(tenants[0], (*logs_)[0]), Error);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace m3dfl
