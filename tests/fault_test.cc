#include <gtest/gtest.h>

#include "sim/fault.h"
#include "test_helpers.h"

namespace m3dfl {
namespace {

TEST(FaultTest, ApplyDelaySlowToRiseHoldsRisingBits) {
  // Bit layout: v1 = 0b0011, cur = 0b0101.
  //   bit0: 1->1 stays; bit1: 1->0 falls; bit2: 0->1 rises; bit3: 0->0.
  const std::uint64_t v1 = 0b0011;
  const std::uint64_t cur = 0b0101;
  // STR holds the rising bit 2 at its launch value 0.
  EXPECT_EQ(faulty_value(FaultType::kSlowToRise, v1, cur), 0b0001ULL);
  // STF holds the falling bit 1 at its launch value 1.
  EXPECT_EQ(faulty_value(FaultType::kSlowToFall, v1, cur), 0b0111ULL);
  // MIV delay holds both: result equals v1 on all changed bits.
  EXPECT_EQ(faulty_value(FaultType::kMivDelay, v1, cur), v1);
}

TEST(FaultTest, ApplyDelayNoTransitionIsIdentity) {
  const std::uint64_t v = 0xDEADBEEFCAFEF00DULL;
  EXPECT_EQ(faulty_value(FaultType::kSlowToRise, v, v), v);
  EXPECT_EQ(faulty_value(FaultType::kSlowToFall, v, v), v);
  EXPECT_EQ(faulty_value(FaultType::kMivDelay, v, v), v);
}

TEST(FaultTest, StuckAtForcesConstants) {
  const std::uint64_t v1 = 0x00FF00FF00FF00FFULL;
  const std::uint64_t cur = 0x0F0F0F0F0F0F0F0FULL;
  EXPECT_EQ(faulty_value(FaultType::kStuckAt0, v1, cur), 0u);
  EXPECT_EQ(faulty_value(FaultType::kStuckAt1, v1, cur), ~0ULL);
  EXPECT_TRUE(is_static_fault(FaultType::kStuckAt0));
  EXPECT_FALSE(is_static_fault(FaultType::kSlowToRise));
  const Fault sa = Fault::stuck_at(9, true);
  EXPECT_EQ(sa.type, FaultType::kStuckAt1);
  EXPECT_TRUE(sa.is_static());
  EXPECT_FALSE(sa.is_miv());
}

TEST(FaultTest, ApplyDelayIsIdempotent) {
  const std::uint64_t v1 = 0xAAAA5555AAAA5555ULL;
  const std::uint64_t cur = 0x0F0F0F0F0F0F0F0FULL;
  for (FaultType t : {FaultType::kSlowToRise, FaultType::kSlowToFall,
                      FaultType::kMivDelay}) {
    const std::uint64_t once = faulty_value(t, v1, cur);
    EXPECT_EQ(faulty_value(t, v1, once), once);
  }
}

TEST(FaultTest, FactoriesAndEquality) {
  const Fault a = Fault::slow_to_rise(5);
  const Fault b = Fault::slow_to_fall(5);
  const Fault m = Fault::miv_delay(2);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, Fault::slow_to_rise(5));
  EXPECT_FALSE(a.is_miv());
  EXPECT_TRUE(m.is_miv());
  EXPECT_EQ(m.miv, 2);
  EXPECT_EQ(a.pin, 5);
}

TEST(FaultTest, ToString) {
  testing::TinyCircuit c;
  const PinId stem = c.netlist.output_pin(c.u0);
  EXPECT_EQ(fault_to_string(c.netlist, Fault::slow_to_rise(stem)), "STR@u0.Y");
  EXPECT_EQ(fault_to_string(c.netlist, Fault::slow_to_fall(
                                           c.netlist.input_pin(c.u2, 1))),
            "STF@u2.A1");
  EXPECT_EQ(fault_to_string(c.netlist, Fault::miv_delay(3)), "MIV#3");
  EXPECT_EQ(fault_to_string(c.netlist, Fault::stuck_at(stem, false)),
            "SA0@u0.Y");
  EXPECT_EQ(fault_to_string(c.netlist, Fault::stuck_at(stem, true)),
            "SA1@u0.Y");
}

}  // namespace
}  // namespace m3dfl
