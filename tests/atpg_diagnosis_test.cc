#include <gtest/gtest.h>

#include "diag/atpg_diagnosis.h"
#include "diag/metrics.h"
#include "test_helpers.h"

namespace m3dfl {
namespace {

using testing::SmallDesign;

std::vector<Sample> make_samples(const SmallDesign& d, std::int32_t n,
                                 bool compacted, double miv_prob = 0.0,
                                 std::int32_t fail_memory = 0) {
  DataGenOptions opt;
  opt.num_samples = n;
  opt.compacted = compacted;
  opt.miv_fault_prob = miv_prob;
  opt.max_failing_patterns = fail_memory;
  opt.seed = 99;
  return generate_samples(d.context(), opt);
}

class DiagnosisModes : public ::testing::TestWithParam<bool> {};

TEST_P(DiagnosisModes, GroundTruthAlwaysReported) {
  SmallDesign d(5);
  const auto samples = make_samples(d, 20, GetParam());
  for (const Sample& s : samples) {
    const DiagnosisReport report = diagnose_atpg(d.context(), s.log);
    ASSERT_FALSE(report.candidates.empty());
    bool found = false;
    for (const Candidate& c : report.candidates) {
      if (candidate_matches_fault(d.context(), c, s.faults[0])) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << fault_to_string(d.netlist, s.faults[0]);
  }
}

TEST_P(DiagnosisModes, GroundTruthIsAPerfectCandidate) {
  SmallDesign d(5);
  const auto samples = make_samples(d, 12, GetParam());
  for (const Sample& s : samples) {
    const DiagnosisReport report = diagnose_atpg(d.context(), s.log);
    for (const Candidate& c : report.candidates) {
      if (c.fault == s.faults[0]) {
        EXPECT_TRUE(c.perfect());
        EXPECT_EQ(c.tfsp, 0);
        EXPECT_EQ(c.bit_tfsp, 0);
      }
    }
  }
}

TEST_P(DiagnosisModes, ReportSortedByScore) {
  SmallDesign d(5);
  const auto samples = make_samples(d, 10, GetParam());
  for (const Sample& s : samples) {
    const DiagnosisReport report = diagnose_atpg(d.context(), s.log);
    for (std::size_t i = 1; i < report.candidates.size(); ++i) {
      EXPECT_GE(report.candidates[i - 1].score, report.candidates[i].score);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BypassAndCompacted, DiagnosisModes,
                         ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "compacted" : "bypass";
                         });

TEST(DiagnosisTest, EmptyLogYieldsEmptyReport) {
  SmallDesign d(5);
  const DiagnosisReport report = diagnose_atpg(d.context(), FailureLog{});
  EXPECT_TRUE(report.candidates.empty());
}

TEST(DiagnosisTest, RespectsMaxCandidates) {
  SmallDesign d(5);
  const auto samples = make_samples(d, 10, false, 0.0, 3);
  DiagnosisOptions opt;
  opt.max_candidates = 5;
  for (const Sample& s : samples) {
    const DiagnosisReport report = diagnose_atpg(d.context(), s.log, opt);
    EXPECT_LE(report.resolution(), 5);
  }
}

TEST(DiagnosisTest, TruncatedLogsInflateResolution) {
  SmallDesign d(5);
  const auto full = make_samples(d, 20, false, 0.0, 0);
  const auto cut = make_samples(d, 20, false, 0.0, 2);
  double res_full = 0;
  double res_cut = 0;
  for (const Sample& s : full) {
    res_full += diagnose_atpg(d.context(), s.log).resolution();
  }
  for (const Sample& s : cut) {
    res_cut += diagnose_atpg(d.context(), s.log).resolution();
  }
  // Less tester evidence -> coarser diagnosis.
  EXPECT_GT(res_cut, res_full);
}

TEST(DiagnosisTest, MivFaultDiagnosedToItsNet) {
  SmallDesign d(5);
  const auto samples = make_samples(d, 30, false, 1.0);
  for (const Sample& s : samples) {
    ASSERT_TRUE(s.faults[0].is_miv());
    const DiagnosisReport report = diagnose_atpg(d.context(), s.log);
    bool found = false;
    for (const Candidate& c : report.candidates) {
      if (candidate_matches_fault(d.context(), c, s.faults[0])) found = true;
    }
    EXPECT_TRUE(found);
  }
}

TEST(DiagnosisTest, CandidateHelpers) {
  SmallDesign d(5);
  const DesignContext ctx = d.context();
  ASSERT_GT(d.mivs.num_mivs(), 0);
  const Miv& miv = d.mivs.miv(0);
  Candidate miv_cand;
  miv_cand.fault = Fault::miv_delay(0);
  EXPECT_EQ(candidate_tier(ctx, miv_cand), kMivTier);
  EXPECT_TRUE(candidate_on_miv(ctx, miv_cand));

  // A pin on the MIV's net is "on" the MIV and matches an MIV ground truth.
  const PinId stem = d.netlist.output_pin(d.netlist.net(miv.net).driver);
  Candidate pin_cand;
  pin_cand.fault = Fault::slow_to_rise(stem);
  EXPECT_TRUE(candidate_on_miv(ctx, pin_cand));
  EXPECT_TRUE(candidate_matches_fault(ctx, pin_cand, Fault::miv_delay(0)));
  EXPECT_TRUE(candidate_matches_fault(ctx, miv_cand, Fault::slow_to_fall(stem)));
  // Same pin, either direction, matches.
  EXPECT_TRUE(candidate_matches_fault(ctx, pin_cand, Fault::slow_to_fall(stem)));
  EXPECT_FALSE(
      candidate_matches_fault(ctx, pin_cand, Fault::slow_to_rise(stem + 1)));
}

TEST(DiagnosisTest, Deterministic) {
  SmallDesign d(5);
  const auto samples = make_samples(d, 5, false);
  for (const Sample& s : samples) {
    const DiagnosisReport a = diagnose_atpg(d.context(), s.log);
    const DiagnosisReport b = diagnose_atpg(d.context(), s.log);
    ASSERT_EQ(a.resolution(), b.resolution());
    for (std::int32_t i = 0; i < a.resolution(); ++i) {
      EXPECT_EQ(a.candidates[static_cast<std::size_t>(i)].fault,
                b.candidates[static_cast<std::size_t>(i)].fault);
    }
  }
}

}  // namespace
}  // namespace m3dfl
