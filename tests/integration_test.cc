// Cross-module integration tests: the complete paper pipeline on one small
// benchmark, asserting the qualitative properties the evaluation section
// depends on.
#include <gtest/gtest.h>

#include "core/experiment.h"

namespace m3dfl {
namespace {

ExperimentOptions small_options() {
  ExperimentOptions opt;
  opt.test_samples = 30;
  opt.train.samples_syn1 = 80;
  opt.train.samples_per_random = 40;
  opt.framework.training.epochs = 80;
  return opt;
}

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    experiment_ = new ProfileExperiment(Profile::kAes, small_options());
    result_ = new ConfigResult(experiment_->evaluate(DesignConfig::kSyn1));
  }
  static void TearDownTestSuite() {
    delete result_;
    delete experiment_;
    result_ = nullptr;
    experiment_ = nullptr;
  }
  static ProfileExperiment* experiment_;
  static ConfigResult* result_;
};

ProfileExperiment* IntegrationTest::experiment_ = nullptr;
ConfigResult* IntegrationTest::result_ = nullptr;

TEST_F(IntegrationTest, AtpgReportsAreAccurate) {
  // Single-TDF dies with full fail logging: the diagnosis engine must name
  // the defect in (almost) every report.
  EXPECT_GE(result_->atpg.accuracy(), 0.95);
  EXPECT_GT(result_->atpg.resolution.mean(), 1.0);
}

TEST_F(IntegrationTest, RefinementImprovesOrMaintainsResolution) {
  EXPECT_LE(result_->gnn.stats.resolution.mean(),
            result_->atpg.resolution.mean());
  EXPECT_LE(result_->gnn_plus.stats.resolution.mean(),
            result_->gnn.stats.resolution.mean() + 1e-9);
  EXPECT_LE(result_->baseline.stats.resolution.mean(),
            result_->atpg.resolution.mean());
}

TEST_F(IntegrationTest, AccuracyLossStaysSmall) {
  // Paper contract: pruning costs at most a few percent accuracy.
  EXPECT_GE(result_->gnn.stats.accuracy(),
            result_->atpg.accuracy() - 0.10);
  // The baseline never loses accuracy (first level).
  EXPECT_GE(result_->baseline.stats.accuracy() + 1e-9,
            result_->atpg.accuracy());
}

TEST_F(IntegrationTest, GnnDeliversTierLocalization) {
  // The headline claim: the GNN localizes the faulty tier for reports the
  // ATPG run could not confine, far better than the tier-blind baseline.
  if (result_->gnn.eligible > 5) {
    EXPECT_GT(result_->gnn.tier_localization(),
              result_->baseline.tier_localization());
    EXPECT_GT(result_->gnn.tier_localization(), 0.5);
  }
}

TEST_F(IntegrationTest, FhiNeverWorseThanResolution) {
  EXPECT_LE(result_->gnn.stats.fhi.mean(),
            result_->gnn.stats.resolution.mean() + 1e-9);
  EXPECT_LE(result_->atpg.fhi.mean(), result_->atpg.resolution.mean() + 1e-9);
}

TEST_F(IntegrationTest, RuntimesArePopulated) {
  EXPECT_GT(result_->t_atpg, 0.0);
  EXPECT_GT(result_->t_gnn, 0.0);
  EXPECT_GE(result_->t_update, 0.0);
  // The GNN branch must be far cheaper than ATPG diagnosis (paper Fig. 9).
  EXPECT_LT(result_->t_gnn, result_->t_atpg);
  EXPECT_LT(result_->t_update, result_->t_atpg);
  EXPECT_EQ(result_->fhi_atpg.size(),
            static_cast<std::size_t>(result_->atpg.total));
  EXPECT_EQ(result_->fhi_updated.size(), result_->fhi_atpg.size());
}

TEST_F(IntegrationTest, TransfersToOtherConfigurations) {
  // The Syn-1-trained framework must work on the TPI netlist without
  // retraining (the paper's transferability claim).
  const ConfigResult tpi = experiment_->evaluate(DesignConfig::kTpi);
  EXPECT_GE(tpi.atpg.accuracy(), 0.9);
  EXPECT_GE(tpi.gnn.stats.accuracy(), tpi.atpg.accuracy() - 0.12);
  EXPECT_LE(tpi.gnn.stats.resolution.mean(),
            tpi.atpg.resolution.mean() + 1e-9);
}

TEST_F(IntegrationTest, CompactedModeEndToEnd) {
  ExperimentOptions opt = small_options();
  opt.compacted = true;
  opt.test_samples = 20;
  ProfileExperiment experiment(Profile::kAes, opt);
  const ConfigResult r = experiment.evaluate(DesignConfig::kSyn1);
  EXPECT_GE(r.atpg.accuracy(), 0.9);
  EXPECT_LE(r.gnn.stats.resolution.mean(), r.atpg.resolution.mean());
}

TEST_F(IntegrationTest, BackupDictionaryBounded) {
  // Memory overhead argument (paper Sec. VI-A): the dictionary stores only
  // pruned candidates.
  EXPECT_LT(result_->backup_bytes, 1u << 20);
}

}  // namespace
}  // namespace m3dfl
