#include <gtest/gtest.h>

#include "diag/failure_log.h"
#include "test_helpers.h"

namespace m3dfl {
namespace {

ScanChains make_chains(const Netlist& nl, std::int32_t n) {
  return ScanChains(nl, n, 1);
}

TEST(FailureLogTest, BypassKeepsEveryObservation) {
  const Netlist nl = testing::small_netlist(2);
  const ScanChains chains = make_chains(nl, 4);
  const std::vector<Observation> raw = {
      {0, false, 3}, {0, true, 1}, {2, false, 7}};
  const FailureLog log = make_failure_log(raw, chains, nullptr);
  EXPECT_FALSE(log.compacted);
  EXPECT_EQ(log.scan_fails.size(), 2u);
  EXPECT_EQ(log.po_fails.size(), 1u);
  EXPECT_TRUE(log.channel_fails.empty());
  EXPECT_EQ(log.num_failing_patterns(), 2);
  EXPECT_EQ(log.num_failing_bits(), 3);
}

TEST(FailureLogTest, XorCompactionParity) {
  const Netlist nl = testing::small_netlist(2);  // 32 flops
  const ScanChains chains = make_chains(nl, 4);
  const XorCompactor compactor(chains, 4);  // one channel

  // Two failing cells in the SAME channel at the same position cancel.
  const std::int32_t f0 = chains.flop_at(0, 2);
  const std::int32_t f1 = chains.flop_at(1, 2);
  const std::int32_t f2 = chains.flop_at(2, 5);
  ASSERT_GE(f0, 0);
  ASSERT_GE(f1, 0);
  ASSERT_GE(f2, 0);
  const std::vector<Observation> raw = {
      {0, false, f0}, {0, false, f1}, {0, false, f2}};
  const FailureLog log = make_failure_log(raw, chains, &compactor);
  EXPECT_TRUE(log.compacted);
  // f0^f1 cancel at position 2; f2 survives at position 5.
  ASSERT_EQ(log.channel_fails.size(), 1u);
  EXPECT_EQ(log.channel_fails[0].pattern, 0);
  EXPECT_EQ(log.channel_fails[0].channel, 0);
  EXPECT_EQ(log.channel_fails[0].position, 5);
}

TEST(FailureLogTest, OddParitySurvives) {
  const Netlist nl = testing::small_netlist(2);
  const ScanChains chains = make_chains(nl, 4);
  const XorCompactor compactor(chains, 4);
  const std::int32_t f0 = chains.flop_at(0, 1);
  const std::int32_t f1 = chains.flop_at(1, 1);
  const std::int32_t f2 = chains.flop_at(2, 1);
  const std::vector<Observation> raw = {
      {3, false, f0}, {3, false, f1}, {3, false, f2}};
  const FailureLog log = make_failure_log(raw, chains, &compactor);
  ASSERT_EQ(log.channel_fails.size(), 1u);
  EXPECT_EQ(log.channel_fails[0].position, 1);
}

TEST(FailureLogTest, PoFailsBypassCompaction) {
  const Netlist nl = testing::small_netlist(2);
  const ScanChains chains = make_chains(nl, 4);
  const XorCompactor compactor(chains, 2);
  const std::vector<Observation> raw = {{1, true, 0}, {1, true, 3}};
  const FailureLog log = make_failure_log(raw, chains, &compactor);
  EXPECT_EQ(log.po_fails.size(), 2u);
  EXPECT_TRUE(log.channel_fails.empty());
}

TEST(FailureLogTest, TruncationKeepsFirstPatterns) {
  FailureLog log;
  log.scan_fails = {{0, false, 1}, {2, false, 1}, {5, false, 2},
                    {9, false, 3}};
  log.po_fails = {{2, true, 0}, {9, true, 1}};
  const FailureLog cut = truncate_failure_log(log, 2);
  EXPECT_EQ(cut.pattern_limit, 2);
  // First two failing patterns are 0 and 2.
  ASSERT_EQ(cut.scan_fails.size(), 2u);
  EXPECT_EQ(cut.scan_fails[0].pattern, 0);
  EXPECT_EQ(cut.scan_fails[1].pattern, 2);
  ASSERT_EQ(cut.po_fails.size(), 1u);
  EXPECT_EQ(cut.po_fails[0].pattern, 2);
  EXPECT_EQ(cut.num_failing_patterns(), 2);
}

TEST(FailureLogTest, TruncationNoOpWhenWithinBudget) {
  FailureLog log;
  log.scan_fails = {{0, false, 1}, {4, false, 2}};
  const FailureLog cut = truncate_failure_log(log, 10);
  EXPECT_EQ(cut.scan_fails.size(), 2u);
  EXPECT_EQ(cut.pattern_limit, 10);
  const FailureLog uncut = truncate_failure_log(log, 0);
  EXPECT_EQ(uncut.pattern_limit, 0);
  EXPECT_EQ(uncut.scan_fails.size(), 2u);
}

TEST(FailureLogTest, TruncationCountsChannelPatterns) {
  FailureLog log;
  log.compacted = true;
  log.channel_fails = {{1, 0, 0}, {3, 1, 2}, {8, 0, 1}};
  const FailureLog cut = truncate_failure_log(log, 2);
  ASSERT_EQ(cut.channel_fails.size(), 2u);
  EXPECT_EQ(cut.channel_fails[1].pattern, 3);
  EXPECT_TRUE(cut.compacted);
}

TEST(FailureLogTest, EmptyLog) {
  FailureLog log;
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(log.num_failing_patterns(), 0);
  EXPECT_EQ(log.num_failing_bits(), 0);
}

}  // namespace
}  // namespace m3dfl
