#include <gtest/gtest.h>

#include "dft/test_points.h"
#include "test_helpers.h"

namespace m3dfl {
namespace {

TEST(ScoapTest, TinyCircuitHandValues) {
  testing::TinyCircuit c;
  const Scoap s = compute_scoap(c.netlist);
  // Sources: PIs and flop Q are 1/1.
  EXPECT_EQ(s.cc0[static_cast<std::size_t>(c.n_pi0)], 1.0);
  EXPECT_EQ(s.cc1[static_cast<std::size_t>(c.n_pi0)], 1.0);
  EXPECT_EQ(s.cc0[static_cast<std::size_t>(c.n_q)], 1.0);
  // n4 = AND(pi0, pi1): CC1 = 1+1+1 = 3; CC0 = min(1,1)+1 = 2.
  EXPECT_EQ(s.cc1[static_cast<std::size_t>(c.n4)], 3.0);
  EXPECT_EQ(s.cc0[static_cast<std::size_t>(c.n4)], 2.0);
  // n5 = INV(n4): CC0 = CC1(n4)+1 = 4; CC1 = CC0(n4)+1 = 3.
  EXPECT_EQ(s.cc0[static_cast<std::size_t>(c.n5)], 4.0);
  EXPECT_EQ(s.cc1[static_cast<std::size_t>(c.n5)], 3.0);
  // n6 = XOR(n4, q): CC1 = min(CC0(n4)+CC1(q), CC1(n4)+CC0(q)) + 1 = 4.
  EXPECT_EQ(s.cc1[static_cast<std::size_t>(c.n6)], 4.0);

  // Observability: n5 feeds a flop D directly, n6 a PO.
  EXPECT_EQ(s.co[static_cast<std::size_t>(c.n5)], 0.0);
  EXPECT_EQ(s.co[static_cast<std::size_t>(c.n6)], 0.0);
  // n4 observed through INV (0+1=1) or through XOR (0+min(1,1)+1=2): min 1.
  EXPECT_EQ(s.co[static_cast<std::size_t>(c.n4)], 1.0);
  // pi0 observed through the AND with pi1=1: CO(n4)+CC1(pi1)+1 = 3.
  EXPECT_EQ(s.co[static_cast<std::size_t>(c.n_pi0)], 3.0);
}

// Smallest possible combinational design: pi -> BUF -> po.  The buffer is
// transparent to SCOAP, so every measure is a source/sink boundary value.
TEST(ScoapTest, SingleGateBoundary) {
  Netlist nl("single");
  const GateId pi = nl.add_gate(GateType::kPrimaryInput, "pi");
  const GateId u0 = nl.add_gate(GateType::kBuf, "u0");
  const GateId po = nl.add_gate(GateType::kPrimaryOutput, "po");
  const NetId n0 = nl.add_net("n0");
  const NetId n1 = nl.add_net("n1");
  nl.set_output(pi, n0);
  nl.set_output(u0, n1);
  nl.connect_input(u0, n0);
  nl.connect_input(po, n1);
  nl.finalize();

  const Scoap s = compute_scoap(nl);
  EXPECT_EQ(s.cc0[static_cast<std::size_t>(n0)], 1.0);
  EXPECT_EQ(s.cc1[static_cast<std::size_t>(n0)], 1.0);
  // BUF adds one controllability unit, nothing to observability.
  EXPECT_EQ(s.cc0[static_cast<std::size_t>(n1)], 2.0);
  EXPECT_EQ(s.cc1[static_cast<std::size_t>(n1)], 2.0);
  EXPECT_EQ(s.co[static_cast<std::size_t>(n1)], 0.0);  // PO input
  EXPECT_EQ(s.co[static_cast<std::size_t>(n0)], 1.0);  // through the BUF
}

// All-flop pipeline: pi -> ff0 -> ff1 -> po.  In a full-scan design every
// flop boundary resets both measures (Q scan-controllable, D
// scan-observable), so no net accumulates any cost.
TEST(ScoapTest, AllFlopPipelineIsFullyTestable) {
  Netlist nl("flops");
  const GateId pi = nl.add_gate(GateType::kPrimaryInput, "pi");
  const GateId ff0 = nl.add_gate(GateType::kScanFlop, "ff0");
  const GateId ff1 = nl.add_gate(GateType::kScanFlop, "ff1");
  const GateId po = nl.add_gate(GateType::kPrimaryOutput, "po");
  const NetId n0 = nl.add_net();
  const NetId n1 = nl.add_net();
  const NetId n2 = nl.add_net();
  nl.set_output(pi, n0);
  nl.set_output(ff0, n1);
  nl.set_output(ff1, n2);
  nl.connect_input(ff0, n0);
  nl.connect_input(ff1, n1);
  nl.connect_input(po, n2);
  nl.finalize();

  const Scoap s = compute_scoap(nl);
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    EXPECT_EQ(s.cc0[static_cast<std::size_t>(n)], 1.0) << "net " << n;
    EXPECT_EQ(s.cc1[static_cast<std::size_t>(n)], 1.0) << "net " << n;
    EXPECT_EQ(s.co[static_cast<std::size_t>(n)], 0.0) << "net " << n;
  }
}

// Along a fanout-free buffer chain both controllability and observability
// are strictly monotone: each buffer costs one CC unit going forward and
// one CO unit going backward.
TEST(ScoapTest, BufferChainMonotonicity) {
  constexpr int kDepth = 6;
  Netlist nl("bufchain");
  const GateId pi = nl.add_gate(GateType::kPrimaryInput, "pi");
  NetId prev = nl.add_net();
  nl.set_output(pi, prev);
  std::vector<NetId> chain{prev};
  for (int i = 0; i < kDepth; ++i) {
    const GateId buf = nl.add_gate(GateType::kBuf);
    const NetId out = nl.add_net();
    nl.connect_input(buf, prev);
    nl.set_output(buf, out);
    chain.push_back(out);
    prev = out;
  }
  const GateId po = nl.add_gate(GateType::kPrimaryOutput, "po");
  nl.connect_input(po, prev);
  nl.finalize();

  const Scoap s = compute_scoap(nl);
  for (std::size_t i = 0; i < chain.size(); ++i) {
    const auto n = static_cast<std::size_t>(chain[i]);
    EXPECT_EQ(s.cc0[n], static_cast<double>(i + 1));
    EXPECT_EQ(s.cc1[n], static_cast<double>(i + 1));
    EXPECT_EQ(s.co[n], static_cast<double>(chain.size() - 1 - i));
  }
}

TEST(ScoapTest, DeeperLogicIsHarder) {
  const Netlist nl = testing::small_netlist(3);
  const Scoap s = compute_scoap(nl);
  // Average controllability cost must grow with level.
  double shallow = 0;
  double deep = 0;
  int ns = 0;
  int nd = 0;
  for (GateId g : nl.topo_order()) {
    const auto out = static_cast<std::size_t>(nl.gate(g).fanout);
    const double cc = s.cc0[out] + s.cc1[out];
    if (nl.level(g) <= 2) {
      shallow += cc;
      ++ns;
    } else if (nl.level(g) >= 6) {
      deep += cc;
      ++nd;
    }
  }
  ASSERT_GT(ns, 0);
  ASSERT_GT(nd, 0);
  EXPECT_LT(shallow / ns, deep / nd);
}

TEST(TpiTest, RespectsBudgetAndKeepsNetlistValid) {
  Netlist nl = testing::small_netlist(5);
  const std::int32_t gates_before = nl.num_logic_gates();
  const auto flops_before = static_cast<std::int32_t>(nl.flops().size());
  const auto pis_before = static_cast<std::int32_t>(nl.primary_inputs().size());

  TestPointOptions opt;
  opt.fraction = 0.05;
  const TestPointSummary summary = insert_test_points(nl, opt);
  EXPECT_TRUE(nl.finalized());

  const auto budget =
      static_cast<std::int32_t>(0.05 * static_cast<double>(gates_before));
  EXPECT_EQ(summary.num_observe + summary.num_control, budget);
  EXPECT_GT(summary.num_observe, 0);
  EXPECT_GT(summary.num_control, 0);
  // Observation points add scan flops; control points add PIs and gates.
  EXPECT_EQ(static_cast<std::int32_t>(nl.flops().size()),
            flops_before + summary.num_observe);
  EXPECT_EQ(static_cast<std::int32_t>(nl.primary_inputs().size()),
            pis_before + summary.num_control);
}

TEST(TpiTest, ZeroFractionIsNoOp) {
  Netlist nl = testing::small_netlist(5);
  const std::string before = nl.name();
  TestPointOptions opt;
  opt.fraction = 0.0;
  const TestPointSummary summary = insert_test_points(nl, opt);
  EXPECT_EQ(summary.num_observe, 0);
  EXPECT_EQ(summary.num_control, 0);
  EXPECT_EQ(nl.name(), before);
}

TEST(TpiTest, RejectsAbsurdFraction) {
  Netlist nl = testing::small_netlist(5);
  TestPointOptions opt;
  opt.fraction = 0.5;
  EXPECT_THROW(insert_test_points(nl, opt), Error);
}

TEST(TpiTest, ObservationPointsTargetWorstObservability) {
  Netlist nl = testing::small_netlist(8);
  const Scoap before = compute_scoap(nl);
  // The worst-observability net must be sensed by the first TP flop.
  NetId worst = 0;
  for (NetId n = 1; n < nl.num_nets(); ++n) {
    if (before.co[static_cast<std::size_t>(n)] >
        before.co[static_cast<std::size_t>(worst)]) {
      worst = n;
    }
  }
  TestPointOptions opt;
  opt.fraction = 0.02;
  opt.observe_share = 1.0;
  insert_test_points(nl, opt);
  bool sensed = false;
  for (GateId ff : nl.flops()) {
    if (nl.gate(ff).name.rfind("tpobs", 0) == 0 &&
        nl.gate(ff).fanin[0] == worst) {
      sensed = true;
    }
  }
  EXPECT_TRUE(sensed);
}

}  // namespace
}  // namespace m3dfl
