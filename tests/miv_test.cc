#include <gtest/gtest.h>

#include "m3d/miv.h"
#include "test_helpers.h"

namespace m3dfl {
namespace {

TEST(MivTest, OneMivPerCutNet) {
  const Netlist nl = testing::small_netlist(6);
  PartitionOptions opt;
  opt.method = PartitionMethod::kMinCut;
  const TierAssignment ta = partition_tiers(nl, opt);
  const MivMap mivs(nl, ta);
  EXPECT_EQ(mivs.num_mivs(), ta.cut_size(nl));
}

TEST(MivTest, NetToMivIsInverse) {
  const Netlist nl = testing::small_netlist(6);
  const TierAssignment ta = partition_tiers(nl, {});
  const MivMap mivs(nl, ta);
  for (MivId m = 0; m < mivs.num_mivs(); ++m) {
    EXPECT_EQ(mivs.miv_of_net(mivs.miv(m).net), m);
  }
  // Non-cut nets map to kNullMiv.
  std::int32_t null_count = 0;
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    if (mivs.miv_of_net(n) == kNullMiv) ++null_count;
  }
  EXPECT_EQ(null_count + mivs.num_mivs(), nl.num_nets());
}

TEST(MivTest, FarSinksAreOppositeTier) {
  const Netlist nl = testing::small_netlist(6);
  const TierAssignment ta = partition_tiers(nl, {});
  const MivMap mivs(nl, ta);
  ASSERT_GT(mivs.num_mivs(), 0);
  for (const Miv& miv : mivs.mivs()) {
    EXPECT_EQ(ta.tier_of(nl.net(miv.net).driver), miv.driver_tier);
    EXPECT_FALSE(miv.far_sinks.empty());
    for (const PinRef& sink : miv.far_sinks) {
      EXPECT_NE(ta.tier_of(sink.gate), miv.driver_tier);
    }
  }
}

TEST(MivTest, HandBuiltCutNet) {
  testing::TinyCircuit c;
  TierAssignment ta(std::vector<std::int8_t>(
      static_cast<std::size_t>(c.netlist.num_gates()), kBottomTier));
  ta.set_tier(c.u2, kTopTier);  // n4 (u0 -> u1/u2) and n_q cross tiers
  const MivMap mivs(c.netlist, ta);
  // Cut nets: n4 (sink u2 on top), n_q (ff0 bottom -> u2 top),
  // n6 (u2 top -> po bottom, but POs are excluded from partitioning...).
  const MivId m4 = mivs.miv_of_net(c.n4);
  ASSERT_NE(m4, kNullMiv);
  ASSERT_EQ(mivs.miv(m4).far_sinks.size(), 1u);
  EXPECT_EQ(mivs.miv(m4).far_sinks[0].gate, c.u2);
  EXPECT_EQ(mivs.miv(m4).driver_tier, kBottomTier);
  EXPECT_NE(mivs.miv_of_net(c.n_q), kNullMiv);
  // n5 stays within the bottom tier.
  EXPECT_EQ(mivs.miv_of_net(c.n5), kNullMiv);
}

TEST(MivTest, NoMivsWhenSingleTier) {
  testing::TinyCircuit c;
  const TierAssignment ta(std::vector<std::int8_t>(
      static_cast<std::size_t>(c.netlist.num_gates()), kBottomTier));
  const MivMap mivs(c.netlist, ta);
  EXPECT_EQ(mivs.num_mivs(), 0);
}

}  // namespace
}  // namespace m3dfl
