// registry::ModelRegistry: filename scheme, lazy loading, versioned lookup,
// byte-watermark LRU eviction (epoch-style: never invalidates a live
// reader), atomic hot reload with corrupt-replacement rejection, and the
// format-1 migration gate.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "registry/registry.h"
#include "util/limits.h"
#include "util/artifact.h"
#include "util/atomic_file.h"
#include "util/error.h"

namespace m3dfl {
namespace {

namespace fs = std::filesystem;
using registry::ModelRegistry;
using registry::RegistryOptions;

class RegistryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // A small but genuinely trained framework: registry loads run the full
    // artifact + framework parse path, so the payload must be real.
    const auto design = Design::build(Profile::kAes, DesignConfig::kSyn1);
    TransferTrainOptions train;
    train.samples_syn1 = 12;
    train.samples_per_random = 6;
    const LabeledDataset data =
        build_transfer_training_set(Profile::kAes, *design, train);
    FrameworkOptions options;
    options.training.epochs = 5;
    DiagnosisFramework framework(options);
    framework.train(data.graphs);
    std::ostringstream os;
    framework.save(os);
    artifact_ = new std::string(os.str());
  }
  static void TearDownTestSuite() {
    delete artifact_;
    artifact_ = nullptr;
  }

  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("m3dfl_registry_test_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path_for(const std::string& design, std::int32_t version) const {
    return (dir_ / ModelRegistry::artifact_filename(design, version)).string();
  }
  void publish(const std::string& design, std::int32_t version,
               const std::string& bytes) const {
    write_file_atomic(path_for(design, version), bytes);
  }

  // A byte-identical-format artifact whose payload differs (tp_threshold
  // replaced), picking a hexfloat long enough that the file size changes —
  // the registry's freshness stamp is (size, mtime), and mtime granularity
  // alone is not a reliable edge under fast test turnaround.
  static std::string variant_artifact(double threshold) {
    std::string payload =
        read_artifact(*artifact_, kFrameworkKind, "<test>");
    const std::size_t at = payload.find("tp_threshold ");
    const std::size_t eol = payload.find('\n', at);
    std::ostringstream value;
    value << std::hexfloat << threshold;
    payload = payload.substr(0, at + 13) + value.str() + payload.substr(eol);
    return artifact_to_string(kFrameworkKind, payload);
  }

  // Flips one payload byte inside the container without fixing the CRC.
  static std::string corrupt_artifact(const std::string& artifact) {
    std::string bad = artifact;
    const std::size_t at = bad.find("tp_threshold");
    bad[at] = 'T';
    return bad;
  }

  static std::string* artifact_;
  fs::path dir_;
};

std::string* RegistryTest::artifact_ = nullptr;

TEST_F(RegistryTest, FilenameRoundTripsAndRejectsGarbage) {
  EXPECT_EQ(ModelRegistry::artifact_filename("AES-Syn-1", 3),
            "AES-Syn-1@3.m3dfl");
  std::string design;
  std::int32_t version = 0;
  ASSERT_TRUE(ModelRegistry::parse_artifact_filename("AES-Syn-1@3.m3dfl",
                                                     &design, &version));
  EXPECT_EQ(design, "AES-Syn-1");
  EXPECT_EQ(version, 3);
  EXPECT_FALSE(ModelRegistry::parse_artifact_filename("README.md", nullptr,
                                                      nullptr));
  EXPECT_FALSE(
      ModelRegistry::parse_artifact_filename("noversion.m3dfl", nullptr,
                                             nullptr));
  EXPECT_FALSE(
      ModelRegistry::parse_artifact_filename("a@0.m3dfl", nullptr, nullptr));
  EXPECT_FALSE(
      ModelRegistry::parse_artifact_filename("a@x.m3dfl", nullptr, nullptr));
  EXPECT_FALSE(
      ModelRegistry::parse_artifact_filename("@3.m3dfl", nullptr, nullptr));
  EXPECT_THROW(ModelRegistry::artifact_filename("has/slash", 1), Error);
  EXPECT_EQ(registry::sanitize_model_name("AES/Syn-1"), "AES-Syn-1");
  EXPECT_EQ(registry::sanitize_model_name("ok_name.v2"), "ok_name.v2");
}

// ParseLimits guardrails: registry filenames come from directory listings
// (untrusted once an attacker can drop files in the registry dir) and from
// design names (untrusted via the serving API).  Both directions are capped
// at max_filename_bytes so no filesystem ever sees an over-long name.
TEST_F(RegistryTest, FilenameLimitsAreEnforcedBothWays) {
  const std::size_t cap = ParseLimits::defaults().max_filename_bytes;
  // Listing direction: a filename over the cap is filtered, not parsed.
  const std::string overlong = std::string(cap, 'a') + "@1.m3dfl";
  EXPECT_FALSE(
      ModelRegistry::parse_artifact_filename(overlong, nullptr, nullptr));
  // Composing direction: a design name that cannot fit with "@V.m3dfl"
  // attached throws a cited Error instead of emitting a bad filename.
  try {
    ModelRegistry::artifact_filename(std::string(cap, 'a'), 1);
    FAIL() << "over-long design name accepted";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("registry artifact filename"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("limit exceeded: filename bytes"), std::string::npos)
        << msg;
  }
  // sanitize_model_name bounds its output so sanitized names always compose.
  const std::string sanitized =
      registry::sanitize_model_name(std::string(1000, 'x'));
  EXPECT_LE(sanitized.size(), cap / 2);
  EXPECT_EQ(ModelRegistry::artifact_filename(sanitized, 1),
            sanitized + "@1.m3dfl");
  // Path separators never survive into a filename, so a traversal attempt
  // stays a flat (if ugly) name inside the registry directory.
  EXPECT_EQ(registry::sanitize_model_name("../../etc/passwd"),
            "..-..-etc-passwd");
}

TEST_F(RegistryTest, LazyLoadThenResidentHits) {
  publish("aes", 1, *artifact_);
  publish("tate", 1, *artifact_);
  ModelRegistry registry(dir_.string());
  EXPECT_EQ(registry.designs().size(), 2u);
  EXPECT_EQ(registry.loads(), 0);  // index only; nothing read yet
  EXPECT_EQ(registry.resident_count(), 0u);

  const auto model = registry.acquire("aes");
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->design, "aes");
  EXPECT_EQ(model->version, 1);
  EXPECT_EQ(model->generation, 1u);
  EXPECT_TRUE(model->framework.trained());
  EXPECT_EQ(registry.loads(), 1);
  EXPECT_EQ(registry.resident_count(), 1u);
  EXPECT_EQ(registry.resident_bytes(), artifact_->size());

  const auto again = registry.acquire("aes");
  EXPECT_EQ(again.get(), model.get());  // same resident instance
  EXPECT_EQ(registry.loads(), 1);
  EXPECT_EQ(registry.hits(), 1);
}

TEST_F(RegistryTest, LatestVersusPinnedVersion) {
  const std::string v2 = variant_artifact(0.75);
  publish("aes", 1, *artifact_);
  publish("aes", 3, v2);
  ModelRegistry registry(dir_.string());
  EXPECT_EQ(registry.versions("aes"), (std::vector<std::int32_t>{1, 3}));
  EXPECT_TRUE(registry.has("aes", 3));
  EXPECT_FALSE(registry.has("aes", 2));

  EXPECT_EQ(registry.acquire("aes")->version, 3);  // latest
  EXPECT_EQ(registry.acquire("aes", 1)->version, 1);
  EXPECT_THROW(registry.acquire("aes", 2), Error);
  EXPECT_THROW(registry.acquire("unknown"), Error);
}

TEST_F(RegistryTest, ImplicitRescanFindsNewlyPublishedModels) {
  publish("aes", 1, *artifact_);
  ModelRegistry registry(dir_.string());
  EXPECT_THROW(registry.acquire("tate"), Error);
  publish("tate", 1, *artifact_);
  EXPECT_EQ(registry.acquire("tate")->design, "tate");  // rescan on miss
  publish("aes", 2, variant_artifact(0.75));
  EXPECT_EQ(registry.acquire("aes", 2)->version, 2);
}

TEST_F(RegistryTest, ByteWatermarkEvictionNeverInvalidatesLiveReaders) {
  publish("a", 1, *artifact_);
  publish("b", 1, *artifact_);
  publish("c", 1, *artifact_);
  RegistryOptions options;
  // Room for two resident models, not three.
  options.max_resident_bytes = artifact_->size() * 2 + artifact_->size() / 2;
  ModelRegistry registry(dir_.string(), options);

  const auto a = registry.acquire("a");
  const auto b = registry.acquire("b");
  EXPECT_EQ(registry.resident_count(), 2u);
  const auto c = registry.acquire("c");  // evicts "a" (LRU)
  EXPECT_EQ(registry.evictions(), 1);
  EXPECT_EQ(registry.resident_count(), 2u);
  EXPECT_LE(registry.resident_bytes(), options.max_resident_bytes);

  // The evicted model stays fully usable through the reader's shared_ptr.
  EXPECT_TRUE(a->framework.trained());
  EXPECT_EQ(a->design, "a");

  // Re-acquiring the evicted model is a fresh load under a new generation.
  const auto a2 = registry.acquire("a");
  EXPECT_NE(a2.get(), a.get());
  EXPECT_GT(a2->generation, c->generation);
  EXPECT_EQ(registry.loads(), 4);
}

TEST_F(RegistryTest, EvictionKeepsTheJustAcquiredModel) {
  publish("a", 1, *artifact_);
  publish("b", 1, *artifact_);
  RegistryOptions options;
  options.max_resident_bytes = 1;  // below even a single artifact
  ModelRegistry registry(dir_.string(), options);
  const auto a = registry.acquire("a");
  EXPECT_EQ(registry.resident_count(), 1u);  // keep_key survives over-budget
  const auto b = registry.acquire("b");
  EXPECT_EQ(b->design, "b");
  EXPECT_EQ(registry.resident_count(), 1u);  // "a" evicted, "b" kept
  EXPECT_EQ(registry.evictions(), 1);
  EXPECT_TRUE(a->framework.trained());
}

TEST_F(RegistryTest, AtomicReplacementHotReloadsUnderNewGeneration) {
  publish("aes", 1, *artifact_);
  ModelRegistry registry(dir_.string());
  const auto before = registry.acquire("aes");
  EXPECT_EQ(before->generation, 1u);

  publish("aes", 1, variant_artifact(0.75));  // atomic rename-replace
  const auto after = registry.acquire("aes");
  EXPECT_EQ(after->generation, 2u);
  EXPECT_NE(after.get(), before.get());
  EXPECT_DOUBLE_EQ(after->framework.tp_threshold(), 0.75);
  EXPECT_EQ(registry.reloads(), 1);
  // The displaced model is still alive for its in-flight readers.
  EXPECT_TRUE(before->framework.trained());
}

TEST_F(RegistryTest, CorruptReplacementIsRejectedAndOldModelKeepsServing) {
  publish("aes", 1, *artifact_);
  ModelRegistry registry(dir_.string());
  const auto before = registry.acquire("aes");

  publish("aes", 1, corrupt_artifact(variant_artifact(0.75)));
  const auto after = registry.acquire("aes");
  EXPECT_EQ(after.get(), before.get());  // old generation keeps serving
  EXPECT_EQ(after->generation, 1u);
  EXPECT_EQ(registry.reload_failures(), 1);
  EXPECT_EQ(registry.reloads(), 0);
  EXPECT_EQ(registry.generation(), 1u);  // corrupt loads never take a gen

  // Publishing a good artifact afterwards recovers on the next acquire.
  publish("aes", 1, variant_artifact(0.5));
  EXPECT_EQ(registry.acquire("aes")->generation, 2u);
  EXPECT_EQ(registry.reloads(), 1);
}

TEST_F(RegistryTest, CorruptFirstLoadThrows) {
  publish("aes", 1, corrupt_artifact(*artifact_));
  ModelRegistry registry(dir_.string());
  EXPECT_THROW(registry.acquire("aes"), Error);
  EXPECT_EQ(registry.loads(), 0);
  EXPECT_EQ(registry.generation(), 0u);
}

TEST_F(RegistryTest, LegacyFormat1FilesAreRejectedWithMigrationHint) {
  // A bare version-1 stream is exactly the container's payload.
  publish("aes", 1, read_artifact(*artifact_, kFrameworkKind, "<test>"));
  ModelRegistry registry(dir_.string());
  try {
    registry.acquire("aes");
    FAIL() << "expected format-1 rejection";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("migrate-artifact"),
              std::string::npos)
        << e.what();
  }
  // The migrated form (what `m3dfl_tool migrate-artifact` writes: load via
  // the legacy shim, save as a container) is accepted.
  DiagnosisFramework migrated;
  {
    std::istringstream is(read_artifact(*artifact_, kFrameworkKind, "<test>"));
    migrated.load(is, "<legacy>");
  }
  std::ostringstream os;
  migrated.save(os);
  publish("aes", 1, os.str());
  EXPECT_EQ(registry.acquire("aes")->generation, 1u);
}

TEST_F(RegistryTest, InjectedLoadFaultFailsReloadButNotTheOldModel) {
  publish("aes", 1, *artifact_);
  RegistryOptions options;
  options.fault_injector =
      std::make_shared<FaultInjector>(registry::kNumRegistrySeams, 0xF00D);
  // Exactly the second load call (the reload) fails.
  options.fault_injector->arm_nth(
      static_cast<int>(registry::RegistrySeam::kLoad), {2});
  ModelRegistry registry(dir_.string(), options);
  const auto before = registry.acquire("aes");
  publish("aes", 1, variant_artifact(0.75));
  EXPECT_EQ(registry.acquire("aes").get(), before.get());  // injected fail
  EXPECT_EQ(registry.reload_failures(), 1);
  EXPECT_EQ(registry.acquire("aes")->generation, 2u);  // next acquire heals
}

TEST_F(RegistryTest, ConcurrentAcquireAndReloadStaysConsistent) {
  publish("aes", 1, *artifact_);
  publish("tate", 1, *artifact_);
  ModelRegistry registry(dir_.string());
  std::vector<std::thread> threads;
  std::atomic<bool> stop{false};
  std::atomic<std::int64_t> observed{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      const std::string design = (t % 2 == 0) ? "aes" : "tate";
      while (!stop.load(std::memory_order_relaxed)) {
        const auto model = registry.acquire(design);
        if (model->framework.trained()) {
          observed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  // Replace both artifacts a few times while readers hammer acquire().
  for (const double threshold : {0.75, 0.5, 0.75}) {
    publish("aes", 1, variant_artifact(threshold));
    publish("tate", 1, variant_artifact(threshold));
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  stop.store(true);
  for (auto& t : threads) t.join();
  EXPECT_GT(observed.load(), 0);
  EXPECT_GE(registry.reloads(), 2);
  EXPECT_EQ(registry.reload_failures(), 0);
  EXPECT_EQ(registry.generation(),
            static_cast<std::uint64_t>(registry.loads() + registry.reloads()));
}

}  // namespace
}  // namespace m3dfl
