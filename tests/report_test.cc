#include <gtest/gtest.h>

#include "diag/report.h"
#include "test_helpers.h"

namespace m3dfl {
namespace {

Candidate cand(PinId pin, double score = 0.0) {
  Candidate c;
  c.fault = Fault::slow_to_rise(pin);
  c.score = score;
  return c;
}

TEST(ReportTest, MoveToTopIsStable) {
  DiagnosisReport r;
  r.candidates = {cand(1), cand(2), cand(3), cand(4), cand(5)};
  move_to_top(r, [](const Candidate& c) { return c.fault.pin % 2 == 0; });
  ASSERT_EQ(r.resolution(), 5);
  EXPECT_EQ(r.candidates[0].fault.pin, 2);
  EXPECT_EQ(r.candidates[1].fault.pin, 4);
  EXPECT_EQ(r.candidates[2].fault.pin, 1);
  EXPECT_EQ(r.candidates[3].fault.pin, 3);
  EXPECT_EQ(r.candidates[4].fault.pin, 5);
}

TEST(ReportTest, PruneReturnsRemovedInOrder) {
  DiagnosisReport r;
  r.candidates = {cand(1), cand(2), cand(3), cand(4)};
  const auto removed =
      prune_candidates(r, [](const Candidate& c) { return c.fault.pin > 2; });
  ASSERT_EQ(removed.size(), 2u);
  EXPECT_EQ(removed[0].fault.pin, 3);
  EXPECT_EQ(removed[1].fault.pin, 4);
  ASSERT_EQ(r.resolution(), 2);
  EXPECT_EQ(r.candidates[0].fault.pin, 1);
}

TEST(BackupDictionaryTest, RecordsAndRestores) {
  BackupDictionary dict;
  dict.record(7, {cand(1), cand(2)});
  dict.record(9, {cand(3)});
  dict.record(11, {});  // empty prunes are not stored
  EXPECT_EQ(dict.num_entries(), 2);
  EXPECT_EQ(dict.num_candidates(), 3);
  EXPECT_EQ(dict.lookup(7).size(), 2u);
  EXPECT_EQ(dict.lookup(9)[0].fault.pin, 3);
  EXPECT_TRUE(dict.lookup(11).empty());
  EXPECT_TRUE(dict.lookup(12345).empty());
  EXPECT_GT(dict.size_bytes(), 0u);
}

TEST(BackupDictionaryTest, RestorationRecoversAccuracy) {
  // Prune the truth out of a report, then verify the dictionary contains it.
  DiagnosisReport r;
  r.candidates = {cand(1), cand(2), cand(3)};
  BackupDictionary dict;
  dict.record(0, prune_candidates(r, [](const Candidate& c) {
                return c.fault.pin == 2;
              }));
  bool truth_in_report = false;
  for (const Candidate& c : r.candidates) {
    truth_in_report = truth_in_report || c.fault.pin == 2;
  }
  EXPECT_FALSE(truth_in_report);
  bool truth_in_backup = false;
  for (const Candidate& c : dict.lookup(0)) {
    truth_in_backup = truth_in_backup || c.fault.pin == 2;
  }
  EXPECT_TRUE(truth_in_backup);
}

TEST(ReportTest, ToStringListsCandidates) {
  testing::TinyCircuit tc;
  DiagnosisReport r;
  r.candidates = {cand(tc.netlist.output_pin(tc.u0), 5.0)};
  const std::string s = report_to_string(tc.netlist, r);
  EXPECT_NE(s.find("1 candidate"), std::string::npos);
  EXPECT_NE(s.find("STR@u0.Y"), std::string::npos);
}

TEST(ReportTest, ToStringTruncatesLongReports) {
  testing::TinyCircuit tc;
  DiagnosisReport r;
  for (int i = 0; i < 10; ++i) {
    r.candidates.push_back(cand(tc.netlist.output_pin(tc.u0)));
  }
  const std::string s = report_to_string(tc.netlist, r, 4);
  EXPECT_NE(s.find("(6 more)"), std::string::npos);
}

}  // namespace
}  // namespace m3dfl
