// End-to-end chaos harness for the tester-noise layer (diag/noise.h) and
// the quarantining back-trace (graph/backtrace.h).
//
// The contract under seeded log perturbation:
//   - rate 0 (armed but quiet) is byte-identical to the clean path, for the
//     perturbed log AND the full diagnosis pipeline built on it;
//   - the same seed reproduces the same perturbed log, the same quarantine
//     set, and the same diagnosis report — chaos runs are replayable;
//   - perturbed logs stay parseable (round-trip through the text format,
//     no lint *errors*): the noise reaches the back-trace instead of dying
//     at input validation;
//   - a single spurious response whose cone is disjoint from the consensus
//     is quarantined — excluded from the intersection and cited — not
//     silently absorbed by the majority relaxation;
//   - evidence-only noise (drop, store truncation) never removes the true
//     fault site from the candidates, and whenever any noise kind does
//     knock the site out, the result is flagged noisy (never silent);
//   - the truncate-store signature trips the `log-store-truncated` lint;
//   - the serving layer surfaces quarantine as confidence.noisy_log plus
//     metrics counters.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "diag/atpg_diagnosis.h"
#include "diag/log_io.h"
#include "diag/noise.h"
#include "diag/report.h"
#include "graph/backtrace.h"
#include "lint/checks.h"
#include "serve/service.h"
#include "test_helpers.h"

namespace m3dfl {
namespace {

struct NoiseSetup {
  testing::SmallDesign d;
  HeteroGraph graph;

  explicit NoiseSetup(std::uint64_t seed = 5)
      : d(seed), graph(d.netlist, d.tiers, d.mivs) {}
};

// No-thinning options so quarantine indices are predictable from log order.
BacktraceOptions untinned() {
  BacktraceOptions options;
  options.max_traced_responses = 1 << 20;
  return options;
}

std::vector<Sample> sample_logs(const NoiseSetup& s, std::uint64_t seed,
                                std::int32_t count, bool compacted = false) {
  DataGenOptions opt;
  opt.num_samples = count;
  opt.compacted = compacted;
  opt.max_failing_patterns = 0;
  opt.seed = seed;
  return generate_samples(s.d.context(), opt);
}

// Serialized full-pipeline output: the perturbed log, the back-trace result
// (candidates, support, quarantine, relaxation), and the ranked ATPG
// report.  Byte-compared across runs.
std::string pipeline_fingerprint(const NoiseSetup& s, const FailureLog& log) {
  std::ostringstream os;
  os << failure_log_to_string(log);
  const BacktraceResult bt =
      backtrace_with_support(s.graph, s.d.context(), log, untinned());
  os << "relaxed " << bt.relaxed << " responses " << bt.num_responses << "\n";
  for (std::size_t i = 0; i < bt.candidates.size(); ++i) {
    os << bt.candidates[i] << " " << bt.support[i] << "\n";
  }
  for (const QuarantinedResponse& q : bt.quarantined) {
    os << "quarantined " << q.response_index << " " << q.pattern << " "
       << q.overlap << "\n";
  }
  os << report_to_string(s.d.netlist, diagnose_atpg(s.d.context(), log));
  return os.str();
}

// Suspect set of one observation (strict intersection over a
// single-response log is exactly its suspect cone).
std::vector<NodeId> one_response_suspects(const NoiseSetup& s,
                                          const Observation& o) {
  FailureLog log;
  if (o.at_po) {
    log.po_fails = {o};
  } else {
    log.scan_fails = {o};
  }
  return backtrace_candidates(s.graph, s.d.context(), log, untinned());
}

bool disjoint_sorted(const std::vector<NodeId>& a,
                     const std::vector<NodeId>& b) {
  std::vector<NodeId> both;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(both));
  return both.empty();
}

bool contains_node(const std::vector<NodeId>& sorted, NodeId node) {
  return std::binary_search(sorted.begin(), sorted.end(), node);
}

// ---- rate 0: armed but quiet ------------------------------------------------

TEST(NoiseChaosTest, RateZeroLogIsByteIdenticalForEveryKind) {
  NoiseSetup s;
  const auto samples = sample_logs(s, 51, 3);
  for (bool compacted : {false, true}) {
    const auto set = compacted ? sample_logs(s, 51, 3, true) : samples;
    for (const Sample& sample : set) {
      const std::string clean = failure_log_to_string(sample.log);
      for (NoiseKind kind : kAllNoiseKinds) {
        NoiseOptions options;
        options.kind = kind;
        options.rate = 0.0;
        LogNoiseModel model(s.d.context(), options);
        EXPECT_EQ(failure_log_to_string(model.perturb(sample.log)), clean)
            << noise_kind_name(kind);
        EXPECT_EQ(model.summary().total(), 0);
      }
      NoiseOptions none;
      none.kind = NoiseKind::kNone;
      none.rate = 0.7;  // kNone is quiet at any rate
      LogNoiseModel model(s.d.context(), none);
      EXPECT_EQ(failure_log_to_string(model.perturb(sample.log)), clean);
    }
  }
}

TEST(NoiseChaosTest, RateZeroFullPipelineIsByteIdentical) {
  NoiseSetup s;
  for (const Sample& sample : sample_logs(s, 53, 2)) {
    const std::string clean = pipeline_fingerprint(s, sample.log);
    for (NoiseKind kind : kAllNoiseKinds) {
      NoiseOptions options;
      options.kind = kind;
      options.rate = 0.0;
      const FailureLog perturbed =
          perturb_failure_log(sample.log, s.d.context(), options);
      EXPECT_EQ(pipeline_fingerprint(s, perturbed), clean)
          << noise_kind_name(kind);
    }
  }
}

// ---- seeded determinism -----------------------------------------------------

TEST(NoiseChaosTest, SameSeedReproducesLogQuarantineAndReport) {
  NoiseSetup s;
  const auto samples = sample_logs(s, 55, 3);
  for (NoiseKind kind : kAllNoiseKinds) {
    NoiseOptions options;
    options.kind = kind;
    options.rate = 0.2;
    options.seed = 0xBADC0FFEEull;
    for (const Sample& sample : samples) {
      NoiseSummary sum_a;
      NoiseSummary sum_b;
      const FailureLog a =
          perturb_failure_log(sample.log, s.d.context(), options, &sum_a);
      const FailureLog b =
          perturb_failure_log(sample.log, s.d.context(), options, &sum_b);
      ASSERT_EQ(failure_log_to_string(a), failure_log_to_string(b))
          << noise_kind_name(kind);
      EXPECT_EQ(sum_a.total(), sum_b.total());
      // Same perturbed log -> same quarantine set and same report, byte for
      // byte (the whole downstream pipeline is deterministic).
      EXPECT_EQ(pipeline_fingerprint(s, a), pipeline_fingerprint(s, b));
    }
  }
}

TEST(NoiseChaosTest, DifferentSeedsEventuallyDiverge) {
  NoiseSetup s;
  const auto samples = sample_logs(s, 57, 4);
  for (NoiseKind kind :
       {NoiseKind::kDropResponse, NoiseKind::kSpuriousResponse,
        NoiseKind::kFlipBit}) {
    NoiseOptions a;
    a.kind = kind;
    a.rate = 0.25;
    a.seed = 1;
    NoiseOptions b = a;
    b.seed = 2;
    bool diverged = false;
    for (const Sample& sample : samples) {
      const std::string pa =
          failure_log_to_string(perturb_failure_log(sample.log,
                                                    s.d.context(), a));
      const std::string pb =
          failure_log_to_string(perturb_failure_log(sample.log,
                                                    s.d.context(), b));
      if (pa != pb) diverged = true;
    }
    EXPECT_TRUE(diverged) << noise_kind_name(kind);
  }
}

// ---- perturbed logs stay parseable ------------------------------------------

TEST(NoiseChaosTest, PerturbedLogsRoundTripAndLintWithoutErrors) {
  NoiseSetup s;
  for (bool compacted : {false, true}) {
    const auto samples = sample_logs(s, 59, 3, compacted);
    for (NoiseKind kind : kAllNoiseKinds) {
      for (double rate : {0.1, 0.35}) {
        NoiseOptions options;
        options.kind = kind;
        options.rate = rate;
        options.seed = 0xF00D + static_cast<std::uint64_t>(rate * 100);
        for (const Sample& sample : samples) {
          const FailureLog perturbed =
              perturb_failure_log(sample.log, s.d.context(), options);
          if (perturbed.empty()) continue;  // heavy drop can empty a log
          // The text format round-trips: no duplicate bits, no invalid
          // records slipped in.
          const std::string text = failure_log_to_string(perturbed);
          EXPECT_EQ(failure_log_to_string(failure_log_from_string(text)),
                    text);
          // The lint failure-log pass sees warnings at most: spurious and
          // flipped bits land at valid observation points.
          lint::Subject subject;
          subject.netlist = &s.d.netlist;
          subject.scan = &s.d.scan;
          subject.compactor = &s.d.compactor;
          subject.log = &perturbed;
          subject.num_patterns = s.d.sim.num_patterns();
          lint::Report report;
          lint::run_failure_log_checks(subject, report);
          EXPECT_FALSE(report.has_errors())
              << noise_kind_name(kind) << " rate " << rate << "\n"
              << report.to_string();
        }
      }
    }
  }
}

// ---- quarantine under injected spurious responses ---------------------------

// Log-order response indices (scan_fails, then channel_fails, then
// po_fails, over the *noisy* log) of every record present in `noisy` but
// not in `clean` — the spurious bits the noise model injected.  Injection
// preserves the order of the clean records, so a two-pointer walk finds
// the extras; records compare equal when neither is operator< the other.
template <typename T>
void diff_injected(const std::vector<T>& clean, const std::vector<T>& noisy,
                   std::int32_t base, std::vector<std::int32_t>& injected) {
  std::size_t ci = 0;
  for (std::size_t ni = 0; ni < noisy.size(); ++ni) {
    if (ci < clean.size() && !(noisy[ni] < clean[ci]) &&
        !(clean[ci] < noisy[ni])) {
      ++ci;
    } else {
      injected.push_back(base + static_cast<std::int32_t>(ni));
    }
  }
}

std::vector<std::int32_t> injected_indices(const FailureLog& clean,
                                           const FailureLog& noisy) {
  std::vector<std::int32_t> injected;
  diff_injected(clean.scan_fails, noisy.scan_fails, 0, injected);
  diff_injected(clean.channel_fails, noisy.channel_fails,
                static_cast<std::int32_t>(noisy.scan_fails.size()), injected);
  diff_injected(clean.po_fails, noisy.po_fails,
                static_cast<std::int32_t>(noisy.scan_fails.size() +
                                          noisy.channel_fails.size()),
                injected);
  return injected;
}

// The observation/channel record at a log-order response index of a bypass
// or compacted log, reduced to (pattern, single-response cone).
struct ResponseAt {
  std::int32_t pattern = 0;
  std::vector<NodeId> cone;
};

ResponseAt response_at(const NoiseSetup& s, const FailureLog& log,
                       std::int32_t index) {
  ResponseAt out;
  const auto scan = static_cast<std::int32_t>(log.scan_fails.size());
  const auto chan = static_cast<std::int32_t>(log.channel_fails.size());
  if (index < scan) {
    const Observation& o = log.scan_fails[static_cast<std::size_t>(index)];
    out.pattern = o.pattern;
    out.cone = one_response_suspects(s, o);
  } else if (index < scan + chan) {
    const ChannelFail& c =
        log.channel_fails[static_cast<std::size_t>(index - scan)];
    FailureLog single;
    single.compacted = true;
    single.channel_fails = {c};
    out.pattern = c.pattern;
    out.cone = backtrace_candidates(s.graph, s.d.context(), single,
                                    untinned());
  } else {
    const Observation& o =
        log.po_fails[static_cast<std::size_t>(index - scan - chan)];
    out.pattern = o.pattern;
    out.cone = one_response_suspects(s, o);
  }
  return out;
}

TEST(NoiseChaosTest, SeededSpuriousInjectionIsQuarantinedAtItsPosition) {
  NoiseSetup s;
  const auto samples = sample_logs(s, 61, 5);
  const BacktraceOptions options = untinned();
  int quarantined_cases = 0;
  int silent_narrowings = 0;
  int checked = 0;
  for (const Sample& sample : samples) {
    const BacktraceResult clean_result =
        backtrace_with_support(s.graph, s.d.context(), sample.log, options);
    const std::vector<NodeId>& clean = clean_result.candidates;
    for (std::uint64_t seed = 1; seed <= 40 && quarantined_cases < 3;
         ++seed) {
      NoiseOptions noise;
      noise.kind = NoiseKind::kSpuriousResponse;
      noise.rate = 0.02;
      noise.seed = seed;
      NoiseSummary summary;
      const FailureLog noisy =
          perturb_failure_log(sample.log, s.d.context(), noise, &summary);
      if (summary.injected != 1) continue;  // want exactly one spurious bit
      const std::vector<std::int32_t> injected =
          injected_indices(sample.log, noisy);
      ASSERT_EQ(injected.size(), 1u);
      const ResponseAt spurious = response_at(s, noisy, injected[0]);
      const BacktraceResult result =
          backtrace_with_support(s.graph, s.d.context(), noisy, options);
      ++checked;
      if (!spurious.cone.empty() && disjoint_sorted(spurious.cone, clean)) {
        // The spurious cone shares nothing with the clean candidates, so it
        // kills the strict intersection — exactly the case the relaxation
        // used to absorb silently.  Now the degradation is always flagged:
        // either the outlier is quarantined (clean candidates restored) or
        // the majority relaxation runs, and noisy() reports both.
        EXPECT_TRUE(result.noisy()) << "seed " << seed;
        if (result.quarantined.size() == 1u) {
          // Quarantine cites exactly the injected position and restores
          // the clean-log result (including its relaxation state).
          EXPECT_EQ(result.quarantined[0].response_index, injected[0]);
          EXPECT_EQ(result.quarantined[0].pattern, spurious.pattern);
          EXPECT_EQ(result.candidates, clean);
          EXPECT_EQ(result.relaxed, clean_result.relaxed);
          ++quarantined_cases;
        } else {
          // Not condemned by the overlap test (its cone shares enough of
          // the best-supported core): the relaxed majority still keeps the
          // true site, which appears in every genuine response.
          EXPECT_TRUE(result.relaxed);
          EXPECT_TRUE(
              contains_node(result.candidates, sample.faults[0].pin));
        }
      } else if (!contains_node(result.candidates, sample.faults[0].pin)) {
        // The spurious cone overlaps the consensus enough to keep a strict
        // intersection alive while squeezing the true site out of it.
        // This narrowing is silent by construction (the intersection is
        // non-empty, so neither quarantine nor relaxation runs); the sweep
        // test below bounds how often it happens.  Count, don't assert.
        if (!result.noisy()) ++silent_narrowings;
      }
    }
  }
  EXPECT_GE(quarantined_cases, 3)
      << "seeded injections stopped producing disjoint spurious responses ("
      << checked << " single-injection cases checked)";
  // Seeded regression pin: silent narrowing stays the rare case.
  EXPECT_LE(silent_narrowings, checked / 4);
}

// ---- degradation sweep: noise kind x rate -----------------------------------

TEST(NoiseChaosTest, SweepEvidenceOnlyNoiseKeepsSiteAndLossIsFlagged) {
  NoiseSetup s;
  const DiagnosisFramework untrained;  // T_P = 1.0; confidence still works
  const auto samples = sample_logs(s, 63, 4);
  const BacktraceOptions options = untinned();
  int content_cases = 0;
  int flagged_loss = 0;
  int silent_loss = 0;
  for (NoiseKind kind : kAllNoiseKinds) {
    for (double rate : {0.05, 0.15, 0.30}) {
      NoiseOptions noise;
      noise.kind = kind;
      noise.rate = rate;
      noise.seed = 0x5EED ^ static_cast<std::uint64_t>(rate * 1000);
      for (const Sample& sample : samples) {
        const FailureLog perturbed =
            perturb_failure_log(sample.log, s.d.context(), noise);
        if (perturbed.empty()) continue;
        const BacktraceResult result = backtrace_with_support(
            s.graph, s.d.context(), perturbed, options);
        const NodeId site = sample.faults[0].pin;
        const bool site_kept = contains_node(result.candidates, site);
        if (kind == NoiseKind::kDropResponse ||
            kind == NoiseKind::kTruncateStore) {
          // Evidence-only noise removes responses; the intersection can
          // only grow, so the true site always survives.
          EXPECT_TRUE(site_kept)
              << noise_kind_name(kind) << " rate " << rate;
        } else {
          // Content noise (spurious bits, flipped addresses) can knock the
          // site out.  When the corruption kills the strict intersection,
          // quarantine/relaxation kick in and *retain* the site (it is the
          // best-supported node); corruption that leaves a non-empty-but-
          // wrong strict intersection is indistinguishable from clean
          // evidence by construction (docs/ROBUSTNESS.md "Limits"), so the
          // honest guarantee is statistical — pinned below because the
          // sweep is seeded.
          ++content_cases;
          if (!site_kept) {
            if (result.noisy()) {
              ++flagged_loss;
            } else {
              ++silent_loss;
            }
          }
        }
        // The calibrated confidence mirrors the evidence flags end to end.
        const DiagnosisConfidence confidence =
            untrained.diagnosis_confidence(result, nullptr);
        EXPECT_EQ(confidence.noisy_log, result.noisy());
        EXPECT_EQ(confidence.quarantined,
                  static_cast<std::int32_t>(result.quarantined.size()));
        EXPECT_DOUBLE_EQ(confidence.backtrace_support, result.min_support());
      }
    }
  }
  std::cout << "[sweep] content cases " << content_cases << ", flagged loss "
            << flagged_loss << ", silent loss " << silent_loss << "\n";
  // Regression pins for the seeded sweep: whenever the evidence conflict is
  // visible (flagged noisy), quarantine/relaxation retained the true site;
  // the silent residue stays a minority of the content-noise cases.
  EXPECT_GT(content_cases, 0);
  EXPECT_EQ(flagged_loss, 0)
      << "a flagged (quarantine/relaxation) result lost the true site";
  EXPECT_LE(2 * silent_loss, content_cases)
      << "silent site losses: " << silent_loss << " of " << content_cases
      << " content-noise cases";
}

// ---- store-depth truncation trips the lint ----------------------------------

TEST(NoiseChaosTest, TruncateStoreSignatureTripsStoreTruncatedLint) {
  NoiseSetup s;
  const auto samples = sample_logs(s, 65, 8);
  const auto lint_log = [&](const FailureLog& log) {
    lint::Subject subject;
    subject.netlist = &s.d.netlist;
    subject.scan = &s.d.scan;
    subject.compactor = &s.d.compactor;
    subject.log = &log;
    subject.num_patterns = s.d.sim.num_patterns();
    lint::Report report;
    lint::run_failure_log_checks(subject, report);
    return report;
  };
  bool found = false;
  for (const Sample& sample : samples) {
    // Organic generated logs must stay quiet.
    EXPECT_FALSE(lint_log(sample.log).contains("log-store-truncated"))
        << lint_log(sample.log).to_string();
    NoiseOptions noise;
    noise.kind = NoiseKind::kTruncateStore;
    noise.store_depth = 4;
    NoiseSummary summary;
    const FailureLog clipped =
        perturb_failure_log(sample.log, s.d.context(), noise, &summary);
    if (summary.truncated == 0) continue;  // store never filled on this log
    const lint::Report report = lint_log(clipped);
    const lint::Diagnostic* d = report.find("log-store-truncated");
    if (d == nullptr) continue;  // too few patterns hit the cap
    found = true;
    EXPECT_EQ(d->severity, lint::Severity::kWarn);
    EXPECT_NE(d->message.find("4"), std::string::npos) << d->message;
    EXPECT_FALSE(report.has_errors()) << report.to_string();
  }
  EXPECT_TRUE(found)
      << "no sample log produced the store-truncation lint signature";
}

// ---- calibrated confidence --------------------------------------------------

TEST(ConfidenceTest, FormulaAndThresholdBehaviour) {
  // Clean evidence, strong margin, T_P = 0.75 -> cut = 0.5.
  DiagnosisConfidence c = calibrate_confidence(1.0, false, 0, 0.9, 0.75);
  EXPECT_DOUBLE_EQ(c.combined, 0.9);
  EXPECT_FALSE(c.low_confidence);
  EXPECT_FALSE(c.noisy_log);

  // Either weakness alone pulls the product below the cut.
  c = calibrate_confidence(0.5, true, 0, 0.9, 0.75);
  EXPECT_DOUBLE_EQ(c.combined, 0.45);
  EXPECT_TRUE(c.low_confidence);
  EXPECT_TRUE(c.noisy_log);  // relaxed

  // Quarantined responses flag the log as noisy even with full support on
  // the survivors.
  c = calibrate_confidence(1.0, false, 2, 0.9, 0.75);
  EXPECT_TRUE(c.noisy_log);
  EXPECT_EQ(c.quarantined, 2);

  // margin < 0 means "no GNN verdict": support carries the confidence.
  c = calibrate_confidence(0.8, false, 0, -1.0, 0.75);
  EXPECT_DOUBLE_EQ(c.combined, 0.8);
  EXPECT_FALSE(c.low_confidence);

  // Untrained T_P = 1.0 -> cut = 1.0: anything short of perfect evidence is
  // low-confidence.
  c = calibrate_confidence(1.0, false, 0, 1.0, 1.0);
  EXPECT_FALSE(c.low_confidence);  // perfect evidence sits on the boundary
  c = calibrate_confidence(0.99, false, 0, 1.0, 1.0);
  EXPECT_TRUE(c.low_confidence);

  // T_P <= 0.5 maps to cut 0 -> nothing is low-confidence.
  c = calibrate_confidence(0.01, true, 1, 0.01, 0.5);
  EXPECT_FALSE(c.low_confidence);
  EXPECT_TRUE(c.noisy_log);
}

// ---- serving layer ----------------------------------------------------------

// One shared design + trained framework for the serve-level tests
// (expensive to build, read-only afterwards).
class NoiseServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    design_ = std::shared_ptr<const Design>(
        Design::build(Profile::kAes, DesignConfig::kSyn1));
    TransferTrainOptions train;
    train.samples_syn1 = 40;
    train.samples_per_random = 20;
    const LabeledDataset data =
        build_transfer_training_set(Profile::kAes, *design_, train);
    FrameworkOptions options;
    options.training.epochs = 40;
    framework_ = new DiagnosisFramework(options);
    framework_->train(data.graphs);

    DataGenOptions gen;
    gen.num_samples = 4;
    gen.seed = 0xAB5E;
    logs_ = new std::vector<FailureLog>();
    for (const Sample& s : generate_samples(design_->context(), gen)) {
      logs_->push_back(s.log);
    }
  }
  static void TearDownTestSuite() {
    delete logs_;
    delete framework_;
    logs_ = nullptr;
    framework_ = nullptr;
    design_.reset();
  }

  static serve::DiagnosisService make_service() {
    std::stringstream model;
    framework_->save(model);
    serve::ServiceOptions options;
    options.num_threads = 2;
    return serve::DiagnosisService(model, options);
  }

  static std::shared_ptr<const Design> design_;
  static DiagnosisFramework* framework_;
  static std::vector<FailureLog>* logs_;
};

std::shared_ptr<const Design> NoiseServeTest::design_;
DiagnosisFramework* NoiseServeTest::framework_ = nullptr;
std::vector<FailureLog>* NoiseServeTest::logs_ = nullptr;

TEST_F(NoiseServeTest, CleanLogIsNotFlaggedNoisy) {
  serve::DiagnosisService service = make_service();
  const std::int32_t id = service.register_design(design_);
  for (const FailureLog& log : *logs_) {
    const serve::DiagnosisResult result = service.diagnose(id, log);
    ASSERT_TRUE(result.ok()) << result.status_message;
    EXPECT_FALSE(result.confidence.noisy_log);
    EXPECT_EQ(result.confidence.quarantined, 0);
    EXPECT_FALSE(result.confidence.relaxed);
    EXPECT_DOUBLE_EQ(result.confidence.backtrace_support, 1.0);
    EXPECT_GE(result.confidence.model_margin, 0.0);  // a GNN verdict exists
  }
  EXPECT_EQ(service.metrics().noisy_log_results.load(), 0);
  EXPECT_EQ(service.metrics().quarantined_responses.load(), 0);
  service.shutdown();
}

TEST_F(NoiseServeTest, QuarantinedLogSetsNoisyFlagAndMetrics) {
  // Pre-search a (log, seed) whose spurious perturbation quarantines under
  // the *default* back-trace options the service uses — deterministic, so
  // the served result must match exactly.
  const DesignContext ctx = design_->context();
  FailureLog noisy;
  BacktraceResult expected;
  bool found = false;
  for (const FailureLog& log : *logs_) {
    for (std::uint64_t seed = 1; seed <= 60 && !found; ++seed) {
      NoiseOptions noise;
      noise.kind = NoiseKind::kSpuriousResponse;
      noise.rate = 0.05;
      noise.seed = seed;
      const FailureLog candidate = perturb_failure_log(log, ctx, noise);
      const BacktraceResult result =
          backtrace_with_support(design_->graph(), ctx, candidate);
      if (result.quarantined.empty()) continue;
      noisy = candidate;
      expected = result;
      found = true;
    }
    if (found) break;
  }
  ASSERT_TRUE(found) << "no seeded spurious perturbation quarantined";

  serve::DiagnosisService service = make_service();
  const std::int32_t id = service.register_design(design_);
  const serve::DiagnosisResult result = service.diagnose(id, noisy);
  ASSERT_TRUE(result.ok()) << result.status_message;
  EXPECT_TRUE(result.confidence.noisy_log);
  EXPECT_EQ(result.confidence.quarantined,
            static_cast<std::int32_t>(expected.quarantined.size()));
  EXPECT_EQ(result.confidence.relaxed, expected.relaxed);
  EXPECT_DOUBLE_EQ(result.confidence.backtrace_support,
                   expected.min_support());
  EXPECT_EQ(service.metrics().noisy_log_results.load(), 1);
  EXPECT_EQ(service.metrics().quarantined_responses.load(),
            static_cast<std::int64_t>(expected.quarantined.size()));
  service.shutdown();
}

}  // namespace
}  // namespace m3dfl
