// util/limits: the uniform parse-limit policy and the bounded line reader
// every line-oriented surface is built on.
#include "util/limits.h"

#include <gtest/gtest.h>

#include <sstream>

namespace m3dfl {
namespace {

TEST(LimitsTest, DefaultsClearLegitimateTraffic) {
  const ParseLimits& limits = ParseLimits::defaults();
  // The roadmap's largest target (Table III full scale) is ~338K gates;
  // every structural cap must clear it with an order of magnitude to spare.
  EXPECT_GE(limits.max_gates, 10 * 338'000);
  EXPECT_GT(limits.max_nets, limits.max_gates);
  EXPECT_GE(limits.max_line_bytes, std::size_t{16 * 1024});
  EXPECT_GE(limits.max_patterns, 1'000'000);
}

TEST(LimitsTest, LimitExceededMessageShape) {
  // One greppable tail for every guardrail rejection in a fleet log.
  EXPECT_EQ(limit_exceeded("net id", 9000000, 8388608),
            "limit exceeded: net id 9000000 (limit 8388608)");
  EXPECT_EQ(limit_exceeded_over("line bytes", 65536),
            "limit exceeded: line bytes exceeds limit 65536");
}

TEST(LimitsTest, BoundedGetlineMirrorsStdGetline) {
  std::istringstream is("alpha\nbeta\n");
  std::string line;
  BoundedLine bl = bounded_getline(is, line, 100);
  EXPECT_TRUE(bl.ok());
  EXPECT_FALSE(bl.unterminated);
  EXPECT_EQ(line, "alpha");
  bl = bounded_getline(is, line, 100);
  EXPECT_TRUE(bl.ok());
  EXPECT_EQ(line, "beta");
  bl = bounded_getline(is, line, 100);
  EXPECT_EQ(bl.status, BoundedLine::Status::kEof);
  // std::getline contract at EOF with nothing extracted: failbit set, so
  // `while (bounded_getline(...).ok())` loops terminate identically.
  EXPECT_TRUE(is.fail());
  EXPECT_TRUE(is.eof());
}

TEST(LimitsTest, BoundedGetlineFlagsUnterminatedFinalLine) {
  std::istringstream is("header\ntail without newline");
  std::string line;
  BoundedLine bl = bounded_getline(is, line, 100);
  EXPECT_TRUE(bl.ok());
  EXPECT_FALSE(bl.unterminated);
  bl = bounded_getline(is, line, 100);
  EXPECT_TRUE(bl.ok());
  EXPECT_TRUE(bl.unterminated);
  EXPECT_EQ(line, "tail without newline");
}

TEST(LimitsTest, BoundedGetlineStopsAtTheCap) {
  // The reader must stop *at* the cap — not accumulate the whole line and
  // measure afterwards: this is what bounds tail-follow memory growth.
  std::istringstream is(std::string(1000, 'x'));  // unterminated, over cap
  std::string line;
  const BoundedLine bl = bounded_getline(is, line, 16);
  EXPECT_TRUE(bl.too_long());
  EXPECT_EQ(line.size(), 16u);
  EXPECT_EQ(line, std::string(16, 'x'));
}

TEST(LimitsTest, BoundedGetlineExactCapIsNotTooLong) {
  std::istringstream is(std::string(16, 'x') + "\nrest\n");
  std::string line;
  const BoundedLine bl = bounded_getline(is, line, 16);
  EXPECT_TRUE(bl.ok());
  EXPECT_EQ(line.size(), 16u);
  std::string next;
  EXPECT_TRUE(bounded_getline(is, next, 16).ok());
  EXPECT_EQ(next, "rest");
}

TEST(LimitsTest, BoundedGetlineEmptyLines) {
  std::istringstream is("\n\nx\n");
  std::string line;
  EXPECT_TRUE(bounded_getline(is, line, 8).ok());
  EXPECT_TRUE(line.empty());
  EXPECT_TRUE(bounded_getline(is, line, 8).ok());
  EXPECT_TRUE(line.empty());
  EXPECT_TRUE(bounded_getline(is, line, 8).ok());
  EXPECT_EQ(line, "x");
  EXPECT_EQ(bounded_getline(is, line, 8).status, BoundedLine::Status::kEof);
}

}  // namespace
}  // namespace m3dfl
