// Cross-module determinism: the whole pipeline must produce bit-identical
// results for identical seeds — the property that makes every bench table
// reproducible and the experiments auditable.
#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "diag/log_io.h"
#include "netlist/verilog_io.h"

namespace m3dfl {
namespace {

TEST(DeterminismTest, DesignBuildIsBitIdentical) {
  const auto a = Design::build(Profile::kAes, DesignConfig::kSyn1);
  const auto b = Design::build(Profile::kAes, DesignConfig::kSyn1);
  EXPECT_EQ(to_mnl(a->netlist()), to_mnl(b->netlist()));
  EXPECT_EQ(a->mivs().num_mivs(), b->mivs().num_mivs());
  EXPECT_EQ(a->patterns().num_patterns, b->patterns().num_patterns);
  for (GateId g = 0; g < a->netlist().num_gates(); ++g) {
    EXPECT_EQ(a->tiers().tier_of(g), b->tiers().tier_of(g));
  }
  // Identical good-machine responses.
  for (std::int32_t f = 0;
       f < static_cast<std::int32_t>(a->netlist().flops().size()); f += 7) {
    for (std::int32_t w = 0; w < a->good_sim().num_words(); ++w) {
      EXPECT_EQ(a->good_sim().captured(f, w), b->good_sim().captured(f, w));
    }
  }
}

TEST(DeterminismTest, DatasetsAndSubgraphsAreIdentical) {
  const auto design = Design::build(Profile::kAes, DesignConfig::kSyn1);
  DataGenOptions gen;
  gen.num_samples = 10;
  gen.seed = 555;
  const LabeledDataset a = build_dataset(*design, gen);
  const LabeledDataset b = build_dataset(*design, gen);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(failure_log_to_string(a.samples[i].log),
              failure_log_to_string(b.samples[i].log));
    EXPECT_EQ(a.graphs[i].nodes, b.graphs[i].nodes);
    EXPECT_EQ(a.graphs[i].edge_u, b.graphs[i].edge_u);
    for (std::int32_t r = 0; r < a.graphs[i].features.rows(); ++r) {
      for (std::int32_t c = 0; c < a.graphs[i].features.cols(); ++c) {
        EXPECT_EQ(a.graphs[i].features.at(r, c),
                  b.graphs[i].features.at(r, c));
      }
    }
  }
}

TEST(DeterminismTest, DiagnosisReportsAreIdentical) {
  const auto design = Design::build(Profile::kAes, DesignConfig::kSyn1);
  DataGenOptions gen;
  gen.num_samples = 5;
  gen.seed = 556;
  const LabeledDataset data = build_dataset(*design, gen);
  for (const Sample& s : data.samples) {
    const DiagnosisReport a = diagnose_atpg(design->context(), s.log);
    const DiagnosisReport b = diagnose_atpg(design->context(), s.log);
    ASSERT_EQ(a.resolution(), b.resolution());
    for (std::int32_t i = 0; i < a.resolution(); ++i) {
      EXPECT_EQ(a.candidates[static_cast<std::size_t>(i)].fault,
                b.candidates[static_cast<std::size_t>(i)].fault);
      EXPECT_EQ(a.candidates[static_cast<std::size_t>(i)].score,
                b.candidates[static_cast<std::size_t>(i)].score);
    }
  }
}

TEST(DeterminismTest, TrainingIsReproducible) {
  const auto design = Design::build(Profile::kAes, DesignConfig::kSyn1);
  DataGenOptions gen;
  gen.num_samples = 40;
  gen.seed = 557;
  const LabeledDataset data = build_dataset(*design, gen);

  const auto train_once = [&] {
    GcnModelConfig config;
    config.hidden = 8;
    config.num_layers = 2;
    TierPredictor model(config);
    TrainOptions opt;
    opt.epochs = 20;
    train_tier_predictor(model, data.graphs, opt);
    return model;
  };
  const TierPredictor a = train_once();
  const TierPredictor b = train_once();
  for (const Subgraph& g : data.graphs) {
    const auto pa = a.predict(g);
    const auto pb = b.predict(g);
    EXPECT_EQ(pa[0], pb[0]);
    EXPECT_EQ(pa[1], pb[1]);
  }
}

TEST(DeterminismTest, ConfigurationsDifferFromEachOther) {
  // Determinism must not collapse the configurations into one another.
  const auto syn1 = Design::build(Profile::kAes, DesignConfig::kSyn1);
  const auto syn2 = Design::build(Profile::kAes, DesignConfig::kSyn2);
  const auto tpi = Design::build(Profile::kAes, DesignConfig::kTpi);
  EXPECT_NE(to_mnl(syn1->netlist()), to_mnl(syn2->netlist()));
  EXPECT_NE(to_mnl(syn1->netlist()), to_mnl(tpi->netlist()));
}

}  // namespace
}  // namespace m3dfl
