#include <gtest/gtest.h>

#include "core/framework.h"
#include "core/pipeline.h"

namespace m3dfl {
namespace {

// One shared design + trained framework for the whole file (expensive).
class FrameworkTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    design_ = Design::build(Profile::kAes, DesignConfig::kSyn1).release();
    TransferTrainOptions train;
    train.samples_syn1 = 60;
    train.samples_per_random = 30;
    data_ = new LabeledDataset(
        build_transfer_training_set(Profile::kAes, *design_, train));
    FrameworkOptions options;
    options.training.epochs = 60;
    framework_ = new DiagnosisFramework(options);
    framework_->train(data_->graphs);
  }
  static void TearDownTestSuite() {
    delete framework_;
    delete data_;
    delete design_;
    framework_ = nullptr;
    data_ = nullptr;
    design_ = nullptr;
  }

  static Design* design_;
  static LabeledDataset* data_;
  static DiagnosisFramework* framework_;
};

Design* FrameworkTest::design_ = nullptr;
LabeledDataset* FrameworkTest::data_ = nullptr;
DiagnosisFramework* FrameworkTest::framework_ = nullptr;

TEST_F(FrameworkTest, DesignBuildInvariants) {
  const Design& d = *design_;
  EXPECT_EQ(d.name(), "AES/Syn-1");
  EXPECT_GT(d.netlist().num_logic_gates(), 1000);
  EXPECT_GT(d.mivs().num_mivs(), 0);
  EXPECT_GT(d.scan().num_chains(), 0);
  EXPECT_GT(d.patterns().num_patterns, 0);
  EXPECT_GT(d.atpg().coverage(), 0.5);
  EXPECT_EQ(d.graph().num_pins(), d.netlist().num_pins());
  EXPECT_EQ(d.graph().num_mivs(), d.mivs().num_mivs());
  EXPECT_GE(d.feature_construction_seconds(), 0.0);

  const DesignContext ctx = d.context();
  EXPECT_EQ(ctx.netlist, &d.netlist());
  EXPECT_EQ(ctx.good, &d.good_sim());
  EXPECT_EQ(ctx.fail_memory_patterns, d.fail_memory_patterns());
}

TEST_F(FrameworkTest, ConfigurationsShareProfileShape) {
  const auto tpi = Design::build(Profile::kAes, DesignConfig::kTpi);
  // Test points add gates and flops on top of the Syn-1 netlist.
  EXPECT_GT(tpi->netlist().num_logic_gates(),
            design_->netlist().num_logic_gates());
  const auto par = Design::build(Profile::kAes, DesignConfig::kPar);
  // Same netlist, different partition.
  EXPECT_EQ(par->netlist().num_gates(), design_->netlist().num_gates());
  EXPECT_NE(par->mivs().num_mivs(), design_->mivs().num_mivs());

  const auto rnd = Design::build_random_partition(Profile::kAes, 99);
  EXPECT_EQ(rnd->netlist().num_gates(), design_->netlist().num_gates());
  // Random partitions cut far more nets than min-cut.
  EXPECT_GT(rnd->mivs().num_mivs(), design_->mivs().num_mivs());
}

TEST_F(FrameworkTest, TrainedStateAndThreshold) {
  EXPECT_TRUE(framework_->trained());
  EXPECT_GT(framework_->tp_threshold(), 0.4);
  EXPECT_LE(framework_->tp_threshold(), 2.0);
}

TEST_F(FrameworkTest, PredictionsAreWellFormed) {
  for (std::size_t i = 0; i < 10 && i < data_->size(); ++i) {
    const FrameworkPrediction p = framework_->predict(data_->graphs[i]);
    EXPECT_TRUE(p.tier == 0 || p.tier == 1);
    EXPECT_GE(p.confidence, 0.5);
    EXPECT_LE(p.confidence, 1.0);
    EXPECT_EQ(p.high_confidence, p.confidence >= framework_->tp_threshold());
  }
}

TEST_F(FrameworkTest, TierPredictorBeatsChanceOnTraining) {
  EXPECT_GT(tier_accuracy(framework_->tier_predictor(), data_->graphs), 0.7);
}

TEST_F(FrameworkTest, RefineMovesPredictedTierToTop) {
  const DesignContext ctx = design_->context();
  // Synthetic report: one candidate per tier.
  PinId bottom = kNullPin;
  PinId top = kNullPin;
  for (PinId p = 0; p < design_->netlist().num_pins() &&
                    (bottom == kNullPin || top == kNullPin);
       ++p) {
    const GateType type =
        design_->netlist().gate(design_->netlist().pin_gate(p)).type;
    if (type == GateType::kPrimaryInput || type == GateType::kPrimaryOutput) {
      continue;
    }
    (pin_tier(ctx, p) == kBottomTier ? bottom : top) = p;
  }
  ASSERT_NE(bottom, kNullPin);
  ASSERT_NE(top, kNullPin);

  DiagnosisReport report;
  Candidate cb;
  cb.fault = Fault::slow_to_rise(bottom);
  Candidate ct;
  ct.fault = Fault::slow_to_rise(top);
  report.candidates = {cb, ct};

  FrameworkPrediction prediction;
  prediction.tier = kTopTier;
  prediction.high_confidence = false;  // low confidence -> reorder only
  const auto pruned = framework_->refine_report(ctx, prediction, report);
  EXPECT_TRUE(pruned.empty());
  ASSERT_EQ(report.resolution(), 2);
  EXPECT_EQ(report.candidates[0].fault.pin, top);
}

TEST_F(FrameworkTest, RefinePrunesFaultFreeTierWhenConfident) {
  const DesignContext ctx = design_->context();
  DiagnosisReport report;
  std::int32_t bottom_count = 0;
  for (PinId p = 0; p < design_->netlist().num_pins() &&
                    report.resolution() < 6;
       ++p) {
    const GateType type =
        design_->netlist().gate(design_->netlist().pin_gate(p)).type;
    if (type == GateType::kPrimaryInput || type == GateType::kPrimaryOutput) {
      continue;
    }
    Candidate c;
    c.fault = Fault::slow_to_rise(p);
    report.candidates.push_back(c);
    if (pin_tier(ctx, p) == kBottomTier) ++bottom_count;
  }
  ASSERT_GT(bottom_count, 0);
  ASSERT_LT(bottom_count, report.resolution());

  FrameworkPrediction prediction;
  prediction.tier = kBottomTier;
  prediction.high_confidence = true;
  prediction.prune_prob = 0.99;
  DiagnosisReport refined = report;
  const auto pruned = framework_->refine_report(ctx, prediction, refined);
  EXPECT_EQ(refined.resolution(), bottom_count);
  EXPECT_EQ(static_cast<std::int32_t>(pruned.size()),
            report.resolution() - bottom_count);
  for (const Candidate& c : refined.candidates) {
    EXPECT_EQ(candidate_tier(ctx, c), kBottomTier);
  }
}

TEST_F(FrameworkTest, MivHitsAreProtectedAndPrioritized) {
  const DesignContext ctx = design_->context();
  ASSERT_GT(design_->mivs().num_mivs(), 0);
  const MivId miv = 0;
  const Miv& m = design_->mivs().miv(miv);
  const PinId miv_pin =
      design_->netlist().output_pin(design_->netlist().net(m.net).driver);
  const int miv_pin_tier = pin_tier(ctx, miv_pin);

  DiagnosisReport report;
  // A candidate in the (about to be) predicted-faulty tier, then the MIV pin.
  PinId other = kNullPin;
  for (PinId p = 0; p < design_->netlist().num_pins(); ++p) {
    const GateType type =
        design_->netlist().gate(design_->netlist().pin_gate(p)).type;
    if (type == GateType::kPrimaryInput || type == GateType::kPrimaryOutput) {
      continue;
    }
    if (pin_tier(ctx, p) == 1 - miv_pin_tier) {
      other = p;
      break;
    }
  }
  ASSERT_NE(other, kNullPin);
  Candidate c_other;
  c_other.fault = Fault::slow_to_rise(other);
  Candidate c_miv;
  c_miv.fault = Fault::slow_to_rise(miv_pin);
  report.candidates = {c_other, c_miv};

  // Confident prediction of the tier OPPOSITE to the MIV pin: without
  // protection the MIV-net candidate would be pruned.
  FrameworkPrediction prediction;
  prediction.tier = 1 - miv_pin_tier;
  prediction.high_confidence = true;
  prediction.prune_prob = 1.0;
  prediction.faulty_mivs = {miv};
  const auto pruned = framework_->refine_report(ctx, prediction, report);
  EXPECT_TRUE(pruned.empty());
  ASSERT_EQ(report.resolution(), 2);
  // The MIV-equivalent candidate is moved to the top.
  EXPECT_EQ(report.candidates[0].fault.pin, miv_pin);
}

TEST_F(FrameworkTest, PruningEverythingRestoresReport) {
  const DesignContext ctx = design_->context();
  DiagnosisReport report;
  Candidate c;
  PinId bottom = kNullPin;
  for (PinId p = 0; p < design_->netlist().num_pins(); ++p) {
    const GateType type =
        design_->netlist().gate(design_->netlist().pin_gate(p)).type;
    if (type != GateType::kPrimaryInput && type != GateType::kPrimaryOutput &&
        pin_tier(ctx, p) == kBottomTier) {
      bottom = p;
      break;
    }
  }
  c.fault = Fault::slow_to_rise(bottom);
  report.candidates = {c};
  FrameworkPrediction prediction;
  prediction.tier = kTopTier;  // would prune the only candidate
  prediction.high_confidence = true;
  prediction.prune_prob = 1.0;
  const auto pruned = framework_->refine_report(ctx, prediction, report);
  EXPECT_TRUE(pruned.empty());
  EXPECT_EQ(report.resolution(), 1);
}

TEST_F(FrameworkTest, UntrainedPredictThrows) {
  DiagnosisFramework fresh;
  EXPECT_THROW(fresh.predict(Subgraph{}), Error);
}

}  // namespace
}  // namespace m3dfl
