// serve::FleetService: tenant routing, deterministic quota shedding, epoch
// swap on hot reload (no stale-generation results), corrupt-replacement
// survival, and model-unavailable recovery.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "registry/registry.h"
#include "serve/fleet.h"
#include "util/artifact.h"
#include "util/atomic_file.h"
#include "util/error.h"

namespace m3dfl {
namespace {

namespace fs = std::filesystem;
using registry::ModelRegistry;
using serve::FleetService;
using serve::StatusCode;
using serve::TenantOptions;

class FleetTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    design_ = new std::shared_ptr<const Design>(
        Design::build(Profile::kAes, DesignConfig::kSyn1));
    TransferTrainOptions train;
    train.samples_syn1 = 12;
    train.samples_per_random = 6;
    const LabeledDataset data =
        build_transfer_training_set(Profile::kAes, **design_, train);
    FrameworkOptions options;
    options.training.epochs = 5;
    DiagnosisFramework framework(options);
    framework.train(data.graphs);
    std::ostringstream os;
    framework.save(os);
    artifact_ = new std::string(os.str());

    DataGenOptions gen;
    gen.num_samples = 6;
    gen.miv_fault_prob = 0.3;
    gen.seed = 0xF1EE7;
    logs_ = new std::vector<FailureLog>();
    for (const Sample& s : generate_samples((*design_)->context(), gen)) {
      logs_->push_back(s.log);
    }
  }
  static void TearDownTestSuite() {
    delete logs_;
    delete artifact_;
    delete design_;
    logs_ = nullptr;
    artifact_ = nullptr;
    design_ = nullptr;
  }

  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("m3dfl_fleet_test_" + std::string(::testing::UnitTest::GetInstance()
                                                  ->current_test_info()
                                                  ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  void publish(const std::string& model, std::int32_t version,
               const std::string& bytes) const {
    write_file_atomic(
        (dir_ / ModelRegistry::artifact_filename(model, version)).string(),
        bytes);
  }

  // Same trick as registry_test: a valid replacement whose file size differs
  // (longer tp_threshold hexfloat), so the registry's (size, mtime) freshness
  // stamp always changes.
  static std::string variant_artifact(double threshold) {
    std::string payload = read_artifact(*artifact_, kFrameworkKind, "<test>");
    const std::size_t at = payload.find("tp_threshold ");
    const std::size_t eol = payload.find('\n', at);
    std::ostringstream value;
    value << std::hexfloat << threshold;
    payload = payload.substr(0, at + 13) + value.str() + payload.substr(eol);
    return artifact_to_string(kFrameworkKind, payload);
  }

  static std::shared_ptr<const Design>* design_;
  static std::string* artifact_;
  static std::vector<FailureLog>* logs_;
  fs::path dir_;
};

std::shared_ptr<const Design>* FleetTest::design_ = nullptr;
std::string* FleetTest::artifact_ = nullptr;
std::vector<FailureLog>* FleetTest::logs_ = nullptr;

TEST_F(FleetTest, RoutesTenantsToTheirOwnModels) {
  publish("aes-a", 1, *artifact_);
  publish("aes-b", 1, *artifact_);
  ModelRegistry registry(dir_.string());
  FleetService fleet(registry);

  TenantOptions a = fleet.tenant_defaults();
  a.model = "aes-a";
  a.service.num_threads = 1;
  TenantOptions b = a;
  b.model = "aes-b";
  const std::int32_t ta = fleet.add_tenant(*design_, a);
  const std::int32_t tb = fleet.add_tenant(*design_, b);
  ASSERT_EQ(fleet.num_tenants(), 2);
  // Two distinct cold loads: tenants never share a generation.
  EXPECT_EQ(fleet.tenant_generation(ta), 1u);
  EXPECT_EQ(fleet.tenant_generation(tb), 2u);

  const serve::DiagnosisResult ra = fleet.diagnose(ta, (*logs_)[0]);
  const serve::DiagnosisResult rb = fleet.diagnose(tb, (*logs_)[1]);
  ASSERT_TRUE(ra.ok()) << ra.status_message;
  ASSERT_TRUE(rb.ok()) << rb.status_message;
  EXPECT_EQ(ra.model_generation, fleet.tenant_generation(ta));
  EXPECT_EQ(rb.model_generation, fleet.tenant_generation(tb));
  EXPECT_EQ(fleet.tenant_metrics(ta).requests_submitted.load(), 1);
  EXPECT_EQ(fleet.tenant_metrics(tb).requests_submitted.load(), 1);
  EXPECT_THROW(fleet.submit(2, (*logs_)[0]), Error);  // unknown tenant
}

TEST_F(FleetTest, QuotaShedsDeterministically) {
  publish("aes", 1, *artifact_);
  ModelRegistry registry(dir_.string());
  FleetService fleet(registry);

  TenantOptions options = fleet.tenant_defaults();
  options.model = "aes";
  options.max_inflight = 1;
  options.service.num_threads = 1;
  options.service.start_paused = true;  // stage a queue deterministically
  const std::int32_t tenant = fleet.add_tenant(*design_, options);

  auto first = fleet.submit(tenant, (*logs_)[0]);  // occupies the quota
  auto second = fleet.submit(tenant, (*logs_)[1]);
  const serve::DiagnosisResult shed = second.get();  // resolved immediately
  EXPECT_EQ(shed.status, StatusCode::kQuotaExceeded);
  EXPECT_NE(shed.status_message.find("max_inflight"), std::string::npos);
  EXPECT_EQ(fleet.quota_rejections(tenant), 1);

  fleet.resume(tenant);
  EXPECT_TRUE(first.get().ok());
  fleet.drain();  // quota counts pending work, which trails the future
  // Quota frees as requests resolve.
  const serve::DiagnosisResult third = fleet.diagnose(tenant, (*logs_)[1]);
  EXPECT_TRUE(third.ok()) << third.status_message;
  EXPECT_EQ(fleet.quota_rejections(tenant), 1);
  EXPECT_EQ(fleet.tenant_metrics(tenant).status_count(StatusCode::kOk), 2);
}

TEST_F(FleetTest, HotReloadSwapsEpochsWithoutStaleGenerations) {
  publish("aes", 1, *artifact_);
  ModelRegistry registry(dir_.string());
  FleetService fleet(registry);
  TenantOptions options = fleet.tenant_defaults();
  options.model = "aes";
  options.service.num_threads = 1;
  const std::int32_t tenant = fleet.add_tenant(*design_, options);

  const serve::DiagnosisResult before = fleet.diagnose(tenant, (*logs_)[0]);
  ASSERT_TRUE(before.ok());
  const std::uint64_t g1 = before.model_generation;
  ASSERT_EQ(g1, 1u);

  publish("aes", 1, variant_artifact(0.75));  // atomic replace
  const serve::DiagnosisResult after = fleet.diagnose(tenant, (*logs_)[0]);
  ASSERT_TRUE(after.ok());
  EXPECT_GT(after.model_generation, g1);  // never a stale generation
  EXPECT_EQ(after.model_generation, fleet.tenant_generation(tenant));
  EXPECT_EQ(fleet.tenant_metrics(tenant).model_reloads.load(), 1);
  EXPECT_EQ(registry.reloads(), 1);

  // The epoch-spanning metrics kept counting across the swap.
  EXPECT_EQ(fleet.tenant_metrics(tenant).status_count(StatusCode::kOk), 2);
  // The retired epoch quiesced (drain in diagnose) and is reaped by the
  // next refresh.
  fleet.drain();
  EXPECT_EQ(fleet.tenant_retired_epochs(tenant), 0u);
}

TEST_F(FleetTest, CorruptReplacementKeepsOldEpochServing) {
  publish("aes", 1, *artifact_);
  ModelRegistry registry(dir_.string());
  FleetService fleet(registry);
  TenantOptions options = fleet.tenant_defaults();
  options.model = "aes";
  options.service.num_threads = 1;
  const std::int32_t tenant = fleet.add_tenant(*design_, options);
  ASSERT_TRUE(fleet.diagnose(tenant, (*logs_)[0]).ok());

  std::string bad = variant_artifact(0.75);
  bad[bad.find("tp_threshold")] = 'T';  // payload flip; CRC now mismatches
  publish("aes", 1, bad);

  const serve::DiagnosisResult result = fleet.diagnose(tenant, (*logs_)[1]);
  ASSERT_TRUE(result.ok()) << result.status_message;
  EXPECT_EQ(result.model_generation, 1u);  // old epoch kept serving
  EXPECT_GE(registry.reload_failures(), 1);
  EXPECT_EQ(fleet.tenant_metrics(tenant).model_reloads.load(), 0);
}

TEST_F(FleetTest, UnpublishedModelShedsThenRecovers) {
  ModelRegistry registry(dir_.string());
  FleetService fleet(registry);
  TenantOptions options = fleet.tenant_defaults();
  options.model = "aes";
  options.service.num_threads = 1;
  const std::int32_t tenant = fleet.add_tenant(*design_, options);
  EXPECT_EQ(fleet.tenant_generation(tenant), 0u);  // epoch-less

  const serve::DiagnosisResult shed = fleet.diagnose(tenant, (*logs_)[0]);
  EXPECT_EQ(shed.status, StatusCode::kModelUnavailable);

  publish("aes", 1, *artifact_);  // trainer publishes; next submit recovers
  const serve::DiagnosisResult ok = fleet.diagnose(tenant, (*logs_)[0]);
  ASSERT_TRUE(ok.ok()) << ok.status_message;
  EXPECT_EQ(ok.model_generation, 1u);
  EXPECT_EQ(fleet.tenant_metrics(tenant).requests_submitted.load(), 2);
}

TEST_F(FleetTest, PinnedVersionIgnoresNewerPublishes) {
  publish("aes", 1, *artifact_);
  ModelRegistry registry(dir_.string());
  FleetService fleet(registry);
  TenantOptions pinned = fleet.tenant_defaults();
  pinned.model = "aes";
  pinned.version = 1;
  pinned.service.num_threads = 1;
  TenantOptions latest = pinned;
  latest.version = ModelRegistry::kLatest;
  const std::int32_t tp = fleet.add_tenant(*design_, pinned);
  const std::int32_t tl = fleet.add_tenant(*design_, latest);

  publish("aes", 2, variant_artifact(0.75));
  // A *new version file* (vs an in-place replacement) enters the index via
  // rescan; every subsequent submit then refreshes against it.
  registry.rescan();
  const serve::DiagnosisResult rp = fleet.diagnose(tp, (*logs_)[0]);
  const serve::DiagnosisResult rl = fleet.diagnose(tl, (*logs_)[0]);
  ASSERT_TRUE(rp.ok());
  ASSERT_TRUE(rl.ok());
  EXPECT_EQ(rp.model_generation, 1u);          // stays on the pin
  EXPECT_GT(rl.model_generation, 1u);          // latest followed v2
  EXPECT_EQ(registry.acquire("aes")->version, 2);
}

}  // namespace
}  // namespace m3dfl
