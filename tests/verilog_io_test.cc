#include <gtest/gtest.h>

#include "netlist/verilog_io.h"
#include "test_helpers.h"

namespace m3dfl {
namespace {

TEST(MnlTest, RoundTripTiny) {
  testing::TinyCircuit c;
  const std::string text = to_mnl(c.netlist);
  const Netlist parsed = from_mnl(text);
  EXPECT_EQ(to_mnl(parsed), text);
  EXPECT_EQ(parsed.num_gates(), c.netlist.num_gates());
  EXPECT_EQ(parsed.num_nets(), c.netlist.num_nets());
  EXPECT_EQ(parsed.flops().size(), c.netlist.flops().size());
}

TEST(MnlTest, RoundTripGenerated) {
  const Netlist nl = testing::small_netlist(3);
  const Netlist parsed = from_mnl(to_mnl(nl));
  EXPECT_EQ(to_mnl(parsed), to_mnl(nl));
  EXPECT_EQ(parsed.max_level(), nl.max_level());
}

TEST(MnlTest, PreservesDesignName) {
  testing::TinyCircuit c;
  c.netlist.set_name("tiny");
  EXPECT_EQ(from_mnl(to_mnl(c.netlist)).name(), "tiny");
}

TEST(MnlTest, ParsesComments) {
  testing::TinyCircuit c;
  std::string text = to_mnl(c.netlist);
  text.insert(text.find('\n') + 1, "# a comment line\n");
  EXPECT_NO_THROW(from_mnl(text));
}

TEST(MnlTest, RejectsMissingHeader) {
  EXPECT_THROW(from_mnl("design x\nend\n"), Error);
}

TEST(MnlTest, RejectsMissingEnd) {
  EXPECT_THROW(from_mnl("mnl 1\ndesign x\n"), Error);
}

TEST(MnlTest, RejectsOutOfOrderGateIds) {
  EXPECT_THROW(
      from_mnl("mnl 1\ngate 1 PI pi0 out=0 in=-\nend\n"), Error);
}

TEST(MnlTest, RejectsGarbageNetIds) {
  EXPECT_THROW(
      from_mnl("mnl 1\ngate 0 PI pi0 out=xyz in=-\nend\n"), Error);
}

TEST(MnlTest, RejectsUnknownCell) {
  EXPECT_THROW(
      from_mnl("mnl 1\ngate 0 WIDGET w out=0 in=-\nend\n"), Error);
}

// Malformed-input corpus: every rejection must cite the offending line and
// say what was expected versus what was found (same contract as the failure
// log and artifact readers).
std::string mnl_error(const std::string& text) {
  try {
    from_mnl(text);
  } catch (const Error& e) {
    return e.what();
  }
  ADD_FAILURE() << "malformed MNL accepted:\n" << text;
  return {};
}

TEST(MnlTest, HeaderErrorCitesExpectedAndFound) {
  const std::string msg = mnl_error("bogus stream\n");
  EXPECT_NE(msg.find("MNL line 1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("expected 'mnl 1'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("bogus"), std::string::npos) << msg;
}

TEST(MnlTest, FutureVersionCitesExpectedAndFound) {
  const std::string msg = mnl_error("mnl 7\nend\n");
  EXPECT_NE(msg.find("expected 1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'7'"), std::string::npos) << msg;
}

TEST(MnlTest, RejectsEmptyInput) {
  EXPECT_NE(mnl_error("").find("empty input"), std::string::npos);
}

TEST(MnlTest, RejectsDuplicateDesignRecord) {
  const std::string msg =
      mnl_error("mnl 1\ndesign a\ndesign b\nend\n");
  EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("duplicate design"), std::string::npos) << msg;
}

TEST(MnlTest, RejectsUnknownRecord) {
  const std::string msg = mnl_error("mnl 1\nwire 0 1\nend\n");
  EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
  EXPECT_NE(msg.find("unknown record 'wire'"), std::string::npos) << msg;
}

TEST(MnlTest, RejectsTruncatedGateRecord) {
  const std::string msg = mnl_error("mnl 1\ngate 0 PI pi0\nend\n");
  EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
  EXPECT_NE(msg.find("expected 6 fields"), std::string::npos) << msg;
}

TEST(MnlTest, NonDenseIdErrorSaysWhichIdWasExpected) {
  const std::string msg =
      mnl_error("mnl 1\ngate 0 PI pi0 out=0 in=-\n"
                "gate 5 PI pi1 out=1 in=-\nend\n");
  EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("expected 1"), std::string::npos) << msg;
}

TEST(MnlTest, RejectsNegativeNetIds) {
  const std::string msg =
      mnl_error("mnl 1\ngate 0 PI pi0 out=-3 in=-\nend\n");
  EXPECT_NE(msg.find("out-of-range net id -3"), std::string::npos) << msg;
}

TEST(MnlTest, DuplicateDriverCitesBothLines) {
  const std::string msg =
      mnl_error("mnl 1\ngate 0 PI pi0 out=0 in=-\n"
                "gate 1 PI pi1 out=0 in=-\nend\n");
  EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("already driven by the gate on line 2"),
            std::string::npos)
      << msg;
}

TEST(MnlTest, MissingEndCitesLastLine) {
  const std::string msg = mnl_error("mnl 1\ngate 0 PI pi0 out=0 in=-\n");
  EXPECT_NE(msg.find("missing 'end'"), std::string::npos) << msg;
}

TEST(MnlTest, CorruptedRoundTripNeverLoadsSilently) {
  // Flip one byte at a stride across a real serialized netlist: every
  // mutation either fails to parse or still round-trips to a well-formed
  // netlist — never a half-parsed one that crashes later.
  const std::string good = to_mnl(testing::small_netlist(7));
  for (std::size_t i = 0; i < good.size(); i += 11) {
    std::string bad = good;
    bad[i] = static_cast<char>(static_cast<unsigned char>(bad[i]) ^ 0x02);
    try {
      const Netlist parsed = from_mnl(bad);
      EXPECT_TRUE(parsed.finalized());
    } catch (const Error&) {
      // Detected: fine.
    }
  }
}

TEST(VerilogTest, EmitsStructuralModule) {
  testing::TinyCircuit c;
  c.netlist.set_name("tiny");
  const std::string v = to_verilog(c.netlist);
  EXPECT_NE(v.find("module tiny ("), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  EXPECT_NE(v.find("AND2 u0"), std::string::npos);
  EXPECT_NE(v.find("INV1 u1"), std::string::npos);
  EXPECT_NE(v.find("SDFF ff0"), std::string::npos);
  EXPECT_NE(v.find("input pi0;"), std::string::npos);
  EXPECT_NE(v.find("output po0;"), std::string::npos);
}

TEST(VerilogTest, RequiresFinalizedNetlist) {
  Netlist nl;
  nl.add_gate(GateType::kPrimaryInput);
  EXPECT_THROW(to_verilog(nl), Error);
  EXPECT_THROW(to_mnl(nl), Error);
}

// ---- ParseLimits guardrails (util/limits.h) ---------------------------------

std::string mnl_error_with(const std::string& text, const ParseLimits& limits) {
  try {
    from_mnl(text, limits);
  } catch (const Error& e) {
    return e.what();
  }
  ADD_FAILURE() << "adversarial MNL accepted:\n" << text;
  return {};
}

TEST(MnlLimitsTest, HugeNetIdRejectsBeforeAllocating) {
  // One record naming net 2^31-1 must reject at the policy cap, not size a
  // 2-billion-entry driver table.  Under the default cap this line is the
  // allocation-bomb regression; with ASan in CI an accidental revert OOMs.
  const std::string msg =
      mnl_error("mnl 1\ngate 0 PI pi0 out=2147483647 in=-\nend\n");
  EXPECT_NE(msg.find("MNL line 2"), std::string::npos) << msg;
  EXPECT_NE(msg.find("limit exceeded: net id"), std::string::npos) << msg;
}

TEST(MnlLimitsTest, HugeFaninNetIdRejects) {
  const std::string msg =
      mnl_error("mnl 1\ngate 0 AND g out=0 in=1,2000000000\nend\n");
  EXPECT_NE(msg.find("limit exceeded: net id"), std::string::npos) << msg;
}

TEST(MnlLimitsTest, Int32WrappingIdRejectsInsteadOfAliasing) {
  // 2^32 + 3 wraps to 3 through an unchecked 64->32 narrowing; a wrapped id
  // would silently alias another net.
  const std::string msg =
      mnl_error("mnl 1\ngate 0 PI pi0 out=4294967299 in=-\nend\n");
  EXPECT_NE(msg.find("bad net id"), std::string::npos) << msg;
}

TEST(MnlLimitsTest, GateCountCapCited) {
  ParseLimits limits;
  limits.max_gates = 2;
  const std::string msg = mnl_error_with(
      "mnl 1\ngate 0 PI a out=0 in=-\ngate 1 PI b out=1 in=-\n"
      "gate 2 PI c out=2 in=-\nend\n",
      limits);
  EXPECT_NE(msg.find("MNL line 4"), std::string::npos) << msg;
  EXPECT_NE(msg.find("limit exceeded: gate count"), std::string::npos) << msg;
}

TEST(MnlLimitsTest, FaninCapCited) {
  ParseLimits limits;
  limits.max_fanin = 2;
  const std::string msg =
      mnl_error_with("mnl 1\ngate 0 AND g out=0 in=1,2,3\nend\n", limits);
  EXPECT_NE(msg.find("limit exceeded: gate fanin"), std::string::npos) << msg;
}

TEST(MnlLimitsTest, OverlongLineCited) {
  ParseLimits limits;
  limits.max_line_bytes = 64;
  const std::string msg = mnl_error_with(
      "mnl 1\n# " + std::string(200, 'x') + "\nend\n", limits);
  EXPECT_NE(msg.find("MNL line 2"), std::string::npos) << msg;
  EXPECT_NE(msg.find("limit exceeded: line bytes"), std::string::npos) << msg;
}

TEST(MnlLimitsTest, TokenSpamCited) {
  ParseLimits limits;
  limits.max_tokens_per_line = 4;
  const std::string msg =
      mnl_error_with("mnl 1\na b c d e f\nend\n", limits);
  EXPECT_NE(msg.find("limit exceeded: tokens on one line"), std::string::npos)
      << msg;
}

// Satellite of the fuzzing subsystem: every truncation of a valid netlist
// must either parse (only the prefix ending exactly at the 'end' record
// qualifies) or reject with an MNL-cited Error — never crash, hang, or fail
// through any other exception type.
TEST(MnlLimitsTest, TruncationAtEveryByteNeverCrashes) {
  testing::TinyCircuit c;
  const std::string text = to_mnl(c.netlist);
  std::size_t accepted = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const std::string prefix = text.substr(0, i);
    try {
      from_mnl(prefix);
      ++accepted;
      // Only a prefix whose last record is a complete 'end' may parse.
      EXPECT_EQ(prefix.substr(prefix.size() - 3), "end")
          << "truncation at byte " << i << " accepted";
    } catch (const Error& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("MNL"), std::string::npos)
          << "byte " << i << ": " << msg;
    }
  }
  EXPECT_LE(accepted, 1u);
}

}  // namespace
}  // namespace m3dfl
