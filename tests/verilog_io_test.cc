#include <gtest/gtest.h>

#include "netlist/verilog_io.h"
#include "test_helpers.h"

namespace m3dfl {
namespace {

TEST(MnlTest, RoundTripTiny) {
  testing::TinyCircuit c;
  const std::string text = to_mnl(c.netlist);
  const Netlist parsed = from_mnl(text);
  EXPECT_EQ(to_mnl(parsed), text);
  EXPECT_EQ(parsed.num_gates(), c.netlist.num_gates());
  EXPECT_EQ(parsed.num_nets(), c.netlist.num_nets());
  EXPECT_EQ(parsed.flops().size(), c.netlist.flops().size());
}

TEST(MnlTest, RoundTripGenerated) {
  const Netlist nl = testing::small_netlist(3);
  const Netlist parsed = from_mnl(to_mnl(nl));
  EXPECT_EQ(to_mnl(parsed), to_mnl(nl));
  EXPECT_EQ(parsed.max_level(), nl.max_level());
}

TEST(MnlTest, PreservesDesignName) {
  testing::TinyCircuit c;
  c.netlist.set_name("tiny");
  EXPECT_EQ(from_mnl(to_mnl(c.netlist)).name(), "tiny");
}

TEST(MnlTest, ParsesComments) {
  testing::TinyCircuit c;
  std::string text = to_mnl(c.netlist);
  text.insert(text.find('\n') + 1, "# a comment line\n");
  EXPECT_NO_THROW(from_mnl(text));
}

TEST(MnlTest, RejectsMissingHeader) {
  EXPECT_THROW(from_mnl("design x\nend\n"), Error);
}

TEST(MnlTest, RejectsMissingEnd) {
  EXPECT_THROW(from_mnl("mnl 1\ndesign x\n"), Error);
}

TEST(MnlTest, RejectsOutOfOrderGateIds) {
  EXPECT_THROW(
      from_mnl("mnl 1\ngate 1 PI pi0 out=0 in=-\nend\n"), Error);
}

TEST(MnlTest, RejectsGarbageNetIds) {
  EXPECT_THROW(
      from_mnl("mnl 1\ngate 0 PI pi0 out=xyz in=-\nend\n"), Error);
}

TEST(MnlTest, RejectsUnknownCell) {
  EXPECT_THROW(
      from_mnl("mnl 1\ngate 0 WIDGET w out=0 in=-\nend\n"), Error);
}

TEST(VerilogTest, EmitsStructuralModule) {
  testing::TinyCircuit c;
  c.netlist.set_name("tiny");
  const std::string v = to_verilog(c.netlist);
  EXPECT_NE(v.find("module tiny ("), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  EXPECT_NE(v.find("AND2 u0"), std::string::npos);
  EXPECT_NE(v.find("INV1 u1"), std::string::npos);
  EXPECT_NE(v.find("SDFF ff0"), std::string::npos);
  EXPECT_NE(v.find("input pi0;"), std::string::npos);
  EXPECT_NE(v.find("output po0;"), std::string::npos);
}

TEST(VerilogTest, RequiresFinalizedNetlist) {
  Netlist nl;
  nl.add_gate(GateType::kPrimaryInput);
  EXPECT_THROW(to_verilog(nl), Error);
  EXPECT_THROW(to_mnl(nl), Error);
}

}  // namespace
}  // namespace m3dfl
