#include <cmath>

#include <gtest/gtest.h>

#include "gnn/adam.h"

namespace m3dfl {
namespace {

TEST(AdamTest, FirstStepSizeIsLearningRate) {
  Matrix w(1, 1);
  w.at(0, 0) = 1.0f;
  Matrix g(1, 1);
  g.at(0, 0) = 123.0f;  // any gradient: bias correction normalizes step 1
  AdamOptions opt;
  opt.lr = 0.05;
  Adam adam(opt);
  adam.register_param(&w, &g);
  adam.step();
  EXPECT_NEAR(w.at(0, 0), 1.0f - 0.05f, 1e-4);
  // Gradient cleared after the step.
  EXPECT_FLOAT_EQ(g.at(0, 0), 0.0f);
}

TEST(AdamTest, MinimizesQuadratic) {
  // f(w) = (w - 3)^2, grad = 2(w - 3).
  Matrix w(1, 1);
  Matrix g(1, 1);
  AdamOptions opt;
  opt.lr = 0.1;
  Adam adam(opt);
  adam.register_param(&w, &g);
  for (int step = 0; step < 400; ++step) {
    g.at(0, 0) = 2.0f * (w.at(0, 0) - 3.0f);
    adam.step();
  }
  EXPECT_NEAR(w.at(0, 0), 3.0f, 0.05f);
}

TEST(AdamTest, BatchScalingDividesGradient) {
  Matrix w1(1, 1);
  Matrix g1(1, 1);
  Matrix w2(1, 1);
  Matrix g2(1, 1);
  Adam a;
  a.register_param(&w1, &g1);
  Adam b;
  b.register_param(&w2, &g2);
  g1.at(0, 0) = 4.0f;
  a.step(4);
  g2.at(0, 0) = 1.0f;
  b.step(1);
  EXPECT_NEAR(w1.at(0, 0), w2.at(0, 0), 1e-6);
}

TEST(AdamTest, MultipleParamsUpdatedIndependently) {
  Matrix w1(2, 2);
  Matrix g1(2, 2);
  Matrix w2(1, 3);
  Matrix g2(1, 3);
  Adam adam;
  adam.register_param(&w1, &g1);
  adam.register_param(&w2, &g2);
  g1.at(0, 0) = 1.0f;
  g2.at(0, 2) = -1.0f;
  adam.step();
  EXPECT_LT(w1.at(0, 0), 0.0f);
  EXPECT_GT(w2.at(0, 2), 0.0f);
  EXPECT_FLOAT_EQ(w1.at(1, 1), 0.0f);  // untouched entries stay put
}

TEST(AdamTest, RejectsShapeMismatch) {
  Matrix w(2, 2);
  Matrix g(2, 3);
  Adam adam;
  EXPECT_THROW(adam.register_param(&w, &g), Error);
  EXPECT_THROW(adam.register_param(nullptr, &g), Error);
}

}  // namespace
}  // namespace m3dfl
