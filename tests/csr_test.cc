#include <cmath>

#include <gtest/gtest.h>

#include "gnn/csr.h"

namespace m3dfl {
namespace {

TEST(CsrTest, PathGraphNormalization) {
  // 0 - 1 - 2 (path).  With self loops: deg(0)=2, deg(1)=3, deg(2)=2.
  const NormalizedAdjacency adj(3, {0, 1}, {1, 2});
  EXPECT_EQ(adj.num_nodes(), 3);
  EXPECT_EQ(adj.num_entries(), 3 + 2 * 2);  // self loops + both directions

  // Propagate a one-hot feature and check coefficients.
  Matrix x(3, 1);
  x.at(1, 0) = 1.0f;
  const Matrix y = adj.propagate(x);
  // y0 = 1/sqrt(2*3), y1 = 1/3, y2 = 1/sqrt(2*3).
  EXPECT_NEAR(y.at(0, 0), 1.0 / std::sqrt(6.0), 1e-6);
  EXPECT_NEAR(y.at(1, 0), 1.0 / 3.0, 1e-6);
  EXPECT_NEAR(y.at(2, 0), 1.0 / std::sqrt(6.0), 1e-6);
}

TEST(CsrTest, IsolatedNodeKeepsItsFeature) {
  const NormalizedAdjacency adj(2, {}, {});
  Matrix x(2, 2);
  x.at(0, 0) = 3.0f;
  x.at(1, 1) = -2.0f;
  const Matrix y = adj.propagate(x);
  // Only the self loop with coefficient 1/sqrt(1*1) = 1.
  EXPECT_FLOAT_EQ(y.at(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(y.at(1, 1), -2.0f);
}

TEST(CsrTest, DuplicateEdgesFolded) {
  const NormalizedAdjacency once(2, {0}, {1});
  const NormalizedAdjacency twice(2, {0, 0, 1}, {1, 1, 0});
  EXPECT_EQ(once.num_entries(), twice.num_entries());
  Matrix x(2, 1);
  x.at(0, 0) = 1.0f;
  const Matrix a = once.propagate(x);
  const Matrix b = twice.propagate(x);
  EXPECT_FLOAT_EQ(a.at(1, 0), b.at(1, 0));
}

TEST(CsrTest, SelfLoopInputTolerated) {
  const NormalizedAdjacency adj(2, {0, 0}, {0, 1});
  Matrix x(2, 1);
  x.at(0, 0) = 1.0f;
  EXPECT_NO_THROW(adj.propagate(x));
}

TEST(CsrTest, PropagationIsSymmetric) {
  // <A x, y> == <x, A y> for symmetric A.
  const NormalizedAdjacency adj(4, {0, 1, 2, 0}, {1, 2, 3, 3});
  Rng rng(5);
  Matrix x(4, 1);
  Matrix y(4, 1);
  for (std::int32_t i = 0; i < 4; ++i) {
    x.at(i, 0) = static_cast<float>(rng.next_gaussian());
    y.at(i, 0) = static_cast<float>(rng.next_gaussian());
  }
  const Matrix ax = adj.propagate(x);
  const Matrix ay = adj.propagate(y);
  double lhs = 0;
  double rhs = 0;
  for (std::int32_t i = 0; i < 4; ++i) {
    lhs += ax.at(i, 0) * y.at(i, 0);
    rhs += x.at(i, 0) * ay.at(i, 0);
  }
  EXPECT_NEAR(lhs, rhs, 1e-5);
}

TEST(CsrTest, RowsAreConvexCombinationScale) {
  // For a regular graph (cycle), a constant feature stays constant.
  const NormalizedAdjacency adj(4, {0, 1, 2, 3}, {1, 2, 3, 0});
  Matrix x(4, 1);
  for (std::int32_t i = 0; i < 4; ++i) x.at(i, 0) = 1.0f;
  const Matrix y = adj.propagate(x);
  for (std::int32_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(y.at(i, 0), 1.0f, 1e-6);
  }
}

}  // namespace
}  // namespace m3dfl
