// Kill–resume chaos harness for crash-safe training (core/checkpoint.h).
//
// The contract under test: a training run that is killed at any epoch
// boundary and resumed from its on-disk checkpoint produces a final
// framework that is *byte-identical* to an uninterrupted run — and any
// corruption of the checkpoint file is detected at resume, never silently
// trained on.
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/checkpoint.h"
#include "core/framework.h"
#include "util/artifact.h"
#include "util/atomic_file.h"
#include "util/fault_injector.h"

namespace m3dfl {
namespace {

namespace fs = std::filesystem;

Subgraph toy_graph(Rng& rng, int label) {
  Subgraph sg;
  const std::int32_t n = 5;
  sg.features = Matrix(n, kNumNodeFeatures);
  for (std::int32_t i = 0; i < n; ++i) {
    sg.nodes.push_back(i);
    for (std::int32_t j = 0; j < kNumNodeFeatures; ++j) {
      sg.features.at(i, j) = static_cast<float>(rng.next_double());
    }
    // Columns 3/5/6 are exclusive-coded (tier code, binary flags); keep
    // them on-contract so the training preflight lint accepts the set.
    sg.features.at(i, 3) = label == 1 ? 1.0f : 0.0f;
    sg.features.at(i, 5) = rng.next_double() < 0.5 ? 0.0f : 1.0f;
    sg.features.at(i, 6) = rng.next_double() < 0.5 ? 0.0f : 1.0f;
    if (i > 0) {
      sg.edge_u.push_back(i - 1);
      sg.edge_v.push_back(i);
    }
  }
  sg.tier_label = label;
  sg.miv_local = {2};
  sg.miv_ids = {0};
  sg.miv_label = {static_cast<std::int8_t>(label)};
  return sg;
}

std::vector<Subgraph> toy_dataset() {
  Rng rng(41);
  std::vector<Subgraph> graphs;
  for (int i = 0; i < 20; ++i) graphs.push_back(toy_graph(rng, i % 2));
  return graphs;
}

FrameworkOptions small_options() {
  FrameworkOptions options;
  options.model.hidden = 8;
  options.model.num_layers = 2;
  options.training.epochs = 8;
  return options;
}

std::string framework_bytes(const DiagnosisFramework& framework) {
  std::ostringstream os;
  framework.save(os);
  return os.str();
}

std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

// Uninterrupted run through the checkpointing trainer; also reports how many
// epoch boundaries (kEpochEnd seam calls) the full run crosses.
std::string reference_run(const std::vector<Subgraph>& graphs,
                          std::int64_t* num_epoch_ends = nullptr,
                          std::int32_t interval = 1) {
  const std::string dir = fresh_dir("ref-ckpt");
  DiagnosisFramework framework(small_options());
  TrainerOptions topt;
  topt.checkpoint_dir = dir;
  topt.checkpoint_interval = interval;
  Trainer trainer(framework, topt);
  FaultInjector injector(kNumTrainSeams);  // armed with nothing: pure counter
  trainer.set_fault_injector(&injector);
  trainer.train(graphs);
  if (num_epoch_ends != nullptr) {
    *num_epoch_ends =
        injector.calls(static_cast<int>(TrainSeam::kEpochEnd));
  }
  return framework_bytes(framework);
}

// ---- Plain vs checkpointed equivalence --------------------------------------

TEST(TrainChaosTest, CheckpointedTrainingMatchesPlainTraining) {
  const std::vector<Subgraph> graphs = toy_dataset();
  DiagnosisFramework plain(small_options());
  plain.train(graphs);
  EXPECT_EQ(framework_bytes(plain), reference_run(graphs));
}

// ---- Kill–resume ------------------------------------------------------------

// Kill the run at every single epoch boundary in turn; each resumed run must
// finish byte-identical to the uninterrupted reference.
TEST(TrainChaosTest, KillAtEveryEpochBoundaryResumesByteIdentical) {
  const std::vector<Subgraph> graphs = toy_dataset();
  std::int64_t num_epoch_ends = 0;
  const std::string want = reference_run(graphs, &num_epoch_ends);
  ASSERT_GT(num_epoch_ends, 0);

  for (std::int64_t kill = 1; kill <= num_epoch_ends; ++kill) {
    const std::string dir = fresh_dir("kill-ckpt");
    TrainerOptions topt;
    topt.checkpoint_dir = dir;
    {
      DiagnosisFramework victim(small_options());
      Trainer trainer(victim, topt);
      FaultInjector injector(kNumTrainSeams);
      injector.arm_nth(static_cast<int>(TrainSeam::kEpochEnd),
                       {static_cast<std::uint64_t>(kill)});
      trainer.set_fault_injector(&injector);
      EXPECT_THROW(trainer.train(graphs), SimulatedCrash)
          << "kill point " << kill;
      EXPECT_FALSE(victim.trained());
      ASSERT_TRUE(Trainer::has_checkpoint(dir)) << "kill point " << kill;
    }
    // "Restart the process": a fresh framework and trainer, resumed from
    // disk.
    DiagnosisFramework survivor(small_options());
    Trainer trainer(survivor, topt);
    ASSERT_TRUE(trainer.resume()) << "kill point " << kill;
    trainer.train(graphs);
    EXPECT_TRUE(survivor.trained());
    EXPECT_EQ(framework_bytes(survivor), want)
        << "resumed run diverged after kill point " << kill;
  }
}

// With a sparser checkpoint cadence the resumed run replays the epochs since
// the last checkpoint — and still lands on identical bytes.
TEST(TrainChaosTest, ResumeReplaysEpochsSinceLastCheckpoint) {
  const std::vector<Subgraph> graphs = toy_dataset();
  const std::string want = reference_run(graphs);

  const std::string dir = fresh_dir("sparse-ckpt");
  TrainerOptions topt;
  topt.checkpoint_dir = dir;
  topt.checkpoint_interval = 3;
  {
    DiagnosisFramework victim(small_options());
    Trainer trainer(victim, topt);
    FaultInjector injector(kNumTrainSeams);
    injector.arm_nth(static_cast<int>(TrainSeam::kEpochEnd), {5});
    trainer.set_fault_injector(&injector);
    EXPECT_THROW(trainer.train(graphs), SimulatedCrash);
  }
  DiagnosisFramework survivor(small_options());
  Trainer trainer(survivor, topt);
  ASSERT_TRUE(trainer.resume());
  trainer.train(graphs);
  EXPECT_EQ(framework_bytes(survivor), want);
}

// A crash during the checkpoint write itself must leave the previous
// checkpoint intact and usable (the atomic-rename guarantee).
TEST(TrainChaosTest, CrashDuringCheckpointWriteLeavesOldCheckpointUsable) {
  const std::vector<Subgraph> graphs = toy_dataset();
  const std::string want = reference_run(graphs);

  const std::string dir = fresh_dir("torn-ckpt");
  TrainerOptions topt;
  topt.checkpoint_dir = dir;
  {
    DiagnosisFramework victim(small_options());
    Trainer trainer(victim, topt);
    FaultInjector injector(kNumTrainSeams);
    injector.arm_nth(static_cast<int>(TrainSeam::kCheckpointSave), {3});
    trainer.set_fault_injector(&injector);
    EXPECT_THROW(trainer.train(graphs), SimulatedCrash);
    ASSERT_TRUE(Trainer::has_checkpoint(dir));
  }
  DiagnosisFramework survivor(small_options());
  Trainer trainer(survivor, topt);
  ASSERT_TRUE(trainer.resume());
  trainer.train(graphs);
  EXPECT_EQ(framework_bytes(survivor), want);
}

TEST(TrainChaosTest, ResumeWithoutCheckpointReturnsFalse) {
  const std::string dir = fresh_dir("empty-ckpt");
  EXPECT_FALSE(Trainer::has_checkpoint(dir));
  DiagnosisFramework framework(small_options());
  TrainerOptions topt;
  topt.checkpoint_dir = dir;
  Trainer trainer(framework, topt);
  EXPECT_FALSE(trainer.resume());
  // And training from scratch still works.
  trainer.train(toy_dataset());
  EXPECT_TRUE(framework.trained());
}

// ---- Guard rails ------------------------------------------------------------

TEST(TrainChaosTest, NanLossRollsBackAndRecovers) {
  const std::vector<Subgraph> graphs = toy_dataset();
  DiagnosisFramework framework(small_options());
  Trainer trainer(framework);
  FaultInjector injector(kNumTrainSeams);
  injector.arm_nth(static_cast<int>(TrainSeam::kNanLoss), {3});
  trainer.set_fault_injector(&injector);
  trainer.train(graphs);
  EXPECT_TRUE(framework.trained());
  EXPECT_EQ(trainer.rollbacks(), 1);
  EXPECT_DOUBLE_EQ(trainer.lr_scale(), 0.5);
  // The rolled-back-and-retrained model must still be healthy.
  for (const Subgraph& g : graphs) {
    const FrameworkPrediction p = framework.predict(g);
    EXPECT_TRUE(std::isfinite(p.confidence));
  }
}

TEST(TrainChaosTest, PersistentDivergenceGivesUpAfterMaxRollbacks) {
  const std::vector<Subgraph> graphs = toy_dataset();
  DiagnosisFramework framework(small_options());
  TrainerOptions topt;
  topt.max_rollbacks = 2;
  Trainer trainer(framework, topt);
  FaultInjector injector(kNumTrainSeams);
  injector.arm(static_cast<int>(TrainSeam::kNanLoss), 1.0);  // every epoch
  trainer.set_fault_injector(&injector);
  try {
    trainer.train(graphs);
    FAIL() << "persistent divergence not reported";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("diverged"), std::string::npos)
        << e.what();
  }
  EXPECT_EQ(trainer.rollbacks(), 2);
}

// ---- Corrupt-checkpoint corpus ----------------------------------------------

// Produces a mid-phase checkpoint file (models + optimizer + loop state) by
// killing a run at epoch boundary `kill`.
std::string make_checkpoint(const std::vector<Subgraph>& graphs,
                            const std::string& dir, std::uint64_t kill) {
  TrainerOptions topt;
  topt.checkpoint_dir = dir;
  DiagnosisFramework victim(small_options());
  Trainer trainer(victim, topt);
  FaultInjector injector(kNumTrainSeams);
  injector.arm_nth(static_cast<int>(TrainSeam::kEpochEnd), {kill});
  trainer.set_fault_injector(&injector);
  EXPECT_THROW(trainer.train(graphs), SimulatedCrash);
  return trainer.checkpoint_path();
}

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << path;
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os << content;
}

bool resume_rejects(const std::string& dir) {
  DiagnosisFramework framework(small_options());
  TrainerOptions topt;
  topt.checkpoint_dir = dir;
  Trainer trainer(framework, topt);
  try {
    trainer.resume();
    return false;
  } catch (const Error&) {
    return true;
  }
}

// Every sampled single-byte flip of the checkpoint file must make resume()
// throw — never load garbage weights.  Early bytes (container header) and
// late bytes (CRC + trailer) are covered exhaustively, the payload in
// stride.
TEST(TrainChaosTest, CorruptedCheckpointBytesAreRejected) {
  const std::vector<Subgraph> graphs = toy_dataset();
  const std::string dir = fresh_dir("corrupt-ckpt");
  const std::string path = make_checkpoint(graphs, dir, 10);
  const std::string good = read_file(path);
  ASSERT_TRUE(is_artifact(good));

  std::vector<std::size_t> offsets;
  for (std::size_t i = 0; i < good.size() && i < 120; ++i) {
    offsets.push_back(i);
  }
  for (std::size_t i = 120; i + 80 < good.size(); i += 7) {
    offsets.push_back(i);
  }
  for (std::size_t i = good.size() >= 80 ? good.size() - 80 : 0;
       i < good.size(); ++i) {
    offsets.push_back(i);
  }
  for (const std::size_t i : offsets) {
    std::string bad = good;
    bad[i] = static_cast<char>(static_cast<unsigned char>(bad[i]) ^ 0x01);
    write_file(path, bad);
    EXPECT_TRUE(resume_rejects(dir)) << "flip at byte " << i << " accepted";
  }

  // Sanity: the pristine file still resumes.
  write_file(path, good);
  DiagnosisFramework framework(small_options());
  TrainerOptions topt;
  topt.checkpoint_dir = dir;
  Trainer trainer(framework, topt);
  EXPECT_TRUE(trainer.resume());
}

TEST(TrainChaosTest, TruncatedCheckpointIsRejected) {
  const std::vector<Subgraph> graphs = toy_dataset();
  const std::string dir = fresh_dir("trunc-ckpt");
  const std::string path = make_checkpoint(graphs, dir, 4);
  const std::string good = read_file(path);

  for (std::size_t len = 0; len < good.size();
       len += (len < 60 ? 1 : 139)) {
    write_file(path, good.substr(0, len));
    EXPECT_TRUE(resume_rejects(dir)) << "truncation to " << len << " bytes";
  }
  // Dropping just the final newline must also be caught.
  write_file(path, good.substr(0, good.size() - 1));
  EXPECT_TRUE(resume_rejects(dir));
}

// ---- Atomic replacement -----------------------------------------------------

TEST(TrainChaosTest, AtomicWriteReplacesCompletely) {
  const std::string dir = fresh_dir("atomic");
  const std::string path = dir + "/artifact.txt";
  write_file_atomic(path, "first contents\n");
  EXPECT_EQ(read_file(path), "first contents\n");
  write_file_atomic(path, "second\n");
  EXPECT_EQ(read_file(path), "second\n");
  // No temporary files left behind.
  std::size_t entries = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    (void)entry;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);
}

TEST(TrainChaosTest, AtomicWriteToMissingDirectoryThrows) {
  const std::string dir = fresh_dir("atomic-missing");
  fs::remove_all(dir);
  try {
    write_file_atomic(dir + "/x/y.txt", "data");
    FAIL() << "write into a missing directory succeeded";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("y.txt"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace m3dfl
