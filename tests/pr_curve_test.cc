#include <gtest/gtest.h>

#include "gnn/pr_curve.h"
#include "util/rng.h"

namespace m3dfl {
namespace {

TEST(PrCurveTest, HandComputedCurve) {
  // confidences: 0.9 correct, 0.8 wrong, 0.7 correct, 0.6 correct.
  const std::vector<PrSample> samples = {
      {0.9, true}, {0.8, false}, {0.7, true}, {0.6, true}};
  const auto curve = pr_curve(samples);
  ASSERT_EQ(curve.size(), 4u);
  // Threshold 0.6: all predicted positive -> precision 3/4, recall 1.
  EXPECT_DOUBLE_EQ(curve[0].threshold, 0.6);
  EXPECT_DOUBLE_EQ(curve[0].precision, 0.75);
  EXPECT_DOUBLE_EQ(curve[0].recall, 1.0);
  // Threshold 0.8: {0.9 correct, 0.8 wrong} -> precision 1/2, recall 1/3.
  EXPECT_DOUBLE_EQ(curve[2].threshold, 0.8);
  EXPECT_DOUBLE_EQ(curve[2].precision, 0.5);
  EXPECT_NEAR(curve[2].recall, 1.0 / 3.0, 1e-12);
  // Threshold 0.9: only the correct one left -> precision 1, recall 1/3.
  EXPECT_DOUBLE_EQ(curve[3].precision, 1.0);
}

TEST(PrCurveTest, SelectSmallestThresholdMeetingPrecision) {
  const std::vector<PrSample> samples = {
      {0.9, true}, {0.8, false}, {0.7, true}, {0.6, true}};
  const auto curve = pr_curve(samples);
  EXPECT_DOUBLE_EQ(select_threshold(curve, 0.99), 0.9);
  EXPECT_DOUBLE_EQ(select_threshold(curve, 0.7), 0.6);
}

TEST(PrCurveTest, UnattainablePrecisionDisablesPruning) {
  // Every prediction wrong: no threshold achieves precision 0.99.
  const std::vector<PrSample> samples = {{0.9, false}, {0.5, false}};
  const auto curve = pr_curve(samples);
  const double t = select_threshold(curve, 0.99);
  for (const PrSample& s : samples) {
    EXPECT_LT(s.confidence, t);
  }
}

TEST(PrCurveTest, AllCorrectGivesLowestThreshold) {
  const std::vector<PrSample> samples = {{0.9, true}, {0.5, true}};
  const auto curve = pr_curve(samples);
  EXPECT_DOUBLE_EQ(select_threshold(curve, 0.99), 0.5);
}

TEST(PrCurveTest, TiedConfidencesGrouped) {
  const std::vector<PrSample> samples = {
      {0.7, true}, {0.7, false}, {0.7, true}};
  const auto curve = pr_curve(samples);
  ASSERT_EQ(curve.size(), 1u);
  EXPECT_NEAR(curve[0].precision, 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(curve[0].recall, 1.0);
}

TEST(PrCurveTest, PrecisionMonotoneTendencyOnSeparableData) {
  // Correct samples get higher confidence: precision rises with threshold.
  std::vector<PrSample> samples;
  for (int i = 0; i < 50; ++i) samples.push_back({0.5 + i * 0.01, true});
  for (int i = 0; i < 50; ++i) samples.push_back({0.1 + i * 0.005, false});
  const auto curve = pr_curve(samples);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].precision, curve[i - 1].precision - 1e-12);
  }
}

TEST(PrCurveTest, EmptyInput) {
  EXPECT_TRUE(pr_curve({}).empty());
  EXPECT_GT(select_threshold({}, 0.99), 0.0);
}

TEST(RocCurveTest, HandComputedPoints) {
  const std::vector<PrSample> samples = {
      {0.9, true}, {0.8, false}, {0.7, true}, {0.6, true}};
  const auto curve = roc_curve(samples);
  ASSERT_EQ(curve.size(), 4u);
  // Threshold 0.6: everything positive -> TPR 1, FPR 1.
  EXPECT_DOUBLE_EQ(curve[0].true_positive_rate, 1.0);
  EXPECT_DOUBLE_EQ(curve[0].false_positive_rate, 1.0);
  // Threshold 0.9: one true positive kept, no false positives.
  EXPECT_NEAR(curve[3].true_positive_rate, 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(curve[3].false_positive_rate, 0.0);
}

TEST(RocCurveTest, PerfectSeparationGivesUnitAuc) {
  std::vector<PrSample> samples;
  for (int i = 0; i < 20; ++i) samples.push_back({0.8 + i * 0.005, true});
  for (int i = 0; i < 20; ++i) samples.push_back({0.2 + i * 0.005, false});
  EXPECT_NEAR(roc_auc(samples), 1.0, 1e-9);
}

TEST(RocCurveTest, RandomScoresGiveHalfAuc) {
  Rng rng(11);
  std::vector<PrSample> samples;
  for (int i = 0; i < 4000; ++i) {
    samples.push_back({rng.next_double(), rng.next_bool()});
  }
  EXPECT_NEAR(roc_auc(samples), 0.5, 0.03);
}

TEST(RocCurveTest, InvertedScoresGiveZeroAuc) {
  std::vector<PrSample> samples;
  for (int i = 0; i < 20; ++i) samples.push_back({0.2 + i * 0.005, true});
  for (int i = 0; i < 20; ++i) samples.push_back({0.8 + i * 0.005, false});
  EXPECT_NEAR(roc_auc(samples), 0.0, 1e-9);
}

TEST(RocCurveTest, DegenerateClassesGiveHalf) {
  EXPECT_DOUBLE_EQ(roc_auc({{0.5, true}, {0.7, true}}), 0.5);
  EXPECT_DOUBLE_EQ(roc_auc({{0.5, false}}), 0.5);
  EXPECT_DOUBLE_EQ(roc_auc({}), 0.5);
}

}  // namespace
}  // namespace m3dfl
