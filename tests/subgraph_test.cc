#include <algorithm>

#include <gtest/gtest.h>

#include "graph/backtrace.h"
#include "graph/features.h"
#include "graph/subgraph.h"
#include "test_helpers.h"

namespace m3dfl {
namespace {

struct SubgraphSetup {
  testing::SmallDesign d;
  HeteroGraph graph;
  std::vector<Sample> samples;
  std::vector<Subgraph> graphs;

  explicit SubgraphSetup(double miv_prob = 0.0) : d(5), graph(d.netlist, d.tiers, d.mivs) {
    DataGenOptions opt;
    opt.num_samples = 15;
    opt.miv_fault_prob = miv_prob;
    opt.max_failing_patterns = 0;
    opt.seed = 51;
    samples = generate_samples(d.context(), opt);
    for (const Sample& s : samples) {
      Subgraph sg = extract_subgraph(
          graph, backtrace_candidates(graph, d.context(), s.log));
      label_subgraph(sg, s);
      graphs.push_back(std::move(sg));
    }
  }
};

TEST(SubgraphTest, InducedEdgesAreRealEdges) {
  SubgraphSetup s;
  for (const Subgraph& sg : s.graphs) {
    for (std::size_t e = 0; e < sg.edge_u.size(); ++e) {
      const NodeId u = sg.nodes[static_cast<std::size_t>(sg.edge_u[e])];
      const NodeId v = sg.nodes[static_cast<std::size_t>(sg.edge_v[e])];
      const auto succ = s.graph.successors(u);
      EXPECT_TRUE(std::find(succ.begin(), succ.end(), v) != succ.end());
    }
  }
}

TEST(SubgraphTest, AllInducedEdgesPresent) {
  SubgraphSetup s;
  const Subgraph& sg = s.graphs[0];
  // Count edges among member nodes directly.
  std::size_t expected = 0;
  for (NodeId u : sg.nodes) {
    for (NodeId v : s.graph.successors(u)) {
      if (std::binary_search(sg.nodes.begin(), sg.nodes.end(), v)) ++expected;
    }
  }
  EXPECT_EQ(sg.edge_u.size(), expected);
}

TEST(SubgraphTest, FeatureMatrixShapeAndRange) {
  SubgraphSetup s;
  for (const Subgraph& sg : s.graphs) {
    ASSERT_EQ(sg.features.rows(), sg.num_nodes());
    ASSERT_EQ(sg.features.cols(), kNumNodeFeatures);
    for (std::int32_t i = 0; i < sg.features.rows(); ++i) {
      for (std::int32_t j = 0; j < sg.features.cols(); ++j) {
        EXPECT_GE(sg.features.at(i, j), 0.0f);
        EXPECT_LE(sg.features.at(i, j), 1.0f + 1e-6f);
      }
    }
  }
}

TEST(SubgraphTest, TierLabelFromSample) {
  SubgraphSetup s;
  for (std::size_t i = 0; i < s.graphs.size(); ++i) {
    EXPECT_EQ(s.graphs[i].tier_label, s.samples[i].fault_tier);
  }
}

TEST(SubgraphTest, MivLabelsMarkFaultyMivs) {
  SubgraphSetup s(/*miv_prob=*/1.0);
  for (std::size_t i = 0; i < s.graphs.size(); ++i) {
    const Subgraph& sg = s.graphs[i];
    ASSERT_EQ(sg.miv_local.size(), sg.miv_ids.size());
    ASSERT_EQ(sg.miv_local.size(), sg.miv_label.size());
    std::int32_t positives = 0;
    for (std::size_t k = 0; k < sg.miv_ids.size(); ++k) {
      if (sg.miv_label[k]) {
        ++positives;
        EXPECT_EQ(sg.miv_ids[k], s.samples[i].faulty_mivs[0]);
      }
      EXPECT_TRUE(s.graph.is_miv_node(
          sg.nodes[static_cast<std::size_t>(sg.miv_local[k])]));
    }
    EXPECT_EQ(positives, 1);
  }
}

TEST(SubgraphTest, LocFeatureMatchesTier) {
  SubgraphSetup s;
  const Subgraph& sg = s.graphs[0];
  for (std::int32_t i = 0; i < sg.num_nodes(); ++i) {
    const NodeId node = sg.nodes[static_cast<std::size_t>(i)];
    EXPECT_FLOAT_EQ(sg.features.at(i, 3), s.graph.loc(node));
  }
}

TEST(SubgraphTest, SubgraphDegreeFeaturesMatchInducedEdges) {
  SubgraphSetup s;
  const Subgraph& sg = s.graphs[0];
  std::vector<std::int32_t> fanout(static_cast<std::size_t>(sg.num_nodes()),
                                   0);
  std::vector<std::int32_t> fanin(static_cast<std::size_t>(sg.num_nodes()),
                                  0);
  for (std::size_t e = 0; e < sg.edge_u.size(); ++e) {
    ++fanout[static_cast<std::size_t>(sg.edge_u[e])];
    ++fanin[static_cast<std::size_t>(sg.edge_v[e])];
  }
  for (std::int32_t i = 0; i < sg.num_nodes(); ++i) {
    const float expect_fi =
        static_cast<float>(fanin[static_cast<std::size_t>(i)]) /
        (static_cast<float>(fanin[static_cast<std::size_t>(i)]) + 4.0f);
    EXPECT_FLOAT_EQ(sg.features.at(i, 7), expect_fi);
  }
}

TEST(SubgraphTest, GraphFeatureVectorIsColumnMean) {
  SubgraphSetup s;
  const Subgraph& sg = s.graphs[0];
  const std::vector<double> v = graph_feature_vector(sg);
  ASSERT_EQ(v.size(), static_cast<std::size_t>(kNumNodeFeatures));
  double mean3 = 0.0;
  for (std::int32_t i = 0; i < sg.num_nodes(); ++i) {
    mean3 += sg.features.at(i, 3);
  }
  mean3 /= sg.num_nodes();
  EXPECT_NEAR(v[3], mean3, 1e-5);
}

TEST(SubgraphTest, EmptySubgraph) {
  SubgraphSetup s;
  const Subgraph sg = extract_subgraph(s.graph, {});
  EXPECT_TRUE(sg.empty());
  EXPECT_EQ(graph_feature_vector(sg).size(),
            static_cast<std::size_t>(kNumNodeFeatures));
}

TEST(SubgraphTest, FeatureNamesCoverAllColumns) {
  for (std::int32_t i = 0; i < kNumNodeFeatures; ++i) {
    EXPECT_NE(kFeatureNames[i], nullptr);
    EXPECT_GT(std::string(kFeatureNames[i]).size(), 0u);
  }
}

}  // namespace
}  // namespace m3dfl
