#include <gtest/gtest.h>

#include "atpg/coverage.h"
#include "atpg/tdf_atpg.h"
#include "test_helpers.h"

namespace m3dfl {
namespace {

TEST(AtpgTest, EnumeratesTwoFaultsPerPin) {
  const Netlist nl = testing::small_netlist(2);
  const std::vector<Fault> faults = enumerate_tdf_faults(nl);
  EXPECT_EQ(static_cast<PinId>(faults.size()), 2 * nl.num_pins());
  // Alternating directions at each pin.
  for (PinId p = 0; p < nl.num_pins(); ++p) {
    EXPECT_EQ(faults[static_cast<std::size_t>(2 * p)],
              Fault::slow_to_rise(p));
    EXPECT_EQ(faults[static_cast<std::size_t>(2 * p + 1)],
              Fault::slow_to_fall(p));
  }
}

TEST(AtpgTest, GeneratesPatternsWithReasonableCoverage) {
  const Netlist nl = testing::small_netlist(3);
  AtpgOptions opt;
  opt.max_patterns = 128;
  const AtpgResult result = generate_tdf_patterns(nl, opt);
  EXPECT_GT(result.patterns.num_patterns, 0);
  EXPECT_LE(result.patterns.num_patterns, 128);
  EXPECT_EQ(result.num_faults, 2 * nl.num_pins());
  EXPECT_GT(result.coverage(), 0.6);
  EXPECT_LE(result.coverage(), 1.0);
}

TEST(AtpgTest, MorePatternsNeverLowerCoverage) {
  const Netlist nl = testing::small_netlist(3);
  AtpgOptions small;
  small.max_patterns = 64;
  small.patience = 100;  // don't stop early
  AtpgOptions large = small;
  large.max_patterns = 256;
  EXPECT_LE(generate_tdf_patterns(nl, small).num_detected,
            generate_tdf_patterns(nl, large).num_detected);
}

TEST(AtpgTest, Deterministic) {
  const Netlist nl = testing::small_netlist(3);
  AtpgOptions opt;
  opt.max_patterns = 64;
  const AtpgResult a = generate_tdf_patterns(nl, opt);
  const AtpgResult b = generate_tdf_patterns(nl, opt);
  EXPECT_EQ(a.patterns.num_patterns, b.patterns.num_patterns);
  EXPECT_EQ(a.num_detected, b.num_detected);
}

TEST(CoverageTest, MatchesAtpgDetectionCount) {
  const Netlist nl = testing::small_netlist(4);
  AtpgOptions opt;
  opt.max_patterns = 96;
  const AtpgResult atpg = generate_tdf_patterns(nl, opt);

  LocSimulator sim(nl);
  sim.run(atpg.patterns);
  const CoverageResult full = measure_coverage(nl, sim, {});
  EXPECT_EQ(full.num_faults, atpg.num_faults);
  EXPECT_EQ(full.num_detected, atpg.num_detected);
}

TEST(CoverageTest, SamplingApproximatesFullGrade) {
  const Netlist nl = testing::small_netlist(4);
  AtpgOptions opt;
  opt.max_patterns = 96;
  const AtpgResult atpg = generate_tdf_patterns(nl, opt);
  LocSimulator sim(nl);
  sim.run(atpg.patterns);
  const CoverageResult full = measure_coverage(nl, sim, {});
  CoverageOptions sampled;
  sampled.sample_faults = 400;
  const CoverageResult sample = measure_coverage(nl, sim, sampled);
  EXPECT_EQ(sample.num_faults, 400);
  EXPECT_NEAR(sample.coverage(), full.coverage(), 0.08);
}

}  // namespace
}  // namespace m3dfl
