// Serving-runtime throughput: logs/sec through serve::DiagnosisService at
// 1/2/4/8 worker threads versus the pre-service serial baseline (the raw
// one-log-at-a-time path of `m3dfl_tool diagnose`).
//
// The workload models production diagnosis traffic: a stream of failure
// logs in which signatures repeat (retested dies and systematic defects
// produce identical logs), here 3 submissions per unique log in shuffled
// order.  The service wins on two axes — worker parallelism on multi-core
// hosts, and the LRU cache that collapses repeated signatures to a single
// back-trace + ATPG pass.  On a single-core host (CI containers) the cache
// alone carries the >= 2x target; every added core multiplies further.
#include <chrono>
#include <future>
#include <memory>
#include <sstream>
#include <vector>

#include "bench_common.h"
#include "core/pipeline.h"
#include "diag/atpg_diagnosis.h"
#include "serve/service.h"
#include "util/bench_json.h"
#include "util/rng.h"

using namespace m3dfl;

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::int32_t kUniqueLogs = 24;
constexpr std::int32_t kRepeatsPerLog = 3;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// The pre-service path: fresh back-trace, adjacency, ATPG diagnosis, and
// inference per log; nothing shared, nothing cached.
double run_serial_baseline(const Design& design,
                           const DiagnosisFramework& framework,
                           const std::vector<FailureLog>& requests) {
  const DesignContext ctx = design.context();
  const Clock::time_point t0 = Clock::now();
  for (const FailureLog& log : requests) {
    DiagnosisReport report = diagnose_atpg(ctx, log);
    const Subgraph sg = subgraph_for_log(design, log);
    framework.diagnose(ctx, sg, report);
  }
  return seconds_since(t0);
}

struct ServiceRun {
  double seconds = 0.0;
  double hit_rate = 0.0;
  double mean_batch = 0.0;
  std::int64_t num_ok = 0;
  std::int64_t num_failed = 0;
};

ServiceRun run_service(const std::shared_ptr<const Design>& design,
                       const DiagnosisFramework& framework,
                       const std::vector<FailureLog>& requests,
                       std::int32_t num_threads) {
  serve::ServiceOptions options;
  options.num_threads = num_threads;
  // Each run gets its own framework instance (and cold cache) through the
  // service's model-stream load path — the deployment scenario.
  std::stringstream model;
  framework.save(model);
  serve::DiagnosisService service(model, options);
  const std::int32_t design_id = service.register_design(design);

  std::vector<std::future<serve::DiagnosisResult>> futures;
  futures.reserve(requests.size());
  const Clock::time_point t0 = Clock::now();
  for (const FailureLog& log : requests) {
    futures.push_back(service.submit(design_id, log));
  }
  for (auto& f : futures) f.get();
  ServiceRun run;
  run.seconds = seconds_since(t0);
  run.hit_rate = service.metrics().cache_hit_rate();
  run.mean_batch = service.metrics().mean_batch_size();
  // Throughput of a run that shed or failed requests is not comparable to
  // the baseline, so the table carries the status split alongside.
  run.num_ok = service.metrics().status_count(serve::StatusCode::kOk);
  run.num_failed = service.metrics().requests_failed.load();
  service.shutdown();
  return run;
}

}  // namespace

int main() {
  bench::print_banner(
      "Serving throughput: concurrent DiagnosisService vs serial baseline");

  std::shared_ptr<const Design> design =
      Design::build(Profile::kAes, DesignConfig::kSyn1);

  TransferTrainOptions train;
  train.samples_syn1 = 60;
  train.samples_per_random = 30;
  const LabeledDataset data =
      build_transfer_training_set(Profile::kAes, *design, train);
  FrameworkOptions fw_options;
  fw_options.training.epochs = 60;
  DiagnosisFramework framework(fw_options);
  framework.train(data.graphs);

  // Workload: kUniqueLogs unique failure signatures, each submitted
  // kRepeatsPerLog times, in a deterministic shuffled order.
  DataGenOptions gen;
  gen.num_samples = kUniqueLogs;
  gen.miv_fault_prob = 0.2;
  gen.seed = 0x5E12;
  const std::vector<Sample> samples =
      generate_samples(design->context(), gen);
  std::vector<FailureLog> requests;
  requests.reserve(samples.size() * kRepeatsPerLog);
  for (std::int32_t r = 0; r < kRepeatsPerLog; ++r) {
    for (const Sample& s : samples) requests.push_back(s.log);
  }
  Rng rng(0xB47C);
  rng.shuffle(requests);
  const double num_logs = static_cast<double>(requests.size());

  std::cout << requests.size() << " requests (" << kUniqueLogs
            << " unique signatures x " << kRepeatsPerLog << "), design "
            << design->name() << "\n\n";

  BenchJson json("serve_throughput");
  json.meta("design", design->name())
      .meta("unique_logs", kUniqueLogs)
      .meta("repeats_per_log", kRepeatsPerLog)
      .meta("requests", requests.size());

  TablePrinter table({"mode", "wall (s)", "logs/sec", "speedup",
                      "cache hit rate", "mean batch", "ok/failed"});
  const double serial_s = run_serial_baseline(*design, framework, requests);
  table.add_row({"serial baseline", bench::fmt2(serial_s),
                 bench::fmt2(num_logs / serial_s), "1.00", "-", "-", "-"});
  json.add_row()
      .set("mode", "serial")
      .set("threads", 0)
      .set("wall_seconds", serial_s)
      .set("logs_per_second", num_logs / serial_s)
      .set("speedup", 1.0);
  table.add_separator();
  for (const std::int32_t threads : {1, 2, 4, 8}) {
    const ServiceRun run = run_service(design, framework, requests, threads);
    table.add_row({"service, " + std::to_string(threads) + " thread(s)",
                   bench::fmt2(run.seconds),
                   bench::fmt2(num_logs / run.seconds),
                   bench::fmt2(serial_s / run.seconds), bench::pct(run.hit_rate),
                   bench::fmt2(run.mean_batch),
                   std::to_string(run.num_ok) + "/" +
                       std::to_string(run.num_failed)});
    json.add_row()
        .set("mode", "service")
        .set("threads", threads)
        .set("wall_seconds", run.seconds)
        .set("logs_per_second", num_logs / run.seconds)
        .set("speedup", serial_s / run.seconds)
        .set("cache_hit_rate", run.hit_rate)
        .set("mean_batch", run.mean_batch)
        .set("ok", run.num_ok)
        .set("failed", run.num_failed);
  }
  table.print();
  json.write("BENCH_serve_throughput.json");
  std::cout << "\nwrote BENCH_serve_throughput.json\n";

  std::cout << "\nRepeated failure signatures resolve from the LRU cache "
               "(back-trace + ATPG base report amortized away); worker "
               "threads scale the unique-signature work across cores.\n";
  return 0;
}
