// Shared configuration and formatting for the benchmark harness.
//
// Every bench regenerates one table/figure of the paper.  Scales are reduced
// (DESIGN.md §2): test sets of ~50 dies instead of 750, and the scaled
// synthetic benchmark profiles.  Shapes — who wins, by roughly what factor,
// where the crossovers fall — are the reproduction target, not absolute
// values.
#ifndef M3DFL_BENCH_BENCH_COMMON_H_
#define M3DFL_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <iostream>
#include <string>
#include <utility>

#include "atpg/tdf_atpg.h"
#include "core/experiment.h"
#include "diag/datagen.h"
#include "dft/compactor.h"
#include "dft/scan.h"
#include "graph/hetero_graph.h"
#include "m3d/miv.h"
#include "m3d/partition.h"
#include "netlist/generator.h"
#include "sim/simulator.h"
#include "util/table.h"

namespace m3dfl::bench {

// A self-contained generated scan design (tiers, MIVs, scan, compactor,
// patterns, good-machine simulation) at a configurable size — the shared
// substrate of the noise-robustness and stream-latency benches.
struct BenchDesign {
  std::string name;
  Netlist netlist;
  TierAssignment tiers;
  MivMap mivs;
  ScanChains scan;
  XorCompactor compactor;
  AtpgResult atpg;
  LocSimulator sim;
  HeteroGraph graph;

  BenchDesign(std::string label, std::int32_t num_gates, std::uint64_t seed)
      : name(std::move(label)),
        netlist([&] {
          GeneratorConfig config;
          config.name = name;
          config.num_gates = num_gates;
          config.num_pis = 12;
          config.num_pos = 10;
          config.num_flops = 32;
          config.target_depth = 10;
          config.seed = seed;
          return generate_netlist(config);
        }()),
        tiers(partition_tiers(netlist, {})),
        mivs(netlist, tiers),
        scan(netlist, 8, seed ^ 0x5CA4),
        compactor(scan, 4),
        atpg([&] {
          AtpgOptions opt;
          opt.max_patterns = 96;
          opt.seed = seed ^ 0xA7B6;
          return generate_tdf_patterns(netlist, opt);
        }()),
        sim(netlist),
        graph([&] {
          sim.run(atpg.patterns);
          return HeteroGraph(netlist, tiers, mivs);
        }()) {}

  DesignContext context() const {
    DesignContext ctx;
    ctx.netlist = &netlist;
    ctx.tiers = &tiers;
    ctx.mivs = &mivs;
    ctx.scan = &scan;
    ctx.compactor = &compactor;
    ctx.patterns = &atpg.patterns;
    ctx.good = &sim;
    ctx.fail_memory_patterns = 0;
    return ctx;
  }
};

// Standard experiment scale used across the table benches.
inline ExperimentOptions standard_options(bool compacted) {
  ExperimentOptions opt;
  opt.compacted = compacted;
  opt.test_samples = 50;
  return opt;
}

inline std::string fmt1(double v) { return TablePrinter::fmt(v, 1); }
inline std::string fmt2(double v) { return TablePrinter::fmt(v, 2); }
inline std::string pct(double v) { return TablePrinter::pct(v, 1); }

// "mean (std)" cell.
inline std::string mean_std(const Accumulator& acc) {
  return fmt1(acc.mean()) + " (" + fmt1(acc.stddev()) + ")";
}

// Relative improvement of `now` over the ATPG report value `base`,
// rendered like the paper's parenthesized deltas (positive = better).
inline std::string improvement(double base, double now) {
  if (base <= 0.0) return "(n/a)";
  return TablePrinter::delta_pct((base - now) / base, 1);
}

// Accuracy delta versus the ATPG report (negative = loss).
inline std::string accuracy_delta(double base, double now) {
  return TablePrinter::delta_pct(now - base, 1);
}

inline void print_banner(const std::string& what) {
  std::cout << "\n==== " << what << " ====\n"
            << "(scaled reproduction; see DESIGN.md / EXPERIMENTS.md)\n\n";
}

}  // namespace m3dfl::bench

#endif  // M3DFL_BENCH_BENCH_COMMON_H_
