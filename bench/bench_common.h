// Shared configuration and formatting for the benchmark harness.
//
// Every bench regenerates one table/figure of the paper.  Scales are reduced
// (DESIGN.md §2): test sets of ~50 dies instead of 750, and the scaled
// synthetic benchmark profiles.  Shapes — who wins, by roughly what factor,
// where the crossovers fall — are the reproduction target, not absolute
// values.
#ifndef M3DFL_BENCH_BENCH_COMMON_H_
#define M3DFL_BENCH_BENCH_COMMON_H_

#include <iostream>
#include <string>

#include "core/experiment.h"
#include "util/table.h"

namespace m3dfl::bench {

// Standard experiment scale used across the table benches.
inline ExperimentOptions standard_options(bool compacted) {
  ExperimentOptions opt;
  opt.compacted = compacted;
  opt.test_samples = 50;
  return opt;
}

inline std::string fmt1(double v) { return TablePrinter::fmt(v, 1); }
inline std::string fmt2(double v) { return TablePrinter::fmt(v, 2); }
inline std::string pct(double v) { return TablePrinter::pct(v, 1); }

// "mean (std)" cell.
inline std::string mean_std(const Accumulator& acc) {
  return fmt1(acc.mean()) + " (" + fmt1(acc.stddev()) + ")";
}

// Relative improvement of `now` over the ATPG report value `base`,
// rendered like the paper's parenthesized deltas (positive = better).
inline std::string improvement(double base, double now) {
  if (base <= 0.0) return "(n/a)";
  return TablePrinter::delta_pct((base - now) / base, 1);
}

// Accuracy delta versus the ATPG report (negative = loss).
inline std::string accuracy_delta(double base, double now) {
  return TablePrinter::delta_pct(now - base, 1);
}

inline void print_banner(const std::string& what) {
  std::cout << "\n==== " << what << " ====\n"
            << "(scaled reproduction; see DESIGN.md / EXPERIMENTS.md)\n\n";
}

}  // namespace m3dfl::bench

#endif  // M3DFL_BENCH_BENCH_COMMON_H_
