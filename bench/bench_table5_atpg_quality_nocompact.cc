// Regenerates paper Table V: quality of raw ATPG diagnosis reports for all
// benchmarks and design configurations, without response compaction.
#include "bench_common.h"

using namespace m3dfl;

namespace {

void run(bool compacted) {
  TablePrinter table({"Design", "Configuration", "Accuracy", "Mean resol.",
                      "Std resol.", "Mean FHI", "Std FHI"});
  const ExperimentOptions opt = m3dfl::bench::standard_options(compacted);
  for (Profile profile : all_profiles()) {
    for (DesignConfig config : all_configs()) {
      const auto design = Design::build(profile, config);
      const LabeledDataset test = build_test_set(*design, opt);
      QualityStats stats;
      const DesignContext ctx = design->context();
      for (std::size_t i = 0; i < test.size(); ++i) {
        const DiagnosisReport report =
            diagnose_atpg(ctx, test.samples[i].log, opt.diagnosis);
        stats.add(evaluate_report(ctx, report, test.samples[i]));
      }
      table.add_row({profile_name(profile), config_name(config),
                     bench::pct(stats.accuracy()),
                     bench::fmt1(stats.resolution.mean()),
                     bench::fmt1(stats.resolution.stddev()),
                     bench::fmt1(stats.fhi.mean()),
                     bench::fmt1(stats.fhi.stddev())});
    }
    table.add_separator();
  }
  table.print();
}

}  // namespace

int main() {
  m3dfl::bench::print_banner(
      "Table V: ATPG diagnosis report quality WITHOUT response compaction");
  run(/*compacted=*/false);
  return 0;
}
