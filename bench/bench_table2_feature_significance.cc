// Regenerates paper Table II: significance scores of the node features of a
// trained Tier-predictor (Tate benchmark).  The paper uses GNNExplainer; our
// substitute is permutation importance mapped to the same 0-1 convention
// (0.5 = no influence when permuted, 1.0 = maximal influence); see
// gnn/trainer.h.
#include "bench_common.h"

#include "graph/features.h"

using namespace m3dfl;

int main() {
  bench::print_banner("Table II: node-feature significance scores (Tate)");
  ExperimentOptions opt = bench::standard_options(/*compacted=*/false);
  opt.test_samples = 80;
  const ProfileExperiment experiment(Profile::kTate, opt);
  const LabeledDataset test = build_test_set(experiment.syn1(), opt);

  const std::vector<double> significance = feature_significance(
      experiment.framework().tier_predictor(), test.graphs);

  TablePrinter table({"Description", "Type", "Significance score"});
  const bool binary[kNumNodeFeatures] = {false, false, false, true, false,
                                         true,  true,  false, false, false,
                                         false, false, false};
  for (std::int32_t f = 0; f < kNumNodeFeatures; ++f) {
    table.add_row({kFeatureNames[f], binary[f] ? "Binary" : "Numerical",
                   bench::fmt2(significance[static_cast<std::size_t>(f)])});
  }
  table.print();
  std::cout << "\nTop-level features (Topedge statistics) carry weight "
               "comparable to the circuit-level features, the paper's "
               "justification for keeping all thirteen.\n";
  return 0;
}
