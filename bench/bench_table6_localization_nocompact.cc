// Regenerates paper Table VI: effectiveness of delay-fault localization
// WITHOUT response compaction — baseline [11], the proposed GNN framework,
// and GNN + [11], with tier-localization rates.
#include "bench_localization.h"

int main() {
  m3dfl::bench::print_banner(
      "Table VI: delay-fault localization WITHOUT response compaction");
  m3dfl::bench::run_localization_table(/*compacted=*/false);
  return 0;
}
