// Regenerates paper Fig. 5: PCA of the per-sample subgraph feature vectors
// of the Tate benchmark across design configurations.  A terminal cannot
// render the scatter plot, so the bench prints each configuration's
// projected centroid/spread and the pairwise Bhattacharyya overlap
// coefficients (1.0 = identical clouds).  Heavily overlapping clouds are the
// paper's evidence that one trained model transfers across configurations.
#include <array>

#include "bench_common.h"

#include "gnn/pca.h"
#include "graph/subgraph.h"

using namespace m3dfl;

int main() {
  bench::print_banner("Fig. 5: feature-space overlap across configurations "
                      "(Tate)");
  // Collect per-sample graph feature vectors per configuration.
  std::vector<std::string> names;
  std::vector<std::vector<std::vector<double>>> vectors;
  std::vector<std::vector<double>> all;
  for (DesignConfig config : all_configs()) {
    const auto design = Design::build(Profile::kTate, config);
    DataGenOptions gen;
    gen.num_samples = 60;
    gen.seed = 404;
    const LabeledDataset data = build_dataset(*design, gen);
    names.push_back(config_name(config));
    vectors.emplace_back();
    for (const Subgraph& g : data.graphs) {
      vectors.back().push_back(graph_feature_vector(g));
      all.push_back(vectors.back().back());
    }
  }

  const PcaResult pca = fit_pca(all, 2);
  std::cout << "explained variance: PC1=" << pca.explained_variance[0]
            << " PC2=" << pca.explained_variance[1] << "\n\n";

  std::vector<std::vector<std::array<double, 2>>> projected(vectors.size());
  TablePrinter centroids(
      {"Configuration", "PC1 mean", "PC2 mean", "PC1 std", "PC2 std"});
  for (std::size_t c = 0; c < vectors.size(); ++c) {
    Accumulator x;
    Accumulator y;
    for (const auto& v : vectors[c]) {
      const std::vector<double> p = pca_project(pca, v);
      projected[c].push_back({p[0], p[1]});
      x.add(p[0]);
      y.add(p[1]);
    }
    centroids.add_row({names[c], bench::fmt2(x.mean()), bench::fmt2(y.mean()),
                       bench::fmt2(x.stddev()), bench::fmt2(y.stddev())});
  }
  centroids.print();

  std::cout << "\nPairwise cloud overlap (Bhattacharyya coefficient):\n";
  TablePrinter overlap({"", names[0], names[1], names[2], names[3]});
  for (std::size_t a = 0; a < projected.size(); ++a) {
    std::vector<std::string> row = {names[a]};
    for (std::size_t b = 0; b < projected.size(); ++b) {
      row.push_back(bench::fmt2(cloud_overlap(projected[a], projected[b])));
    }
    overlap.add_row(row);
  }
  overlap.print();
  std::cout << "\nValues near 1.0 across all configuration pairs reproduce "
               "the paper's 'greatly overlapped' feature distributions.\n";
  return 0;
}
