// Noise robustness: localization accuracy versus tester-noise rate.
//
// For each generated design and each tester failure mode (diag/noise.h),
// seeded perturbations are applied to every sample's failure log at a sweep
// of noise rates, then the full deterministic prefix (support-weighted
// back-trace + ATPG diagnosis) runs on the corrupted log.  Reported per
// cell: diagnosis hit-rate (any report candidate explains the true fault),
// back-trace site retention, how often the degradation was flagged
// (noisy-log bit), and the mean number of quarantined responses per log.
#include <cstdint>
#include <string>
#include <vector>

#include "bench_common.h"
#include "atpg/tdf_atpg.h"
#include "diag/atpg_diagnosis.h"
#include "diag/datagen.h"
#include "diag/noise.h"
#include "dft/compactor.h"
#include "dft/scan.h"
#include "graph/backtrace.h"
#include "graph/hetero_graph.h"
#include "m3d/miv.h"
#include "m3d/partition.h"
#include "netlist/generator.h"
#include "sim/simulator.h"

namespace m3dfl::bench {
namespace {

// A self-contained generated scan design (tiers, MIVs, scan, compactor,
// patterns, good-machine simulation) at a configurable size.
struct BenchDesign {
  std::string name;
  Netlist netlist;
  TierAssignment tiers;
  MivMap mivs;
  ScanChains scan;
  XorCompactor compactor;
  AtpgResult atpg;
  LocSimulator sim;
  HeteroGraph graph;

  BenchDesign(std::string label, std::int32_t num_gates, std::uint64_t seed)
      : name(std::move(label)),
        netlist([&] {
          GeneratorConfig config;
          config.name = name;
          config.num_gates = num_gates;
          config.num_pis = 12;
          config.num_pos = 10;
          config.num_flops = 32;
          config.target_depth = 10;
          config.seed = seed;
          return generate_netlist(config);
        }()),
        tiers(partition_tiers(netlist, {})),
        mivs(netlist, tiers),
        scan(netlist, 8, seed ^ 0x5CA4),
        compactor(scan, 4),
        atpg([&] {
          AtpgOptions opt;
          opt.max_patterns = 96;
          opt.seed = seed ^ 0xA7B6;
          return generate_tdf_patterns(netlist, opt);
        }()),
        sim(netlist),
        graph([&] {
          sim.run(atpg.patterns);
          return HeteroGraph(netlist, tiers, mivs);
        }()) {}

  DesignContext context() const {
    DesignContext ctx;
    ctx.netlist = &netlist;
    ctx.tiers = &tiers;
    ctx.mivs = &mivs;
    ctx.scan = &scan;
    ctx.compactor = &compactor;
    ctx.patterns = &atpg.patterns;
    ctx.good = &sim;
    ctx.fail_memory_patterns = 0;
    return ctx;
  }
};

struct Cell {
  std::int32_t evaluated = 0;
  std::int32_t emptied = 0;  // noise wiped the whole log; skipped
  std::int32_t diag_hits = 0;
  std::int32_t site_kept = 0;
  std::int32_t flagged = 0;
  std::int64_t quarantined = 0;
};

Cell evaluate(const BenchDesign& design, const std::vector<Sample>& samples,
              NoiseKind kind, double rate) {
  Cell cell;
  const DesignContext ctx = design.context();
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const Sample& sample = samples[i];
    NoiseOptions noise;
    noise.kind = kind;
    noise.rate = rate;
    // One deterministic stream per (sample, kind, rate-in-tenths) cell.
    noise.seed = 0xB0B0 + 1000 * i +
                 10 * static_cast<std::uint64_t>(kind) +
                 static_cast<std::uint64_t>(rate * 100.0);
    const FailureLog log = perturb_failure_log(sample.log, ctx, noise);
    if (log.empty()) {
      ++cell.emptied;
      continue;
    }
    ++cell.evaluated;
    const BacktraceResult backtrace =
        backtrace_with_support(design.graph, ctx, log);
    if (backtrace.noisy()) ++cell.flagged;
    cell.quarantined += static_cast<std::int64_t>(backtrace.quarantined.size());
    bool kept = false;
    for (NodeId n : backtrace.candidates) {
      if (n == sample.faults[0].pin) kept = true;
    }
    if (kept) ++cell.site_kept;
    const DiagnosisReport report = diagnose_atpg(ctx, log);
    for (const Candidate& c : report.candidates) {
      if (candidate_matches_fault(ctx, c, sample.faults[0])) {
        ++cell.diag_hits;
        break;
      }
    }
  }
  return cell;
}

std::string ratio(std::int32_t hits, std::int32_t total) {
  if (total == 0) return "n/a";
  return pct(static_cast<double>(hits) / total);
}

void run() {
  print_banner("Noise robustness: localization vs tester-noise rate");
  const std::vector<BenchDesign> designs = [] {
    std::vector<BenchDesign> d;
    d.reserve(2);
    d.emplace_back("gen-300", 300, 5);
    d.emplace_back("gen-600", 600, 11);
    return d;
  }();
  const double rates[] = {0.05, 0.15, 0.30};

  TablePrinter table({"Design", "Noise", "Rate", "Diag hit", "Site kept",
                      "Flagged noisy", "Quar./log", "Logs"});
  bool first = true;
  for (const BenchDesign& design : designs) {
    if (!first) table.add_separator();
    first = false;
    DataGenOptions gen;
    gen.num_samples = 25;
    gen.max_failing_patterns = 0;
    gen.seed = 0x5EED;
    const std::vector<Sample> samples =
        generate_samples(design.context(), gen);

    const Cell base = evaluate(design, samples, NoiseKind::kNone, 0.0);
    table.add_row({design.name, "none", "0.00",
                   ratio(base.diag_hits, base.evaluated),
                   ratio(base.site_kept, base.evaluated),
                   ratio(base.flagged, base.evaluated),
                   fmt2(static_cast<double>(base.quarantined) /
                        std::max(1, base.evaluated)),
                   std::to_string(base.evaluated)});
    for (NoiseKind kind : kAllNoiseKinds) {
      if (kind == NoiseKind::kNone) continue;
      for (double rate : rates) {
        const Cell cell = evaluate(design, samples, kind, rate);
        table.add_row({design.name, noise_kind_name(kind), fmt2(rate),
                       ratio(cell.diag_hits, cell.evaluated),
                       ratio(cell.site_kept, cell.evaluated),
                       ratio(cell.flagged, cell.evaluated),
                       fmt2(static_cast<double>(cell.quarantined) /
                            std::max(1, cell.evaluated)),
                       std::to_string(cell.evaluated) +
                           (cell.emptied > 0
                                ? " (-" + std::to_string(cell.emptied) + ")"
                                : "")});
      }
    }
  }
  table.print();
  std::cout << "\n'Diag hit': any ATPG-report candidate explains the true "
               "fault on the corrupted log.  'Site kept': the back-trace "
               "candidate set still contains the defect site.  'Flagged "
               "noisy': the result carries the noisy-log bit (relaxed "
               "intersection or quarantined responses).  '(-n)' logs were "
               "emptied outright by the noise and skipped.\n";
}

}  // namespace
}  // namespace m3dfl::bench

int main() {
  m3dfl::bench::run();
  return 0;
}
