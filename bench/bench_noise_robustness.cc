// Noise robustness: localization accuracy versus tester-noise rate.
//
// For each generated design and each tester failure mode (diag/noise.h),
// seeded perturbations are applied to every sample's failure log at a sweep
// of noise rates, then the full deterministic prefix (support-weighted
// back-trace + ATPG diagnosis) runs on the corrupted log.  Reported per
// cell: diagnosis hit-rate (any report candidate explains the true fault),
// back-trace site retention, how often the degradation was flagged
// (noisy-log bit), and the mean number of quarantined responses per log.
#include <cstdint>
#include <string>
#include <vector>

#include "bench_common.h"
#include "diag/atpg_diagnosis.h"
#include "diag/noise.h"
#include "graph/backtrace.h"
#include "util/bench_json.h"

namespace m3dfl::bench {
namespace {

struct Cell {
  std::int32_t evaluated = 0;
  std::int32_t emptied = 0;  // noise wiped the whole log; skipped
  std::int32_t diag_hits = 0;
  std::int32_t site_kept = 0;
  std::int32_t flagged = 0;
  std::int64_t quarantined = 0;
};

Cell evaluate(const BenchDesign& design, const std::vector<Sample>& samples,
              NoiseKind kind, double rate) {
  Cell cell;
  const DesignContext ctx = design.context();
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const Sample& sample = samples[i];
    NoiseOptions noise;
    noise.kind = kind;
    noise.rate = rate;
    // One deterministic stream per (sample, kind, rate-in-tenths) cell.
    noise.seed = 0xB0B0 + 1000 * i +
                 10 * static_cast<std::uint64_t>(kind) +
                 static_cast<std::uint64_t>(rate * 100.0);
    const FailureLog log = perturb_failure_log(sample.log, ctx, noise);
    if (log.empty()) {
      ++cell.emptied;
      continue;
    }
    ++cell.evaluated;
    const BacktraceResult backtrace =
        backtrace_with_support(design.graph, ctx, log);
    if (backtrace.noisy()) ++cell.flagged;
    cell.quarantined += static_cast<std::int64_t>(backtrace.quarantined.size());
    bool kept = false;
    for (NodeId n : backtrace.candidates) {
      if (n == sample.faults[0].pin) kept = true;
    }
    if (kept) ++cell.site_kept;
    const DiagnosisReport report = diagnose_atpg(ctx, log);
    for (const Candidate& c : report.candidates) {
      if (candidate_matches_fault(ctx, c, sample.faults[0])) {
        ++cell.diag_hits;
        break;
      }
    }
  }
  return cell;
}

std::string ratio(std::int32_t hits, std::int32_t total) {
  if (total == 0) return "n/a";
  return pct(static_cast<double>(hits) / total);
}

// Appends one JSON row per (design, noise kind, rate) cell.
void add_json_row(BenchJson& json, const std::string& design, NoiseKind kind,
                  double rate, const Cell& cell) {
  JsonObject& row = json.add_row();
  row.set("design", design);
  row.set("noise", std::string(noise_kind_name(kind)));
  row.set("rate", rate);
  row.set("evaluated", cell.evaluated);
  row.set("emptied", cell.emptied);
  const std::int32_t n = std::max(1, cell.evaluated);
  row.set("diag_hit_rate", static_cast<double>(cell.diag_hits) / n);
  row.set("site_kept_rate", static_cast<double>(cell.site_kept) / n);
  row.set("flagged_rate", static_cast<double>(cell.flagged) / n);
  row.set("quarantined_per_log", static_cast<double>(cell.quarantined) / n);
}

void run(bool smoke) {
  print_banner("Noise robustness: localization vs tester-noise rate");
  const std::vector<BenchDesign> designs = [&] {
    std::vector<BenchDesign> d;
    d.reserve(2);
    d.emplace_back("gen-300", 300, 5);
    if (!smoke) d.emplace_back("gen-600", 600, 11);
    return d;
  }();
  const std::vector<double> rates =
      smoke ? std::vector<double>{0.15} : std::vector<double>{0.05, 0.15, 0.30};
  const std::int32_t num_samples = smoke ? 8 : 25;

  BenchJson json("noise_robustness");
  json.meta("smoke", smoke);
  json.meta("samples_per_design", num_samples);

  TablePrinter table({"Design", "Noise", "Rate", "Diag hit", "Site kept",
                      "Flagged noisy", "Quar./log", "Logs"});
  bool first = true;
  for (const BenchDesign& design : designs) {
    if (!first) table.add_separator();
    first = false;
    DataGenOptions gen;
    gen.num_samples = num_samples;
    gen.max_failing_patterns = 0;
    gen.seed = 0x5EED;
    const std::vector<Sample> samples =
        generate_samples(design.context(), gen);

    const Cell base = evaluate(design, samples, NoiseKind::kNone, 0.0);
    add_json_row(json, design.name, NoiseKind::kNone, 0.0, base);
    table.add_row({design.name, "none", "0.00",
                   ratio(base.diag_hits, base.evaluated),
                   ratio(base.site_kept, base.evaluated),
                   ratio(base.flagged, base.evaluated),
                   fmt2(static_cast<double>(base.quarantined) /
                        std::max(1, base.evaluated)),
                   std::to_string(base.evaluated)});
    for (NoiseKind kind : kAllNoiseKinds) {
      if (kind == NoiseKind::kNone) continue;
      for (double rate : rates) {
        const Cell cell = evaluate(design, samples, kind, rate);
        add_json_row(json, design.name, kind, rate, cell);
        table.add_row({design.name, noise_kind_name(kind), fmt2(rate),
                       ratio(cell.diag_hits, cell.evaluated),
                       ratio(cell.site_kept, cell.evaluated),
                       ratio(cell.flagged, cell.evaluated),
                       fmt2(static_cast<double>(cell.quarantined) /
                            std::max(1, cell.evaluated)),
                       std::to_string(cell.evaluated) +
                           (cell.emptied > 0
                                ? " (-" + std::to_string(cell.emptied) + ")"
                                : "")});
      }
    }
  }
  table.print();
  std::cout << "\n'Diag hit': any ATPG-report candidate explains the true "
               "fault on the corrupted log.  'Site kept': the back-trace "
               "candidate set still contains the defect site.  'Flagged "
               "noisy': the result carries the noisy-log bit (relaxed "
               "intersection or quarantined responses).  '(-n)' logs were "
               "emptied outright by the noise and skipped.\n";
  json.write("BENCH_noise_robustness.json");
  std::cout << "wrote BENCH_noise_robustness.json\n";
}

}  // namespace
}  // namespace m3dfl::bench

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") smoke = true;
  }
  m3dfl::bench::run(smoke);
  return 0;
}
