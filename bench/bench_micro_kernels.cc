// Google-benchmark microkernels for the performance-critical primitives:
// bit-parallel good-machine simulation, event-driven fault simulation,
// back-tracing, subgraph extraction, and GCN inference.
#include <benchmark/benchmark.h>

#include "atpg/tdf_atpg.h"
#include "core/pipeline.h"
#include "graph/backtrace.h"

namespace m3dfl {
namespace {

// Shared fixture state, built once.
struct BenchState {
  std::unique_ptr<Design> design;
  LabeledDataset data;
  std::unique_ptr<DiagnosisFramework> framework;

  BenchState() {
    design = Design::build(Profile::kAes, DesignConfig::kSyn1);
    DataGenOptions gen;
    gen.num_samples = 16;
    gen.seed = 9090;
    data = build_dataset(*design, gen);
    FrameworkOptions options;
    options.training.epochs = 30;  // weights don't matter for timing
    framework = std::make_unique<DiagnosisFramework>(options);
    framework->train(data.graphs);
  }

  static BenchState& instance() {
    static BenchState state;
    return state;
  }
};

void BM_GoodMachineSimulation(benchmark::State& state) {
  BenchState& s = BenchState::instance();
  LocSimulator sim(s.design->netlist());
  for (auto _ : state) {
    sim.run(s.design->patterns());
    benchmark::DoNotOptimize(sim.v2(0, 0));
  }
  state.SetItemsProcessed(state.iterations() *
                          s.design->patterns().num_patterns *
                          s.design->netlist().num_gates());
}
BENCHMARK(BM_GoodMachineSimulation)->Unit(benchmark::kMillisecond);

void BM_FaultSimulationPerFault(benchmark::State& state) {
  BenchState& s = BenchState::instance();
  FaultSimulator fsim(s.design->netlist(), s.design->good_sim(),
                      &s.design->mivs());
  PinId pin = 0;
  for (auto _ : state) {
    pin = (pin + 37) % s.design->netlist().num_pins();
    benchmark::DoNotOptimize(fsim.simulate(Fault::slow_to_rise(pin)));
  }
}
BENCHMARK(BM_FaultSimulationPerFault)->Unit(benchmark::kMicrosecond);

void BM_Backtrace(benchmark::State& state) {
  BenchState& s = BenchState::instance();
  std::size_t i = 0;
  for (auto _ : state) {
    const FailureLog& log = s.data.samples[i++ % s.data.size()].log;
    benchmark::DoNotOptimize(
        backtrace_candidates(s.design->graph(), s.design->context(), log));
  }
}
BENCHMARK(BM_Backtrace)->Unit(benchmark::kMicrosecond);

void BM_SubgraphExtraction(benchmark::State& state) {
  BenchState& s = BenchState::instance();
  std::size_t i = 0;
  for (auto _ : state) {
    const FailureLog& log = s.data.samples[i++ % s.data.size()].log;
    benchmark::DoNotOptimize(subgraph_for_log(*s.design, log));
  }
}
BENCHMARK(BM_SubgraphExtraction)->Unit(benchmark::kMicrosecond);

void BM_GnnInference(benchmark::State& state) {
  BenchState& s = BenchState::instance();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        s.framework->predict(s.data.graphs[i++ % s.data.size()]));
  }
}
BENCHMARK(BM_GnnInference)->Unit(benchmark::kMicrosecond);

void BM_AtpgDiagnosis(benchmark::State& state) {
  BenchState& s = BenchState::instance();
  std::size_t i = 0;
  for (auto _ : state) {
    const FailureLog& log = s.data.samples[i++ % s.data.size()].log;
    benchmark::DoNotOptimize(diagnose_atpg(s.design->context(), log));
  }
}
BENCHMARK(BM_AtpgDiagnosis)->Unit(benchmark::kMillisecond);

void BM_HeteroGraphConstruction(benchmark::State& state) {
  BenchState& s = BenchState::instance();
  for (auto _ : state) {
    HeteroGraph graph(s.design->netlist(), s.design->tiers(),
                      s.design->mivs());
    benchmark::DoNotOptimize(graph.num_edges());
  }
}
BENCHMARK(BM_HeteroGraphConstruction)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace m3dfl

BENCHMARK_MAIN();
