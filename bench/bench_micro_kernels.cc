// Microkernels for the performance-critical primitives: bit-parallel
// good-machine simulation, event-driven fault simulation, back-tracing,
// subgraph extraction, GCN inference, ATPG diagnosis, and heterogeneous
// graph construction.
//
// Hand-rolled timing loop (steady_clock, repeats, best-of like the other
// benches) emitting the machine-readable BENCH_micro_kernels.json trace;
// --smoke shrinks the fixture and iteration counts for CI.
#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "atpg/tdf_atpg.h"
#include "bench_common.h"
#include "core/pipeline.h"
#include "graph/backtrace.h"
#include "util/bench_json.h"

namespace m3dfl::bench {
namespace {

using BenchClock = std::chrono::steady_clock;

// Shared fixture state, built once.
struct BenchState {
  std::unique_ptr<Design> design;
  LabeledDataset data;
  std::unique_ptr<DiagnosisFramework> framework;

  explicit BenchState(bool smoke) {
    design = Design::build(Profile::kAes, DesignConfig::kSyn1);
    DataGenOptions gen;
    gen.num_samples = smoke ? 6 : 16;
    gen.seed = 9090;
    data = build_dataset(*design, gen);
    FrameworkOptions options;
    options.training.epochs = smoke ? 8 : 30;  // weights don't matter here
    framework = std::make_unique<DiagnosisFramework>(options);
    framework->train(data.graphs);
  }
};

struct Kernel {
  std::string name;
  // Work items one iteration covers (0 = unreported); items/sec lands in
  // the JSON so throughput regressions are visible, not just latency.
  std::int64_t items_per_iter = 0;
  std::function<void()> iter;
};

void run(bool smoke) {
  print_banner("Microkernels: per-primitive latency");
  BenchState s(smoke);
  const DesignContext ctx = s.design->context();

  LocSimulator sim(s.design->netlist());
  FaultSimulator fsim(s.design->netlist(), s.design->good_sim(),
                      &s.design->mivs());
  PinId pin = 0;
  std::size_t log_i = 0;
  std::size_t graph_i = 0;
  const auto next_log = [&]() -> const FailureLog& {
    return s.data.samples[log_i++ % s.data.size()].log;
  };

  const std::vector<Kernel> kernels = {
      {"good_machine_simulation",
       static_cast<std::int64_t>(s.design->patterns().num_patterns) *
           s.design->netlist().num_gates(),
       [&] { sim.run(s.design->patterns()); }},
      {"fault_simulation_per_fault", 1,
       [&] {
         pin = (pin + 37) % s.design->netlist().num_pins();
         fsim.simulate(Fault::slow_to_rise(pin));
       }},
      {"backtrace", 1,
       [&] {
         backtrace_candidates(s.design->graph(), s.design->context(),
                              next_log());
       }},
      {"subgraph_extraction", 1,
       [&] { subgraph_for_log(*s.design, next_log()); }},
      {"gnn_inference", 1,
       [&] { s.framework->predict(s.data.graphs[graph_i++ % s.data.size()]); }},
      {"atpg_diagnosis", 1,
       [&] { diagnose_atpg(s.design->context(), next_log()); }},
      {"hetero_graph_construction", 1,
       [&] {
         HeteroGraph graph(s.design->netlist(), s.design->tiers(),
                           s.design->mivs());
       }},
  };

  const int repeats = smoke ? 1 : 3;

  BenchJson json("micro_kernels");
  json.meta("smoke", smoke);
  json.meta("design", s.design->name());
  json.meta("repeats", repeats);

  TablePrinter table({"Kernel", "Iters", "Mean ms", "Items/s"});
  for (const Kernel& kernel : kernels) {
    kernel.iter();  // warm-up: caches, lazy allocations
    double best_mean_ms = -1.0;
    std::int64_t iters_used = 0;
    for (int rep = 0; rep < repeats; ++rep) {
      // Iterate until the sample is long enough to time (smoke: a fixed
      // handful — CI wants the trace, not statistics).
      const double min_seconds = smoke ? 0.0 : 0.2;
      const std::int64_t max_iters = smoke ? 3 : 200;
      std::int64_t iters = 0;
      const BenchClock::time_point t0 = BenchClock::now();
      double elapsed_s = 0.0;
      while (iters < max_iters && (iters == 0 || elapsed_s < min_seconds)) {
        kernel.iter();
        ++iters;
        elapsed_s =
            std::chrono::duration<double>(BenchClock::now() - t0).count();
      }
      const double mean_ms = elapsed_s * 1e3 / static_cast<double>(iters);
      if (best_mean_ms < 0.0 || mean_ms < best_mean_ms) {
        best_mean_ms = mean_ms;
        iters_used = iters;
      }
    }
    const double items_per_s =
        kernel.items_per_iter > 0 && best_mean_ms > 0.0
            ? static_cast<double>(kernel.items_per_iter) /
                  (best_mean_ms * 1e-3)
            : 0.0;

    JsonObject& row = json.add_row();
    row.set("kernel", kernel.name);
    row.set("iterations", iters_used);
    row.set("mean_ms", best_mean_ms);
    row.set("items_per_second", items_per_s);

    table.add_row({kernel.name, std::to_string(iters_used),
                   fmt2(best_mean_ms),
                   items_per_s > 0.0 ? fmt2(items_per_s) : "-"});
  }
  table.print();
  json.write("BENCH_micro_kernels.json");
  std::cout << "wrote BENCH_micro_kernels.json\n";
}

}  // namespace
}  // namespace m3dfl::bench

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") smoke = true;
  }
  m3dfl::bench::run(smoke);
  return 0;
}
