// Ablation: dummy-buffer oversampling for the prune/reorder Classifier
// (paper Sec. V-C).
//
// The Classifier's training set is extremely imbalanced (true-positive tier
// predictions vastly outnumber false positives).  This bench trains the
// Classifier with and without the graph-native dummy-buffer balancing and
// reports, on a held-out set of Predicted-Positive samples, the recall on
// the minority class (false positives — the samples whose pruning would
// destroy accuracy) alongside overall accuracy.
#include "bench_common.h"

#include "gnn/oversample.h"

using namespace m3dfl;

namespace {

struct ClassifierEval {
  double accuracy = 0.0;
  double minority_recall = 0.0;
};

ClassifierEval evaluate(const PruneClassifier& model,
                        const std::vector<Subgraph>& graphs,
                        const std::vector<int>& labels) {
  std::int32_t correct = 0;
  std::int32_t minority_total = 0;
  std::int32_t minority_hit = 0;
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    const bool prune = model.predict_prune_prob(graphs[i]) >= 0.5;
    const bool truth = labels[i] == 1;
    if (prune == truth) ++correct;
    if (!truth) {
      ++minority_total;
      if (!prune) ++minority_hit;
    }
  }
  ClassifierEval eval;
  eval.accuracy = static_cast<double>(correct) / graphs.size();
  eval.minority_recall =
      minority_total == 0
          ? 1.0
          : static_cast<double>(minority_hit) / minority_total;
  return eval;
}

}  // namespace

int main() {
  bench::print_banner("Ablation: dummy-buffer oversampling for Classifier");
  ExperimentOptions opt = bench::standard_options(/*compacted=*/false);
  const ProfileExperiment experiment(Profile::kAes, opt);
  const TierPredictor& tp = experiment.framework().tier_predictor();
  const double tp_threshold = experiment.framework().tp_threshold();

  // Build the Predicted-Positive classifier dataset from fresh samples.
  DataGenOptions gen;
  gen.num_samples = 240;
  gen.seed = 606;
  const LabeledDataset data = build_dataset(experiment.syn1(), gen);
  std::vector<Subgraph> graphs;
  std::vector<int> labels;
  for (const Subgraph& g : data.graphs) {
    if (g.empty() || (g.tier_label != 0 && g.tier_label != 1)) continue;
    double confidence = 0.0;
    const int tier = tp.predicted_tier(g, &confidence);
    if (confidence < tp_threshold) continue;
    graphs.push_back(g);
    labels.push_back(tier == g.tier_label ? 1 : 0);
  }
  // Split train / held-out.
  const std::size_t split = graphs.size() * 2 / 3;
  std::vector<Subgraph> train_g(graphs.begin(),
                                graphs.begin() + static_cast<long>(split));
  std::vector<int> train_l(labels.begin(),
                           labels.begin() + static_cast<long>(split));
  const std::vector<Subgraph> test_g(
      graphs.begin() + static_cast<long>(split), graphs.end());
  const std::vector<int> test_l(labels.begin() + static_cast<long>(split),
                                labels.end());
  std::int32_t minority = 0;
  for (int l : train_l) minority += l == 0 ? 1 : 0;
  std::cout << "classifier dataset: " << graphs.size()
            << " Predicted-Positive samples, " << minority
            << " false positives in the training split (imbalance "
            << (minority == 0
                    ? std::string("inf")
                    : bench::fmt1(static_cast<double>(split - minority) /
                                  minority))
            << ":1)\n\n";

  TablePrinter table({"Training set", "Accuracy", "Minority recall"});
  {
    PruneClassifier model(tp);
    train_prune_classifier(model, train_g, train_l);
    const ClassifierEval e = evaluate(model, test_g, test_l);
    table.add_row({"imbalanced (no oversampling)", bench::pct(e.accuracy),
                   bench::pct(e.minority_recall)});
  }
  {
    std::vector<Subgraph> balanced_g = train_g;
    std::vector<int> balanced_l = train_l;
    Rng rng(77);
    balance_with_buffers(balanced_g, balanced_l, rng);
    PruneClassifier model(tp);
    train_prune_classifier(model, balanced_g, balanced_l);
    const ClassifierEval e = evaluate(model, test_g, test_l);
    table.add_row({"dummy-buffer balanced", bench::pct(e.accuracy),
                   bench::pct(e.minority_recall)});
  }
  table.print();
  std::cout << "\nMinority recall is what protects accuracy: a distorted "
               "classifier prunes false-positive predictions and removes "
               "the real defect from the report.\n";
  return 0;
}
