// Ablation: random-partition data augmentation (paper Sec. IV).
//
// The transferable framework trains on Syn-1 plus two *randomly partitioned*
// netlists.  This bench trains (a) on Syn-1 samples only and (b) with the
// augmentation, then evaluates tier-prediction accuracy on every
// configuration — the augmented model should hold up on Par/Syn-2 where the
// Syn-1-only model degrades.
#include "bench_common.h"

using namespace m3dfl;

int main() {
  bench::print_banner("Ablation: random-partition data augmentation (Tate)");
  const Profile profile = Profile::kTate;
  const auto syn1 = Design::build(profile, DesignConfig::kSyn1);

  // (a) Syn-1 only, sample count matched to the augmented set's total.
  DataGenOptions gen;
  gen.num_samples = 280 + 2 * 140;
  gen.miv_fault_prob = 0.2;
  gen.seed = 2024;
  const LabeledDataset plain = build_dataset(*syn1, gen);
  TierPredictor model_plain;
  train_tier_predictor(model_plain, plain.graphs);

  // (b) the paper's augmentation.
  TransferTrainOptions train_opt;
  const LabeledDataset augmented =
      build_transfer_training_set(profile, *syn1, train_opt);
  TierPredictor model_aug;
  train_tier_predictor(model_aug, augmented.graphs);

  ExperimentOptions opt = bench::standard_options(/*compacted=*/false);
  opt.test_samples = 80;
  TablePrinter table(
      {"Configuration", "Syn-1-only training", "With augmentation"});
  for (DesignConfig config : all_configs()) {
    const auto design = config == DesignConfig::kSyn1
                            ? nullptr
                            : Design::build(profile, config);
    const Design& d = design ? *design : *syn1;
    const LabeledDataset test = build_test_set(d, opt);
    table.add_row({
        config_name(config),
        bench::pct(tier_accuracy(model_plain, test.graphs)),
        bench::pct(tier_accuracy(model_aug, test.graphs)),
    });
  }
  table.print();
  std::cout << "\nAugmentation diversifies the gate-placement distribution "
               "seen in training, protecting accuracy on re-partitioned "
               "(Par) and re-synthesized (Syn-2) netlists.\n";
  return 0;
}
