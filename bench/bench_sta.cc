// Static timing & testability analysis benchmark (docs/ANALYSIS.md).
//
// Times the new sta/ subsystem on generated designs at two sizes (one in
// --smoke): full analysis construction (arrival + required + suffix DP),
// K-longest-path enumeration, structural TDF collapsing, and the payoff the
// collapsing buys downstream — coverage grading with and without
// CoverageOptions::collapse_faults, which is byte-identical by construction
// (tests/sta_test.cc proves it), so the speedup column is a free lunch.
// Emits BENCH_sta.json.
#include <chrono>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "atpg/coverage.h"
#include "bench_common.h"
#include "sta/collapse.h"
#include "sta/sta.h"
#include "util/bench_json.h"

namespace m3dfl::bench {
namespace {

using BenchClock = std::chrono::steady_clock;

double time_ms(const std::function<void()>& work) {
  const BenchClock::time_point t0 = BenchClock::now();
  work();
  return std::chrono::duration<double>(BenchClock::now() - t0).count() * 1e3;
}

void run(bool smoke) {
  print_banner("STA: slack propagation, K-longest paths, fault collapsing");

  std::vector<std::pair<std::string, std::int32_t>> sizes = {
      {"sta-small", 2000}};
  if (!smoke) sizes.push_back({"sta-large", 12000});
  const std::int32_t k_paths = 32;

  BenchJson json("sta");
  json.meta("smoke", smoke);
  json.meta("k_paths", k_paths);

  TablePrinter table({"Design", "Gates", "Build ms", "K-paths ms",
                      "Collapse ms", "Faults", "Classes", "Ratio",
                      "Cov full ms", "Cov collapsed ms", "Speedup"});

  for (const auto& [label, num_gates] : sizes) {
    const BenchDesign d(label, num_gates, 0xBEEF);

    sta::StaOptions options;
    std::vector<sta::TimingPath> paths;
    sta::CollapsedFaults collapsed;
    double wns = 0.0;

    std::unique_ptr<sta::TimingAnalysis> sta;
    const double build_ms = time_ms([&] {
      sta = std::make_unique<sta::TimingAnalysis>(d.netlist, &d.tiers,
                                                  &d.mivs, options);
      wns = sta->wns_ps();
    });
    const double paths_ms =
        time_ms([&] { paths = sta->k_longest_paths(k_paths); });
    const double collapse_ms =
        time_ms([&] { collapsed = sta::collapse_tdf_faults(d.netlist); });

    CoverageResult cov_full;
    CoverageResult cov_collapsed;
    const double cov_full_ms = time_ms(
        [&] { cov_full = measure_coverage(d.netlist, d.sim, {}); });
    CoverageOptions copt;
    copt.collapse_faults = true;
    const double cov_collapsed_ms = time_ms(
        [&] { cov_collapsed = measure_coverage(d.netlist, d.sim, copt); });
    // Byte-identity is the tested contract; assert it here too so a broken
    // collapse path can't masquerade as a speedup.
    if (cov_full.num_detected != cov_collapsed.num_detected ||
        cov_full.num_faults != cov_collapsed.num_faults) {
      std::cerr << "FATAL: collapsed coverage diverged on " << label << "\n";
      std::exit(1);
    }
    const double speedup =
        cov_collapsed_ms > 0.0 ? cov_full_ms / cov_collapsed_ms : 0.0;

    JsonObject& row = json.add_row();
    row.set("design", label);
    row.set("gates", d.netlist.num_logic_gates());
    row.set("build_ms", build_ms);
    row.set("k_paths_ms", paths_ms);
    row.set("collapse_ms", collapse_ms);
    row.set("wns_ps", wns);
    row.set("critical_delay_ps", sta->critical_delay_ps());
    row.set("num_faults", collapsed.full.size());
    row.set("num_classes", static_cast<std::size_t>(collapsed.num_classes()));
    row.set("collapse_ratio", collapsed.collapse_ratio());
    row.set("coverage_full_ms", cov_full_ms);
    row.set("coverage_collapsed_ms", cov_collapsed_ms);
    row.set("coverage_speedup", speedup);
    row.set("coverage", cov_full.coverage());

    table.add_row({label, std::to_string(d.netlist.num_logic_gates()),
                   fmt2(build_ms), fmt2(paths_ms), fmt2(collapse_ms),
                   std::to_string(collapsed.full.size()),
                   std::to_string(collapsed.num_classes()),
                   fmt2(collapsed.collapse_ratio()), fmt2(cov_full_ms),
                   fmt2(cov_collapsed_ms),
                   fmt2(speedup) + "x"});
  }

  table.print();
  json.write("BENCH_sta.json");
  std::cout << "wrote BENCH_sta.json\n";
}

}  // namespace
}  // namespace m3dfl::bench

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") smoke = true;
  }
  m3dfl::bench::run(smoke);
  return 0;
}
