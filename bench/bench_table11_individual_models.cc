// Regenerates paper Table XI: diagnosis with the individual models of the
// framework on AES/Syn-1, with the test set augmented by ~10% MIV-fault
// samples — Tier-predictor standalone prunes aggressively but can lose MIV
// faults; MIV-pinpointer standalone only prioritizes; together they deliver
// the improvement with bounded accuracy loss.
#include "bench_common.h"

using namespace m3dfl;

namespace {

void add_method_row(TablePrinter& table, const std::string& name,
                    const QualityStats& base, const QualityStats& stats) {
  table.add_row({
      name,
      m3dfl::bench::pct(stats.accuracy()) + " " +
          m3dfl::bench::accuracy_delta(base.accuracy(), stats.accuracy()),
      m3dfl::bench::mean_std(stats.resolution) + " " +
          m3dfl::bench::improvement(base.resolution.mean(),
                                    stats.resolution.mean()),
      m3dfl::bench::mean_std(stats.fhi) + " " +
          m3dfl::bench::improvement(base.fhi.mean(), stats.fhi.mean()),
  });
}

}  // namespace

int main() {
  bench::print_banner(
      "Table XI: standalone Tier-predictor / MIV-pinpointer ablation "
      "(AES, Syn-1, +10% MIV-fault samples)");
  const ExperimentOptions opt = bench::standard_options(/*compacted=*/false);
  const AblationResult r = evaluate_individual_models(Profile::kAes, opt);

  TablePrinter table({"Diagnosis method", "Accuracy", "Mean resol. (std)",
                      "Mean FHI (std)"});
  table.add_row({"ATPG only", bench::pct(r.atpg.accuracy()),
                 bench::mean_std(r.atpg.resolution),
                 bench::mean_std(r.atpg.fhi)});
  add_method_row(table, "Tier-predictor", r.atpg, r.tier_only);
  add_method_row(table, "MIV-pinpointer", r.atpg, r.miv_only);
  add_method_row(table, "Tier-predictor + MIV-pinpointer", r.atpg,
                 r.combined);
  table.print();
  return 0;
}
