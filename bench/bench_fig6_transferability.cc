// Regenerates paper Fig. 6: accuracy of the GNN models on the Tate
// benchmark, comparing a Dedicated Model (trained on each configuration's
// own samples) against the Transferred Model (trained once on Syn-1 plus two
// randomly partitioned netlists, never retrained).
#include "bench_common.h"

using namespace m3dfl;

int main() {
  bench::print_banner("Fig. 6: dedicated vs transferred model accuracy "
                      "(Tate)");
  const ExperimentOptions opt = bench::standard_options(/*compacted=*/false);
  const std::vector<TransferabilityRow> rows =
      evaluate_transferability(Profile::kTate, opt);

  TablePrinter table({"Configuration", "Tier-pred. dedicated",
                      "Tier-pred. transferred", "MIV-pin. dedicated",
                      "MIV-pin. transferred"});
  for (const TransferabilityRow& r : rows) {
    table.add_row({
        r.config,
        bench::pct(r.dedicated_tier_acc),
        bench::pct(r.transferred_tier_acc),
        bench::pct(r.dedicated_miv_acc),
        bench::pct(r.transferred_miv_acc),
    });
  }
  table.print();
  std::cout << "\nThe transferred model (trained only on Syn-1 + random "
               "partitions) tracks the dedicated models across every "
               "configuration — the paper's transferability claim.\n";
  return 0;
}
