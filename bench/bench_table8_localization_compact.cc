// Regenerates paper Table VIII: effectiveness of delay-fault localization
// WITH response compaction — baseline [11], the proposed GNN framework, and
// GNN + [11], with tier-localization rates.
#include "bench_localization.h"

int main() {
  m3dfl::bench::print_banner(
      "Table VIII: delay-fault localization WITH response compaction");
  m3dfl::bench::run_localization_table(/*compacted=*/true);
  return 0;
}
