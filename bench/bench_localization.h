// Shared driver for the two big fault-localization tables (paper Tables VI
// and VIII): per (benchmark, configuration), the baseline [11] standalone,
// the proposed GNN framework standalone, and the combined GNN + [11] stack,
// each with accuracy / resolution / FHI deltas against the raw ATPG report
// and the tier-localization percentages.
#ifndef M3DFL_BENCH_BENCH_LOCALIZATION_H_
#define M3DFL_BENCH_BENCH_LOCALIZATION_H_

#include "bench_common.h"

namespace m3dfl::bench {

inline void run_localization_table(bool compacted) {
  TablePrinter table({"Design", "Config.",
                      // Baseline [11]
                      "[11] Acc.", "[11] resol.", "[11] FHI", "[11] Tier",
                      // GNN standalone
                      "GNN Acc.", "GNN resol.", "GNN FHI", "GNN Tier",
                      // GNN + [11]
                      "+[11] Acc.", "+[11] resol.", "+[11] FHI"});
  const ExperimentOptions opt = standard_options(compacted);
  for (Profile profile : all_profiles()) {
    const ProfileExperiment experiment(profile, opt);
    for (DesignConfig config : all_configs()) {
      const ConfigResult r = experiment.evaluate(config);
      const double base_acc = r.atpg.accuracy();
      const double base_res = r.atpg.resolution.mean();
      const double base_fhi = r.atpg.fhi.mean();
      table.add_row({
          r.profile,
          r.config,
          pct(r.baseline.stats.accuracy()) + " " +
              accuracy_delta(base_acc, r.baseline.stats.accuracy()),
          mean_std(r.baseline.stats.resolution) + " " +
              improvement(base_res, r.baseline.stats.resolution.mean()),
          mean_std(r.baseline.stats.fhi) + " " +
              improvement(base_fhi, r.baseline.stats.fhi.mean()),
          pct(r.baseline.tier_localization()),
          pct(r.gnn.stats.accuracy()) + " " +
              accuracy_delta(base_acc, r.gnn.stats.accuracy()),
          mean_std(r.gnn.stats.resolution) + " " +
              improvement(base_res, r.gnn.stats.resolution.mean()),
          mean_std(r.gnn.stats.fhi) + " " +
              improvement(base_fhi, r.gnn.stats.fhi.mean()),
          pct(r.gnn.tier_localization()),
          pct(r.gnn_plus.stats.accuracy()) + " " +
              accuracy_delta(base_acc, r.gnn_plus.stats.accuracy()),
          mean_std(r.gnn_plus.stats.resolution) + " " +
              improvement(base_res, r.gnn_plus.stats.resolution.mean()),
          mean_std(r.gnn_plus.stats.fhi) + " " +
              improvement(base_fhi, r.gnn_plus.stats.fhi.mean()),
      });
    }
    table.add_separator();
  }
  table.print();
  std::cout << "\nDeltas are relative to the raw ATPG diagnosis reports "
               "(Tables V/VII); 'Tier' is the tier-localization rate over "
               "reports the ATPG run did not already confine to one tier.\n";
}

}  // namespace m3dfl::bench

#endif  // M3DFL_BENCH_BENCH_LOCALIZATION_H_
