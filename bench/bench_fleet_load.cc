// Fleet serving under Zipf multi-tenant load: latency/throughput curves for
// serve::FleetService routing over a registry::ModelRegistry.
//
// Production diagnosis traffic is many designs wide and heavily skewed — a
// handful of hot designs (a volume part in retest) dominate while a long
// tail stays warm.  This harness models that: 8 tenants (4 benchmark
// profiles x {Syn-1, Syn-2}), design popularity drawn from a Zipf
// distribution at two skews, and two load shapes:
//
//   * open loop: requests arrive on a fixed schedule regardless of
//     completions (the tester floor does not wait for the diagnosis
//     service), swept across an offered-QPS ladder; the latency curve shows
//     where queueing sets in;
//   * closed loop: N users submit-and-wait in a tight loop — the capacity
//     measurement an open sweep brackets.
//
// Per-request latency is the service-measured submit -> result time
// (DiagnosisResult::total_seconds, queue wait included).  Results go to
// stdout tables and BENCH_fleet_load.json (util/bench_json.h): one row per
// (skew, offered QPS) point with achieved QPS and p50/p95/p99 latency.
//
// `--smoke` runs a reduced shape (2 tenants, short ladder) for CI tier-1;
// it exercises every code path and still writes the JSON file.
#include <algorithm>
#include <chrono>
#include <filesystem>
#include <future>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/pipeline.h"
#include "registry/registry.h"
#include "serve/fleet.h"
#include "util/atomic_file.h"
#include "util/bench_json.h"
#include "util/rng.h"

using namespace m3dfl;

namespace {

using Clock = std::chrono::steady_clock;

struct BenchConfig {
  bool smoke = false;
  std::vector<std::pair<Profile, DesignConfig>> designs;
  std::vector<double> skews;
  std::vector<double> offered_qps;
  double seconds_per_point = 2.0;   // open-loop dispatch window per point
  std::int32_t unique_logs = 4;     // unique failure signatures per tenant
  std::int32_t shard_threads = 2;   // workers per tenant shard
  std::int32_t closed_users = 8;    // closed-loop user threads
  std::int32_t closed_requests = 25;  // requests per closed-loop user
};

BenchConfig make_config(bool smoke) {
  BenchConfig config;
  config.smoke = smoke;
  if (smoke) {
    config.designs = {{Profile::kAes, DesignConfig::kSyn1},
                      {Profile::kTate, DesignConfig::kSyn1}};
    config.skews = {0.9, 1.4};
    config.offered_qps = {20.0, 60.0};
    config.seconds_per_point = 0.5;
    config.unique_logs = 2;
    config.shard_threads = 1;
    config.closed_users = 2;
    config.closed_requests = 4;
  } else {
    config.designs = {{Profile::kAes, DesignConfig::kSyn1},
                      {Profile::kAes, DesignConfig::kSyn2},
                      {Profile::kTate, DesignConfig::kSyn1},
                      {Profile::kTate, DesignConfig::kSyn2},
                      {Profile::kNetcard, DesignConfig::kSyn1},
                      {Profile::kNetcard, DesignConfig::kSyn2},
                      {Profile::kLeon3mp, DesignConfig::kSyn1},
                      {Profile::kLeon3mp, DesignConfig::kSyn2}};
    config.skews = {0.9, 1.4};
    config.offered_qps = {25.0, 50.0, 100.0, 200.0, 400.0};
  }
  return config;
}

// Zipf popularity over tenant ranks: P(rank i) ~ 1 / (i+1)^skew, sampled
// through a precomputed CDF.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double skew) : cdf_(n) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), skew);
      cdf_[i] = total;
    }
    for (double& c : cdf_) c /= total;
  }
  std::size_t sample(Rng& rng) const {
    const double u = rng.next_double();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return it == cdf_.end() ? cdf_.size() - 1
                            : static_cast<std::size_t>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

struct Tenant {
  std::int32_t id = 0;
  std::string model;
  std::vector<FailureLog> logs;
};

struct LoadPoint {
  std::size_t dispatched = 0;
  std::int64_t ok = 0;
  std::int64_t failed = 0;
  double wall_seconds = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

void fill_latencies(std::vector<double>& ms, LoadPoint& point) {
  if (ms.empty()) return;
  std::sort(ms.begin(), ms.end());
  const auto at = [&ms](double q) {
    const std::size_t rank = std::min(
        ms.size() - 1,
        static_cast<std::size_t>(q * static_cast<double>(ms.size())));
    return ms[rank];
  };
  point.p50_ms = at(0.50);
  point.p95_ms = at(0.95);
  point.p99_ms = at(0.99);
  point.max_ms = ms.back();
}

// Open loop: dispatch on a fixed schedule, then resolve everything.
LoadPoint run_open_loop(serve::FleetService& fleet,
                        const std::vector<Tenant>& tenants,
                        const ZipfSampler& zipf, double offered_qps,
                        double seconds, std::uint64_t seed) {
  Rng rng(seed);
  const auto n = static_cast<std::size_t>(offered_qps * seconds);
  std::vector<std::future<serve::DiagnosisResult>> futures;
  futures.reserve(n);
  const Clock::time_point t0 = Clock::now();
  for (std::size_t i = 0; i < n; ++i) {
    std::this_thread::sleep_until(
        t0 + std::chrono::duration_cast<Clock::duration>(
                 std::chrono::duration<double>(static_cast<double>(i) /
                                               offered_qps)));
    const Tenant& tenant = tenants[zipf.sample(rng)];
    futures.push_back(
        fleet.submit(tenant.id, tenant.logs[rng.next_below(
                                    tenant.logs.size())]));
  }
  LoadPoint point;
  point.dispatched = n;
  std::vector<double> latencies_ms;
  latencies_ms.reserve(n);
  for (auto& f : futures) {
    const serve::DiagnosisResult result = f.get();
    (result.ok() ? point.ok : point.failed)++;
    latencies_ms.push_back(result.total_seconds * 1e3);
  }
  point.wall_seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();
  fill_latencies(latencies_ms, point);
  return point;
}

// Closed loop: `users` threads submit-and-wait back to back.
LoadPoint run_closed_loop(serve::FleetService& fleet,
                          const std::vector<Tenant>& tenants,
                          const ZipfSampler& zipf, std::int32_t users,
                          std::int32_t requests_per_user, std::uint64_t seed) {
  std::vector<std::vector<double>> per_user_ms(
      static_cast<std::size_t>(users));
  std::vector<std::int64_t> per_user_ok(static_cast<std::size_t>(users), 0);
  std::vector<std::thread> threads;
  const Clock::time_point t0 = Clock::now();
  for (std::int32_t u = 0; u < users; ++u) {
    threads.emplace_back([&, u] {
      Rng rng(seed + static_cast<std::uint64_t>(u) * 0x9E37u);
      auto& ms = per_user_ms[static_cast<std::size_t>(u)];
      for (std::int32_t r = 0; r < requests_per_user; ++r) {
        const Tenant& tenant = tenants[zipf.sample(rng)];
        const serve::DiagnosisResult result = fleet.diagnose(
            tenant.id,
            tenant.logs[rng.next_below(tenant.logs.size())]);
        ms.push_back(result.total_seconds * 1e3);
        per_user_ok[static_cast<std::size_t>(u)] += result.ok() ? 1 : 0;
      }
    });
  }
  for (auto& t : threads) t.join();
  LoadPoint point;
  point.wall_seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();
  std::vector<double> all_ms;
  for (const auto& ms : per_user_ms) {
    all_ms.insert(all_ms.end(), ms.begin(), ms.end());
  }
  point.dispatched = all_ms.size();
  for (const auto ok : per_user_ok) point.ok += ok;
  point.failed = static_cast<std::int64_t>(point.dispatched) - point.ok;
  fill_latencies(all_ms, point);
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") smoke = true;
  }
  const BenchConfig config = make_config(smoke);
  bench::print_banner(
      std::string("Fleet load: Zipf multi-tenant serving over a model "
                  "registry") +
      (smoke ? " [smoke]" : ""));

  // One cheaply trained framework published under every tenant's registry
  // name: this measures *serving* capacity (routing, registry, shards),
  // where model accuracy is irrelevant — only inference cost matters, and
  // that is architecture- not weight-dependent.
  std::cout << "training shared framework (AES/Syn-1)...\n";
  std::shared_ptr<const Design> aes =
      Design::build(Profile::kAes, DesignConfig::kSyn1);
  TransferTrainOptions train;
  train.samples_syn1 = 40;
  train.samples_per_random = 20;
  const LabeledDataset data =
      build_transfer_training_set(Profile::kAes, *aes, train);
  FrameworkOptions fw_options;
  fw_options.training.epochs = 40;
  DiagnosisFramework framework(fw_options);
  framework.train(data.graphs);
  std::string artifact;
  {
    std::ostringstream os;
    framework.save(os);
    artifact = os.str();
  }

  // Publish the registry: <model>@1 for every design (plus a @2 copy for
  // the first, so `latest` resolution is exercised past version 1).
  const std::string registry_dir = "bench_fleet_registry.tmp";
  std::filesystem::remove_all(registry_dir);
  std::filesystem::create_directory(registry_dir);
  std::cout << "building " << config.designs.size()
            << " tenant designs + registry...\n";
  std::vector<Tenant> tenants;
  std::vector<std::shared_ptr<const Design>> designs;
  for (std::size_t i = 0; i < config.designs.size(); ++i) {
    const auto& [profile, cfg] = config.designs[i];
    std::shared_ptr<const Design> design =
        (profile == Profile::kAes && cfg == DesignConfig::kSyn1)
            ? aes
            : std::shared_ptr<const Design>(Design::build(profile, cfg));
    Tenant tenant;
    tenant.model = registry::sanitize_model_name(design->name());
    write_file_atomic(registry_dir + "/" +
                          registry::ModelRegistry::artifact_filename(
                              tenant.model, 1),
                      artifact);
    if (i == 0) {
      write_file_atomic(registry_dir + "/" +
                            registry::ModelRegistry::artifact_filename(
                                tenant.model, 2),
                        artifact);
    }
    DataGenOptions gen;
    gen.num_samples = config.unique_logs;
    gen.seed = 0xF1EE7 + static_cast<std::uint64_t>(i);
    for (const Sample& s : generate_samples(design->context(), gen)) {
      tenant.logs.push_back(s.log);
    }
    designs.push_back(design);
    tenants.push_back(std::move(tenant));
  }

  registry::ModelRegistry registry(registry_dir);
  serve::FleetOptions fleet_options;
  fleet_options.service_defaults.num_threads = config.shard_threads;
  serve::FleetService fleet(registry, fleet_options);
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    serve::TenantOptions tenant = fleet.tenant_defaults();
    tenant.model = tenants[i].model;
    tenants[i].id = fleet.add_tenant(designs[i], std::move(tenant));
  }

  BenchJson json("fleet_load");
  json.meta("designs", config.designs.size())
      .meta("unique_logs_per_tenant", config.unique_logs)
      .meta("shard_threads", config.shard_threads)
      .meta("zipf_skews", config.skews.size())
      .meta("smoke", config.smoke);

  TablePrinter table({"mode", "skew", "offered qps", "achieved qps", "n",
                      "ok", "failed", "p50 ms", "p95 ms", "p99 ms"});
  for (const double skew : config.skews) {
    const ZipfSampler zipf(tenants.size(), skew);
    for (const double qps : config.offered_qps) {
      const LoadPoint point = run_open_loop(
          fleet, tenants, zipf, qps, config.seconds_per_point,
          0xBEEF ^ static_cast<std::uint64_t>(qps * 131.0 + skew * 17.0));
      const double achieved =
          static_cast<double>(point.dispatched) / point.wall_seconds;
      table.add_row({"open", bench::fmt2(skew), bench::fmt1(qps),
                     bench::fmt1(achieved), std::to_string(point.dispatched),
                     std::to_string(point.ok), std::to_string(point.failed),
                     bench::fmt2(point.p50_ms), bench::fmt2(point.p95_ms),
                     bench::fmt2(point.p99_ms)});
      json.add_row()
          .set("mode", "open")
          .set("zipf_skew", skew)
          .set("offered_qps", qps)
          .set("achieved_qps", achieved)
          .set("requests", point.dispatched)
          .set("ok", point.ok)
          .set("failed", point.failed)
          .set("p50_ms", point.p50_ms)
          .set("p95_ms", point.p95_ms)
          .set("p99_ms", point.p99_ms)
          .set("max_ms", point.max_ms);
    }
    table.add_separator();
  }

  // Closed-loop capacity at the middle skew.
  const ZipfSampler zipf(tenants.size(), config.skews.front());
  const LoadPoint closed =
      run_closed_loop(fleet, tenants, zipf, config.closed_users,
                      config.closed_requests, 0xCAFE);
  const double capacity =
      static_cast<double>(closed.dispatched) / closed.wall_seconds;
  table.add_row({"closed", bench::fmt2(config.skews.front()),
                 std::to_string(config.closed_users) + " users",
                 bench::fmt1(capacity), std::to_string(closed.dispatched),
                 std::to_string(closed.ok), std::to_string(closed.failed),
                 bench::fmt2(closed.p50_ms), bench::fmt2(closed.p95_ms),
                 bench::fmt2(closed.p99_ms)});
  table.print();
  json.add_row()
      .set("mode", "closed")
      .set("zipf_skew", config.skews.front())
      .set("users", config.closed_users)
      .set("achieved_qps", capacity)
      .set("requests", closed.dispatched)
      .set("ok", closed.ok)
      .set("failed", closed.failed)
      .set("p50_ms", closed.p50_ms)
      .set("p95_ms", closed.p95_ms)
      .set("p99_ms", closed.p99_ms)
      .set("max_ms", closed.max_ms);

  fleet.shutdown();
  std::cout << "\n" << fleet.report();
  json.write("BENCH_fleet_load.json");
  std::cout << "\nwrote BENCH_fleet_load.json\n";

  std::filesystem::remove_all(registry_dir);
  const bool all_ok = closed.failed == 0;
  return all_ok ? 0 : 1;
}
