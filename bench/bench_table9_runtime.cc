// Regenerates paper Table IX: runtime of the proposed framework — training
// phase (feature construction, GNN training) and deployment (T_ATPG, T_GNN,
// T_update) over the Syn-2 test sets.
//
// --smoke: one profile at a reduced training/test scale, for CI — the point
// is the machine-readable BENCH_table9_runtime.json trace, not the numbers.
#include <string>

#include "bench_common.h"
#include "util/bench_json.h"

namespace m3dfl::bench {
namespace {

void run(bool smoke) {
  print_banner("Table IX: runtime analysis (seconds)");
  TablePrinter table({"Design", "Feature constr.", "Datagen", "GNN training",
                      "T_ATPG", "T_GNN", "T_update"});
  ExperimentOptions opt = standard_options(/*compacted=*/false);
  if (smoke) {
    opt.test_samples = 6;
    opt.train.samples_syn1 = 40;
    opt.train.samples_per_random = 20;
    opt.framework.training.epochs = 20;
  }
  const std::vector<Profile> profiles =
      smoke ? std::vector<Profile>{Profile::kAes} : all_profiles();

  BenchJson json("table9_runtime");
  json.meta("smoke", smoke);
  json.meta("test_samples", opt.test_samples);
  json.meta("profiles", static_cast<std::int64_t>(profiles.size()));

  for (Profile profile : profiles) {
    const ProfileExperiment experiment(profile, opt);
    const ConfigResult r = experiment.evaluate(DesignConfig::kSyn2);
    const double feature_s = experiment.syn1().feature_construction_seconds();
    table.add_row({
        profile_name(profile),
        fmt2(feature_s),
        fmt2(experiment.datagen_seconds()),
        fmt2(experiment.training_seconds()),
        fmt2(r.t_atpg),
        fmt2(r.t_gnn),
        fmt2(r.t_update),
    });
    JsonObject& row = json.add_row();
    row.set("design", profile_name(profile));
    row.set("feature_construction_s", feature_s);
    row.set("datagen_s", experiment.datagen_seconds());
    row.set("training_s", experiment.training_seconds());
    row.set("t_atpg_s", r.t_atpg);
    row.set("t_gnn_s", r.t_gnn);
    row.set("t_update_s", r.t_update);
  }
  table.print();
  std::cout << "\nDeployment columns are totals over the "
            << opt.test_samples
            << "-die Syn-2 test set; GNN inference runs alongside ATPG "
               "diagnosis, so the added deployment latency is T_update "
               "only (paper Fig. 9).\n";
  json.write("BENCH_table9_runtime.json");
  std::cout << "wrote BENCH_table9_runtime.json\n";
}

}  // namespace
}  // namespace m3dfl::bench

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") smoke = true;
  }
  m3dfl::bench::run(smoke);
  return 0;
}
