// Regenerates paper Table IX: runtime of the proposed framework — training
// phase (feature construction, GNN training) and deployment (T_ATPG, T_GNN,
// T_update) over the Syn-2 test sets.
#include "bench_common.h"

using namespace m3dfl;

int main() {
  bench::print_banner("Table IX: runtime analysis (seconds)");
  TablePrinter table({"Design", "Feature constr.", "Datagen", "GNN training",
                      "T_ATPG", "T_GNN", "T_update"});
  const ExperimentOptions opt = bench::standard_options(/*compacted=*/false);
  for (Profile profile : all_profiles()) {
    const ProfileExperiment experiment(profile, opt);
    const ConfigResult r = experiment.evaluate(DesignConfig::kSyn2);
    table.add_row({
        profile_name(profile),
        bench::fmt2(experiment.syn1().feature_construction_seconds()),
        bench::fmt2(experiment.datagen_seconds()),
        bench::fmt2(experiment.training_seconds()),
        bench::fmt2(r.t_atpg),
        bench::fmt2(r.t_gnn),
        bench::fmt2(r.t_update),
    });
  }
  table.print();
  std::cout << "\nDeployment columns are totals over the "
            << opt.test_samples
            << "-die Syn-2 test set; GNN inference runs alongside ATPG "
               "diagnosis, so the added deployment latency is T_update "
               "only (paper Fig. 9).\n";
  return 0;
}
