// Regenerates paper Fig. 9: the deployment runtime decomposition per
// benchmark — ATPG diagnosis and GNN inference run in parallel, followed by
// the candidate pruning & reordering update.
#include "bench_common.h"

using namespace m3dfl;

int main() {
  bench::print_banner("Fig. 9: deployment runtime decomposition");
  TablePrinter table({"Design", "T_ATPG (s)", "T_GNN (s)", "T_update (s)",
                      "max(T_ATPG,T_GNN)+T_update", "GNN/ATPG ratio"});
  const ExperimentOptions opt = bench::standard_options(/*compacted=*/false);
  for (Profile profile : all_profiles()) {
    const ProfileExperiment experiment(profile, opt);
    const ConfigResult r = experiment.evaluate(DesignConfig::kSyn2);
    const double total = std::max(r.t_atpg, r.t_gnn) + r.t_update;
    table.add_row({
        profile_name(profile),
        bench::fmt2(r.t_atpg),
        bench::fmt2(r.t_gnn),
        bench::fmt2(r.t_update),
        bench::fmt2(total),
        bench::fmt2(r.t_atpg > 0 ? r.t_gnn / r.t_atpg : 0.0),
    });
  }
  table.print();
  std::cout << "\nGNN inference is far cheaper than the ATPG diagnosis it "
               "runs next to, so the framework adds only the (small) update "
               "step to the flow's latency.\n";
  return 0;
}
