// Regenerates paper Table X: localization of multiple delay faults (2-5
// same-tier TDFs per die, the tier-specific systematic-defect model),
// trained on Syn-1 and tested on Syn-2.
#include "bench_common.h"

using namespace m3dfl;

int main() {
  bench::print_banner(
      "Table X: multiple delay-fault localization (2-5 TDFs per die)");
  TablePrinter table({"Design", "ATPG Acc.", "ATPG resol.", "ATPG FHI",
                      "Prop. Acc.", "Prop. resol.", "Prop. FHI",
                      "Tier local."});
  ExperimentOptions opt = bench::standard_options(/*compacted=*/false);
  opt.test_samples = 40;
  for (Profile profile : all_profiles()) {
    const MultiFaultResult r = evaluate_multifault(profile, opt);
    table.add_row({
        r.profile,
        bench::pct(r.atpg.accuracy()),
        bench::mean_std(r.atpg.resolution),
        bench::mean_std(r.atpg.fhi),
        bench::pct(r.refined.accuracy()) + " " +
            bench::accuracy_delta(r.atpg.accuracy(), r.refined.accuracy()),
        bench::mean_std(r.refined.resolution) + " " +
            bench::improvement(r.atpg.resolution.mean(),
                               r.refined.resolution.mean()),
        bench::mean_std(r.refined.fhi) + " " +
            bench::improvement(r.atpg.fhi.mean(), r.refined.fhi.mean()),
        bench::pct(r.tier_localization),
    });
  }
  table.print();
  std::cout << "\nA report counts as accurate only when EVERY injected fault "
               "appears among its candidates; tier localization comes from "
               "the Tier-predictor and stays high even where report accuracy "
               "degrades — the foundry can act on the tier verdict alone.\n";
  return 0;
}
