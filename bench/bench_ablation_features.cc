// Ablation: value of the top-level (Topedge) features.
//
// DESIGN.md calls out the heterogeneous graph's top level as a key design
// choice: its Topedge statistics enter the GNN as node features.  This bench
// trains the Tier-predictor with (a) all 13 features, (b) the top-level
// feature columns zeroed (N_top, Topedge length/MIV statistics), and
// (c) the circuit-level structural columns zeroed, then compares accuracy.
#include "bench_common.h"

using namespace m3dfl;

namespace {

LabeledDataset zero_columns(const LabeledDataset& data,
                            const std::vector<std::int32_t>& columns) {
  LabeledDataset out = data;
  for (Subgraph& g : out.graphs) {
    for (std::int32_t i = 0; i < g.num_nodes(); ++i) {
      for (std::int32_t c : columns) g.features.at(i, c) = 0.0f;
    }
  }
  return out;
}

double accuracy_with(const LabeledDataset& train, const LabeledDataset& test,
                     const std::vector<std::int32_t>& zeroed) {
  const LabeledDataset t = zero_columns(train, zeroed);
  const LabeledDataset e = zero_columns(test, zeroed);
  TierPredictor model;
  train_tier_predictor(model, t.graphs);
  return tier_accuracy(model, e.graphs);
}

}  // namespace

int main() {
  bench::print_banner("Ablation: top-level vs circuit-level node features");
  // Top-level columns: N_top (2) and the four Topedge statistics (9-12).
  const std::vector<std::int32_t> top_level = {2, 9, 10, 11, 12};
  // Circuit-level structure: degrees, level, output flag (tier kept: it is
  // the label's alphabet and removing it tests something else).
  const std::vector<std::int32_t> circuit_level = {0, 1, 4, 5, 7, 8};

  TablePrinter table({"Design", "All features", "No top-level",
                      "No circuit-structure"});
  ExperimentOptions opt = bench::standard_options(/*compacted=*/false);
  opt.test_samples = 80;
  for (Profile profile : {Profile::kAes, Profile::kTate}) {
    const auto design = Design::build(profile, DesignConfig::kSyn1);
    TransferTrainOptions train_opt;
    const LabeledDataset train =
        build_transfer_training_set(profile, *design, train_opt);
    const LabeledDataset test = build_test_set(*design, opt);
    table.add_row({
        profile_name(profile),
        bench::pct(accuracy_with(train, test, {})),
        bench::pct(accuracy_with(train, test, top_level)),
        bench::pct(accuracy_with(train, test, circuit_level)),
    });
  }
  table.print();
  std::cout << "\nBoth feature families contribute (paper Table II's "
               "conclusion); dropping either costs accuracy.\n";
  return 0;
}
