// Regenerates paper Fig. 10: total time saved for physical failure analysis
// (PFA) as a function of the per-candidate PFA cost x.
//
//   T_total(ATPG)     = T_ATPG + FHI_ATPG * x
//   T_total(proposed) = max(T_ATPG, T_GNN) + T_update + FHI_updated * x
//   T_diff            = T_total(ATPG) - T_total(proposed)      (summed over
//                       the test set; positive = the framework saves time)
#include "bench_common.h"

using namespace m3dfl;

int main() {
  bench::print_banner("Fig. 10: PFA time saved vs per-candidate cost x");
  TablePrinter table({"Design", "x=1s", "x=10s", "x=100s", "x=1000s"});
  const ExperimentOptions opt = bench::standard_options(/*compacted=*/false);
  for (Profile profile : all_profiles()) {
    const ProfileExperiment experiment(profile, opt);
    const ConfigResult r = experiment.evaluate(DesignConfig::kSyn2);
    std::int64_t fhi_atpg = 0;
    std::int64_t fhi_updated = 0;
    for (std::int32_t f : r.fhi_atpg) fhi_atpg += f;
    for (std::int32_t f : r.fhi_updated) fhi_updated += f;
    const double overhead =
        std::max(r.t_atpg, r.t_gnn) + r.t_update - r.t_atpg;

    std::vector<std::string> row = {profile_name(profile)};
    for (double x : {1.0, 10.0, 100.0, 1000.0}) {
      const double t_diff =
          static_cast<double>(fhi_atpg - fhi_updated) * x - overhead;
      row.push_back(bench::fmt1(t_diff) + " s");
    }
    table.add_row(row);
  }
  table.print();
  std::cout << "\nPositive T_diff: the framework reaches the root cause "
               "sooner than the plain ATPG flow; the saving scales with the "
               "per-candidate PFA cost because every skipped candidate is "
               "an analysis the engineer never runs.\n";
  return 0;
}
