// Stream latency: first-answer and stable-answer latency versus log length.
//
// For each generated design, every sample's failure log is replayed twice:
// once through the batch back-trace (which needs the complete log before it
// produces anything, so its answer latency is the full-log cost) and once
// record-by-record through diag::StreamingBacktrace, recording when the
// first snapshot lands and when the candidate set turns stable (the
// early-exit point a live session would stop at).  Rows are per sample so
// the latency-vs-log-length shape is visible: batch cost grows with record
// count while the streaming first answer is a single cone trace.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "bench_common.h"
#include "diag/log_io.h"
#include "diag/stream_backtrace.h"
#include "graph/backtrace.h"
#include "util/bench_json.h"

namespace m3dfl::bench {
namespace {

using BenchClock = std::chrono::steady_clock;

double ms_since(BenchClock::time_point t0) {
  return std::chrono::duration<double, std::milli>(BenchClock::now() - t0)
      .count();
}

// The sample's log as the record sequence a tester feed would carry
// (canonical serialization order; diagnosis is order-independent).
std::vector<StreamRecord> to_records(const FailureLog& log) {
  std::vector<StreamRecord> recs;
  StreamRecord mode;
  mode.kind = StreamRecord::Kind::kMode;
  mode.compacted = log.compacted;
  recs.push_back(mode);
  if (log.pattern_limit > 0) {
    StreamRecord limit;
    limit.kind = StreamRecord::Kind::kLimit;
    limit.pattern_limit = log.pattern_limit;
    recs.push_back(limit);
  }
  for (const Observation& o : log.scan_fails) {
    StreamRecord r;
    r.kind = StreamRecord::Kind::kScan;
    r.observation = o;
    recs.push_back(r);
  }
  for (const ChannelFail& c : log.channel_fails) {
    StreamRecord r;
    r.kind = StreamRecord::Kind::kChan;
    r.channel = c;
    recs.push_back(r);
  }
  for (const Observation& o : log.po_fails) {
    StreamRecord r;
    r.kind = StreamRecord::Kind::kPo;
    r.observation = o;
    recs.push_back(r);
  }
  StreamRecord end;
  end.kind = StreamRecord::Kind::kEnd;
  recs.push_back(end);
  return recs;
}

struct StreamTiming {
  double first_ms = 0.0;   // first accepted response scored
  double stable_ms = 0.0;  // candidate set stable (= full feed if never)
  double total_ms = 0.0;   // full feed consumed + finalize()
  std::int32_t early_exit_at = -1;
  bool stable = false;
};

StreamTiming time_stream(const BenchDesign& design, const DesignContext& ctx,
                         const std::vector<StreamRecord>& recs,
                         const StreamingOptions& opt) {
  StreamTiming t;
  const BenchClock::time_point t0 = BenchClock::now();
  StreamingBacktrace stream(design.graph, ctx, opt);
  double first = -1.0;
  double stable = -1.0;
  for (const StreamRecord& r : recs) {
    if (stream.add(r) != StreamAccept::kAccepted) continue;
    if (first < 0.0) first = ms_since(t0);
    if (stable < 0.0 && stream.snapshot().stable) stable = ms_since(t0);
  }
  const BacktraceResult final_result = stream.finalize();
  (void)final_result;
  t.total_ms = ms_since(t0);
  t.first_ms = first < 0.0 ? t.total_ms : first;
  t.stable_ms = stable < 0.0 ? t.total_ms : stable;
  t.early_exit_at = stream.snapshot().early_exit_at;
  t.stable = stable >= 0.0;
  return t;
}

void run(bool smoke) {
  print_banner("Stream latency: first/stable answer vs log length");
  const std::vector<BenchDesign> designs = [&] {
    std::vector<BenchDesign> d;
    d.reserve(2);
    d.emplace_back("gen-300", 300, 5);
    if (!smoke) d.emplace_back("gen-600", 600, 11);
    return d;
  }();
  const std::int32_t num_samples = smoke ? 6 : 20;
  const int repeats = smoke ? 1 : 5;

  StreamingOptions stream_opt;
  // A trained framework's T_P sits near the paper's operating point; the
  // bench pins it so the early-exit cut does not depend on a checkpoint.
  stream_opt.tp_threshold = 0.7;

  BenchJson json("stream_latency");
  json.meta("smoke", smoke);
  json.meta("samples_per_design", num_samples);
  json.meta("repeats", repeats);
  json.meta("tp_threshold", stream_opt.tp_threshold);
  json.meta("stability_window", stream_opt.stability_window);

  TablePrinter table({"Design", "Records", "Batch ms", "First ms",
                      "Stable ms", "Full-stream ms", "Early exit"});
  bool first_design = true;
  for (const BenchDesign& design : designs) {
    if (!first_design) table.add_separator();
    first_design = false;
    const DesignContext ctx = design.context();
    DataGenOptions gen;
    gen.num_samples = num_samples;
    gen.max_failing_patterns = 0;
    gen.seed = 0x57A7;
    std::vector<Sample> samples = generate_samples(ctx, gen);
    // Row order = log length, so the sweep reads as a latency curve.
    std::sort(samples.begin(), samples.end(),
              [](const Sample& a, const Sample& b) {
                return a.log.num_failing_bits() < b.log.num_failing_bits();
              });

    for (const Sample& sample : samples) {
      if (sample.log.empty()) continue;
      const std::vector<StreamRecord> recs = to_records(sample.log);
      const std::int64_t records = sample.log.num_failing_bits();

      double batch_ms = -1.0;
      StreamTiming best;
      for (int rep = 0; rep < repeats; ++rep) {
        const BenchClock::time_point t0 = BenchClock::now();
        const BacktraceResult batch =
            backtrace_with_support(design.graph, ctx, sample.log);
        (void)batch;
        const double b = ms_since(t0);
        if (batch_ms < 0.0 || b < batch_ms) batch_ms = b;
        const StreamTiming t = time_stream(design, ctx, recs, stream_opt);
        if (rep == 0 || t.stable_ms < best.stable_ms) best = t;
      }

      JsonObject& row = json.add_row();
      row.set("design", design.name);
      row.set("records", records);
      row.set("batch_ms", batch_ms);
      row.set("stream_first_ms", best.first_ms);
      row.set("stream_stable_ms", best.stable_ms);
      row.set("stream_total_ms", best.total_ms);
      row.set("early_exit_at", best.early_exit_at);
      row.set("stable", best.stable);

      table.add_row(
          {design.name, std::to_string(records), fmt2(batch_ms),
           fmt2(best.first_ms), fmt2(best.stable_ms), fmt2(best.total_ms),
           best.early_exit_at >= 0
               ? std::to_string(best.early_exit_at) + "/" +
                     std::to_string(records)
               : "-"});
    }
  }
  table.print();
  std::cout << "\n'Batch ms': backtrace_with_support over the complete log "
               "(nothing is available earlier).  'First ms': streaming "
               "latency to the first scored snapshot.  'Stable ms': latency "
               "until the candidate set turns stable (the early-exit point; "
               "= full stream when it never stabilizes).  'Early exit': "
               "accepted responses consumed at stability / total records.\n";
  json.write("BENCH_stream_latency.json");
  std::cout << "wrote BENCH_stream_latency.json\n";
}

}  // namespace
}  // namespace m3dfl::bench

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") smoke = true;
  }
  m3dfl::bench::run(smoke);
  return 0;
}
