// Regenerates paper Table VII: quality of raw ATPG diagnosis reports for all
// benchmarks and design configurations, WITH response compaction.  Compare
// with Table V: the chain aliasing of the XOR compactor enlarges the search
// space and degrades both resolution and accuracy.
#include "bench_common.h"

using namespace m3dfl;

int main() {
  bench::print_banner(
      "Table VII: ATPG diagnosis report quality WITH response compaction");
  TablePrinter table({"Design", "Configuration", "Accuracy", "Mean resol.",
                      "Std resol.", "Mean FHI", "Std FHI"});
  const ExperimentOptions opt = bench::standard_options(/*compacted=*/true);
  for (Profile profile : all_profiles()) {
    for (DesignConfig config : all_configs()) {
      const auto design = Design::build(profile, config);
      const LabeledDataset test = build_test_set(*design, opt);
      QualityStats stats;
      const DesignContext ctx = design->context();
      for (std::size_t i = 0; i < test.size(); ++i) {
        const DiagnosisReport report =
            diagnose_atpg(ctx, test.samples[i].log, opt.diagnosis);
        stats.add(evaluate_report(ctx, report, test.samples[i]));
      }
      table.add_row({profile_name(profile), config_name(config),
                     bench::pct(stats.accuracy()),
                     bench::fmt1(stats.resolution.mean()),
                     bench::fmt1(stats.resolution.stddev()),
                     bench::fmt1(stats.fhi.mean()),
                     bench::fmt1(stats.fhi.stddev())});
    }
    table.add_separator();
  }
  table.print();
  return 0;
}
