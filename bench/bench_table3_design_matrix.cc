// Regenerates paper Table III: the design matrix of the M3D benchmarks —
// gate count, MIV count, scan chains (channels), chain length, TDF pattern
// count, and fault coverage.
#include "bench_common.h"

#include "atpg/coverage.h"

using namespace m3dfl;

int main() {
  bench::print_banner("Table III: design matrix of M3D benchmarks");

  TablePrinter table({"Design", "N_g", "#MIVs", "N_sc (N_ch)", "Chain length",
                      "#Patterns", "FC"});
  for (Profile profile : all_profiles()) {
    const auto design = Design::build(profile, DesignConfig::kSyn1);
    // Fault coverage on a sampled universe (full grading is equivalent but
    // slower; see atpg/coverage.h).
    CoverageOptions cov;
    cov.sample_faults = 4000;
    const CoverageResult coverage =
        measure_coverage(design->netlist(), design->good_sim(), cov);
    table.add_row({
        profile_name(profile),
        std::to_string(design->netlist().num_logic_gates()),
        std::to_string(design->mivs().num_mivs()),
        std::to_string(design->scan().num_chains()) + " (" +
            std::to_string(design->compactor().num_channels()) + ")",
        std::to_string(design->scan().max_chain_length()),
        std::to_string(design->patterns().num_patterns),
        bench::pct(coverage.coverage()),
    });
  }
  table.print();
  return 0;
}
