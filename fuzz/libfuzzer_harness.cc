// libFuzzer entry point, one binary per surface (Clang-only, M3DFL_FUZZ=ON).
//
// The surface is baked in at compile time: fuzz/CMakeLists.txt builds this
// file seven times with -DM3DFL_FUZZ_SURFACE=<Surface enumerator>, each
// linked with -fsanitize=fuzzer,address.  run_surface() treats m3dfl::Error
// as a correct rejection; any other escape (crash, other exception type,
// sanitizer finding, OOM, timeout) is a libFuzzer crash and lands in a
// crash-* file — replay it through fuzz_replay's surface for a
// sanitizer-free diagnosis, e.g.:
//
//   cmake -B build-fuzz -S . -DCMAKE_CXX_COMPILER=clang++ -DM3DFL_FUZZ=ON
//   cmake --build build-fuzz -j --target fuzz_mnl
//   ./build-fuzz/fuzz/fuzz_mnl -max_total_time=60 fuzz/corpus/mnl
#include <cstddef>
#include <cstdint>
#include <string>

#include "fuzz/surfaces.h"

#ifndef M3DFL_FUZZ_SURFACE
#error "build via fuzz/CMakeLists.txt, which defines M3DFL_FUZZ_SURFACE"
#endif

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string input(reinterpret_cast<const char*>(data), size);
  (void)m3dfl::fuzz::run_surface(m3dfl::fuzz::Surface::M3DFL_FUZZ_SURFACE,
                                 input);
  return 0;
}
