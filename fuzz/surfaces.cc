#include "fuzz/surfaces.h"

#include <sstream>

#include "core/config.h"
#include "diag/log_io.h"
#include "netlist/verilog_io.h"
#include "registry/registry.h"
#include "serve/journal.h"
#include "util/artifact.h"
#include "util/error.h"

namespace m3dfl::fuzz {

// The artifact kind every fuzz container seed is wrapped as; a mutated kind
// field then exercises the kind-mismatch rejection.
inline constexpr const char* kFuzzArtifactKind = "fuzz-blob";

const char* surface_name(Surface surface) {
  switch (surface) {
    case Surface::kMnl: return "mnl";
    case Surface::kFaillogBatch: return "faillog-batch";
    case Surface::kStreamRecord: return "stream-record";
    case Surface::kArtifact: return "artifact";
    case Surface::kJournal: return "journal";
    case Surface::kConfig: return "config";
    case Surface::kRegistryName: return "registry-name";
  }
  return "?";
}

const char* surface_citation(Surface surface) {
  switch (surface) {
    case Surface::kMnl: return "MNL";
    case Surface::kFaillogBatch: return "failure log";
    case Surface::kStreamRecord: return "failure log line ";
    case Surface::kArtifact: return "artifact byte ";
    case Surface::kJournal: return "journal byte ";
    case Surface::kConfig: return "<fuzz> line ";
    case Surface::kRegistryName: return "";
  }
  return "";
}

bool citation_always_required(Surface surface) {
  return surface != Surface::kMnl && surface != Surface::kRegistryName;
}

SurfaceOutcome run_surface(Surface surface, const std::string& data) {
  SurfaceOutcome outcome;
  try {
    switch (surface) {
      case Surface::kMnl:
        (void)from_mnl(data);
        break;
      case Surface::kFaillogBatch:
        (void)failure_log_from_string(data);
        break;
      case Surface::kStreamRecord:
        (void)parse_stream_record(data, 1);
        break;
      case Surface::kArtifact:
        (void)read_artifact(data, kFuzzArtifactKind, "<fuzz>");
        break;
      case Surface::kJournal: {
        // scan_segment_text never throws: torn/corrupt tails come back as
        // an offset-cited diagnostic with the valid prefix accepted.
        const serve::SegmentScan scan =
            serve::SessionJournal::scan_segment_text("<fuzz>", data);
        if (!scan.diagnostic.empty()) {
          outcome.diagnostic = scan.diagnostic;
          return outcome;
        }
        break;
      }
      case Surface::kConfig: {
        std::istringstream is(data);
        (void)read_train_options(is, {}, "<fuzz>");
        break;
      }
      case Surface::kRegistryName: {
        // Bool surface: no diagnostics by design — directory scans skip
        // non-artifact names instead of reporting them.
        std::string design;
        std::int32_t version = 0;
        if (!registry::ModelRegistry::parse_artifact_filename(data, &design,
                                                              &version)) {
          outcome.diagnostic = "not an artifact filename";
          return outcome;
        }
        break;
      }
    }
  } catch (const Error& e) {
    outcome.diagnostic = e.what();
    if (outcome.diagnostic.empty()) outcome.diagnostic = "(empty Error)";
    return outcome;
  }
  outcome.accepted = true;
  return outcome;
}

}  // namespace m3dfl::fuzz
