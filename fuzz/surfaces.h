// The seven untrusted parse surfaces, behind one bytes-in/verdict-out call.
//
// Everything the service parses that it did not itself write funnels through
// run_surface(): the MNL netlist reader, the batch failure-log reader, the
// per-line streaming record parser, the artifact container, the session
// journal segment scanner, the train-config reader, and registry artifact
// filename parsing.  (Verilog is write-only; it has no parse surface.)
//
// The contract run_surface() enforces — and that both fuzz drivers check —
// is the hardening contract of util/limits.h:
//
//   * arbitrary bytes either parse (accepted == true) or reject through
//     m3dfl::Error with a diagnostic citing the offending line/byte offset
//     (accepted == false, diagnostic non-empty);
//   * no other exception type escapes, no crash, no hang, and no
//     allocation proportional to a declared-but-unvalidated length.
//
// Both the deterministic corpus-replay driver (fuzz_replay.cc, runs under
// any compiler, wired into CI under ASan/UBSan) and the libFuzzer harnesses
// (libfuzzer_harness.cc, Clang-only, M3DFL_FUZZ=ON) drive this one entry
// point, so a corpus case and a fuzzer-found case are always replayable
// through the exact same code.
#ifndef M3DFL_FUZZ_SURFACES_H_
#define M3DFL_FUZZ_SURFACES_H_

#include <array>
#include <string>

namespace m3dfl::fuzz {

enum class Surface {
  kMnl,           // netlist/verilog_io.h read_mnl / from_mnl
  kFaillogBatch,  // diag/log_io.h read_failure_log
  kStreamRecord,  // diag/log_io.h parse_stream_record (one feed line)
  kArtifact,      // util/artifact.h read_artifact (container envelope)
  kJournal,       // serve/journal.h scan_segment_text (one segment image)
  kConfig,        // core/config.h read_train_options
  kRegistryName,  // registry parse_artifact_filename (bool surface)
};

inline constexpr std::array<Surface, 7> kAllSurfaces = {
    Surface::kMnl,     Surface::kFaillogBatch, Surface::kStreamRecord,
    Surface::kArtifact, Surface::kJournal,     Surface::kConfig,
    Surface::kRegistryName,
};

const char* surface_name(Surface surface);

struct SurfaceOutcome {
  bool accepted = false;
  // Rejections only: the Error text (or the scan/bool surface's reason).
  std::string diagnostic;
};

// Feeds `data` to the surface's parser.  Catches m3dfl::Error (a correct
// rejection) and returns it as the outcome; every other exception escapes —
// to the driver, that is a finding, exactly like a crash.
SurfaceOutcome run_surface(Surface surface, const std::string& data);

// The substring every limit-guardrail rejection on this surface must carry
// (its citation prefix).  Empty for kRegistryName, whose parser is a bool
// filter with no diagnostics by design.
const char* surface_citation(Surface surface);

// True when *every* rejection on this surface is required to carry the
// citation (false only for kMnl, where gross structural errors found at
// netlist finalization cite nets/gates instead of an input line).
bool citation_always_required(Surface surface);

}  // namespace m3dfl::fuzz

#endif  // M3DFL_FUZZ_SURFACES_H_
