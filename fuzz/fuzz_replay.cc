// Deterministic corpus-replay fuzzer: the CI gate of the fuzzing subsystem.
//
// Unlike the libFuzzer harnesses (Clang-only, coverage-guided, unbounded),
// this driver needs nothing but the library and a fixed seed: it loads the
// checked-in corpora (fuzz/corpus plus the lint and journal test corpora),
// synthesizes the binary-ish seeds that carry CRCs (artifact containers,
// journal segments), expands every seed with structured mutators driven by
// util/rng — truncate-at-every-byte, huge declared lengths, NUL/CRLF
// injection, duplicated sections, byte flips, over-limit lines, token spam —
// and replays every case through run_surface(), asserting the hardening
// contract:
//
//   * no crash and no exception other than m3dfl::Error;
//   * no hang (per-case wall budget);
//   * every rejection carries a diagnostic, with the surface's citation
//     (line / byte offset) wherever the surface guarantees one — and on
//     every "limit exceeded" rejection unconditionally;
//   * allocations stay policy-bounded (enforced indirectly: the run is wired
//     into CI under ASan and UBSan, where an allocation proportional to a
//     declared length either trips the allocator or times out the case).
//
// On a failing case the raw bytes are dumped to fuzz_crash_<surface>_<n>.bin
// in the working directory (CI uploads them as artifacts) and the run exits
// nonzero.  The whole run is reproducible: same build, same corpus, same
// cases, same verdicts.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz/surfaces.h"
#include "util/checksum.h"
#include "util/limits.h"
#include "util/rng.h"

namespace m3dfl::fuzz {
namespace {

namespace fs = std::filesystem;

constexpr std::uint64_t kSeed = 0xF0220ADBEEFull;
constexpr int kMutantsPerSeed = 64;
constexpr std::size_t kMaxTruncationSeedBytes = 4096;
constexpr double kCaseWallBudgetSec = 2.0;
constexpr std::size_t kMinCasesPerSurface = 200;

struct Seed {
  std::string label;
  std::string data;
};

struct Failure {
  Surface surface;
  std::string label;
  std::string reason;
  std::string data;
};

struct Stats {
  std::size_t cases = 0;
  std::size_t accepted = 0;
  std::size_t rejected = 0;
};

std::string read_file(const fs::path& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream buf;
  buf << is.rdbuf();
  return buf.str();
}

// Every regular file of `dir` whose name ends in `suffix` ("" = all),
// sorted by name so the case sequence is machine-independent.
std::vector<Seed> seeds_from_dir(const std::string& dir,
                                 const std::string& suffix) {
  std::vector<Seed> seeds;
  std::error_code ec;
  for (const auto& entry : fs::recursive_directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (!suffix.empty()) {
      if (name.size() < suffix.size() ||
          name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
              0) {
        continue;
      }
    }
    seeds.push_back({entry.path().string(), read_file(entry.path())});
  }
  std::sort(seeds.begin(), seeds.end(),
            [](const Seed& a, const Seed& b) { return a.label < b.label; });
  return seeds;
}

std::string hex8(std::uint32_t value) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%08x", value);
  return buf;
}

// A journal frame exactly as serve/journal.cc writes one.
std::string journal_frame(const std::string& payload) {
  return "r " + hex8(crc32(payload)) + " " + std::to_string(payload.size()) +
         " " + payload + "\n";
}

std::string artifact_envelope(const std::string& kind,
                              const std::string& payload) {
  return std::string("m3dfl-artifact 2 ") + kind + "\n" +
         "payload-bytes " + std::to_string(payload.size()) + "\n" + payload +
         "\n" + "crc32 " + hex8(crc32(payload)) + "\n" +
         "m3dfl-artifact-end\n";
}

// ---- structured mutators ----------------------------------------------------

// Replaces one digit run (chosen by `rng`) with an adversarial number —
// the "huge declared length" mutator, and the one that most often walks a
// parser into its limit_exceeded paths.
std::string mutate_number(const std::string& in, Rng& rng) {
  std::vector<std::pair<std::size_t, std::size_t>> runs;  // offset, length
  for (std::size_t i = 0; i < in.size();) {
    if (in[i] >= '0' && in[i] <= '9') {
      std::size_t j = i;
      while (j < in.size() && in[j] >= '0' && in[j] <= '9') ++j;
      runs.emplace_back(i, j - i);
      i = j;
    } else {
      ++i;
    }
  }
  if (runs.empty()) return in;
  const auto [offset, length] = runs[rng.next_below(runs.size())];
  static const char* kNumbers[] = {"18446744073709551615",
                                   "99999999999999999999", "2147483648",
                                   "2147483647", "4294967295", "-1"};
  const char* replacement = kNumbers[rng.next_below(6)];
  return in.substr(0, offset) + replacement + in.substr(offset + length);
}

std::string duplicate_line(const std::string& in, Rng& rng) {
  std::vector<std::pair<std::size_t, std::size_t>> lines;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= in.size(); ++i) {
    if (i == in.size() || in[i] == '\n') {
      lines.emplace_back(start, i - start + (i < in.size() ? 1 : 0));
      start = i + 1;
    }
  }
  if (lines.empty()) return in;
  const auto [offset, length] = lines[rng.next_below(lines.size())];
  return in.substr(0, offset + length) + in.substr(offset, length) +
         in.substr(offset + length);
}

std::string mutate(const std::string& in, Rng& rng) {
  std::string out = in;
  switch (rng.next_below(8)) {
    case 0: {  // byte flip
      if (out.empty()) break;
      out[rng.next_below(out.size())] ^=
          static_cast<char>(1u << rng.next_below(8));
      break;
    }
    case 1:  // NUL injection
      out.insert(out.empty() ? 0 : rng.next_below(out.size() + 1), 1, '\0');
      break;
    case 2:  // CRLF injection
      out.insert(out.empty() ? 0 : rng.next_below(out.size() + 1), "\r\n");
      break;
    case 3:  // duplicated section: one line
      out = duplicate_line(out, rng);
      break;
    case 4:  // duplicated section: the whole image
      out += out;
      break;
    case 5:  // huge / wrapping / negative numeric field
      out = mutate_number(out, rng);
      break;
    case 6: {  // random splice: move a chunk elsewhere
      if (out.size() < 4) break;
      const std::size_t from = rng.next_below(out.size() - 1);
      const std::size_t len =
          1 + rng.next_below(std::min<std::size_t>(out.size() - from, 64));
      const std::string chunk = out.substr(from, len);
      out.erase(from, len);
      out.insert(out.empty() ? 0 : rng.next_below(out.size() + 1), chunk);
      break;
    }
    case 7: {  // garbage tail
      const std::size_t n = 1 + rng.next_below(32);
      for (std::size_t i = 0; i < n; ++i) {
        out.push_back(static_cast<char>(rng.next_below(256)));
      }
      break;
    }
  }
  return out;
}

// ---- the driver -------------------------------------------------------------

class Driver {
 public:
  void run_case(Surface surface, const std::string& label,
                const std::string& data) {
    Stats& st = stats_[static_cast<std::size_t>(surface)];
    ++st.cases;
    const auto t0 = std::chrono::steady_clock::now();
    SurfaceOutcome outcome;
    try {
      outcome = run_surface(surface, data);
    } catch (const std::exception& e) {
      fail(surface, label, data,
           std::string("non-Error exception escaped: ") + e.what());
      return;
    } catch (...) {
      fail(surface, label, data, "unknown exception escaped");
      return;
    }
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (elapsed > kCaseWallBudgetSec) {
      fail(surface, label, data,
           "case exceeded the wall budget (" + std::to_string(elapsed) +
               "s > " + std::to_string(kCaseWallBudgetSec) + "s)");
      return;
    }
    if (outcome.accepted) {
      ++st.accepted;
      return;
    }
    ++st.rejected;
    if (outcome.diagnostic.empty()) {
      fail(surface, label, data, "rejection with an empty diagnostic");
      return;
    }
    const std::string citation = surface_citation(surface);
    const bool cited = citation.empty() ||
                       outcome.diagnostic.find(citation) != std::string::npos;
    if (citation_always_required(surface) && !cited) {
      fail(surface, label, data,
           "rejection without the '" + citation +
               "' citation: " + outcome.diagnostic);
      return;
    }
    if (!cited &&
        outcome.diagnostic.find("limit exceeded") != std::string::npos) {
      fail(surface, label, data,
           "limit rejection without the '" + citation +
               "' citation: " + outcome.diagnostic);
    }
  }

  // One seed -> truncations at every byte, rng mutants, fixed adversarial
  // shapes.  The rng is forked per seed from the surface stream so adding a
  // seed never perturbs another seed's mutants.
  void run_seed(Surface surface, Rng& surface_rng, const Seed& seed) {
    run_case(surface, seed.label, seed.data);
    const std::size_t n =
        std::min(seed.data.size(), kMaxTruncationSeedBytes);
    for (std::size_t i = 0; i < n; ++i) {
      run_case(surface, seed.label + " [truncated at byte " +
                            std::to_string(i) + "]",
               seed.data.substr(0, i));
    }
    Rng rng = surface_rng.fork();
    for (int i = 0; i < kMutantsPerSeed; ++i) {
      // Stack 1-3 mutations so cases reach past single-defect shapes.
      std::string data = seed.data;
      const int stack = 1 + static_cast<int>(rng.next_below(3));
      for (int s = 0; s < stack; ++s) data = mutate(data, rng);
      run_case(surface, seed.label + " [mutant " + std::to_string(i) + "]",
               data);
    }
  }

  void run_surface_seeds(Surface surface, const std::vector<Seed>& seeds) {
    Rng surface_rng(kSeed ^ static_cast<std::uint64_t>(surface) * 0x9E37ull);
    for (const Seed& seed : seeds) run_seed(surface, surface_rng, seed);
    // Fixed adversarial shapes, independent of any seed: an over-limit
    // line and a token-spam line must reject with a cited limit message on
    // every line-oriented surface (and must at least not crash the rest).
    const ParseLimits& limits = ParseLimits::defaults();
    run_case(surface, "[over-limit line]",
             std::string(limits.max_line_bytes + 16, 'A'));
    std::string spam;
    for (std::size_t i = 0; i < limits.max_tokens_per_line + 64; ++i) {
      spam += "x ";
    }
    run_case(surface, "[token spam]", spam);
    run_case(surface, "[empty]", "");
    run_case(surface, "[all NUL]", std::string(256, '\0'));
  }

  void fail(Surface surface, const std::string& label,
            const std::string& data, const std::string& reason) {
    const std::string dump = "fuzz_crash_" +
                             std::string(surface_name(surface)) + "_" +
                             std::to_string(failures_.size()) + ".bin";
    std::ofstream os(dump, std::ios::binary);
    os.write(data.data(), static_cast<std::streamsize>(data.size()));
    failures_.push_back({surface, label, reason, data});
    std::cerr << "FAIL [" << surface_name(surface) << "] " << label << ": "
              << reason << "\n  case bytes dumped to " << dump << "\n";
  }

  int summarize() const {
    bool ok = failures_.empty();
    std::size_t total = 0;
    for (Surface surface : kAllSurfaces) {
      const Stats& st = stats_[static_cast<std::size_t>(surface)];
      total += st.cases;
      std::cout << "  " << surface_name(surface) << ": " << st.cases
                << " cases (" << st.accepted << " accepted, " << st.rejected
                << " rejected)\n";
      if (st.cases < kMinCasesPerSurface) {
        std::cerr << "FAIL [" << surface_name(surface) << "] only "
                  << st.cases << " cases (corpus floor is "
                  << kMinCasesPerSurface << " per surface)\n";
        ok = false;
      }
    }
    if (!ok) {
      std::cerr << "fuzz_replay: FAIL (" << failures_.size()
                << " failing case(s))\n";
      return 1;
    }
    std::cout << "fuzz_replay: PASS (" << total << " cases, 7 surfaces)\n";
    return 0;
  }

 private:
  Stats stats_[kAllSurfaces.size()];
  std::vector<Failure> failures_;
};

std::vector<Seed> stream_record_seeds(const std::vector<Seed>& faillogs) {
  // Every line of every faillog seed is itself a stream-record seed, plus a
  // hand-picked set covering each record kind.
  std::vector<Seed> seeds = {
      {"<builtin> scan", "scan 3 17"},
      {"<builtin> chan", "chan 2 4 9"},
      {"<builtin> po", "po 1 5"},
      {"<builtin> mode", "mode compacted"},
      {"<builtin> limit", "limit 128"},
      {"<builtin> end", "end"},
      {"<builtin> comment", "# tester comment"},
      {"<builtin> crlf", "scan 1 2\r"},
  };
  for (const Seed& log : faillogs) {
    std::istringstream is(log.data);
    std::string line;
    int line_no = 0;
    while (std::getline(is, line)) {
      ++line_no;
      seeds.push_back(
          {log.label + ":" + std::to_string(line_no), line});
    }
  }
  return seeds;
}

int run() {
  Driver driver;

  // MNL: the lint corpus (every fixture, defective ones included — they all
  // *parse*) plus anything under fuzz/corpus/mnl.
  std::vector<Seed> mnl = seeds_from_dir(M3DFL_LINT_CORPUS_DIR, ".mnl");
  for (Seed& s : seeds_from_dir(M3DFL_FUZZ_CORPUS_DIR "/mnl", "")) {
    mnl.push_back(std::move(s));
  }
  driver.run_surface_seeds(Surface::kMnl, mnl);

  // Failure logs: checked-in seeds.
  const std::vector<Seed> faillogs =
      seeds_from_dir(M3DFL_FUZZ_CORPUS_DIR "/faillog", "");
  driver.run_surface_seeds(Surface::kFaillogBatch, faillogs);
  driver.run_surface_seeds(Surface::kStreamRecord,
                           stream_record_seeds(faillogs));

  // Artifacts carry CRCs, so valid seeds are synthesized rather than
  // checked in (a hand-edited seed would never checksum).
  std::vector<Seed> artifacts;
  artifacts.push_back(
      {"<synth> empty payload", artifact_envelope("fuzz-blob", "")});
  artifacts.push_back({"<synth> text payload",
                       artifact_envelope("fuzz-blob", "hello artifact\n")});
  artifacts.push_back(
      {"<synth> kind mismatch", artifact_envelope("other-kind", "payload")});
  std::string binary_payload;
  Rng payload_rng(kSeed);
  for (int i = 0; i < 1024; ++i) {
    binary_payload.push_back(static_cast<char>(payload_rng.next_below(256)));
  }
  artifacts.push_back({"<synth> binary payload",
                       artifact_envelope("fuzz-blob", binary_payload)});
  driver.run_surface_seeds(Surface::kArtifact, artifacts);

  // Journal segments: the checked-in torn/corrupt corpus plus synthesized
  // valid segments (same CRC reasoning as artifacts).
  std::vector<Seed> journals =
      seeds_from_dir(M3DFL_JOURNAL_CORPUS_DIR, ".m3dflj");
  journals.push_back(
      {"<synth> open+rec+close",
       "m3dfl-journal 1\n" +
           journal_frame("open 7 1000 30000 600000 aes") +
           journal_frame("rec 7 1001 scan 0 3") +
           journal_frame("rec 7 1002 chan 1 2 4") +
           journal_frame("close 7 1003 finalized")});
  journals.push_back({"<synth> header only", "m3dfl-journal 1\n"});
  driver.run_surface_seeds(Surface::kJournal, journals);

  // Train config.
  driver.run_surface_seeds(Surface::kConfig,
                           seeds_from_dir(M3DFL_FUZZ_CORPUS_DIR "/config",
                                          ""));

  // Registry artifact filenames.
  const std::vector<Seed> names = {
      {"<builtin> simple", "aes@3.m3dfl"},
      {"<builtin> dotted", "net.card_v2@17.m3dfl"},
      {"<builtin> version 1", "leon3mp@1.m3dfl"},
      {"<builtin> at in name", "a@b@2.m3dfl"},
      {"<builtin> no version", "aes.m3dfl"},
      {"<builtin> traversal", "../../etc/passwd@1.m3dfl"},
      {"<builtin> overlong",
       std::string(300, 'a') + "@1.m3dfl"},
      {"<builtin> huge version", "aes@99999999999999999999.m3dfl"},
  };
  driver.run_surface_seeds(Surface::kRegistryName, names);

  return driver.summarize();
}

}  // namespace
}  // namespace m3dfl::fuzz

int main() { return m3dfl::fuzz::run(); }
