file(REMOVE_RECURSE
  "CMakeFiles/oversample_test.dir/oversample_test.cc.o"
  "CMakeFiles/oversample_test.dir/oversample_test.cc.o.d"
  "oversample_test"
  "oversample_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oversample_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
