# Empty dependencies file for oversample_test.
# This may be replaced when dependencies are built.
