file(REMOVE_RECURSE
  "CMakeFiles/miv_test.dir/miv_test.cc.o"
  "CMakeFiles/miv_test.dir/miv_test.cc.o.d"
  "miv_test"
  "miv_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
