# Empty compiler generated dependencies file for miv_test.
# This may be replaced when dependencies are built.
