file(REMOVE_RECURSE
  "CMakeFiles/hetero_graph_test.dir/hetero_graph_test.cc.o"
  "CMakeFiles/hetero_graph_test.dir/hetero_graph_test.cc.o.d"
  "hetero_graph_test"
  "hetero_graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetero_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
