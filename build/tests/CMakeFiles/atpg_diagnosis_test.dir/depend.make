# Empty dependencies file for atpg_diagnosis_test.
# This may be replaced when dependencies are built.
