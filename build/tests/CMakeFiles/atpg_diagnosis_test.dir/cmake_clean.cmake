file(REMOVE_RECURSE
  "CMakeFiles/atpg_diagnosis_test.dir/atpg_diagnosis_test.cc.o"
  "CMakeFiles/atpg_diagnosis_test.dir/atpg_diagnosis_test.cc.o.d"
  "atpg_diagnosis_test"
  "atpg_diagnosis_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atpg_diagnosis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
