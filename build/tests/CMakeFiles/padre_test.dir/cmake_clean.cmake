file(REMOVE_RECURSE
  "CMakeFiles/padre_test.dir/padre_test.cc.o"
  "CMakeFiles/padre_test.dir/padre_test.cc.o.d"
  "padre_test"
  "padre_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/padre_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
