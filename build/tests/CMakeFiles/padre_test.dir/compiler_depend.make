# Empty compiler generated dependencies file for padre_test.
# This may be replaced when dependencies are built.
