# Empty dependencies file for pr_curve_test.
# This may be replaced when dependencies are built.
