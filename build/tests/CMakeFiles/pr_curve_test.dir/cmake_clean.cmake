file(REMOVE_RECURSE
  "CMakeFiles/pr_curve_test.dir/pr_curve_test.cc.o"
  "CMakeFiles/pr_curve_test.dir/pr_curve_test.cc.o.d"
  "pr_curve_test"
  "pr_curve_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pr_curve_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
