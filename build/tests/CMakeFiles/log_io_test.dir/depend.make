# Empty dependencies file for log_io_test.
# This may be replaced when dependencies are built.
