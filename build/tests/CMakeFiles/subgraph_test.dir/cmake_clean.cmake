file(REMOVE_RECURSE
  "CMakeFiles/subgraph_test.dir/subgraph_test.cc.o"
  "CMakeFiles/subgraph_test.dir/subgraph_test.cc.o.d"
  "subgraph_test"
  "subgraph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subgraph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
