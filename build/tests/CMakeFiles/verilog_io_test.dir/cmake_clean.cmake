file(REMOVE_RECURSE
  "CMakeFiles/verilog_io_test.dir/verilog_io_test.cc.o"
  "CMakeFiles/verilog_io_test.dir/verilog_io_test.cc.o.d"
  "verilog_io_test"
  "verilog_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verilog_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
