# Empty dependencies file for verilog_io_test.
# This may be replaced when dependencies are built.
