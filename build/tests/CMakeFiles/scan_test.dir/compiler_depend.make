# Empty compiler generated dependencies file for scan_test.
# This may be replaced when dependencies are built.
