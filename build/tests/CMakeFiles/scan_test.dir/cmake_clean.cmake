file(REMOVE_RECURSE
  "CMakeFiles/scan_test.dir/scan_test.cc.o"
  "CMakeFiles/scan_test.dir/scan_test.cc.o.d"
  "scan_test"
  "scan_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
