file(REMOVE_RECURSE
  "CMakeFiles/fault_test.dir/fault_test.cc.o"
  "CMakeFiles/fault_test.dir/fault_test.cc.o.d"
  "fault_test"
  "fault_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
