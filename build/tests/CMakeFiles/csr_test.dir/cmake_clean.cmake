file(REMOVE_RECURSE
  "CMakeFiles/csr_test.dir/csr_test.cc.o"
  "CMakeFiles/csr_test.dir/csr_test.cc.o.d"
  "csr_test"
  "csr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
