# Empty dependencies file for atpg_test.
# This may be replaced when dependencies are built.
