file(REMOVE_RECURSE
  "CMakeFiles/atpg_test.dir/atpg_test.cc.o"
  "CMakeFiles/atpg_test.dir/atpg_test.cc.o.d"
  "atpg_test"
  "atpg_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atpg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
