file(REMOVE_RECURSE
  "CMakeFiles/backtrace_test.dir/backtrace_test.cc.o"
  "CMakeFiles/backtrace_test.dir/backtrace_test.cc.o.d"
  "backtrace_test"
  "backtrace_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backtrace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
