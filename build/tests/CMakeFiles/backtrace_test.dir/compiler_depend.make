# Empty compiler generated dependencies file for backtrace_test.
# This may be replaced when dependencies are built.
