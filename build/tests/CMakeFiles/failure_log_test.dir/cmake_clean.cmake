file(REMOVE_RECURSE
  "CMakeFiles/failure_log_test.dir/failure_log_test.cc.o"
  "CMakeFiles/failure_log_test.dir/failure_log_test.cc.o.d"
  "failure_log_test"
  "failure_log_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failure_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
