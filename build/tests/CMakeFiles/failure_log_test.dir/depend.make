# Empty dependencies file for failure_log_test.
# This may be replaced when dependencies are built.
