file(REMOVE_RECURSE
  "CMakeFiles/logic_test.dir/logic_test.cc.o"
  "CMakeFiles/logic_test.dir/logic_test.cc.o.d"
  "logic_test"
  "logic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
