# Empty compiler generated dependencies file for logic_test.
# This may be replaced when dependencies are built.
