file(REMOVE_RECURSE
  "CMakeFiles/adam_test.dir/adam_test.cc.o"
  "CMakeFiles/adam_test.dir/adam_test.cc.o.d"
  "adam_test"
  "adam_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adam_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
