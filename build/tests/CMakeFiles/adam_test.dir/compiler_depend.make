# Empty compiler generated dependencies file for adam_test.
# This may be replaced when dependencies are built.
