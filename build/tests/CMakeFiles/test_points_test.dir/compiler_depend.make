# Empty compiler generated dependencies file for test_points_test.
# This may be replaced when dependencies are built.
