file(REMOVE_RECURSE
  "CMakeFiles/test_points_test.dir/test_points_test.cc.o"
  "CMakeFiles/test_points_test.dir/test_points_test.cc.o.d"
  "test_points_test"
  "test_points_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_points_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
