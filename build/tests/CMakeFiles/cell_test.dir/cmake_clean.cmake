file(REMOVE_RECURSE
  "CMakeFiles/cell_test.dir/cell_test.cc.o"
  "CMakeFiles/cell_test.dir/cell_test.cc.o.d"
  "cell_test"
  "cell_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cell_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
