# Empty compiler generated dependencies file for cell_test.
# This may be replaced when dependencies are built.
