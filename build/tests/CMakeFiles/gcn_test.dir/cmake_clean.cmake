file(REMOVE_RECURSE
  "CMakeFiles/gcn_test.dir/gcn_test.cc.o"
  "CMakeFiles/gcn_test.dir/gcn_test.cc.o.d"
  "gcn_test"
  "gcn_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
