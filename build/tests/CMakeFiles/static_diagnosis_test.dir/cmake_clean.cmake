file(REMOVE_RECURSE
  "CMakeFiles/static_diagnosis_test.dir/static_diagnosis_test.cc.o"
  "CMakeFiles/static_diagnosis_test.dir/static_diagnosis_test.cc.o.d"
  "static_diagnosis_test"
  "static_diagnosis_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/static_diagnosis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
