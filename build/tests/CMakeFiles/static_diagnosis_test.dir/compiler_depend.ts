# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for static_diagnosis_test.
