# Empty dependencies file for static_diagnosis_test.
# This may be replaced when dependencies are built.
