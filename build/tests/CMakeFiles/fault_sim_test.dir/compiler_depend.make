# Empty compiler generated dependencies file for fault_sim_test.
# This may be replaced when dependencies are built.
