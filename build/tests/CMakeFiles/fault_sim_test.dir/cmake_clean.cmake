file(REMOVE_RECURSE
  "CMakeFiles/fault_sim_test.dir/fault_sim_test.cc.o"
  "CMakeFiles/fault_sim_test.dir/fault_sim_test.cc.o.d"
  "fault_sim_test"
  "fault_sim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
