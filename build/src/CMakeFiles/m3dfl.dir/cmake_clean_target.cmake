file(REMOVE_RECURSE
  "libm3dfl.a"
)
