# Empty dependencies file for m3dfl.
# This may be replaced when dependencies are built.
