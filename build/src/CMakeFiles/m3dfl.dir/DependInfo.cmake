
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/atpg/coverage.cc" "src/CMakeFiles/m3dfl.dir/atpg/coverage.cc.o" "gcc" "src/CMakeFiles/m3dfl.dir/atpg/coverage.cc.o.d"
  "/root/repo/src/atpg/tdf_atpg.cc" "src/CMakeFiles/m3dfl.dir/atpg/tdf_atpg.cc.o" "gcc" "src/CMakeFiles/m3dfl.dir/atpg/tdf_atpg.cc.o.d"
  "/root/repo/src/core/config.cc" "src/CMakeFiles/m3dfl.dir/core/config.cc.o" "gcc" "src/CMakeFiles/m3dfl.dir/core/config.cc.o.d"
  "/root/repo/src/core/experiment.cc" "src/CMakeFiles/m3dfl.dir/core/experiment.cc.o" "gcc" "src/CMakeFiles/m3dfl.dir/core/experiment.cc.o.d"
  "/root/repo/src/core/framework.cc" "src/CMakeFiles/m3dfl.dir/core/framework.cc.o" "gcc" "src/CMakeFiles/m3dfl.dir/core/framework.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/CMakeFiles/m3dfl.dir/core/pipeline.cc.o" "gcc" "src/CMakeFiles/m3dfl.dir/core/pipeline.cc.o.d"
  "/root/repo/src/dft/compactor.cc" "src/CMakeFiles/m3dfl.dir/dft/compactor.cc.o" "gcc" "src/CMakeFiles/m3dfl.dir/dft/compactor.cc.o.d"
  "/root/repo/src/dft/scan.cc" "src/CMakeFiles/m3dfl.dir/dft/scan.cc.o" "gcc" "src/CMakeFiles/m3dfl.dir/dft/scan.cc.o.d"
  "/root/repo/src/dft/test_points.cc" "src/CMakeFiles/m3dfl.dir/dft/test_points.cc.o" "gcc" "src/CMakeFiles/m3dfl.dir/dft/test_points.cc.o.d"
  "/root/repo/src/diag/atpg_diagnosis.cc" "src/CMakeFiles/m3dfl.dir/diag/atpg_diagnosis.cc.o" "gcc" "src/CMakeFiles/m3dfl.dir/diag/atpg_diagnosis.cc.o.d"
  "/root/repo/src/diag/datagen.cc" "src/CMakeFiles/m3dfl.dir/diag/datagen.cc.o" "gcc" "src/CMakeFiles/m3dfl.dir/diag/datagen.cc.o.d"
  "/root/repo/src/diag/failure_log.cc" "src/CMakeFiles/m3dfl.dir/diag/failure_log.cc.o" "gcc" "src/CMakeFiles/m3dfl.dir/diag/failure_log.cc.o.d"
  "/root/repo/src/diag/log_io.cc" "src/CMakeFiles/m3dfl.dir/diag/log_io.cc.o" "gcc" "src/CMakeFiles/m3dfl.dir/diag/log_io.cc.o.d"
  "/root/repo/src/diag/metrics.cc" "src/CMakeFiles/m3dfl.dir/diag/metrics.cc.o" "gcc" "src/CMakeFiles/m3dfl.dir/diag/metrics.cc.o.d"
  "/root/repo/src/diag/padre.cc" "src/CMakeFiles/m3dfl.dir/diag/padre.cc.o" "gcc" "src/CMakeFiles/m3dfl.dir/diag/padre.cc.o.d"
  "/root/repo/src/diag/report.cc" "src/CMakeFiles/m3dfl.dir/diag/report.cc.o" "gcc" "src/CMakeFiles/m3dfl.dir/diag/report.cc.o.d"
  "/root/repo/src/gnn/adam.cc" "src/CMakeFiles/m3dfl.dir/gnn/adam.cc.o" "gcc" "src/CMakeFiles/m3dfl.dir/gnn/adam.cc.o.d"
  "/root/repo/src/gnn/csr.cc" "src/CMakeFiles/m3dfl.dir/gnn/csr.cc.o" "gcc" "src/CMakeFiles/m3dfl.dir/gnn/csr.cc.o.d"
  "/root/repo/src/gnn/gcn.cc" "src/CMakeFiles/m3dfl.dir/gnn/gcn.cc.o" "gcc" "src/CMakeFiles/m3dfl.dir/gnn/gcn.cc.o.d"
  "/root/repo/src/gnn/matrix.cc" "src/CMakeFiles/m3dfl.dir/gnn/matrix.cc.o" "gcc" "src/CMakeFiles/m3dfl.dir/gnn/matrix.cc.o.d"
  "/root/repo/src/gnn/model.cc" "src/CMakeFiles/m3dfl.dir/gnn/model.cc.o" "gcc" "src/CMakeFiles/m3dfl.dir/gnn/model.cc.o.d"
  "/root/repo/src/gnn/oversample.cc" "src/CMakeFiles/m3dfl.dir/gnn/oversample.cc.o" "gcc" "src/CMakeFiles/m3dfl.dir/gnn/oversample.cc.o.d"
  "/root/repo/src/gnn/pca.cc" "src/CMakeFiles/m3dfl.dir/gnn/pca.cc.o" "gcc" "src/CMakeFiles/m3dfl.dir/gnn/pca.cc.o.d"
  "/root/repo/src/gnn/pr_curve.cc" "src/CMakeFiles/m3dfl.dir/gnn/pr_curve.cc.o" "gcc" "src/CMakeFiles/m3dfl.dir/gnn/pr_curve.cc.o.d"
  "/root/repo/src/gnn/serialize.cc" "src/CMakeFiles/m3dfl.dir/gnn/serialize.cc.o" "gcc" "src/CMakeFiles/m3dfl.dir/gnn/serialize.cc.o.d"
  "/root/repo/src/gnn/trainer.cc" "src/CMakeFiles/m3dfl.dir/gnn/trainer.cc.o" "gcc" "src/CMakeFiles/m3dfl.dir/gnn/trainer.cc.o.d"
  "/root/repo/src/graph/backtrace.cc" "src/CMakeFiles/m3dfl.dir/graph/backtrace.cc.o" "gcc" "src/CMakeFiles/m3dfl.dir/graph/backtrace.cc.o.d"
  "/root/repo/src/graph/features.cc" "src/CMakeFiles/m3dfl.dir/graph/features.cc.o" "gcc" "src/CMakeFiles/m3dfl.dir/graph/features.cc.o.d"
  "/root/repo/src/graph/hetero_graph.cc" "src/CMakeFiles/m3dfl.dir/graph/hetero_graph.cc.o" "gcc" "src/CMakeFiles/m3dfl.dir/graph/hetero_graph.cc.o.d"
  "/root/repo/src/graph/subgraph.cc" "src/CMakeFiles/m3dfl.dir/graph/subgraph.cc.o" "gcc" "src/CMakeFiles/m3dfl.dir/graph/subgraph.cc.o.d"
  "/root/repo/src/m3d/miv.cc" "src/CMakeFiles/m3dfl.dir/m3d/miv.cc.o" "gcc" "src/CMakeFiles/m3dfl.dir/m3d/miv.cc.o.d"
  "/root/repo/src/m3d/partition.cc" "src/CMakeFiles/m3dfl.dir/m3d/partition.cc.o" "gcc" "src/CMakeFiles/m3dfl.dir/m3d/partition.cc.o.d"
  "/root/repo/src/netlist/cell.cc" "src/CMakeFiles/m3dfl.dir/netlist/cell.cc.o" "gcc" "src/CMakeFiles/m3dfl.dir/netlist/cell.cc.o.d"
  "/root/repo/src/netlist/generator.cc" "src/CMakeFiles/m3dfl.dir/netlist/generator.cc.o" "gcc" "src/CMakeFiles/m3dfl.dir/netlist/generator.cc.o.d"
  "/root/repo/src/netlist/netlist.cc" "src/CMakeFiles/m3dfl.dir/netlist/netlist.cc.o" "gcc" "src/CMakeFiles/m3dfl.dir/netlist/netlist.cc.o.d"
  "/root/repo/src/netlist/verilog_io.cc" "src/CMakeFiles/m3dfl.dir/netlist/verilog_io.cc.o" "gcc" "src/CMakeFiles/m3dfl.dir/netlist/verilog_io.cc.o.d"
  "/root/repo/src/sim/fault.cc" "src/CMakeFiles/m3dfl.dir/sim/fault.cc.o" "gcc" "src/CMakeFiles/m3dfl.dir/sim/fault.cc.o.d"
  "/root/repo/src/sim/fault_sim.cc" "src/CMakeFiles/m3dfl.dir/sim/fault_sim.cc.o" "gcc" "src/CMakeFiles/m3dfl.dir/sim/fault_sim.cc.o.d"
  "/root/repo/src/sim/logic.cc" "src/CMakeFiles/m3dfl.dir/sim/logic.cc.o" "gcc" "src/CMakeFiles/m3dfl.dir/sim/logic.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/CMakeFiles/m3dfl.dir/sim/simulator.cc.o" "gcc" "src/CMakeFiles/m3dfl.dir/sim/simulator.cc.o.d"
  "/root/repo/src/util/stats.cc" "src/CMakeFiles/m3dfl.dir/util/stats.cc.o" "gcc" "src/CMakeFiles/m3dfl.dir/util/stats.cc.o.d"
  "/root/repo/src/util/table.cc" "src/CMakeFiles/m3dfl.dir/util/table.cc.o" "gcc" "src/CMakeFiles/m3dfl.dir/util/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
