# Empty compiler generated dependencies file for miv_characterization.
# This may be replaced when dependencies are built.
