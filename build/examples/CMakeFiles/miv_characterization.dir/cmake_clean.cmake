file(REMOVE_RECURSE
  "CMakeFiles/miv_characterization.dir/miv_characterization.cpp.o"
  "CMakeFiles/miv_characterization.dir/miv_characterization.cpp.o.d"
  "miv_characterization"
  "miv_characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miv_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
