# Empty compiler generated dependencies file for transfer_diagnosis.
# This may be replaced when dependencies are built.
