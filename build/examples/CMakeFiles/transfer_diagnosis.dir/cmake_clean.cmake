file(REMOVE_RECURSE
  "CMakeFiles/transfer_diagnosis.dir/transfer_diagnosis.cpp.o"
  "CMakeFiles/transfer_diagnosis.dir/transfer_diagnosis.cpp.o.d"
  "transfer_diagnosis"
  "transfer_diagnosis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transfer_diagnosis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
