file(REMOVE_RECURSE
  "CMakeFiles/tier_yield_learning.dir/tier_yield_learning.cpp.o"
  "CMakeFiles/tier_yield_learning.dir/tier_yield_learning.cpp.o.d"
  "tier_yield_learning"
  "tier_yield_learning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tier_yield_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
