# Empty dependencies file for tier_yield_learning.
# This may be replaced when dependencies are built.
