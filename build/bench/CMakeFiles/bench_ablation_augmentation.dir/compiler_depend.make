# Empty compiler generated dependencies file for bench_ablation_augmentation.
# This may be replaced when dependencies are built.
