file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_augmentation.dir/bench_ablation_augmentation.cc.o"
  "CMakeFiles/bench_ablation_augmentation.dir/bench_ablation_augmentation.cc.o.d"
  "bench_ablation_augmentation"
  "bench_ablation_augmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_augmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
