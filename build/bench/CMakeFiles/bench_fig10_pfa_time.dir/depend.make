# Empty dependencies file for bench_fig10_pfa_time.
# This may be replaced when dependencies are built.
