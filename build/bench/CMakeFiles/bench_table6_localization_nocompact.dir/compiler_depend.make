# Empty compiler generated dependencies file for bench_table6_localization_nocompact.
# This may be replaced when dependencies are built.
