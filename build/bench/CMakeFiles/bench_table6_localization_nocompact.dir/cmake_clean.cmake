file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_localization_nocompact.dir/bench_table6_localization_nocompact.cc.o"
  "CMakeFiles/bench_table6_localization_nocompact.dir/bench_table6_localization_nocompact.cc.o.d"
  "bench_table6_localization_nocompact"
  "bench_table6_localization_nocompact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_localization_nocompact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
