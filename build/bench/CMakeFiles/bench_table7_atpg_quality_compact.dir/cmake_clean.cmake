file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_atpg_quality_compact.dir/bench_table7_atpg_quality_compact.cc.o"
  "CMakeFiles/bench_table7_atpg_quality_compact.dir/bench_table7_atpg_quality_compact.cc.o.d"
  "bench_table7_atpg_quality_compact"
  "bench_table7_atpg_quality_compact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_atpg_quality_compact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
