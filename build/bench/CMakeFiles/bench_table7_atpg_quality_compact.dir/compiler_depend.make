# Empty compiler generated dependencies file for bench_table7_atpg_quality_compact.
# This may be replaced when dependencies are built.
