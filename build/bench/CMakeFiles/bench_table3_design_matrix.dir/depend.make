# Empty dependencies file for bench_table3_design_matrix.
# This may be replaced when dependencies are built.
