file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_design_matrix.dir/bench_table3_design_matrix.cc.o"
  "CMakeFiles/bench_table3_design_matrix.dir/bench_table3_design_matrix.cc.o.d"
  "bench_table3_design_matrix"
  "bench_table3_design_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_design_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
