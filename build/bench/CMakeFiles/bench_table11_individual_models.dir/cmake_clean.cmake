file(REMOVE_RECURSE
  "CMakeFiles/bench_table11_individual_models.dir/bench_table11_individual_models.cc.o"
  "CMakeFiles/bench_table11_individual_models.dir/bench_table11_individual_models.cc.o.d"
  "bench_table11_individual_models"
  "bench_table11_individual_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table11_individual_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
