# Empty dependencies file for bench_table11_individual_models.
# This may be replaced when dependencies are built.
