file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_pca_overlap.dir/bench_fig5_pca_overlap.cc.o"
  "CMakeFiles/bench_fig5_pca_overlap.dir/bench_fig5_pca_overlap.cc.o.d"
  "bench_fig5_pca_overlap"
  "bench_fig5_pca_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_pca_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
