# Empty compiler generated dependencies file for bench_fig5_pca_overlap.
# This may be replaced when dependencies are built.
