file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_oversample.dir/bench_ablation_oversample.cc.o"
  "CMakeFiles/bench_ablation_oversample.dir/bench_ablation_oversample.cc.o.d"
  "bench_ablation_oversample"
  "bench_ablation_oversample.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_oversample.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
