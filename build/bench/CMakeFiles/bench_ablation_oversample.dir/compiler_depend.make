# Empty compiler generated dependencies file for bench_ablation_oversample.
# This may be replaced when dependencies are built.
