file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_transferability.dir/bench_fig6_transferability.cc.o"
  "CMakeFiles/bench_fig6_transferability.dir/bench_fig6_transferability.cc.o.d"
  "bench_fig6_transferability"
  "bench_fig6_transferability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_transferability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
