# Empty compiler generated dependencies file for bench_fig6_transferability.
# This may be replaced when dependencies are built.
