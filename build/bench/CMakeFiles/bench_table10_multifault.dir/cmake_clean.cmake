file(REMOVE_RECURSE
  "CMakeFiles/bench_table10_multifault.dir/bench_table10_multifault.cc.o"
  "CMakeFiles/bench_table10_multifault.dir/bench_table10_multifault.cc.o.d"
  "bench_table10_multifault"
  "bench_table10_multifault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table10_multifault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
