# Empty dependencies file for bench_table10_multifault.
# This may be replaced when dependencies are built.
