# Empty compiler generated dependencies file for bench_fig9_deployment_runtime.
# This may be replaced when dependencies are built.
