file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_deployment_runtime.dir/bench_fig9_deployment_runtime.cc.o"
  "CMakeFiles/bench_fig9_deployment_runtime.dir/bench_fig9_deployment_runtime.cc.o.d"
  "bench_fig9_deployment_runtime"
  "bench_fig9_deployment_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_deployment_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
