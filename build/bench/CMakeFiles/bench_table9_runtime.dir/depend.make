# Empty dependencies file for bench_table9_runtime.
# This may be replaced when dependencies are built.
