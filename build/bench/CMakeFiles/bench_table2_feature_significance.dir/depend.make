# Empty dependencies file for bench_table2_feature_significance.
# This may be replaced when dependencies are built.
