file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_feature_significance.dir/bench_table2_feature_significance.cc.o"
  "CMakeFiles/bench_table2_feature_significance.dir/bench_table2_feature_significance.cc.o.d"
  "bench_table2_feature_significance"
  "bench_table2_feature_significance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_feature_significance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
