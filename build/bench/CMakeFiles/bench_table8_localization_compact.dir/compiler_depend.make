# Empty compiler generated dependencies file for bench_table8_localization_compact.
# This may be replaced when dependencies are built.
