file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_localization_compact.dir/bench_table8_localization_compact.cc.o"
  "CMakeFiles/bench_table8_localization_compact.dir/bench_table8_localization_compact.cc.o.d"
  "bench_table8_localization_compact"
  "bench_table8_localization_compact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_localization_compact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
