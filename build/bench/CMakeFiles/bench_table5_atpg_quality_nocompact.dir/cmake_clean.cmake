file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_atpg_quality_nocompact.dir/bench_table5_atpg_quality_nocompact.cc.o"
  "CMakeFiles/bench_table5_atpg_quality_nocompact.dir/bench_table5_atpg_quality_nocompact.cc.o.d"
  "bench_table5_atpg_quality_nocompact"
  "bench_table5_atpg_quality_nocompact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_atpg_quality_nocompact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
