# Empty compiler generated dependencies file for bench_table5_atpg_quality_nocompact.
# This may be replaced when dependencies are built.
