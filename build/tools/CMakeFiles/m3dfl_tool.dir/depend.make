# Empty dependencies file for m3dfl_tool.
# This may be replaced when dependencies are built.
