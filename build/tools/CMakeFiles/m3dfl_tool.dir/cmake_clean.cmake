file(REMOVE_RECURSE
  "CMakeFiles/m3dfl_tool.dir/m3dfl_tool.cpp.o"
  "CMakeFiles/m3dfl_tool.dir/m3dfl_tool.cpp.o.d"
  "m3dfl_tool"
  "m3dfl_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3dfl_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
