# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_stats "/root/repo/build/tools/m3dfl_tool" "stats" "aes" "syn1")
set_tests_properties(tool_stats PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_generate "/root/repo/build/tools/m3dfl_tool" "generate" "aes" "/root/repo/build/tools/aes.mnl")
set_tests_properties(tool_generate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_inject "/root/repo/build/tools/m3dfl_tool" "inject" "aes" "/root/repo/build/tools/die.flog")
set_tests_properties(tool_inject PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_usage "/root/repo/build/tools/m3dfl_tool")
set_tests_properties(tool_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_bad_profile "/root/repo/build/tools/m3dfl_tool" "stats" "nonsense")
set_tests_properties(tool_bad_profile PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
