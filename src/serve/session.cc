#include "serve/session.h"

#include <algorithm>
#include <utility>

#include "diag/log_io.h"

namespace m3dfl::serve {

namespace {

const char* kind_word(StreamRecord::Kind kind) {
  switch (kind) {
    case StreamRecord::Kind::kScan: return "scan";
    case StreamRecord::Kind::kChan: return "chan";
    case StreamRecord::Kind::kPo: return "po";
    default: return "record";
  }
}

// Index into Session::last_pattern for a failing-response kind; -1 for meta.
int kind_slot(StreamRecord::Kind kind) {
  switch (kind) {
    case StreamRecord::Kind::kScan: return 0;
    case StreamRecord::Kind::kChan: return 1;
    case StreamRecord::Kind::kPo: return 2;
    default: return -1;
  }
}

std::int32_t record_pattern(const StreamRecord& record) {
  return record.kind == StreamRecord::Kind::kChan ? record.channel.pattern
                                                  : record.observation.pattern;
}

double ms_between(SessionManager::Clock::time_point from,
                  SessionManager::Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

}  // namespace

SessionManager::SessionManager(DiagnosisService& service,
                               const SessionManagerOptions& options)
    : service_(service),
      options_(options),
      metrics_(*service.metrics_),
      injector_(service.options().fault_injector.get()) {
  M3DFL_REQUIRE(options_.max_sessions > 0,
                "session table needs room for at least one session");
  M3DFL_REQUIRE(options_.stability_window > 0,
                "stability_window must be positive");
  if (!options_.journal_dir.empty()) {
    JournalOptions journal_options;
    journal_options.max_segment_bytes = options_.journal_max_segment_bytes;
    journal_options.wall_ms = options_.journal_wall_ms;
    journal_options.injector = injector_;
    journal_options.metrics = &metrics_;
    journal_ = std::make_unique<SessionJournal>(options_.journal_dir,
                                                std::move(journal_options));
  }
}

std::unique_ptr<SessionManager::Session> SessionManager::make_session(
    std::int32_t design_id, double idle_deadline_ms, double max_lifetime_ms,
    Clock::time_point now) const {
  auto session = std::make_unique<Session>();
  session->design_id = design_id;
  session->design = service_.design_ref(design_id);
  session->ctx = session->design->context();
  StreamingOptions stream_options;
  stream_options.tp_threshold = service_.degraded()
                                    ? 1.0
                                    : service_.framework().tp_threshold();
  stream_options.stability_window = options_.stability_window;
  stream_options.min_responses_for_stability =
      options_.min_responses_for_stability;
  session->stream = std::make_unique<StreamingBacktrace>(
      session->design->graph(), session->ctx, stream_options);
  session->opened = now;
  session->last_activity = now;
  session->idle_deadline_ms =
      idle_deadline_ms > 0.0 ? idle_deadline_ms : options_.idle_deadline_ms;
  session->max_lifetime_ms =
      max_lifetime_ms > 0.0 ? max_lifetime_ms : options_.max_lifetime_ms;
  return session;
}

SessionTicket SessionManager::begin_diagnosis(std::int32_t design_id,
                                              const SessionOptions& options) {
  return begin_diagnosis(design_id, options, Clock::now());
}

SessionTicket SessionManager::begin_diagnosis(std::int32_t design_id,
                                              const SessionOptions& options,
                                              Clock::time_point now) {
  SessionTicket ticket;
  // Same admission order as submit(): a design that failed static analysis
  // can never produce a correct diagnosis, so no record it could stream
  // would rescue the session.
  std::shared_ptr<const Design> design = service_.design_ref(design_id);
  const std::string lint_error = service_.design_lint_error(design_id);
  if (!lint_error.empty()) {
    metrics_.lint_rejections.fetch_add(1, std::memory_order_relaxed);
    ticket.status = StatusCode::kLintRejected;
    ticket.message = lint_error;
    return ticket;
  }

  design.reset();
  auto session = make_session(design_id, options.idle_deadline_ms,
                              options.max_lifetime_ms, now);

  std::lock_guard<std::mutex> lock(mu_);
  if (sessions_.size() >= options_.max_sessions) {
    if (!options_.evict_lru) {
      metrics_.sessions_shed.fetch_add(1, std::memory_order_relaxed);
      ticket.status = StatusCode::kOverloaded;
      ticket.message = "session table full (" +
                       std::to_string(options_.max_sessions) +
                       " live sessions)";
      return ticket;
    }
    // Evict the least-recently-active session to admit the new one.
    auto lru = sessions_.begin();
    for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
      if (it->second->last_activity < lru->second->last_activity) lru = it;
    }
    const std::uint64_t evicted_id = lru->first;
    sessions_.erase(lru);
    metrics_.sessions_evicted.fetch_add(1, std::memory_order_relaxed);
    if (journal_ != nullptr) journal_->append_close(evicted_id, "evicted");
  }
  session->id = next_id_++;
  ticket.session_id = session->id;
  const std::string& design_name = session->design->name();
  const double idle_ms = session->idle_deadline_ms;
  const double life_ms = session->max_lifetime_ms;
  sessions_.emplace(session->id, std::move(session));
  metrics_.sessions_opened.fetch_add(1, std::memory_order_relaxed);
  // Append-before-ack: the open is on disk before the ticket exists.
  if (journal_ != nullptr) {
    journal_->append_open(ticket.session_id, design_name, idle_ms, life_ms);
  }
  return ticket;
}

bool SessionManager::expired(const Session& s, Clock::time_point now) {
  if (s.idle_deadline_ms > 0.0 &&
      ms_between(s.last_activity, now) > s.idle_deadline_ms) {
    return true;
  }
  return s.max_lifetime_ms > 0.0 &&
         ms_between(s.opened, now) > s.max_lifetime_ms;
}

void SessionManager::expire_locked(std::uint64_t id, const std::string&) {
  sessions_.erase(id);
  metrics_.sessions_expired.fetch_add(1, std::memory_order_relaxed);
  if (journal_ != nullptr) journal_->append_close(id, "expired");
}

SessionUpdate SessionManager::dead_session(std::uint64_t session_id) const {
  SessionUpdate update;
  update.status = StatusCode::kSessionExpired;
  update.message = "session " + std::to_string(session_id) +
                   " is not live (expired, evicted, disconnected, or never "
                   "opened); begin a new session and re-feed";
  return update;
}

SessionUpdate SessionManager::add_response(std::uint64_t session_id,
                                           const std::string& line) {
  return add_response(session_id, line, Clock::now());
}

SessionUpdate SessionManager::add_response(std::uint64_t session_id,
                                           const std::string& line,
                                           Clock::time_point now) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return dead_session(session_id);
  Session& s = *it->second;

  // Real deadlines first, then the injected ones: kStreamStall models a
  // feed that stalled past its idle deadline, kStreamDisconnect a tester
  // that dropped the connection.  Both resolve the session as expired —
  // deterministically, with no wall-clock involved.
  if (expired(s, now)) {
    expire_locked(session_id, "deadline");
    SessionUpdate update = dead_session(session_id);
    update.message = "session " + std::to_string(session_id) +
                     " expired (idle/lifetime deadline passed)";
    return update;
  }
  if (injector_ != nullptr && injector_->should_fail(Seam::kStreamStall)) {
    expire_locked(session_id, "stall");
    SessionUpdate update = dead_session(session_id);
    update.message = "session " + std::to_string(session_id) +
                     " expired (injected stream stall past idle deadline)";
    return update;
  }
  if (injector_ != nullptr &&
      injector_->should_fail(Seam::kStreamDisconnect)) {
    expire_locked(session_id, "disconnect");
    SessionUpdate update = dead_session(session_id);
    update.message = "session " + std::to_string(session_id) +
                     " torn down (injected stream disconnect)";
    return update;
  }

  ++s.line_no;
  s.last_activity = now;
  SessionUpdate update;
  const auto reject_record = [&](std::string message) {
    metrics_.stream_records_rejected.fetch_add(1, std::memory_order_relaxed);
    update.status = StatusCode::kInvalidInput;
    update.message = std::move(message);
  };
  const auto fill_snapshot = [&] {
    const StreamSnapshot& snap = s.stream->snapshot();
    update.num_responses = s.stream->num_responses();
    update.num_candidates =
        static_cast<std::int32_t>(snap.backtrace.candidates.size());
    update.confidence = snap.confidence.combined;
    update.stable = snap.stable;
    update.early_exit_at = snap.early_exit_at;
    update.quarantined =
        static_cast<std::int32_t>(snap.backtrace.quarantined.size());
    update.condemnations = snap.condemnations;
    update.rehabilitations = snap.rehabilitations;
    // Report rehabilitation deltas to the shared metrics exactly once.
    const std::int64_t fresh =
        snap.rehabilitations - s.rehabilitations_reported;
    if (fresh > 0) {
      metrics_.session_rehabilitations.fetch_add(fresh,
                                                 std::memory_order_relaxed);
      s.rehabilitations_reported = snap.rehabilitations;
    }
  };

  // Injected record corruption: the seams reject deterministically with the
  // same line-cited shape real garble/reorder rejections use; the session
  // stays live.
  if (injector_ != nullptr && injector_->should_fail(Seam::kStreamGarble)) {
    reject_record("stream line " + std::to_string(s.line_no) +
                  ": injected garbled record");
    fill_snapshot();
    return update;
  }
  if (injector_ != nullptr && injector_->should_fail(Seam::kStreamReorder)) {
    reject_record("stream line " + std::to_string(s.line_no) +
                  ": injected out-of-order record");
    fill_snapshot();
    return update;
  }

  // Adversarial-input seam: replace the line with deterministic malformed
  // bytes and let the REAL parser and limit guardrails reject it — every
  // shape below is invalid by construction, so triggered() must equal the
  // kInvalidInput rejections this seam produces.  The shape cycles with the
  // seam's call count so one chaos run crosses all four rejection paths.
  std::string effective_line = line;
  if (injector_ != nullptr &&
      injector_->should_fail(Seam::kStreamMalformedBytes)) {
    const ParseLimits& limits = ParseLimits::defaults();
    switch (injector_->calls(Seam::kStreamMalformedBytes) % 4) {
      case 0:  // NUL-injected unknown record kind
        effective_line = std::string("scan\0scan 1 2", 13);
        break;
      case 1:  // trailing garbage smuggled onto a complete record
        effective_line = "end smuggled-bytes";
        break;
      case 2:  // line past the byte cap
        effective_line.assign(limits.max_line_bytes + 1, 'A');
        break;
      case 3:  // huge numeric field past the pattern cap
        effective_line =
            "scan " + std::to_string(limits.max_patterns + 1) + " 0";
        break;
    }
  }

  StreamRecord record;
  try {
    record = parse_stream_record(effective_line, s.line_no);
  } catch (const Error& e) {
    reject_record(e.what());
    fill_snapshot();
    return update;
  }

  // Out-of-order rejection: within each record kind testers emit pattern
  // indices monotonically; a regressing pattern means the feed reordered
  // (or replayed) and the record cannot be trusted.
  const int slot = kind_slot(record.kind);
  if (slot >= 0) {
    const std::int32_t pattern = record_pattern(record);
    if (pattern < s.last_pattern[slot]) {
      reject_record("stream line " + std::to_string(s.line_no) +
                    ": out-of-order " + kind_word(record.kind) +
                    " record (pattern " + std::to_string(pattern) +
                    " after pattern " +
                    std::to_string(s.last_pattern[slot]) + ")");
      fill_snapshot();
      return update;
    }
  }

  StreamAccept accept;
  try {
    accept = s.stream->add(record);
  } catch (const Error& e) {
    reject_record("stream line " + std::to_string(s.line_no) + ": " +
                  e.what());
    fill_snapshot();
    return update;
  }
  switch (accept) {
    case StreamAccept::kAccepted:
      update.accepted = true;
      s.last_pattern[slot] = record_pattern(record);
      break;
    case StreamAccept::kDuplicate:
      reject_record("stream line " + std::to_string(s.line_no) +
                    ": duplicate " + kind_word(record.kind) +
                    " observation (pattern " +
                    std::to_string(record_pattern(record)) + ")");
      break;
    case StreamAccept::kMeta:
      break;
    case StreamAccept::kEndOfStream:
      update.end_of_stream = true;
      break;
  }
  // Append-before-ack: every line that mutated session state (accepted
  // responses, meta records, the end trailer) is journaled verbatim before
  // the caller learns it was taken.  Rejected lines mutate nothing a replay
  // needs, so they stay out of the journal.
  if (journal_ != nullptr && update.status == StatusCode::kOk) {
    journal_->append_record(session_id, line);
  }
  fill_snapshot();
  return update;
}

std::future<DiagnosisResult> SessionManager::finalize(
    std::uint64_t session_id) {
  return finalize(session_id, Clock::now());
}

std::future<DiagnosisResult> SessionManager::finalize(
    std::uint64_t session_id, Clock::time_point now) {
  std::unique_ptr<Session> session;
  bool was_stable = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = sessions_.find(session_id);
    if (it != sessions_.end() && expired(*it->second, now)) {
      expire_locked(session_id, "deadline");
    }
    const auto again = sessions_.find(session_id);
    if (again == sessions_.end()) {
      // Already resolved (expired/evicted/disconnected) or never opened:
      // report it without touching the service's request accounting.
      std::promise<DiagnosisResult> promise;
      DiagnosisResult result;
      result.status = StatusCode::kSessionExpired;
      result.status_message = dead_session(session_id).message;
      promise.set_value(std::move(result));
      return promise.get_future();
    }
    session = std::move(again->second);
    sessions_.erase(again);
    metrics_.sessions_finalized.fetch_add(1, std::memory_order_relaxed);
    was_stable = session->stream->snapshot().stable;
    if (was_stable) {
      metrics_.session_early_exits.fetch_add(1, std::memory_order_relaxed);
    }
    if (journal_ != nullptr) journal_->append_close(session_id, "finalized");
  }
  // Off the session lock: the heavy work runs on the service's workers.
  SubmitOptions submit_options;
  submit_options.precomputed_backtrace =
      std::make_shared<BacktraceResult>(session->stream->finalize());
  return service_.submit(session->design_id, session->stream->log(),
                         submit_options);
}

std::size_t SessionManager::sweep(Clock::time_point now) {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t swept = 0;
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (expired(*it->second, now)) {
      const std::uint64_t id = it->first;
      it = sessions_.erase(it);
      metrics_.sessions_expired.fetch_add(1, std::memory_order_relaxed);
      if (journal_ != nullptr) journal_->append_close(id, "expired");
      ++swept;
    } else {
      ++it;
    }
  }
  return swept;
}

RecoveryStats SessionManager::recover() { return recover(Clock::now()); }

RecoveryStats SessionManager::recover(Clock::time_point now) {
  RecoveryStats stats;
  if (journal_ == nullptr) return stats;
  const JournalReplay replay = SessionJournal::replay(options_.journal_dir);
  stats.segments = replay.segments.size();
  stats.records_scanned = replay.records;
  stats.diagnostics = replay.diagnostics;
  const std::int64_t now_wall = journal_->wall_ms();

  std::lock_guard<std::mutex> lock(mu_);
  // Never reissue a journaled id — not even one whose session is closed.  A
  // reused id's `open` would collide with the existing tombstone at the
  // *next* recovery (dropped as a duplicate, its records dropped as
  // belonging to a closed session), silently losing every session opened
  // after this restart.
  next_id_ = std::max(next_id_, replay.max_session_id + 1);
  for (const JournalReplay::LiveSession& journaled : replay.live) {
    if (sessions_.count(journaled.id) != 0) continue;  // recover() re-run

    // Map the journaled design name back to a registered design.  A restart
    // that dropped (or failed to re-lint) the design cannot replay these
    // sessions — tombstone them so the next recovery is clean.
    std::int32_t design_id = -1;
    for (std::int32_t i = 0; i < service_.num_designs(); ++i) {
      if (service_.design(i).name() == journaled.design_name) {
        design_id = i;
        break;
      }
    }
    if (design_id < 0 || !service_.design_lint_error(design_id).empty()) {
      ++stats.discarded;
      metrics_.sessions_discarded_on_recovery.fetch_add(
          1, std::memory_order_relaxed);
      journal_->append_close(journaled.id, "evicted");
      continue;
    }

    // Deadlines crossed the crash: a session idle (or alive) longer than
    // its budget — including the downtime — is dead on arrival.
    const bool past_idle =
        journaled.idle_deadline_ms > 0.0 &&
        static_cast<double>(now_wall - journaled.last_wall_ms) >
            journaled.idle_deadline_ms;
    const bool past_life =
        journaled.max_lifetime_ms > 0.0 &&
        static_cast<double>(now_wall - journaled.opened_wall_ms) >
            journaled.max_lifetime_ms;
    if (past_idle || past_life) {
      ++stats.expired;
      metrics_.sessions_expired_on_recovery.fetch_add(
          1, std::memory_order_relaxed);
      journal_->append_close(journaled.id, "expired");
      continue;
    }

    auto session = make_session(design_id, journaled.idle_deadline_ms,
                                journaled.max_lifetime_ms, now);
    session->id = journaled.id;
    // Restore the remaining deadline budget: the steady-clock anchors are
    // set so (now - anchor) equals the journaled wall-clock age.
    session->opened =
        now - std::chrono::milliseconds(now_wall - journaled.opened_wall_ms);
    session->last_activity =
        now - std::chrono::milliseconds(now_wall - journaled.last_wall_ms);

    // Replay the accepted lines through the fresh stream state.  Every
    // journaled line was accepted by the original session, so replay takes
    // exactly the same path — finalize() is then byte-identical to the
    // uninterrupted run by StreamingBacktrace's finalize-equals-batch
    // contract.
    for (const std::string& line : journaled.lines) {
      ++session->line_no;
      StreamRecord record;
      try {
        record = parse_stream_record(line, session->line_no);
        if (session->stream->add(record) == StreamAccept::kAccepted) {
          const int slot = kind_slot(record.kind);
          if (slot >= 0) session->last_pattern[slot] = record_pattern(record);
        }
      } catch (const Error&) {
        // Journaled lines were accepted once; a line that no longer parses
        // means the segment was hand-edited.  Skip it — the remaining
        // evidence still recovers.
        continue;
      }
      ++stats.lines_replayed;
      metrics_.journal_records_replayed.fetch_add(1,
                                                  std::memory_order_relaxed);
    }

    sessions_.emplace(journaled.id, std::move(session));
    ++stats.recovered;
    stats.recovered_ids.push_back(journaled.id);
    metrics_.sessions_recovered.fetch_add(1, std::memory_order_relaxed);
  }
  return stats;
}

std::size_t SessionManager::live() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

bool SessionManager::contains(std::uint64_t session_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.count(session_id) != 0;
}

const StreamSnapshot* SessionManager::snapshot(
    std::uint64_t session_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = sessions_.find(session_id);
  return it == sessions_.end() ? nullptr : &it->second->stream->snapshot();
}

}  // namespace m3dfl::serve
