// Serving metrics: lock-free counters and latency histograms.
//
// Workers record into atomic counters and fixed power-of-two-bucket latency
// histograms, so instrumentation never serializes the request path.  The
// tracked stages mirror the deployment decomposition of paper Fig. 9: queue
// wait, back-trace (graph work), ATPG base diagnosis, GNN inference +
// report update, and end-to-end latency.  `Metrics::report()` renders
// everything as an aligned text table (util/table.h).
#ifndef M3DFL_SERVE_METRICS_H_
#define M3DFL_SERVE_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "serve/status.h"

namespace m3dfl::serve {

// Latency histogram over power-of-two microsecond buckets (1 us .. ~1 h).
// record() is wait-free; readers see a consistent-enough snapshot for
// reporting (exact once the workers are quiesced).
class LatencyHistogram {
 public:
  void record(double seconds);

  std::int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double total_seconds() const;
  double mean_seconds() const;
  double max_seconds() const;
  // Upper bound of the bucket holding quantile `q` in (0, 1]; 0 when empty.
  double quantile_seconds(double q) const;

 private:
  static constexpr std::int32_t kNumBuckets = 32;
  std::array<std::atomic<std::int64_t>, kNumBuckets> buckets_{};
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::int64_t> total_nanos_{0};
  std::atomic<std::int64_t> max_nanos_{0};
};

// One Metrics instance per DiagnosisService; shared by all its workers.
struct Metrics {
  std::atomic<std::int64_t> requests_submitted{0};
  std::atomic<std::int64_t> requests_completed{0};
  std::atomic<std::int64_t> requests_failed{0};
  std::atomic<std::int64_t> batches{0};
  std::atomic<std::int64_t> batched_requests{0};
  std::atomic<std::int64_t> cache_hits{0};
  std::atomic<std::int64_t> cache_misses{0};
  std::atomic<std::int64_t> cache_evictions{0};
  // Requests that missed the cache but waited for a concurrent worker
  // already computing the same key (single-flight) instead of recomputing.
  std::atomic<std::int64_t> cache_coalesced{0};

  // Fault-tolerance accounting.  Every request's terminal status is counted
  // exactly once in status_counts (kOk requests also count in
  // requests_completed, everything else in requests_failed); the chaos test
  // reconciles these against the fault injector's trigger counts.
  std::array<std::atomic<std::int64_t>, kNumStatusCodes> status_counts{};
  std::atomic<std::int64_t> retries{0};             // backoff retry attempts
  std::atomic<std::int64_t> degraded_results{0};    // ATPG-only fallbacks
  std::atomic<std::int64_t> load_shed{0};           // admission-control sheds
  std::atomic<std::int64_t> breaker_rejections{0};  // open-breaker fast fails
  std::atomic<std::int64_t> deadline_expirations{0};
  std::atomic<std::int64_t> aborted_requests{0};    // failed by abort-shutdown
  std::atomic<std::int64_t> lint_rejections{0};     // lint-failed design gates
  std::atomic<std::int64_t> quota_rejections{0};    // fleet tenant-quota sheds
  // Fleet accounting (serve/fleet.h): hot-reload epoch swaps this tenant's
  // shard went through.  A tenant's Metrics instance is owned by the fleet
  // and spans epochs, so counters and histograms accumulate across reloads.
  std::atomic<std::int64_t> model_reloads{0};

  // Noise-robustness accounting (diag/noise.h, graph/backtrace.h): kOk
  // results whose back-trace saw suspect evidence (quarantine or majority
  // relaxation), results below the calibrated confidence cut, and the total
  // tester responses excluded as outliers.
  std::atomic<std::int64_t> noisy_log_results{0};
  std::atomic<std::int64_t> low_confidence_results{0};
  std::atomic<std::int64_t> quarantined_responses{0};

  // Streaming-session accounting (serve/session.h).  Every opened session
  // resolves exactly once: finalized + expired + evicted == opened once the
  // table is quiesced (the stream-chaos test reconciles this partition).
  std::atomic<std::int64_t> sessions_opened{0};
  std::atomic<std::int64_t> sessions_finalized{0};
  std::atomic<std::int64_t> sessions_expired{0};    // idle/stall/disconnect
  std::atomic<std::int64_t> sessions_evicted{0};    // LRU table pressure
  std::atomic<std::int64_t> sessions_shed{0};       // begin() refused, table full
  std::atomic<std::int64_t> session_early_exits{0}; // finalized while stable
  std::atomic<std::int64_t> session_rehabilitations{0};
  std::atomic<std::int64_t> stream_records_rejected{0};

  // Session-journal accounting (serve/journal.h).  Appends that failed to
  // reach disk (torn write, fsync failure, unopenable segment) degrade the
  // journal to non-durable instead of failing the request; the recovery
  // counters partition what SessionManager::recover() found on disk into
  // rebuilt-live, dead-on-arrival, and unmappable sessions.
  std::atomic<std::int64_t> journal_appends{0};
  std::atomic<std::int64_t> journal_append_failures{0};
  std::atomic<std::int64_t> journal_rotations{0};
  std::atomic<std::int64_t> journal_records_replayed{0};
  std::atomic<std::int64_t> sessions_recovered{0};
  std::atomic<std::int64_t> sessions_expired_on_recovery{0};
  std::atomic<std::int64_t> sessions_discarded_on_recovery{0};

  LatencyHistogram queue_wait;   // submit -> worker pickup
  LatencyHistogram backtrace;    // back-trace + subgraph + adjacency
  LatencyHistogram atpg;         // ATPG base diagnosis (cache misses only)
  LatencyHistogram inference;    // three-model forward + report update
  LatencyHistogram end_to_end;   // submit -> result ready

  // Counts one request's terminal status (and the completed/failed split).
  void record_status(StatusCode code);
  std::int64_t status_count(StatusCode code) const;

  double cache_hit_rate() const;
  double mean_batch_size() const;
  std::string report() const;
};

}  // namespace m3dfl::serve

#endif  // M3DFL_SERVE_METRICS_H_
