#include "serve/report_sink.h"

#include <ostream>

#include "util/error.h"

namespace m3dfl::serve {

void OrderedReportSink::deliver(std::uint64_t sequence, std::string text) {
  std::lock_guard<std::mutex> lock(mu_);
  M3DFL_REQUIRE(sequence >= ordered_.size() &&
                    pending_.find(sequence) == pending_.end(),
                "duplicate report sequence delivered to sink");
  ++delivered_;
  pending_.emplace(sequence, std::move(text));
  // Release the contiguous prefix.
  for (auto it = pending_.begin();
       it != pending_.end() && it->first == ordered_.size();
       it = pending_.erase(it)) {
    if (os_ != nullptr) *os_ << it->second;
    ordered_.push_back(std::move(it->second));
  }
}

std::vector<std::string> OrderedReportSink::take_ordered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ordered_;
}

std::uint64_t OrderedReportSink::delivered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return delivered_;
}

std::uint64_t OrderedReportSink::flushed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ordered_.size();
}

}  // namespace m3dfl::serve
