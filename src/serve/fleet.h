// Multi-tenant fleet serving: one front door over many design shards.
//
// A production tester floor diagnoses many designs at once, each with its own
// trained model, traffic profile, and fairness requirements.  FleetService is
// that front door: it routes every request to a per-tenant shard — a
// DiagnosisService built from the tenant's current registry model — and adds
// the two policies a shared fleet needs on top of the single-design runtime:
//
//   * Hot-reload epochs.  Each submit cheaply re-acquires the tenant's model
//     from the ModelRegistry.  When the registry hands back a new generation
//     (a trainer atomically replaced the artifact, or a higher version
//     appeared under `latest`), the shard swaps to a fresh DiagnosisService
//     sharing the new framework; the old epoch is retired, keeps running its
//     in-flight requests to completion on the old model, and is reaped once
//     its pending count hits zero.  A *corrupt* replacement never makes an
//     epoch: the registry rejects it and the old epoch keeps serving.  Every
//     result is stamped with the generation of the epoch that produced it
//     (DiagnosisResult::model_generation), which is how the chaos harness
//     proves no request was served by a retired or corrupt artifact.
//
//   * Per-tenant admission quotas.  A tenant with max_inflight > 0 is shed
//     with kQuotaExceeded once that many of its requests are in flight —
//     extending the single-service overload controls (shed_watermark,
//     circuit breaker) with the *fairness* dimension: one tenant's retest
//     storm cannot queue out the others, because each tenant owns its shard's
//     queue and workers outright.
//
// Metrics: each tenant owns one serve::Metrics spanning all of its epochs
// (ServiceOptions::external_metrics), so latency histograms and counters
// survive hot reloads; report() aggregates the per-tenant tables with the
// registry's load/eviction/reload counters.  Exercised end to end by
// tests/fleet_test.cc, the reload-under-fire harness in
// tests/fleet_chaos_test.cc, and bench/bench_fleet_load.cc.
#ifndef M3DFL_SERVE_FLEET_H_
#define M3DFL_SERVE_FLEET_H_

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "registry/registry.h"
#include "serve/service.h"

namespace m3dfl::serve {

struct TenantOptions {
  // Registry model name (the filename alphabet — derive from a Design name
  // with registry::sanitize_model_name) and version pin;
  // kLatest tracks the highest version in the registry.
  std::string model;
  std::int32_t version = registry::ModelRegistry::kLatest;
  // Admission quota: maximum requests in flight for this tenant; one more is
  // shed with kQuotaExceeded.  0 = unlimited.
  std::uint64_t max_inflight = 0;
  // Options for this tenant's shard services (every epoch reuses them).
  // model_generation and external_metrics are overwritten by the fleet.
  ServiceOptions service;
};

struct FleetOptions {
  // Seed for TenantOptions::service handed out by tenant_defaults().
  ServiceOptions service_defaults;
};

class FleetService {
 public:
  // The registry must outlive the fleet.
  explicit FleetService(registry::ModelRegistry& registry,
                        FleetOptions options = {});
  ~FleetService();

  FleetService(const FleetService&) = delete;
  FleetService& operator=(const FleetService&) = delete;

  // A TenantOptions pre-seeded with FleetOptions::service_defaults.
  TenantOptions tenant_defaults() const;

  // Registers a tenant serving `design` with the model options.model; returns
  // its tenant id.  The first epoch is built eagerly when the registry can
  // load the model; otherwise (model not published yet) the tenant starts
  // epoch-less and submissions fail with kModelUnavailable until a later
  // submit finds the model.  Throws m3dfl::Error for an empty model name.
  std::int32_t add_tenant(std::shared_ptr<const Design> design,
                          TenantOptions options);
  std::int32_t num_tenants() const;

  // Routes one failure log to the tenant's shard.  Resolution order:
  //   1. epoch refresh (registry acquire; swap + retire on generation change)
  //   2. quota gate (kQuotaExceeded, resolved immediately)
  //   3. shard submit (all single-service admission control applies)
  // Like DiagnosisService::submit, the future never carries an exception.
  std::future<DiagnosisResult> submit(std::int32_t tenant_id, FailureLog log,
                                      const SubmitOptions& submit_options = {});
  DiagnosisResult diagnose(std::int32_t tenant_id, FailureLog log,
                           const SubmitOptions& submit_options = {});

  // Quota gate for callers that bypass submit() by layering sessions over
  // tenant_service() (the CLI's journaled path): applies the same
  // max_inflight check as submit(), recording a rejection in the tenant's
  // metrics exactly as submit() would.  Returns an already-resolved
  // kQuotaExceeded future when the tenant is over quota, or an optional
  // with no value when the request is admitted.
  std::optional<std::future<DiagnosisResult>> admit(std::int32_t tenant_id);

  // Releases the tenant's shard workers when its ServiceOptions had
  // start_paused set (tests stage a queue, then release); idempotent.
  void resume(std::int32_t tenant_id);

  // Blocks until every submitted request across all tenants (including
  // retired epochs) resolved, and reaps quiesced retired epochs.
  void drain();
  // Shuts down every epoch of every tenant; further submits throw.
  void shutdown(ShutdownMode mode = ShutdownMode::kDrain);

  // The tenant's current shard service (nullptr before the first epoch).
  // The pointer is invalidated by the next epoch swap, so it suits
  // single-owner wiring — e.g. the CLI layering journaled sessions
  // (serve/session.h) over a tenant's shard — not concurrent use against
  // live model reloads.
  DiagnosisService* tenant_service(std::int32_t tenant_id) const;
  // Generation of the tenant's current epoch (0 = no epoch yet).
  std::uint64_t tenant_generation(std::int32_t tenant_id) const;
  // Retired-but-unreaped epochs (in-flight on an old model) right now.
  std::size_t tenant_retired_epochs(std::int32_t tenant_id) const;
  std::int64_t quota_rejections(std::int32_t tenant_id) const;
  // The tenant's epoch-spanning metrics (valid until the fleet dies).
  const Metrics& tenant_metrics(std::int32_t tenant_id) const;
  const registry::ModelRegistry& registry() const { return registry_; }

  // Per-tenant serving table + registry counters.
  std::string report() const;

 private:
  // One (model generation, shard service) pairing.  The service holds the
  // framework via the aliasing shared_ptr, which keeps the whole registry
  // LoadedModel alive even after eviction or further reloads.
  struct Epoch {
    std::shared_ptr<const registry::LoadedModel> model;
    std::unique_ptr<DiagnosisService> service;
    std::int32_t design_id = 0;
  };
  struct Tenant {
    std::shared_ptr<const Design> design;
    TenantOptions options;
    std::unique_ptr<Metrics> metrics;  // spans epochs; stable address
    mutable std::mutex mu;             // guards epoch/retired swaps
    std::unique_ptr<Epoch> epoch;
    std::vector<std::unique_ptr<Epoch>> retired;
    bool shut_down = false;
  };

  Tenant& tenant_at(std::int32_t tenant_id) const;
  // Builds a shard service for the tenant's current registry model.
  std::unique_ptr<Epoch> make_epoch(
      Tenant& tenant, std::shared_ptr<const registry::LoadedModel> model) const;
  // Re-acquires the model, swapping epochs on a generation change; reaps
  // quiesced retired epochs.  Returns false when no model is loadable and no
  // epoch exists.  Caller holds tenant.mu.
  bool refresh_epoch_locked(Tenant& tenant);
  // True when the tenant's in-flight work (current + retired epochs) has
  // reached its max_inflight quota.  Caller holds tenant.mu.
  static bool over_quota_locked(const Tenant& tenant);
  // Immediately resolved rejection, counted in the tenant's metrics.
  static std::future<DiagnosisResult> reject_now(Tenant& tenant,
                                                 StatusCode status,
                                                 std::string message);

  registry::ModelRegistry& registry_;
  const FleetOptions options_;

  mutable std::mutex tenants_mu_;  // guards the vector, not the tenants
  std::vector<std::unique_ptr<Tenant>> tenants_;
};

}  // namespace m3dfl::serve

#endif  // M3DFL_SERVE_FLEET_H_
