// Orders concurrently produced per-request reports back into submission
// order.
//
// Workers finish requests out of order; engineers read failure reports in
// the order the dies were submitted.  The sink buffers out-of-order
// deliveries and releases the contiguous prefix — streaming it to an
// optional ostream as soon as it forms, and retaining it for take_ordered()
// (the batch-driver and test path).  Sequences start at 0 and must be dense:
// the service assigns them from its submission counter.
#ifndef M3DFL_SERVE_REPORT_SINK_H_
#define M3DFL_SERVE_REPORT_SINK_H_

#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace m3dfl::serve {

class OrderedReportSink {
 public:
  // When `os` is non-null, each report is written to it (in sequence order)
  // as soon as all earlier sequences have been delivered.
  explicit OrderedReportSink(std::ostream* os = nullptr) : os_(os) {}

  // Delivers the report for `sequence`; thread-safe, any order.
  void deliver(std::uint64_t sequence, std::string text);

  // Reports delivered so far, in sequence order, up to the first gap.
  std::vector<std::string> take_ordered() const;

  std::uint64_t delivered() const;
  // Length of the contiguous released prefix.
  std::uint64_t flushed() const;

 private:
  mutable std::mutex mu_;
  std::ostream* const os_;
  std::map<std::uint64_t, std::string> pending_;  // gap-delayed deliveries
  std::vector<std::string> ordered_;              // contiguous prefix
  std::uint64_t delivered_ = 0;
};

}  // namespace m3dfl::serve

#endif  // M3DFL_SERVE_REPORT_SINK_H_
