// Streaming diagnosis sessions over live tester feeds.
//
// DiagnosisService's session mode: begin_diagnosis() opens a session against
// a registered design, add_response() feeds one faillog line at a time (the
// grammar of diag/log_io.h, parsed with the same line-cited diagnostics),
// and finalize() routes the accumulated evidence through the service's
// worker pool — with the back-trace the session already maintained
// incrementally injected, so the worker never recomputes it.  Between
// records the session keeps the full diag::StreamingBacktrace state:
// monotone candidate narrowing, per-candidate support, online quarantine
// with rehabilitation, calibrated confidence, and the T_P-derived stability
// flag that lets a tester stop feeding early.
//
// Lifecycle hardening mirrors the request path's (PR 2):
//  * Per-session idle and lifetime deadlines; an overdue session resolves
//    kSessionExpired at the next touch (add_response/finalize/sweep) — no
//    background thread, so a stalled feed can never wedge a worker.  All
//    time enters through caller-suppliable `now` parameters (the breaker's
//    clock idiom), so tests drive deadlines deterministically.
//  * Bounded live-session table: at max_sessions, begin_diagnosis either
//    evicts the least-recently-active session (kSessionExpired at its next
//    touch) or sheds the new one with kOverloaded.
//  * Malformed, duplicate, and out-of-order records are rejected with
//    line-cited messages; the session survives and keeps accepting.
//  * FaultInjector seams kStreamStall / kStreamGarble / kStreamReorder /
//    kStreamDisconnect map deterministically to expiry, rejection,
//    rejection, and teardown — the stream-chaos harness reconciles trigger
//    counts against session metrics exactly.
//
// Accounting invariant (asserted by tests/stream_chaos_test.cc): every
// admitted session resolves exactly once —
//   sessions_opened == sessions_finalized + sessions_expired +
//                      sessions_evicted + live()
#ifndef M3DFL_SERVE_SESSION_H_
#define M3DFL_SERVE_SESSION_H_

#include <chrono>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "diag/stream_backtrace.h"
#include "serve/journal.h"
#include "serve/service.h"
#include "serve/status.h"

namespace m3dfl::serve {

struct SessionManagerOptions {
  // Live-session table bound; reaching it triggers eviction or shedding.
  std::size_t max_sessions = 64;
  // true: evict the least-recently-active session to admit a new one;
  // false: shed the new session with kOverloaded instead.
  bool evict_lru = true;
  // A session untouched for longer than this expires at its next touch;
  // 0 disables.  Overridable per session.
  double idle_deadline_ms = 0.0;
  // Hard cap on a session's total lifetime; 0 disables.
  double max_lifetime_ms = 0.0;
  // Stability knobs forwarded to diag::StreamingBacktrace.
  std::int32_t stability_window = 4;
  std::int32_t min_responses_for_stability = 3;
  // Crash-safe serving (serve/journal.h, docs/SERVING.md "Crash recovery").
  // Non-empty: every session open, accepted record, and resolution is
  // appended (and fsync'd) to a write-ahead journal in this directory
  // *before* the call acknowledges, and recover() can rebuild in-flight
  // sessions after a restart.  Empty: sessions stay memory-only (the
  // pre-journal behaviour, zero I/O on the session path).
  std::string journal_dir;
  // Rotation / wall-clock knobs for the journal; the manager wires the
  // service's injector and metrics in itself.
  std::size_t journal_max_segment_bytes = 64 * 1024;
  WallClock journal_wall_ms;  // tests inject a fake wall clock
};

// What SessionManager::recover() found in the journal.  Every journaled
// in-flight session lands in exactly one bucket: rebuilt live (recovered),
// past its deadlines at recovery time (expired), or unmappable — unknown or
// lint-rejected design (discarded).
struct RecoveryStats {
  std::size_t recovered = 0;
  std::size_t expired = 0;
  std::size_t discarded = 0;
  std::size_t segments = 0;          // journal segments scanned
  std::size_t records_scanned = 0;   // valid frames across all segments
  std::size_t lines_replayed = 0;    // stream records fed into rebuilt sessions
  // Session ids of the rebuilt (recovered) sessions, in journal order; the
  // CLI finalizes these to deliver results a crashed run never produced.
  std::vector<std::uint64_t> recovered_ids;
  // Torn-tail / corrupt-frame / semantic findings, each citing the segment
  // path and byte offset (serve/journal.h scan semantics).
  std::vector<std::string> diagnostics;
};

// Per-session overrides.
struct SessionOptions {
  double idle_deadline_ms = 0.0;  // 0 = manager default
  double max_lifetime_ms = 0.0;   // 0 = manager default
};

// Outcome of begin_diagnosis().
struct SessionTicket {
  std::uint64_t session_id = 0;  // valid only when admitted()
  StatusCode status = StatusCode::kOk;
  std::string message;
  bool admitted() const { return status == StatusCode::kOk; }
};

// Outcome of one add_response() call: what happened to the record, plus the
// diagnosis trajectory after it.
struct SessionUpdate {
  // kOk for accepted/meta records, kInvalidInput for rejected records (the
  // session stays live), kSessionExpired when the session is dead.
  StatusCode status = StatusCode::kOk;
  std::string message;
  // The record was accepted as a failing response (snapshot advanced).
  // false for meta records (mode/limit/comments), rejected records
  // (status kInvalidInput), and dead sessions (status kSessionExpired).
  bool accepted = false;
  bool end_of_stream = false;  // the 'end' trailer arrived
  // Snapshot after this record (StreamingBacktrace state).
  std::int32_t num_responses = 0;
  std::int32_t num_candidates = 0;
  double confidence = 0.0;  // calibrated combined confidence
  bool stable = false;      // early-exit threshold crossed
  std::int32_t early_exit_at = -1;
  std::int32_t quarantined = 0;  // responses currently quarantined
  std::int64_t condemnations = 0;    // cumulative
  std::int64_t rehabilitations = 0;  // cumulative
};

// The session layer over a DiagnosisService.  All public methods are
// thread-safe; time-dependent ones take an optional caller-supplied `now`
// so deadline behaviour is deterministic under test.
class SessionManager {
 public:
  using Clock = DiagnosisService::Clock;

  // The service must outlive the manager.  Session metrics land in the
  // service's Metrics instance, next to the request counters.
  explicit SessionManager(DiagnosisService& service,
                          const SessionManagerOptions& options = {});

  // Opens a session against a registered design.  Rejections (lint-failed
  // design, table full under shedding) come back in the ticket; an unknown
  // design id throws, like submit().
  SessionTicket begin_diagnosis(std::int32_t design_id,
                                const SessionOptions& options = {});
  SessionTicket begin_diagnosis(std::int32_t design_id,
                                const SessionOptions& options,
                                Clock::time_point now);

  // Feeds one line of the faillog body.  Malformed / duplicate /
  // out-of-order records are rejected with kInvalidInput and a line-cited
  // message; the session stays live.  A dead session (expired, evicted,
  // disconnected, or never opened) returns kSessionExpired.
  SessionUpdate add_response(std::uint64_t session_id, const std::string& line);
  SessionUpdate add_response(std::uint64_t session_id, const std::string& line,
                             Clock::time_point now);

  // Closes the session and routes the accumulated log through the service's
  // worker pool, injecting the incrementally-maintained back-trace (the
  // worker skips recomputing it; everything downstream — ATPG, GNN,
  // calibration — runs unchanged).  A dead session resolves immediately
  // with kSessionExpired.  The future never carries an exception.
  std::future<DiagnosisResult> finalize(std::uint64_t session_id);
  std::future<DiagnosisResult> finalize(std::uint64_t session_id,
                                        Clock::time_point now);

  // Expires every session whose idle or lifetime deadline has passed by
  // `now`; returns how many.  Tests fabricate `now` to drive expiry.
  std::size_t sweep(Clock::time_point now);

  // Rebuilds in-flight sessions from the journal directory (call once, at
  // startup, before traffic).  Every surviving segment is scanned for its
  // longest valid frame prefix; sessions with an open and no tombstone are
  // replayed through a fresh StreamingBacktrace — so a recovered session
  // finalizes byte-identical to the uninterrupted run — with their
  // remaining idle/lifetime budget restored from the journaled wall-clock
  // timestamps.  Sessions past a deadline are tombstoned as expired;
  // sessions whose design is not registered (or is lint-rejected) are
  // tombstoned as discarded.  A no-op without a journal_dir.
  RecoveryStats recover();
  RecoveryStats recover(Clock::time_point now);

  // The write-ahead journal, or nullptr when journal_dir is empty.  False
  // durable() means at least one append failed to reach disk and a crash
  // may lose events (serving continues regardless).
  const SessionJournal* journal() const { return journal_.get(); }

  std::size_t live() const;
  bool contains(std::uint64_t session_id) const;
  // Streaming snapshot of a live session (nullptr when dead) — for tests
  // and the CLI trajectory printer.  The pointer is invalidated by any
  // later call that touches the session.
  const StreamSnapshot* snapshot(std::uint64_t session_id) const;

  const SessionManagerOptions& options() const { return options_; }

 private:
  struct Session {
    std::uint64_t id = 0;
    std::int32_t design_id = 0;
    std::shared_ptr<const Design> design;  // keeps ctx references alive
    DesignContext ctx;
    std::unique_ptr<StreamingBacktrace> stream;
    int line_no = 1;  // last fed line (header is line 1, records start at 2)
    Clock::time_point opened;
    Clock::time_point last_activity;
    double idle_deadline_ms = 0.0;
    double max_lifetime_ms = 0.0;
    // Last accepted pattern per record kind (scan/chan/po) for the
    // out-of-order rejection; -1 before the first.
    std::int32_t last_pattern[3] = {-1, -1, -1};
    std::int64_t rehabilitations_reported = 0;
  };

  // True when `s` is past either deadline at `now`.
  static bool expired(const Session& s, Clock::time_point now);
  // Removes + counts an expired/disconnected session.  Caller holds mu_.
  void expire_locked(std::uint64_t id, const std::string& why);
  SessionUpdate dead_session(std::uint64_t session_id) const;

  // Builds the Session shell (design refs, stream state, deadlines) shared
  // by begin_diagnosis and recover().
  std::unique_ptr<Session> make_session(std::int32_t design_id,
                                        double idle_deadline_ms,
                                        double max_lifetime_ms,
                                        Clock::time_point now) const;

  DiagnosisService& service_;
  const SessionManagerOptions options_;
  Metrics& metrics_;
  FaultInjector* injector_;  // service's injector; may be null
  std::unique_ptr<SessionJournal> journal_;  // null when journaling is off

  mutable std::mutex mu_;
  std::map<std::uint64_t, std::unique_ptr<Session>> sessions_;
  std::uint64_t next_id_ = 1;
};

}  // namespace m3dfl::serve

#endif  // M3DFL_SERVE_SESSION_H_
