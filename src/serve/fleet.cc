#include "serve/fleet.h"

#include <sstream>
#include <utility>

#include "util/error.h"
#include "util/table.h"

namespace m3dfl::serve {
namespace {

std::string fmt_ms(double seconds) {
  return TablePrinter::fmt(seconds * 1e3, 2);
}

}  // namespace

FleetService::FleetService(registry::ModelRegistry& registry,
                           FleetOptions options)
    : registry_(registry), options_(std::move(options)) {}

FleetService::~FleetService() {
  try {
    shutdown(ShutdownMode::kDrain);
  } catch (...) {
    // Destructor must not throw; shards' own destructors still join.
  }
}

TenantOptions FleetService::tenant_defaults() const {
  TenantOptions tenant;
  tenant.service = options_.service_defaults;
  return tenant;
}

FleetService::Tenant& FleetService::tenant_at(std::int32_t tenant_id) const {
  std::lock_guard<std::mutex> lock(tenants_mu_);
  M3DFL_REQUIRE(tenant_id >= 0 &&
                    tenant_id < static_cast<std::int32_t>(tenants_.size()),
                "unknown fleet tenant id: " + std::to_string(tenant_id));
  return *tenants_[static_cast<std::size_t>(tenant_id)];
}

std::unique_ptr<FleetService::Epoch> FleetService::make_epoch(
    Tenant& tenant,
    std::shared_ptr<const registry::LoadedModel> model) const {
  auto epoch = std::make_unique<Epoch>();
  ServiceOptions service_options = tenant.options.service;
  service_options.model_generation = model->generation;
  service_options.external_metrics = tenant.metrics.get();
  // Aliasing constructor: the service's framework pointer keeps the whole
  // registry LoadedModel alive, so eviction or a subsequent reload never
  // frees a model that still has an epoch on it.
  std::shared_ptr<const DiagnosisFramework> framework(model,
                                                      &model->framework);
  epoch->service = std::make_unique<DiagnosisService>(std::move(framework),
                                                      service_options);
  epoch->design_id = epoch->service->register_design(tenant.design);
  epoch->model = std::move(model);
  return epoch;
}

bool FleetService::refresh_epoch_locked(Tenant& tenant) {
  std::shared_ptr<const registry::LoadedModel> model;
  try {
    model = registry_.acquire(tenant.options.model, tenant.options.version);
  } catch (const Error&) {
    // Unknown model or failed first load: an existing epoch keeps serving
    // (its shared_ptr pins the old artifact); without one the caller sheds.
    return tenant.epoch != nullptr;
  }
  if (tenant.epoch == nullptr ||
      tenant.epoch->model->generation != model->generation) {
    auto fresh = make_epoch(tenant, std::move(model));
    if (tenant.epoch != nullptr) {
      // Retire, never interrupt: the old epoch finishes its in-flight
      // requests on the old framework and is reaped once quiesced.
      tenant.retired.push_back(std::move(tenant.epoch));
      tenant.metrics->model_reloads.fetch_add(1, std::memory_order_relaxed);
    }
    tenant.epoch = std::move(fresh);
  }
  // Reap retired epochs whose last request resolved; shutdown() joins the
  // worker threads before the service is destroyed.
  for (auto it = tenant.retired.begin(); it != tenant.retired.end();) {
    if ((*it)->service->pending() == 0) {
      (*it)->service->shutdown(ShutdownMode::kDrain);
      it = tenant.retired.erase(it);
    } else {
      ++it;
    }
  }
  return true;
}

std::int32_t FleetService::add_tenant(std::shared_ptr<const Design> design,
                                      TenantOptions options) {
  M3DFL_REQUIRE(design != nullptr, "fleet tenant needs a design");
  M3DFL_REQUIRE(!options.model.empty(),
                "fleet tenant needs a registry model name");
  auto tenant = std::make_unique<Tenant>();
  tenant->design = std::move(design);
  tenant->options = std::move(options);
  tenant->metrics = std::make_unique<Metrics>();
  {
    // Eager first epoch when the model is already published; a failure here
    // is not fatal — submits shed kModelUnavailable until it appears.
    std::lock_guard<std::mutex> lock(tenant->mu);
    refresh_epoch_locked(*tenant);
  }
  std::lock_guard<std::mutex> lock(tenants_mu_);
  tenants_.push_back(std::move(tenant));
  return static_cast<std::int32_t>(tenants_.size()) - 1;
}

std::int32_t FleetService::num_tenants() const {
  std::lock_guard<std::mutex> lock(tenants_mu_);
  return static_cast<std::int32_t>(tenants_.size());
}

std::future<DiagnosisResult> FleetService::reject_now(Tenant& tenant,
                                                      StatusCode status,
                                                      std::string message) {
  DiagnosisResult result;
  result.status = status;
  result.status_message = std::move(message);
  tenant.metrics->requests_submitted.fetch_add(1, std::memory_order_relaxed);
  tenant.metrics->record_status(status);
  if (status == StatusCode::kQuotaExceeded) {
    tenant.metrics->quota_rejections.fetch_add(1, std::memory_order_relaxed);
  }
  std::promise<DiagnosisResult> promise;
  promise.set_value(std::move(result));
  return promise.get_future();
}

std::future<DiagnosisResult> FleetService::submit(
    std::int32_t tenant_id, FailureLog log,
    const SubmitOptions& submit_options) {
  Tenant& tenant = tenant_at(tenant_id);
  std::lock_guard<std::mutex> lock(tenant.mu);
  M3DFL_REQUIRE(!tenant.shut_down,
                "fleet submit after shutdown (tenant " +
                    std::to_string(tenant_id) + ")");
  if (!refresh_epoch_locked(tenant)) {
    return reject_now(tenant, StatusCode::kModelUnavailable,
                      "no registry model '" + tenant.options.model +
                          "' is loadable yet");
  }
  if (over_quota_locked(tenant)) {
    return reject_now(tenant, StatusCode::kQuotaExceeded,
                      "tenant over max_inflight quota (" +
                          std::to_string(tenant.options.max_inflight) + ")");
  }
  return tenant.epoch->service->submit(tenant.epoch->design_id, std::move(log),
                                       submit_options);
}

bool FleetService::over_quota_locked(const Tenant& tenant) {
  if (tenant.options.max_inflight == 0 || tenant.epoch == nullptr) {
    return false;
  }
  // Quota counts this tenant's in-flight work across the current and all
  // retired epochs — a reload must not double a tenant's effective quota.
  std::uint64_t inflight = tenant.epoch->service->pending();
  for (const auto& old : tenant.retired) inflight += old->service->pending();
  return inflight >= tenant.options.max_inflight;
}

std::optional<std::future<DiagnosisResult>> FleetService::admit(
    std::int32_t tenant_id) {
  Tenant& tenant = tenant_at(tenant_id);
  std::lock_guard<std::mutex> lock(tenant.mu);
  M3DFL_REQUIRE(!tenant.shut_down,
                "fleet admit after shutdown (tenant " +
                    std::to_string(tenant_id) + ")");
  if (!over_quota_locked(tenant)) return std::nullopt;
  return reject_now(tenant, StatusCode::kQuotaExceeded,
                    "tenant over max_inflight quota (" +
                        std::to_string(tenant.options.max_inflight) + ")");
}

DiagnosisResult FleetService::diagnose(std::int32_t tenant_id, FailureLog log,
                                       const SubmitOptions& submit_options) {
  return submit(tenant_id, std::move(log), submit_options).get();
}

void FleetService::resume(std::int32_t tenant_id) {
  Tenant& tenant = tenant_at(tenant_id);
  std::lock_guard<std::mutex> lock(tenant.mu);
  for (auto& old : tenant.retired) old->service->resume();
  if (tenant.epoch != nullptr) tenant.epoch->service->resume();
}

void FleetService::drain() {
  const std::int32_t n = num_tenants();
  for (std::int32_t id = 0; id < n; ++id) {
    Tenant& tenant = tenant_at(id);
    std::lock_guard<std::mutex> lock(tenant.mu);
    for (auto& old : tenant.retired) old->service->drain();
    if (tenant.epoch != nullptr) tenant.epoch->service->drain();
    for (auto& old : tenant.retired) old->service->shutdown();
    tenant.retired.clear();
  }
}

void FleetService::shutdown(ShutdownMode mode) {
  const std::int32_t n = num_tenants();
  for (std::int32_t id = 0; id < n; ++id) {
    Tenant& tenant = tenant_at(id);
    std::lock_guard<std::mutex> lock(tenant.mu);
    if (tenant.shut_down) continue;
    tenant.shut_down = true;
    for (auto& old : tenant.retired) old->service->shutdown(mode);
    tenant.retired.clear();
    if (tenant.epoch != nullptr) tenant.epoch->service->shutdown(mode);
  }
}

DiagnosisService* FleetService::tenant_service(std::int32_t tenant_id) const {
  Tenant& tenant = tenant_at(tenant_id);
  std::lock_guard<std::mutex> lock(tenant.mu);
  return tenant.epoch == nullptr ? nullptr : tenant.epoch->service.get();
}

std::uint64_t FleetService::tenant_generation(std::int32_t tenant_id) const {
  Tenant& tenant = tenant_at(tenant_id);
  std::lock_guard<std::mutex> lock(tenant.mu);
  return tenant.epoch == nullptr ? 0 : tenant.epoch->model->generation;
}

std::size_t FleetService::tenant_retired_epochs(std::int32_t tenant_id) const {
  Tenant& tenant = tenant_at(tenant_id);
  std::lock_guard<std::mutex> lock(tenant.mu);
  return tenant.retired.size();
}

std::int64_t FleetService::quota_rejections(std::int32_t tenant_id) const {
  return tenant_at(tenant_id)
      .metrics->quota_rejections.load(std::memory_order_relaxed);
}

const Metrics& FleetService::tenant_metrics(std::int32_t tenant_id) const {
  return *tenant_at(tenant_id).metrics;
}

std::string FleetService::report() const {
  TablePrinter tenants({"tenant", "model", "gen", "submitted", "ok", "failed",
                        "quota shed", "reloads", "p50 ms", "p95 ms"});
  const std::int32_t n = num_tenants();
  for (std::int32_t id = 0; id < n; ++id) {
    Tenant& tenant = tenant_at(id);
    std::uint64_t generation = 0;
    std::string model;
    {
      std::lock_guard<std::mutex> lock(tenant.mu);
      model = tenant.options.model;
      if (tenant.options.version != registry::ModelRegistry::kLatest) {
        model += "@" + std::to_string(tenant.options.version);
      }
      if (tenant.epoch != nullptr) {
        generation = tenant.epoch->model->generation;
      }
    }
    const Metrics& m = *tenant.metrics;
    tenants.add_row(
        {std::to_string(id), model, std::to_string(generation),
         std::to_string(m.requests_submitted.load()),
         std::to_string(m.requests_completed.load()),
         std::to_string(m.requests_failed.load()),
         std::to_string(m.quota_rejections.load()),
         std::to_string(m.model_reloads.load()),
         fmt_ms(m.end_to_end.quantile_seconds(0.50)),
         fmt_ms(m.end_to_end.quantile_seconds(0.95))});
  }

  TablePrinter reg({"registry counter", "value"});
  reg.add_row({"designs indexed", std::to_string(registry_.designs().size())});
  reg.add_row({"resident models", std::to_string(registry_.resident_count())});
  reg.add_row({"resident bytes", std::to_string(registry_.resident_bytes())});
  reg.add_row({"cold loads", std::to_string(registry_.loads())});
  reg.add_row({"hits", std::to_string(registry_.hits())});
  reg.add_row({"evictions", std::to_string(registry_.evictions())});
  reg.add_row({"hot reloads", std::to_string(registry_.reloads())});
  reg.add_row({"rejected reloads", std::to_string(registry_.reload_failures())});

  std::ostringstream os;
  os << tenants.to_string() << "\n" << reg.to_string();
  return os.str();
}

}  // namespace m3dfl::serve
