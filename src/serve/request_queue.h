// Bounded MPMC request queue with per-key micro-batch draining.
//
// Producers block while the queue is full (natural backpressure: a flooded
// service slows its callers instead of growing without bound).  Consumers
// drain micro-batches: pop_batch() takes the oldest request plus up to
// max_batch-1 younger requests sharing its key (the design id), so one
// worker handles a run of same-design logs back to back — design lookup and
// cache locality amortize while per-design FIFO order is preserved.
//
// close() wakes everyone: pending push() calls fail, consumers drain what is
// left and then observe the closed state.
#ifndef M3DFL_SERVE_REQUEST_QUEUE_H_
#define M3DFL_SERVE_REQUEST_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

#include "util/error.h"

namespace m3dfl::serve {

template <typename T>
class RequestQueue {
 public:
  explicit RequestQueue(std::size_t capacity) : capacity_(capacity) {
    M3DFL_REQUIRE(capacity > 0, "request queue capacity must be positive");
  }

  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  // Blocks while full.  Returns false (dropping `item`) once closed.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  // Non-blocking admission for load-shedding callers: enqueues `item` only
  // when the queue is open and below capacity.  On kFull/kClosed the item is
  // left intact so the caller can fail it with a status instead.
  enum class TryPush { kAccepted, kFull, kClosed };
  TryPush try_push(T& item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return TryPush::kClosed;
      if (items_.size() >= capacity_) return TryPush::kFull;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return TryPush::kAccepted;
  }

  // Pops the front request plus up to max_batch-1 queued requests with the
  // same key (per key_fn).  Blocks while empty; returns an empty vector only
  // when the queue is closed and fully drained.
  template <typename KeyFn>
  std::vector<T> pop_batch(std::size_t max_batch, KeyFn key_fn) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    std::vector<T> batch;
    if (items_.empty()) return batch;  // closed and drained
    batch.push_back(std::move(items_.front()));
    items_.pop_front();
    const auto key = key_fn(batch.front());
    for (auto it = items_.begin();
         it != items_.end() && batch.size() < max_batch;) {
      if (key_fn(*it) == key) {
        batch.push_back(std::move(*it));
        it = items_.erase(it);
      } else {
        ++it;
      }
    }
    lock.unlock();
    not_full_.notify_all();
    return batch;
  }

  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace m3dfl::serve

#endif  // M3DFL_SERVE_REQUEST_QUEUE_H_
