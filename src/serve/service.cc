#include "serve/service.h"

#include <algorithm>
#include <istream>
#include <sstream>
#include <thread>
#include <utility>

#include "core/pipeline.h"
#include "diag/report.h"
#include "graph/backtrace.h"
#include "lint/lint.h"

namespace m3dfl::serve {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

bool deadline_passed(Clock::time_point deadline) {
  return deadline != Clock::time_point::max() && Clock::now() > deadline;
}

}  // namespace

double next_backoff_ms(Rng& rng, double base_ms, double cap_ms,
                       double prev_ms) {
  const double hi = std::max(base_ms, 3.0 * prev_ms);
  return std::min(cap_ms, rng.next_double(base_ms, hi));
}

std::string validate_failure_log(const Design& design, const FailureLog& log) {
  // Thin wrapper over the lint engine's failure-log pass (lint/checks.h).
  // Only that one pass runs — this sits on the per-request path, where the
  // design-level passes (graph rebuild etc.) would be prohibitive; those run
  // once at register_design() instead.
  lint::Subject subject;
  subject.netlist = &design.netlist();
  subject.scan = &design.scan();
  subject.compactor = &design.compactor();
  subject.log = &log;
  subject.num_patterns = design.patterns().num_patterns;
  lint::Report report;
  lint::run_failure_log_checks(subject, report);
  for (const lint::Diagnostic& d : report.diagnostics()) {
    if (d.severity == lint::Severity::kError) return d.message;
  }
  return std::string();
}

DiagnosisService::LoadedFramework DiagnosisService::load_framework(
    std::istream& is, const ServiceOptions& options) {
  LoadedFramework loaded;
  try {
    if (options.fault_injector != nullptr) {
      options.fault_injector->maybe_throw(Seam::kFrameworkLoad,
                                          "injected framework-load fault");
    }
    auto framework = std::make_shared<DiagnosisFramework>();
    framework->load(is);
    loaded.framework = std::move(framework);
  } catch (const std::exception& e) {
    if (!options.degraded_fallback) throw;
    loaded.degraded = true;
    loaded.why = e.what();
    loaded.framework = std::make_shared<DiagnosisFramework>();
  }
  return loaded;
}

DiagnosisService::DiagnosisService(DiagnosisFramework framework,
                                   const ServiceOptions& options)
    : DiagnosisService(
          LoadedFramework{
              std::make_shared<const DiagnosisFramework>(std::move(framework)),
              false,
              {}},
          options) {}

DiagnosisService::DiagnosisService(
    std::shared_ptr<const DiagnosisFramework> framework,
    const ServiceOptions& options)
    : DiagnosisService(LoadedFramework{std::move(framework), false, {}},
                       options) {}

DiagnosisService::DiagnosisService(std::istream& model_stream,
                                   const ServiceOptions& options)
    : DiagnosisService(load_framework(model_stream, options), options) {}

DiagnosisService::DiagnosisService(LoadedFramework loaded,
                                   const ServiceOptions& options)
    : options_(options),
      framework_(std::move(loaded.framework)),
      degraded_(loaded.degraded),
      metrics_(options.external_metrics != nullptr ? options.external_metrics
                                                   : &own_metrics_),
      cache_(options.cache_capacity, metrics_),
      queue_(options.queue_capacity),
      paused_(options.start_paused) {
  M3DFL_REQUIRE(framework_ != nullptr,
                "diagnosis service needs a non-null framework");
  M3DFL_REQUIRE(degraded_ || framework_->trained(),
                "diagnosis service needs a trained framework");
  M3DFL_REQUIRE(options_.num_threads > 0,
                "diagnosis service needs at least one worker thread");
  M3DFL_REQUIRE(options_.max_batch > 0, "max_batch must be positive");
  M3DFL_REQUIRE(options_.max_retries >= 0, "max_retries must be >= 0");
  M3DFL_REQUIRE(options_.shed_watermark <= options_.queue_capacity,
                "shed_watermark cannot exceed queue_capacity");
  start_workers();
}

DiagnosisService::~DiagnosisService() { shutdown(); }

void DiagnosisService::start_workers() {
  pool_.start(static_cast<std::size_t>(options_.num_threads),
              [this](std::size_t) { worker_loop(); });
}

void DiagnosisService::resume() {
  {
    std::lock_guard<std::mutex> lock(pause_mu_);
    paused_ = false;
  }
  pause_cv_.notify_all();
}

std::int32_t DiagnosisService::register_design(
    std::shared_ptr<const Design> design) {
  M3DFL_REQUIRE(design != nullptr, "cannot register a null design");
  // Static analysis runs here, outside designs_mu_ and once per design —
  // never on the request path.
  std::string lint_error;
  if (options_.lint_admission) {
    const lint::Report report = lint::lint_design(*design);
    if (report.has_errors()) {
      const lint::Diagnostic* first = nullptr;
      for (const lint::Diagnostic& d : report.diagnostics()) {
        if (d.severity == lint::Severity::kError) {
          first = &d;
          break;
        }
      }
      lint_error = "design '" + design->name() + "' failed lint (" +
                   report.summary() + "); first: " + first->to_string();
    }
  }
  std::lock_guard<std::mutex> lock(designs_mu_);
  designs_.push_back(std::move(design));
  breakers_.push_back(std::make_unique<CircuitBreaker>(options_.breaker));
  lint_errors_.push_back(std::move(lint_error));
  return static_cast<std::int32_t>(designs_.size()) - 1;
}

std::string DiagnosisService::design_lint_error(std::int32_t design_id) const {
  std::lock_guard<std::mutex> lock(designs_mu_);
  M3DFL_REQUIRE(design_id >= 0 &&
                    design_id < static_cast<std::int32_t>(lint_errors_.size()),
                "unknown design id " + std::to_string(design_id));
  return lint_errors_[static_cast<std::size_t>(design_id)];
}

std::int32_t DiagnosisService::num_designs() const {
  std::lock_guard<std::mutex> lock(designs_mu_);
  return static_cast<std::int32_t>(designs_.size());
}

const Design& DiagnosisService::design(std::int32_t design_id) const {
  return *design_ref(design_id);
}

std::shared_ptr<const Design> DiagnosisService::design_ref(
    std::int32_t design_id) const {
  std::lock_guard<std::mutex> lock(designs_mu_);
  M3DFL_REQUIRE(design_id >= 0 &&
                    design_id < static_cast<std::int32_t>(designs_.size()),
                "unknown design id " + std::to_string(design_id));
  return designs_[static_cast<std::size_t>(design_id)];
}

CircuitBreaker* DiagnosisService::breaker_for(std::int32_t design_id) const {
  std::lock_guard<std::mutex> lock(designs_mu_);
  M3DFL_REQUIRE(design_id >= 0 &&
                    design_id < static_cast<std::int32_t>(breakers_.size()),
                "unknown design id " + std::to_string(design_id));
  return breakers_[static_cast<std::size_t>(design_id)].get();
}

CircuitBreaker::State DiagnosisService::breaker_state(
    std::int32_t design_id) const {
  return breaker_for(design_id)->state();
}

std::future<DiagnosisResult> DiagnosisService::reject(
    Request&& request, std::future<DiagnosisResult> future,
    const Design& design, StatusCode status, std::string message) {
  DiagnosisResult result;
  result.sequence = request.sequence;
  result.design = design.name();
  complete(request, std::move(result), status, std::move(message));
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    ++finished_;
  }
  drain_cv_.notify_all();
  return future;
}

std::future<DiagnosisResult> DiagnosisService::submit(
    std::int32_t design_id, FailureLog log,
    const SubmitOptions& submit_options) {
  const std::shared_ptr<const Design> design = design_ref(design_id);
  Request request;
  request.design_id = design_id;
  request.log = std::move(log);
  request.precomputed_backtrace = submit_options.precomputed_backtrace;
  request.enqueued = Clock::now();
  const double deadline_ms = submit_options.deadline_ms > 0.0
                                 ? submit_options.deadline_ms
                                 : options_.default_deadline_ms;
  if (deadline_ms > 0.0) {
    request.deadline =
        request.enqueued +
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double, std::milli>(deadline_ms));
  }
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    M3DFL_REQUIRE(!shut_down_, "diagnosis service is shut down");
    request.sequence = submitted_++;
  }
  metrics_->requests_submitted.fetch_add(1, std::memory_order_relaxed);
  std::future<DiagnosisResult> future = request.promise.get_future();

  // Admission control.  Everything rejected here resolves immediately with
  // a status — the caller's future never blocks on a request the service
  // has already decided not to run.  The design-lint gate comes first: a
  // design that failed static analysis can never serve a correct diagnosis,
  // so no per-log validation result could rescue the request.
  FaultInjector* injector = options_.fault_injector.get();
  std::string lint_error = design_lint_error(design_id);
  if (lint_error.empty() && injector != nullptr &&
      injector->should_fail(Seam::kAdmissionLint)) {
    lint_error = "injected lint-admission fault for design '" +
                 design->name() + "'";
  }
  if (!lint_error.empty()) {
    metrics_->lint_rejections.fetch_add(1, std::memory_order_relaxed);
    return reject(std::move(request), std::move(future), *design,
                  StatusCode::kLintRejected, std::move(lint_error));
  }
  const std::string invalid = validate_failure_log(*design, request.log);
  if (!invalid.empty()) {
    return reject(std::move(request), std::move(future), *design,
                  StatusCode::kInvalidInput, invalid);
  }
  CircuitBreaker* breaker = breaker_for(design_id);
  switch (breaker->admit(request.enqueued)) {
    case CircuitBreaker::Decision::kReject:
      metrics_->breaker_rejections.fetch_add(1, std::memory_order_relaxed);
      return reject(std::move(request), std::move(future), *design,
                    StatusCode::kOverloaded,
                    "circuit breaker open for design '" + design->name() +
                        "'");
    case CircuitBreaker::Decision::kProbe:
      // This request now owns the half-open probe: every exit from here on
      // — including the load-shedding rejections below — must resolve it,
      // or the breaker would reject this design's submissions until the
      // probe expires.
      request.probe = true;
      break;
    case CircuitBreaker::Decision::kAllow:
      break;
  }
  const auto shed = [&](std::string message) {
    metrics_->load_shed.fetch_add(1, std::memory_order_relaxed);
    if (request.probe) breaker->abandon_probe(Clock::now());
    return reject(std::move(request), std::move(future), *design,
                  StatusCode::kOverloaded, std::move(message));
  };
  if (injector != nullptr && injector->should_fail(Seam::kQueueAdmit)) {
    return shed("injected queue admission fault");
  }
  const bool probe = request.probe;  // `request` may be moved-from below
  if (options_.shed_watermark > 0) {
    // Load shedding: a queue at the high-watermark means the service is
    // already saturated; failing fast beats stalling the caller.
    if (queue_.size() >= options_.shed_watermark) {
      return shed("request queue above shed watermark (" +
                  std::to_string(options_.shed_watermark) + ")");
    }
    switch (queue_.try_push(request)) {
      case RequestQueue<Request>::TryPush::kAccepted:
        return future;
      case RequestQueue<Request>::TryPush::kFull:
        return shed("request queue full");
      case RequestQueue<Request>::TryPush::kClosed:
        break;  // fall through to the shutdown-race path below
    }
  } else if (queue_.push(std::move(request))) {
    return future;
  }
  if (probe) breaker->abandon_probe(Clock::now());
  // Shutdown raced with this submit; account the request as finished so
  // drain() cannot hang, then report the condition to the caller.
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    ++finished_;
  }
  drain_cv_.notify_all();
  throw Error("m3dfl: diagnosis service is shut down");
}

DiagnosisResult DiagnosisService::diagnose(
    std::int32_t design_id, FailureLog log,
    const SubmitOptions& submit_options) {
  return submit(design_id, std::move(log), submit_options).get();
}

void DiagnosisService::drain() {
  std::unique_lock<std::mutex> lock(drain_mu_);
  drain_cv_.wait(lock, [this] { return finished_ == submitted_; });
}

std::uint64_t DiagnosisService::pending() const {
  std::lock_guard<std::mutex> lock(drain_mu_);
  return submitted_ - finished_;
}

void DiagnosisService::shutdown(ShutdownMode mode) {
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    shut_down_ = true;
  }
  if (mode == ShutdownMode::kAbort) {
    abort_.store(true, std::memory_order_relaxed);
    // Close first: workers drain the remaining queue, failing every request
    // with kShuttingDown (the abort_ check in worker_loop/process), so
    // drain() below terminates without running them.
    queue_.close();
  }
  resume();  // a paused service must still be able to quiesce
  drain();
  queue_.close();
  pool_.join();
}

void DiagnosisService::worker_loop() {
  {
    std::unique_lock<std::mutex> lock(pause_mu_);
    pause_cv_.wait(lock, [this] { return !paused_; });
  }
  for (;;) {
    std::vector<Request> batch = queue_.pop_batch(
        options_.max_batch,
        [](const Request& r) { return r.design_id; });
    if (batch.empty()) return;  // queue closed and drained
    metrics_->batches.fetch_add(1, std::memory_order_relaxed);
    metrics_->batched_requests.fetch_add(
        static_cast<std::int64_t>(batch.size()), std::memory_order_relaxed);
    for (Request& request : batch) {
      process(request);
    }
    // Drain accounting once per micro-batch keeps the lock off the
    // per-request path.
    {
      std::lock_guard<std::mutex> lock(drain_mu_);
      finished_ += batch.size();
    }
    drain_cv_.notify_all();
  }
}

void DiagnosisService::complete(Request& request, DiagnosisResult&& result,
                                StatusCode status, std::string message) {
  result.model_generation = options_.model_generation;
  result.status = status;
  result.status_message = std::move(message);
  if (status == StatusCode::kOk && result.degraded) {
    metrics_->degraded_results.fetch_add(1, std::memory_order_relaxed);
  }
  if (status == StatusCode::kOk) {
    if (result.confidence.noisy_log) {
      metrics_->noisy_log_results.fetch_add(1, std::memory_order_relaxed);
    }
    if (result.confidence.low_confidence) {
      metrics_->low_confidence_results.fetch_add(1, std::memory_order_relaxed);
    }
    if (result.confidence.quarantined > 0) {
      metrics_->quarantined_responses.fetch_add(result.confidence.quarantined,
                                               std::memory_order_relaxed);
    }
  }
  if (status == StatusCode::kShuttingDown) {
    metrics_->aborted_requests.fetch_add(1, std::memory_order_relaxed);
  }
  metrics_->record_status(status);
  request.promise.set_value(std::move(result));
}

void DiagnosisService::process(Request& request) {
  const Clock::time_point picked_up = Clock::now();
  const std::shared_ptr<const Design> design = design_ref(request.design_id);
  const DesignContext ctx = design->context();

  DiagnosisResult result;
  result.sequence = request.sequence;
  result.design = design->name();
  result.queue_seconds = std::chrono::duration<double>(
                             picked_up - request.enqueued)
                             .count();
  metrics_->queue_wait.record(result.queue_seconds);

  // Retry loop: only kTransient outcomes re-run, with decorrelated-jitter
  // backoff whose stream is a pure function of (retry_seed, sequence) —
  // retry timing is bit-reproducible under test.
  Rng backoff_rng(options_.retry_seed ^
                  (request.sequence * 0x9E3779B97F4A7C15ULL));
  double sleep_ms = options_.backoff_base_ms;
  StatusCode status = StatusCode::kInternal;
  std::string message;
  bool breaker_exempt = false;
  for (std::int32_t attempt = 0;; ++attempt) {
    result.attempts = attempt + 1;
    status = attempt_once(request, *design, ctx, result, message,
                          breaker_exempt);
    if (status != StatusCode::kTransient || attempt >= options_.max_retries) {
      break;
    }
    sleep_ms = next_backoff_ms(backoff_rng, options_.backoff_base_ms,
                               options_.backoff_cap_ms, sleep_ms);
    // Never sleep past the request's deadline: a backoff that cannot end
    // before the deadline would occupy a worker only to fail the next
    // attempt's first check anyway.
    double nap_ms = sleep_ms;
    if (request.deadline != Clock::time_point::max()) {
      const double remaining_ms =
          std::chrono::duration<double, std::milli>(request.deadline -
                                                    Clock::now())
              .count();
      if (remaining_ms <= 0.0) {
        status = StatusCode::kDeadlineExceeded;
        message = "deadline exceeded during retry backoff";
        break;
      }
      nap_ms = std::min(nap_ms, remaining_ms);
    }
    metrics_->retries.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(nap_ms));
  }

  if (status == StatusCode::kOk) {
    result.total_seconds = std::chrono::duration<double>(
                               Clock::now() - request.enqueued)
                               .count();
    metrics_->end_to_end.record(result.total_seconds);
  }
  CircuitBreaker* breaker = breaker_for(request.design_id);
  const bool failure_class = status == StatusCode::kTransient ||
                             status == StatusCode::kInternal ||
                             status == StatusCode::kModelUnavailable;
  if (status == StatusCode::kOk) {
    breaker->on_success();
  } else if (failure_class && !breaker_exempt) {
    breaker->on_failure(Clock::now());
  } else if (request.probe) {
    // Statuses that say nothing about the design's health (deadline,
    // shutdown, a coalesced leader's failure) still must resolve the
    // half-open probe, or the breaker would stay probe-less until expiry.
    breaker->abandon_probe(Clock::now());
  }
  complete(request, std::move(result), status, std::move(message));
}

StatusCode DiagnosisService::attempt_once(Request& request,
                                          const Design& design,
                                          const DesignContext& ctx,
                                          DiagnosisResult& result,
                                          std::string& message,
                                          bool& breaker_exempt) {
  FaultInjector* injector = options_.fault_injector.get();
  std::shared_ptr<const CachedDiagnosis> entry;
  // A retry starts from a clean slate: the previous attempt may have left a
  // partially refined report or a half-filled prediction behind.
  result.degraded = false;
  result.pruned.clear();
  result.prediction = FrameworkPrediction{};
  result.confidence = DiagnosisConfidence{};
  breaker_exempt = false;
  try {
    if (abort_.load(std::memory_order_relaxed)) {
      message = "service shutting down";
      return StatusCode::kShuttingDown;
    }
    if (deadline_passed(request.deadline)) {
      message = "deadline exceeded before diagnosis started";
      return StatusCode::kDeadlineExceeded;
    }

    // Cached deterministic prefix: back-trace -> subgraph -> features ->
    // normalized adjacency -> ATPG base report.
    const std::string key =
        DiagnosisCache::make_key(request.design_id, request.log);
    if (injector != nullptr) {
      injector->maybe_throw(Seam::kCacheLookup, "injected cache lookup fault");
    }
    entry = cache_.lookup(key);
    result.cache_hit = entry != nullptr;
    if (entry == nullptr) {
      // Single-flight: either become the leader for this key or wait on a
      // worker that is already computing it.
      std::promise<std::shared_ptr<const CachedDiagnosis>> flight;
      std::shared_future<std::shared_ptr<const CachedDiagnosis>> follow;
      bool leader = false;
      {
        std::lock_guard<std::mutex> lock(inflight_mu_);
        const auto it = inflight_.find(key);
        if (it != inflight_.end()) {
          follow = it->second;
        } else {
          // A leader may have finished (insert + inflight erase) between the
          // counted lookup above and this lock; re-check without accounting.
          entry = cache_.peek(key);
          if (entry == nullptr) {
            leader = true;
            inflight_.emplace(key, flight.get_future().share());
          }
        }
      }
      if (leader) {
        // The flight is completed (value or exception) exactly once and
        // retired from the in-flight map no matter how the computation
        // ends, so followers can never wait forever on an abandoned
        // promise.
        std::exception_ptr flight_error;
        try {
          auto fresh = std::make_shared<CachedDiagnosis>();
          if (!degraded_) {
            if (deadline_passed(request.deadline)) {
              throw DeadlineError("deadline exceeded before back-trace");
            }
            const Clock::time_point t_bt = Clock::now();
            // A streaming finalize arrives with the back-trace the session
            // maintained incrementally (byte-identical to recomputing, by
            // StreamingBacktrace's construction); reuse it.
            if (request.precomputed_backtrace != nullptr) {
              fresh->backtrace = *request.precomputed_backtrace;
            } else {
              fresh->backtrace =
                  backtrace_with_support(design.graph(), ctx, request.log);
            }
            fresh->subgraph =
                extract_subgraph(design.graph(), fresh->backtrace.candidates);
            fresh->adjacency = subgraph_adjacency(fresh->subgraph);
            result.backtrace_seconds = seconds_since(t_bt);
            metrics_->backtrace.record(result.backtrace_seconds);
          }

          if (deadline_passed(request.deadline)) {
            throw DeadlineError("deadline exceeded before ATPG diagnosis");
          }
          const Clock::time_point t_atpg = Clock::now();
          fresh->base_report =
              diagnose_atpg(ctx, request.log, options_.diagnosis);
          result.atpg_seconds = seconds_since(t_atpg);
          metrics_->atpg.record(result.atpg_seconds);

          if (injector != nullptr) {
            injector->maybe_throw(Seam::kCacheInsert,
                                  "injected cache insert fault");
          }
          entry = fresh;
          cache_.insert(key, entry);
        } catch (...) {
          flight_error = std::current_exception();
        }
        if (flight_error != nullptr) {
          flight.set_exception(flight_error);
        } else {
          flight.set_value(entry);
        }
        {
          std::lock_guard<std::mutex> lock(inflight_mu_);
          inflight_.erase(key);
        }
        if (flight_error != nullptr) std::rethrow_exception(flight_error);
      } else if (follow.valid()) {
        // Coalesced: a leader failure surfaces here as kTransient — this
        // request's retry recomputes independently (and may become the
        // leader itself), so one poisoned flight never condemns followers.
        // The failure is the leader's, already fed to the breaker by the
        // leader's own request; N coalesced waiters must not multiply one
        // fault into N consecutive-failure increments.
        metrics_->cache_coalesced.fetch_add(1, std::memory_order_relaxed);
        try {
          entry = follow.get();
        } catch (const std::exception& e) {
          breaker_exempt = true;
          throw TransientError(std::string("coalesced leader failed: ") +
                               e.what());
        } catch (...) {
          breaker_exempt = true;
          throw TransientError("coalesced leader failed: unknown exception");
        }
        result.cache_hit = true;
      } else {
        result.cache_hit = true;  // entry landed during the re-check
      }
    }

    M3DFL_ASSERT(entry != nullptr);
    if (degraded_) {
      // Service-wide degraded mode: no usable GNN model, serve the
      // unpruned ATPG ranking.
      result.report = entry->base_report;
      result.degraded = true;
      return StatusCode::kOk;
    }

    if (abort_.load(std::memory_order_relaxed)) {
      message = "service shutting down";
      return StatusCode::kShuttingDown;
    }
    if (deadline_passed(request.deadline)) {
      message = "deadline exceeded before GNN inference";
      return StatusCode::kDeadlineExceeded;
    }

    // Per-request scratch only from here on: the report is a copy of the
    // cached base report, the models are shared read-only.
    const Clock::time_point t_inf = Clock::now();
    if (injector != nullptr) {
      injector->maybe_throw(Seam::kModelPredict, "injected model fault");
    }
    result.report = entry->base_report;
    result.pruned = framework_->diagnose(ctx, entry->subgraph, entry->adjacency,
                                        result.report, &result.prediction);
    result.confidence =
        framework_->diagnosis_confidence(entry->backtrace, &result.prediction);
    result.inference_seconds = seconds_since(t_inf);
    metrics_->inference.record(result.inference_seconds);
    return StatusCode::kOk;
  } catch (const ModelUnavailableError& e) {
    if (options_.degraded_fallback && entry != nullptr) {
      // The deterministic prefix survived; only the GNN verdict is lost.
      // Serve the unpruned ATPG ranking instead of failing the request.
      result.report = entry->base_report;
      result.pruned.clear();
      result.prediction = FrameworkPrediction{};
      // The back-trace evidence survived; only the model margin is missing
      // (margin treated as 1.0, so support alone carries the confidence).
      result.confidence =
          framework_->diagnosis_confidence(entry->backtrace, nullptr);
      result.degraded = true;
      return StatusCode::kOk;
    }
    message = e.what();
    return StatusCode::kModelUnavailable;
  } catch (const DeadlineError& e) {
    message = e.what();
    return StatusCode::kDeadlineExceeded;
  } catch (const TransientError& e) {
    message = e.what();
    return StatusCode::kTransient;
  } catch (const std::bad_alloc&) {
    message = "allocation failure";
    return StatusCode::kTransient;
  } catch (const std::exception& e) {
    message = e.what();
    return StatusCode::kInternal;
  } catch (...) {
    // The single-flight leader path rethrows whatever the computation threw
    // — including non-std::exception types from backtrace/ATPG/framework
    // code.  Nothing may escape the worker, so the chain ends broader than
    // std::exception.
    message = "unknown exception";
    return StatusCode::kInternal;
  }
}

std::string result_to_string(const Netlist& netlist,
                             const DiagnosisResult& result) {
  std::ostringstream os;
  os << "design " << result.design << "\n";
  if (result.status != StatusCode::kOk) {
    os << "status: " << status_name(result.status) << " ("
       << result.status_message << ")\n";
    return os.str();
  }
  if (result.degraded) {
    os << "GNN verdict: unavailable (degraded: unpruned ATPG-only ranking)\n";
  } else {
    os << "GNN verdict: tier " << result.prediction.tier << " (confidence "
       << result.prediction.confidence << ", "
       << (result.prediction.high_confidence ? "high" : "low")
       << "), MIVs flagged: " << result.prediction.faulty_mivs.size() << ", "
       << (result.prediction.pruned ? "pruned" : "reordered") << "\n";
    os << "calibrated confidence: " << result.confidence.combined
       << " (support " << result.confidence.backtrace_support << ", margin "
       << result.confidence.model_margin << ", "
       << (result.confidence.low_confidence ? "LOW" : "ok") << ")\n";
  }
  if (result.confidence.noisy_log) {
    os << "noisy log: " << result.confidence.quarantined
       << " response(s) quarantined"
       << (result.confidence.relaxed ? ", relaxed intersection" : "") << "\n";
  }
  os << report_to_string(netlist, result.report);
  return os.str();
}

}  // namespace m3dfl::serve
