#include "serve/service.h"

#include <istream>
#include <sstream>
#include <utility>

#include "core/pipeline.h"
#include "diag/report.h"
#include "graph/backtrace.h"

namespace m3dfl::serve {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

DiagnosisFramework load_framework(std::istream& is) {
  DiagnosisFramework framework;
  framework.load(is);
  return framework;
}

}  // namespace

DiagnosisService::DiagnosisService(DiagnosisFramework framework,
                                   const ServiceOptions& options)
    : options_(options),
      framework_(std::move(framework)),
      cache_(options.cache_capacity, &metrics_),
      queue_(options.queue_capacity) {
  M3DFL_REQUIRE(framework_.trained(),
                "diagnosis service needs a trained framework");
  M3DFL_REQUIRE(options_.num_threads > 0,
                "diagnosis service needs at least one worker thread");
  M3DFL_REQUIRE(options_.max_batch > 0, "max_batch must be positive");
  start_workers();
}

DiagnosisService::DiagnosisService(std::istream& model_stream,
                                   const ServiceOptions& options)
    : DiagnosisService(load_framework(model_stream), options) {}

DiagnosisService::~DiagnosisService() { shutdown(); }

void DiagnosisService::start_workers() {
  pool_.start(static_cast<std::size_t>(options_.num_threads),
              [this](std::size_t) { worker_loop(); });
}

std::int32_t DiagnosisService::register_design(
    std::shared_ptr<const Design> design) {
  M3DFL_REQUIRE(design != nullptr, "cannot register a null design");
  std::lock_guard<std::mutex> lock(designs_mu_);
  designs_.push_back(std::move(design));
  return static_cast<std::int32_t>(designs_.size()) - 1;
}

std::int32_t DiagnosisService::num_designs() const {
  std::lock_guard<std::mutex> lock(designs_mu_);
  return static_cast<std::int32_t>(designs_.size());
}

const Design& DiagnosisService::design(std::int32_t design_id) const {
  return *design_ref(design_id);
}

std::shared_ptr<const Design> DiagnosisService::design_ref(
    std::int32_t design_id) const {
  std::lock_guard<std::mutex> lock(designs_mu_);
  M3DFL_REQUIRE(design_id >= 0 &&
                    design_id < static_cast<std::int32_t>(designs_.size()),
                "unknown design id " + std::to_string(design_id));
  return designs_[static_cast<std::size_t>(design_id)];
}

std::future<DiagnosisResult> DiagnosisService::submit(std::int32_t design_id,
                                                      FailureLog log) {
  design_ref(design_id);  // validate before enqueueing
  Request request;
  request.design_id = design_id;
  request.log = std::move(log);
  request.enqueued = Clock::now();
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    M3DFL_REQUIRE(!shut_down_, "diagnosis service is shut down");
    request.sequence = submitted_++;
  }
  metrics_.requests_submitted.fetch_add(1, std::memory_order_relaxed);
  std::future<DiagnosisResult> future = request.promise.get_future();
  if (!queue_.push(std::move(request))) {
    // Shutdown raced with this submit; account the request as finished so
    // drain() cannot hang, then report the condition to the caller.
    {
      std::lock_guard<std::mutex> lock(drain_mu_);
      ++finished_;
    }
    drain_cv_.notify_all();
    throw Error("m3dfl: diagnosis service is shut down");
  }
  return future;
}

DiagnosisResult DiagnosisService::diagnose(std::int32_t design_id,
                                           FailureLog log) {
  return submit(design_id, std::move(log)).get();
}

void DiagnosisService::drain() {
  std::unique_lock<std::mutex> lock(drain_mu_);
  drain_cv_.wait(lock, [this] { return finished_ == submitted_; });
}

void DiagnosisService::shutdown() {
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    shut_down_ = true;
  }
  drain();
  queue_.close();
  pool_.join();
}

void DiagnosisService::worker_loop() {
  for (;;) {
    std::vector<Request> batch = queue_.pop_batch(
        options_.max_batch,
        [](const Request& r) { return r.design_id; });
    if (batch.empty()) return;  // queue closed and drained
    metrics_.batches.fetch_add(1, std::memory_order_relaxed);
    metrics_.batched_requests.fetch_add(
        static_cast<std::int64_t>(batch.size()), std::memory_order_relaxed);
    for (Request& request : batch) {
      process(request);
    }
    // Drain accounting once per micro-batch keeps the lock off the
    // per-request path.
    {
      std::lock_guard<std::mutex> lock(drain_mu_);
      finished_ += batch.size();
    }
    drain_cv_.notify_all();
  }
}

void DiagnosisService::process(Request& request) {
  const Clock::time_point picked_up = Clock::now();
  try {
    const std::shared_ptr<const Design> design =
        design_ref(request.design_id);
    const DesignContext ctx = design->context();

    DiagnosisResult result;
    result.sequence = request.sequence;
    result.design = design->name();
    result.queue_seconds = std::chrono::duration<double>(
                               picked_up - request.enqueued)
                               .count();
    metrics_.queue_wait.record(result.queue_seconds);

    // Cached deterministic prefix: back-trace -> subgraph -> features ->
    // normalized adjacency -> ATPG base report.
    const std::string key =
        DiagnosisCache::make_key(request.design_id, request.log);
    std::shared_ptr<const CachedDiagnosis> entry = cache_.lookup(key);
    result.cache_hit = entry != nullptr;
    if (entry == nullptr) {
      // Single-flight: either become the leader for this key or wait on a
      // worker that is already computing it.
      std::promise<std::shared_ptr<const CachedDiagnosis>> flight;
      std::shared_future<std::shared_ptr<const CachedDiagnosis>> follow;
      bool leader = false;
      {
        std::lock_guard<std::mutex> lock(inflight_mu_);
        const auto it = inflight_.find(key);
        if (it != inflight_.end()) {
          follow = it->second;
        } else {
          // A leader may have finished (insert + inflight erase) between the
          // counted lookup above and this lock; re-check without accounting.
          entry = cache_.peek(key);
          if (entry == nullptr) {
            leader = true;
            inflight_.emplace(key, flight.get_future().share());
          }
        }
      }
      if (leader) {
        try {
          auto fresh = std::make_shared<CachedDiagnosis>();
          const Clock::time_point t_bt = Clock::now();
          const std::vector<NodeId> nodes =
              backtrace_candidates(design->graph(), ctx, request.log);
          fresh->subgraph = extract_subgraph(design->graph(), nodes);
          fresh->adjacency = subgraph_adjacency(fresh->subgraph);
          result.backtrace_seconds = seconds_since(t_bt);
          metrics_.backtrace.record(result.backtrace_seconds);

          const Clock::time_point t_atpg = Clock::now();
          fresh->base_report =
              diagnose_atpg(ctx, request.log, options_.diagnosis);
          result.atpg_seconds = seconds_since(t_atpg);
          metrics_.atpg.record(result.atpg_seconds);

          entry = fresh;
          cache_.insert(key, entry);
          flight.set_value(entry);
        } catch (...) {
          flight.set_exception(std::current_exception());
          std::lock_guard<std::mutex> lock(inflight_mu_);
          inflight_.erase(key);
          throw;
        }
        std::lock_guard<std::mutex> lock(inflight_mu_);
        inflight_.erase(key);
      } else if (follow.valid()) {
        // Coalesced: the leader's exception (if any) rethrows here, which is
        // deterministic — the recomputation would fail identically.
        metrics_.cache_coalesced.fetch_add(1, std::memory_order_relaxed);
        entry = follow.get();
        result.cache_hit = true;
      } else {
        result.cache_hit = true;  // entry landed during the re-check
      }
    }

    // Per-request scratch only from here on: the report is a copy of the
    // cached base report, the models are shared read-only.
    const Clock::time_point t_inf = Clock::now();
    result.report = entry->base_report;
    result.pruned = framework_.diagnose(ctx, entry->subgraph, entry->adjacency,
                                        result.report, &result.prediction);
    result.inference_seconds = seconds_since(t_inf);
    metrics_.inference.record(result.inference_seconds);

    result.total_seconds = std::chrono::duration<double>(
                               Clock::now() - request.enqueued)
                               .count();
    metrics_.end_to_end.record(result.total_seconds);
    metrics_.requests_completed.fetch_add(1, std::memory_order_relaxed);
    request.promise.set_value(std::move(result));
  } catch (...) {
    metrics_.requests_failed.fetch_add(1, std::memory_order_relaxed);
    request.promise.set_exception(std::current_exception());
  }
}

std::string result_to_string(const Netlist& netlist,
                             const DiagnosisResult& result) {
  std::ostringstream os;
  os << "design " << result.design << "\n";
  os << "GNN verdict: tier " << result.prediction.tier << " (confidence "
     << result.prediction.confidence << ", "
     << (result.prediction.high_confidence ? "high" : "low")
     << "), MIVs flagged: " << result.prediction.faulty_mivs.size() << ", "
     << (result.prediction.pruned ? "pruned" : "reordered") << "\n";
  os << report_to_string(netlist, result.report);
  return os.str();
}

}  // namespace m3dfl::serve
