// Concurrent diagnosis serving runtime (paper Sec. V-G / Fig. 9).
//
// The pretrained DiagnosisFramework is the reusable asset of the paper's
// deployment story: diagnosing a new failing die costs only back-trace +
// inference, never retraining.  DiagnosisService turns that observation into
// a long-lived engine: it loads a serialized framework once, registers any
// number of prepared designs, and answers diagnose(failure_log) requests
// end-to-end —
//
//   submit -> admission control (validation, breaker, load shedding)
//          -> bounded MPMC queue -> micro-batcher -> worker pool
//          -> [LRU cache: back-trace -> subgraph -> features -> normalized
//              adjacency -> ATPG base report]
//          -> three-model GNN inference -> pruning & reordering -> result
//
// Concurrency model: the framework and the registered designs are shared
// read-only; every request uses only per-request scratch state, so
// concurrent results are bitwise identical to the single-threaded path
// (tests/serve_test.cc asserts this).  The cache memoizes the deterministic
// per-log prefix, so repeated failure signatures (retests, systematic
// defects) cost only inference.  Concurrent requests for the same signature
// are coalesced (single-flight): one worker computes, the rest wait on its
// result, so a retest storm never multiplies back-trace/ATPG work across
// the pool.
//
// Fault tolerance: worker exceptions never cross the service boundary.
// Every request resolves to a DiagnosisResult carrying a serve::StatusCode
// (see serve/status.h).  Per-request deadlines are checked cooperatively at
// stage boundaries; kTransient failures retry with decorrelated-jitter
// exponential backoff (deterministic per request: the jitter stream is
// seeded from retry_seed ^ sequence); a per-design circuit breaker fails
// submissions fast while a design keeps failing; and when the GNN model is
// unavailable — corrupt stream at load, or a predict-time failure — the
// service can fall back to unpruned ATPG-only ranking, marking the result
// degraded instead of failing it.  serve/fault_injector.h threads
// deterministic chaos through every one of these seams under test.
#ifndef M3DFL_SERVE_SERVICE_H_
#define M3DFL_SERVE_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/framework.h"
#include "serve/breaker.h"
#include "serve/cache.h"
#include "serve/fault_injector.h"
#include "serve/metrics.h"
#include "serve/request_queue.h"
#include "serve/status.h"
#include "serve/thread_pool.h"

namespace m3dfl::serve {

struct ServiceOptions {
  std::int32_t num_threads = 4;
  std::size_t queue_capacity = 256;
  // Micro-batch bound: a worker drains up to this many queued same-design
  // requests at once (design lookup and cache locality amortize).
  std::size_t max_batch = 8;
  // LRU entries across all designs; 0 disables caching.
  std::size_t cache_capacity = 128;
  // Options for the ATPG base diagnosis the GNN verdict refines.
  DiagnosisOptions diagnosis;

  // ---- fault-tolerance knobs ----
  // Default per-request deadline in milliseconds; 0 = no deadline.  A
  // request whose deadline passes fails with kDeadlineExceeded at the next
  // stage boundary instead of occupying a worker to completion.
  double default_deadline_ms = 0.0;
  // Retry budget for kTransient failures (0 = fail on first attempt).
  std::int32_t max_retries = 2;
  // Decorrelated-jitter exponential backoff between retries:
  //   sleep_{i+1} = min(cap, uniform(base, 3 * sleep_i)).
  double backoff_base_ms = 1.0;
  double backoff_cap_ms = 100.0;
  // Seed for the per-request jitter streams (stream i = seed ^ sequence),
  // so retry timing is reproducible under test.
  std::uint64_t retry_seed = 0x5EEDu;
  // Admission control: when > 0, submit() sheds load with kOverloaded once
  // the queue holds >= shed_watermark requests (or is full), instead of
  // blocking the caller.  0 keeps the legacy blocking backpressure.
  std::size_t shed_watermark = 0;
  // Per-design circuit breaker (see serve/breaker.h); threshold 0 disables.
  BreakerOptions breaker;
  // When true: a framework stream that is missing/corrupt at construction,
  // or a model failure at predict time, degrades the affected requests to
  // unpruned ATPG-only candidate ranking (result.degraded = true) instead
  // of failing them.
  bool degraded_fallback = false;
  // When true, register_design() runs the m3dfl::lint design passes and
  // submit() rejects every request against a design that failed them with
  // kLintRejected (the design can never produce a correct diagnosis).
  // Lint runs once per registration, never per request.
  bool lint_admission = true;
  // When true, workers idle until resume(); lets tests stage a queue
  // deterministically (admission control, abort-shutdown).
  bool start_paused = false;
  // Model generation this service instance serves, stamped into every
  // result's `model_generation`.  The fleet layer (serve/fleet.h) builds one
  // service per registry generation, so a result's tag proves which artifact
  // produced it — the reload-under-fire chaos test keys on this.
  std::uint64_t model_generation = 0;
  // When non-null, the service records into this externally owned Metrics
  // instead of its own.  The fleet layer points every hot-reload epoch of a
  // tenant's shard at one per-tenant instance, so counters and latency
  // histograms accumulate across reloads.  Must outlive the service.
  Metrics* external_metrics = nullptr;
  // Deterministic chaos for tests; null (production) costs one pointer
  // check per seam.
  std::shared_ptr<FaultInjector> fault_injector;
};

// Per-submit overrides.
struct SubmitOptions {
  // Milliseconds from submission; 0 = use ServiceOptions::default_deadline_ms.
  double deadline_ms = 0.0;
  // Streaming finalize (serve/session.h): the session already maintained
  // this back-trace incrementally, byte-identical to what
  // backtrace_with_support would compute over the submitted log — the
  // worker reuses it instead of recomputing, and the cache entry it fills
  // is exactly what a batch request for the same log would produce.
  std::shared_ptr<const BacktraceResult> precomputed_backtrace;
};

// Everything the service produces for one failure log.
struct DiagnosisResult {
  std::uint64_t sequence = 0;        // submission order, from 0
  std::string design;                // registered design name
  // ServiceOptions::model_generation of the service that produced this
  // result (0 outside fleet serving).
  std::uint64_t model_generation = 0;
  StatusCode status = StatusCode::kOk;
  std::string status_message;        // empty on kOk
  bool degraded = false;             // ATPG-only fallback (status == kOk)
  std::int32_t attempts = 1;         // attempts consumed (retries + 1)
  // Calibrated end-to-end confidence (diag/report.h): back-trace support ×
  // GNN softmax margin, with the noisy_log / low_confidence flags callers
  // use to distinguish clean localization from best-effort-under-suspect-
  // data.  Default-initialized for failed or service-wide-degraded requests
  // (no back-trace ran there).
  DiagnosisConfidence confidence;
  FrameworkPrediction prediction;
  DiagnosisReport report;            // refined (pruned/reordered) report
  std::vector<Candidate> pruned;     // for the backup dictionary
  bool cache_hit = false;
  bool ok() const { return status == StatusCode::kOk; }
  // Per-request stage timings (seconds); informational, not deterministic.
  double queue_seconds = 0.0;
  double backtrace_seconds = 0.0;
  double atpg_seconds = 0.0;
  double inference_seconds = 0.0;
  double total_seconds = 0.0;
};

// Next decorrelated-jitter backoff: min(cap, uniform(base, 3 * prev)), all
// in milliseconds.  Exposed for tests; deterministic per Rng stream.
double next_backoff_ms(Rng& rng, double base_ms, double cap_ms,
                       double prev_ms);

enum class ShutdownMode {
  kDrain,  // finish everything already submitted, then stop
  kAbort,  // fail queued (unstarted) requests with kShuttingDown, then stop
};

class SessionManager;  // serve/session.h: streaming session mode

class DiagnosisService {
 public:
  using Clock = std::chrono::steady_clock;
  // Takes ownership of an already trained framework.
  explicit DiagnosisService(DiagnosisFramework framework,
                            const ServiceOptions& options = {});
  // Shares an already trained framework (fleet serving: many shard services
  // over registry-resident models; the registry entry must stay alive via
  // this shared_ptr, which the service holds until destruction).
  explicit DiagnosisService(std::shared_ptr<const DiagnosisFramework> framework,
                            const ServiceOptions& options = {});
  // Loads the framework from a serialized model stream (the asset written
  // by DiagnosisFramework::save / `m3dfl_tool train`).  Throws m3dfl::Error
  // on a malformed stream — unless options.degraded_fallback is set, in
  // which case the service starts in degraded ATPG-only mode instead.
  explicit DiagnosisService(std::istream& model_stream,
                            const ServiceOptions& options = {});
  ~DiagnosisService();

  DiagnosisService(const DiagnosisService&) = delete;
  DiagnosisService& operator=(const DiagnosisService&) = delete;

  // Registers a design for serving; returns its design id.  The service
  // shares ownership, so the caller may drop its reference.  With
  // options.lint_admission the design is statically analysed here (once);
  // a design with lint errors stays registered but every submit() against
  // it fails fast with kLintRejected.
  std::int32_t register_design(std::shared_ptr<const Design> design);
  // Lint-admission verdict for a registered design: empty when the design
  // passed (or lint_admission is off), else the stored rejection message.
  std::string design_lint_error(std::int32_t design_id) const;
  std::int32_t num_designs() const;
  const Design& design(std::int32_t design_id) const;

  // Enqueues one failure log; the future resolves when a worker finishes
  // (or immediately, for requests rejected at admission: invalid input,
  // open breaker, shed load).  The future never carries an exception — all
  // failures surface as DiagnosisResult::status.  Throws m3dfl::Error only
  // for an unknown design id or submission after shutdown().
  std::future<DiagnosisResult> submit(std::int32_t design_id, FailureLog log,
                                      const SubmitOptions& submit_options = {});

  // Convenience: submit + wait.
  DiagnosisResult diagnose(std::int32_t design_id, FailureLog log,
                           const SubmitOptions& submit_options = {});

  // Releases workers started with options.start_paused; idempotent.
  void resume();

  // Blocks until every submitted request has completed or failed.
  void drain();
  // Requests submitted but not yet resolved (the fleet quota gate and epoch
  // reaper poll this; non-blocking).
  std::uint64_t pending() const;
  // kDrain: drains, closes the queue, joins the workers.  kAbort: fails
  // every queued-but-unstarted request with kShuttingDown deterministically,
  // then closes and joins.  Idempotent; further submit() calls throw.
  void shutdown(ShutdownMode mode = ShutdownMode::kDrain);

  // True when the service runs without a usable GNN model (construction
  // fell back under degraded_fallback); every result is ATPG-only.
  bool degraded() const { return degraded_; }

  const Metrics& metrics() const { return *metrics_; }
  const DiagnosisCache& cache() const { return cache_; }
  const DiagnosisFramework& framework() const { return *framework_; }
  const ServiceOptions& options() const { return options_; }
  // Breaker state for a registered design (for tests/introspection).
  CircuitBreaker::State breaker_state(std::int32_t design_id) const;

 private:
  // The streaming session layer records its metrics next to the request
  // counters and reuses the admission helpers.
  friend class SessionManager;

  struct Request {
    std::uint64_t sequence = 0;
    std::int32_t design_id = 0;
    FailureLog log;
    Clock::time_point enqueued;
    Clock::time_point deadline = Clock::time_point::max();
    // This request is the circuit breaker's half-open probe: its terminal
    // status must always resolve the probe (success/failure/abandon).
    bool probe = false;
    // See SubmitOptions::precomputed_backtrace.
    std::shared_ptr<const BacktraceResult> precomputed_backtrace;
    std::promise<DiagnosisResult> promise;
  };

  struct LoadedFramework {
    std::shared_ptr<const DiagnosisFramework> framework;
    bool degraded = false;
    std::string why;  // what went wrong when degraded
  };

  DiagnosisService(LoadedFramework loaded, const ServiceOptions& options);
  // Loads from a stream, degrading instead of throwing when
  // options.degraded_fallback is set.
  static LoadedFramework load_framework(std::istream& is,
                                        const ServiceOptions& options);

  void start_workers();
  void worker_loop();
  void process(Request& request);
  // One diagnosis attempt; classifies every failure into a StatusCode.
  // Sets `breaker_exempt` when a failure says nothing about this design's
  // health (a coalesced leader's failure, already counted — or retried —
  // by the leader's own request) and must not feed the circuit breaker.
  StatusCode attempt_once(Request& request, const Design& design,
                          const DesignContext& ctx, DiagnosisResult& result,
                          std::string& message, bool& breaker_exempt);
  // Fulfills the promise with a terminal status and records metrics.  Does
  // NOT touch drain accounting — the caller owns that.
  void complete(Request& request, DiagnosisResult&& result, StatusCode status,
                std::string message);
  // Admission-path rejection: completes the request immediately and counts
  // it as finished for drain().
  std::future<DiagnosisResult> reject(Request&& request,
                                      std::future<DiagnosisResult> future,
                                      const Design& design, StatusCode status,
                                      std::string message);
  std::shared_ptr<const Design> design_ref(std::int32_t design_id) const;
  CircuitBreaker* breaker_for(std::int32_t design_id) const;

  const ServiceOptions options_;
  std::shared_ptr<const DiagnosisFramework> framework_;
  bool degraded_ = false;
  Metrics own_metrics_;
  Metrics* metrics_;  // &own_metrics_ or options.external_metrics
  DiagnosisCache cache_;
  RequestQueue<Request> queue_;
  WorkerPool pool_;

  mutable std::mutex designs_mu_;
  std::vector<std::shared_ptr<const Design>> designs_;
  std::vector<std::unique_ptr<CircuitBreaker>> breakers_;
  // Per design: empty = admitted; else the lint rejection message submit()
  // fails with (computed once at register_design).
  std::vector<std::string> lint_errors_;

  // Single-flight: keys a worker is currently computing.  A concurrent miss
  // on the same key waits on the leader's future instead of recomputing.
  std::mutex inflight_mu_;
  std::unordered_map<std::string,
                     std::shared_future<std::shared_ptr<const CachedDiagnosis>>>
      inflight_;

  // start_paused gate.
  std::mutex pause_mu_;
  std::condition_variable pause_cv_;
  bool paused_ = false;

  // Abort-shutdown flag: workers fail (rather than process) queued requests.
  std::atomic<bool> abort_{false};

  // drain() bookkeeping: submitted vs finished (completed or failed).
  mutable std::mutex drain_mu_;
  std::condition_variable drain_cv_;
  std::uint64_t submitted_ = 0;
  std::uint64_t finished_ = 0;
  bool shut_down_ = false;
};

// Boundary validation: runs the m3dfl::lint failure-log pass over `log`
// against the design's pattern count, scan architecture, compactor, and
// primary outputs — including the observation-point existence check
// (log-obs-missing) that the pre-lint validator missed.  Returns an empty
// string when no error-severity diagnostic fires, else the first error's
// message (the service maps it to kInvalidInput).
std::string validate_failure_log(const Design& design, const FailureLog& log);

// Renders a result the way `m3dfl_tool diagnose` prints one: the GNN
// verdict line plus the refined candidate report; failed requests render
// their status instead, degraded requests an ATPG-only marker.
// Deterministic (timings and cache state are excluded), so byte-comparing
// rendered results is how the tests pin concurrent == serial behaviour.
std::string result_to_string(const Netlist& netlist,
                             const DiagnosisResult& result);

}  // namespace m3dfl::serve

#endif  // M3DFL_SERVE_SERVICE_H_
