// Concurrent diagnosis serving runtime (paper Sec. V-G / Fig. 9).
//
// The pretrained DiagnosisFramework is the reusable asset of the paper's
// deployment story: diagnosing a new failing die costs only back-trace +
// inference, never retraining.  DiagnosisService turns that observation into
// a long-lived engine: it loads a serialized framework once, registers any
// number of prepared designs, and answers diagnose(failure_log) requests
// end-to-end —
//
//   submit -> bounded MPMC queue -> micro-batcher -> worker pool
//          -> [LRU cache: back-trace -> subgraph -> features -> normalized
//              adjacency -> ATPG base report]
//          -> three-model GNN inference -> pruning & reordering -> result
//
// Concurrency model: the framework and the registered designs are shared
// read-only; every request uses only per-request scratch state, so
// concurrent results are bitwise identical to the single-threaded path
// (tests/serve_test.cc asserts this).  The cache memoizes the deterministic
// per-log prefix, so repeated failure signatures (retests, systematic
// defects) cost only inference.  Concurrent requests for the same signature
// are coalesced (single-flight): one worker computes, the rest wait on its
// result, so a retest storm never multiplies back-trace/ATPG work across
// the pool.
#ifndef M3DFL_SERVE_SERVICE_H_
#define M3DFL_SERVE_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/framework.h"
#include "serve/cache.h"
#include "serve/metrics.h"
#include "serve/request_queue.h"
#include "serve/thread_pool.h"

namespace m3dfl::serve {

struct ServiceOptions {
  std::int32_t num_threads = 4;
  std::size_t queue_capacity = 256;
  // Micro-batch bound: a worker drains up to this many queued same-design
  // requests at once (design lookup and cache locality amortize).
  std::size_t max_batch = 8;
  // LRU entries across all designs; 0 disables caching.
  std::size_t cache_capacity = 128;
  // Options for the ATPG base diagnosis the GNN verdict refines.
  DiagnosisOptions diagnosis;
};

// Everything the service produces for one failure log.
struct DiagnosisResult {
  std::uint64_t sequence = 0;        // submission order, from 0
  std::string design;                // registered design name
  FrameworkPrediction prediction;
  DiagnosisReport report;            // refined (pruned/reordered) report
  std::vector<Candidate> pruned;     // for the backup dictionary
  bool cache_hit = false;
  // Per-request stage timings (seconds); informational, not deterministic.
  double queue_seconds = 0.0;
  double backtrace_seconds = 0.0;
  double atpg_seconds = 0.0;
  double inference_seconds = 0.0;
  double total_seconds = 0.0;
};

class DiagnosisService {
 public:
  // Takes ownership of an already trained framework.
  explicit DiagnosisService(DiagnosisFramework framework,
                            const ServiceOptions& options = {});
  // Loads the framework from a serialized model stream (the asset written
  // by DiagnosisFramework::save / `m3dfl_tool train`).  Throws m3dfl::Error
  // on a malformed stream.
  explicit DiagnosisService(std::istream& model_stream,
                            const ServiceOptions& options = {});
  ~DiagnosisService();

  DiagnosisService(const DiagnosisService&) = delete;
  DiagnosisService& operator=(const DiagnosisService&) = delete;

  // Registers a design for serving; returns its design id.  The service
  // shares ownership, so the caller may drop its reference.
  std::int32_t register_design(std::shared_ptr<const Design> design);
  std::int32_t num_designs() const;
  const Design& design(std::int32_t design_id) const;

  // Enqueues one failure log; the future resolves when a worker finishes.
  // Blocks while the queue is full; throws m3dfl::Error after shutdown().
  std::future<DiagnosisResult> submit(std::int32_t design_id, FailureLog log);

  // Convenience: submit + wait.
  DiagnosisResult diagnose(std::int32_t design_id, FailureLog log);

  // Blocks until every submitted request has completed or failed.
  void drain();
  // Drains, closes the queue, and joins the workers; idempotent.  Further
  // submit() calls throw.
  void shutdown();

  const Metrics& metrics() const { return metrics_; }
  const DiagnosisCache& cache() const { return cache_; }
  const DiagnosisFramework& framework() const { return framework_; }
  const ServiceOptions& options() const { return options_; }

 private:
  struct Request {
    std::uint64_t sequence = 0;
    std::int32_t design_id = 0;
    FailureLog log;
    std::chrono::steady_clock::time_point enqueued;
    std::promise<DiagnosisResult> promise;
  };

  void start_workers();
  void worker_loop();
  void process(Request& request);
  std::shared_ptr<const Design> design_ref(std::int32_t design_id) const;

  const ServiceOptions options_;
  DiagnosisFramework framework_;
  Metrics metrics_;
  DiagnosisCache cache_;
  RequestQueue<Request> queue_;
  WorkerPool pool_;

  mutable std::mutex designs_mu_;
  std::vector<std::shared_ptr<const Design>> designs_;

  // Single-flight: keys a worker is currently computing.  A concurrent miss
  // on the same key waits on the leader's future instead of recomputing.
  std::mutex inflight_mu_;
  std::unordered_map<std::string,
                     std::shared_future<std::shared_ptr<const CachedDiagnosis>>>
      inflight_;

  // drain() bookkeeping: submitted vs finished (completed or failed).
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;
  std::uint64_t submitted_ = 0;
  std::uint64_t finished_ = 0;
  bool shut_down_ = false;
};

// Renders a result the way `m3dfl_tool diagnose` prints one: the GNN
// verdict line plus the refined candidate report.  Deterministic (timings
// and cache state are excluded), so byte-comparing rendered results is how
// the tests pin concurrent == serial behaviour.
std::string result_to_string(const Netlist& netlist,
                             const DiagnosisResult& result);

}  // namespace m3dfl::serve

#endif  // M3DFL_SERVE_SERVICE_H_
