// LRU cache for the deterministic per-log prefix of diagnosis.
//
// Two failure logs with identical content (same design, same failing
// pattern set, same failing bits) back-trace to the same candidate set,
// extract the same subgraph/features, normalize to the same adjacency, and
// produce the same ATPG base report — the entire pre-GNN pipeline is a pure
// function of (design, log).  Retest traffic and systematic defects repeat
// failure signatures constantly in production, so the service memoizes that
// prefix behind an exact key (no hash-collision risk: the key is the
// canonical text serialization of the log).
//
// Entries are immutable and shared: a hit hands out a shared_ptr that stays
// valid after eviction, so readers never block writers beyond the map
// operation itself.
#ifndef M3DFL_SERVE_CACHE_H_
#define M3DFL_SERVE_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "diag/atpg_diagnosis.h"
#include "diag/failure_log.h"
#include "gnn/csr.h"
#include "graph/backtrace.h"
#include "graph/subgraph.h"
#include "serve/metrics.h"

namespace m3dfl::serve {

// The cached, reusable prefix of one log's diagnosis.
struct CachedDiagnosis {
  // Full back-trace outcome: candidates plus support fractions, quarantined
  // responses, and the relaxation flag — the evidence-quality inputs of the
  // calibrated confidence (a pure function of (design, log), so cacheable).
  BacktraceResult backtrace;
  Subgraph subgraph;             // back-traced candidate subgraph + features
  NormalizedAdjacency adjacency; // its normalized adjacency (Eq. 1 input)
  DiagnosisReport base_report;   // ATPG report before GNN refinement
};

class DiagnosisCache {
 public:
  // capacity 0 disables caching (every lookup misses, inserts are dropped).
  // When `metrics` is non-null, hit/miss/eviction counters mirror into it.
  explicit DiagnosisCache(std::size_t capacity, Metrics* metrics = nullptr);

  // Exact cache key for one (design, failure log) pair.
  static std::string make_key(std::int32_t design_id, const FailureLog& log);

  // Returns the entry (marking it most recently used) or nullptr.
  std::shared_ptr<const CachedDiagnosis> lookup(const std::string& key);
  // lookup() without hit/miss accounting: the single-flight re-check in the
  // service must not double-count a request it already counted.
  std::shared_ptr<const CachedDiagnosis> peek(const std::string& key);
  // Inserts (or refreshes) an entry, evicting the least recently used ones
  // beyond capacity.
  void insert(const std::string& key,
              std::shared_ptr<const CachedDiagnosis> value);

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  std::int64_t hits() const;
  std::int64_t misses() const;
  std::int64_t evictions() const;

 private:
  using LruList =
      std::list<std::pair<std::string, std::shared_ptr<const CachedDiagnosis>>>;

  const std::size_t capacity_;
  Metrics* const metrics_;
  mutable std::mutex mu_;
  LruList lru_;  // front = most recently used
  std::unordered_map<std::string, LruList::iterator> index_;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
  std::int64_t evictions_ = 0;
};

}  // namespace m3dfl::serve

#endif  // M3DFL_SERVE_CACHE_H_
