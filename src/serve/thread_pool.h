// Fixed-size worker pool.
//
// Deliberately minimal: the pool owns the threads, the service owns the work
// loop (each thread runs the same body until the request queue closes).
// Join is idempotent and runs from the destructor, so a service that throws
// during setup still tears down its threads.
#ifndef M3DFL_SERVE_THREAD_POOL_H_
#define M3DFL_SERVE_THREAD_POOL_H_

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace m3dfl::serve {

class WorkerPool {
 public:
  WorkerPool() = default;
  ~WorkerPool() { join(); }

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  // Spawns `num_threads` threads, each running body(thread_index).  The body
  // must return once the service's queue is closed and drained.
  void start(std::size_t num_threads,
             const std::function<void(std::size_t)>& body);

  // Waits for every worker to finish; safe to call repeatedly.
  void join();

  std::size_t size() const { return threads_.size(); }

 private:
  std::vector<std::thread> threads_;
};

}  // namespace m3dfl::serve

#endif  // M3DFL_SERVE_THREAD_POOL_H_
