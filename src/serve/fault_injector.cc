#include "serve/fault_injector.h"

namespace m3dfl::serve {

const char* seam_name(Seam seam) {
  switch (seam) {
    case Seam::kQueueAdmit: return "queue-admit";
    case Seam::kCacheLookup: return "cache-lookup";
    case Seam::kCacheInsert: return "cache-insert";
    case Seam::kModelPredict: return "model-predict";
    case Seam::kFrameworkLoad: return "framework-load";
    case Seam::kAdmissionLint: return "admission-lint";
    case Seam::kStreamStall: return "stream-stall";
    case Seam::kStreamGarble: return "stream-garble";
    case Seam::kStreamReorder: return "stream-reorder";
    case Seam::kStreamDisconnect: return "stream-disconnect";
    case Seam::kJournalTornWrite: return "journal-torn-write";
    case Seam::kJournalFsync: return "journal-fsync";
    case Seam::kJournalCorrupt: return "journal-corrupt";
    case Seam::kStreamMalformedBytes: return "stream-malformed-bytes";
  }
  return "unknown";
}

}  // namespace m3dfl::serve
