#include "serve/fault_injector.h"

#include <utility>

namespace m3dfl::serve {

const char* seam_name(Seam seam) {
  switch (seam) {
    case Seam::kQueueAdmit: return "queue-admit";
    case Seam::kCacheLookup: return "cache-lookup";
    case Seam::kCacheInsert: return "cache-insert";
    case Seam::kModelPredict: return "model-predict";
    case Seam::kFrameworkLoad: return "framework-load";
  }
  return "unknown";
}

FaultInjector::FaultInjector(std::uint64_t seed) {
  // Each seam draws from its own stream, so arming or exercising one seam
  // never perturbs another's trigger sequence.
  for (int s = 0; s < kNumSeams; ++s) {
    seams_[static_cast<std::size_t>(s)].rng.reseed(
        seed ^ (0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(s + 1)));
  }
}

void FaultInjector::arm(Seam seam, double probability, FaultKind kind) {
  M3DFL_REQUIRE(probability >= 0.0 && probability <= 1.0,
                "fault probability must be in [0, 1]");
  std::lock_guard<std::mutex> lock(mu_);
  SeamState& state = seams_[static_cast<std::size_t>(seam)];
  state.probability = probability;
  state.kind = kind;
}

void FaultInjector::arm_nth(Seam seam, std::vector<std::uint64_t> calls,
                            FaultKind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  SeamState& state = seams_[static_cast<std::size_t>(seam)];
  state.nth = std::set<std::uint64_t>(calls.begin(), calls.end());
  M3DFL_REQUIRE(state.nth.count(0) == 0, "scripted trigger calls are 1-based");
  state.kind = kind;
}

bool FaultInjector::should_fail(Seam seam) {
  std::lock_guard<std::mutex> lock(mu_);
  SeamState& state = seams_[static_cast<std::size_t>(seam)];
  ++state.num_calls;
  bool fail = state.nth.count(state.num_calls) > 0;
  if (!fail && state.probability > 0.0) {
    // One draw per call: the i-th call always sees the i-th variate, so the
    // trigger count over N calls is interleaving-independent.
    fail = state.rng.next_double() < state.probability;
  }
  if (fail) ++state.num_triggered;
  return fail;
}

void FaultInjector::maybe_throw(Seam seam, const std::string& what) {
  FaultKind kind;
  {
    std::lock_guard<std::mutex> lock(mu_);
    kind = seams_[static_cast<std::size_t>(seam)].kind;
  }
  if (!should_fail(seam)) return;
  if (kind == FaultKind::kModelUnavailable) throw ModelUnavailableError(what);
  throw TransientError(what);
}

std::int64_t FaultInjector::calls(Seam seam) const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<std::int64_t>(
      seams_[static_cast<std::size_t>(seam)].num_calls);
}

std::int64_t FaultInjector::triggered(Seam seam) const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<std::int64_t>(
      seams_[static_cast<std::size_t>(seam)].num_triggered);
}

std::int64_t FaultInjector::total_triggered() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::int64_t total = 0;
  for (const SeamState& state : seams_) {
    total += static_cast<std::int64_t>(state.num_triggered);
  }
  return total;
}

}  // namespace m3dfl::serve
