#include "serve/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/table.h"

namespace m3dfl::serve {
namespace {

constexpr double kNanosPerSecond = 1e9;

// Bucket b holds latencies in (2^(b-1), 2^b] microseconds (bucket 0: <= 1us).
std::int32_t bucket_for_nanos(std::int64_t nanos) {
  const std::int64_t micros = std::max<std::int64_t>(1, nanos / 1000);
  const std::int32_t b = std::bit_width(static_cast<std::uint64_t>(micros)) - 1;
  return std::min(b, 31);
}

double bucket_upper_seconds(std::int32_t bucket) {
  return std::ldexp(1e-6, bucket);  // 2^bucket microseconds
}

std::string fmt_seconds(double s) {
  if (s <= 0.0) return "0";
  if (s < 1e-3) return m3dfl::TablePrinter::fmt(s * 1e6, 1) + " us";
  if (s < 1.0) return m3dfl::TablePrinter::fmt(s * 1e3, 2) + " ms";
  return m3dfl::TablePrinter::fmt(s, 2) + " s";
}

}  // namespace

void LatencyHistogram::record(double seconds) {
  const std::int64_t nanos =
      seconds <= 0.0 ? 0
                     : static_cast<std::int64_t>(seconds * kNanosPerSecond);
  buckets_[static_cast<std::size_t>(bucket_for_nanos(nanos))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  total_nanos_.fetch_add(nanos, std::memory_order_relaxed);
  std::int64_t prev = max_nanos_.load(std::memory_order_relaxed);
  while (nanos > prev &&
         !max_nanos_.compare_exchange_weak(prev, nanos,
                                           std::memory_order_relaxed)) {
  }
}

double LatencyHistogram::total_seconds() const {
  return static_cast<double>(total_nanos_.load(std::memory_order_relaxed)) /
         kNanosPerSecond;
}

double LatencyHistogram::mean_seconds() const {
  const std::int64_t n = count();
  return n == 0 ? 0.0 : total_seconds() / static_cast<double>(n);
}

double LatencyHistogram::max_seconds() const {
  return static_cast<double>(max_nanos_.load(std::memory_order_relaxed)) /
         kNanosPerSecond;
}

double LatencyHistogram::quantile_seconds(double q) const {
  const std::int64_t n = count();
  if (n == 0) return 0.0;
  const std::int64_t rank = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::ceil(q * static_cast<double>(n))));
  std::int64_t seen = 0;
  for (std::int32_t b = 0; b < kNumBuckets; ++b) {
    seen += buckets_[static_cast<std::size_t>(b)].load(
        std::memory_order_relaxed);
    if (seen >= rank) return bucket_upper_seconds(b);
  }
  return max_seconds();
}

void Metrics::record_status(StatusCode code) {
  status_counts[static_cast<std::size_t>(code)].fetch_add(
      1, std::memory_order_relaxed);
  if (code == StatusCode::kOk) {
    requests_completed.fetch_add(1, std::memory_order_relaxed);
  } else {
    requests_failed.fetch_add(1, std::memory_order_relaxed);
  }
  if (code == StatusCode::kDeadlineExceeded) {
    deadline_expirations.fetch_add(1, std::memory_order_relaxed);
  }
}

std::int64_t Metrics::status_count(StatusCode code) const {
  return status_counts[static_cast<std::size_t>(code)].load(
      std::memory_order_relaxed);
}

double Metrics::cache_hit_rate() const {
  const std::int64_t hits = cache_hits.load(std::memory_order_relaxed);
  const std::int64_t total =
      hits + cache_misses.load(std::memory_order_relaxed);
  return total == 0 ? 0.0
                    : static_cast<double>(hits) / static_cast<double>(total);
}

double Metrics::mean_batch_size() const {
  const std::int64_t b = batches.load(std::memory_order_relaxed);
  return b == 0 ? 0.0
               : static_cast<double>(
                     batched_requests.load(std::memory_order_relaxed)) /
                     static_cast<double>(b);
}

std::string Metrics::report() const {
  TablePrinter counters({"counter", "value"});
  counters.add_row({"requests submitted",
                    std::to_string(requests_submitted.load())});
  counters.add_row({"requests completed",
                    std::to_string(requests_completed.load())});
  counters.add_row({"requests failed", std::to_string(requests_failed.load())});
  counters.add_row({"batches", std::to_string(batches.load())});
  counters.add_row({"mean batch size", TablePrinter::fmt(mean_batch_size(), 2)});
  counters.add_row({"cache hits", std::to_string(cache_hits.load())});
  counters.add_row({"cache misses", std::to_string(cache_misses.load())});
  counters.add_row({"cache evictions", std::to_string(cache_evictions.load())});
  counters.add_row({"cache coalesced", std::to_string(cache_coalesced.load())});
  counters.add_row({"cache hit rate", TablePrinter::pct(cache_hit_rate())});
  counters.add_row({"retries", std::to_string(retries.load())});
  counters.add_row({"degraded results", std::to_string(degraded_results.load())});
  counters.add_row({"load shed", std::to_string(load_shed.load())});
  counters.add_row({"breaker rejections",
                    std::to_string(breaker_rejections.load())});
  counters.add_row({"lint rejections",
                    std::to_string(lint_rejections.load())});
  counters.add_row({"quota rejections",
                    std::to_string(quota_rejections.load())});
  counters.add_row({"model reloads", std::to_string(model_reloads.load())});
  counters.add_row({"aborted requests",
                    std::to_string(aborted_requests.load())});
  counters.add_row({"noisy-log results",
                    std::to_string(noisy_log_results.load())});
  counters.add_row({"low-confidence results",
                    std::to_string(low_confidence_results.load())});
  counters.add_row({"quarantined responses",
                    std::to_string(quarantined_responses.load())});
  counters.add_row({"sessions opened", std::to_string(sessions_opened.load())});
  counters.add_row({"sessions finalized",
                    std::to_string(sessions_finalized.load())});
  counters.add_row({"sessions expired",
                    std::to_string(sessions_expired.load())});
  counters.add_row({"sessions evicted",
                    std::to_string(sessions_evicted.load())});
  counters.add_row({"sessions shed", std::to_string(sessions_shed.load())});
  counters.add_row({"session early exits",
                    std::to_string(session_early_exits.load())});
  counters.add_row({"session rehabilitations",
                    std::to_string(session_rehabilitations.load())});
  counters.add_row({"stream records rejected",
                    std::to_string(stream_records_rejected.load())});
  counters.add_row({"journal appends", std::to_string(journal_appends.load())});
  counters.add_row({"journal append failures",
                    std::to_string(journal_append_failures.load())});
  counters.add_row({"journal rotations",
                    std::to_string(journal_rotations.load())});
  counters.add_row({"journal records replayed",
                    std::to_string(journal_records_replayed.load())});
  counters.add_row({"sessions recovered",
                    std::to_string(sessions_recovered.load())});
  counters.add_row({"sessions expired on recovery",
                    std::to_string(sessions_expired_on_recovery.load())});
  counters.add_row({"sessions discarded on recovery",
                    std::to_string(sessions_discarded_on_recovery.load())});

  TablePrinter statuses({"status", "count"});
  for (int code = 0; code < kNumStatusCodes; ++code) {
    statuses.add_row({status_name(static_cast<StatusCode>(code)),
                      std::to_string(status_count(
                          static_cast<StatusCode>(code)))});
  }

  TablePrinter lat({"stage", "count", "mean", "p50", "p95", "max"});
  const auto add = [&lat](const std::string& name,
                          const LatencyHistogram& h) {
    lat.add_row({name, std::to_string(h.count()), fmt_seconds(h.mean_seconds()),
                 fmt_seconds(h.quantile_seconds(0.50)),
                 fmt_seconds(h.quantile_seconds(0.95)),
                 fmt_seconds(h.max_seconds())});
  };
  add("queue wait", queue_wait);
  add("backtrace", backtrace);
  add("atpg diagnosis", atpg);
  add("gnn inference", inference);
  add("end to end", end_to_end);

  return counters.to_string() + "\n" + statuses.to_string() + "\n" +
         lat.to_string();
}

}  // namespace m3dfl::serve
