#include "serve/cache.h"

#include "diag/log_io.h"

namespace m3dfl::serve {

DiagnosisCache::DiagnosisCache(std::size_t capacity, Metrics* metrics)
    : capacity_(capacity), metrics_(metrics) {}

std::string DiagnosisCache::make_key(std::int32_t design_id,
                                     const FailureLog& log) {
  return "design " + std::to_string(design_id) + "\n" +
         failure_log_to_string(log);
}

std::shared_ptr<const CachedDiagnosis> DiagnosisCache::lookup(
    const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    if (metrics_ != nullptr) {
      metrics_->cache_misses.fetch_add(1, std::memory_order_relaxed);
    }
    return nullptr;
  }
  ++hits_;
  if (metrics_ != nullptr) {
    metrics_->cache_hits.fetch_add(1, std::memory_order_relaxed);
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second;
}

std::shared_ptr<const CachedDiagnosis> DiagnosisCache::peek(
    const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second;
}

void DiagnosisCache::insert(const std::string& key,
                            std::shared_ptr<const CachedDiagnosis> value) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Concurrent workers can race to fill the same key; keep the first
    // entry (the values are identical by construction) but refresh LRU.
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(value));
  index_.emplace(key, lru_.begin());
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
    if (metrics_ != nullptr) {
      metrics_->cache_evictions.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

std::size_t DiagnosisCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

std::int64_t DiagnosisCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::int64_t DiagnosisCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

std::int64_t DiagnosisCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

}  // namespace m3dfl::serve
