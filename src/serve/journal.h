// Write-ahead session journal: the durability substrate of crash-safe
// serving (docs/SERVING.md "Crash recovery").
//
// SessionManager appends one frame per state-mutating session event —
// session open, accepted stream record, resolution tombstone — *before*
// acknowledging the event to the caller, and fsyncs each frame, so a
// killed worker can rebuild every in-flight session by replaying what
// survived on disk.  Because diag::StreamingBacktrace::finalize() is
// byte-identical to the batch back-trace over the accepted records, a
// replayed session finalizes byte-identical to the uninterrupted run —
// recovery is provably exact, not best-effort.
//
// On-disk format (text, one directory of segments):
//
//   seg-000001.m3dflj:
//     m3dfl-journal 1
//     r <crc32:8 hex> <len> <payload>
//     r <crc32:8 hex> <len> <payload>
//     ...
//
// Each frame checksums exactly its payload bytes (util/checksum CRC32, the
// same polynomial every artifact trailer uses), and `len` pins the payload
// length so a torn tail cannot resynchronize on garbage.  Payload grammar:
//
//   open  <session_id> <wall_ms> <idle_ms> <life_ms> <design_name>
//   rec   <session_id> <wall_ms> <faillog body line, verbatim>
//   close <session_id> <wall_ms> finalized|expired|evicted
//
// Timestamps are wall-clock epoch milliseconds (injectable for tests):
// steady_clock does not survive a restart, and recovery must re-evaluate
// idle/lifetime deadlines across the crash.
//
// Failure semantics mirror util/artifact: a scan accepts the longest valid
// frame prefix of each segment and reports everything after it with a
// diagnostic citing the segment path and byte offset, expected-vs-found.
// Append-side I/O failures never fail a serving request — the journal
// degrades to non-durable (durable() == false, journal_append_failures
// counts) and rotates to a fresh segment so later events land cleanly.
//
// Compaction removes sealed segments in which every referenced session has
// a close tombstone somewhere in the directory (a closed session's records
// are garbage wherever they live; a `close` for an unknown session is a
// replay no-op, so dropping opens and closes together is safe).
#ifndef M3DFL_SERVE_JOURNAL_H_
#define M3DFL_SERVE_JOURNAL_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "serve/fault_injector.h"
#include "serve/metrics.h"
#include "util/limits.h"

namespace m3dfl::lint {
struct JournalFacts;  // lint/checks.h; callers of journal_lint_facts include it
}

namespace m3dfl::serve {

// Wall-clock epoch-milliseconds source; tests inject a fake so deadline
// accounting across a simulated crash is deterministic.
using WallClock = std::function<std::int64_t()>;

// The real wall clock (system_clock since epoch, in ms).
std::int64_t system_wall_ms();

struct JournalOptions {
  // Rotate to a fresh segment once the active one exceeds this many bytes.
  std::size_t max_segment_bytes = 64 * 1024;
  // Defaults to system_wall_ms when unset.
  WallClock wall_ms;
  // kJournalTornWrite / kJournalFsync / kJournalCorrupt seams; may be null.
  FaultInjector* injector = nullptr;
  // journal_appends / journal_append_failures / journal_rotations land
  // here; may be null.
  Metrics* metrics = nullptr;
};

// One decoded journal frame.
struct JournalRecord {
  enum class Type { kOpen, kRecord, kClose };
  Type type = Type::kRecord;
  std::uint64_t session_id = 0;
  std::int64_t wall_ms = 0;
  std::size_t offset = 0;  // byte offset of this frame in its segment
  // kOpen only.
  std::string design_name;
  double idle_deadline_ms = 0.0;
  double max_lifetime_ms = 0.0;
  // kRecord: the raw faillog body line, verbatim.  kClose: why the session
  // resolved ("finalized" / "expired" / "evicted").
  std::string text;
};

// One scanned segment: the longest valid frame prefix plus (when the tail
// was torn or corrupt) an offset-cited diagnostic for the rest.
struct SegmentScan {
  std::string path;
  std::vector<JournalRecord> records;
  std::string diagnostic;      // empty when the whole segment parsed
  std::size_t valid_bytes = 0; // bytes covered by header + valid prefix
  std::size_t total_bytes = 0;
};

// Journal state reassembled from every segment of a directory, in segment
// then frame order.
struct JournalReplay {
  std::vector<SegmentScan> segments;
  // Sessions with an `open` and no `close`, each carrying its replayable
  // record lines in arrival order.
  struct LiveSession {
    std::uint64_t id = 0;
    std::string design_name;
    std::int64_t opened_wall_ms = 0;
    std::int64_t last_wall_ms = 0;
    double idle_deadline_ms = 0.0;
    double max_lifetime_ms = 0.0;
    std::vector<std::string> lines;
  };
  std::vector<LiveSession> live;
  // Scan diagnostics plus semantic findings (duplicate tombstone, record
  // for an unopened session), every one citing segment path + byte offset.
  std::vector<std::string> diagnostics;
  std::size_t records = 0;         // valid frames across all segments
  std::size_t closed_sessions = 0; // sessions with a tombstone
  // Highest session id referenced by any valid frame — opens, records, and
  // closes alike, including tombstones whose open was compacted away.
  // recover() seeds the manager's id counter past this so a restarted
  // manager never reissues a journaled id (a reused id's `open` would be
  // rejected as a duplicate of the existing tombstone on the *next*
  // recovery, silently losing every post-restart session).
  std::uint64_t max_session_id = 0;
};

// Append-side writer.  NOT thread-safe: SessionManager serializes appends
// under its session-table mutex (append-before-ack is a per-event ordering
// guarantee, so the table lock is the natural serialization point).
class SessionJournal {
 public:
  // Creates `dir` if needed and opens the highest-numbered segment for
  // append (or seg-000001 in an empty directory).  Throws m3dfl::Error only
  // here — once constructed, journal failures degrade instead of throwing.
  explicit SessionJournal(std::string dir, JournalOptions options = {});
  ~SessionJournal();

  SessionJournal(const SessionJournal&) = delete;
  SessionJournal& operator=(const SessionJournal&) = delete;

  // Append-before-ack writers: frame + write + fsync before returning.  On
  // any I/O failure (real or injected) the event is counted lost
  // (journal_append_failures), durable() flips false, and the writer
  // rotates before the next append so one bad segment cannot poison the
  // events that follow.
  void append_open(std::uint64_t session_id, const std::string& design_name,
                   double idle_deadline_ms, double max_lifetime_ms);
  void append_record(std::uint64_t session_id, const std::string& line);
  void append_close(std::uint64_t session_id, const std::string& why);

  // False once any append failed to reach disk: sessions keep serving, but
  // a crash may now lose events (docs/SERVING.md "degraded non-durable").
  bool durable() const { return durable_; }
  const std::string& dir() const { return dir_; }
  std::string active_segment() const { return segment_path_; }
  std::int64_t wall_ms() const { return options_.wall_ms(); }

  // ---- static readers (no live writer required) ---------------------------
  // Segment paths of `dir`, in replay order; empty for a missing directory.
  static std::vector<std::string> list_segments(const std::string& dir);
  // Decodes one segment, accepting the longest valid prefix.  `limits`
  // (util/limits.h) bounds the segment size and each frame's declared
  // payload length; a frame declaring more than max_record_bytes — or a
  // length so large it would wrap the truncation arithmetic — is reported
  // as torn with a "limit exceeded" diagnostic, before the length is used
  // for anything.
  static SegmentScan scan_segment(const std::string& path,
                                  const ParseLimits& limits = {});
  // Same decoder over an in-memory segment image; `path_label` names the
  // buffer in diagnostics.  This is the seam fuzz/ drives: segment bytes in,
  // longest-valid-prefix decision out, no filesystem involved.
  static SegmentScan scan_segment_text(const std::string& path_label,
                                       const std::string& text,
                                       const ParseLimits& limits = {});
  // Scans every segment and reassembles live sessions.
  static JournalReplay replay(const std::string& dir,
                              const ParseLimits& limits = {});
  // Removes sealed fully-tombstoned segments (never the newest segment,
  // which a live writer may own); returns how many were deleted.
  static std::size_t compact(const std::string& dir);

 private:
  void append_payload(const std::string& payload);
  void open_next_segment();

  const std::string dir_;
  JournalOptions options_;
  int fd_ = -1;
  std::string segment_path_;
  std::uint64_t segment_index_ = 0;
  std::size_t segment_bytes_ = 0;
  bool durable_ = true;
  // Set by a failed/torn append: the next append opens a fresh segment.
  bool rotate_before_next_ = false;
};

// Per-segment staleness facts for the `session-journal-stale` lint check
// (lint/checks.h run_journal_checks).  Scans `dir` and records each
// segment's newest record timestamp + frame offset; the lint pass compares
// them against the session lifetime.  Callers include lint/checks.h for the
// complete JournalFacts type.
lint::JournalFacts journal_lint_facts(const std::string& dir,
                                      double session_lifetime_ms,
                                      std::int64_t now_wall_ms);

}  // namespace m3dfl::serve

#endif  // M3DFL_SERVE_JOURNAL_H_
