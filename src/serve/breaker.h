// Per-design circuit breaker.
//
// A design whose requests keep failing (corrupt pattern data, a pathological
// log family, resource exhaustion in its cone sizes) should not be allowed
// to soak the worker pool: after `failure_threshold` *consecutive* failures
// the breaker opens and the service fails that design's submissions fast
// with kOverloaded, protecting every other design's latency.  After
// `cooldown_ms` the breaker half-opens and admits exactly one probe request;
// the probe's outcome closes the breaker (success) or re-opens it for
// another cooldown (failure).  A probe whose outcome is never reported —
// rejected later in admission, or resolved without a success/failure verdict
// — must be returned via abandon_probe(); as a backstop, a probe outstanding
// longer than `cooldown_ms` expires and admit() re-issues one, so a lost
// probe can never wedge the breaker half-open forever.
//
// `failure_threshold == 0` disables the breaker (every admit() allows).
#ifndef M3DFL_SERVE_BREAKER_H_
#define M3DFL_SERVE_BREAKER_H_

#include <chrono>
#include <cstdint>
#include <mutex>

namespace m3dfl::serve {

struct BreakerOptions {
  std::int32_t failure_threshold = 0;  // consecutive failures; 0 = disabled
  double cooldown_ms = 100.0;          // open -> half-open delay
};

class CircuitBreaker {
 public:
  using Clock = std::chrono::steady_clock;

  enum class State { kClosed, kOpen, kHalfOpen };
  enum class Decision { kAllow, kReject, kProbe };

  explicit CircuitBreaker(const BreakerOptions& options) : options_(options) {}

  // Admission decision for one request at time `now`.  kProbe is an allow
  // that also transitions open -> half-open; while a probe is outstanding
  // all other requests are rejected.
  Decision admit(Clock::time_point now) {
    if (options_.failure_threshold <= 0) return Decision::kAllow;
    std::lock_guard<std::mutex> lock(mu_);
    switch (state_) {
      case State::kClosed:
        return Decision::kAllow;
      case State::kOpen:
        if (now < open_until_) return Decision::kReject;
        state_ = State::kHalfOpen;
        probe_expires_ = now + cooldown();
        return Decision::kProbe;
      case State::kHalfOpen:
        // One probe at a time — but an expired probe (lost without a
        // verdict) is replaced rather than awaited forever.
        if (now < probe_expires_) return Decision::kReject;
        probe_expires_ = now + cooldown();
        return Decision::kProbe;
    }
    return Decision::kAllow;
  }

  // Reports the outcome of an admitted request.
  void on_success() {
    if (options_.failure_threshold <= 0) return;
    std::lock_guard<std::mutex> lock(mu_);
    consecutive_failures_ = 0;
    state_ = State::kClosed;
  }

  void on_failure(Clock::time_point now) {
    if (options_.failure_threshold <= 0) return;
    std::lock_guard<std::mutex> lock(mu_);
    if (state_ == State::kHalfOpen) {
      // Failed probe: back to open for another cooldown.
      trip(now);
      return;
    }
    if (++consecutive_failures_ >= options_.failure_threshold) trip(now);
  }

  // Returns an admitted probe whose outcome says nothing about the design
  // (shed at a later admission step, deadline passed, shutdown, coalesced
  // leader failure): back to open for another cooldown — without counting a
  // trip — so the design is probed again instead of staying half-open.
  void abandon_probe(Clock::time_point now) {
    if (options_.failure_threshold <= 0) return;
    std::lock_guard<std::mutex> lock(mu_);
    if (state_ != State::kHalfOpen) return;
    state_ = State::kOpen;
    open_until_ = now + cooldown();
  }

  State state() const {
    std::lock_guard<std::mutex> lock(mu_);
    return state_;
  }

  std::int64_t trips() const {
    std::lock_guard<std::mutex> lock(mu_);
    return trips_;
  }

 private:
  Clock::duration cooldown() const {
    return std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double, std::milli>(options_.cooldown_ms));
  }

  void trip(Clock::time_point now) {
    state_ = State::kOpen;
    consecutive_failures_ = 0;
    ++trips_;
    open_until_ = now + cooldown();
  }

  const BreakerOptions options_;
  mutable std::mutex mu_;
  State state_ = State::kClosed;
  std::int32_t consecutive_failures_ = 0;
  std::int64_t trips_ = 0;
  Clock::time_point open_until_{};
  Clock::time_point probe_expires_{};
};

}  // namespace m3dfl::serve

#endif  // M3DFL_SERVE_BREAKER_H_
