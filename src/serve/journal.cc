#include "serve/journal.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

#include "lint/checks.h"
#include "util/checksum.h"
#include "util/error.h"

namespace m3dfl::serve {
namespace {

constexpr const char* kHeader = "m3dfl-journal 1";
constexpr const char* kSegmentPrefix = "seg-";
constexpr const char* kSegmentSuffix = ".m3dflj";

std::string segment_name(std::uint64_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s%06llu%s", kSegmentPrefix,
                static_cast<unsigned long long>(index), kSegmentSuffix);
  return buf;
}

// seg-NNNNNN.m3dflj -> NNNNNN; 0 for anything else.
std::uint64_t segment_index_of(const std::string& filename) {
  const std::size_t prefix = std::strlen(kSegmentPrefix);
  const std::size_t suffix = std::strlen(kSegmentSuffix);
  if (filename.size() <= prefix + suffix) return 0;
  if (filename.compare(0, prefix, kSegmentPrefix) != 0) return 0;
  if (filename.compare(filename.size() - suffix, suffix, kSegmentSuffix) != 0) {
    return 0;
  }
  const std::string digits =
      filename.substr(prefix, filename.size() - prefix - suffix);
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return 0;
  }
  return std::strtoull(digits.c_str(), nullptr, 10);
}

std::string hex8(std::uint32_t value) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%08x", value);
  return buf;
}

// Doubles (deadline milliseconds) round-trip through max_digits10 so a
// replayed session carries exactly the deadlines the original was given.
std::string fmt_double(double value) {
  std::ostringstream os;
  os.precision(17);
  os << value;
  return os.str();
}

std::string frame_for(const std::string& payload) {
  return "r " + hex8(crc32(payload)) + " " + std::to_string(payload.size()) +
         " " + payload + "\n";
}

// Offset-cited scan diagnostic, util/artifact style.
std::string scan_diag(const std::string& path, std::size_t offset,
                      const std::string& what) {
  return path + ": journal byte " + std::to_string(offset) + ": " + what;
}

// Parses "<uint64>" out of `token`; false on garbage.
bool parse_u64(const std::string& token, std::uint64_t& out) {
  if (token.empty() ||
      token.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  out = std::strtoull(token.c_str(), nullptr, 10);
  return true;
}

bool parse_i64(const std::string& token, std::int64_t& out) {
  std::size_t start = 0;
  if (!token.empty() && token[0] == '-') start = 1;
  if (start >= token.size() ||
      token.find_first_not_of("0123456789", start) != std::string::npos) {
    return false;
  }
  out = std::strtoll(token.c_str(), nullptr, 10);
  return true;
}

// Splits the first `n` space-separated tokens off `payload`, leaving the
// verbatim remainder (one separating space consumed) in `rest`.
bool split_tokens(const std::string& payload, std::size_t n,
                  std::vector<std::string>& tokens, std::string& rest) {
  std::size_t pos = 0;
  tokens.clear();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t space = payload.find(' ', pos);
    if (space == std::string::npos || space == pos) return false;
    tokens.push_back(payload.substr(pos, space - pos));
    pos = space + 1;
  }
  rest = payload.substr(pos);
  return true;
}

// Decodes one payload into a record; returns an empty string on success,
// else what was wrong (the caller cites the frame offset).
std::string parse_payload(const std::string& payload, JournalRecord& record) {
  std::vector<std::string> tokens;
  std::string rest;
  const std::size_t space = payload.find(' ');
  const std::string word =
      space == std::string::npos ? payload : payload.substr(0, space);
  if (word == "open") {
    record.type = JournalRecord::Type::kOpen;
    if (!split_tokens(payload, 5, tokens, rest) || rest.empty()) {
      return "truncated 'open' payload (expected 'open <id> <wall_ms> "
             "<idle_ms> <life_ms> <design>')";
    }
    if (!parse_u64(tokens[1], record.session_id)) {
      return "bad session id '" + tokens[1] + "' in 'open' payload";
    }
    if (!parse_i64(tokens[2], record.wall_ms)) {
      return "bad wall timestamp '" + tokens[2] + "' in 'open' payload";
    }
    char* end = nullptr;
    record.idle_deadline_ms = std::strtod(tokens[3].c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return "bad idle deadline '" + tokens[3] + "' in 'open' payload";
    }
    record.max_lifetime_ms = std::strtod(tokens[4].c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return "bad lifetime deadline '" + tokens[4] + "' in 'open' payload";
    }
    record.design_name = rest;
    return "";
  }
  if (word == "rec") {
    record.type = JournalRecord::Type::kRecord;
    if (!split_tokens(payload, 3, tokens, rest)) {
      return "truncated 'rec' payload (expected 'rec <id> <wall_ms> <line>')";
    }
    if (!parse_u64(tokens[1], record.session_id)) {
      return "bad session id '" + tokens[1] + "' in 'rec' payload";
    }
    if (!parse_i64(tokens[2], record.wall_ms)) {
      return "bad wall timestamp '" + tokens[2] + "' in 'rec' payload";
    }
    record.text = rest;
    return "";
  }
  if (word == "close") {
    record.type = JournalRecord::Type::kClose;
    if (!split_tokens(payload, 3, tokens, rest) || rest.empty()) {
      return "truncated 'close' payload (expected 'close <id> <wall_ms> "
             "finalized|expired|evicted')";
    }
    if (!parse_u64(tokens[1], record.session_id)) {
      return "bad session id '" + tokens[1] + "' in 'close' payload";
    }
    if (!parse_i64(tokens[2], record.wall_ms)) {
      return "bad wall timestamp '" + tokens[2] + "' in 'close' payload";
    }
    if (rest != "finalized" && rest != "expired" && rest != "evicted") {
      return "unknown close reason '" + rest + "'";
    }
    record.text = rest;
    return "";
  }
  return "unknown payload kind '" + word + "' (expected open/rec/close)";
}

void count(Metrics* metrics, std::atomic<std::int64_t> Metrics::* counter) {
  if (metrics != nullptr) {
    (metrics->*counter).fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace

std::int64_t system_wall_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

// ---- writer -----------------------------------------------------------------

SessionJournal::SessionJournal(std::string dir, JournalOptions options)
    : dir_(std::move(dir)), options_(std::move(options)) {
  if (!options_.wall_ms) options_.wall_ms = system_wall_ms;
  M3DFL_REQUIRE(!dir_.empty(), "session journal needs a directory");
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  M3DFL_REQUIRE(!ec, "cannot create journal directory '" + dir_ +
                         "': " + ec.message());

  // Continue the newest segment when its whole body parses and it still has
  // rotation headroom; anything torn stays frozen as scan evidence and the
  // writer moves on to a fresh segment.
  const std::vector<std::string> segments = list_segments(dir_);
  if (!segments.empty()) {
    segment_index_ =
        segment_index_of(std::filesystem::path(segments.back()).filename());
    const SegmentScan scan = scan_segment(segments.back());
    if (scan.diagnostic.empty() && scan.total_bytes < options_.max_segment_bytes) {
      segment_path_ = segments.back();
      segment_bytes_ = scan.total_bytes;
      fd_ = ::open(segment_path_.c_str(), O_WRONLY | O_APPEND);
      M3DFL_REQUIRE(fd_ >= 0, "cannot reopen journal segment '" +
                                  segment_path_ + "': " +
                                  std::strerror(errno));
      return;
    }
  }
  open_next_segment();
  M3DFL_REQUIRE(fd_ >= 0, "cannot open journal segment in '" + dir_ + "'");
}

SessionJournal::~SessionJournal() {
  if (fd_ >= 0) ::close(fd_);
}

void SessionJournal::open_next_segment() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  const bool first = segment_path_.empty();
  ++segment_index_;
  segment_path_ =
      (std::filesystem::path(dir_) / segment_name(segment_index_)).string();
  segment_bytes_ = 0;
  rotate_before_next_ = false;
  // Failures here leave fd_ < 0 and are counted (once per lost event) by
  // append_payload, the only caller that actually loses an event.
  fd_ = ::open(segment_path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) {
    durable_ = false;
    return;
  }
  const std::string header = std::string(kHeader) + "\n";
  std::size_t written = 0;
  while (written < header.size()) {
    const ::ssize_t n =
        ::write(fd_, header.data() + written, header.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      durable_ = false;
      ::close(fd_);
      fd_ = -1;
      return;
    }
    written += static_cast<std::size_t>(n);
  }
  ::fsync(fd_);
  segment_bytes_ = header.size();
  // Persist the new directory entry, same discipline as util/atomic_file.
  const int dir_fd = ::open(dir_.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
  if (!first) count(options_.metrics, &Metrics::journal_rotations);
}

void SessionJournal::append_payload(const std::string& payload) {
  if (rotate_before_next_ || fd_ < 0 ||
      segment_bytes_ >= options_.max_segment_bytes) {
    open_next_segment();
  }
  if (fd_ < 0) {
    // The rotation itself failed; the event is lost but the request is not.
    count(options_.metrics, &Metrics::journal_append_failures);
    durable_ = false;
    return;
  }

  std::string frame = frame_for(payload);
  // kJournalCorrupt models silent media corruption: the CRC is computed
  // over the clean payload, then one payload bit flips on the way to disk.
  // The writer cannot see it; the next scan stops its valid prefix here.
  if (options_.injector != nullptr &&
      options_.injector->should_fail(Seam::kJournalCorrupt) &&
      !payload.empty()) {
    frame[frame.size() - 2 - payload.size() / 2] ^= 0x01;
  }
  // kJournalTornWrite models a crash (or full disk) mid-frame: only a
  // prefix reaches the segment.  The writer detects the short write, counts
  // the event lost, and seals the segment so later appends land cleanly.
  std::size_t intend = frame.size();
  bool torn = false;
  if (options_.injector != nullptr &&
      options_.injector->should_fail(Seam::kJournalTornWrite)) {
    intend = std::max<std::size_t>(1, frame.size() / 2);
    torn = true;
  }

  std::size_t written = 0;
  bool write_failed = false;
  while (written < intend) {
    const ::ssize_t n = ::write(fd_, frame.data() + written, intend - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      write_failed = true;
      break;
    }
    written += static_cast<std::size_t>(n);
  }
  segment_bytes_ += written;

  // Durability before ack: the frame must be on disk before the caller is
  // told the event happened.  An fsync failure (real or injected) means the
  // bytes may not survive a crash — degrade to non-durable, never fail the
  // serving request.
  bool fsync_failed = ::fsync(fd_) != 0;
  if (options_.injector != nullptr &&
      options_.injector->should_fail(Seam::kJournalFsync)) {
    fsync_failed = true;
  }

  if (torn || write_failed || fsync_failed) {
    count(options_.metrics, &Metrics::journal_append_failures);
    durable_ = false;
    rotate_before_next_ = true;
    return;
  }
  count(options_.metrics, &Metrics::journal_appends);
}

void SessionJournal::append_open(std::uint64_t session_id,
                                 const std::string& design_name,
                                 double idle_deadline_ms,
                                 double max_lifetime_ms) {
  append_payload("open " + std::to_string(session_id) + " " +
                 std::to_string(options_.wall_ms()) + " " +
                 fmt_double(idle_deadline_ms) + " " +
                 fmt_double(max_lifetime_ms) + " " + design_name);
}

void SessionJournal::append_record(std::uint64_t session_id,
                                   const std::string& line) {
  append_payload("rec " + std::to_string(session_id) + " " +
                 std::to_string(options_.wall_ms()) + " " + line);
}

void SessionJournal::append_close(std::uint64_t session_id,
                                  const std::string& why) {
  append_payload("close " + std::to_string(session_id) + " " +
                 std::to_string(options_.wall_ms()) + " " + why);
}

// ---- readers ----------------------------------------------------------------

std::vector<std::string> SessionJournal::list_segments(const std::string& dir) {
  std::vector<std::string> segments;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (segment_index_of(name) > 0) segments.push_back(entry.path().string());
  }
  std::sort(segments.begin(), segments.end(),
            [](const std::string& a, const std::string& b) {
              return segment_index_of(std::filesystem::path(a).filename()) <
                     segment_index_of(std::filesystem::path(b).filename());
            });
  return segments;
}

SegmentScan SessionJournal::scan_segment(const std::string& path,
                                         const ParseLimits& limits) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    SegmentScan scan;
    scan.path = path;
    scan.diagnostic = scan_diag(path, 0, "cannot open segment");
    return scan;
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  return scan_segment_text(path, buf.str(), limits);
}

SegmentScan SessionJournal::scan_segment_text(const std::string& path,
                                              const std::string& text,
                                              const ParseLimits& limits) {
  SegmentScan scan;
  scan.path = path;
  scan.total_bytes = text.size();
  if (text.size() > limits.max_file_bytes) {
    scan.diagnostic = scan_diag(
        path, 0,
        limit_exceeded("segment bytes", text.size(), limits.max_file_bytes));
    return scan;
  }

  // Header line.
  const std::string header = std::string(kHeader) + "\n";
  if (text.size() < header.size() ||
      text.compare(0, header.size(), header) != 0) {
    scan.diagnostic = scan_diag(
        path, 0,
        "missing '" + std::string(kHeader) + "' header; found '" +
            text.substr(0, std::min<std::size_t>(text.size(), 24)) + "'");
    return scan;
  }
  std::size_t offset = header.size();
  scan.valid_bytes = offset;

  const auto torn = [&](std::size_t at, const std::string& what) {
    scan.diagnostic =
        scan_diag(path, at,
                  what + "; accepting the valid prefix (" +
                      std::to_string(scan.records.size()) + " record(s), " +
                      std::to_string(scan.valid_bytes) + " bytes)");
  };

  while (offset < text.size()) {
    const std::size_t frame_offset = offset;
    // "r <8 hex> <len> " prefix.
    if (text.compare(offset, 2, "r ") != 0) {
      torn(frame_offset, "bad frame marker (expected 'r ', found '" +
                             text.substr(offset, 2) + "')");
      return scan;
    }
    if (offset + 11 > text.size() || text[offset + 10] != ' ') {
      torn(frame_offset, "truncated frame checksum");
      return scan;
    }
    const std::string crc_hex = text.substr(offset + 2, 8);
    if (crc_hex.find_first_not_of("0123456789abcdef") != std::string::npos) {
      torn(frame_offset,
           "bad frame checksum '" + crc_hex + "' (expected 8 hex digits)");
      return scan;
    }
    const std::uint32_t expected_crc =
        static_cast<std::uint32_t>(std::strtoul(crc_hex.c_str(), nullptr, 16));
    offset += 11;
    const std::size_t len_end = text.find(' ', offset);
    if (len_end == std::string::npos || len_end == offset ||
        text.find_first_not_of("0123456789", offset) < len_end) {
      torn(frame_offset, "bad frame length field");
      return scan;
    }
    const std::size_t payload_size =
        std::strtoull(text.c_str() + offset, nullptr, 10);
    offset = len_end + 1;
    // Cap the declared length before the truncation arithmetic below: a
    // declared ULLONG_MAX (strtoull saturates there for any longer digit
    // string) would wrap `offset + payload_size + 1` into passing.
    if (payload_size > limits.max_record_bytes) {
      torn(frame_offset,
           limit_exceeded("declared frame payload bytes", payload_size,
                          limits.max_record_bytes));
      return scan;
    }
    if (offset + payload_size + 1 > text.size()) {
      torn(frame_offset, "truncated frame payload (need " +
                             std::to_string(payload_size + 1) +
                             " byte(s), segment has " +
                             std::to_string(text.size() - offset) + ")");
      return scan;
    }
    const std::string payload = text.substr(offset, payload_size);
    if (text[offset + payload_size] != '\n') {
      torn(frame_offset, "frame missing trailing newline");
      return scan;
    }
    const std::uint32_t actual_crc = crc32(payload);
    if (actual_crc != expected_crc) {
      torn(frame_offset, "frame checksum mismatch (expected " +
                             hex8(expected_crc) + ", computed " +
                             hex8(actual_crc) + ")");
      return scan;
    }
    JournalRecord record;
    record.offset = frame_offset;
    const std::string error = parse_payload(payload, record);
    if (!error.empty()) {
      torn(frame_offset, error);
      return scan;
    }
    offset += payload_size + 1;
    scan.valid_bytes = offset;
    scan.records.push_back(std::move(record));
  }
  return scan;
}

JournalReplay SessionJournal::replay(const std::string& dir,
                                     const ParseLimits& limits) {
  JournalReplay result;
  std::map<std::uint64_t, JournalReplay::LiveSession> live;
  std::set<std::uint64_t> closed;
  for (const std::string& path : list_segments(dir)) {
    SegmentScan scan = scan_segment(path, limits);
    if (!scan.diagnostic.empty()) result.diagnostics.push_back(scan.diagnostic);
    result.records += scan.records.size();
    for (JournalRecord& record : scan.records) {
      result.max_session_id = std::max(result.max_session_id,
                                       record.session_id);
      switch (record.type) {
        case JournalRecord::Type::kOpen: {
          if (closed.count(record.session_id) != 0) {
            // Nothing is "kept" here: the tombstone wins and this open is
            // dropped outright — the signature of a restarted manager
            // reissuing a journaled id.
            result.diagnostics.push_back(scan_diag(
                path, record.offset,
                "open for already-closed session " +
                    std::to_string(record.session_id) + "; dropped"));
            break;
          }
          if (live.count(record.session_id) != 0) {
            result.diagnostics.push_back(scan_diag(
                path, record.offset,
                "duplicate open for session " +
                    std::to_string(record.session_id) + "; keeping the first"));
            break;
          }
          JournalReplay::LiveSession session;
          session.id = record.session_id;
          session.design_name = std::move(record.design_name);
          session.opened_wall_ms = record.wall_ms;
          session.last_wall_ms = record.wall_ms;
          session.idle_deadline_ms = record.idle_deadline_ms;
          session.max_lifetime_ms = record.max_lifetime_ms;
          live.emplace(record.session_id, std::move(session));
          break;
        }
        case JournalRecord::Type::kRecord: {
          const auto it = live.find(record.session_id);
          if (it == live.end()) {
            result.diagnostics.push_back(scan_diag(
                path, record.offset,
                "record for " +
                    std::string(closed.count(record.session_id) != 0
                                    ? "closed"
                                    : "unopened") +
                    " session " + std::to_string(record.session_id) +
                    "; dropped"));
            break;
          }
          it->second.lines.push_back(std::move(record.text));
          it->second.last_wall_ms = record.wall_ms;
          break;
        }
        case JournalRecord::Type::kClose: {
          if (closed.count(record.session_id) != 0) {
            result.diagnostics.push_back(scan_diag(
                path, record.offset,
                "duplicate tombstone for session " +
                    std::to_string(record.session_id) + "; ignored"));
            break;
          }
          // A close whose open was compacted away still counts: it is a
          // replay no-op on the session table, which is what makes dropping
          // open+close segments safe.
          live.erase(record.session_id);
          closed.insert(record.session_id);
          ++result.closed_sessions;
          break;
        }
      }
    }
    result.segments.push_back(std::move(scan));
  }
  result.live.reserve(live.size());
  for (auto& [id, session] : live) result.live.push_back(std::move(session));
  return result;
}

std::size_t SessionJournal::compact(const std::string& dir) {
  const std::vector<std::string> segments = list_segments(dir);
  if (segments.size() < 2) return 0;  // never touch the active segment

  // Per segment: the sessions whose state lives there (open/rec) and the
  // sessions whose tombstones live there.
  struct SegmentSessions {
    std::set<std::uint64_t> state;
    std::set<std::uint64_t> closes;
  };
  std::vector<SegmentSessions> per_segment(segments.size());
  std::set<std::uint64_t> closed;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const SegmentScan scan = scan_segment(segments[i]);
    for (const JournalRecord& record : scan.records) {
      if (record.type == JournalRecord::Type::kClose) {
        per_segment[i].closes.insert(record.session_id);
        closed.insert(record.session_id);
      } else {
        per_segment[i].state.insert(record.session_id);
      }
    }
  }

  // A segment is removable when every session whose state it holds is
  // closed — but removing a tombstone whose open survives in a kept segment
  // would resurrect that session, so candidates holding such tombstones are
  // demoted until the set is stable.
  std::vector<bool> removable(segments.size(), false);
  for (std::size_t i = 0; i + 1 < segments.size(); ++i) {
    removable[i] = true;
    for (const std::uint64_t id : per_segment[i].state) {
      if (closed.count(id) == 0) {
        removable[i] = false;
        break;
      }
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    std::set<std::uint64_t> kept_state;
    for (std::size_t i = 0; i < segments.size(); ++i) {
      if (removable[i]) continue;
      kept_state.insert(per_segment[i].state.begin(),
                        per_segment[i].state.end());
    }
    for (std::size_t i = 0; i + 1 < segments.size(); ++i) {
      if (!removable[i]) continue;
      for (const std::uint64_t id : per_segment[i].closes) {
        if (kept_state.count(id) != 0) {
          removable[i] = false;
          changed = true;
          break;
        }
      }
    }
  }

  std::size_t removed = 0;
  for (std::size_t i = 0; i + 1 < segments.size(); ++i) {
    if (!removable[i]) continue;
    std::error_code ec;
    if (std::filesystem::remove(segments[i], ec) && !ec) ++removed;
  }
  if (removed > 0) {
    const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dir_fd >= 0) {
      ::fsync(dir_fd);
      ::close(dir_fd);
    }
  }
  return removed;
}

lint::JournalFacts journal_lint_facts(const std::string& dir,
                                      double session_lifetime_ms,
                                      std::int64_t now_wall_ms) {
  lint::JournalFacts facts;
  facts.session_lifetime_ms = session_lifetime_ms;
  facts.now_wall_ms = now_wall_ms;
  for (const std::string& path : SessionJournal::list_segments(dir)) {
    const SegmentScan scan = SessionJournal::scan_segment(path);
    lint::JournalSegmentFacts segment;
    segment.path = path;
    segment.records = scan.records.size();
    for (const JournalRecord& record : scan.records) {
      if (record.wall_ms >= segment.newest_wall_ms) {
        segment.newest_wall_ms = record.wall_ms;
        segment.newest_offset = record.offset;
      }
    }
    facts.segments.push_back(std::move(segment));
  }
  return facts;
}

}  // namespace m3dfl::serve
