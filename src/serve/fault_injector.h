// Typed fault-injection wrapper for the serving layer.
//
// The deterministic trigger machinery (per-seam xoshiro streams, scripted
// nth-call triggers, exact accounting) lives in util/fault_injector.h since
// PR 3 so the training kill–resume harness shares it; this header keeps the
// serving-specific surface: the Seam enum naming the service's failure
// seams, the FaultKind that selects which typed error maybe_throw() raises
// (which in turn selects the service's response — retry vs degrade), and
// enum-typed forwarders, so existing serve code and tests compile
// unchanged.
#ifndef M3DFL_SERVE_FAULT_INJECTOR_H_
#define M3DFL_SERVE_FAULT_INJECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "serve/status.h"
#include "util/fault_injector.h"

namespace m3dfl::serve {

// The failure seams the service exposes to injection.
enum class Seam : int {
  kQueueAdmit = 0,    // submit-side admission (simulates a flooded queue)
  kCacheLookup = 1,   // cache read on the worker path
  kCacheInsert = 2,   // cache fill after the leader computes
  kModelPredict = 3,  // GNN inference
  kFrameworkLoad = 4, // deserializing the model at construction
  kAdmissionLint = 5, // design-lint admission gate (simulates a design that
                      // failed static analysis at registration)
  // Streaming-session seams (serve/session.h).  These do not throw typed
  // errors; the session layer consults should_fail() and maps a trigger to
  // the corresponding stream failure deterministically:
  kStreamStall = 6,      // feed stalls past the idle deadline -> expiry
  kStreamGarble = 7,     // record arrives garbled -> line-cited rejection
  kStreamReorder = 8,    // record arrives out of order -> line-cited rejection
  kStreamDisconnect = 9, // tester drops the connection -> session teardown
  // Session-journal seams (serve/journal.h).  Like the stream seams these
  // never throw; the journal maps a trigger to the corresponding storage
  // failure deterministically and the serving request always succeeds:
  kJournalTornWrite = 10, // crash/full disk mid-frame -> prefix on disk,
                          // event counted lost, segment sealed
  kJournalFsync = 11,     // fsync fails -> degrade to non-durable
  kJournalCorrupt = 12,   // silent media bit-flip -> CRC mismatch at scan
  // Adversarial-input seam: the incoming line is replaced with deterministic
  // malformed bytes (NUL injection, trailing garbage, an over-limit line, a
  // huge numeric field) *before* parsing, so chaos runs exercise the real
  // parser/limit rejection paths — unlike kStreamGarble, which models a
  // record that fails parse in one fixed way.
  kStreamMalformedBytes = 13,
};

inline constexpr int kNumSeams = 14;

const char* seam_name(Seam seam);

// Which typed error a triggered seam raises.
enum class FaultKind {
  kTransient,         // serve::TransientError  -> retry path
  kModelUnavailable,  // serve::ModelUnavailableError -> degrade path
};

class FaultInjector : public ::m3dfl::FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed = 0xC4A05u)
      : ::m3dfl::FaultInjector(kNumSeams, seed) {}

  void arm(Seam seam, double probability,
           FaultKind kind = FaultKind::kTransient) {
    ::m3dfl::FaultInjector::arm(static_cast<int>(seam), probability,
                                static_cast<int>(kind));
  }
  void arm_nth(Seam seam, std::vector<std::uint64_t> calls,
               FaultKind kind = FaultKind::kTransient) {
    ::m3dfl::FaultInjector::arm_nth(static_cast<int>(seam), std::move(calls),
                                    static_cast<int>(kind));
  }

  bool should_fail(Seam seam) {
    return ::m3dfl::FaultInjector::should_fail(static_cast<int>(seam));
  }
  // should_fail() + throws the seam's typed error when triggered.
  void maybe_throw(Seam seam, const std::string& what) {
    const FaultKind kind =
        static_cast<FaultKind>(::m3dfl::FaultInjector::kind(
            static_cast<int>(seam)));
    if (!should_fail(seam)) return;
    if (kind == FaultKind::kModelUnavailable) {
      throw ModelUnavailableError(what);
    }
    throw TransientError(what);
  }

  std::int64_t calls(Seam seam) const {
    return ::m3dfl::FaultInjector::calls(static_cast<int>(seam));
  }
  std::int64_t triggered(Seam seam) const {
    return ::m3dfl::FaultInjector::triggered(static_cast<int>(seam));
  }
};

}  // namespace m3dfl::serve

#endif  // M3DFL_SERVE_FAULT_INJECTOR_H_
