// Deterministic fault injection for the serving layer.
//
// Resilience is only a property you have if you can test it.  The injector
// is threaded through the service's failure seams — cache lookup/insert,
// queue admission, model predict, framework load — and decides, per call,
// whether that seam should fail.  Two trigger modes:
//
//   * probabilistic: arm(seam, p) — each call fails with probability p,
//     drawn from a per-seam xoshiro stream seeded from the injector seed.
//     The i-th call to a seam always sees the i-th draw, so the *number* of
//     triggers over N calls is a pure function of (seed, p, N) no matter how
//     worker threads interleave — which is what lets the chaos test assert
//     exact status accounting.
//   * scripted: arm_nth(seam, {3, 7}) — exactly the 3rd and 7th call fail.
//     Used to pin one specific failure (e.g. "first predict fails, retry
//     succeeds") in unit tests.
//
// A seam's FaultKind selects which typed error maybe_throw() raises, which
// in turn selects the service's response (retry vs degrade).  The injector
// counts calls and triggers per seam; tests reconcile those counts against
// serve::Metrics.  A null injector (the production configuration) costs one
// pointer test per seam.
#ifndef M3DFL_SERVE_FAULT_INJECTOR_H_
#define M3DFL_SERVE_FAULT_INJECTOR_H_

#include <array>
#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "serve/status.h"
#include "util/rng.h"

namespace m3dfl::serve {

// The failure seams the service exposes to injection.
enum class Seam : int {
  kQueueAdmit = 0,    // submit-side admission (simulates a flooded queue)
  kCacheLookup = 1,   // cache read on the worker path
  kCacheInsert = 2,   // cache fill after the leader computes
  kModelPredict = 3,  // GNN inference
  kFrameworkLoad = 4, // deserializing the model at construction
};

inline constexpr int kNumSeams = 5;

const char* seam_name(Seam seam);

// Which typed error a triggered seam raises.
enum class FaultKind {
  kTransient,         // serve::TransientError  -> retry path
  kModelUnavailable,  // serve::ModelUnavailableError -> degrade path
};

class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed = 0xC4A05u);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Arms a seam to fail each call with probability `probability`.
  void arm(Seam seam, double probability,
           FaultKind kind = FaultKind::kTransient);
  // Arms a seam to fail exactly on the given 1-based call numbers.
  void arm_nth(Seam seam, std::vector<std::uint64_t> calls,
               FaultKind kind = FaultKind::kTransient);

  // Counts one call to `seam` and reports whether it should fail.
  bool should_fail(Seam seam);
  // should_fail() + throws the seam's typed error when triggered.
  void maybe_throw(Seam seam, const std::string& what);

  std::int64_t calls(Seam seam) const;
  std::int64_t triggered(Seam seam) const;
  std::int64_t total_triggered() const;

 private:
  struct SeamState {
    double probability = 0.0;
    std::set<std::uint64_t> nth;  // 1-based scripted trigger calls
    FaultKind kind = FaultKind::kTransient;
    std::uint64_t num_calls = 0;
    std::uint64_t num_triggered = 0;
    Rng rng;
  };

  mutable std::mutex mu_;
  std::array<SeamState, kNumSeams> seams_;
};

}  // namespace m3dfl::serve

#endif  // M3DFL_SERVE_FAULT_INJECTOR_H_
