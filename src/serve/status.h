// Structured failure taxonomy for the serving layer.
//
// Worker threads never let exceptions cross the service boundary: every
// request resolves to a DiagnosisResult carrying a StatusCode, so callers
// (the CLI batch driver, the ordered report sink, the metrics tables) can
// account for partial failure instead of unwinding.  The taxonomy separates
// the four operational responses a serving stack needs:
//
//   kInvalidInput      reject   — the request can never succeed; fix the log
//   kDeadlineExceeded  give up  — the answer is no longer wanted
//   kOverloaded        shed     — retry later against a less loaded service
//   kTransient         retry    — same request may succeed immediately
//   kModelUnavailable  degrade  — fall back to ATPG-only ranking
//   kShuttingDown      fail     — the service is going away
//   kInternal          page     — a bug; nothing the caller can do
//   kLintRejected      reject   — the *design* failed static analysis at
//                                 registration; no log against it can be
//                                 diagnosed until the design is fixed
//   kQuotaExceeded     shed     — this *tenant* is over its fleet admission
//                                 quota; other tenants keep serving (see
//                                 serve/fleet.h)
//   kSessionExpired    reopen   — the streaming session is gone (idle/stall
//                                 deadline, LRU eviction, disconnect, or an
//                                 unknown id); begin a new session and
//                                 re-feed (see serve/session.h)
//
// The typed exceptions below are how stages *inside* a worker signal a
// classified failure to the retry/degrade machinery in service.cc; they are
// caught before the promise is fulfilled and never escape the worker.
#ifndef M3DFL_SERVE_STATUS_H_
#define M3DFL_SERVE_STATUS_H_

#include <string>

#include "util/error.h"

namespace m3dfl::serve {

enum class StatusCode : int {
  kOk = 0,
  kInvalidInput = 1,
  kDeadlineExceeded = 2,
  kOverloaded = 3,
  kTransient = 4,
  kModelUnavailable = 5,
  kShuttingDown = 6,
  kInternal = 7,
  kLintRejected = 8,
  kQuotaExceeded = 9,
  kSessionExpired = 10,
};

inline constexpr int kNumStatusCodes = 11;

inline const char* status_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidInput: return "INVALID_INPUT";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kOverloaded: return "OVERLOADED";
    case StatusCode::kTransient: return "TRANSIENT";
    case StatusCode::kModelUnavailable: return "MODEL_UNAVAILABLE";
    case StatusCode::kShuttingDown: return "SHUTTING_DOWN";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kLintRejected: return "LINT_REJECTED";
    case StatusCode::kQuotaExceeded: return "QUOTA_EXCEEDED";
    case StatusCode::kSessionExpired: return "SESSION_EXPIRED";
  }
  return "UNKNOWN";
}

// A failure that is expected to clear on its own (allocation pressure,
// injected chaos, a coalesced leader that died): safe to retry.
class TransientError : public Error {
 public:
  explicit TransientError(const std::string& what) : Error(what) {}
};

// The GNN model cannot serve this request (missing, failed to load, corrupt
// stream, injected model fault): degrade to ATPG-only ranking if allowed.
class ModelUnavailableError : public Error {
 public:
  explicit ModelUnavailableError(const std::string& what) : Error(what) {}
};

// Raised at a stage boundary once a request's deadline has passed.
class DeadlineError : public Error {
 public:
  explicit DeadlineError(const std::string& what) : Error(what) {}
};

}  // namespace m3dfl::serve

#endif  // M3DFL_SERVE_STATUS_H_
