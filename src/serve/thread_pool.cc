#include "serve/thread_pool.h"

#include "util/error.h"

namespace m3dfl::serve {

void WorkerPool::start(std::size_t num_threads,
                       const std::function<void(std::size_t)>& body) {
  M3DFL_REQUIRE(threads_.empty(), "worker pool already started");
  M3DFL_REQUIRE(num_threads > 0, "worker pool needs at least one thread");
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([body, i] { body(i); });
  }
}

void WorkerPool::join() {
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

}  // namespace m3dfl::serve
