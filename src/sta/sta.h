// Static timing & testability analysis over a finalized netlist.
//
// The timing graph's nodes are the netlist's pins (the same global PinId
// space the fault models and the diagnosis graph use).  Arrival times
// propagate forward from sources (primary inputs at 0, flop Q outputs at
// clock-to-Q) in the existing topological order; required times propagate
// backward from endpoints (primary-output inputs and flop D inputs, both due
// at the capture clock).  slack(pin) = required - arrival; the worst
// endpoint slack is the WNS and the sum of negative endpoint slacks the TNS.
//
// On top of the per-pin times the engine answers the structural queries the
// rest of the pipeline needs:
//
//  * critical_path() / k_longest_paths(k) — the K longest source->endpoint
//    paths, enumerated in non-increasing delay order by best-first search
//    with the exact longest-suffix heuristic (an A* whose heuristic is the
//    DP the arrival pass already computed, so the first K pops are the K
//    longest paths with no post-filtering).
//  * k_longest_paths_through_pin(pin, k) — the sensitization-margin query
//    diagnosis cannot ask today (diag/atpg_diagnosis.h concedes the capture
//    edge "depends on path slack the tool cannot see"): top prefixes into
//    the pin crossed with top suffixes out of it.
//  * k_longest_paths_through_miv(miv, k) — the same through an MIV's
//    far-tier branches.
//  * untestable_faults() — delay-fault sites that cannot produce a capture
//    failure: no structural path to any observation point (scan-blocked),
//    no path from any launch source (defensive; finalize() rejects these),
//    or slack margin beyond the capture window (slack > max_defect_ps, the
//    gross-delay defect size bound; 0 disables the margin criterion).
//
// Delay-fault collapsing lives in sta/collapse.h; the lint bridge that
// turns an analysis into lint::TimingFacts lives in sta/lint_bridge.h.
#ifndef M3DFL_STA_STA_H_
#define M3DFL_STA_STA_H_

#include <cstdint>
#include <vector>

#include "m3d/miv.h"
#include "m3d/partition.h"
#include "netlist/netlist.h"
#include "sim/fault.h"
#include "sta/delay_model.h"

namespace m3dfl::sta {

// Sentinel for "no constraint": required time of a pin whose fan-out cone
// reaches no endpoint (and the slack of such pins).
inline constexpr double kUnconstrainedPs = 1e18;

struct StaOptions {
  DelayModel model = DelayModel::defaults();
  // Capture clock period.  0 = auto: clock_guard * critical path delay
  // (a freshly closed design with a thin guard band).
  double clock_ps = 0.0;
  double clock_guard = 1.10;
  // Gross-delay defect size bound for the slack-margin untestability
  // criterion: a fault whose every path has slack > max_defect_ps cannot
  // miss the capture edge.  0 disables the criterion (no size assumption).
  double max_defect_ps = 0.0;
  // Slack threshold under which an MIV's far-tier branch counts as having
  // "zero margin" for the miv-zero-slack-margin lint check.  0 = auto
  // (the model's own miv_penalty_ps: a via whose slack is inside its own
  // nominal delay fails on normal process variation).
  double miv_margin_ps = 0.0;
};

// One source->endpoint timing path (or a path segment for through-queries):
// alternating output/input pins from a launch source to a capture endpoint.
struct TimingPath {
  std::vector<PinId> pins;
  double delay_ps = 0.0;
  double slack_ps = 0.0;
};

enum class UntestableReason : std::uint8_t {
  kSlackMargin = 0,    // slack > max_defect_ps: defect cannot reach capture
  kUnobservable = 1,   // no structural path to any observation point
  kUncontrollable = 2, // no structural path from any launch source
};
const char* untestable_reason_name(UntestableReason reason);

struct UntestableFault {
  Fault fault;
  UntestableReason reason = UntestableReason::kUnobservable;
  // Site slack (min over the MIV's far branches for MIV faults);
  // kUnconstrainedPs for unobservable sites.
  double slack_ps = 0.0;
};

class TimingAnalysis {
 public:
  // `tiers` and `mivs` may be null (no tier derating / MIV penalties, e.g.
  // for a bare .mnl netlist); when one is given both must be.
  TimingAnalysis(const Netlist& netlist, const TierAssignment* tiers,
                 const MivMap* mivs, const StaOptions& options = {});

  const StaOptions& options() const { return options_; }
  double clock_ps() const { return clock_ps_; }
  // Longest source->endpoint arrival (the critical path delay).
  double critical_delay_ps() const { return critical_delay_ps_; }

  double arrival_ps(PinId pin) const {
    return arrival_[static_cast<std::size_t>(pin)];
  }
  double required_ps(PinId pin) const {
    return required_[static_cast<std::size_t>(pin)];
  }
  double slack_ps(PinId pin) const {
    return required_ps(pin) - arrival_ps(pin);
  }
  // Slack observed on a net (at its driver's output pin).
  double net_slack_ps(NetId net) const;

  // Worst / total negative slack over the capture endpoints.
  double wns_ps() const { return wns_ps_; }
  double tns_ps() const { return tns_ps_; }
  // Capture endpoints (PO input pins and flop D input pins), in pin order.
  const std::vector<PinId>& endpoints() const { return endpoints_; }

  TimingPath critical_path() const;
  // The k longest source->endpoint paths, non-increasing delay.
  std::vector<TimingPath> k_longest_paths(std::int32_t k) const;
  // The k longest complete paths through `pin` / through any far-tier
  // branch of `miv` (requires a MivMap).
  std::vector<TimingPath> k_longest_paths_through_pin(PinId pin,
                                                      std::int32_t k) const;
  std::vector<TimingPath> k_longest_paths_through_miv(MivId miv,
                                                      std::int32_t k) const;

  // Untestable delay faults over the TDF universe (both directions at every
  // pin, plus every MIV), ordered by fault site.
  std::vector<UntestableFault> untestable_faults() const;

 private:
  // Edge weight of the net hop into input pin `pin` (net + MIV penalty).
  double hop_delay(PinId pin) const {
    return options_.model.net_delay_ps +
           (far_branch_[static_cast<std::size_t>(pin)]
                ? options_.model.miv_penalty_ps
                : 0.0);
  }
  double gate_delay(GateId gate) const;
  bool is_endpoint(PinId pin) const {
    return endpoint_flag_[static_cast<std::size_t>(pin)];
  }

  void build_penalties();
  void propagate_arrival();
  void propagate_required();

  // Best-first enumeration of the k longest suffixes (pin -> endpoint) /
  // prefixes (source -> pin) starting from `pin`.  Suffix paths include
  // `pin` itself; suffix delay excludes the arrival at `pin`.  Prefix paths
  // end at `pin`; prefix delay is the arrival along that specific path.
  std::vector<TimingPath> longest_suffixes(PinId pin, std::int32_t k) const;
  std::vector<TimingPath> longest_prefixes(PinId pin, std::int32_t k) const;

  const Netlist& nl_;
  const TierAssignment* tiers_;
  const MivMap* mivs_;
  StaOptions options_;

  std::vector<char> far_branch_;     // input pin sits on an MIV far branch
  std::vector<char> endpoint_flag_;  // pin is a capture endpoint
  std::vector<PinId> endpoints_;
  std::vector<double> arrival_;
  std::vector<double> required_;
  // Longest suffix delay from each pin to any endpoint; -1 when the pin
  // reaches no endpoint (unobservable).
  std::vector<double> suffix_;
  double clock_ps_ = 0.0;
  double critical_delay_ps_ = 0.0;
  double wns_ps_ = 0.0;
  double tns_ps_ = 0.0;
};

}  // namespace m3dfl::sta

#endif  // M3DFL_STA_STA_H_
