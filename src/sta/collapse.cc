#include "sta/collapse.h"

#include <algorithm>
#include <unordered_map>

#include "util/error.h"

namespace m3dfl::sta {
namespace {

// Minimal union-find over fault indices; path-halving, union by lower root
// so the class representative falls out of the structure.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    for (std::size_t i = 0; i < n; ++i) {
      parent_[i] = static_cast<std::int32_t>(i);
    }
  }

  std::int32_t find(std::int32_t x) {
    while (parent_[static_cast<std::size_t>(x)] != x) {
      parent_[static_cast<std::size_t>(x)] =
          parent_[static_cast<std::size_t>(
              parent_[static_cast<std::size_t>(x)])];
      x = parent_[static_cast<std::size_t>(x)];
    }
    return x;
  }

  void unite(std::int32_t a, std::int32_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (a > b) std::swap(a, b);
    parent_[static_cast<std::size_t>(b)] = a;
  }

 private:
  std::vector<std::int32_t> parent_;
};

constexpr std::int32_t kRise = 0;
constexpr std::int32_t kFall = 1;

std::int32_t index_of(PinId pin, std::int32_t dir) { return 2 * pin + dir; }

}  // namespace

std::int32_t CollapsedFaults::num_dominated() const {
  return static_cast<std::int32_t>(
      std::count_if(dominated_by.begin(), dominated_by.end(),
                    [](std::int32_t d) { return d >= 0; }));
}

CollapsedFaults collapse_tdf_faults(const Netlist& netlist) {
  M3DFL_REQUIRE(netlist.finalized(),
                "fault collapsing requires a finalized netlist");
  CollapsedFaults out;
  const std::size_t num_faults =
      2 * static_cast<std::size_t>(netlist.num_pins());
  out.full.reserve(num_faults);
  for (PinId p = 0; p < netlist.num_pins(); ++p) {
    out.full.push_back(Fault::slow_to_rise(p));
    out.full.push_back(Fault::slow_to_fall(p));
  }

  UnionFind uf(num_faults);

  // Rule (a): a single-sink net carries the same transition at both ends.
  for (NetId n = 0; n < netlist.num_nets(); ++n) {
    const Net& net = netlist.net(n);
    if (net.sinks.size() != 1) continue;
    const PinId out_pin = netlist.output_pin(net.driver);
    const PinId sink_pin = netlist.pin_id(net.sinks.front());
    uf.unite(index_of(out_pin, kRise), index_of(sink_pin, kRise));
    uf.unite(index_of(out_pin, kFall), index_of(sink_pin, kFall));
  }

  // Rules (b)/(c): buffers pass the transition through, inverters flip it.
  for (GateId g : netlist.topo_order()) {
    const GateType type = netlist.gate(g).type;
    if (type != GateType::kBuf && type != GateType::kInv) continue;
    const PinId in = netlist.input_pin(g, 0);
    const PinId gout = netlist.output_pin(g);
    if (type == GateType::kBuf) {
      uf.unite(index_of(in, kRise), index_of(gout, kRise));
      uf.unite(index_of(in, kFall), index_of(gout, kFall));
    } else {
      uf.unite(index_of(in, kRise), index_of(gout, kFall));
      uf.unite(index_of(in, kFall), index_of(gout, kRise));
    }
  }

  // Dense class ids in first-appearance order; union-by-lower-root makes
  // each root the lowest index of its class, i.e. the representative.
  out.class_of.assign(num_faults, -1);
  std::unordered_map<std::int32_t, std::int32_t> root_to_class;
  root_to_class.reserve(num_faults);
  for (std::size_t i = 0; i < num_faults; ++i) {
    const std::int32_t root = uf.find(static_cast<std::int32_t>(i));
    const auto [it, inserted] = root_to_class.try_emplace(
        root, static_cast<std::int32_t>(out.class_representative.size()));
    if (inserted) out.class_representative.push_back(root);
    out.class_of[i] = it->second;
  }

  // Dominance: for a controlling-value gate, any test that propagates an
  // input transition necessarily propagates the resulting output transition
  // — the output fault's test set is a superset.  Non-inverting gates keep
  // the direction, inverting gates flip it; XOR/XNOR/MUX have no such
  // superset relation and are skipped.
  out.dominated_by.assign(num_faults, -1);
  for (GateId g : netlist.topo_order()) {
    const Gate& gate = netlist.gate(g);
    bool invert = false;
    switch (gate.type) {
      case GateType::kAnd:
      case GateType::kOr:
        invert = false;
        break;
      case GateType::kNand:
      case GateType::kNor:
        invert = true;
        break;
      default:
        continue;
    }
    if (gate.fanin.size() < 2) continue;
    const PinId gout = netlist.output_pin(g);
    for (std::size_t i = 0; i < gate.fanin.size(); ++i) {
      const PinId in = netlist.input_pin(g, static_cast<std::int32_t>(i));
      for (std::int32_t dir = kRise; dir <= kFall; ++dir) {
        out.dominated_by[static_cast<std::size_t>(index_of(in, dir))] =
            index_of(gout, invert ? (1 - dir) : dir);
      }
    }
  }
  return out;
}

}  // namespace m3dfl::sta
