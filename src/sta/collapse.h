// Structural collapsing of the transition-delay-fault universe.
//
// The full TDF list has two faults per pin (slow-to-rise / slow-to-fall,
// enumerated exactly like atpg::enumerate_tdf_faults: STR then STF per pin,
// pins ascending).  Many of those faults are *equivalent* — no test can tell
// them apart because they corrupt the same transitions at the same place:
//
//  (a) a net with a single sink: the driver's output pin and the sink's
//      input pin see the same transition (same direction);
//  (b) a buffer: input and output faults are the same defect (same
//      direction);
//  (c) an inverter: input and output faults are the same defect with the
//      direction flipped (a slow rise at the input is a slow fall at the
//      output).
//
// The transitive closure of those rules collapses every fanout-free chain to
// one representative per direction.  Equivalence is observation-preserving:
// any simulator result (detection bit or full observation list) computed for
// one member is byte-identical for every member, which is what makes the
// opt-in collapsed simulation paths in atpg/coverage and diag/atpg_diagnosis
// exact rather than approximate.
//
// Dominance (an output fault of an AND/OR/NAND/NOR whose tests are a
// superset of an input fault's) is *reported* via dominated_by but never
// merged: dominated faults have different observation sets, so folding them
// would break the byte-identity guarantee.  Consumers that only need
// detection counts may drop dominated faults themselves.
#ifndef M3DFL_STA_COLLAPSE_H_
#define M3DFL_STA_COLLAPSE_H_

#include <cstdint>
#include <vector>

#include "netlist/netlist.h"
#include "sim/fault.h"

namespace m3dfl::sta {

// Fault index convention shared with atpg::enumerate_tdf_faults:
// index = 2 * pin + (slow-to-fall ? 1 : 0).
inline std::int32_t tdf_fault_index(const Fault& fault) {
  return 2 * fault.pin + (fault.type == FaultType::kSlowToFall ? 1 : 0);
}

struct CollapsedFaults {
  // Full TDF list in enumeration order (index == tdf_fault_index).
  std::vector<Fault> full;
  // Equivalence class of each full-list fault; class ids are dense and
  // assigned in first-appearance order over the full list.
  std::vector<std::int32_t> class_of;
  // Representative (lowest full-list index) of each class.
  std::vector<std::int32_t> class_representative;
  // Dominating fault's full-list index, or -1.  Reported only — dominated
  // faults keep their own equivalence class.
  std::vector<std::int32_t> dominated_by;

  std::int32_t num_classes() const {
    return static_cast<std::int32_t>(class_representative.size());
  }
  const Fault& representative(std::int32_t cls) const {
    return full[static_cast<std::size_t>(
        class_representative[static_cast<std::size_t>(cls)])];
  }
  double collapse_ratio() const {
    return class_representative.empty()
               ? 1.0
               : static_cast<double>(full.size()) /
                     static_cast<double>(class_representative.size());
  }
  std::int32_t num_dominated() const;
};

// Collapses the TDF universe of a finalized netlist.
CollapsedFaults collapse_tdf_faults(const Netlist& netlist);

}  // namespace m3dfl::sta

#endif  // M3DFL_STA_COLLAPSE_H_
