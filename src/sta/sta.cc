#include "sta/sta.h"

#include <algorithm>
#include <queue>

#include "util/error.h"

namespace m3dfl::sta {
namespace {

// Safety valve for the best-first path enumerations: the heuristic is exact,
// so each emitted path costs at most O(path length) pops, but a pathological
// k on a wide design should degrade to "fewer paths", not an OOM.
constexpr std::size_t kMaxExpansions = 2'000'000;

// Parent-arena node for best-first search: paths are reconstructed by
// walking parent links, so enqueueing a state is O(1) instead of copying the
// partial path.
struct SearchNode {
  PinId pin = kNullPin;
  std::int32_t parent = -1;
  double delay = 0.0;  // accumulated path delay at `pin`
};

struct QueueEntry {
  double priority = 0.0;  // delay so far + exact remaining-path bound
  std::int32_t node = -1;

  bool operator<(const QueueEntry& other) const {
    // std::priority_queue is a max-heap; ties broken on node id for
    // deterministic ordering across platforms.
    if (priority != other.priority) return priority < other.priority;
    return node > other.node;
  }
};

std::vector<PinId> reconstruct(const std::vector<SearchNode>& arena,
                               std::int32_t tail) {
  std::vector<PinId> pins;
  for (std::int32_t at = tail; at != -1; at = arena[static_cast<std::size_t>(at)].parent) {
    pins.push_back(arena[static_cast<std::size_t>(at)].pin);
  }
  std::reverse(pins.begin(), pins.end());
  return pins;
}

}  // namespace

const char* untestable_reason_name(UntestableReason reason) {
  switch (reason) {
    case UntestableReason::kSlackMargin:
      return "slack-margin";
    case UntestableReason::kUnobservable:
      return "unobservable";
    case UntestableReason::kUncontrollable:
      return "uncontrollable";
  }
  return "unknown";
}

TimingAnalysis::TimingAnalysis(const Netlist& netlist,
                               const TierAssignment* tiers, const MivMap* mivs,
                               const StaOptions& options)
    : nl_(netlist), tiers_(tiers), mivs_(mivs), options_(options) {
  M3DFL_REQUIRE(nl_.finalized(), "STA requires a finalized netlist");
  M3DFL_REQUIRE((tiers_ == nullptr) == (mivs_ == nullptr),
                "STA needs tiers and MIVs together (or neither)");
  const auto n = static_cast<std::size_t>(nl_.num_pins());
  far_branch_.assign(n, 0);
  endpoint_flag_.assign(n, 0);
  arrival_.assign(n, -1.0);
  required_.assign(n, kUnconstrainedPs);
  suffix_.assign(n, -1.0);

  build_penalties();

  // Capture endpoints: every input pin of a primary output or scan flop.
  for (GateId g : nl_.primary_outputs()) {
    for (std::size_t i = 0; i < nl_.gate(g).fanin.size(); ++i) {
      endpoints_.push_back(nl_.input_pin(g, static_cast<std::int32_t>(i)));
    }
  }
  for (GateId g : nl_.flops()) {
    for (std::size_t i = 0; i < nl_.gate(g).fanin.size(); ++i) {
      endpoints_.push_back(nl_.input_pin(g, static_cast<std::int32_t>(i)));
    }
  }
  std::sort(endpoints_.begin(), endpoints_.end());
  for (PinId e : endpoints_) {
    endpoint_flag_[static_cast<std::size_t>(e)] = 1;
  }

  propagate_arrival();

  critical_delay_ps_ = 0.0;
  for (PinId e : endpoints_) {
    critical_delay_ps_ = std::max(critical_delay_ps_, arrival_ps(e));
  }
  clock_ps_ = options_.clock_ps > 0.0
                  ? options_.clock_ps
                  : options_.clock_guard * critical_delay_ps_;

  propagate_required();

  wns_ps_ = endpoints_.empty() ? 0.0 : kUnconstrainedPs;
  tns_ps_ = 0.0;
  for (PinId e : endpoints_) {
    const double s = slack_ps(e);
    wns_ps_ = std::min(wns_ps_, s);
    if (s < 0.0) tns_ps_ += s;
  }
}

double TimingAnalysis::gate_delay(GateId gate) const {
  const double base = options_.model.gate_delay(nl_.gate(gate).type);
  if (tiers_ == nullptr) return base;
  return base * options_.model.tier_derate(tiers_->tier_of(gate));
}

double TimingAnalysis::net_slack_ps(NetId net) const {
  return slack_ps(nl_.output_pin(nl_.net(net).driver));
}

void TimingAnalysis::build_penalties() {
  if (mivs_ == nullptr) return;
  for (const Miv& miv : mivs_->mivs()) {
    for (const PinRef& sink : miv.far_sinks) {
      far_branch_[static_cast<std::size_t>(nl_.pin_id(sink))] = 1;
    }
  }
}

void TimingAnalysis::propagate_arrival() {
  // Launch sources: PI outputs at their (zero) port delay, flop Q outputs at
  // clock-to-Q.
  for (GateId g : nl_.primary_inputs()) {
    arrival_[static_cast<std::size_t>(nl_.output_pin(g))] = gate_delay(g);
  }
  for (GateId g : nl_.flops()) {
    arrival_[static_cast<std::size_t>(nl_.output_pin(g))] = gate_delay(g);
  }

  const auto input_arrival = [&](PinId pin) {
    const GateId driver = nl_.net(nl_.pin_net(pin)).driver;
    return arrival_ps(nl_.output_pin(driver)) + hop_delay(pin);
  };

  for (GateId g : nl_.topo_order()) {
    const Gate& gate = nl_.gate(g);
    double worst_in = 0.0;
    for (std::size_t i = 0; i < gate.fanin.size(); ++i) {
      const PinId pin = nl_.input_pin(g, static_cast<std::int32_t>(i));
      const double at = input_arrival(pin);
      arrival_[static_cast<std::size_t>(pin)] = at;
      worst_in = std::max(worst_in, at);
    }
    arrival_[static_cast<std::size_t>(nl_.output_pin(g))] =
        worst_in + gate_delay(g);
  }

  // Capture endpoints read their driver like any other sink.
  for (PinId e : endpoints_) {
    arrival_[static_cast<std::size_t>(e)] = input_arrival(e);
  }
}

void TimingAnalysis::propagate_required() {
  for (PinId e : endpoints_) {
    required_[static_cast<std::size_t>(e)] = clock_ps_;
    suffix_[static_cast<std::size_t>(e)] = 0.0;
  }

  // Required time and longest-suffix DP share the same backward sweep: an
  // output pin is constrained by the tightest sink, and its longest suffix
  // is the slowest sink's.
  const auto relax_output = [&](GateId g) {
    const PinId out = nl_.output_pin(g);
    double req = kUnconstrainedPs;
    double suf = -1.0;
    for (const PinRef& sink_ref : nl_.net(nl_.gate(g).fanout).sinks) {
      const PinId sink = nl_.pin_id(sink_ref);
      const double hop = hop_delay(sink);
      req = std::min(req, required_ps(sink) - hop);
      if (suffix_[static_cast<std::size_t>(sink)] >= 0.0) {
        suf = std::max(suf, suffix_[static_cast<std::size_t>(sink)] + hop);
      }
    }
    required_[static_cast<std::size_t>(out)] = req;
    suffix_[static_cast<std::size_t>(out)] = suf;
  };

  const auto& topo = nl_.topo_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const GateId g = *it;
    relax_output(g);
    const PinId out = nl_.output_pin(g);
    const double delay = gate_delay(g);
    for (std::size_t i = 0; i < nl_.gate(g).fanin.size(); ++i) {
      const PinId pin = nl_.input_pin(g, static_cast<std::int32_t>(i));
      const double out_req = required_ps(out);
      required_[static_cast<std::size_t>(pin)] =
          out_req >= kUnconstrainedPs ? kUnconstrainedPs : out_req - delay;
      const double out_suf = suffix_[static_cast<std::size_t>(out)];
      suffix_[static_cast<std::size_t>(pin)] =
          out_suf >= 0.0 ? out_suf + delay : -1.0;
    }
  }
  for (GateId g : nl_.primary_inputs()) relax_output(g);
  for (GateId g : nl_.flops()) relax_output(g);
}

std::vector<TimingPath> TimingAnalysis::k_longest_paths(std::int32_t k) const {
  std::vector<TimingPath> out;
  if (k <= 0) return out;
  std::vector<SearchNode> arena;
  std::priority_queue<QueueEntry> queue;

  const auto push = [&](PinId pin, std::int32_t parent, double delay) {
    const double suf = suffix_[static_cast<std::size_t>(pin)];
    if (suf < 0.0) return;  // pin reaches no endpoint
    arena.push_back(SearchNode{pin, parent, delay});
    queue.push(
        QueueEntry{delay + suf, static_cast<std::int32_t>(arena.size()) - 1});
  };

  for (GateId g : nl_.primary_inputs()) {
    const PinId p = nl_.output_pin(g);
    push(p, -1, arrival_ps(p));
  }
  for (GateId g : nl_.flops()) {
    const PinId p = nl_.output_pin(g);
    push(p, -1, arrival_ps(p));
  }

  std::size_t expansions = 0;
  while (!queue.empty() && out.size() < static_cast<std::size_t>(k) &&
         ++expansions <= kMaxExpansions) {
    const QueueEntry top = queue.top();
    queue.pop();
    const SearchNode node = arena[static_cast<std::size_t>(top.node)];
    if (is_endpoint(node.pin)) {
      TimingPath path;
      path.pins = reconstruct(arena, top.node);
      path.delay_ps = node.delay;
      path.slack_ps = clock_ps_ - node.delay;
      out.push_back(std::move(path));
      continue;
    }
    const PinRef ref = nl_.pin_ref(node.pin);
    if (ref.is_output()) {
      for (const PinRef& sink_ref : nl_.net(nl_.pin_net(node.pin)).sinks) {
        const PinId sink = nl_.pin_id(sink_ref);
        push(sink, top.node, node.delay + hop_delay(sink));
      }
    } else {
      // Input pin of a combinational gate: the only successor is its output.
      push(nl_.output_pin(ref.gate), top.node,
           node.delay + gate_delay(ref.gate));
    }
  }
  return out;
}

TimingPath TimingAnalysis::critical_path() const {
  auto paths = k_longest_paths(1);
  return paths.empty() ? TimingPath{} : std::move(paths.front());
}

std::vector<TimingPath> TimingAnalysis::longest_suffixes(
    PinId pin, std::int32_t k) const {
  std::vector<TimingPath> out;
  if (k <= 0) return out;
  std::vector<SearchNode> arena;
  std::priority_queue<QueueEntry> queue;

  const auto push = [&](PinId p, std::int32_t parent, double delay) {
    const double suf = suffix_[static_cast<std::size_t>(p)];
    if (suf < 0.0) return;
    arena.push_back(SearchNode{p, parent, delay});
    queue.push(
        QueueEntry{delay + suf, static_cast<std::int32_t>(arena.size()) - 1});
  };

  push(pin, -1, 0.0);
  std::size_t expansions = 0;
  while (!queue.empty() && out.size() < static_cast<std::size_t>(k) &&
         ++expansions <= kMaxExpansions) {
    const QueueEntry top = queue.top();
    queue.pop();
    const SearchNode node = arena[static_cast<std::size_t>(top.node)];
    if (is_endpoint(node.pin)) {
      TimingPath path;
      path.pins = reconstruct(arena, top.node);
      path.delay_ps = node.delay;
      out.push_back(std::move(path));
      continue;
    }
    const PinRef ref = nl_.pin_ref(node.pin);
    if (ref.is_output()) {
      for (const PinRef& sink_ref : nl_.net(nl_.pin_net(node.pin)).sinks) {
        const PinId sink = nl_.pin_id(sink_ref);
        push(sink, top.node, node.delay + hop_delay(sink));
      }
    } else {
      push(nl_.output_pin(ref.gate), top.node,
           node.delay + gate_delay(ref.gate));
    }
  }
  return out;
}

std::vector<TimingPath> TimingAnalysis::longest_prefixes(
    PinId pin, std::int32_t k) const {
  std::vector<TimingPath> out;
  if (k <= 0) return out;
  std::vector<SearchNode> arena;
  std::priority_queue<QueueEntry> queue;

  // Backward search toward the launch sources; arrival[] is the exact
  // longest-remaining bound in this direction.
  const auto push = [&](PinId p, std::int32_t parent, double delay) {
    if (arrival_ps(p) < 0.0) return;
    arena.push_back(SearchNode{p, parent, delay});
    queue.push(QueueEntry{delay + arrival_ps(p),
                          static_cast<std::int32_t>(arena.size()) - 1});
  };

  const auto is_source_output = [&](const PinRef& ref) {
    if (!ref.is_output()) return false;
    const GateType type = nl_.gate(ref.gate).type;
    return type == GateType::kPrimaryInput || type == GateType::kScanFlop;
  };

  push(pin, -1, 0.0);
  std::size_t expansions = 0;
  while (!queue.empty() && out.size() < static_cast<std::size_t>(k) &&
         ++expansions <= kMaxExpansions) {
    const QueueEntry top = queue.top();
    queue.pop();
    const SearchNode node = arena[static_cast<std::size_t>(top.node)];
    const PinRef ref = nl_.pin_ref(node.pin);
    if (is_source_output(ref)) {
      TimingPath path;
      // Pins were collected endpoint-first along the backward walk, so the
      // arena order is already source->pin after reversal inside
      // reconstruct(); here the walk runs pin->source, giving source->pin
      // directly without the reverse.
      for (std::int32_t at = top.node; at != -1;
           at = arena[static_cast<std::size_t>(at)].parent) {
        path.pins.push_back(arena[static_cast<std::size_t>(at)].pin);
      }
      path.delay_ps = node.delay + arrival_ps(node.pin);  // + source delay
      out.push_back(std::move(path));
      continue;
    }
    if (ref.is_output()) {
      // Output pin of a combinational gate: predecessors are its inputs.
      const double delay = gate_delay(ref.gate);
      for (std::size_t i = 0; i < nl_.gate(ref.gate).fanin.size(); ++i) {
        push(nl_.input_pin(ref.gate, static_cast<std::int32_t>(i)), top.node,
             node.delay + delay);
      }
    } else {
      const GateId driver = nl_.net(nl_.pin_net(node.pin)).driver;
      push(nl_.output_pin(driver), top.node,
           node.delay + hop_delay(node.pin));
    }
  }
  return out;
}

std::vector<TimingPath> TimingAnalysis::k_longest_paths_through_pin(
    PinId pin, std::int32_t k) const {
  std::vector<TimingPath> out;
  if (k <= 0) return out;
  const auto prefixes = longest_prefixes(pin, k);
  const auto suffixes = longest_suffixes(pin, k);
  // Prefix delay ends *at* the pin and suffix delay starts *leaving* it, so
  // the pin's own position is counted once; k*k <= a few thousand pairs.
  for (const TimingPath& pre : prefixes) {
    for (const TimingPath& suf : suffixes) {
      TimingPath path;
      path.pins = pre.pins;
      path.pins.insert(path.pins.end(), suf.pins.begin() + 1, suf.pins.end());
      path.delay_ps = pre.delay_ps + suf.delay_ps;
      path.slack_ps = clock_ps_ - path.delay_ps;
      out.push_back(std::move(path));
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TimingPath& a, const TimingPath& b) {
                     return a.delay_ps > b.delay_ps;
                   });
  if (out.size() > static_cast<std::size_t>(k)) out.resize(static_cast<std::size_t>(k));
  return out;
}

std::vector<TimingPath> TimingAnalysis::k_longest_paths_through_miv(
    MivId miv, std::int32_t k) const {
  std::vector<TimingPath> out;
  M3DFL_REQUIRE(mivs_ != nullptr, "through-MIV query requires a MivMap");
  if (k <= 0) return out;
  // A complete path enters exactly one sink pin of the MIV's net, so the
  // per-far-sink enumerations are disjoint and merging needs no dedup.
  for (const PinRef& sink : mivs_->miv(miv).far_sinks) {
    auto paths = k_longest_paths_through_pin(nl_.pin_id(sink), k);
    out.insert(out.end(), std::make_move_iterator(paths.begin()),
               std::make_move_iterator(paths.end()));
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TimingPath& a, const TimingPath& b) {
                     return a.delay_ps > b.delay_ps;
                   });
  if (out.size() > static_cast<std::size_t>(k)) out.resize(static_cast<std::size_t>(k));
  return out;
}

std::vector<UntestableFault> TimingAnalysis::untestable_faults() const {
  std::vector<UntestableFault> out;
  const bool margin = options_.max_defect_ps > 0.0;
  const auto classify = [&](PinId pin, UntestableFault& u) {
    if (arrival_ps(pin) < 0.0) {
      // Defensive: finalize() rejects undriven logic, so launch-side
      // blockage should be impossible on a valid netlist.
      u.reason = UntestableReason::kUncontrollable;
      u.slack_ps = kUnconstrainedPs;
      return true;
    }
    if (suffix_[static_cast<std::size_t>(pin)] < 0.0) {
      u.reason = UntestableReason::kUnobservable;
      u.slack_ps = kUnconstrainedPs;
      return true;
    }
    if (margin && slack_ps(pin) > options_.max_defect_ps) {
      u.reason = UntestableReason::kSlackMargin;
      u.slack_ps = slack_ps(pin);
      return true;
    }
    return false;
  };

  for (PinId p = 0; p < nl_.num_pins(); ++p) {
    UntestableFault u;
    if (!classify(p, u)) continue;
    u.fault = Fault::slow_to_rise(p);
    out.push_back(u);
    u.fault = Fault::slow_to_fall(p);
    out.push_back(u);
  }
  if (mivs_ != nullptr) {
    for (MivId m = 0; m < mivs_->num_mivs(); ++m) {
      // An MIV defect is testable iff some far branch can both observe it
      // and has slack within the defect size bound.
      bool any_observable = false;
      double min_slack = kUnconstrainedPs;
      for (const PinRef& sink : mivs_->miv(m).far_sinks) {
        const PinId pin = nl_.pin_id(sink);
        if (suffix_[static_cast<std::size_t>(pin)] < 0.0) continue;
        any_observable = true;
        min_slack = std::min(min_slack, slack_ps(pin));
      }
      UntestableFault u;
      u.fault = Fault::miv_delay(m);
      if (!any_observable) {
        u.reason = UntestableReason::kUnobservable;
        u.slack_ps = kUnconstrainedPs;
        out.push_back(u);
      } else if (margin && min_slack > options_.max_defect_ps) {
        u.reason = UntestableReason::kSlackMargin;
        u.slack_ps = min_slack;
        out.push_back(u);
      }
    }
  }
  return out;
}

}  // namespace m3dfl::sta
