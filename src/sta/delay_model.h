// Configurable gate-level delay model for static timing analysis.
//
// The repo's simulators are gross-delay (a delayed transition misses the
// capture edge, period) — they deliberately carry no notion of *how much*
// slack a path has.  The STA engine closes that gap with the simplest model
// that captures the M3D-specific effects the paper cares about:
//
//   pin-to-pin gate delay   = gate_delay_ps[type] * tier_factor[tier(gate)]
//   net hop (driver->sink)  = net_delay_ps
//   inter-tier branch       = + miv_penalty_ps on an MIV's far-tier sinks
//
// The per-tier derating models the top tier's degraded transistors
// (sequential monolithic integration processes the top tier at low
// temperature), and the MIV penalty models via resistance — the two knobs
// that make M3D timing different from 2D.  Values are nominal picoseconds in
// the spirit of a 45nm library; their ratios, not absolutes, drive every
// consumer (slack signs, path ranking, collapsing is delay-independent).
#ifndef M3DFL_STA_DELAY_MODEL_H_
#define M3DFL_STA_DELAY_MODEL_H_

#include <array>

#include "m3d/partition.h"
#include "netlist/cell.h"

namespace m3dfl::sta {

struct DelayModel {
  // Intrinsic pin-to-output delay per gate type, indexed by GateType.
  // Ports are 0; the kScanFlop entry is the clock-to-Q delay of a source.
  std::array<double, kNumGateTypes> gate_delay_ps{};
  // Multiplier applied to a gate's intrinsic delay by its tier.
  std::array<double, kNumTiers> tier_factor{1.0, 1.0};
  // Interconnect delay of one net hop (driver output -> sink input).
  double net_delay_ps = 2.0;
  // Extra delay on an MIV's far-tier branches (via resistance).
  double miv_penalty_ps = 12.0;

  double gate_delay(GateType type) const {
    return gate_delay_ps[static_cast<std::size_t>(type)];
  }
  double tier_derate(int tier) const {
    return tier_factor[static_cast<std::size_t>(tier)];
  }

  // Nominal 45nm-flavoured defaults with an 8% top-tier derating.
  static DelayModel defaults();
};

}  // namespace m3dfl::sta

#endif  // M3DFL_STA_DELAY_MODEL_H_
