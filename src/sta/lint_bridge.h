// Bridge from sta analyses to lint::TimingFacts.
//
// lint/ never runs timing analysis itself (it only consumes plain data), so
// the fact extraction lives on the sta side of the dependency arrow, mirror
// of the serve -> lint JournalFacts bridge.
#ifndef M3DFL_STA_LINT_BRIDGE_H_
#define M3DFL_STA_LINT_BRIDGE_H_

#include "lint/checks.h"
#include "sta/collapse.h"
#include "sta/sta.h"

namespace m3dfl::sta {

// Extracts the timing-pass facts: negative-slack endpoints (worst first),
// untestable delay-fault sites, and MIV far branches whose slack is within
// the margin threshold (options().miv_margin_ps, or the model's own MIV
// penalty when 0).  `mivs` may be null; `collapsed`, when given, is
// validated via collapse_lint_facts().
lint::TimingFacts timing_lint_facts(const Netlist& netlist,
                                    const TimingAnalysis& analysis,
                                    const MivMap* mivs,
                                    const CollapsedFaults* collapsed);

// Validates a CollapsedFaults mapping against the netlist's fault universe
// and appends any inconsistency to `facts.collapse_orphans` (plus the
// fault/class totals).  Split out so a consumer holding a deserialized or
// cached mapping can audit it without re-running the timing analysis.
void collapse_lint_facts(const Netlist& netlist,
                         const CollapsedFaults& collapsed,
                         lint::TimingFacts& facts);

}  // namespace m3dfl::sta

#endif  // M3DFL_STA_LINT_BRIDGE_H_
