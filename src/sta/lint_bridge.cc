#include "sta/lint_bridge.h"

#include <algorithm>

namespace m3dfl::sta {
namespace {

std::string miv_location(const Netlist& netlist, const MivMap& mivs,
                         MivId id) {
  const Miv& miv = mivs.miv(id);
  const std::string net_name = netlist.net(miv.net).name.empty()
                                   ? "net " + std::to_string(miv.net)
                                   : netlist.net(miv.net).name;
  return "miv " + std::to_string(id) + " (" + net_name + ")";
}

}  // namespace

lint::TimingFacts timing_lint_facts(const Netlist& netlist,
                                    const TimingAnalysis& analysis,
                                    const MivMap* mivs,
                                    const CollapsedFaults* collapsed) {
  lint::TimingFacts facts;
  facts.clock_ps = analysis.clock_ps();
  facts.wns_ps = analysis.wns_ps();
  facts.tns_ps = analysis.tns_ps();

  for (PinId e : analysis.endpoints()) {
    const double slack = analysis.slack_ps(e);
    if (slack >= 0.0) continue;
    lint::TimingFacts::NegativeSlackPath p;
    p.location = netlist.pin_name(e);
    p.slack_ps = slack;
    p.delay_ps = analysis.arrival_ps(e);
    facts.negative_slack.push_back(std::move(p));
  }
  std::stable_sort(facts.negative_slack.begin(), facts.negative_slack.end(),
                   [](const auto& a, const auto& b) {
                     return a.slack_ps < b.slack_ps;
                   });

  for (const UntestableFault& u : analysis.untestable_faults()) {
    lint::TimingFacts::Untestable entry;
    entry.location = u.fault.is_miv() && mivs != nullptr
                         ? miv_location(netlist, *mivs, u.fault.miv)
                         : fault_to_string(netlist, u.fault);
    entry.why = untestable_reason_name(u.reason);
    entry.slack_ps = u.slack_ps;
    facts.untestable.push_back(std::move(entry));
  }

  if (mivs != nullptr) {
    const double threshold =
        analysis.options().miv_margin_ps > 0.0
            ? analysis.options().miv_margin_ps
            : analysis.options().model.miv_penalty_ps;
    facts.miv_margin_threshold_ps = threshold;
    for (MivId m = 0; m < mivs->num_mivs(); ++m) {
      for (const PinRef& sink : mivs->miv(m).far_sinks) {
        const PinId pin = netlist.pin_id(sink);
        const double slack = analysis.slack_ps(pin);
        if (slack >= threshold || slack >= kUnconstrainedPs / 2) continue;
        lint::TimingFacts::MivMargin entry;
        entry.location = miv_location(netlist, *mivs, m) + " -> " +
                         netlist.pin_name(pin);
        entry.slack_ps = slack;
        facts.tight_mivs.push_back(std::move(entry));
      }
    }
  }

  if (collapsed != nullptr) {
    collapse_lint_facts(netlist, *collapsed, facts);
  }
  return facts;
}

void collapse_lint_facts(const Netlist& netlist,
                         const CollapsedFaults& collapsed,
                         lint::TimingFacts& facts) {
  facts.collapse_faults = static_cast<std::int64_t>(collapsed.full.size());
  facts.collapse_classes = collapsed.num_classes();
  const auto orphan = [&](std::string location, std::string what) {
    facts.collapse_orphans.push_back(
        lint::TimingFacts::CollapseOrphan{std::move(location),
                                          std::move(what)});
  };

  const std::size_t expected =
      2 * static_cast<std::size_t>(netlist.num_pins());
  if (collapsed.full.size() != expected) {
    orphan("fault list",
           "holds " + std::to_string(collapsed.full.size()) +
               " faults but the netlist's TDF universe has " +
               std::to_string(expected));
  }
  if (collapsed.class_of.size() != collapsed.full.size()) {
    orphan("class map", "class_of covers " +
                            std::to_string(collapsed.class_of.size()) +
                            " of " + std::to_string(collapsed.full.size()) +
                            " faults");
    return;  // per-fault audit below would index out of bounds
  }

  const auto num_classes = collapsed.num_classes();
  for (std::size_t i = 0; i < collapsed.class_of.size(); ++i) {
    const std::int32_t cls = collapsed.class_of[i];
    if (cls >= 0 && cls < num_classes) continue;
    orphan("fault " + std::to_string(i) + " (" +
               fault_to_string(netlist, collapsed.full[i]) + ")",
           "class id " + std::to_string(cls) + " outside [0, " +
               std::to_string(num_classes) + ")");
  }
  for (std::int32_t cls = 0; cls < num_classes; ++cls) {
    const std::int32_t rep =
        collapsed.class_representative[static_cast<std::size_t>(cls)];
    if (rep < 0 ||
        rep >= static_cast<std::int32_t>(collapsed.class_of.size())) {
      orphan("class " + std::to_string(cls),
             "representative index " + std::to_string(rep) +
                 " outside the fault list");
      continue;
    }
    if (collapsed.class_of[static_cast<std::size_t>(rep)] != cls) {
      orphan("class " + std::to_string(cls),
             "representative " +
                 fault_to_string(netlist,
                                 collapsed.full[static_cast<std::size_t>(rep)]) +
                 " belongs to class " +
                 std::to_string(
                     collapsed.class_of[static_cast<std::size_t>(rep)]));
    }
  }
}

}  // namespace m3dfl::sta
