#include "sta/delay_model.h"

namespace m3dfl::sta {

DelayModel DelayModel::defaults() {
  DelayModel m;
  const auto set = [&](GateType type, double ps) {
    m.gate_delay_ps[static_cast<std::size_t>(type)] = ps;
  };
  set(GateType::kPrimaryInput, 0.0);
  set(GateType::kPrimaryOutput, 0.0);
  set(GateType::kBuf, 30.0);
  set(GateType::kInv, 20.0);
  set(GateType::kAnd, 40.0);
  set(GateType::kNand, 30.0);
  set(GateType::kOr, 40.0);
  set(GateType::kNor, 30.0);
  set(GateType::kXor, 60.0);
  set(GateType::kXnor, 60.0);
  set(GateType::kMux, 50.0);
  set(GateType::kScanFlop, 50.0);  // clock-to-Q
  m.tier_factor = {1.0, 1.08};
  m.net_delay_ps = 2.0;
  m.miv_penalty_ps = 12.0;
  return m;
}

}  // namespace m3dfl::sta
