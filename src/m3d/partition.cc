#include "m3d/partition.h"

#include <algorithm>
#include <numeric>

#include "util/rng.h"

namespace m3dfl {
namespace {

bool is_partitionable(GateType type) {
  return type != GateType::kPrimaryInput && type != GateType::kPrimaryOutput;
}

// Balanced random assignment of the partitionable gates.
void assign_random(const Netlist& nl, TierAssignment& ta, Rng& rng) {
  std::vector<GateId> logic;
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    if (is_partitionable(nl.gate(g).type)) logic.push_back(g);
  }
  rng.shuffle(logic);
  for (std::size_t i = 0; i < logic.size(); ++i) {
    ta.set_tier(logic[i], i < logic.size() / 2 ? kBottomTier : kTopTier);
  }
}

// Tiers by topological depth: shallow logic on the bottom tier, deep logic
// on top, with the threshold chosen for gate-count balance.  Flops inherit
// the tier of their first fan-out sink so launch paths stay tier-local.
void assign_level_driven(const Netlist& nl, TierAssignment& ta) {
  std::vector<std::int32_t> level_histogram(
      static_cast<std::size_t>(nl.max_level()) + 2, 0);
  std::int32_t num_logic = 0;
  for (GateId g : nl.topo_order()) {
    ++level_histogram[static_cast<std::size_t>(nl.level(g))];
    ++num_logic;
  }
  std::int32_t threshold = 0;
  std::int32_t below = 0;
  while (threshold < static_cast<std::int32_t>(level_histogram.size()) &&
         below < num_logic / 2) {
    below += level_histogram[static_cast<std::size_t>(threshold)];
    ++threshold;
  }
  for (GateId g : nl.topo_order()) {
    ta.set_tier(g, nl.level(g) < threshold ? kBottomTier : kTopTier);
  }
  for (GateId ff : nl.flops()) {
    const Net& qnet = nl.net(nl.gate(ff).fanout);
    int tier = kBottomTier;
    if (!qnet.sinks.empty()) tier = ta.tier_of(qnet.sinks.front().gate);
    ta.set_tier(ff, tier);
  }
}

// One greedy refinement pass: move gates whose move reduces the number of
// cut nets, respecting the balance constraint.  Returns the number of moves.
std::int32_t refine_pass(const Netlist& nl, TierAssignment& ta,
                         std::vector<GateId>& order, Rng& rng,
                         double balance_tolerance) {
  rng.shuffle(order);

  auto counts = ta.tier_gate_counts(nl);
  const std::int32_t total = counts[0] + counts[1];
  const auto max_skew = static_cast<std::int32_t>(
      balance_tolerance * static_cast<double>(total));

  // Gain of moving gate g to the opposite tier: for each incident net,
  // +1 if the net stops being cut, -1 if it becomes cut.
  const auto net_tiers = [&](NetId n, GateId exclude) {
    // Returns a pair (has_bottom, has_top) over the net's pins minus one gate.
    bool has[2] = {false, false};
    const Net& net = nl.net(n);
    const auto mark = [&](GateId g) {
      if (g == exclude) return;
      // Ports are pinned to the bottom tier.
      has[is_partitionable(nl.gate(g).type) ? ta.tier_of(g) : kBottomTier] =
          true;
    };
    mark(net.driver);
    for (const PinRef& s : net.sinks) mark(s.gate);
    return std::make_pair(has[0], has[1]);
  };

  std::int32_t moves = 0;
  for (GateId g : order) {
    const Gate& gate = nl.gate(g);
    const int from = ta.tier_of(g);
    const int to = 1 - from;
    // Balance check: a move from the larger side is always fine; from the
    // smaller side only while within tolerance.
    if (counts[from] - 1 < counts[to] + 1 - max_skew) continue;

    std::int32_t gain = 0;
    const auto consider = [&](NetId n) {
      const auto [has_bottom, has_top] = net_tiers(n, g);
      const bool others_on[2] = {has_bottom, has_top};
      // With g on `from`, the net is cut iff another pin sits on `to`; after
      // moving g to `to`, it is cut iff a pin remains on `from`.
      const bool was_cut = others_on[to];
      const bool now_cut = others_on[from];
      if (was_cut && !now_cut) ++gain;
      if (!was_cut && now_cut) --gain;
    };
    if (gate.fanout != kNullNet) consider(gate.fanout);
    for (NetId n : gate.fanin) consider(n);

    if (gain > 0) {
      ta.set_tier(g, to);
      --counts[from];
      ++counts[to];
      ++moves;
    }
  }
  return moves;
}

}  // namespace

std::vector<std::int32_t> TierAssignment::tier_gate_counts(
    const Netlist& netlist) const {
  std::vector<std::int32_t> counts(kNumTiers, 0);
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    if (is_partitionable(netlist.gate(g).type)) ++counts[tier_of(g)];
  }
  return counts;
}

std::int32_t TierAssignment::cut_size(const Netlist& netlist) const {
  // Ports sit on the bottom tier (package connectivity), so a net between
  // top-tier logic and a primary port crosses tiers too — consistent with
  // MivMap, which gives every such net an MIV.
  std::int32_t cut = 0;
  for (NetId n = 0; n < netlist.num_nets(); ++n) {
    const Net& net = netlist.net(n);
    bool has[2] = {false, false};
    has[tier_of(net.driver)] = true;
    for (const PinRef& s : net.sinks) has[tier_of(s.gate)] = true;
    if (has[0] && has[1]) ++cut;
  }
  return cut;
}

TierAssignment partition_tiers(const Netlist& netlist,
                               const PartitionOptions& options) {
  M3DFL_REQUIRE(netlist.finalized(), "partitioning requires a finalized netlist");
  TierAssignment ta(std::vector<std::int8_t>(
      static_cast<std::size_t>(netlist.num_gates()), kBottomTier));
  Rng rng(options.seed);

  switch (options.method) {
    case PartitionMethod::kRandom:
      assign_random(netlist, ta, rng);
      break;
    case PartitionMethod::kLevelDriven:
      assign_level_driven(netlist, ta);
      break;
    case PartitionMethod::kMinCut: {
      assign_random(netlist, ta, rng);
      std::vector<GateId> order;
      for (GateId g = 0; g < netlist.num_gates(); ++g) {
        if (is_partitionable(netlist.gate(g).type)) order.push_back(g);
      }
      for (int pass = 0; pass < options.max_passes; ++pass) {
        if (refine_pass(netlist, ta, order, rng, options.balance_tolerance) ==
            0) {
          break;
        }
      }
      break;
    }
  }
  // Ports stay on the bottom tier.
  for (GateId g : netlist.primary_inputs()) ta.set_tier(g, kBottomTier);
  for (GateId g : netlist.primary_outputs()) ta.set_tier(g, kBottomTier);
  return ta;
}

}  // namespace m3dfl
