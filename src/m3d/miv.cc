#include "m3d/miv.h"

namespace m3dfl {

MivMap::MivMap(const Netlist& netlist, const TierAssignment& tiers) {
  M3DFL_REQUIRE(netlist.finalized(), "MIV extraction requires a finalized netlist");
  net_to_miv_.assign(static_cast<std::size_t>(netlist.num_nets()), kNullMiv);
  for (NetId n = 0; n < netlist.num_nets(); ++n) {
    const Net& net = netlist.net(n);
    const int driver_tier = tiers.tier_of(net.driver);
    std::vector<PinRef> far;
    for (const PinRef& sink : net.sinks) {
      if (tiers.tier_of(sink.gate) != driver_tier) far.push_back(sink);
    }
    if (far.empty()) continue;
    net_to_miv_[static_cast<std::size_t>(n)] =
        static_cast<MivId>(mivs_.size());
    mivs_.push_back(Miv{n, driver_tier, std::move(far)});
  }
}

}  // namespace m3dfl
