// Monolithic inter-tier via (MIV) extraction.
//
// Given a tier assignment, every net whose pins span both tiers is routed
// through one MIV.  MIVs are first-class diagnosis objects in the paper: they
// are prone to delay defects (voids from inter-layer-dielectric roughness)
// and each MIV becomes a node of the heterogeneous diagnosis graph so it can
// be pinpointed directly.
#ifndef M3DFL_M3D_MIV_H_
#define M3DFL_M3D_MIV_H_

#include <cstdint>
#include <vector>

#include "m3d/partition.h"
#include "netlist/netlist.h"

namespace m3dfl {

using MivId = std::int32_t;
inline constexpr MivId kNullMiv = -1;

// One monolithic inter-tier via.
struct Miv {
  NetId net = kNullNet;     // net routed through this via
  int driver_tier = 0;      // tier of the net's driver
  // Sink pins on the tier opposite to the driver; a delay defect in the via
  // delays exactly these branches.
  std::vector<PinRef> far_sinks;
};

// MIV inventory for a (netlist, tier assignment) pair.
class MivMap {
 public:
  MivMap() = default;
  MivMap(const Netlist& netlist, const TierAssignment& tiers);

  std::int32_t num_mivs() const { return static_cast<std::int32_t>(mivs_.size()); }
  const Miv& miv(MivId id) const {
    M3DFL_ASSERT(id >= 0 && id < num_mivs());
    return mivs_[static_cast<std::size_t>(id)];
  }
  const std::vector<Miv>& mivs() const { return mivs_; }

  // MIV on a net, or kNullMiv if the net does not cross tiers.
  MivId miv_of_net(NetId net) const {
    M3DFL_ASSERT(net >= 0 &&
                 net < static_cast<NetId>(net_to_miv_.size()));
    return net_to_miv_[static_cast<std::size_t>(net)];
  }

 private:
  std::vector<Miv> mivs_;
  std::vector<MivId> net_to_miv_;
};

}  // namespace m3dfl

#endif  // M3DFL_M3D_MIV_H_
