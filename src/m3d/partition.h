// Tier partitioning for monolithic 3-D designs.
//
// An M3D design places standard cells on two (or more) device tiers; nets
// that cross tiers are routed through monolithic inter-tier vias (MIVs).
// This module assigns every gate to a tier.  Three methods model the
// partitioning tools referenced by the paper:
//
//  * kMinCut       — area-balanced iterative min-cut refinement, the stand-in
//                    for the placement-driven partitioner of Panth et al.
//                    (paper ref. [34]); default for Syn-1 style flows.
//  * kLevelDriven  — assigns tiers by topological depth, a structurally
//                    different assignment standing in for the alternative
//                    TP-GNN partitioner (paper ref. [27]); the "Par" config.
//  * kRandom       — balanced random assignment; used for the paper's
//                    data-augmentation scheme (Sec. IV), which trains on
//                    randomly partitioned netlists to diversify the dataset.
//
// Primary inputs/outputs are always kept on the bottom tier (package
// connectivity); only logic gates and flops are partitioned.
#ifndef M3DFL_M3D_PARTITION_H_
#define M3DFL_M3D_PARTITION_H_

#include <cstdint>
#include <vector>

#include "netlist/netlist.h"

namespace m3dfl {

// Two-tier M3D: tier 0 = bottom, tier 1 = top.
inline constexpr int kBottomTier = 0;
inline constexpr int kTopTier = 1;
inline constexpr int kNumTiers = 2;

// Per-gate tier assignment.
class TierAssignment {
 public:
  TierAssignment() = default;
  explicit TierAssignment(std::vector<std::int8_t> tiers)
      : tiers_(std::move(tiers)) {}

  int tier_of(GateId gate) const {
    M3DFL_ASSERT(gate >= 0 &&
                 gate < static_cast<GateId>(tiers_.size()));
    return tiers_[static_cast<std::size_t>(gate)];
  }
  void set_tier(GateId gate, int tier) {
    M3DFL_ASSERT(gate >= 0 &&
                 gate < static_cast<GateId>(tiers_.size()));
    M3DFL_ASSERT(tier == kBottomTier || tier == kTopTier);
    tiers_[static_cast<std::size_t>(gate)] = static_cast<std::int8_t>(tier);
  }
  std::size_t size() const { return tiers_.size(); }

  // Logic-gate count per tier (PIs/POs excluded).
  std::vector<std::int32_t> tier_gate_counts(const Netlist& netlist) const;
  // Number of nets whose pins span both tiers (== MIV count).
  std::int32_t cut_size(const Netlist& netlist) const;

 private:
  std::vector<std::int8_t> tiers_;
};

enum class PartitionMethod { kMinCut, kLevelDriven, kRandom };

struct PartitionOptions {
  PartitionMethod method = PartitionMethod::kMinCut;
  std::uint64_t seed = 1;
  // Max allowed imbalance as a fraction of the logic gate count.
  double balance_tolerance = 0.05;
  // Refinement passes for kMinCut.
  int max_passes = 12;
};

// Partitions a finalized netlist into two tiers.
TierAssignment partition_tiers(const Netlist& netlist,
                               const PartitionOptions& options);

}  // namespace m3dfl

#endif  // M3DFL_M3D_PARTITION_H_
