// Dataset construction: fault injection -> failure log -> back-trace ->
// labeled subgraph (the per-sample path of paper Fig. 1, left branch).
#ifndef M3DFL_CORE_PIPELINE_H_
#define M3DFL_CORE_PIPELINE_H_

#include <vector>

#include "core/framework.h"
#include "diag/datagen.h"
#include "graph/subgraph.h"

namespace m3dfl {

// Samples and their back-traced, labeled subgraphs (parallel vectors).
struct LabeledDataset {
  std::vector<Sample> samples;
  std::vector<Subgraph> graphs;

  std::size_t size() const { return samples.size(); }
  void append(LabeledDataset&& other);
};

// Generates `options.num_samples` labeled samples on one design.
LabeledDataset build_dataset(const Design& design,
                             const DataGenOptions& options);

// Back-traces one failure log into a subgraph (unlabeled).
Subgraph subgraph_for_log(const Design& design, const FailureLog& log);

// The paper's transferable training set: Syn-1 plus two randomly partitioned
// netlists of the same profile (data augmentation, Sec. IV).
struct TransferTrainOptions {
  std::int32_t samples_syn1 = 280;
  std::int32_t samples_per_random = 140;
  double miv_fault_prob = 0.2;
  bool compacted = false;
  std::uint64_t seed = 2024;
};

LabeledDataset build_transfer_training_set(Profile profile,
                                           const Design& syn1,
                                           const TransferTrainOptions& options);

}  // namespace m3dfl

#endif  // M3DFL_CORE_PIPELINE_H_
