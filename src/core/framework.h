// Public end-to-end API.
//
// Design            — owns one fully prepared circuit-under-diagnosis: the
//                     netlist (with optional test points), tier assignment,
//                     MIVs, scan/compaction architecture, the generated TDF
//                     pattern set, the good-machine simulation, and the
//                     heterogeneous diagnosis graph.
// DiagnosisFramework — the paper's proposal: Tier-predictor, MIV-pinpointer,
//                     PR-threshold selection, transfer-learned Classifier,
//                     and the candidate pruning & reordering policy
//                     (Figs. 1, 7, 8).
#ifndef M3DFL_CORE_FRAMEWORK_H_
#define M3DFL_CORE_FRAMEWORK_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/config.h"
#include "diag/atpg_diagnosis.h"
#include "diag/datagen.h"
#include "diag/report.h"
#include "gnn/model.h"
#include "gnn/pr_curve.h"
#include "gnn/trainer.h"
#include "graph/backtrace.h"
#include "graph/hetero_graph.h"

namespace m3dfl {

class Trainer;

// Artifact kind of a persisted framework container.
inline constexpr const char* kFrameworkKind = "framework";

// A fully prepared circuit-under-diagnosis.  Immovable: all members hold
// cross-references (build through the unique_ptr factories).
class Design {
 public:
  Design(const Design&) = delete;
  Design& operator=(const Design&) = delete;

  // Builds a benchmark profile in a design configuration.
  static std::unique_ptr<Design> build(Profile profile, DesignConfig config);
  // Builds the Syn-1 netlist with a *random* tier partition — the paper's
  // data-augmentation netlists (Sec. IV).
  static std::unique_ptr<Design> build_random_partition(
      Profile profile, std::uint64_t partition_seed);

  // View consumed by the diagnosis layers.  `compacted` selects whether
  // failure logs route through the response compactor.
  DesignContext context() const;

  const std::string& name() const { return name_; }
  const Netlist& netlist() const { return netlist_; }
  const TierAssignment& tiers() const { return tiers_; }
  const MivMap& mivs() const { return mivs_; }
  const ScanChains& scan() const { return scan_; }
  const XorCompactor& compactor() const { return compactor_; }
  const PatternSet& patterns() const { return atpg_.patterns; }
  const AtpgResult& atpg() const { return atpg_; }
  const LocSimulator& good_sim() const { return *good_; }
  const HeteroGraph& graph() const { return graph_; }
  // Wall-clock seconds spent building the heterogeneous graph (the paper's
  // "feature construction" runtime, Table IX).
  double feature_construction_seconds() const { return feature_seconds_; }
  // Tester fail-memory depth of this design's test program.
  std::int32_t fail_memory_patterns() const { return fail_memory_patterns_; }

 private:
  Design() = default;
  static std::unique_ptr<Design> build_impl(Profile profile,
                                            DesignConfig config,
                                            bool random_partition,
                                            std::uint64_t partition_seed);

  std::string name_;
  Netlist netlist_;
  TierAssignment tiers_;
  MivMap mivs_;
  ScanChains scan_;
  XorCompactor compactor_;
  AtpgResult atpg_;
  std::unique_ptr<LocSimulator> good_;  // created once the netlist is final
  HeteroGraph graph_;
  std::int32_t fail_memory_patterns_ = 0;
  double feature_seconds_ = 0.0;
};

// Prediction bundle for one failure log.
struct FrameworkPrediction {
  int tier = 0;                  // predicted faulty tier
  double confidence = 0.5;       // max(p_bottom, p_top)
  double margin = 0.0;           // |p_top - p_bottom| softmax margin
  bool high_confidence = false;  // confidence >= T_P
  std::vector<MivId> faulty_mivs;
  double prune_prob = 0.0;       // Classifier output (high-confidence only)
  bool pruned = false;           // what the policy did
};

struct FrameworkOptions {
  GcnModelConfig model;
  TrainOptions training;
  double pr_min_precision = 0.99;  // paper: accuracy loss budget < 1%
  double miv_threshold = 0.5;
};

class DiagnosisFramework {
 public:
  explicit DiagnosisFramework(const FrameworkOptions& options = {});

  // Trains Tier-predictor and MIV-pinpointer on labeled subgraphs, selects
  // T_P from the training PR curve, and trains the transfer-learned
  // Classifier on the Predicted-Positive subset (dummy-buffer balanced).
  // Delegates to the checkpointing Trainer (core/checkpoint.h) with
  // checkpointing disabled, so plain and crash-safe training are the same
  // computation.
  void train(std::span<const Subgraph> graphs);
  bool trained() const { return trained_; }

  double tp_threshold() const { return tp_threshold_; }
  const TierPredictor& tier_predictor() const { return *tier_predictor_; }
  const MivPinpointer& miv_pinpointer() const { return *miv_pinpointer_; }

  // GNN predictions for one back-traced subgraph.
  FrameworkPrediction predict(const Subgraph& subgraph) const;
  // Same, reusing a caller-provided normalized adjacency of `subgraph`
  // (served inference caches adjacencies; results are identical).
  FrameworkPrediction predict(const Subgraph& subgraph,
                              const NormalizedAdjacency& adjacency) const;

  // Calibrated end-to-end confidence for one diagnosis: back-trace evidence
  // quality × Tier-predictor softmax margin, cut at this framework's T_P
  // (diag/report.h explains the formula).  `prediction` may be null when no
  // GNN verdict exists (degraded serving, empty subgraph) — the back-trace
  // evidence then carries the confidence alone.  Works on untrained
  // frameworks (T_P defaults to 1.0: anything short of perfect evidence is
  // low-confidence).
  DiagnosisConfidence diagnosis_confidence(
      const BacktraceResult& backtrace,
      const FrameworkPrediction* prediction) const;

  // The candidate pruning & reordering policy (paper Fig. 7/8): refines the
  // ATPG report in place using `prediction`; pruned candidates are returned
  // for the backup dictionary.
  std::vector<Candidate> refine_report(const DesignContext& design,
                                       const FrameworkPrediction& prediction,
                                       DiagnosisReport& report) const;

  // Convenience: predict + refine.
  std::vector<Candidate> diagnose(const DesignContext& design,
                                  const Subgraph& subgraph,
                                  DiagnosisReport& report,
                                  FrameworkPrediction* prediction_out =
                                      nullptr) const;
  std::vector<Candidate> diagnose(const DesignContext& design,
                                  const Subgraph& subgraph,
                                  const NormalizedAdjacency& adjacency,
                                  DiagnosisReport& report,
                                  FrameworkPrediction* prediction_out =
                                      nullptr) const;

  // Persists / restores the trained framework (all three models plus T_P);
  // the pretrained asset the paper reuses across netlists.  save() wraps the
  // stream in the checksummed artifact container (util/artifact.h); load()
  // accepts both the container and bare legacy "m3dfl-framework 1" streams
  // and throws m3dfl::Error — citing `source` — on truncation, corruption,
  // or a format/shape mismatch.  Pass the file path as `source` when loading
  // from a file.
  void save(std::ostream& os) const;
  void load(std::istream& is, const std::string& source = "<stream>");

 private:
  // The crash-safe trainer drives the training phases against the private
  // model state directly (core/checkpoint.h).
  friend class Trainer;

  FrameworkOptions options_;
  std::unique_ptr<TierPredictor> tier_predictor_;
  std::unique_ptr<MivPinpointer> miv_pinpointer_;
  std::unique_ptr<PruneClassifier> classifier_;
  double tp_threshold_ = 1.0;
  bool trained_ = false;
};

}  // namespace m3dfl

#endif  // M3DFL_CORE_FRAMEWORK_H_
