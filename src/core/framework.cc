#include "core/framework.h"

#include <algorithm>
#include <chrono>
#include <istream>
#include <ostream>

#include "dft/test_points.h"
#include "gnn/oversample.h"
#include "gnn/serialize.h"

namespace m3dfl {

// ---- Design -----------------------------------------------------------------

std::unique_ptr<Design> Design::build(Profile profile, DesignConfig config) {
  return build_impl(profile, config, /*random_partition=*/false, 0);
}

std::unique_ptr<Design> Design::build_random_partition(
    Profile profile, std::uint64_t partition_seed) {
  return build_impl(profile, DesignConfig::kSyn1, /*random_partition=*/true,
                    partition_seed);
}

std::unique_ptr<Design> Design::build_impl(Profile profile,
                                           DesignConfig config,
                                           bool random_partition,
                                           std::uint64_t partition_seed) {
  const ProfileSpec spec = profile_spec(profile);
  auto design = std::unique_ptr<Design>(new Design());
  design->name_ =
      spec.name + "/" +
      (random_partition ? "Rand-" + std::to_string(partition_seed)
                        : config_name(config));

  design->netlist_ = generate_netlist(generator_for(spec, config));
  if (config == DesignConfig::kTpi) {
    insert_test_points(design->netlist_, spec.tpi);
  }

  PartitionOptions part = partition_for(spec, config);
  if (random_partition) {
    part.method = PartitionMethod::kRandom;
    part.seed = partition_seed;
  }
  design->tiers_ = partition_tiers(design->netlist_, part);
  design->mivs_ = MivMap(design->netlist_, design->tiers_);
  design->scan_ = ScanChains(design->netlist_, spec.num_chains, spec.scan_seed);
  design->compactor_ = XorCompactor(design->scan_, spec.chains_per_channel);

  design->fail_memory_patterns_ = spec.fail_memory_patterns;
  design->atpg_ = generate_tdf_patterns(design->netlist_, spec.atpg);
  design->good_ = std::make_unique<LocSimulator>(design->netlist_);
  design->good_->run(design->atpg_.patterns);

  const auto t0 = std::chrono::steady_clock::now();
  design->graph_ = HeteroGraph(design->netlist_, design->tiers_, design->mivs_);
  design->feature_seconds_ =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return design;
}

DesignContext Design::context() const {
  DesignContext ctx;
  ctx.netlist = &netlist_;
  ctx.tiers = &tiers_;
  ctx.mivs = &mivs_;
  ctx.scan = &scan_;
  ctx.compactor = &compactor_;
  ctx.patterns = &atpg_.patterns;
  ctx.good = good_.get();
  ctx.fail_memory_patterns = fail_memory_patterns_;
  return ctx;
}

// ---- DiagnosisFramework ------------------------------------------------------

DiagnosisFramework::DiagnosisFramework(const FrameworkOptions& options)
    : options_(options),
      tier_predictor_(std::make_unique<TierPredictor>(options.model)),
      miv_pinpointer_(std::make_unique<MivPinpointer>(options.model)) {}

void DiagnosisFramework::train(std::span<const Subgraph> graphs) {
  M3DFL_REQUIRE(!graphs.empty(), "cannot train on an empty dataset");
  train_tier_predictor(*tier_predictor_, graphs, options_.training);
  train_miv_pinpointer(*miv_pinpointer_, graphs, options_.training);

  // PR curve over the training set -> T_P (paper Sec. V-B).
  std::vector<PrSample> pr_samples;
  for (const Subgraph& g : graphs) {
    if (g.empty() || (g.tier_label != 0 && g.tier_label != 1)) continue;
    double confidence = 0.0;
    const int tier = tier_predictor_->predicted_tier(g, &confidence);
    pr_samples.push_back(PrSample{confidence, tier == g.tier_label});
  }
  tp_threshold_ =
      select_threshold(pr_curve(pr_samples), options_.pr_min_precision);

  // Classifier training set: Predicted Positive samples, labeled by whether
  // the tier prediction was correct (true positive -> prune is safe).
  std::vector<Subgraph> cls_graphs;
  std::vector<int> cls_labels;
  for (const Subgraph& g : graphs) {
    if (g.empty() || (g.tier_label != 0 && g.tier_label != 1)) continue;
    double confidence = 0.0;
    const int tier = tier_predictor_->predicted_tier(g, &confidence);
    if (confidence < tp_threshold_) continue;
    cls_graphs.push_back(g);
    cls_labels.push_back(tier == g.tier_label ? 1 : 0);
  }
  classifier_ =
      std::make_unique<PruneClassifier>(*tier_predictor_, options_.model);
  if (!cls_graphs.empty()) {
    Rng rng(options_.training.seed ^ 0xB0FFE2);
    balance_with_buffers(cls_graphs, cls_labels, rng);
    train_prune_classifier(*classifier_, cls_graphs, cls_labels,
                           options_.training);
  }
  trained_ = true;
}

FrameworkPrediction DiagnosisFramework::predict(const Subgraph& sg) const {
  return predict(sg, subgraph_adjacency(sg));
}

FrameworkPrediction DiagnosisFramework::predict(
    const Subgraph& sg, const NormalizedAdjacency& adj) const {
  M3DFL_REQUIRE(trained_, "framework must be trained before prediction");
  FrameworkPrediction p;
  p.tier = tier_predictor_->predicted_tier(sg, adj, &p.confidence);
  p.high_confidence = p.confidence >= tp_threshold_;
  p.faulty_mivs =
      miv_pinpointer_->predict_faulty(sg, adj, options_.miv_threshold);
  if (p.high_confidence) {
    p.prune_prob = classifier_->predict_prune_prob(sg, adj);
  }
  return p;
}

std::vector<Candidate> DiagnosisFramework::refine_report(
    const DesignContext& design, const FrameworkPrediction& prediction,
    DiagnosisReport& report) const {
  std::vector<Candidate> pruned;
  if (report.candidates.empty()) return pruned;

  // Candidates equivalent to a predicted-faulty MIV are protected and will
  // be placed on top last (so they end up first).
  const auto matches_faulty_miv = [&](const Candidate& c) {
    for (MivId miv : prediction.faulty_mivs) {
      if (c.fault.is_miv() && c.fault.miv == miv) return true;
      if (!c.fault.is_miv() &&
          design.netlist->pin_net(c.fault.pin) == design.mivs->miv(miv).net) {
        return true;
      }
    }
    return false;
  };

  const bool do_prune =
      prediction.high_confidence && prediction.prune_prob >= 0.5;
  if (do_prune) {
    // Remove candidates in the tier predicted fault-free; MIV candidates
    // belong to no tier and survive, as do MIV-pinpointer hits.
    const int fault_free = 1 - prediction.tier;
    pruned = prune_candidates(report, [&](const Candidate& c) {
      if (matches_faulty_miv(c)) return false;
      return candidate_tier(design, c) == fault_free;
    });
    // Pruning everything would leave PFA with nothing; restore in that case
    // (the backup dictionary would be consulted immediately anyway).
    if (report.candidates.empty()) {
      report.candidates = pruned;
      pruned.clear();
    }
  } else {
    // Low confidence (or classifier says reorder): predicted-faulty tier to
    // the top.
    move_to_top(report, [&](const Candidate& c) {
      return candidate_tier(design, c) == prediction.tier;
    });
  }
  // MIV-pinpointer hits always end up first (paper Fig. 8: prioritize MIV
  // faults for PFA).
  move_to_top(report, matches_faulty_miv);
  return pruned;
}

void DiagnosisFramework::save(std::ostream& os) const {
  M3DFL_REQUIRE(trained_, "cannot save an untrained framework");
  os << "m3dfl-framework 1\n";
  os << "tp_threshold " << std::hexfloat << tp_threshold_
     << std::defaultfloat << "\n";
  save_model(os, *tier_predictor_);
  save_model(os, *miv_pinpointer_);
  save_model(os, *classifier_);
  // Trailer: lets load() distinguish a complete stream from one truncated
  // inside the final parameter payload (a partial hex-float token would
  // otherwise still parse).
  os << "m3dfl-framework-end\n";
}

void DiagnosisFramework::load(std::istream& is) {
  std::string token;
  is >> token;
  M3DFL_REQUIRE(token == "m3dfl-framework", "not a framework stream");
  is >> token;
  M3DFL_REQUIRE(token == "1", "unsupported framework version");
  is >> token;
  M3DFL_REQUIRE(token == "tp_threshold", "framework stream: missing T_P");
  is >> token;
  tp_threshold_ = std::strtod(token.c_str(), nullptr);
  tier_predictor_ =
      std::make_unique<TierPredictor>(load_tier_predictor(is));
  miv_pinpointer_ =
      std::make_unique<MivPinpointer>(load_miv_pinpointer(is));
  classifier_ = std::make_unique<PruneClassifier>(
      load_prune_classifier(is, *tier_predictor_));
  is >> token;
  M3DFL_REQUIRE(token == "m3dfl-framework-end",
                "framework stream: truncated (missing end trailer)");
  trained_ = true;
}

std::vector<Candidate> DiagnosisFramework::diagnose(
    const DesignContext& design, const Subgraph& subgraph,
    DiagnosisReport& report, FrameworkPrediction* prediction_out) const {
  return diagnose(design, subgraph, subgraph_adjacency(subgraph), report,
                  prediction_out);
}

std::vector<Candidate> DiagnosisFramework::diagnose(
    const DesignContext& design, const Subgraph& subgraph,
    const NormalizedAdjacency& adjacency, DiagnosisReport& report,
    FrameworkPrediction* prediction_out) const {
  FrameworkPrediction prediction = predict(subgraph, adjacency);
  std::vector<Candidate> pruned = refine_report(design, prediction, report);
  prediction.pruned = !pruned.empty();
  if (prediction_out != nullptr) *prediction_out = prediction;
  return pruned;
}

}  // namespace m3dfl
