#include "core/framework.h"

#include <algorithm>
#include <chrono>
#include <istream>
#include <ostream>
#include <sstream>

#include "core/checkpoint.h"
#include "dft/test_points.h"
#include "gnn/serialize.h"
#include "util/artifact.h"

namespace m3dfl {

// ---- Design -----------------------------------------------------------------

std::unique_ptr<Design> Design::build(Profile profile, DesignConfig config) {
  return build_impl(profile, config, /*random_partition=*/false, 0);
}

std::unique_ptr<Design> Design::build_random_partition(
    Profile profile, std::uint64_t partition_seed) {
  return build_impl(profile, DesignConfig::kSyn1, /*random_partition=*/true,
                    partition_seed);
}

std::unique_ptr<Design> Design::build_impl(Profile profile,
                                           DesignConfig config,
                                           bool random_partition,
                                           std::uint64_t partition_seed) {
  const ProfileSpec spec = profile_spec(profile);
  auto design = std::unique_ptr<Design>(new Design());
  design->name_ =
      spec.name + "/" +
      (random_partition ? "Rand-" + std::to_string(partition_seed)
                        : config_name(config));

  design->netlist_ = generate_netlist(generator_for(spec, config));
  if (config == DesignConfig::kTpi) {
    insert_test_points(design->netlist_, spec.tpi);
  }

  PartitionOptions part = partition_for(spec, config);
  if (random_partition) {
    part.method = PartitionMethod::kRandom;
    part.seed = partition_seed;
  }
  design->tiers_ = partition_tiers(design->netlist_, part);
  design->mivs_ = MivMap(design->netlist_, design->tiers_);
  design->scan_ = ScanChains(design->netlist_, spec.num_chains, spec.scan_seed);
  design->compactor_ = XorCompactor(design->scan_, spec.chains_per_channel);

  design->fail_memory_patterns_ = spec.fail_memory_patterns;
  design->atpg_ = generate_tdf_patterns(design->netlist_, spec.atpg);
  design->good_ = std::make_unique<LocSimulator>(design->netlist_);
  design->good_->run(design->atpg_.patterns);

  const auto t0 = std::chrono::steady_clock::now();
  design->graph_ = HeteroGraph(design->netlist_, design->tiers_, design->mivs_);
  design->feature_seconds_ =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return design;
}

DesignContext Design::context() const {
  DesignContext ctx;
  ctx.netlist = &netlist_;
  ctx.tiers = &tiers_;
  ctx.mivs = &mivs_;
  ctx.scan = &scan_;
  ctx.compactor = &compactor_;
  ctx.patterns = &atpg_.patterns;
  ctx.good = good_.get();
  ctx.fail_memory_patterns = fail_memory_patterns_;
  return ctx;
}

// ---- DiagnosisFramework ------------------------------------------------------

DiagnosisFramework::DiagnosisFramework(const FrameworkOptions& options)
    : options_(options),
      tier_predictor_(std::make_unique<TierPredictor>(options.model)),
      miv_pinpointer_(std::make_unique<MivPinpointer>(options.model)) {}

void DiagnosisFramework::train(std::span<const Subgraph> graphs) {
  Trainer trainer(*this);
  trainer.train(graphs);
}

FrameworkPrediction DiagnosisFramework::predict(const Subgraph& sg) const {
  return predict(sg, subgraph_adjacency(sg));
}

FrameworkPrediction DiagnosisFramework::predict(
    const Subgraph& sg, const NormalizedAdjacency& adj) const {
  M3DFL_REQUIRE(trained_, "framework must be trained before prediction");
  FrameworkPrediction p;
  p.tier = tier_predictor_->predicted_tier(sg, adj, &p.confidence, &p.margin);
  p.high_confidence = p.confidence >= tp_threshold_;
  p.faulty_mivs =
      miv_pinpointer_->predict_faulty(sg, adj, options_.miv_threshold);
  if (p.high_confidence) {
    p.prune_prob = classifier_->predict_prune_prob(sg, adj);
  }
  return p;
}

DiagnosisConfidence DiagnosisFramework::diagnosis_confidence(
    const BacktraceResult& backtrace,
    const FrameworkPrediction* prediction) const {
  return calibrate_confidence(
      backtrace.min_support(), backtrace.relaxed,
      static_cast<std::int32_t>(backtrace.quarantined.size()),
      prediction != nullptr ? prediction->margin : -1.0, tp_threshold_);
}

std::vector<Candidate> DiagnosisFramework::refine_report(
    const DesignContext& design, const FrameworkPrediction& prediction,
    DiagnosisReport& report) const {
  std::vector<Candidate> pruned;
  if (report.candidates.empty()) return pruned;

  // Candidates equivalent to a predicted-faulty MIV are protected and will
  // be placed on top last (so they end up first).
  const auto matches_faulty_miv = [&](const Candidate& c) {
    for (MivId miv : prediction.faulty_mivs) {
      if (c.fault.is_miv() && c.fault.miv == miv) return true;
      if (!c.fault.is_miv() &&
          design.netlist->pin_net(c.fault.pin) == design.mivs->miv(miv).net) {
        return true;
      }
    }
    return false;
  };

  const bool do_prune =
      prediction.high_confidence && prediction.prune_prob >= 0.5;
  if (do_prune) {
    // Remove candidates in the tier predicted fault-free; MIV candidates
    // belong to no tier and survive, as do MIV-pinpointer hits.
    const int fault_free = 1 - prediction.tier;
    pruned = prune_candidates(report, [&](const Candidate& c) {
      if (matches_faulty_miv(c)) return false;
      return candidate_tier(design, c) == fault_free;
    });
    // Pruning everything would leave PFA with nothing; restore in that case
    // (the backup dictionary would be consulted immediately anyway).
    if (report.candidates.empty()) {
      report.candidates = pruned;
      pruned.clear();
    }
  } else {
    // Low confidence (or classifier says reorder): predicted-faulty tier to
    // the top.
    move_to_top(report, [&](const Candidate& c) {
      return candidate_tier(design, c) == prediction.tier;
    });
  }
  // MIV-pinpointer hits always end up first (paper Fig. 8: prioritize MIV
  // faults for PFA).
  move_to_top(report, matches_faulty_miv);
  return pruned;
}

void DiagnosisFramework::save(std::ostream& os) const {
  M3DFL_REQUIRE(trained_, "cannot save an untrained framework");
  // The container payload is exactly the legacy version-1 framework stream
  // (bare model sections, no nested containers), so the same inner parser
  // serves both the envelope and pre-container files.
  std::ostringstream payload;
  payload << "m3dfl-framework 1\n";
  payload << "tp_threshold " << std::hexfloat << tp_threshold_
          << std::defaultfloat << "\n";
  tier_predictor_->save(payload);
  miv_pinpointer_->save(payload);
  classifier_->save(payload);
  // Trailer: lets the inner parser distinguish a complete stream from one
  // truncated inside the final parameter payload (a partial hex-float token
  // would otherwise still parse).
  payload << "m3dfl-framework-end\n";
  write_artifact(os, kFrameworkKind, payload.str());
}

void DiagnosisFramework::load(std::istream& is, const std::string& source) {
  const std::string text = slurp_stream(is);
  // Container form when wrapped; bare legacy "m3dfl-framework 1" streams
  // (the pre-container era) pass through unchanged — the migration shim.
  std::istringstream inner(
      is_artifact(text) ? read_artifact(text, kFrameworkKind, source) : text);

  std::string token;
  inner >> token;
  M3DFL_REQUIRE(token == "m3dfl-framework",
                source + ": not a framework stream: expected "
                         "'m3dfl-framework', found '" + token + "'");
  inner >> token;
  M3DFL_REQUIRE(token == "1",
                source + ": unsupported framework version: expected 1, "
                         "found '" + token + "'");
  inner >> token;
  M3DFL_REQUIRE(token == "tp_threshold",
                source + ": framework stream: missing T_P");
  inner >> token;
  tp_threshold_ = std::strtod(token.c_str(), nullptr);
  tier_predictor_ = std::make_unique<TierPredictor>(
      read_tier_predictor_payload(inner, source));
  miv_pinpointer_ = std::make_unique<MivPinpointer>(
      read_miv_pinpointer_payload(inner, source));
  classifier_ = std::make_unique<PruneClassifier>(
      read_prune_classifier_payload(inner, *tier_predictor_, source));
  inner >> token;
  M3DFL_REQUIRE(token == "m3dfl-framework-end",
                source + ": framework stream: truncated (missing end "
                         "trailer)");
  trained_ = true;
}

std::vector<Candidate> DiagnosisFramework::diagnose(
    const DesignContext& design, const Subgraph& subgraph,
    DiagnosisReport& report, FrameworkPrediction* prediction_out) const {
  return diagnose(design, subgraph, subgraph_adjacency(subgraph), report,
                  prediction_out);
}

std::vector<Candidate> DiagnosisFramework::diagnose(
    const DesignContext& design, const Subgraph& subgraph,
    const NormalizedAdjacency& adjacency, DiagnosisReport& report,
    FrameworkPrediction* prediction_out) const {
  FrameworkPrediction prediction = predict(subgraph, adjacency);
  std::vector<Candidate> pruned = refine_report(design, prediction, report);
  prediction.pruned = !pruned.empty();
  if (prediction_out != nullptr) *prediction_out = prediction;
  return pruned;
}

}  // namespace m3dfl
