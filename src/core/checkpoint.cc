#include "core/checkpoint.h"

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <limits>
#include <sstream>

#include <unordered_map>

#include "gnn/oversample.h"
#include "gnn/serialize.h"
#include "lint/lint.h"
#include "sta/collapse.h"
#include "util/artifact.h"
#include "util/atomic_file.h"

namespace m3dfl {
namespace {

constexpr int kDonePhase = 3;

// STA preflight: reject labeled samples whose ground-truth faults are
// untestable (see TrainerOptions::sta_design).  Throws citing each offending
// (sample, fault site) pair, capped so a systematically poisoned dataset
// still produces a readable error.
void sta_preflight(const DesignContext& design,
                   std::span<const Sample> samples,
                   const sta::StaOptions& sta_options) {
  const Netlist& nl = *design.netlist;
  const sta::TimingAnalysis analysis(nl, design.tiers, design.mivs,
                                     sta_options);
  const std::vector<sta::UntestableFault> untestable =
      analysis.untestable_faults();
  if (untestable.empty()) return;

  // Key: TDF index (2*pin + dir) for pin faults, offset by the pin universe
  // for MIVs; static faults are outside the delay-fault universe.
  const auto key_of = [&](const Fault& f) -> std::int64_t {
    if (f.is_miv()) return 2LL * nl.num_pins() + f.miv;
    if (f.is_static()) return -1;
    return sta::tdf_fault_index(f);
  };
  std::unordered_map<std::int64_t, const sta::UntestableFault*> by_key;
  by_key.reserve(untestable.size());
  for (const sta::UntestableFault& u : untestable) {
    by_key.emplace(key_of(u.fault), &u);
  }

  std::string cited;
  std::int32_t hits = 0;
  constexpr std::int32_t kMaxCited = 8;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    for (const Fault& f : samples[i].faults) {
      const std::int64_t key = key_of(f);
      if (key < 0) continue;
      const auto it = by_key.find(key);
      if (it == by_key.end()) continue;
      ++hits;
      if (hits <= kMaxCited) {
        if (!cited.empty()) cited += "; ";
        cited += "sample " + std::to_string(i) + ": " +
                 fault_to_string(nl, f) + " (" +
                 sta::untestable_reason_name(it->second->reason) + ")";
      }
    }
  }
  if (hits == 0) return;
  if (hits > kMaxCited) {
    cited += "; and " + std::to_string(hits - kMaxCited) + " more";
  }
  throw Error("training preflight failed: " + std::to_string(hits) +
              " label(s) reference untestable delay faults: " + cited);
}

std::string adam_to_string(const Adam& adam) {
  std::ostringstream os;
  adam.save(os);
  return os.str();
}

// Loads one bare model payload ("m3dfl-model 1 <kind>" + config + weights)
// into an *existing* model.  Rollback must not replace the model object: the
// optimizer's parameter pointers refer into it.  The payload was produced by
// this very model an epoch ago, so only the kind token is sanity-checked;
// the weight loaders still enforce shapes.
template <typename Model>
void load_payload_in_place(const std::string& payload, Model& model,
                           const char* kind) {
  std::istringstream is(payload);
  std::string token;
  is >> token;  // magic
  M3DFL_ASSERT(token == "m3dfl-model");
  is >> token;  // version
  is >> token;  // kind
  M3DFL_ASSERT(token == kind);
  is >> token;  // "config"
  std::uint64_t field = 0;
  for (int i = 0; i < 5; ++i) is >> field;
  M3DFL_ASSERT(!is.fail());
  model.load(is);
}

template <typename Model>
std::string model_to_string(const Model& model) {
  std::ostringstream os;
  model.save(os);
  return os.str();
}

}  // namespace

const char* train_seam_name(TrainSeam seam) {
  switch (seam) {
    case TrainSeam::kEpochEnd:
      return "epoch_end";
    case TrainSeam::kCheckpointSave:
      return "checkpoint_save";
    case TrainSeam::kNanLoss:
      return "nan_loss";
  }
  return "unknown";
}

Trainer::Trainer(DiagnosisFramework& framework, const TrainerOptions& options)
    : fw_(framework), options_(options) {
  M3DFL_REQUIRE(options_.checkpoint_interval >= 1,
                "checkpoint_interval must be >= 1");
  M3DFL_REQUIRE(options_.max_rollbacks >= 0, "max_rollbacks must be >= 0");
}

bool Trainer::seam_fires(TrainSeam seam) {
  return injector_ != nullptr &&
         injector_->should_fail(static_cast<int>(seam));
}

std::string Trainer::checkpoint_path() const {
  return options_.checkpoint_dir + "/" + kCheckpointFileName;
}

bool Trainer::has_checkpoint(const std::string& dir) {
  if (dir.empty()) return false;
  std::error_code ec;
  return std::filesystem::exists(dir + "/" + kCheckpointFileName, ec);
}

// ---- Checkpoint format ------------------------------------------------------
//
// Payload (inside a "train-checkpoint" artifact container):
//
//   m3dfl-checkpoint 1
//   phase <p> mid <0|1>
//   lr_scale <hexfloat>
//   rollbacks <n>
//   tp_threshold <hexfloat>
//   models <2|3>
//   <bare model payloads: tier predictor, MIV pinpointer[, classifier]>
//   loop <next_epoch> <stale> <done>        (mid-phase only)
//   loop_loss <hexfloat best> <hexfloat last>
//   rng <w0> <w1> <w2> <w3>
//   <adam payload>
//   m3dfl-checkpoint-end
//
// The optimizer section comes last: at resume time it cannot be parsed until
// the phase's parameters are registered, so resume() stores the raw tail and
// run_loop() replays it once the optimizer exists.

std::string Trainer::checkpoint_payload() const {
  const bool mid = current_adam_ != nullptr;
  std::ostringstream os;
  os << "m3dfl-checkpoint 1\n";
  os << "phase " << phase_ << " mid " << (mid ? 1 : 0) << "\n";
  os << "lr_scale " << std::hexfloat << lr_scale_ << std::defaultfloat
     << "\n";
  os << "rollbacks " << rollbacks_ << "\n";
  os << "tp_threshold " << std::hexfloat << fw_.tp_threshold_
     << std::defaultfloat << "\n";
  os << "models " << (fw_.classifier_ ? 3 : 2) << "\n";
  fw_.tier_predictor_->save(os);
  fw_.miv_pinpointer_->save(os);
  if (fw_.classifier_) fw_.classifier_->save(os);
  if (mid) {
    os << "loop " << state_.next_epoch << " " << state_.stale << " "
       << (state_.done ? 1 : 0) << "\n";
    os << "loop_loss " << std::hexfloat << state_.best_loss << " "
       << state_.last_loss << std::defaultfloat << "\n";
    const std::array<std::uint64_t, 4> words = state_.rng.state();
    os << "rng " << words[0] << " " << words[1] << " " << words[2] << " "
       << words[3] << "\n";
    current_adam_->save(os);
  }
  os << "m3dfl-checkpoint-end\n";
  return os.str();
}

void Trainer::save_checkpoint() {
  M3DFL_REQUIRE(checkpointing(),
                "save_checkpoint requires a checkpoint directory");
  const std::string path = checkpoint_path();
  if (seam_fires(TrainSeam::kCheckpointSave)) {
    // Stands in for dying mid-write.  Thrown before the atomic rename, which
    // is exactly the guarantee write_file_atomic gives a real crash: the
    // previous checkpoint file survives untouched.
    throw SimulatedCrash("m3dfl: injected crash during checkpoint write to '" +
                         path + "'");
  }
  std::error_code ec;
  std::filesystem::create_directories(options_.checkpoint_dir, ec);
  M3DFL_REQUIRE(!ec, "cannot create checkpoint directory '" +
                         options_.checkpoint_dir + "': " + ec.message());
  write_file_atomic(path,
                    artifact_to_string(kCheckpointKind, checkpoint_payload()));
}

bool Trainer::resume() {
  M3DFL_REQUIRE(checkpointing(), "resume requires a checkpoint directory");
  const std::string path = checkpoint_path();
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  const std::string payload =
      read_artifact(slurp_stream(in), kCheckpointKind, path);
  std::istringstream is(payload);

  const auto expect = [&](const char* label) {
    std::string token;
    is >> token;
    M3DFL_REQUIRE(token == label, path + ": checkpoint: expected '" +
                                      std::string(label) + "', found '" +
                                      token + "'");
  };
  const auto read_hexfloat = [&](const char* label) {
    expect(label);
    std::string token;
    is >> token;
    M3DFL_REQUIRE(!token.empty(), path + ": checkpoint: truncated " +
                                      std::string(label));
    return std::strtod(token.c_str(), nullptr);
  };

  expect("m3dfl-checkpoint");
  std::string version;
  is >> version;
  M3DFL_REQUIRE(version == "1",
                path + ": unsupported checkpoint version: expected 1, "
                       "found '" + version + "'");
  expect("phase");
  int phase = 0;
  is >> phase;
  M3DFL_REQUIRE(!is.fail() && phase >= 0 && phase <= kDonePhase,
                path + ": checkpoint: phase out of range");
  expect("mid");
  int mid = 0;
  is >> mid;
  M3DFL_REQUIRE(!is.fail() && (mid == 0 || mid == 1),
                path + ": checkpoint: bad mid flag");
  const double lr_scale = read_hexfloat("lr_scale");
  expect("rollbacks");
  std::int32_t rollbacks = 0;
  is >> rollbacks;
  M3DFL_REQUIRE(!is.fail() && rollbacks >= 0,
                path + ": checkpoint: bad rollback count");
  const double tp_threshold = read_hexfloat("tp_threshold");
  expect("models");
  int num_models = 0;
  is >> num_models;
  M3DFL_REQUIRE(num_models == 2 || num_models == 3,
                path + ": checkpoint: bad model count");

  auto tier = std::make_unique<TierPredictor>(
      read_tier_predictor_payload(is, path));
  auto miv = std::make_unique<MivPinpointer>(
      read_miv_pinpointer_payload(is, path));
  std::unique_ptr<PruneClassifier> classifier;
  if (num_models == 3) {
    classifier = std::make_unique<PruneClassifier>(
        read_prune_classifier_payload(is, *tier, path));
  }

  if (mid == 1) {
    expect("loop");
    EpochLoopState state;
    int done = 0;
    is >> state.next_epoch >> state.stale >> done;
    M3DFL_REQUIRE(!is.fail() && state.next_epoch >= 0 && state.stale >= 0 &&
                      (done == 0 || done == 1),
                  path + ": checkpoint: bad loop state");
    state.done = done == 1;
    state.best_loss = read_hexfloat("loop_loss");
    {
      std::string token;
      is >> token;
      M3DFL_REQUIRE(!token.empty(),
                    path + ": checkpoint: truncated loop_loss");
      state.last_loss = std::strtod(token.c_str(), nullptr);
    }
    expect("rng");
    std::array<std::uint64_t, 4> words{};
    is >> words[0] >> words[1] >> words[2] >> words[3];
    M3DFL_REQUIRE(!is.fail(), path + ": checkpoint: bad rng state");
    state.rng.set_state(words);

    // The raw tail (optimizer payload + trailer) is replayed at phase entry,
    // once the phase's parameters are registered.
    std::string tail(std::istreambuf_iterator<char>(is), {});
    M3DFL_REQUIRE(tail.ends_with("m3dfl-checkpoint-end\n"),
                  path + ": checkpoint: truncated (missing end trailer)");
    state_ = state;
    resume_adam_ = std::move(tail);
    mid_phase_ = true;
  } else {
    expect("m3dfl-checkpoint-end");
    state_ = EpochLoopState{};
    resume_adam_.clear();
    mid_phase_ = false;
  }

  fw_.tier_predictor_ = std::move(tier);
  fw_.miv_pinpointer_ = std::move(miv);
  fw_.classifier_ = std::move(classifier);
  fw_.tp_threshold_ = tp_threshold;
  fw_.trained_ = false;
  phase_ = phase;
  lr_scale_ = lr_scale;
  rollbacks_ = rollbacks;
  return true;
}

// ---- Training pipeline ------------------------------------------------------

void Trainer::train(std::span<const Subgraph> graphs) {
  M3DFL_REQUIRE(!graphs.empty(), "cannot train on an empty dataset");
  if (options_.preflight && phase_ == 0) {
    if (options_.sta_design != nullptr && !options_.sta_samples.empty()) {
      sta_preflight(*options_.sta_design, options_.sta_samples,
                    options_.sta_options);
    }
    const lint::Report report = lint::lint_training_set(graphs);
    if (report.has_errors()) {
      throw Error("training preflight failed: " + report.summary() +
                  "; first: " + report.diagnostics().front().to_string());
    }
  }
  while (phase_ < kDonePhase) {
    switch (phase_) {
      case 0:
        run_tier_phase(graphs);
        break;
      case 1:
        run_miv_phase(graphs);
        break;
      default:
        run_classifier_phase(graphs);
        break;
    }
    ++phase_;
    if (checkpointing()) save_checkpoint();
  }
  fw_.trained_ = true;
}

void Trainer::run_loop(std::size_t dataset_size, Adam& adam,
                       const ModelIo& io, const TrainStepFn& step) {
  const TrainOptions& topt = fw_.options_.training;
  if (mid_phase_) {
    // Resumed mid-phase: the loop state was restored by resume(); replay the
    // optimizer payload now that the parameters are registered.
    std::istringstream is(resume_adam_);
    adam.load(is);
    resume_adam_.clear();
    mid_phase_ = false;
  } else {
    state_ = EpochLoopState{};
    state_.rng.reseed(topt.seed);
  }
  snapshot_ = Snapshot{io.save(), adam_to_string(adam), state_};
  current_adam_ = &adam;
  try {
    run_epoch_loop(dataset_size, topt, adam, state_, step,
                   [&](EpochLoopState&) { return epoch_hook(adam, io); });
  } catch (...) {
    current_adam_ = nullptr;
    throw;
  }
  current_adam_ = nullptr;
}

bool Trainer::epoch_hook(Adam& adam, const ModelIo& io) {
  if (seam_fires(TrainSeam::kNanLoss)) {
    state_.last_loss = std::numeric_limits<double>::quiet_NaN();
  }
  if (!std::isfinite(state_.last_loss) || !adam.all_finite()) {
    roll_back(adam, io);
    return true;  // retry from the restored state
  }
  // This epoch is good: refresh the rollback snapshot before anything can
  // fail.
  snapshot_ = Snapshot{io.save(), adam_to_string(adam), state_};
  if (checkpointing() && (state_.next_epoch % options_.checkpoint_interval ==
                              0 ||
                          state_.done)) {
    save_checkpoint();
  }
  if (seam_fires(TrainSeam::kEpochEnd)) {
    throw SimulatedCrash("m3dfl: injected crash at epoch boundary: phase " +
                         std::to_string(phase_) + ", epoch " +
                         std::to_string(state_.next_epoch));
  }
  return true;
}

void Trainer::roll_back(Adam& adam, const ModelIo& io) {
  M3DFL_REQUIRE(rollbacks_ < options_.max_rollbacks,
                "training diverged in phase " + std::to_string(phase_) +
                    ": non-finite loss or parameters persisted after " +
                    std::to_string(rollbacks_) + " rollbacks");
  ++rollbacks_;
  lr_scale_ *= 0.5;
  io.restore(snapshot_.model);
  std::istringstream is(snapshot_.adam);
  adam.load(is);
  state_ = snapshot_.state;
  adam.set_lr(fw_.options_.training.lr * lr_scale_);
}

// ---- Phases -----------------------------------------------------------------

void Trainer::run_tier_phase(std::span<const Subgraph> graphs) {
  const TrainSet set = select_tier_samples(graphs);
  TierPredictor& model = *fw_.tier_predictor_;
  Adam adam(AdamOptions{.lr = fw_.options_.training.lr * lr_scale_});
  model.register_params(adam);
  const ModelIo io{
      [&] { return model_to_string(model); },
      [&](const std::string& payload) {
        load_payload_in_place(payload, model, kTierPredictorKind);
      }};
  run_loop(set.size(), adam, io, [&](std::size_t i) {
    return model.train_step(*set.data[i], set.adj[i],
                            set.data[i]->tier_label);
  });
}

void Trainer::run_miv_phase(std::span<const Subgraph> graphs) {
  const TrainSet set = select_miv_samples(graphs);
  MivPinpointer& model = *fw_.miv_pinpointer_;
  Adam adam(AdamOptions{.lr = fw_.options_.training.lr * lr_scale_});
  model.register_params(adam);
  const ModelIo io{
      [&] { return model_to_string(model); },
      [&](const std::string& payload) {
        load_payload_in_place(payload, model, kMivPinpointerKind);
      }};
  run_loop(set.size(), adam, io, [&](std::size_t i) {
    return model.train_step(*set.data[i], set.adj[i]);
  });
}

void Trainer::run_classifier_phase(std::span<const Subgraph> graphs) {
  if (!mid_phase_) {
    // PR curve over the training set -> T_P (paper Sec. V-B).  On a
    // mid-phase resume T_P comes from the checkpoint instead; recomputing
    // would give the same value (the tier predictor is frozen by now) but
    // the restored one is authoritative.
    std::vector<PrSample> pr_samples;
    for (const Subgraph& g : graphs) {
      if (g.empty() || (g.tier_label != 0 && g.tier_label != 1)) continue;
      double confidence = 0.0;
      const int tier = fw_.tier_predictor_->predicted_tier(g, &confidence);
      pr_samples.push_back(PrSample{confidence, tier == g.tier_label});
    }
    fw_.tp_threshold_ =
        select_threshold(pr_curve(pr_samples), fw_.options_.pr_min_precision);
  }

  // Classifier training set: Predicted Positive samples, labeled by whether
  // the tier prediction was correct (true positive -> prune is safe).
  // Deterministically derived from the frozen tier predictor, T_P, and a
  // fixed oversampling seed, so it is recomputed at (re-)entry rather than
  // checkpointed.
  std::vector<Subgraph> cls_graphs;
  std::vector<int> cls_labels;
  for (const Subgraph& g : graphs) {
    if (g.empty() || (g.tier_label != 0 && g.tier_label != 1)) continue;
    double confidence = 0.0;
    const int tier = fw_.tier_predictor_->predicted_tier(g, &confidence);
    if (confidence < fw_.tp_threshold_) continue;
    cls_graphs.push_back(g);
    cls_labels.push_back(tier == g.tier_label ? 1 : 0);
  }
  if (!cls_graphs.empty()) {
    Rng rng(fw_.options_.training.seed ^ 0xB0FFE2);
    balance_with_buffers(cls_graphs, cls_labels, rng);
  }

  if (!fw_.classifier_) {
    fw_.classifier_ = std::make_unique<PruneClassifier>(
        *fw_.tier_predictor_, fw_.options_.model);
  }
  PruneClassifier& model = *fw_.classifier_;
  const LabeledTrainSet set =
      select_classifier_samples(cls_graphs, cls_labels);
  Adam adam(AdamOptions{.lr = fw_.options_.training.lr * lr_scale_});
  model.register_params(adam);
  const ModelIo io{
      [&] { return model_to_string(model); },
      [&](const std::string& payload) {
        load_payload_in_place(payload, model, kPruneClassifierKind);
      }};
  run_loop(set.set.size(), adam, io, [&](std::size_t i) {
    return model.train_step(*set.set.data[i], set.set.adj[i],
                            set.labels[i]);
  });
}

}  // namespace m3dfl
