#include "core/config.h"

#include <algorithm>

#include "util/error.h"

namespace m3dfl {

const std::vector<Profile>& all_profiles() {
  static const std::vector<Profile> kProfiles = {
      Profile::kAes, Profile::kTate, Profile::kNetcard, Profile::kLeon3mp};
  return kProfiles;
}

const std::vector<DesignConfig>& all_configs() {
  static const std::vector<DesignConfig> kConfigs = {
      DesignConfig::kSyn1, DesignConfig::kTpi, DesignConfig::kSyn2,
      DesignConfig::kPar};
  return kConfigs;
}

std::string profile_name(Profile profile) {
  switch (profile) {
    case Profile::kAes: return "AES";
    case Profile::kTate: return "Tate";
    case Profile::kNetcard: return "netcard";
    case Profile::kLeon3mp: return "leon3mp";
  }
  M3DFL_ASSERT(false);
}

std::string config_name(DesignConfig config) {
  switch (config) {
    case DesignConfig::kSyn1: return "Syn-1";
    case DesignConfig::kTpi: return "TPI";
    case DesignConfig::kSyn2: return "Syn-2";
    case DesignConfig::kPar: return "Par";
  }
  M3DFL_ASSERT(false);
}

ProfileSpec profile_spec(Profile profile) {
  ProfileSpec spec;
  switch (profile) {
    case Profile::kAes:
      spec.name = "AES";
      spec.gen.name = "aes";
      spec.gen.num_gates = 1800;
      spec.gen.num_pis = 40;
      spec.gen.num_pos = 32;
      spec.gen.num_flops = 160;
      spec.gen.target_depth = 14;
      spec.gen.seed = 0xAE5001;
      spec.gen.max_fanout = 6;
      spec.gen.chain_extend_prob = 0.10;
      spec.num_chains = 16;
      spec.atpg.max_patterns = 192;
      spec.fail_memory_patterns = 0;  // small program: full fail logging
      break;
    case Profile::kTate:
      spec.name = "Tate";
      spec.gen.name = "tate";
      spec.gen.num_gates = 3200;
      spec.gen.num_pis = 48;
      spec.gen.num_pos = 40;
      spec.gen.num_flops = 240;
      spec.gen.target_depth = 16;
      spec.gen.seed = 0x7A7E01;
      spec.gen.max_fanout = 7;
      spec.gen.chain_extend_prob = 0.15;
      spec.num_chains = 24;
      spec.atpg.max_patterns = 128;
      spec.fail_memory_patterns = 0;  // small program: full fail logging
      break;
    case Profile::kNetcard:
      spec.name = "netcard";
      spec.gen.name = "netcard";
      spec.gen.num_gates = 3800;
      spec.gen.num_pis = 64;
      spec.gen.num_pos = 48;
      spec.gen.num_flops = 320;
      spec.gen.target_depth = 24;
      spec.gen.seed = 0x4E7C01;
      spec.gen.max_fanout = 12;
      spec.gen.locality = 0.85;
      spec.gen.mix[static_cast<std::size_t>(GateType::kBuf)] = 0.12;
      spec.gen.mix[static_cast<std::size_t>(GateType::kInv)] = 0.18;
      spec.gen.chain_extend_prob = 0.80;
      spec.num_chains = 32;
      // netcard has by far the largest pattern count in Table III; the big
      // search space is what degrades its diagnosis quality.
      spec.atpg.max_patterns = 448;
      spec.atpg.patience = 4;
      spec.fail_memory_patterns = 3;
      break;
    case Profile::kLeon3mp:
      spec.name = "leon3mp";
      spec.gen.name = "leon3mp";
      spec.gen.num_gates = 5200;
      spec.gen.num_pis = 64;
      spec.gen.num_pos = 56;
      spec.gen.num_flops = 400;
      spec.gen.target_depth = 24;
      spec.gen.seed = 0x1E0301;
      spec.gen.max_fanout = 10;
      spec.gen.mix[static_cast<std::size_t>(GateType::kBuf)] = 0.11;
      spec.gen.mix[static_cast<std::size_t>(GateType::kInv)] = 0.16;
      spec.gen.chain_extend_prob = 0.75;
      spec.num_chains = 32;
      spec.atpg.max_patterns = 320;
      spec.atpg.patience = 3;
      spec.fail_memory_patterns = 3;
      break;
  }
  spec.chains_per_channel = 8;
  spec.atpg.seed = spec.gen.seed ^ 0xFEED;
  spec.tpi.fraction = 0.01;  // paper: at most 1% of the gate count
  spec.tpi.seed = spec.gen.seed ^ 0x79;
  return spec;
}

GeneratorConfig generator_for(const ProfileSpec& spec, DesignConfig config) {
  GeneratorConfig gen = spec.gen;
  if (config == DesignConfig::kSyn2) {
    // Re-synthesis at a different clock frequency: same "RTL" (profile),
    // different structural elaboration and deeper logic paths.
    gen.seed ^= 0x5A5A5A;
    gen.target_depth += 3;
    gen.locality = std::min(0.9, gen.locality + 0.05);
  }
  return gen;
}

PartitionOptions partition_for(const ProfileSpec& spec, DesignConfig config) {
  PartitionOptions opt;
  opt.seed = spec.partition_seed;
  opt.method = config == DesignConfig::kPar ? PartitionMethod::kLevelDriven
                                            : PartitionMethod::kMinCut;
  return opt;
}

}  // namespace m3dfl
